(* Hybrid OLTP + analytics — the paper's headline use case (Sec. 1).

   An online store keeps per-order state in Minuet. A stream of
   transactional updates (orders being placed and amended) runs
   continuously while an analytics job repeatedly scans the whole order
   book from consistent snapshots to compute revenue — without blocking
   the updates and without ever aborting.

   Run with:  dune exec examples/hybrid_analytics.exe *)

let orders = 5_000

let key i = Printf.sprintf "order:%08d" i

(* Order value encoded as a decimal amount in cents. *)
let amount rng = 100 + Sim.Rng.int rng 99_900

let () =
  Minuet.Harness.run (fun db ->
      (* Old snapshots are garbage-collected in the background; the three
         most recent stay queryable (Sec. 4.4). *)
      Minuet.Db.enable_gc ~interval:0.5 ~keep:3 db;
      let writer = Minuet.Session.attach ~home:0 db in
      let analyst = Minuet.Session.attach ~home:1 db in
      let rng = Sim.Rng.create 7 in

      (* Seed the order book. *)
      for i = 0 to orders - 1 do
        Minuet.Session.put writer (key i) (string_of_int (amount rng))
      done;
      Printf.printf "loaded %d orders\n%!" orders;

      (* OLTP: amend random orders as fast as the cluster allows, for
         two simulated seconds. *)
      let updates = ref 0 in
      let deadline = Sim.now () +. 2.0 in
      Sim.spawn (fun () ->
          while Sim.now () < deadline do
            let i = Sim.Rng.int rng orders in
            Minuet.Session.put writer (key i) (string_of_int (amount rng));
            incr updates
          done);

      (* Analytics: every 250 simulated ms, scan the full book from a
         fresh snapshot and total the revenue. Each scan sees one
         consistent point-in-time state. *)
      let scans = ref 0 in
      Sim.spawn (fun () ->
          while Sim.now () < deadline do
            Sim.delay 0.25;
            let t0 = Sim.now () in
            let snapshot = Minuet.Session.snapshot analyst in
            let book = Minuet.Session.scan_at analyst snapshot ~from:"order:" ~count:orders in
            let revenue =
              List.fold_left (fun acc (_, v) -> acc + int_of_string v) 0 book
            in
            incr scans;
            Printf.printf
              "t=%5.2fs scan #%d: %d orders, revenue=%d cents (snapshot %Ld, %.1f ms)\n%!"
              (Sim.now ()) !scans (List.length book) revenue snapshot.Minuet.Session.sid
              ((Sim.now () -. t0) *. 1e3)
          done);

      (* Let the simulation run to the deadline. *)
      Sim.delay 2.2;
      Printf.printf "\ncompleted %d updates concurrently with %d full-book scans\n" !updates
        !scans;
      Printf.printf "every scan saw a consistent snapshot; no scan ever aborted or blocked\n";
      Printf.printf "gc reclaimed %d superseded node versions along the way\n"
        (Sim.Metrics.counter_value (Minuet.Db.metrics db) "gc.slots_reclaimed");
      Sim.stop ())
