(* Quickstart: boot a simulated Minuet cluster, write some data, read
   it back, scan a range, and take a consistent snapshot.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  Minuet.Harness.run (fun db ->
      (* A session is a proxy-side handle; attach one per application
         thread (here: one). *)
      let session = Minuet.Session.attach db in

      (* Transactional single-key operations. Every operation is a
         strictly serializable distributed transaction under the hood. *)
      Minuet.Session.put session "user:0001" "alice";
      Minuet.Session.put session "user:0002" "bob";
      Minuet.Session.put session "user:0003" "carol";

      (match Minuet.Session.get session "user:0002" with
      | Some name -> Printf.printf "user:0002 -> %s\n" name
      | None -> print_endline "user:0002 not found?!");

      (* Ordered range scans. *)
      let range = Minuet.Session.scan session ~from:"user:" ~count:10 in
      Printf.printf "scan found %d users:\n" (List.length range);
      List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) range;

      (* Take a consistent snapshot (served by the snapshot creation
         service, Fig. 7 of the paper), then keep writing: the snapshot
         is immutable. *)
      let snapshot = Minuet.Session.snapshot session in
      Minuet.Session.put session "user:0002" "bob-renamed";
      (match Minuet.Session.get_at session snapshot "user:0002" with
      | Some name -> Printf.printf "snapshot still sees: %s\n" name
      | None -> print_endline "snapshot lost a key?!");
      (match Minuet.Session.get session "user:0002" with
      | Some name -> Printf.printf "tip now sees:        %s\n" name
      | None -> print_endline "tip lost a key?!");

      (* Deletes. *)
      let removed = Minuet.Session.remove session "user:0003" in
      Printf.printf "removed user:0003: %b\n" removed;
      Printf.printf "final count: %d\n"
        (List.length (Minuet.Session.scan session ~from:"" ~count:100)))
