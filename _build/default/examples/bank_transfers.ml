(* Multi-key transactions: concurrent bank transfers.

   Account balances live in Minuet; transfers are arbitrary
   read-modify-write transactions built with `Session.with_txn` — the
   paper's dynamic-transaction layer exposed directly. Many concurrent
   transfer processes race on a small set of accounts; optimistic
   concurrency control retries the conflicts, and the invariant (total
   money is conserved) must hold at the end — and at every instant, as
   a concurrent snapshot-based auditor verifies.

   Run with:  dune exec examples/bank_transfers.exe *)

let accounts = 20

let initial_balance = 1_000

let account i = Printf.sprintf "acct:%04d" i

let balance_of s = int_of_string s

let () =
  Minuet.Harness.run (fun db ->
      let session = Minuet.Session.attach db in
      for i = 0 to accounts - 1 do
        Minuet.Session.put session (account i) (string_of_int initial_balance)
      done;
      let total = accounts * initial_balance in
      Printf.printf "opened %d accounts, total balance %d\n%!" accounts total;

      (* Transfer workers: move random amounts between random accounts,
         atomically, rejecting overdrafts. *)
      let transfers = ref 0 and rejected = ref 0 in
      let workers = 6 and per_worker = 200 in
      let rng = Sim.Rng.create 99 in
      for w = 0 to workers - 1 do
        let rng = Sim.Rng.split rng in
        let s = Minuet.Session.attach ~home:(w mod 4) db in
        Sim.spawn (fun () ->
            for _ = 1 to per_worker do
              let from_acct = account (Sim.Rng.int rng accounts) in
              let to_acct = account (Sim.Rng.int rng accounts) in
              let amount = 1 + Sim.Rng.int rng 250 in
              let ok =
                Minuet.Session.with_txn s (fun tx ->
                    let from_balance =
                      balance_of (Option.get (Minuet.Session.t_get tx from_acct))
                    in
                    if from_balance < amount || from_acct = to_acct then false
                    else begin
                      let to_balance =
                        balance_of (Option.get (Minuet.Session.t_get tx to_acct))
                      in
                      Minuet.Session.t_put tx from_acct (string_of_int (from_balance - amount));
                      Minuet.Session.t_put tx to_acct (string_of_int (to_balance + amount));
                      true
                    end)
              in
              if ok then incr transfers else incr rejected
            done)
      done;

      (* Auditor: while transfers fly, repeatedly total the balances
         from consistent snapshots. Any torn transfer would show up as
         a wrong total. *)
      let audits = ref 0 and violations = ref 0 in
      Sim.spawn (fun () ->
          for _ = 1 to 10 do
            Sim.delay 0.02;
            let snap = Minuet.Session.snapshot session in
            let balances =
              Minuet.Session.scan_at session snap ~from:"acct:" ~count:accounts
            in
            let sum = List.fold_left (fun acc (_, v) -> acc + balance_of v) 0 balances in
            incr audits;
            if sum <> total then begin
              incr violations;
              Printf.printf "AUDIT VIOLATION: snapshot total %d != %d\n%!" sum total
            end
          done);

      Sim.delay 600.0;
      Printf.printf "%d transfers committed, %d rejected (overdraft/self)\n" !transfers !rejected;
      Printf.printf "%d concurrent audits, %d violations\n" !audits !violations;
      let final =
        Minuet.Session.scan session ~from:"acct:" ~count:accounts
        |> List.fold_left (fun acc (_, v) -> acc + balance_of v) 0
      in
      Printf.printf "final total: %d (conserved: %b)\n" final (final = total))
