(* What-if analysis with writable clones (Sec. 5 of the paper).

   An analyst manages a book of investment positions stored in Minuet.
   She wants to evaluate two rebalancing strategies without touching the
   live book: each strategy gets its own writable clone (branch) of the
   data, is applied there, and the outcomes are compared — "like
   revision control, but for B-trees".

   Run with:  dune exec examples/what_if_analysis.exe *)

let positions =
  [
    ("pos:bonds", 400_000);
    ("pos:equities", 350_000);
    ("pos:commodities", 150_000);
    ("pos:cash", 100_000);
  ]

let value_of br sid key =
  match Mvcc.Branching.get br ~at:sid key with
  | Some v -> int_of_string v
  | None -> 0

let total br sid =
  List.fold_left (fun acc (k, _) -> acc + value_of br sid k) 0 positions

let show br ~label sid =
  Printf.printf "%-22s" label;
  List.iter (fun (k, _) -> Printf.printf " %s=%d" k (value_of br sid k)) positions;
  Printf.printf " total=%d\n" (total br sid)

let () =
  let config = { Minuet.Config.default with Minuet.Config.branching = true; beta = 2 } in
  Minuet.Harness.run ~config (fun db ->
      let session = Minuet.Session.attach db in
      let book = Minuet.Session.branching session in

      (* Load the live book (snapshot 0 is the initial writable tip). *)
      List.iter
        (fun (k, v) -> Mvcc.Branching.put book k (string_of_int v))
        positions;
      show book ~label:"live book (v0)" 0L;

      (* Freeze the book and branch two parallel what-if clones. The
         first branch continues the mainline; the others are side
         branches. *)
      let mainline = Mvcc.Branching.create_branch book ~from:0L in
      let aggressive = Mvcc.Branching.create_branch book ~from:0L in
      Printf.printf "\ncreated mainline=%Ld and what-if clone=%Ld from v0\n\n" mainline
        aggressive;

      (* Strategy A (on the mainline): shift 100k bonds -> equities. *)
      Mvcc.Branching.put book ~at:mainline "pos:bonds" "300000";
      Mvcc.Branching.put book ~at:mainline "pos:equities" "450000";

      (* Strategy B (on the clone): all cash+bonds into commodities. *)
      Mvcc.Branching.put book ~at:aggressive "pos:bonds" "0";
      Mvcc.Branching.put book ~at:aggressive "pos:cash" "0";
      Mvcc.Branching.put book ~at:aggressive "pos:commodities" "650000";

      (* The three versions coexist; queries may compare them
         transactionally. *)
      show book ~label:"original (frozen v0)" 0L;
      show book ~label:"strategy A" mainline;
      show book ~label:"strategy B" aggressive;

      (* Integrity check across versions: no strategy may change the
         total book value. *)
      let base = total book 0L in
      List.iter
        (fun (name, sid) ->
          let t = total book sid in
          Printf.printf "%s conserves value: %b (%d vs %d)\n" name (t = base) t base)
        [ ("strategy A", mainline); ("strategy B", aggressive) ];

      (* Sub-branch strategy A for a further tweak, demonstrating deeper
         version trees. *)
      let tweak = Mvcc.Branching.create_branch book ~from:mainline in
      Mvcc.Branching.put book ~at:tweak "pos:cash" "50000";
      Mvcc.Branching.put book ~at:tweak "pos:equities" "500000";
      Printf.printf "\nsub-branch %Ld of strategy A:\n" tweak;
      show book ~label:"strategy A + tweak" tweak;
      show book ~label:"strategy A (frozen)" mainline;

      (* Horizontal query: one position across every strategy at once,
         in a single transaction. *)
      Printf.printf "\npos:bonds across versions: ";
      List.iter
        (fun (sid, v) -> Printf.printf "v%Ld=%s " sid (Option.value v ~default:"-"))
        (Mvcc.Branching.get_many book ~at:[ 0L; mainline; aggressive; tweak ] "pos:bonds");
      print_newline ();

      (* Vertical query: how pos:equities evolved along the tweak's
         ancestry. *)
      Printf.printf "pos:equities history on the tweak line: ";
      List.iter
        (fun (sid, v) -> Printf.printf "v%Ld=%s " sid (Option.value v ~default:"-"))
        (Mvcc.Branching.history book ~from:tweak "pos:equities");
      print_newline ();

      (* Structured diff between the original book and strategy B. *)
      Printf.printf "\ndiff v0 -> strategy B:\n";
      List.iter
        (fun (k, change) ->
          match change with
          | Mvcc.Branching.Changed (a, b) -> Printf.printf "  ~ %s: %s -> %s\n" k a b
          | Mvcc.Branching.Added v -> Printf.printf "  + %s = %s\n" k v
          | Mvcc.Branching.Removed v -> Printf.printf "  - %s (was %s)\n" k v)
        (Mvcc.Branching.diff book ~base:0L ~other:aggressive);

      (* Strategy B is rejected: delete the what-if branch and reclaim
         its copy-on-write storage. *)
      Mvcc.Branching.delete_branch book aggressive;
      let alloc_for_gc =
        (* Reuse the session's allocator infrastructure via a scratch
           handle; reclaimed slots return to the shared free lists. *)
        Minuet.Db.shared_alloc db |> fun shared ->
        Btree.Node_alloc.create
          ~cluster:(Minuet.Db.cluster db)
          ~layout:(Btree.Ops.layout (Mvcc.Branching.tree book))
          ~shared ()
      in
      let freed =
        Mvcc.Gc.sweep_branching
          [ Mvcc.Branching.tree book ]
          ~alloc:alloc_for_gc
          ~roots:(Mvcc.Branching.live_roots book)
      in
      Printf.printf "\nstrategy B rejected: branch %Ld deleted, %d node versions reclaimed\n"
        aggressive freed;
      show book ~label:"strategy A (kept)" mainline)
