examples/bank_transfers.ml: List Minuet Option Printf Sim
