examples/what_if_analysis.mli:
