examples/hybrid_analytics.mli:
