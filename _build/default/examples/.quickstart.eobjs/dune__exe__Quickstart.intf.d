examples/quickstart.mli:
