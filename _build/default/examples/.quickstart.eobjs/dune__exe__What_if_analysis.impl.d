examples/what_if_analysis.ml: Btree List Minuet Mvcc Option Printf
