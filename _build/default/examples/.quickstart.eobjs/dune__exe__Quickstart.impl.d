examples/quickstart.ml: List Minuet Printf
