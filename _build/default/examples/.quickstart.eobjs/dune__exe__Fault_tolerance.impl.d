examples/fault_tolerance.ml: Minuet Printf
