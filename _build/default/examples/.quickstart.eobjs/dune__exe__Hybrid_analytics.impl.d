examples/hybrid_analytics.ml: List Minuet Printf Sim
