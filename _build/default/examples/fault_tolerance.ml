(* Fault tolerance: Sinfonia's primary-backup replication keeps Minuet
   available through a memnode crash (Sec. 2.1).

   A workload runs while one memnode crashes and later recovers; all
   data stays readable and writable throughout, served by the crashed
   node's replica on its backup.

   Run with:  dune exec examples/fault_tolerance.exe *)

let n = 2_000

let key i = Printf.sprintf "item:%06d" i

let () =
  Minuet.Harness.run (fun db ->
      let session = Minuet.Session.attach db in
      for i = 0 to n - 1 do
        Minuet.Session.put session (key i) "generation-1"
      done;
      Printf.printf "loaded %d items across %d memnodes\n%!" n
        (Minuet.Config.default.Minuet.Config.hosts);

      (* Crash a memnode. Its address space fails over to the replica
         hosted on the next node. *)
      Minuet.Db.crash_host db 1;
      print_endline "memnode 1 crashed; continuing through its backup replica";

      let missing = ref 0 in
      for i = 0 to n - 1 do
        if Minuet.Session.get session (key i) = None then incr missing
      done;
      Printf.printf "reads during outage: %d/%d present (%d missing)\n%!" (n - !missing) n
        !missing;

      (* Writes keep working too. *)
      for i = 0 to n - 1 do
        if i mod 2 = 0 then Minuet.Session.put session (key i) "generation-2"
      done;
      print_endline "rewrote half the items during the outage";

      (* Bring the node back; its state is restored from the replica. *)
      Minuet.Db.recover_host db 1;
      print_endline "memnode 1 recovered from its replica";

      let gen2 = ref 0 and gen1 = ref 0 in
      for i = 0 to n - 1 do
        match Minuet.Session.get session (key i) with
        | Some "generation-2" -> incr gen2
        | Some "generation-1" -> incr gen1
        | _ -> ()
      done;
      Printf.printf "after recovery: %d generation-2, %d generation-1 (expected %d / %d)\n"
        !gen2 !gen1 (n / 2) (n / 2))
