type t = {
  node_size : int;
  max_slots : int;
  max_trees : int;
  max_snapshots : int;
  max_memnodes : int;
}

let slot_len_small = 64

let catalog_entry_len = 128

let seq_entry_len = 16

let make ?(node_size = 4096) ?(max_slots = 8192) ?(max_trees = 32) ?(max_snapshots = 4096)
    ?(max_memnodes = 64) () =
  if node_size < 128 then invalid_arg "Layout.make: node_size too small";
  if max_slots <= 0 || max_trees <= 0 || max_snapshots <= 0 || max_memnodes <= 0 then
    invalid_arg "Layout.make: sizes must be positive";
  { node_size; max_slots; max_trees; max_snapshots; max_memnodes }

(* Region boundaries. Each tree descriptor needs two small slots plus a
   GC watermark slot. *)
let trees_end t = t.max_trees * 3 * slot_len_small

let global_sid_region t = trees_end t

let misc_end t = global_sid_region t + (t.max_trees * slot_len_small)

let catalog_base t = misc_end t

let catalog_end t = catalog_base t + (t.max_trees * t.max_snapshots * catalog_entry_len)

let seqtable_base t = catalog_end t

(* One entry per (memnode, slot): the table at every memnode covers the
   aggregate capacity of the system, which is precisely the space
   overhead the dirty-traversal mode eliminates (Sec. 3). *)
let seqtable_end t = seqtable_base t + (t.max_memnodes * t.max_slots * seq_entry_len)

let alloc_ptr_off t = seqtable_end t

let slot_base t =
  let b = alloc_ptr_off t + slot_len_small in
  (* Round up to the node size for tidy offsets. *)
  (b + t.node_size - 1) / t.node_size * t.node_size

let heap_capacity_needed t = slot_base t + (t.max_slots * t.node_size)

let check_tree t tree =
  if tree < 0 || tree >= t.max_trees then invalid_arg "Layout: tree id out of range"

let tip_id_off t ~tree =
  check_tree t tree;
  tree * 3 * slot_len_small

let tip_root_off t ~tree =
  check_tree t tree;
  (tree * 3 * slot_len_small) + slot_len_small

let lowest_sid_off t ~tree =
  check_tree t tree;
  (tree * 3 * slot_len_small) + (2 * slot_len_small)

let global_sid_off t ~tree =
  check_tree t tree;
  global_sid_region t + (tree * slot_len_small)

let catalog_entry_off t ~tree ~sid =
  check_tree t tree;
  let sid = Int64.to_int sid in
  if sid < 0 || sid >= t.max_snapshots then
    invalid_arg "Layout.catalog_entry_off: snapshot id beyond catalog capacity";
  catalog_base t + (((tree * t.max_snapshots) + sid) * catalog_entry_len)

let slot_off t ~index =
  if index < 0 || index >= t.max_slots then invalid_arg "Layout.slot_off: index out of range";
  slot_base t + (index * t.node_size)

let slot_index t ~off =
  let base = slot_base t in
  if off < base || (off - base) mod t.node_size <> 0 then
    invalid_arg "Layout.slot_index: not a slot offset";
  let index = (off - base) / t.node_size in
  if index >= t.max_slots then invalid_arg "Layout.slot_index: index out of range";
  index

let is_slot_off t ~off =
  let base = slot_base t in
  off >= base
  && (off - base) mod t.node_size = 0
  && (off - base) / t.node_size < t.max_slots

let seq_entry_off t addr =
  let node = addr.Sinfonia.Address.node in
  if node < 0 || node >= t.max_memnodes then
    invalid_arg "Layout.seq_entry_off: memnode beyond max_memnodes";
  let index = slot_index t ~off:addr.Sinfonia.Address.off in
  seqtable_base t + (((node * t.max_slots) + index) * seq_entry_len)

let node_ref t ~node ~index =
  Dyntxn.Objref.make ~addr:(Sinfonia.Address.make ~node ~off:(slot_off t ~index)) ~len:t.node_size
