(** Address-space layout of Minuet's state inside each memnode's heap.

    Every memnode uses the same layout. Replicated objects (tree
    descriptors, the snapshot catalog, the baseline sequence-number
    table) occupy the same offset on every memnode; per-memnode state
    (the slot region and its allocation pointer) is independent.

    {v
    0 ............... tree descriptors (tip snapshot id / root location)
    trees_end ....... global snapshot-id counter, GC watermark
    catalog_base .... snapshot catalog entries (branching versions)
    seqtable_base ... replicated seqnum table (baseline CC mode)
    alloc_ptr ....... per-memnode slot allocation pointer
    slot_base ....... B-tree node slots (node_size bytes each)
    v} *)

type t = {
  node_size : int;  (** Slot size for B-tree nodes (paper: 4096). *)
  max_slots : int;  (** Slots per memnode. *)
  max_trees : int;
  max_snapshots : int;  (** Catalog capacity (branching mode). *)
  max_memnodes : int;
      (** Upper bound on cluster size; sizes the baseline seqnum table,
          which has one entry per (memnode, slot) — the table at every
          memnode covers the aggregate capacity of the system (Sec. 3). *)
}

val make :
  ?node_size:int ->
  ?max_slots:int ->
  ?max_trees:int ->
  ?max_snapshots:int ->
  ?max_memnodes:int ->
  unit ->
  t
(** Defaults: 4096-byte nodes, 8192 slots, 32 trees, 4096 snapshots,
    64 memnodes. *)

val heap_capacity_needed : t -> int
(** Minimum memnode heap capacity for this layout. *)

(** {1 Replicated objects} *)

val slot_len_small : int
(** Slot size used for metadata objects (64 bytes). *)

val tip_id_off : t -> tree:int -> int
(** Tip snapshot id for a tree (payload: i64 sid). *)

val tip_root_off : t -> tree:int -> int
(** Root location of the tip snapshot (payload: encoded {!Dyntxn.Objref.t}). *)

val global_sid_off : t -> tree:int -> int
(** Per-tree global snapshot-id counter (branching mode). *)

val lowest_sid_off : t -> tree:int -> int
(** GC watermark: smallest snapshot id still queryable. *)

val catalog_entry_off : t -> tree:int -> sid:int64 -> int
(** Catalog entry slot for a snapshot of one tree (branching mode).
    Raises [Invalid_argument] beyond [max_snapshots]. *)

val catalog_entry_len : int

(** {1 Baseline sequence-number table} *)

val seq_entry_off : t -> Sinfonia.Address.t -> int
(** Replicated sequence-number slot for the B-tree node stored at the
    given slot address. *)

val seq_entry_len : int

(** {1 Per-memnode slot region} *)

val alloc_ptr_off : t -> int
(** Allocation bump pointer (payload: i64 next free slot index). *)

val slot_base : t -> int

val slot_off : t -> index:int -> int
(** Byte offset of slot [index]. Raises [Invalid_argument] when out of
    range. *)

val slot_index : t -> off:int -> int
(** Inverse of {!slot_off}. *)

val node_ref : t -> node:int -> index:int -> Dyntxn.Objref.t
(** Object reference for slot [index] on memnode [node]. *)

val is_slot_off : t -> off:int -> bool
