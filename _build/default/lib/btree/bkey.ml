type t = string

let compare = String.compare

let equal = String.equal

type fence = Neg_inf | Key of t | Pos_inf

let fence_compare a b =
  match (a, b) with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Key x, Key y -> String.compare x y

let fence_equal a b = fence_compare a b = 0

let fence_le_key f k =
  match f with Neg_inf -> true | Pos_inf -> false | Key x -> String.compare x k <= 0

let key_lt_fence k f =
  match f with Neg_inf -> false | Pos_inf -> true | Key x -> String.compare k x < 0

let in_range k ~low ~high = fence_le_key low k && key_lt_fence k high

let pp fmt k = Format.fprintf fmt "%S" k

let pp_fence fmt = function
  | Neg_inf -> Format.pp_print_string fmt "-inf"
  | Pos_inf -> Format.pp_print_string fmt "+inf"
  | Key k -> pp fmt k

let encode enc k = Codec.Enc.bytes enc k

let decode dec = Codec.Dec.bytes dec

let encode_fence enc = function
  | Neg_inf -> Codec.Enc.u8 enc 0
  | Pos_inf -> Codec.Enc.u8 enc 1
  | Key k ->
      Codec.Enc.u8 enc 2;
      encode enc k

let decode_fence dec =
  match Codec.Dec.u8 dec with
  | 0 -> Neg_inf
  | 1 -> Pos_inf
  | 2 -> Key (decode dec)
  | b -> raise (Codec.Decode_error (Printf.sprintf "Bkey.decode_fence: bad tag %d" b))
