lib/btree/node_alloc.mli: Dyntxn Layout Sinfonia
