lib/btree/ops.ml: Address Array Bkey Bnode Cluster Codec Dyntxn Format Hashtbl Heap Int64 Layout List Memnode Node_alloc Option Printf Sim Sinfonia String
