lib/btree/bkey.mli: Codec Format
