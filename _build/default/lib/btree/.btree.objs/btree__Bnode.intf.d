lib/btree/bnode.mli: Bkey Dyntxn Format
