lib/btree/bnode.ml: Array Bkey Codec Dyntxn Format Int64 Printf String
