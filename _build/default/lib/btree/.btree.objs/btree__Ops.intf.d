lib/btree/ops.mli: Bkey Bnode Dyntxn Layout Node_alloc Sinfonia
