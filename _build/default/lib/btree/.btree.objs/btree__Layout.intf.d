lib/btree/layout.mli: Dyntxn Sinfonia
