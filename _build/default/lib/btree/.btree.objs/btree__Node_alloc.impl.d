lib/btree/node_alloc.ml: Address Array Cluster Codec Dyntxn Int64 Layout Queue Sim Sinfonia String
