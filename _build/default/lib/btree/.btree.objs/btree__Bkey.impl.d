lib/btree/bkey.ml: Codec Format Printf String
