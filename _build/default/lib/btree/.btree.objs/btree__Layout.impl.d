lib/btree/layout.ml: Dyntxn Int64 Sinfonia
