lib/btree/btree.ml: Bkey Bnode Layout Node_alloc Ops
