module Objref = Dyntxn.Objref

type body =
  | Leaf of (Bkey.t * string) array
  | Internal of { keys : Bkey.t array; children : Objref.t array }

type t = {
  height : int;
  low : Bkey.fence;
  high : Bkey.fence;
  snap_created : int64;
  descendants : int64 array;
  body : body;
}

let is_leaf t = match t.body with Leaf _ -> true | Internal _ -> false

let nkeys t =
  match t.body with Leaf entries -> Array.length entries | Internal { keys; _ } -> Array.length keys

let make_leaf ~low ~high ~snap entries =
  { height = 0; low; high; snap_created = snap; descendants = [||]; body = Leaf entries }

let make_internal ~height ~low ~high ~snap ~keys ~children =
  if height < 1 then invalid_arg "Bnode.make_internal: height must be >= 1";
  if Array.length children <> Array.length keys + 1 then
    invalid_arg "Bnode.make_internal: children/keys arity mismatch";
  { height; low; high; snap_created = snap; descendants = [||]; body = Internal { keys; children } }

let empty_root ~snap = make_leaf ~low:Bkey.Neg_inf ~high:Bkey.Pos_inf ~snap [||]

(* -------------------------------------------------------------------- *)
(* Leaf operations                                                        *)
(* -------------------------------------------------------------------- *)

let as_leaf t =
  match t.body with Leaf entries -> entries | Internal _ -> invalid_arg "Bnode: expected leaf"

let as_internal t =
  match t.body with
  | Internal { keys; children } -> (keys, children)
  | Leaf _ -> invalid_arg "Bnode: expected internal node"

(* Position of [k] in sorted [entries]: Ok i if present at i, Error i
   giving the insertion point otherwise. *)
let leaf_search entries k =
  let rec go lo hi =
    if lo >= hi then Error lo
    else
      let mid = (lo + hi) / 2 in
      let c = Bkey.compare k (fst entries.(mid)) in
      if c = 0 then Ok mid else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length entries)

let leaf_find t k =
  let entries = as_leaf t in
  match leaf_search entries k with Ok i -> Some (snd entries.(i)) | Error _ -> None

let leaf_insert t k v =
  let entries = as_leaf t in
  let entries' =
    match leaf_search entries k with
    | Ok i ->
        let copy = Array.copy entries in
        copy.(i) <- (k, v);
        copy
    | Error i ->
        let n = Array.length entries in
        let bigger = Array.make (n + 1) (k, v) in
        Array.blit entries 0 bigger 0 i;
        Array.blit entries i bigger (i + 1) (n - i);
        bigger
  in
  { t with body = Leaf entries' }

let leaf_remove t k =
  let entries = as_leaf t in
  match leaf_search entries k with
  | Error _ -> None
  | Ok i ->
      let n = Array.length entries in
      let smaller = Array.make (n - 1) ("", "") in
      Array.blit entries 0 smaller 0 i;
      Array.blit entries (i + 1) smaller i (n - 1 - i);
      Some { t with body = Leaf smaller }

let leaf_entries = as_leaf

let leaf_entries_from t k =
  let entries = as_leaf t in
  let start = match leaf_search entries k with Ok i -> i | Error i -> i in
  Array.to_list (Array.sub entries start (Array.length entries - start))

(* -------------------------------------------------------------------- *)
(* Internal-node operations                                               *)
(* -------------------------------------------------------------------- *)

(* Child index responsible for [k]: the smallest [i] with
   k < keys.(i), or |keys| when no such separator exists. *)
let child_index keys k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Bkey.compare k keys.(mid) < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length keys)

let child_for t k =
  let keys, children = as_internal t in
  let i = child_index keys k in
  (i, children.(i))

let child_at t i =
  let _, children = as_internal t in
  children.(i)

let child_fences t i =
  let keys, children = as_internal t in
  if i < 0 || i >= Array.length children then invalid_arg "Bnode.child_fences: index out of range";
  let low = if i = 0 then t.low else Bkey.Key keys.(i - 1) in
  let high = if i = Array.length keys then t.high else Bkey.Key keys.(i) in
  (low, high)

let replace_child t i ptr =
  let keys, children = as_internal t in
  let children' = Array.copy children in
  children'.(i) <- ptr;
  { t with body = Internal { keys; children = children' } }

let insert_sep t ~at ~sep ~right =
  let keys, children = as_internal t in
  let nk = Array.length keys in
  let keys' = Array.make (nk + 1) sep in
  Array.blit keys 0 keys' 0 at;
  Array.blit keys at keys' (at + 1) (nk - at);
  let children' = Array.make (nk + 2) right in
  Array.blit children 0 children' 0 (at + 1);
  Array.blit children (at + 1) children' (at + 2) (nk - at);
  { t with body = Internal { keys = keys'; children = children' } }

(* -------------------------------------------------------------------- *)
(* Copy-on-write metadata                                                 *)
(* -------------------------------------------------------------------- *)

let with_snap t snap = { t with snap_created = snap; descendants = [||] }

let add_descendant t sid = { t with descendants = Array.append t.descendants [| sid |] }

let with_descendants t descendants = { t with descendants }

(* -------------------------------------------------------------------- *)
(* Split                                                                  *)
(* -------------------------------------------------------------------- *)

let needs_split t ~max_keys = nkeys t > max_keys

let split t =
  match t.body with
  | Leaf entries ->
      let n = Array.length entries in
      if n < 2 then invalid_arg "Bnode.split: leaf too small";
      let mid = n / 2 in
      let sep = fst entries.(mid) in
      let left = { t with high = Bkey.Key sep; body = Leaf (Array.sub entries 0 mid) } in
      let right = { t with low = Bkey.Key sep; body = Leaf (Array.sub entries mid (n - mid)) } in
      (left, sep, right)
  | Internal { keys; children } ->
      let nk = Array.length keys in
      if nk < 2 then invalid_arg "Bnode.split: internal node too small";
      let mid = nk / 2 in
      let sep = keys.(mid) in
      let left =
        {
          t with
          high = Bkey.Key sep;
          body = Internal { keys = Array.sub keys 0 mid; children = Array.sub children 0 (mid + 1) };
        }
      in
      let right =
        {
          t with
          low = Bkey.Key sep;
          body =
            Internal
              {
                keys = Array.sub keys (mid + 1) (nk - mid - 1);
                children = Array.sub children (mid + 1) (nk - mid);
              };
        }
      in
      (left, sep, right)

(* -------------------------------------------------------------------- *)
(* Serialization                                                          *)
(* -------------------------------------------------------------------- *)

let encode t =
  let e = Codec.Enc.create ~initial_size:512 () in
  Codec.Enc.u8 e (if is_leaf t then 0 else 1);
  Codec.Enc.u16 e t.height;
  Bkey.encode_fence e t.low;
  Bkey.encode_fence e t.high;
  Codec.Enc.i64 e t.snap_created;
  Codec.Enc.array e (Codec.Enc.i64 e) t.descendants;
  (match t.body with
  | Leaf entries ->
      Codec.Enc.array e
        (fun (k, v) ->
          Bkey.encode e k;
          Codec.Enc.bytes e v)
        entries
  | Internal { keys; children } ->
      Codec.Enc.array e (Bkey.encode e) keys;
      Codec.Enc.array e (Objref.encode e) children);
  Codec.Enc.to_string e

let decode s =
  let d = Codec.Dec.of_string s in
  let kind = Codec.Dec.u8 d in
  let height = Codec.Dec.u16 d in
  let low = Bkey.decode_fence d in
  let high = Bkey.decode_fence d in
  let snap_created = Codec.Dec.i64 d in
  let descendants = Codec.Dec.array d Codec.Dec.i64 in
  let body =
    match kind with
    | 0 ->
        Leaf
          (Codec.Dec.array d (fun d ->
               let k = Bkey.decode d in
               let v = Codec.Dec.bytes d in
               (k, v)))
    | 1 ->
        let keys = Codec.Dec.array d Bkey.decode in
        let children = Codec.Dec.array d Objref.decode in
        Internal { keys; children }
    | b -> raise (Codec.Decode_error (Printf.sprintf "Bnode.decode: bad kind %d" b))
  in
  { height; low; high; snap_created; descendants; body }

let encoded_size t = String.length (encode t)

(* -------------------------------------------------------------------- *)
(* Validation                                                             *)
(* -------------------------------------------------------------------- *)

let check t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let sorted arr = Array.for_all2 (fun a b -> Bkey.compare a b < 0) (Array.sub arr 0 (Array.length arr - 1)) (Array.sub arr 1 (Array.length arr - 1)) in
  let sorted arr = if Array.length arr <= 1 then true else sorted arr in
  if Bkey.fence_compare t.low t.high >= 0 then err "low fence >= high fence"
  else
    match t.body with
    | Leaf entries ->
        if t.height <> 0 then err "leaf with nonzero height"
        else if not (sorted (Array.map fst entries)) then err "leaf keys not sorted"
        else if
          not
            (Array.for_all (fun (k, _) -> Bkey.in_range k ~low:t.low ~high:t.high) entries)
        then err "leaf key out of fence range"
        else Ok ()
    | Internal { keys; children } ->
        if t.height < 1 then err "internal node with height < 1"
        else if Array.length children <> Array.length keys + 1 then
          err "children/keys arity mismatch"
        else if Array.length keys = 0 then err "internal node without separators"
        else if not (sorted keys) then err "separator keys not sorted"
        else if not (Array.for_all (fun k -> Bkey.in_range k ~low:t.low ~high:t.high) keys) then
          err "separator out of fence range"
        else Ok ()

let pp fmt t =
  Format.fprintf fmt "@[<v>%s h=%d [%a, %a) snap=%Ld desc=[%s] keys=%d@]"
    (if is_leaf t then "leaf" else "internal")
    t.height Bkey.pp_fence t.low Bkey.pp_fence t.high t.snap_created
    (String.concat ";" (Array.to_list (Array.map Int64.to_string t.descendants)))
    (nkeys t)
