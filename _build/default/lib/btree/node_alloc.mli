(** Distributed slot allocator for B-tree nodes.

    Placement is round-robin across memnodes to balance load (Sec. 2.3).
    To avoid a contention hotspot on the per-memnode allocation pointer,
    each proxy reserves slots in chunks with a small compare-and-swap
    transaction and then hands them out locally. Slots freed by the
    garbage collector go to a shared per-memnode free list that
    allocators drain before extending the slot region. *)

(** Cluster-wide allocator state shared by all proxies: the free lists
    maintained by each memnode's garbage collector. *)
module Shared : sig
  type t

  val create : n_memnodes:int -> t

  val free_count : t -> node:int -> int
end

type t

exception Out_of_slots of int
(** Memnode id whose slot region is exhausted. *)

val create :
  ?chunk:int ->
  ?first_node:int ->
  cluster:Sinfonia.Cluster.t ->
  layout:Layout.t ->
  shared:Shared.t ->
  unit ->
  t
(** [chunk] (default 64) is the number of slots reserved per
    reservation transaction. [first_node] seeds the round-robin
    placement. *)

val alloc : t -> Dyntxn.Objref.t
(** Allocate a slot on the next memnode in round-robin order. May run a
    reservation transaction (must be called inside a simulation). *)

val alloc_on : t -> node:int -> Dyntxn.Objref.t
(** Allocate a slot on a specific memnode. *)

val free : t -> Dyntxn.Objref.t -> unit
(** Return a slot to the shared free list (used by the GC). The slot
    must belong to the layout's slot region. *)

val reserved : t -> node:int -> int
(** Locally reserved slots not yet handed out (tests). *)
