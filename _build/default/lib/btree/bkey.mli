(** B-tree keys and fence keys.

    Keys are arbitrary byte strings ordered lexicographically. Every
    B-tree node carries two fence keys delimiting the half-open key range
    [\[low, high)] it is responsible for, whether or not those keys are
    present (Sec. 3, after Lehman–Yao and Graefe). *)

type t = string

val compare : t -> t -> int

val equal : t -> t -> bool

(** Fence: a key or an infinity. The root spans [\[Neg_inf, Pos_inf)]. *)
type fence = Neg_inf | Key of t | Pos_inf

val fence_compare : fence -> fence -> int

val fence_equal : fence -> fence -> bool

val in_range : t -> low:fence -> high:fence -> bool
(** [in_range k ~low ~high] is [low <= k < high]. *)

val fence_le_key : fence -> t -> bool
(** [fence_le_key f k] is [f <= k] treating [f] as a lower bound. *)

val key_lt_fence : t -> fence -> bool
(** [key_lt_fence k f] is [k < f] treating [f] as an upper bound. *)

val pp : Format.formatter -> t -> unit

val pp_fence : Format.formatter -> fence -> unit

val encode_fence : Codec.Enc.t -> fence -> unit

val decode_fence : Codec.Dec.t -> fence

val encode : Codec.Enc.t -> t -> unit

val decode : Codec.Dec.t -> t
