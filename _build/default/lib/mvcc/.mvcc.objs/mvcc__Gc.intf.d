lib/mvcc/gc.mli: Btree Dyntxn
