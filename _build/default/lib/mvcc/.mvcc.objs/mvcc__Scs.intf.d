lib/mvcc/scs.mli: Btree Dyntxn
