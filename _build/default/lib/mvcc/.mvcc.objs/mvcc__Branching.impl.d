lib/mvcc/branching.ml: Array Btree Catalog Dyntxn Format Hashtbl Int64 List Option Sim Sinfonia String
