lib/mvcc/branching.mli: Btree Dyntxn
