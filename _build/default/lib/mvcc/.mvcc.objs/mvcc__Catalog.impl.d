lib/mvcc/catalog.ml: Btree Codec Dyntxn String
