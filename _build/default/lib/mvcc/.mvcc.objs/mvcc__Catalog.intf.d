lib/mvcc/catalog.mli: Btree Dyntxn
