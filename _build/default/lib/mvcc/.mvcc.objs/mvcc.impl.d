lib/mvcc/mvcc.ml: Branching Catalog Gc Scs
