lib/mvcc/scs.ml: Btree Dyntxn Option Sim
