lib/mvcc/gc.ml: Address Array Btree Bytes Cluster Codec Coordinator Dyntxn Hashtbl Heap Int64 List Memnode Mtx Sim Sinfonia String
