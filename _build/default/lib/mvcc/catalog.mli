(** Snapshot catalog for branching versions (Sec. 5.1).

    One entry per snapshot id: the snapshot's root location, its parent
    in the version tree, the id of the first branch created from it (0
    when none — the snapshot is then a writable tip), and the number of
    branches (bounded by β).

    The paper stores the catalog in a dedicated B-tree whose {e leaves
    are replicated at every memnode} and cached at proxies. Because
    snapshot ids are dense integers, this implementation indexes entries
    directly by id within a replicated region — which preserves exactly
    the properties the paper relies on (any-replica validation,
    all-replica atomic updates, proxy caching) without an extra index
    structure; see DESIGN.md. *)

type entry = {
  root : Dyntxn.Objref.t;
  parent : int64;  (** -1 for the initial snapshot. *)
  first_branch : int64;  (** 0 = none: the snapshot is writable. *)
  nbranches : int;
  deleted : bool;  (** Branch deleted; awaiting garbage collection. *)
}

val no_parent : int64

val is_writable : entry -> bool
(** No branches were created from it (and it is not deleted): the
    snapshot is a tip and accepts writes. *)

(** {1 Access within a transaction}

    Reads come from the proxy cache when warm. [read] registers the
    entry for commit-time validation (used for the tip an up-to-date
    operation acts on); [dirty_read] does not (ancestry and root
    locations of read-only snapshots are immutable, Sec. 5.1). *)

val read : Btree.Ops.tree -> Dyntxn.Txn.t -> sid:int64 -> entry option

val dirty_read : ?use_cache:bool -> Btree.Ops.tree -> Dyntxn.Txn.t -> sid:int64 -> entry option

val write : Btree.Ops.tree -> Dyntxn.Txn.t -> sid:int64 -> entry -> unit
(** Buffer an entry update; commits atomically at every memnode. *)

(** {1 Global snapshot-id counter} *)

val read_counter : Btree.Ops.tree -> Dyntxn.Txn.t -> int64
(** Validated read of the global snapshot-id counter. *)

val write_counter : Btree.Ops.tree -> Dyntxn.Txn.t -> int64 -> unit
