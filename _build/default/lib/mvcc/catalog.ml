module Ops = Btree.Ops
module Layout = Btree.Layout
module Txn = Dyntxn.Txn
module Objref = Dyntxn.Objref

type entry = {
  root : Objref.t;
  parent : int64;
  first_branch : int64;
  nbranches : int;
  deleted : bool;
}

let no_parent = -1L

let is_writable e = e.nbranches = 0 && not e.deleted

let encode_entry e =
  let enc = Codec.Enc.create ~initial_size:48 () in
  Objref.encode enc e.root;
  Codec.Enc.i64 enc e.parent;
  Codec.Enc.i64 enc e.first_branch;
  Codec.Enc.u8 enc e.nbranches;
  Codec.Enc.bool enc e.deleted;
  Codec.Enc.to_string enc

let decode_entry s =
  if String.length s = 0 then None
  else
    let d = Codec.Dec.of_string s in
    let root = Objref.decode d in
    let parent = Codec.Dec.i64 d in
    let first_branch = Codec.Dec.i64 d in
    let nbranches = Codec.Dec.u8 d in
    let deleted = Codec.Dec.bool d in
    Some { root; parent; first_branch; nbranches; deleted }

let entry_off tree sid =
  Layout.catalog_entry_off (Ops.layout tree) ~tree:(Ops.tree_id tree) ~sid

let entry_len = Layout.catalog_entry_len

let read tree txn ~sid =
  decode_entry (Txn.read_replicated txn ~off:(entry_off tree sid) ~len:entry_len)

let dirty_read ?use_cache tree txn ~sid =
  decode_entry (Txn.dirty_read_replicated ?use_cache txn ~off:(entry_off tree sid) ~len:entry_len)

let write tree txn ~sid entry =
  Txn.write_replicated txn ~off:(entry_off tree sid) ~len:entry_len (encode_entry entry)

let counter_off tree = Layout.global_sid_off (Ops.layout tree) ~tree:(Ops.tree_id tree)

let read_counter tree txn =
  let s = Txn.read_replicated txn ~off:(counter_off tree) ~len:Layout.slot_len_small in
  if String.length s = 0 then 0L else Codec.Dec.i64 (Codec.Dec.of_string s)

let write_counter tree txn v =
  let e = Codec.Enc.create ~initial_size:8 () in
  Codec.Enc.i64 e v;
  Txn.write_replicated txn ~off:(counter_off tree) ~len:Layout.slot_len_small
    (Codec.Enc.to_string e)
