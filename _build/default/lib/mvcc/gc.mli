(** Snapshot garbage collection (Sec. 4.4).

    Minuet records, per tree, a global {e lowest snapshot id}: the
    smallest snapshot clients may still query. A background process
    sweeps the B-tree node slots at each memnode and reclaims every node
    that has been copied to a snapshot id <= the watermark — such nodes
    are never referenced by any snapshot newer than the watermark.
    Reclaimed slots are zeroed (so stale readers fail validation or the
    empty-slot safety check) and returned to the allocator's free
    list. *)

val set_lowest : Btree.Ops.tree -> int64 -> unit
(** Publish the watermark (replicated at every memnode). *)

val get_lowest : Btree.Ops.tree -> int64
(** Current watermark (0 when never set). *)

val sweep : Btree.Ops.tree -> alloc:Btree.Node_alloc.t -> int
(** One full sweep over every memnode's slot region using the current
    watermark; returns the number of slots reclaimed. Reclamation of a
    slot is transactional (compare current sequence number, write
    zeros), so racing writers are never clobbered. *)

val run_background : Btree.Ops.tree -> alloc:Btree.Node_alloc.t -> interval:float -> unit
(** Spawn a process sweeping every [interval] simulated seconds, forever
    (bounded by the simulation horizon). *)

val sweep_branching :
  Btree.Ops.tree list -> alloc:Btree.Node_alloc.t -> roots:Dyntxn.Objref.t list -> int
(** Mark-and-sweep reclamation for branching versions (Sec. 5.2:
    deleted what-if branches give their storage back, including
    discretionary copies). [roots] must be the live roots of {e every}
    tree sharing the cluster's slot region (see
    [Branching.live_roots]); [trees] supplies the layout and a cluster
    handle. Nodes written after the sweep starts are never collected
    (they carry sequence numbers above the sweep's watermark), so the
    sweep is safe to run concurrently with updates. Returns the number
    of slots reclaimed. *)

val keep_recent : Btree.Ops.tree -> n:int -> unit
(** Convenience watermark policy from the paper: always support queries
    over the [n] most recent snapshots — sets the watermark to
    [tip - n] when positive. *)
