(** Umbrella module of the [mvcc] library: snapshot lifecycle management
    on top of the multiversion B-tree — the snapshot creation service
    with borrowing (Sec. 4.3), garbage collection (Sec. 4.4), and
    writable clones / branching versions (Sec. 5). *)

module Scs = Scs
module Gc = Gc
module Catalog = Catalog
module Branching = Branching
