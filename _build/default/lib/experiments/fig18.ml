(* Figure 18: average scan latency as a function of the staleness bound
   k, with the 100% update workload of Fig. 17 running concurrently.
   The text also reports the corresponding update latency curve
   (~16 ms at k=0 falling toward ~2 ms at k=60) and notes scan latency
   with concurrent updates stays within 1.4x of the no-update case.

   Expected shape: a shallow curve — small k means many scans pay for
   snapshot creation; large k means updates run faster and compete for
   memnode CPU. *)

open Exp_common

let figure = "fig18"

let title = "Scan latency vs staleness bound k (with concurrent updates)"

let k_sweep params =
  let scale = params.duration /. 60.0 in
  List.map (fun k -> (Printf.sprintf "k=%g" k, k *. scale)) [ 0.0; 5.0; 15.0; 30.0; 60.0 ]

let measure ~params ~hosts ~label ~k ~with_updates =
  in_sim ~seed:params.seed (fun () ->
      let d = deploy ~hosts ~k () in
      preload d ~records:params.records;
      let updaters = if with_updates then params.clients_per_host * hosts else 0 in
      let clients = updaters + 1 in
      let workload_of i =
        if i = updaters then
          Ycsb.Workload.create ~record_count:params.records ~scan_length:params.scan_count
            ~mix:Ycsb.Workload.scan_only ()
        else Ycsb.Workload.create ~record_count:params.records ~mix:Ycsb.Workload.update_only ()
      in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup ~clients
          ~duration:(params.warmup +. params.duration)
          ~workload_of
          ~exec:(fun ~client op -> minuet_exec d ~client op)
          ()
      in
      let hist kind =
        Option.value
          (List.assoc_opt kind result.Ycsb.Driver.latency_by_kind)
          ~default:(Sim.Stats.Hist.create ())
      in
      let scan_hist = hist "scan" and update_hist = hist "update" in
      {
        label =
          [
            ("hosts", string_of_int hosts);
            ("k", label);
            ("updates", if with_updates then "on" else "off");
          ];
        metrics =
          [
            ("scan_mean_ms", ms (Sim.Stats.Hist.mean scan_hist));
            ("scan_p95_ms", ms (Sim.Stats.Hist.quantile scan_hist 0.95));
            ("update_mean_ms", ms (Sim.Stats.Hist.mean update_hist));
            ("scans", float_of_int (Sim.Stats.Hist.count scan_hist));
          ];
      })

let compute params =
  let hosts = min 15 (List.fold_left max 1 params.hosts) in
  (* Reference point: scan latency without any updates. *)
  let baseline = measure ~params ~hosts ~label:"k=30(idle)" ~k:0.5 ~with_updates:false in
  baseline
  :: List.map (fun (label, k) -> measure ~params ~hosts ~label ~k ~with_updates:true)
       (k_sweep params)

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
