(* Figure 14: time series of update throughput around a single snapshot
   creation (100% update workload; the paper issues the snapshot at
   t = 20 s on 25 hosts and plots 1-second buckets).

   Expected shape: a visible dip when the snapshot is created — every
   subsequent update must copy its whole path — recovering to the
   pre-snapshot level once the hot paths have been copied (Sec. 6.3). *)

open Exp_common

let figure = "fig14"

let title = "Update throughput around one snapshot creation (time series)"

let choose_hosts params =
  (* The paper uses 25 hosts. *)
  let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> 25 in
  min 25 (last params.hosts)

let compute ?(snapshot_at = 4.0) ?(total = 14.0) params =
  let hosts = choose_hosts params in
  (* The dip's duration is the time to first-touch-copy every hot leaf
     (the paper's 100M-key tree takes 20-30 s at ~200k updates/s). Scale
     the tree so the recovery spans several buckets at our rates. *)
  let records = max params.records 150_000 in
  in_sim ~seed:params.seed (fun () ->
      let d = deploy ~hosts () in
      preload d ~records;
      let start = Sim.now () in
      (* Fire a single snapshot request mid-run. *)
      Sim.spawn (fun () ->
          Sim.delay snapshot_at;
          let s = d.sessions.(0) in
          ignore (Minuet.Session.snapshot s : Minuet.Session.snapshot));
      let workload_of _ =
        Ycsb.Workload.create ~record_count:records ~mix:Ycsb.Workload.update_only ()
      in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~series_width:1.0
          ~clients:(params.clients_per_host * hosts)
          ~duration:total ~workload_of
          ~exec:(fun ~client op -> minuet_exec d ~client op)
          ()
      in
      let buckets = Array.to_list result.Ycsb.Driver.series in
      (* Series timestamps are absolute simulation time (the preload
         phase included); rebase onto the measurement start and drop the
         ramp-up and trailing partial buckets. *)
      let buckets =
        List.filteri (fun i _ -> i < List.length buckets - 1) buckets
        |> List.filter_map (fun (t, n) ->
               let rel = t -. Float.of_int (int_of_float start) in
               if rel < 0.0 then None else Some (rel, n))
      in
      buckets
      |> List.map (fun (t, n) ->
             {
               label =
                 [
                   ("hosts", string_of_int hosts);
                   ("t", Printf.sprintf "%.0f" t);
                   ("snapshot_at", Printf.sprintf "%.0f" snapshot_at);
                 ];
               metrics = [ ("tput_ops_s", float_of_int n) ];
             }))

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
