lib/experiments/exp_common.ml: Array Btree Cdb Float List Minuet Option Printf Sim Sinfonia String Ycsb
