lib/experiments/fig10.ml: Btree Exp_common List Sim Ycsb
