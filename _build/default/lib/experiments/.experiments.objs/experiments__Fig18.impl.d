lib/experiments/fig18.ml: Exp_common List Option Printf Sim Ycsb
