lib/experiments/fig12.ml: Cdb Exp_common List Sim Ycsb
