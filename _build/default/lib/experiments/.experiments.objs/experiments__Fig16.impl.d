lib/experiments/fig16.ml: Exp_common Float List Option Sim Ycsb
