lib/experiments/fig15.ml: Exp_common List Minuet Mvcc Option Sim Ycsb
