lib/experiments/fig14.ml: Array Exp_common Float List Minuet Printf Sim Ycsb
