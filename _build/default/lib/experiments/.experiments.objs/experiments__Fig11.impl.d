lib/experiments/fig11.ml: Cdb Exp_common List Sim Ycsb
