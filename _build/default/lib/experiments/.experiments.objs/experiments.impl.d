lib/experiments/experiments.ml: Ablations Exp_common Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig16 Fig17 Fig18
