lib/experiments/ablations.ml: Exp_common List Minuet Sim Sinfonia Ycsb
