lib/experiments/exp_common.mli: Btree Cdb Minuet Sim Sinfonia Ycsb
