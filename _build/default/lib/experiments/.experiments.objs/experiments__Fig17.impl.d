lib/experiments/fig17.ml: Exp_common List Option Sim Ycsb
