lib/experiments/fig13.ml: Array Cdb Exp_common Hashtbl List Minuet Sim Ycsb
