(* Figure 10: aggregate throughput of the YCSB load phase (uniformly
   random inserts into an initially empty tree), dirty traversals
   enabled vs the baseline of Aguilera et al., for 5-35 hosts.

   Expected shape: dirty traversals scale much better — up to ~2x at 35
   hosts — because baseline splits must update the replicated
   sequence-number table at every memnode and whole-path validation
   aborts more transactions under contention (Sec. 6.2). *)

open Exp_common

let figure = "fig10"

let title = "Load throughput: dirty traversals vs baseline (Aguilera et al.)"

let mode_name = function
  | Btree.Ops.Dirty_traversal -> "dirty"
  | Btree.Ops.Validated_traversal -> "baseline"

let point ~params ~hosts ~mode =
  in_sim ~seed:params.seed (fun () ->
      let d = deploy ~mode ~hosts () in
      (* The paper runs the YCSB load phase for a fixed time (60 s) from
         an empty tree; >99% of that time is spent loading an
         already-large tree. At our scaled duration we pre-grow the tree
         (untimed) and measure the steady loading regime: all clients
         insert fresh keys from one shared stream as fast as they can. *)
      preload d ~records:params.records;
      let shared =
        Ycsb.Workload.create ~record_count:params.records ~mix:Ycsb.Workload.insert_only ()
      in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup
          ~clients:(params.clients_per_host * hosts)
          ~duration:(params.warmup +. params.duration)
          ~workload_of:(fun _ -> shared)
          ~exec:(fun ~client op -> minuet_exec d ~client op)
          ()
      in
      let lat = Ycsb.Driver.overall_latency result in
      {
        label = [ ("hosts", string_of_int hosts); ("mode", mode_name mode) ];
        metrics =
          [
            ("tput_ops_s", result.Ycsb.Driver.throughput);
            ("mean_ms", ms (Sim.Stats.Hist.mean lat));
            ("p95_ms", ms (Sim.Stats.Hist.quantile lat 0.95));
            ("failures", float_of_int result.Ycsb.Driver.failures);
          ];
      })

let compute params =
  List.concat_map
    (fun hosts ->
      List.map
        (fun mode -> point ~params ~hosts ~mode)
        [ Btree.Ops.Dirty_traversal; Btree.Ops.Validated_traversal ])
    params.hosts

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
