(* Figure 12: peak throughput scalability for single-key transactions
   (100% read / update / insert), Minuet vs CDB, 5-35 hosts.

   Expected shape: both systems scale near-linearly; Minuet reads are up
   to ~50% faster than its writes, CDB's read/write gap is <10%
   (Sec. 6.2). *)

open Exp_common

let figure = "fig12"

let title = "Single-key throughput scalability, Minuet vs CDB"

let mixes =
  [
    ("read", Ycsb.Workload.read_only);
    ("update", Ycsb.Workload.update_only);
    ("insert", Ycsb.Workload.insert_only);
  ]

let measure ~params ~hosts ~mix_name ~mix ~system =
  in_sim ~seed:params.seed (fun () ->
      let exec =
        match system with
        | `Minuet ->
            let d = deploy ~hosts () in
            preload d ~records:params.records;
            fun ~client op -> minuet_exec d ~client op
        | `Cdb ->
            let cdb = Cdb.create ~hosts () in
            preload_cdb cdb ~records:params.records;
            fun ~client op -> cdb_exec cdb ~client op
      in
      let shared = Ycsb.Workload.create ~record_count:params.records ~mix () in
      let workload_of _ = shared in
      let clients =
        params.clients_per_host * hosts
        * (match system with `Minuet -> 1 | `Cdb -> cdb_client_factor)
      in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup ~clients
          ~duration:(params.warmup +. params.duration)
          ~workload_of ~exec ()
      in
      let lat = Ycsb.Driver.overall_latency result in
      {
        label =
          [
            ("system", match system with `Minuet -> "minuet" | `Cdb -> "cdb");
            ("op", mix_name);
            ("hosts", string_of_int hosts);
          ];
        metrics =
          [
            ("tput_ops_s", result.Ycsb.Driver.throughput);
            ("mean_ms", ms (Sim.Stats.Hist.mean lat));
          ];
      })

let compute params =
  List.concat_map
    (fun hosts ->
      List.concat_map
        (fun (mix_name, mix) ->
          [
            measure ~params ~hosts ~mix_name ~mix ~system:`Minuet;
            measure ~params ~hosts ~mix_name ~mix ~system:`Cdb;
          ])
        mixes)
    params.hosts

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
