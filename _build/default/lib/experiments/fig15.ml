(* Figure 15: borrowed snapshots. 15 YCSB clients, 3 running a 100%
   scan workload and 12 a 100% update workload; scan throughput as a
   function of scan size, with snapshot borrowing enabled vs disabled.

   Expected shape: with short scans the snapshot creation rate is the
   bottleneck and borrowing wins by an order of magnitude; with long
   scans the scan itself dominates and the two modes converge
   (Sec. 6.3). *)

open Exp_common

let figure = "fig15"

let title = "Borrowed snapshots: scan throughput vs scan size"

(* The paper partitions 15 YCSB client processes 3:12; each process
   drives many threads. *)
let scan_clients params = 3 * params.clients_per_host

let update_clients params = 12 * params.clients_per_host

let default_sizes params =
  [ params.scan_count / 10; params.scan_count; params.scan_count * 10 ]
  |> List.filter (fun s -> s > 0)

let measure ~params ~hosts ~scan_size ~borrowing =
  in_sim ~seed:params.seed (fun () ->
      let d = deploy ~hosts ~borrowing () in
      preload d ~records:params.records;
      let workload_of i =
        if i < scan_clients params then
          Ycsb.Workload.create ~record_count:params.records ~scan_length:scan_size
            ~mix:Ycsb.Workload.scan_only ()
        else Ycsb.Workload.create ~record_count:params.records ~mix:Ycsb.Workload.update_only ()
      in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup
          ~clients:(scan_clients params + update_clients params)
          ~duration:(params.warmup +. params.duration)
          ~workload_of
          ~exec:(fun ~client op -> minuet_exec d ~client op)
          ()
      in
      let scan_hist =
        Option.value
          (List.assoc_opt "scan" result.Ycsb.Driver.latency_by_kind)
          ~default:(Sim.Stats.Hist.create ())
      in
      let scans = Sim.Stats.Hist.count scan_hist in
      let scs = Minuet.Db.scs d.db ~index:0 in
      {
        label =
          [
            ("hosts", string_of_int hosts);
            ("scan_size", string_of_int scan_size);
            ("borrowing", if borrowing then "on" else "off");
          ];
        metrics =
          [
            ("scan_tput_s", float_of_int scans /. result.Ycsb.Driver.measured_seconds);
            ("snapshots_created", float_of_int (Mvcc.Scs.snapshots_created scs));
            ("borrows", float_of_int (Mvcc.Scs.borrows scs));
          ];
      })

let compute params =
  let hosts = min 15 (List.fold_left max 1 params.hosts) in
  List.concat_map
    (fun scan_size ->
      [
        measure ~params ~hosts ~scan_size ~borrowing:true;
        measure ~params ~hosts ~scan_size ~borrowing:false;
      ])
    (default_sizes params)

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
