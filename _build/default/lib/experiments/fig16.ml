(* Figure 16: scalability of long scans. 80% of clients run updates,
   20% run long snapshot scans; the snapshot staleness bound k is large
   enough (paper: 30 s) that snapshot creation is not a bottleneck.
   Reported metric: scan throughput in keys/s vs cluster size.

   Expected shape: near-perfectly linear scaling (Sec. 6.3). *)

open Exp_common

let figure = "fig16"

let title = "Scan scalability (keys/s), 80% update / 20% scan clients"

(* The paper's k = 30 s against 60 s runs; keep the same ratio. *)
let k_for params = Float.max 0.5 (params.duration /. 2.0)

let measure ~params ~hosts =
  in_sim ~seed:params.seed (fun () ->
      let d = deploy ~hosts ~k:(k_for params) () in
      preload d ~records:params.records;
      let clients = params.clients_per_host * hosts in
      let scanners = max 1 (clients / 5) in
      let workload_of i =
        if i < scanners then
          Ycsb.Workload.create ~record_count:params.records ~scan_length:params.scan_count
            ~mix:Ycsb.Workload.scan_only ()
        else Ycsb.Workload.create ~record_count:params.records ~mix:Ycsb.Workload.update_only ()
      in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup ~clients
          ~duration:(params.warmup +. params.duration)
          ~workload_of
          ~exec:(fun ~client op -> minuet_exec d ~client op)
          ()
      in
      let scan_hist =
        Option.value
          (List.assoc_opt "scan" result.Ycsb.Driver.latency_by_kind)
          ~default:(Sim.Stats.Hist.create ())
      in
      let scans = Sim.Stats.Hist.count scan_hist in
      let keys_per_s =
        float_of_int (scans * params.scan_count) /. result.Ycsb.Driver.measured_seconds
      in
      {
        label = [ ("hosts", string_of_int hosts) ];
        metrics =
          [
            ("scan_keys_s", keys_per_s);
            ("scans", float_of_int scans);
            ("scan_mean_ms", ms (Sim.Stats.Hist.mean scan_hist));
          ];
      })

let compute params = List.map (fun hosts -> measure ~params ~hosts) params.hosts

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
