(* Figure 17: impact of long-running scans on update throughput for
   several snapshot staleness bounds k, vs cluster size. A 100% update
   workload runs alongside one dedicated scan client; k controls how
   often scans force a fresh snapshot (k = 0: one snapshot per scan,
   strictly serializable).

   Expected shape: the no-scans line on top; large k costs 30-50%; as k
   shrinks snapshot creation (and the copy-on-write churn it induces)
   eats throughput, with k = 0 below 10% of the no-scan line
   (Sec. 6.3). *)

open Exp_common

let figure = "fig17"

let title = "Update throughput with concurrent scans, for staleness bounds k"

(* Paper k values 0/5/30/60 against 60 s runs, rescaled to the measured
   duration. *)
let k_values params =
  let scale = params.duration /. 60.0 in
  [ ("none", None); ("k=0", Some 0.0); ("k=5", Some (5.0 *. scale)); ("k=30", Some (30.0 *. scale));
    ("k=60", Some (60.0 *. scale)) ]

let measure ~params ~hosts ~label ~k =
  in_sim ~seed:params.seed (fun () ->
      let d = deploy ~hosts ?k () in
      preload d ~records:params.records;
      let updaters = params.clients_per_host * hosts in
      let clients = match k with None -> updaters | Some _ -> updaters + 1 in
      let workload_of i =
        if i = updaters then
          (* The dedicated scan client (present unless k = none). *)
          Ycsb.Workload.create ~record_count:params.records ~scan_length:params.scan_count
            ~mix:Ycsb.Workload.scan_only ()
        else Ycsb.Workload.create ~record_count:params.records ~mix:Ycsb.Workload.update_only ()
      in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup ~clients
          ~duration:(params.warmup +. params.duration)
          ~workload_of
          ~exec:(fun ~client op -> minuet_exec d ~client op)
          ()
      in
      let update_hist =
        Option.value
          (List.assoc_opt "update" result.Ycsb.Driver.latency_by_kind)
          ~default:(Sim.Stats.Hist.create ())
      in
      let updates = Sim.Stats.Hist.count update_hist in
      {
        label = [ ("hosts", string_of_int hosts); ("k", label) ];
        metrics =
          [
            ( "update_tput_s",
              float_of_int updates /. result.Ycsb.Driver.measured_seconds );
            ("update_mean_ms", ms (Sim.Stats.Hist.mean update_hist));
          ];
      })

let compute params =
  List.concat_map
    (fun hosts ->
      List.map (fun (label, k) -> measure ~params ~hosts ~label ~k) (k_values params))
    params.hosts

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
