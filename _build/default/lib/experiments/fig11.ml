(* Figure 11: latency-throughput trade-off of Minuet and CDB for reads,
   updates and inserts, varying offered load (closed-loop client count)
   on a fixed-size cluster.

   Expected shape: Minuet latency stays flat (sub-millisecond) until
   ~90% of peak throughput; CDB latency is roughly an order of magnitude
   higher throughout (Sec. 6.2). *)

open Exp_common

let figure = "fig11"

let title = "Latency vs throughput, Minuet and CDB (fixed cluster)"

let default_hosts params =
  (* The paper uses 10-15 hosts for this figure. *)
  let rec mid = function
    | [ x ] -> x
    | _ :: ([ _ ] as tl) -> List.hd tl
    | _ :: tl -> mid tl
    | [] -> 15
  in
  min 15 (mid params.hosts)

let mixes = [ ("read", Ycsb.Workload.read_only); ("update", Ycsb.Workload.update_only);
              ("insert", Ycsb.Workload.insert_only) ]

let client_sweep = [ 2; 8; 24; 64; 128 ]

let measure_minuet ~params ~hosts ~mix_name ~mix ~clients =
  in_sim ~seed:params.seed (fun () ->
      let d = deploy ~hosts () in
      preload d ~records:params.records;
      let shared = Ycsb.Workload.create ~record_count:params.records ~mix () in
      let workload_of _ = shared in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup ~clients
          ~duration:(params.warmup +. params.duration)
          ~workload_of
          ~exec:(fun ~client op -> minuet_exec d ~client op)
          ()
      in
      let lat = Ycsb.Driver.overall_latency result in
      {
        label =
          [
            ("system", "minuet"); ("op", mix_name); ("hosts", string_of_int hosts);
            ("clients", string_of_int clients);
          ];
        metrics =
          [
            ("tput_ops_s", result.Ycsb.Driver.throughput);
            ("mean_ms", ms (Sim.Stats.Hist.mean lat));
            ("p95_ms", ms (Sim.Stats.Hist.quantile lat 0.95));
          ];
      })

let measure_cdb ~params ~hosts ~mix_name ~mix ~clients =
  in_sim ~seed:params.seed (fun () ->
      let cdb = Cdb.create ~hosts () in
      preload_cdb cdb ~records:params.records;
      let shared = Ycsb.Workload.create ~record_count:params.records ~mix () in
      let workload_of _ = shared in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup
          ~clients:(clients * cdb_client_factor)
          ~duration:(params.warmup +. params.duration)
          ~workload_of
          ~exec:(fun ~client op -> cdb_exec cdb ~client op)
          ()
      in
      let lat = Ycsb.Driver.overall_latency result in
      {
        label =
          [
            ("system", "cdb"); ("op", mix_name); ("hosts", string_of_int hosts);
            ("clients", string_of_int clients);
          ];
        metrics =
          [
            ("tput_ops_s", result.Ycsb.Driver.throughput);
            ("mean_ms", ms (Sim.Stats.Hist.mean lat));
            ("p95_ms", ms (Sim.Stats.Hist.quantile lat 0.95));
          ];
      })

let compute params =
  let hosts = default_hosts params in
  List.concat_map
    (fun (mix_name, mix) ->
      List.concat_map
        (fun clients ->
          [
            measure_minuet ~params ~hosts ~mix_name ~mix ~clients;
            measure_cdb ~params ~hosts ~mix_name ~mix ~clients;
          ])
        client_sweep)
    mixes

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
