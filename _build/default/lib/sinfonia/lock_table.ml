type mode = Shared | Exclusive

type range = { start : int; len : int; mode : mode }

type held = { h_start : int; h_len : int; h_owner : int64; h_mode : mode; h_since : float }

type t = {
  mutable held : held list;
  (* Wake-ups registered by blocked acquirers; drained on every release. *)
  mutable waiters : (unit -> unit) list;
}

let create () = { held = []; waiters = [] }

let overlaps a b = a.h_start < b.h_start + b.h_len && b.h_start < a.h_start + a.h_len

let validate ranges =
  List.iter
    (fun r ->
      if r.len <= 0 then invalid_arg "Lock_table: range length must be positive";
      if r.start < 0 then invalid_arg "Lock_table: negative range start")
    ranges

let conflicts t ~owner ranges =
  List.exists
    (fun r ->
      let candidate =
      { h_start = r.start; h_len = r.len; h_owner = owner; h_mode = r.mode; h_since = 0.0 }
    in
      List.exists
        (fun h ->
          h.h_owner <> owner
          && (h.h_mode = Exclusive || candidate.h_mode = Exclusive)
          && overlaps h candidate)
        t.held)
    ranges

let would_conflict t ~owner ranges =
  validate ranges;
  conflicts t ~owner ranges

let try_acquire t ~owner ranges =
  validate ranges;
  if conflicts t ~owner ranges then false
  else begin
    let now = if Sim.inside () then Sim.now () else 0.0 in
    let add r = { h_start = r.start; h_len = r.len; h_owner = owner; h_mode = r.mode; h_since = now } in
    t.held <- List.rev_append (List.rev_map add ranges) t.held;
    true
  end

let release t ~owner =
  t.held <- List.filter (fun h -> h.h_owner <> owner) t.held;
  let waiters = t.waiters in
  t.waiters <- [];
  List.iter (fun wake -> wake ()) waiters

let holds t ~owner = List.exists (fun h -> h.h_owner = owner) t.held

let owners_older_than t cutoff =
  List.filter_map (fun h -> if h.h_since < cutoff then Some h.h_owner else None) t.held
  |> List.sort_uniq Int64.compare

let held_ranges t = List.length t.held

(* Blocking acquisition: retry on every release event until the deadline.
   Each wait round suspends until either a release occurs or the deadline
   timer fires, whichever comes first (the loser of the race is ignored
   thanks to Sim.suspend's single-shot wakener). *)
let acquire_blocking t ~owner ranges ~timeout =
  validate ranges;
  let deadline = Sim.now () +. timeout in
  let rec attempt () =
    if try_acquire t ~owner ranges then true
    else if Sim.now () >= deadline then false
    else begin
      let outcome =
        Sim.suspend (fun wake ->
            t.waiters <- (fun () -> wake `Released) :: t.waiters;
            Sim.spawn (fun () ->
                Sim.delay (deadline -. Sim.now ());
                wake `Timeout))
      in
      match outcome with `Released -> attempt () | `Timeout -> false
    end
  in
  attempt ()
