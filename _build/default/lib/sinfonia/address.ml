type memnode_id = int

type t = { node : memnode_id; off : int }

let make ~node ~off =
  if node < 0 || off < 0 then invalid_arg "Address.make: negative component";
  { node; off }

let compare a b =
  match Int.compare a.node b.node with 0 -> Int.compare a.off b.off | c -> c

let equal a b = a.node = b.node && a.off = b.off

let hash a = Hashtbl.hash (a.node, a.off)

let pp fmt a = Format.fprintf fmt "%d:%d" a.node a.off

let to_string a = Format.asprintf "%a" pp a

(* Wire format: u32 node, i64 offset. The null sentinel encodes node as
   0xffff_ffff. *)
let encoded_size = 12

let null = { node = -1; off = 0 }

let is_null a = a.node < 0

let encode enc a =
  Codec.Enc.u32 enc (if a.node < 0 then 0xffff_ffff else a.node);
  Codec.Enc.int_as_i64 enc a.off

let decode dec =
  let node = Codec.Dec.u32 dec in
  let off = Codec.Dec.int_as_i64 dec in
  if node = 0xffff_ffff then null else { node; off }
