(* Paged sparse storage: only written 64 KiB pages materialize, so a
   large, mostly-empty address space (e.g. the baseline mode's
   replicated sequence-number table region) costs nothing. *)

let page_bits = 16

let page_size = 1 lsl page_bits

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable high : int;
  capacity : int;
}

exception Out_of_space

let create ?(capacity = 1 lsl 30) () =
  if capacity <= 0 then invalid_arg "Heap.create: capacity must be positive";
  { pages = Hashtbl.create 64; high = 0; capacity }

let capacity t = t.capacity

let high_water t = t.high

let resident t = Hashtbl.length t.pages * page_size

let page_for t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.add t.pages idx p;
      p

(* Iterate over the page-aligned spans of [off, off+len). *)
let iter_spans ~off ~len f =
  let pos = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let page = !pos lsr page_bits in
    let in_page = !pos land (page_size - 1) in
    let span = min !remaining (page_size - in_page) in
    f ~page ~in_page ~src_off:(!pos - off) ~span;
    pos := !pos + span;
    remaining := !remaining - span
  done

let write t ~off data =
  let len = String.length data in
  if off < 0 then invalid_arg "Heap.write: negative offset";
  if len = 0 then invalid_arg "Heap.write: empty write";
  if off + len > t.capacity then raise Out_of_space;
  iter_spans ~off ~len (fun ~page ~in_page ~src_off ~span ->
      Bytes.blit_string data src_off (page_for t page) in_page span);
  if off + len > t.high then t.high <- off + len

let read t ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Heap.read: negative offset or length";
  if off + len > t.capacity then invalid_arg "Heap.read: beyond capacity";
  if len = 0 then ""
  else begin
    let buf = Bytes.make len '\000' in
    iter_spans ~off ~len (fun ~page ~in_page ~src_off ~span ->
        match Hashtbl.find_opt t.pages page with
        | Some p -> Bytes.blit p in_page buf src_off span
        | None -> ());
    Bytes.unsafe_to_string buf
  end

let equal_at t ~off expected =
  let len = String.length expected in
  if off < 0 || off + len > t.capacity then false
  else begin
    let ok = ref true in
    iter_spans ~off ~len (fun ~page ~in_page ~src_off ~span ->
        if !ok then
          match Hashtbl.find_opt t.pages page with
          | Some p ->
              let rec cmp i =
                if i = span then true
                else if Bytes.get p (in_page + i) <> expected.[src_off + i] then false
                else cmp (i + 1)
              in
              if not (cmp 0) then ok := false
          | None ->
              (* An absent page reads as zeros. *)
              let rec zeros i =
                if i = span then true
                else if expected.[src_off + i] <> '\000' then false
                else zeros (i + 1)
              in
              if not (zeros 0) then ok := false);
    !ok
  end

let snapshot t = read t ~off:0 ~len:t.high

let restore t contents =
  if String.length contents > t.capacity then raise Out_of_space;
  Hashtbl.reset t.pages;
  t.high <- 0;
  if String.length contents > 0 then write t ~off:0 contents
