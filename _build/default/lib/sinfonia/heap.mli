(** A memnode's linear byte-addressable storage.

    Storage is paged and sparse: only written 64 KiB pages consume
    memory, up to a configurable capacity that mirrors the memnode's
    DRAM budget. Reads of never-written bytes return zeros (as freshly
    mapped memory would). *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 1 GiB of simulated address space. *)

val capacity : t -> int

val high_water : t -> int
(** Highest offset ever written + 1 (0 if untouched). *)

val resident : t -> int
(** Bytes of actually-materialized storage (whole pages). *)

exception Out_of_space

val write : t -> off:int -> string -> unit
(** Raises {!Out_of_space} when the write would exceed capacity, and
    [Invalid_argument] on negative offsets or when called with an empty
    string. *)

val read : t -> off:int -> len:int -> string
(** Reading past the high-water mark yields zero bytes (within
    capacity); reading past capacity raises [Invalid_argument]. *)

val equal_at : t -> off:int -> string -> bool
(** [equal_at t ~off expected] compares stored bytes with [expected]
    without copying. *)

val snapshot : t -> string
(** Copy of the heap contents up to the high-water mark (for
    replication and tests). *)

val restore : t -> string -> unit
(** Overwrite contents from a {!snapshot} string. *)
