(** Addresses in Sinfonia's global storage space: a memnode id plus a
    byte offset within that memnode's linear address space. *)

type memnode_id = int

type t = { node : memnode_id; off : int }

val make : node:memnode_id -> off:int -> t
(** Raises [Invalid_argument] on negative components. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** "node:off" *)

val to_string : t -> string

val encode : Codec.Enc.t -> t -> unit

val decode : Codec.Dec.t -> t

val encoded_size : int
(** Fixed wire size in bytes. *)

val null : t
(** Sentinel address (node -1). Never dereferenced; used for "no
    pointer" slots in fixed layouts. *)

val is_null : t -> bool
