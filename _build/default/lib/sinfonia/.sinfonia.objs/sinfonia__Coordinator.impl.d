lib/sinfonia/coordinator.ml: Array Cluster Config Float Int List Memnode Mtx Sim String
