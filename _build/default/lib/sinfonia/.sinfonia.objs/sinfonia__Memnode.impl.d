lib/sinfonia/memnode.ml: Address Config Float Hashtbl Heap List Lock_table Mtx Printf Sim String
