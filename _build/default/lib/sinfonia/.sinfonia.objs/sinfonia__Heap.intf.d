lib/sinfonia/heap.mli:
