lib/sinfonia/cluster.mli: Config Memnode Mtx Sim
