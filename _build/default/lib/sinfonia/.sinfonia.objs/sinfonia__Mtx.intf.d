lib/sinfonia/mtx.mli: Address Format
