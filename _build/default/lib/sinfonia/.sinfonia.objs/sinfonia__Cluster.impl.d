lib/sinfonia/cluster.ml: Array Config Int64 List Memnode Mtx Sim String
