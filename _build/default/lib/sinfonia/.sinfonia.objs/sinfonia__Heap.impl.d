lib/sinfonia/heap.ml: Bytes Hashtbl String
