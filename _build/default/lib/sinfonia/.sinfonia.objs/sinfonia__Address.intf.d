lib/sinfonia/address.mli: Codec Format
