lib/sinfonia/lock_table.ml: Int64 List Sim
