lib/sinfonia/config.ml: Format
