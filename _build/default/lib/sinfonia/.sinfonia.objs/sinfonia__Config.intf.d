lib/sinfonia/config.mli: Format
