lib/sinfonia/lock_table.mli:
