lib/sinfonia/sinfonia.ml: Address Cluster Config Coordinator Heap Lock_table Memnode Mtx
