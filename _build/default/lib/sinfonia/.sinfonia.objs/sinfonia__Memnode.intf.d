lib/sinfonia/memnode.mli: Config Heap Lock_table Mtx Sim
