lib/sinfonia/address.ml: Codec Format Hashtbl Int
