lib/sinfonia/mtx.ml: Address Format Int List String
