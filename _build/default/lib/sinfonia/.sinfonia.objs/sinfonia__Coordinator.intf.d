lib/sinfonia/coordinator.mli: Cluster Mtx
