(** Byte-range lock table for one memnode.

    Minitransaction phase one acquires, all-or-nothing, the ranges
    touched by the transaction at this memnode. An acquisition that
    would conflict either fails immediately (ordinary minitransactions,
    which are then retried by the coordinator) or waits until the locks
    are released or a timeout expires (blocking minitransactions,
    Sec. 4.1 of the paper).

    Owners are opaque 64-bit transaction ids. Ranges owned by the same
    owner never conflict with each other. *)

type t

type mode = Shared | Exclusive
(** Compares and reads take shared locks; writes take exclusive locks
    (two minitransactions may validate the same object concurrently,
    but a write conflicts with everything else). *)

type range = { start : int; len : int; mode : mode }
(** Byte range [\[start, start+len)]. [len] must be positive. *)

val create : unit -> t

val try_acquire : t -> owner:int64 -> range list -> bool
(** Acquire all ranges or none. Returns [false] if any range overlaps a
    range held by a different owner. *)

val acquire_blocking : t -> owner:int64 -> range list -> timeout:float -> bool
(** Like {!try_acquire} but waits (in simulated time) for conflicting
    locks to drain, up to [timeout] seconds. Must be called from inside a
    simulation. Returns [false] on timeout (nothing is held then). *)

val release : t -> owner:int64 -> unit
(** Release every range held by [owner] and wake blocked acquirers.
    No-op for unknown owners. *)

val holds : t -> owner:int64 -> bool

val held_ranges : t -> int
(** Number of currently-held ranges (for tests and reporting). *)

val would_conflict : t -> owner:int64 -> range list -> bool

val owners_older_than : t -> float -> int64 list
(** Owners holding at least one lock acquired before the given
    simulated time (candidates for crash recovery). Must be called
    inside a simulation (acquisition times are simulated time). *)
