exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

module Enc = struct
  type t = Buffer.t

  let create ?(initial_size = 256) () = Buffer.create initial_size

  let to_string = Buffer.contents

  let length = Buffer.length

  let u8 t v =
    if v < 0 || v > 0xff then invalid_arg "Codec.Enc.u8: out of range";
    Buffer.add_char t (Char.chr v)

  let u16 t v =
    if v < 0 || v > 0xffff then invalid_arg "Codec.Enc.u16: out of range";
    Buffer.add_uint16_le t v

  let u32 t v =
    if v < 0 || v > 0xffff_ffff then invalid_arg "Codec.Enc.u32: out of range";
    Buffer.add_int32_le t (Int32.of_int v)

  let i64 t v = Buffer.add_int64_le t v

  let int_as_i64 t v = i64 t (Int64.of_int v)

  let rec varint t v =
    if v < 0 then invalid_arg "Codec.Enc.varint: negative"
    else if v < 0x80 then Buffer.add_char t (Char.chr v)
    else begin
      Buffer.add_char t (Char.chr (0x80 lor (v land 0x7f)));
      varint t (v lsr 7)
    end

  let bool t v = u8 t (if v then 1 else 0)

  let float t v = i64 t (Int64.bits_of_float v)

  let raw t s = Buffer.add_string t s

  let bytes t s =
    varint t (String.length s);
    raw t s

  let list t write items =
    varint t (List.length items);
    List.iter write items

  let array t write items =
    varint t (Array.length items);
    Array.iter write items

  let option t write = function
    | None -> bool t false
    | Some v ->
        bool t true;
        write v
end

module Dec = struct
  type t = { src : string; mutable pos : int }

  let of_string ?(pos = 0) src = { src; pos }

  let pos t = t.pos

  let remaining t = String.length t.src - t.pos

  let at_end t = remaining t = 0

  let need t n =
    if remaining t < n then
      decode_error "Codec.Dec: need %d bytes at offset %d, only %d left" n t.pos (remaining t)

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = String.get_uint16_le t.src t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.src t.pos) land 0xffff_ffff in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    need t 8;
    let v = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let int_as_i64 t = Int64.to_int (i64 t)

  let varint t =
    let rec go shift acc =
      if shift > 62 then decode_error "Codec.Dec.varint: too long";
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | b -> decode_error "Codec.Dec.bool: invalid byte %d" b

  let float t = Int64.float_of_bits (i64 t)

  let raw t n =
    if n < 0 then decode_error "Codec.Dec.raw: negative length";
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t =
    let n = varint t in
    raw t n

  let list t read =
    let n = varint t in
    List.init n (fun _ -> read t)

  let array t read =
    let n = varint t in
    Array.init n (fun _ -> read t)

  let option t read = if bool t then Some (read t) else None
end

(* CRC-32, IEEE 802.3 reflected polynomial 0xEDB88320. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xffl) in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl

let with_checksum payload =
  let e = Enc.create ~initial_size:(String.length payload + 8) () in
  Enc.raw e payload;
  Enc.u32 e (Int32.to_int (crc32 payload) land 0xffff_ffff);
  Enc.to_string e

let check_checksum framed =
  let n = String.length framed in
  if n < 4 then decode_error "Codec.check_checksum: too short";
  let payload = String.sub framed 0 (n - 4) in
  let d = Dec.of_string ~pos:(n - 4) framed in
  let stored = Dec.u32 d in
  let computed = Int32.to_int (crc32 payload) land 0xffff_ffff in
  if stored <> computed then
    decode_error "Codec.check_checksum: mismatch (stored %#x, computed %#x)" stored computed;
  payload
