(** Binary serialization used to marshal B-tree nodes and metadata into
    Sinfonia's byte-addressable storage.

    Encoders append to an internal buffer; decoders consume a string and
    fail with {!Decode_error} on malformed input. All multi-byte integers
    are little-endian. *)

exception Decode_error of string

(** Append-only encoder. *)
module Enc : sig
  type t

  val create : ?initial_size:int -> unit -> t
  val to_string : t -> string
  val length : t -> int

  val u8 : t -> int -> unit
  (** Raises [Invalid_argument] unless in [\[0, 255\]]. *)

  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  (** Raises [Invalid_argument] unless in [\[0, 2^32)]. *)

  val i64 : t -> int64 -> unit
  val int_as_i64 : t -> int -> unit
  val varint : t -> int -> unit
  (** LEB128 for non-negative ints. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val bytes : t -> string -> unit
  (** Varint length prefix + raw bytes. *)

  val raw : t -> string -> unit
  (** Raw bytes, no length prefix. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Varint count prefix, then each element with the given writer. *)

  val array : t -> ('a -> unit) -> 'a array -> unit
  val option : t -> ('a -> unit) -> 'a option -> unit
end

(** Sequential decoder over a string. *)
module Dec : sig
  type t

  val of_string : ?pos:int -> string -> t
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int_as_i64 : t -> int
  val varint : t -> int
  val bool : t -> bool
  val float : t -> float
  val bytes : t -> string
  val raw : t -> int -> string
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val option : t -> (t -> 'a) -> 'a option
end

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 polynomial) of the whole string. *)

val with_checksum : string -> string
(** Append a CRC-32 trailer to a payload. *)

val check_checksum : string -> string
(** Verify and strip the CRC-32 trailer; raises {!Decode_error} on
    mismatch or truncation. *)
