(** "CDB": a behavioural model of the commercial main-memory database
    the paper compares against (Sec. 6.1; the described behaviour —
    hash partitioning, one execution thread per partition, synchronous
    stored procedures, multi-partition transactions engaging every
    server, per-query memory limits on scans — matches VoltDB/H-Store).

    Each host contributes [partitions_per_host] single-threaded
    partitions. Data is hash-partitioned by key; every record is also
    written synchronously to a replica partition on the next host
    (mirroring the paper's one-replica configuration). Multi-partition
    transactions coordinate {e all} partitions, which is why they do not
    scale (Fig. 13) and why range scans are impractical. *)

type t

val create :
  ?partitions_per_host:int ->
  ?svc_single:float ->
  ?svc_multi_coord:float ->
  ?client_overhead:float ->
  ?scan_limit:int ->
  ?net_one_way:float ->
  ?seed:int ->
  hosts:int ->
  unit ->
  t
(** Defaults: 5 partitions/host (the paper gives CDB five cores per
    host), 100 µs single-partition service time, multi-partition
    transactions cost [svc_multi_coord] plus 25 µs per participating
    partition (all partitions blocked meanwhile), 3.2 ms fixed
    client-stack overhead (the commercial system's synchronous client
    path), scans limited to 100k keys per query. *)

val hosts : t -> int

val partitions : t -> int

(** {1 Single-key stored procedures} (must run inside a simulation) *)

val read : t -> string -> string option

val insert : t -> string -> string -> unit

val update : t -> string -> string -> unit
(** Like {!insert} (upsert semantics for the benchmark schema). *)

val remove : t -> string -> bool

(** {1 Multi-partition transactions} *)

val multi_read : t -> string list -> string option list
(** Atomic read of several keys (the dual-key transactions of
    Sec. 6.2): engages every partition. *)

val multi_write : t -> (string * string) list -> unit

exception Scan_too_large of int
(** The paper: "CDB was unable to perform long scans due to internal
    memory limitations for individual queries." *)

val scan : t -> from:string -> count:int -> (string * string) list
(** Range scan: engages every partition and merges; raises
    {!Scan_too_large} beyond the per-query limit. *)

(** {1 Introspection} *)

val size : t -> int
(** Number of records (primaries only). *)

val ops_executed : t -> int
