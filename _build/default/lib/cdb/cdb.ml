module SMap = Map.Make (String)

type partition = { mutable store : string SMap.t; lane : Sim.Resource.t }

type t = {
  hosts : int;
  partitions_per_host : int;
  partitions : partition array;
  svc_single : float;
  svc_multi_coord : float;
  client_overhead : float;
  scan_limit : int;
  net : Sim.Net.t;
  mutable ops : int;
}

exception Scan_too_large of int

let create ?(partitions_per_host = 5) ?(svc_single = 100e-6) ?(svc_multi_coord = 300e-6)
    ?(client_overhead = 3.2e-3) ?(scan_limit = 100_000) ?(net_one_way = 25e-6) ?(seed = 0xCDB)
    ~hosts () =
  if hosts <= 0 then invalid_arg "Cdb.create: hosts must be positive";
  if partitions_per_host <= 0 then invalid_arg "Cdb.create: partitions_per_host must be positive";
  let n = hosts * partitions_per_host in
  let rng = Sim.Rng.create seed in
  {
    hosts;
    partitions_per_host;
    partitions =
      Array.init n (fun i ->
          {
            store = SMap.empty;
            lane = Sim.Resource.create ~name:(Printf.sprintf "cdb-partition-%d" i) ~servers:1 ();
          });
    svc_single;
    svc_multi_coord;
    client_overhead;
    scan_limit;
    net = Sim.Net.create ~one_way:net_one_way ~rng ();
    ops = 0;
  }

let hosts t = t.hosts

let partitions t = Array.length t.partitions

let ops_executed t = t.ops

let partition_of t key = Hashtbl.hash key mod Array.length t.partitions

(* The synchronous replica partition for [p] lives on the next host. *)
let replica_of t p = (p + t.partitions_per_host) mod Array.length t.partitions

(* One synchronous stored-procedure call against partition [p]:
   client-stack overhead, request hop, a slice of the partition's single
   execution thread, reply hop. *)
let call t p f =
  t.ops <- t.ops + 1;
  Sim.delay t.client_overhead;
  Sim.Net.transfer t.net ~bytes:96;
  let part = t.partitions.(p) in
  Sim.Resource.acquire part.lane;
  Sim.delay t.svc_single;
  let result = f part in
  Sim.Resource.release part.lane;
  Sim.Net.transfer t.net ~bytes:64;
  result

(* Mirror a write to the replica partition (synchronous, sequential so
   that no two lanes are ever held at once). *)
let mirror t p apply =
  let r = replica_of t p in
  if r <> p then begin
    Sim.Net.transfer t.net ~bytes:96;
    let part = t.partitions.(r) in
    Sim.Resource.acquire part.lane;
    Sim.delay (t.svc_single *. 0.6);
    apply part;
    Sim.Resource.release part.lane;
    Sim.Net.transfer t.net ~bytes:64
  end

let read t key =
  let p = partition_of t key in
  call t p (fun part -> SMap.find_opt key part.store)

let put_raw part key v = part.store <- SMap.add key v part.store

let insert t key v =
  let p = partition_of t key in
  call t p (fun part -> put_raw part key v);
  mirror t p (fun part -> put_raw part key v)

let update = insert

let remove t key =
  let p = partition_of t key in
  let existed = call t p (fun part ->
      let existed = SMap.mem key part.store in
      part.store <- SMap.remove key part.store;
      existed)
  in
  mirror t p (fun part -> part.store <- SMap.remove key part.store);
  existed

(* Multi-partition transaction: the coordinator stalls every partition's
   execution lane for the duration of the two-phase protocol — the
   behaviour that makes Fig. 13's CDB curve collapse. Lanes are acquired
   in index order (no deadlocks; single-partition calls never wait while
   holding a lane). *)
let multi t f =
  t.ops <- t.ops + 1;
  Sim.delay t.client_overhead;
  Sim.Net.transfer t.net ~bytes:128;
  let n = Array.length t.partitions in
  for p = 0 to n - 1 do
    Sim.Resource.acquire t.partitions.(p).lane
  done;
  (* Coordination work grows with participant count: every partition
     exchanges prepare/commit messages with the coordinator. *)
  Sim.delay (t.svc_multi_coord +. (25e-6 *. float_of_int n));
  let result = f () in
  for p = 0 to n - 1 do
    Sim.Resource.release t.partitions.(p).lane
  done;
  Sim.Net.transfer t.net ~bytes:64;
  result

let multi_read t keys =
  multi t (fun () ->
      List.map
        (fun key -> SMap.find_opt key t.partitions.(partition_of t key).store)
        keys)

let multi_write t pairs =
  multi t (fun () ->
      List.iter
        (fun (key, v) ->
          let p = partition_of t key in
          put_raw t.partitions.(p) key v;
          let r = replica_of t p in
          if r <> p then put_raw t.partitions.(r) key v)
        pairs)

let scan t ~from ~count =
  if count > t.scan_limit then raise (Scan_too_large count);
  multi t (fun () ->
      (* Gather candidates from every partition and merge. *)
      let candidates = ref [] in
      Array.iteri
        (fun p part ->
          let _, _, above = SMap.split from part.store in
          let taken = ref 0 in
          (try
             SMap.iter
               (fun k v ->
                 if !taken >= count then raise Exit;
                 (* Skip replica copies: only the primary owner reports
                    a key, otherwise the merge would duplicate it. *)
                 if partition_of t k = p then begin
                   candidates := (k, v) :: !candidates;
                   incr taken
                 end)
               (match SMap.find_opt from part.store with
               | Some v -> SMap.add from v above
               | None -> above)
           with Exit -> ()))
        t.partitions;
      let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) !candidates in
      List.filteri (fun i _ -> i < count) sorted)

let size t =
  (* Count primaries only: each record also lives on one replica, so
     divide raw totals is wrong under collisions; instead count keys
     whose primary partition is this one. *)
  Array.to_list t.partitions
  |> List.mapi (fun p part ->
         SMap.fold (fun k _ acc -> if partition_of t k = p then acc + 1 else acc) part.store 0)
  |> List.fold_left ( + ) 0
