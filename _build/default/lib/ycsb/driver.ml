module Hist = Sim.Stats.Hist

type result = {
  measured_seconds : float;
  ops : int;
  failures : int;
  throughput : float;
  latency_by_kind : (string * Hist.t) list;
  series : (float * int) array;
}

let overall_latency r =
  let merged = Hist.create () in
  List.iter (fun (_, h) -> Hist.merge_into ~dst:merged h) r.latency_by_kind;
  merged

let pp_result fmt r =
  Format.fprintf fmt "@[<v>ops=%d failures=%d throughput=%.0f ops/s over %.2fs@," r.ops r.failures
    r.throughput r.measured_seconds;
  List.iter
    (fun (kind, h) ->
      if Hist.count h > 0 then Format.fprintf fmt "  %-8s %a@," kind Hist.pp_summary h)
    r.latency_by_kind;
  Format.fprintf fmt "@]"

type shared = {
  mutable ops : int;
  mutable failures : int;
  hists : (string, Hist.t) Hashtbl.t;
  series : Sim.Stats.Series.t;
  warmup_end : float;
}

let hist_for shared kind =
  match Hashtbl.find_opt shared.hists kind with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.add shared.hists kind h;
      h

let execute_one shared ~exec ~client op =
  let t0 = Sim.now () in
  match exec ~client op with
  | () ->
      let elapsed = Sim.now () -. t0 in
      Sim.Stats.Series.add shared.series ~time:(Sim.now ()) 1;
      if Sim.now () >= shared.warmup_end then begin
        shared.ops <- shared.ops + 1;
        Hist.add (hist_for shared (Workload.op_kind op)) elapsed
      end
  | exception _ -> shared.failures <- shared.failures + 1

let finalize shared ~measured_seconds =
  let latency_by_kind =
    Hashtbl.fold (fun k h acc -> (k, h) :: acc) shared.hists []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    measured_seconds;
    ops = shared.ops;
    failures = shared.failures;
    throughput = (if measured_seconds > 0.0 then float_of_int shared.ops /. measured_seconds else 0.0);
    latency_by_kind;
    series = Sim.Stats.Series.buckets shared.series;
  }

let run ?(warmup = 0.0) ?(series_width = 1.0) ?(seed = 0x9C5B) ~clients ~duration ~workload_of
    ~exec () =
  if clients <= 0 then invalid_arg "Driver.run: clients must be positive";
  if duration <= warmup then invalid_arg "Driver.run: duration must exceed warmup";
  let start = Sim.now () in
  let t_end = start +. duration in
  let shared =
    {
      ops = 0;
      failures = 0;
      hists = Hashtbl.create 8;
      series = Sim.Stats.Series.create ~width:series_width;
      warmup_end = start +. warmup;
    }
  in
  let root_rng = Sim.Rng.create seed in
  let finished = Sim.Ivar.create () in
  let remaining = ref clients in
  for client = 0 to clients - 1 do
    let rng = Sim.Rng.split root_rng in
    let workload = workload_of client in
    Sim.spawn ~name:(Printf.sprintf "ycsb-client-%d" client) (fun () ->
        let rec loop () =
          if Sim.now () < t_end then begin
            execute_one shared ~exec ~client (Workload.next_op workload rng);
            loop ()
          end
        in
        loop ();
        decr remaining;
        if !remaining = 0 then Sim.Ivar.fill finished ())
  done;
  Sim.Ivar.read finished;
  finalize shared ~measured_seconds:(Sim.now () -. shared.warmup_end)

let run_load ?(seed = 0x10AD) ~clients ~n ~workload ~exec () =
  if clients <= 0 then invalid_arg "Driver.run_load: clients must be positive";
  let start = Sim.now () in
  let shared =
    {
      ops = 0;
      failures = 0;
      hists = Hashtbl.create 4;
      series = Sim.Stats.Series.create ~width:1.0;
      warmup_end = start;
    }
  in
  let rng = Sim.Rng.create seed in
  let finished = Sim.Ivar.create () in
  let remaining = ref clients in
  (* Divide the n inserts among clients round-robin so keys stay
     distinct. *)
  for client = 0 to clients - 1 do
    let value_rng = Sim.Rng.split rng in
    Sim.spawn ~name:(Printf.sprintf "ycsb-loader-%d" client) (fun () ->
        let i = ref client in
        while !i < n do
          let op =
            Workload.Insert (Workload.key_of workload !i, Sim.Rng.bytes value_rng 8)
          in
          execute_one shared ~exec ~client op;
          i := !i + clients
        done;
        decr remaining;
        if !remaining = 0 then Sim.Ivar.fill finished ())
  done;
  Sim.Ivar.read finished;
  finalize shared ~measured_seconds:(Sim.now () -. start)
