lib/ycsb/workload.mli: Seq Sim
