lib/ycsb/keygen.mli: Sim
