lib/ycsb/driver.mli: Format Sim Workload
