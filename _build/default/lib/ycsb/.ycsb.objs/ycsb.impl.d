lib/ycsb/ycsb.ml: Driver Keygen Workload
