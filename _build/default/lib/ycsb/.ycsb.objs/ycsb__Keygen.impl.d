lib/ycsb/keygen.ml: Int64 Printf Sim
