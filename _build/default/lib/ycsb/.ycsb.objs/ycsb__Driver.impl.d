lib/ycsb/driver.ml: Format Hashtbl List Printf Sim String Workload
