lib/ycsb/workload.ml: Keygen Seq Sim
