(** Closed-loop benchmark driver: a set of client processes issue
    operations back-to-back (like YCSB client threads), with a warmup
    period excluded from measurement.

    Offered load is controlled by the number of clients, as in the
    paper's latency/throughput experiments. *)

type result = {
  measured_seconds : float;
  ops : int;  (** Completed operations inside the measurement window. *)
  failures : int;  (** Operations whose executor raised. *)
  throughput : float;  (** ops / measured_seconds. *)
  latency_by_kind : (string * Sim.Stats.Hist.t) list;
      (** Completion latency histograms keyed by operation kind. *)
  series : (float * int) array;
      (** Per-bucket completed-op counts over the whole run (including
          warmup), for time-series plots. *)
}

val overall_latency : result -> Sim.Stats.Hist.t
(** All kinds merged. *)

val pp_result : Format.formatter -> result -> unit

val run :
  ?warmup:float ->
  ?series_width:float ->
  ?seed:int ->
  clients:int ->
  duration:float ->
  workload_of:(int -> Workload.t) ->
  exec:(client:int -> Workload.op -> unit) ->
  unit ->
  result
(** [run ~clients ~duration ~workload_of ~exec ()] spawns [clients]
    processes; client [i] draws operations from [workload_of i] and
    executes them via [exec] until [duration] simulated seconds have
    passed (measurement starts after [warmup], default 0). Blocks until
    every client stops. Must run inside a simulation.

    [exec] exceptions are counted as failures (the client keeps going).
    [series_width] (default 1 s) sets the time-series bucket width. *)

val run_load :
  ?seed:int ->
  clients:int ->
  n:int ->
  workload:Workload.t ->
  exec:(client:int -> Workload.op -> unit) ->
  unit ->
  result
(** The YCSB load phase: [n] inserts of distinct hashed keys divided
    among [clients] clients; measures the whole phase. *)
