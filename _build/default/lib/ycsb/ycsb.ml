(** Umbrella module of the [ycsb] library: a reimplementation of the
    Yahoo! Cloud Serving Benchmark workload generator and closed-loop
    driver used throughout the paper's evaluation (Sec. 6.1). *)

module Keygen = Keygen
module Workload = Workload
module Driver = Driver
