(** Umbrella module of the [dyntxn] library: the dynamic transaction
    layer that turns Sinfonia minitransactions into general optimistic
    transactions over objects (Sec. 2.2), extended with dirty reads
    (Sec. 3). *)

module Objref = Objref
module Objcache = Objcache
module Txn = Txn
