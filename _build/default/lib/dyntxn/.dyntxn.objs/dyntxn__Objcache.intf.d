lib/dyntxn/objcache.mli: Objref
