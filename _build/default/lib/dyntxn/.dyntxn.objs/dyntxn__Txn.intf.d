lib/dyntxn/txn.mli: Objcache Objref Sinfonia
