lib/dyntxn/objcache.ml: Hashtbl Objref
