lib/dyntxn/objref.ml: Bytes Codec Format Int Int32 Sinfonia String
