lib/dyntxn/objref.mli: Codec Format Sinfonia
