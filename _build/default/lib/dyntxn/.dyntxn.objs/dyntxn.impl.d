lib/dyntxn/dyntxn.ml: Objcache Objref Txn
