lib/dyntxn/txn.ml: Address Array Bytes Cluster Coordinator Hashtbl List Mtx Objcache Objref Sim Sinfonia String
