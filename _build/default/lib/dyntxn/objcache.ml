type entry = { seq : int64; payload : string }

(* LRU: hashtable keyed by address paired with an intrusive
   doubly-linked recency list. *)
type lru_node = {
  key : Objref.t;
  mutable value : entry;
  mutable prev : lru_node option;
  mutable next : lru_node option;
}

type t = {
  table : (Objref.t, lru_node) Hashtbl.t;
  capacity : int;
  mutable head : lru_node option; (* most recently used *)
  mutable tail : lru_node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Objcache.create: capacity must be positive";
  { table = Hashtbl.create 1024; capacity; head = None; tail = None; hits = 0; misses = 0 }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key

let insert t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { key; value; prev = None; next = None } in
      Hashtbl.add t.table key node;
      push_front t node

let invalidate t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let size t = Hashtbl.length t.table

let hits t = t.hits

let misses t = t.misses
