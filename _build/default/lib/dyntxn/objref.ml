type t = { addr : Sinfonia.Address.t; len : int }

let header_size = 12

let make ~addr ~len =
  if len <= header_size then invalid_arg "Objref.make: slot too small for header";
  { addr; len }

let payload_capacity t = t.len - header_size

let node t = t.addr.Sinfonia.Address.node

let compare a b =
  match Sinfonia.Address.compare a.addr b.addr with
  | 0 -> Int.compare a.len b.len
  | c -> c

let equal a b = compare a b = 0

let pp fmt t = Format.fprintf fmt "%a+%d" Sinfonia.Address.pp t.addr t.len

let encode enc t =
  Sinfonia.Address.encode enc t.addr;
  Codec.Enc.u32 enc t.len

let decode dec =
  let addr = Sinfonia.Address.decode dec in
  let len = Codec.Dec.u32 dec in
  { addr; len }

let seq_of_slot slot =
  if String.length slot < header_size then invalid_arg "Objref.seq_of_slot: slot too short";
  String.get_int64_le slot 0

let payload_of_slot slot =
  if String.length slot < header_size then invalid_arg "Objref.payload_of_slot: slot too short";
  let len = Int32.to_int (String.get_int32_le slot 8) in
  if len < 0 || len > String.length slot - header_size then
    raise (Codec.Decode_error "Objref.payload_of_slot: corrupt length field");
  String.sub slot header_size len

let slot_of ~seq ~payload =
  let b = Bytes.create (header_size + String.length payload) in
  Bytes.set_int64_le b 0 seq;
  Bytes.set_int32_le b 8 (Int32.of_int (String.length payload));
  Bytes.blit_string payload 0 b header_size (String.length payload);
  Bytes.to_string b
