(** Per-proxy object cache.

    The cache is deliberately {e incoherent}: it is never invalidated by
    remote writes (Sec. 2.3). Stale entries are detected later by OCC
    validation or by the fence-key / copied-to safety checks of dirty
    traversals, which then evict them. LRU eviction bounds memory. *)

type t

type entry = { seq : int64; payload : string }

val create : ?capacity:int -> unit -> t
(** [capacity] is the maximum number of cached objects (default 65536). *)

val find : t -> Objref.t -> entry option
(** Refreshes LRU position on hit. *)

val insert : t -> Objref.t -> entry -> unit
(** Insert or overwrite; may evict the least-recently-used entry. *)

val invalidate : t -> Objref.t -> unit

val clear : t -> unit

val size : t -> int

val hits : t -> int

val misses : t -> int
(** {!find} misses (for reporting cache effectiveness). *)
