(** Reference to an object stored in Sinfonia's address space.

    An object occupies a fixed-size slot with a 12-byte header: the
    object's sequence number (8 bytes, bumped on every update and used
    for OCC validation) and the payload length (4 bytes), followed by
    the payload itself. *)

type t = { addr : Sinfonia.Address.t; len : int }
(** [len] is the full slot size including the 12-byte header. *)

val header_size : int
(** Bytes reserved for the sequence number and payload length (12). *)

val make : addr:Sinfonia.Address.t -> len:int -> t
(** Raises [Invalid_argument] if [len <= header_size]. *)

val payload_capacity : t -> int

val node : t -> int
(** Memnode holding the object. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val encode : Codec.Enc.t -> t -> unit

val decode : Codec.Dec.t -> t

val seq_of_slot : string -> int64
(** Sequence number from raw slot bytes (first 8 bytes, little-endian).
    A slot of zeros (never written) has sequence number 0. *)

val payload_of_slot : string -> string
(** Extract the payload using the stored length field. Raises
    [Codec.Decode_error] if the length field is corrupt. *)

val slot_of : seq:int64 -> payload:string -> string
(** Assemble raw slot bytes. *)
