(* Binary min-heap ordered by (time, sequence number).  The sequence
   number breaks ties FIFO so that runs are deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* valid in [0, size) *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Ensure capacity for one more element, using [filler] for fresh cells. *)
let reserve t filler =
  if t.size = Array.length t.heap then begin
    let capacity = max 64 (2 * Array.length t.heap) in
    let bigger = Array.make capacity filler in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  reserve t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    (* Keep the vacated slot pointing at the just-popped entry: it
       bounds retained garbage to one already-delivered payload per
       slot without needing an option type. *)
    t.heap.(t.size) <- top;
    if t.size > 0 then sift_down t 0;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  t.heap <- [||];
  t.size <- 0
