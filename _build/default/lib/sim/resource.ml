type t = {
  name : string;
  servers : int;
  mutable busy : int;
  waiters : (unit -> unit) Queue.t;
  mutable busy_integral : float; (* server-seconds *)
  mutable last_update : float;
}

let create ?(name = "resource") ~servers () =
  if servers <= 0 then invalid_arg "Resource.create: servers must be positive";
  { name; servers; busy = 0; waiters = Queue.create (); busy_integral = 0.0; last_update = 0.0 }

let name t = t.name

let servers t = t.servers

let account t =
  let now = Scheduler.now () in
  t.busy_integral <- t.busy_integral +. (float_of_int t.busy *. (now -. t.last_update));
  t.last_update <- now

let acquire t =
  if t.busy < t.servers then begin
    account t;
    t.busy <- t.busy + 1
  end
  else begin
    Scheduler.suspend (fun wake -> Queue.add (fun () -> wake ()) t.waiters);
    (* The releasing process already transferred its server slot to us:
       [busy] stays unchanged across the hand-off. *)
    ()
  end

let release t =
  match Queue.take_opt t.waiters with
  | Some wake -> wake () (* hand the slot directly to the next waiter *)
  | None ->
      account t;
      t.busy <- t.busy - 1

let use t ~service_time =
  acquire t;
  (match Scheduler.delay service_time with
  | () -> release t
  | exception e ->
      release t;
      raise e)

let busy t = t.busy

let queue_length t = Queue.length t.waiters

let busy_time t =
  t.busy_integral +. (float_of_int t.busy *. (Scheduler.now () -. t.last_update))

let utilization t ~since =
  let now = Scheduler.now () in
  let elapsed = now -. since in
  if elapsed <= 0.0 then 0.0
  else begin
    (* We only track the integral since creation; for [since] > creation
       this is exact only if callers snapshot busy_time at [since]. For
       reporting we approximate with the whole-run average, which is what
       the benches use (since = 0 or measurement start with a fresh
       resource). *)
    let total = busy_time t in
    min 1.0 (total /. (float_of_int t.servers *. elapsed))
  end
