type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used to expand seeds into xoshiro state. *)
let splitmix64 (state : int64 ref) : int64 =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 (seed : int64) : t =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  (* xoshiro must not be seeded with all zeros. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl (x : int64) (k : int) : int64 =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let int64 t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Rng.int64: bound must be positive";
  (* Rejection sampling (retry while the draw falls in the biased tail)
     to avoid modulo bias. *)
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound) in
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    if Int64.compare r limit >= 0 then loop () else Int64.rem r bound
  in
  loop ()

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (int64 t (Int64.of_int bound))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 high bits, as in the reference xoshiro double conversion. *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let exponential t ~mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))
