lib/sim/scheduler.mli: Rng
