lib/sim/net.mli: Rng
