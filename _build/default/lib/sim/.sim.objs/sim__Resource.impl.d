lib/sim/resource.ml: Queue Scheduler
