lib/sim/metrics.ml: Format Hashtbl List Stats String
