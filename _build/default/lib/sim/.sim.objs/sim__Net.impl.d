lib/sim/net.ml: Rng Scheduler
