lib/sim/resource.mli:
