lib/sim/rng.mli:
