lib/sim/sim.ml: Event_queue Metrics Net Resource Rng Scheduler Stats
