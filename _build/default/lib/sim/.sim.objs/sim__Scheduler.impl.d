lib/sim/scheduler.ml: Effect Event_queue Logs Option Printexc Queue Rng
