(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256** seeded through splitmix64, which gives
    high-quality 64-bit output and cheap splitting: every simulation
    component derives its own independent stream from a root seed, so a
    whole run is a pure function of that seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is statistically
    independent of [t]'s future output. Both generators advance
    deterministically. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val int64 : t -> int64 -> int64
(** [int64 t bound] is uniform in [\[0, bound)]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val bytes : t -> int -> string
(** [bytes t n] is a string of [n] uniformly random bytes. *)
