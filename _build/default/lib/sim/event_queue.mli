(** Priority queue of timestamped events for the discrete-event scheduler.

    Events with equal timestamps pop in insertion order (FIFO), which the
    simulator relies on for determinism. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at the given simulated time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, FIFO among ties. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event without removing it. *)

val clear : 'a t -> unit
