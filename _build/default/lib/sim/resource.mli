(** FCFS k-server resource, used to model CPU capacity of simulated
    servers (memnodes, proxies, partitions).

    A resource has [servers] identical servers. {!use} occupies one
    server for a service time, queueing FIFO when all are busy. The
    integral of busy servers over time is tracked so utilization can be
    reported. *)

type t

val create : ?name:string -> servers:int -> unit -> t
(** [servers] must be positive. *)

val name : t -> string

val servers : t -> int

val acquire : t -> unit
(** Block until a server is free, then occupy it. *)

val release : t -> unit
(** Release an occupied server. *)

val use : t -> service_time:float -> unit
(** [use t ~service_time] = acquire, hold for [service_time] simulated
    seconds, release. *)

val busy : t -> int
(** Number of currently-occupied servers. *)

val queue_length : t -> int
(** Number of processes waiting for a server. *)

val utilization : t -> since:float -> float
(** Average fraction of servers busy between [since] and now,
    in [\[0, 1\]]. Returns [0.] for an empty interval. *)

val busy_time : t -> float
(** Integral of (busy servers) dt since creation, in server-seconds. *)
