(** Named metric registry, used to instrument the substrate (message
    counts, aborts, retries, copies) without threading counters through
    every call site. A registry is created per simulated cluster, so
    distinct runs never share state. *)

type t

val create : unit -> t

val counter : t -> string -> Stats.Counter.t
(** Counter registered under [name]; created on first use. *)

val hist : t -> string -> Stats.Hist.t
(** Histogram registered under [name]; created on first use. *)

val incr : t -> string -> unit
(** [incr t name] bumps the counter called [name]. *)

val add : t -> string -> int -> unit

val observe : t -> string -> float -> unit
(** [observe t name v] records [v] into the histogram called [name]. *)

val counter_value : t -> string -> int
(** Current value, 0 if the counter was never touched. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val hists : t -> (string * Stats.Hist.t) list

val pp : Format.formatter -> t -> unit
