(** Network model: message delays for a data-center LAN.

    A message delay is [one_way + per_byte * size + Exp(jitter)]. The
    model is deliberately simple — the experiments in the paper depend on
    round-trip counts and server-side service times far more than on
    wire-level detail. *)

type t

val create :
  ?one_way:float ->
  ?per_byte:float ->
  ?jitter:float ->
  rng:Rng.t ->
  unit ->
  t
(** Defaults: [one_way] = 25 µs, [per_byte] = 1 ns (≈ 8 Gb/s effective),
    [jitter] mean = 5 µs. *)

val sample_one_way : t -> bytes:int -> float
(** Sample a one-way delay for a message of [bytes] bytes. *)

val transfer : t -> bytes:int -> unit
(** Suspend the calling process for one sampled one-way delay. *)

val messages_sent : t -> int
(** Total number of [transfer]/[sample_one_way] calls, for reporting. *)

val bytes_sent : t -> int
