type t = {
  one_way : float;
  per_byte : float;
  jitter : float;
  rng : Rng.t;
  mutable messages : int;
  mutable bytes : int;
}

let create ?(one_way = 25e-6) ?(per_byte = 1e-9) ?(jitter = 5e-6) ~rng () =
  { one_way; per_byte; jitter; rng; messages = 0; bytes = 0 }

let sample_one_way t ~bytes =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  let jitter = if t.jitter > 0.0 then Rng.exponential t.rng ~mean:t.jitter else 0.0 in
  t.one_way +. (t.per_byte *. float_of_int bytes) +. jitter

let transfer t ~bytes = Scheduler.delay (sample_one_way t ~bytes)

let messages_sent t = t.messages

let bytes_sent t = t.bytes
