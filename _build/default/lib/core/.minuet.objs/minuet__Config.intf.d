lib/core/config.mli: Btree Sinfonia
