lib/core/db.ml: Array Btree Config Dyntxn Format List Mvcc Sim Sinfonia
