lib/core/session.mli: Btree Db Dyntxn Mvcc
