lib/core/harness.ml: Db Sim
