lib/core/minuet.ml: Btree Config Db Dyntxn Harness Mvcc Session Sim Sinfonia
