lib/core/harness.mli: Config Db
