lib/core/db.mli: Btree Config Dyntxn Format Mvcc Sim Sinfonia
