lib/core/config.ml: Btree Sinfonia
