lib/core/session.ml: Array Btree Config Db Dyntxn List Mvcc
