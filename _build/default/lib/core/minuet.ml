(** Minuet: a scalable distributed multiversion B-tree (VLDB 2012).

    This is the library's public face:
    - {!Harness} boots a simulated cluster and runs your code;
    - {!Db} is a running deployment, {!Session} a proxy-side handle
      with transactional [get]/[put]/[remove]/[scan], multi-index
      transactions, read-only snapshots for in-situ analytics, and
      writable clones (branching versions);
    - {!Config} selects the concurrency-control mode, node geometry and
      cost model.

    The substrate layers are re-exported for advanced use: [Sinfonia]
    (minitransactions), [Dyntxn] (dynamic transactions with dirty
    reads), [Btree] (the multiversion B-tree itself) and [Mvcc]
    (snapshot creation service, GC, branching). *)

module Config = Config
module Db = Db
module Session = Session
module Harness = Harness

(** {1 Substrate re-exports} *)

module Sinfonia = Sinfonia
module Dyntxn = Dyntxn
module Btree = Btree
module Mvcc = Mvcc
module Sim = Sim
