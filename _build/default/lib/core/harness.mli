(** One-call entry point: run a simulation with a freshly started
    database.

    {[
      Minuet.Harness.run (fun db ->
          let s = Minuet.Session.attach db in
          Minuet.Session.put s "key" "value";
          Minuet.Session.get s "key")
    ]} *)

val run : ?seed:int -> ?until:float -> ?config:Config.t -> (Db.t -> 'a) -> 'a
(** Start a simulation ({!Sim.run}), boot a database, and run [f].
    Returns [f]'s result once the simulation drains (or hits [until]).
    Raises [Failure] if [f] did not complete by then. *)
