let run ?seed ?until ?config f =
  let result = ref None in
  Sim.run ?seed ?until (fun () ->
      let db = Db.start ?config () in
      result := Some (f db));
  match !result with
  | Some v -> v
  | None -> failwith "Minuet.Harness.run: main process did not complete"
