(** A proxy-side session: the handle applications use to run
    transactional B-tree operations against a {!Db.t}.

    Each session models one proxy (Sec. 2): it has its own incoherent
    object cache and allocator chunks, and routes its Sinfonia traffic
    through a home memnode (typically the proxy's own host). Sessions
    are cheap; benchmarks attach one per simulated host. *)

type t

val attach : ?home:int -> Db.t -> t
(** [home] defaults to 0; benchmarks attach one session per host with
    [home = host]. *)

val db : t -> Db.t

val home : t -> int

val tree : t -> index:int -> Btree.Ops.tree
(** The underlying per-session tree handle (escape hatch for benches
    and tests). *)

(** {1 Up-to-date operations (strictly serializable)} *)

val get : ?index:int -> t -> string -> string option

val put : ?index:int -> t -> string -> string -> unit

val remove : ?index:int -> t -> string -> bool

val scan : ?index:int -> t -> from:string -> count:int -> (string * string) list
(** Scan against the writable tip; aborts easily under concurrent
    updates — prefer {!scan_at} a snapshot (Sec. 6.3). *)

(** {1 General transactions}

    Arbitrary multi-operation, multi-index, strictly serializable
    transactions — the dynamic-transaction layer exposed directly.
    Reads and writes inside the function see each other; the whole
    body commits atomically (and is re-executed from scratch on
    conflicts, so it must be idempotent apart from its [txn]
    operations). *)

type txn

val with_txn : t -> (txn -> 'a) -> 'a
(** Run the body in a retrying dynamic transaction. *)

val t_get : ?index:int -> txn -> string -> string option

val t_put : ?index:int -> txn -> string -> string -> unit

val t_remove : ?index:int -> txn -> string -> bool

val t_scan : ?index:int -> txn -> from:string -> count:int -> (string * string) list

(** {1 Multi-index transactions (Sec. 6.2)} *)

val multi_get : t -> (int * string) list -> string option list
(** [(index, key)] pairs, read atomically across indexes. *)

val multi_put : t -> (int * string * string) list -> unit

(** {1 Snapshots (linear mode)} *)

type snapshot = { index : int; sid : int64; root : Dyntxn.Objref.t }

val snapshot : ?index:int -> t -> snapshot
(** Obtain a read-only snapshot from the snapshot creation service
    (created or borrowed per Fig. 7; possibly up to [k] seconds stale
    when the service has a staleness bound). *)

val get_at : t -> snapshot -> string -> string option

val scan_at : t -> snapshot -> from:string -> count:int -> (string * string) list
(** Strictly serializable when the snapshot came from an SCS with
    [k = 0]; never blocks updates and never aborts due to them. *)

(** {1 Writable clones (branching mode)} *)

val branching : ?index:int -> t -> Mvcc.Branching.t
(** Branch-aware operations for a database started with
    [config.branching = true]. Raises [Invalid_argument] otherwise. *)
