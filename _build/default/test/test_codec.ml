(* Tests for the binary codec. *)

let check = Alcotest.check

let roundtrip encode decode v =
  let e = Codec.Enc.create () in
  encode e v;
  let d = Codec.Dec.of_string (Codec.Enc.to_string e) in
  decode d

let test_u8 () =
  List.iter
    (fun v -> check Alcotest.int "u8" v (roundtrip Codec.Enc.u8 Codec.Dec.u8 v))
    [ 0; 1; 127; 128; 255 ];
  (match Codec.Enc.u8 (Codec.Enc.create ()) 256 with
  | () -> Alcotest.fail "u8 out of range accepted"
  | exception Invalid_argument _ -> ());
  match Codec.Enc.u8 (Codec.Enc.create ()) (-1) with
  | () -> Alcotest.fail "u8 negative accepted"
  | exception Invalid_argument _ -> ()

let test_u16_u32 () =
  List.iter
    (fun v -> check Alcotest.int "u16" v (roundtrip Codec.Enc.u16 Codec.Dec.u16 v))
    [ 0; 255; 256; 65535 ];
  List.iter
    (fun v -> check Alcotest.int "u32" v (roundtrip Codec.Enc.u32 Codec.Dec.u32 v))
    [ 0; 65536; 0xffff_ffff ]

let test_i64 () =
  List.iter
    (fun v -> check Alcotest.int64 "i64" v (roundtrip Codec.Enc.i64 Codec.Dec.i64 v))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x0123456789abcdefL ]

let test_varint () =
  List.iter
    (fun v -> check Alcotest.int "varint" v (roundtrip Codec.Enc.varint Codec.Dec.varint v))
    [ 0; 1; 127; 128; 300; 16384; 1 lsl 30; max_int ];
  match Codec.Enc.varint (Codec.Enc.create ()) (-1) with
  | () -> Alcotest.fail "negative varint accepted"
  | exception Invalid_argument _ -> ()

let test_varint_sizes () =
  let size v =
    let e = Codec.Enc.create () in
    Codec.Enc.varint e v;
    Codec.Enc.length e
  in
  check Alcotest.int "1 byte" 1 (size 127);
  check Alcotest.int "2 bytes" 2 (size 128);
  check Alcotest.int "2 bytes max" 2 (size 16383);
  check Alcotest.int "3 bytes" 3 (size 16384)

let test_bool_float () =
  check Alcotest.bool "true" true (roundtrip Codec.Enc.bool Codec.Dec.bool true);
  check Alcotest.bool "false" false (roundtrip Codec.Enc.bool Codec.Dec.bool false);
  List.iter
    (fun v -> check (Alcotest.float 0.0) "float" v (roundtrip Codec.Enc.float Codec.Dec.float v))
    [ 0.0; -1.5; 3.14159; infinity; 1e-300 ]

let test_bytes () =
  List.iter
    (fun v -> check Alcotest.string "bytes" v (roundtrip Codec.Enc.bytes Codec.Dec.bytes v))
    [ ""; "a"; "hello world"; String.make 10000 'x'; "\000\001\255" ]

let test_list_array_option () =
  let enc_list e v = Codec.Enc.list e (Codec.Enc.varint e) v in
  let dec_list d = Codec.Dec.list d Codec.Dec.varint in
  check (Alcotest.list Alcotest.int) "list" [ 1; 2; 3 ] (roundtrip enc_list dec_list [ 1; 2; 3 ]);
  check (Alcotest.list Alcotest.int) "empty list" [] (roundtrip enc_list dec_list []);
  let enc_arr e v = Codec.Enc.array e (Codec.Enc.varint e) v in
  let dec_arr d = Codec.Dec.array d Codec.Dec.varint in
  check (Alcotest.array Alcotest.int) "array" [| 4; 5 |] (roundtrip enc_arr dec_arr [| 4; 5 |]);
  let enc_opt e v = Codec.Enc.option e (Codec.Enc.bytes e) v in
  let dec_opt d = Codec.Dec.option d Codec.Dec.bytes in
  check (Alcotest.option Alcotest.string) "some" (Some "x") (roundtrip enc_opt dec_opt (Some "x"));
  check (Alcotest.option Alcotest.string) "none" None (roundtrip enc_opt dec_opt None)

let test_mixed_sequence () =
  let e = Codec.Enc.create () in
  Codec.Enc.u8 e 7;
  Codec.Enc.bytes e "key";
  Codec.Enc.i64 e 42L;
  Codec.Enc.varint e 1000;
  let d = Codec.Dec.of_string (Codec.Enc.to_string e) in
  check Alcotest.int "u8" 7 (Codec.Dec.u8 d);
  check Alcotest.string "bytes" "key" (Codec.Dec.bytes d);
  check Alcotest.int64 "i64" 42L (Codec.Dec.i64 d);
  check Alcotest.int "varint" 1000 (Codec.Dec.varint d);
  check Alcotest.bool "at end" true (Codec.Dec.at_end d)

let test_truncated_input () =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e 42L;
  let s = Codec.Enc.to_string e in
  let d = Codec.Dec.of_string (String.sub s 0 4) in
  match Codec.Dec.i64 d with
  | (_ : int64) -> Alcotest.fail "truncated i64 decoded"
  | exception Codec.Decode_error _ -> ()

let test_invalid_bool () =
  let d = Codec.Dec.of_string "\002" in
  match Codec.Dec.bool d with
  | (_ : bool) -> Alcotest.fail "invalid bool decoded"
  | exception Codec.Decode_error _ -> ()

let test_crc32_known () =
  (* Standard test vector: crc32("123456789") = 0xCBF43926. *)
  check Alcotest.int32 "known vector" 0xCBF43926l (Codec.crc32 "123456789");
  check Alcotest.int32 "empty" 0l (Codec.crc32 "")

let test_checksum_roundtrip () =
  let payload = "some payload \000 with binary" in
  let framed = Codec.with_checksum payload in
  check Alcotest.string "roundtrip" payload (Codec.check_checksum framed)

let test_checksum_detects_corruption () =
  let framed = Codec.with_checksum "payload" in
  let corrupted = Bytes.of_string framed in
  Bytes.set corrupted 2 'X';
  match Codec.check_checksum (Bytes.to_string corrupted) with
  | (_ : string) -> Alcotest.fail "corruption not detected"
  | exception Codec.Decode_error _ -> ()

let test_checksum_too_short () =
  match Codec.check_checksum "ab" with
  | (_ : string) -> Alcotest.fail "short input accepted"
  | exception Codec.Decode_error _ -> ()

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:500 QCheck.(string)
    (fun s -> roundtrip Codec.Enc.bytes Codec.Dec.bytes s = s)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound max_int)
    (fun v -> roundtrip Codec.Enc.varint Codec.Dec.varint v = v)

let prop_i64_roundtrip =
  QCheck.Test.make ~name:"i64 roundtrip" ~count:500 QCheck.int64 (fun v ->
      roundtrip Codec.Enc.i64 Codec.Dec.i64 v = v)

let prop_checksum_roundtrip =
  QCheck.Test.make ~name:"checksum roundtrip" ~count:500 QCheck.string (fun s ->
      Codec.check_checksum (Codec.with_checksum s) = s)

let prop_mixed_roundtrip =
  (* A record-like structure: (int, string, int64 option, string list). *)
  let gen = QCheck.(quad small_nat string (option int64) (small_list string)) in
  QCheck.Test.make ~name:"mixed structure roundtrip" ~count:300 gen (fun (a, b, c, d) ->
      let e = Codec.Enc.create () in
      Codec.Enc.varint e a;
      Codec.Enc.bytes e b;
      Codec.Enc.option e (Codec.Enc.i64 e) c;
      Codec.Enc.list e (Codec.Enc.bytes e) d;
      let dec = Codec.Dec.of_string (Codec.Enc.to_string e) in
      let a' = Codec.Dec.varint dec in
      let b' = Codec.Dec.bytes dec in
      let c' = Codec.Dec.option dec Codec.Dec.i64 in
      let d' = Codec.Dec.list dec Codec.Dec.bytes in
      (a, b, c, d) = (a', b', c', d') && Codec.Dec.at_end dec)

let () =
  Alcotest.run "codec"
    [
      ( "primitives",
        [
          Alcotest.test_case "u8" `Quick test_u8;
          Alcotest.test_case "u16/u32" `Quick test_u16_u32;
          Alcotest.test_case "i64" `Quick test_i64;
          Alcotest.test_case "varint" `Quick test_varint;
          Alcotest.test_case "varint sizes" `Quick test_varint_sizes;
          Alcotest.test_case "bool/float" `Quick test_bool_float;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "list/array/option" `Quick test_list_array_option;
          Alcotest.test_case "mixed sequence" `Quick test_mixed_sequence;
        ] );
      ( "errors",
        [
          Alcotest.test_case "truncated" `Quick test_truncated_input;
          Alcotest.test_case "invalid bool" `Quick test_invalid_bool;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "crc32 known vector" `Quick test_crc32_known;
          Alcotest.test_case "roundtrip" `Quick test_checksum_roundtrip;
          Alcotest.test_case "detects corruption" `Quick test_checksum_detects_corruption;
          Alcotest.test_case "too short" `Quick test_checksum_too_short;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bytes_roundtrip;
            prop_varint_roundtrip;
            prop_i64_roundtrip;
            prop_checksum_roundtrip;
            prop_mixed_roundtrip;
          ] );
    ]
