test/test_codec.ml: Alcotest Bytes Codec Int64 List QCheck QCheck_alcotest String
