test/test_cdb.mli:
