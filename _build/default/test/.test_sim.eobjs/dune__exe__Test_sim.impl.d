test/test_sim.ml: Alcotest Array Buffer Fun List Printf Sim
