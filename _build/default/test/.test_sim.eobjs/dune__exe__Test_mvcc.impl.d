test/test_mvcc.ml: Alcotest Array Bnode Btree Dyntxn Hashtbl Int64 Layout List Map Mvcc Node_alloc Ops Printf Sim Sinfonia String
