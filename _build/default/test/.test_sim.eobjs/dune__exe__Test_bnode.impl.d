test/test_bnode.ml: Alcotest Array Bkey Bnode Btree Codec Dyntxn Gen Int64 List Map QCheck QCheck_alcotest Result Sinfonia String
