test/test_dyntxn.mli:
