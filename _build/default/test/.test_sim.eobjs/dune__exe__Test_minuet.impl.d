test/test_minuet.ml: Alcotest Btree Dyntxn Int64 List Minuet Mvcc Option Printf Sim
