test/test_cdb.ml: Alcotest Cdb List Printf Sim
