test/test_ycsb.ml: Alcotest Array Hashtbl List Option Sim String Ycsb
