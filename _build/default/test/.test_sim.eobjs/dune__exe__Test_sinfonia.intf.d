test/test_sinfonia.mli:
