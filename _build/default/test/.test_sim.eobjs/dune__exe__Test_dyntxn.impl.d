test/test_dyntxn.ml: Address Alcotest Array Cluster Dyntxn Heap Int64 Memnode Objcache Objref Printf Sim Sinfonia String Txn
