test/test_bnode.mli:
