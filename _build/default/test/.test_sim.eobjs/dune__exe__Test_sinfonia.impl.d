test/test_sinfonia.ml: Address Alcotest Bytes Cluster Codec Config Coordinator Float Gen Heap Int64 List Lock_table Memnode Mtx Printf QCheck QCheck_alcotest Sim Sinfonia String
