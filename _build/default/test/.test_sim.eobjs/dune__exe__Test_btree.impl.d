test/test_btree.ml: Alcotest Array Bkey Btree Dyntxn Int Int64 Layout List Map Node_alloc Ops Option Printf Sim Sinfonia String
