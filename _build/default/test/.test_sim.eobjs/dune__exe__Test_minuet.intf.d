test/test_minuet.mli:
