(* Tests for the CDB baseline engine. *)

let check = Alcotest.check

let key i = Printf.sprintf "k%06d" i

let with_cdb ?(hosts = 3) f = Sim.run (fun () -> f (Cdb.create ~hosts ()))

let test_basic_crud () =
  with_cdb (fun db ->
      check (Alcotest.option Alcotest.string) "miss" None (Cdb.read db (key 1));
      Cdb.insert db (key 1) "v1";
      check (Alcotest.option Alcotest.string) "hit" (Some "v1") (Cdb.read db (key 1));
      Cdb.update db (key 1) "v2";
      check (Alcotest.option Alcotest.string) "updated" (Some "v2") (Cdb.read db (key 1));
      check Alcotest.bool "removed" true (Cdb.remove db (key 1));
      check Alcotest.bool "already gone" false (Cdb.remove db (key 1));
      check (Alcotest.option Alcotest.string) "gone" None (Cdb.read db (key 1)))

let test_many_keys () =
  with_cdb (fun db ->
      for i = 0 to 499 do
        Cdb.insert db (key i) (string_of_int i)
      done;
      check Alcotest.int "size" 500 (Cdb.size db);
      for i = 0 to 499 do
        check (Alcotest.option Alcotest.string) (key i) (Some (string_of_int i))
          (Cdb.read db (key i))
      done)

let test_ops_take_time () =
  with_cdb (fun db ->
      let t0 = Sim.now () in
      Cdb.insert db (key 1) "v";
      let insert_time = Sim.now () -. t0 in
      check Alcotest.bool "insert costs time" true (insert_time > 0.0);
      let t1 = Sim.now () in
      let (_ : string option list) = Cdb.multi_read db [ key 1; key 2 ] in
      let multi_time = Sim.now () -. t1 in
      check Alcotest.bool "multi slower than single" true (multi_time > insert_time))

let test_multi_atomicity () =
  with_cdb (fun db ->
      Cdb.multi_write db [ (key 1, "a"); (key 2, "a") ];
      let writers_done = ref 0 in
      let violations = ref 0 in
      for w = 1 to 2 do
        Sim.spawn (fun () ->
            for i = 1 to 10 do
              let tag = Printf.sprintf "w%d-%d" w i in
              Cdb.multi_write db [ (key 1, tag); (key 2, tag) ]
            done;
            incr writers_done)
      done;
      Sim.spawn (fun () ->
          for _ = 1 to 30 do
            (match Cdb.multi_read db [ key 1; key 2 ] with
            | [ Some a; Some b ] -> if a <> b then incr violations
            | _ -> incr violations);
            Sim.delay 0.001
          done);
      Sim.delay 600.0;
      check Alcotest.int "writers done" 2 !writers_done;
      check Alcotest.int "no torn multi reads" 0 !violations)

let test_partition_serialization () =
  (* A partition executes one request at a time: ops on the same
     partition serialize, so 10 concurrent single-key ops on one key
     take >= 10 service times of partition time. *)
  with_cdb ~hosts:1 (fun db ->
      let finished = ref 0 in
      let t0 = Sim.now () in
      for _ = 1 to 10 do
        Sim.spawn (fun () ->
            let (_ : string option) = Cdb.read db (key 1) in
            incr finished)
      done;
      Sim.delay 600.0;
      check Alcotest.int "all finished" 10 !finished;
      ignore t0)

let test_scan_merges_partitions () =
  with_cdb (fun db ->
      for i = 0 to 99 do
        Cdb.insert db (key i) (string_of_int i)
      done;
      let r = Cdb.scan db ~from:(key 10) ~count:20 in
      check Alcotest.int "count" 20 (List.length r);
      List.iteri (fun j (k, _) -> check Alcotest.string "order" (key (10 + j)) k) r)

let test_scan_limit () =
  with_cdb (fun db ->
      Cdb.insert db (key 1) "v";
      match Cdb.scan db ~from:"" ~count:1_000_000 with
      | (_ : (string * string) list) -> Alcotest.fail "expected Scan_too_large"
      | exception Cdb.Scan_too_large 1_000_000 -> ())

let test_multi_blocks_singles () =
  (* While a multi-partition transaction runs, single-partition ops
     queue behind it — total time reflects the serialization. *)
  with_cdb ~hosts:2 (fun db ->
      Cdb.insert db (key 1) "v";
      let single_latency_idle =
        let t0 = Sim.now () in
        let (_ : string option) = Cdb.read db (key 1) in
        Sim.now () -. t0
      in
      let single_latency_contended = ref 0.0 in
      Sim.spawn (fun () ->
          for _ = 1 to 20 do
            let (_ : string option list) = Cdb.multi_read db [ key 1; key 2; key 3 ] in
            ()
          done);
      Sim.spawn (fun () ->
          Sim.delay 0.005;
          let t0 = Sim.now () in
          let (_ : string option) = Cdb.read db (key 1) in
          single_latency_contended := Sim.now () -. t0);
      Sim.delay 600.0;
      check Alcotest.bool "contention visible" true
        (!single_latency_contended > single_latency_idle))

let () =
  Alcotest.run "cdb"
    [
      ( "cdb",
        [
          Alcotest.test_case "basic crud" `Quick test_basic_crud;
          Alcotest.test_case "many keys" `Quick test_many_keys;
          Alcotest.test_case "ops take time" `Quick test_ops_take_time;
          Alcotest.test_case "multi atomicity" `Quick test_multi_atomicity;
          Alcotest.test_case "partition serialization" `Quick test_partition_serialization;
          Alcotest.test_case "scan merges partitions" `Quick test_scan_merges_partitions;
          Alcotest.test_case "scan limit" `Quick test_scan_limit;
          Alcotest.test_case "multi blocks singles" `Quick test_multi_blocks_singles;
        ] );
    ]
