(* Shape tests for the experiment harness: each figure's qualitative
   claim from the paper must hold even at tiny test parameters. These
   are the repository's regression net for the cost model. *)

let check = Alcotest.check

module P = Experiments.Exp_common

(* Tiny but not degenerate: enough records that leaves outnumber
   clients, enough time that warmup effects wash out. *)
let tiny =
  {
    P.hosts = [ 4; 12 ];
    records = 12_000;
    duration = 0.6;
    warmup = 0.2;
    clients_per_host = 4;
    scan_count = 300;
    seed = 0x7E57;
  }

let find rows label_matches =
  match
    List.find_opt
      (fun (r : P.row) -> List.for_all (fun kv -> List.mem kv r.P.label) label_matches)
      rows
  with
  | Some r -> r
  | None ->
      Alcotest.failf "row not found: %s"
        (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) label_matches))

let metric rows label_matches name = P.row_value (find rows label_matches) name

let test_fig10_dirty_beats_baseline () =
  let rows = Experiments.Fig10.compute tiny in
  List.iter
    (fun hosts ->
      let h = string_of_int hosts in
      let dirty = metric rows [ ("hosts", h); ("mode", "dirty") ] "tput_ops_s" in
      let baseline = metric rows [ ("hosts", h); ("mode", "baseline") ] "tput_ops_s" in
      check Alcotest.bool
        (Printf.sprintf "dirty >= baseline at %d hosts" hosts)
        true (dirty >= baseline))
    tiny.P.hosts;
  (* The gap grows with scale (the paper's headline for Fig. 10). *)
  let ratio hosts =
    let h = string_of_int hosts in
    metric rows [ ("hosts", h); ("mode", "dirty") ] "tput_ops_s"
    /. metric rows [ ("hosts", h); ("mode", "baseline") ] "tput_ops_s"
  in
  check Alcotest.bool "gap grows with scale" true (ratio 12 > ratio 4)

let test_fig12_shapes () =
  let rows = Experiments.Fig12.compute tiny in
  (* Minuet scales: read throughput grows with hosts. *)
  let m op hosts name = metric rows [ ("system", "minuet"); ("op", op); ("hosts", string_of_int hosts) ] name in
  let c op hosts name = metric rows [ ("system", "cdb"); ("op", op); ("hosts", string_of_int hosts) ] name in
  check Alcotest.bool "minuet reads scale" true (m "read" 12 "tput_ops_s" > 2.0 *. m "read" 4 "tput_ops_s");
  check Alcotest.bool "cdb reads scale" true (c "read" 12 "tput_ops_s" > 2.0 *. c "read" 4 "tput_ops_s");
  (* Latency: Minuet is several times lower than CDB for every op. *)
  List.iter
    (fun op ->
      check Alcotest.bool (op ^ " latency gap") true
        (c op 12 "mean_ms" > 4.0 *. m op 12 "mean_ms"))
    [ "read"; "update"; "insert" ];
  (* Minuet reads are faster than its writes. *)
  check Alcotest.bool "reads faster than writes" true
    (m "read" 12 "tput_ops_s" > m "update" 12 "tput_ops_s")

let test_fig13_cdb_collapses () =
  let rows = Experiments.Fig13.compute tiny in
  let m hosts = metric rows [ ("system", "minuet"); ("op", "read2"); ("hosts", string_of_int hosts) ] "tput_tx_s" in
  let c hosts = metric rows [ ("system", "cdb"); ("op", "read2"); ("hosts", string_of_int hosts) ] "tput_tx_s" in
  check Alcotest.bool "minuet dual-key scales" true (m 12 > 1.5 *. m 4);
  check Alcotest.bool "cdb does not scale" true (c 12 < 1.2 *. c 4);
  check Alcotest.bool "minuet >> cdb" true (m 12 > 5.0 *. c 12)

let test_fig15_borrowing_helps_short_scans () =
  let rows = Experiments.Fig15.compute tiny in
  let smallest = string_of_int (tiny.P.scan_count / 10) in
  let on = metric rows [ ("scan_size", smallest); ("borrowing", "on") ] "scan_tput_s" in
  let off = metric rows [ ("scan_size", smallest); ("borrowing", "off") ] "scan_tput_s" in
  check Alcotest.bool "borrowing wins on short scans" true (on > 1.3 *. off);
  let borrows = metric rows [ ("scan_size", smallest); ("borrowing", "on") ] "borrows" in
  check Alcotest.bool "borrows happened" true (borrows > 0.0)

let test_fig17_k_ordering () =
  let params = { tiny with P.hosts = [ 8 ] } in
  let rows = Experiments.Fig17.compute params in
  let t k = metric rows [ ("hosts", "8"); ("k", k) ] "update_tput_s" in
  check Alcotest.bool "k=0 is the worst" true (t "k=0" < t "k=5" && t "k=0" < t "k=30");
  check Alcotest.bool "no scans is the best" true (t "none" >= t "k=60" && t "none" >= t "k=30");
  check Alcotest.bool "k=0 below half of no-scan" true (t "k=0" < 0.5 *. t "none")

let test_fig16_scans_scale () =
  let rows = Experiments.Fig16.compute tiny in
  let s hosts = metric rows [ ("hosts", string_of_int hosts) ] "scan_keys_s" in
  check Alcotest.bool "scan keys/s scale" true (s 12 > 1.8 *. s 4)

let test_fig14_dip_and_recovery () =
  (* Use a smaller tree than the defaults so the test stays fast, but
     still big enough to see the dip. *)
  let params = { tiny with P.hosts = [ 6 ]; records = 30_000; clients_per_host = 5 } in
  let rows = Experiments.Fig14.compute ~snapshot_at:3.0 ~total:10.0 params in
  let tput t = P.row_value (find rows [ ("t", string_of_int t) ]) "tput_ops_s" in
  (* Steady state before the snapshot (skip warm-up buckets). *)
  let before = tput 2 in
  let dip = Float.min (tput 3) (tput 4) in
  let after = tput 8 in
  check Alcotest.bool "visible dip" true (dip < 0.9 *. before);
  check Alcotest.bool "recovery" true (after > 0.95 *. before)

let () =
  Alcotest.run "experiments"
    [
      ( "shapes",
        [
          Alcotest.test_case "fig10 dirty beats baseline" `Slow test_fig10_dirty_beats_baseline;
          Alcotest.test_case "fig12 minuet vs cdb" `Slow test_fig12_shapes;
          Alcotest.test_case "fig13 cdb collapses" `Slow test_fig13_cdb_collapses;
          Alcotest.test_case "fig14 dip and recovery" `Slow test_fig14_dip_and_recovery;
          Alcotest.test_case "fig15 borrowing" `Slow test_fig15_borrowing_helps_short_scans;
          Alcotest.test_case "fig16 scan scaling" `Slow test_fig16_scans_scale;
          Alcotest.test_case "fig17 k ordering" `Slow test_fig17_k_ordering;
        ] );
    ]
