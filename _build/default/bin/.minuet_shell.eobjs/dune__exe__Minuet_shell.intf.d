bin/minuet_shell.mli:
