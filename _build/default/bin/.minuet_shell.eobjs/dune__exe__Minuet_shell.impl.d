bin/minuet_shell.ml: Array Format Hashtbl Int64 List Minuet Mvcc Printf Sim String Sys
