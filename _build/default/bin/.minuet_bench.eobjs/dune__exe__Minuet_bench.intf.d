bin/minuet_bench.mli:
