bin/minuet_bench.ml: Arg Cmd Cmdliner Experiments List Option Term
