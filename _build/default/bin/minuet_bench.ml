(* Command-line driver for the paper's experiments: run any figure with
   full parameter control, e.g.

     minuet-bench fig12 --hosts 5,15,25,35 --records 50000 --duration 2
     minuet-bench all --full
*)

open Cmdliner
module P = Experiments.Exp_common

let hosts_arg =
  let doc = "Comma-separated cluster sizes to sweep (e.g. 5,15,25,35)." in
  Arg.(value & opt (some (list int)) None & info [ "hosts" ] ~docv:"N,N,..." ~doc)

let records_arg =
  let doc = "Preloaded record count (the paper uses 100M; scaled default)." in
  Arg.(value & opt (some int) None & info [ "records" ] ~docv:"N" ~doc)

let duration_arg =
  let doc = "Measured seconds of simulated time per data point." in
  Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"SECONDS" ~doc)

let warmup_arg =
  let doc = "Warmup seconds excluded from measurement." in
  Arg.(value & opt (some float) None & info [ "warmup" ] ~docv:"SECONDS" ~doc)

let clients_arg =
  let doc = "Closed-loop client threads per host." in
  Arg.(value & opt (some int) None & info [ "clients-per-host" ] ~docv:"N" ~doc)

let scan_arg =
  let doc = "Keys per scan for the scan experiments (paper: 1M)." in
  Arg.(value & opt (some int) None & info [ "scan-count" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Deterministic seed; identical seeds reproduce identical runs." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let full_arg =
  let doc = "Start from the 'full' parameter preset (closer to the paper's operating point)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let params full hosts records duration warmup clients scan seed =
  let base = if full then P.full else P.fast in
  {
    P.hosts = Option.value hosts ~default:base.P.hosts;
    records = Option.value records ~default:base.P.records;
    duration = Option.value duration ~default:base.P.duration;
    warmup = Option.value warmup ~default:base.P.warmup;
    clients_per_host = Option.value clients ~default:base.P.clients_per_host;
    scan_count = Option.value scan ~default:base.P.scan_count;
    seed = Option.value seed ~default:base.P.seed;
  }

let params_term =
  Term.(
    const params $ full_arg $ hosts_arg $ records_arg $ duration_arg $ warmup_arg $ clients_arg
    $ scan_arg $ seed_arg)

let figure_cmd
    ((name, title, run) : string * string * (?params:P.params -> unit -> P.row list)) =
  let doc = title in
  let action params =
    let (_ : P.row list) = run ~params () in
    ()
  in
  Cmd.v (Cmd.info name ~doc) Term.(const action $ params_term)

let all_cmd =
  let doc = "Run every figure of the paper's evaluation in sequence." in
  let action params =
    List.iter
      (fun ((_, _, run) : string * string * (?params:P.params -> unit -> P.row list)) ->
        let (_ : P.row list) = run ~params () in
        ())
      Experiments.all
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const action $ params_term)

let () =
  let doc = "Reproduce the evaluation of 'Minuet: A Scalable Distributed Multiversion B-Tree'" in
  let info = Cmd.info "minuet-bench" ~version:"1.0" ~doc in
  let cmds = all_cmd :: List.map figure_cmd Experiments.all in
  exit (Cmd.eval (Cmd.group info cmds))
