(* Interactive shell over a simulated Minuet cluster.

     dune exec bin/minuet_shell.exe            # linear snapshots
     dune exec bin/minuet_shell.exe -- -b      # branching versions

   The whole distributed system (memnodes, proxies, replication) runs
   inside the deterministic simulator; each command executes real
   transactions and reports the simulated time they took. *)

let help_linear =
  {|commands (linear-snapshot mode):
  put <key> <value>        transactional insert/update
  get <key>                transactional read
  del <key>                transactional delete
  scan <from> <count>      ordered range scan (against the tip)
  snapshot                 take a consistent snapshot via the SCS
  sget <id> <key>          read from snapshot <id> (from `snapshot`)
  sscan <id> <from> <n>    scan snapshot <id>
  crash <host>             crash a memnode (fails over to its replica)
  recover <host>           recover a crashed memnode
  stats                    cluster utilization and protocol metrics
  help | quit|}

let help_branching =
  {|commands (branching-version mode):
  put <key> <value>        write to the current version (must be a tip)
  get <key>                read from the current version
  del <key>                delete from the current version
  scan <from> <count>      ordered range scan of the current version
  branch [<from>]          create a branch (default: current version)
  checkout <id>            switch the current version
  versions                 list known versions and their status
  history <key>            the key's value along the current ancestry
  diff <a> <b>             compare two versions
  delete <id>              delete a leaf version (what-if cleanup)
  stats                    cluster utilization and protocol metrics
  help | quit|}

let tokens line =
  String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")

let timed f =
  let t0 = Sim.now () in
  let r = f () in
  Printf.printf "  (%.3f ms simulated)\n" ((Sim.now () -. t0) *. 1e3);
  r

let print_opt = function
  | Some v -> Printf.printf "  %S\n" v
  | None -> Printf.printf "  (not found)\n"

let print_entries entries =
  List.iter (fun (k, v) -> Printf.printf "  %s = %S\n" k v) entries;
  Printf.printf "  %d entries\n" (List.length entries)

let linear_loop db =
  let session = Minuet.Session.attach db in
  let snapshots : (int, Minuet.Session.snapshot) Hashtbl.t = Hashtbl.create 8 in
  let next_snap = ref 0 in
  let rec loop () =
    print_string "minuet> ";
    match tokens (try read_line () with End_of_file -> "quit") with
    | [] -> loop ()
    | [ "quit" ] | [ "exit" ] -> ()
    | [ "help" ] ->
        print_endline help_linear;
        loop ()
    | [ "put"; k; v ] ->
        timed (fun () -> Minuet.Session.put session k v);
        loop ()
    | [ "get"; k ] ->
        print_opt (timed (fun () -> Minuet.Session.get session k));
        loop ()
    | [ "del"; k ] ->
        Printf.printf "  removed: %b\n" (timed (fun () -> Minuet.Session.remove session k));
        loop ()
    | [ "scan"; from; count ] ->
        print_entries
          (timed (fun () ->
               Minuet.Session.scan session ~from ~count:(int_of_string count)));
        loop ()
    | [ "snapshot" ] ->
        let snap = timed (fun () -> Minuet.Session.snapshot session) in
        incr next_snap;
        Hashtbl.replace snapshots !next_snap snap;
        Printf.printf "  snapshot #%d (internal id %Ld)\n" !next_snap snap.Minuet.Session.sid;
        loop ()
    | [ "sget"; id; k ] ->
        (match Hashtbl.find_opt snapshots (int_of_string id) with
        | Some snap -> print_opt (timed (fun () -> Minuet.Session.get_at session snap k))
        | None -> print_endline "  unknown snapshot (use `snapshot` first)");
        loop ()
    | [ "sscan"; id; from; count ] ->
        (match Hashtbl.find_opt snapshots (int_of_string id) with
        | Some snap ->
            print_entries
              (timed (fun () ->
                   Minuet.Session.scan_at session snap ~from ~count:(int_of_string count)))
        | None -> print_endline "  unknown snapshot");
        loop ()
    | [ "crash"; host ] ->
        Minuet.Db.crash_host db (int_of_string host);
        print_endline "  crashed";
        loop ()
    | [ "recover"; host ] ->
        Minuet.Db.recover_host db (int_of_string host);
        print_endline "  recovered";
        loop ()
    | [ "stats" ] ->
        Format.printf "%a@." Minuet.Db.pp_stats db;
        loop ()
    | _ ->
        print_endline "  ? (try `help`)";
        loop ()
  in
  print_endline "Minuet shell — simulated cluster, linear snapshots. `help` for commands.";
  loop ()

let branching_loop db =
  let session = Minuet.Session.attach db in
  let br = Minuet.Session.branching session in
  let current = ref 0L in
  let show_version sid =
    let status =
      if Mvcc.Branching.is_deleted br ~sid then "deleted"
      else if Mvcc.Branching.writable br ~sid then "writable"
      else "read-only"
    in
    let parent =
      match Mvcc.Branching.parent br ~sid with
      | Some p -> Printf.sprintf "parent %Ld" p
      | None -> "root"
    in
    Printf.printf "  v%Ld  %-9s %s%s\n" sid status parent
      (if Int64.equal sid !current then "   <- current" else "")
  in
  let rec loop () =
    Printf.printf "minuet[v%Ld]> " !current;
    match tokens (try read_line () with End_of_file -> "quit") with
    | [] -> loop ()
    | [ "quit" ] | [ "exit" ] -> ()
    | [ "help" ] ->
        print_endline help_branching;
        loop ()
    | [ "put"; k; v ] ->
        (try timed (fun () -> Mvcc.Branching.put br ~at:!current k v)
         with Invalid_argument m -> Printf.printf "  error: %s\n" m);
        loop ()
    | [ "get"; k ] ->
        print_opt (timed (fun () -> Mvcc.Branching.get br ~at:!current k));
        loop ()
    | [ "del"; k ] ->
        Printf.printf "  removed: %b\n"
          (timed (fun () -> Mvcc.Branching.remove br ~at:!current k));
        loop ()
    | [ "scan"; from; count ] ->
        print_entries
          (timed (fun () ->
               Mvcc.Branching.scan ~at:!current br ~from ~count:(int_of_string count)));
        loop ()
    | [ "branch" ] | [ "branch"; _ ] as cmd ->
        let from = match cmd with [ _; f ] -> Int64.of_string f | _ -> !current in
        (match timed (fun () -> Mvcc.Branching.create_branch br ~from) with
        | sid ->
            Printf.printf "  created v%Ld from v%Ld\n" sid from;
            current := sid
        | exception Mvcc.Branching.Too_many_branches _ ->
            print_endline "  error: branching factor (beta) exceeded");
        loop ()
    | [ "checkout"; id ] ->
        let sid = Int64.of_string id in
        if Mvcc.Branching.snapshot_exists br ~sid then current := sid
        else print_endline "  unknown version";
        loop ()
    | [ "versions" ] ->
        let rec show sid =
          if Mvcc.Branching.snapshot_exists br ~sid || Mvcc.Branching.is_deleted br ~sid then begin
            show_version sid;
            show (Int64.add sid 1L)
          end
        in
        show 0L;
        loop ()
    | [ "history"; k ] ->
        List.iter
          (fun (sid, v) ->
            Printf.printf "  v%Ld: %s\n" sid
              (match v with Some v -> Printf.sprintf "%S" v | None -> "(absent)"))
          (timed (fun () -> Mvcc.Branching.history br ~from:!current k));
        loop ()
    | [ "diff"; a; b ] ->
        List.iter
          (fun (k, change) ->
            match change with
            | Mvcc.Branching.Added v -> Printf.printf "  + %s = %S\n" k v
            | Mvcc.Branching.Removed v -> Printf.printf "  - %s (was %S)\n" k v
            | Mvcc.Branching.Changed (x, y) -> Printf.printf "  ~ %s: %S -> %S\n" k x y)
          (timed (fun () ->
               Mvcc.Branching.diff br ~base:(Int64.of_string a) ~other:(Int64.of_string b)));
        loop ()
    | [ "delete"; id ] ->
        (try
           Mvcc.Branching.delete_branch br (Int64.of_string id);
           print_endline "  deleted"
         with Mvcc.Branching.Not_deletable m -> Printf.printf "  error: %s\n" m);
        loop ()
    | [ "stats" ] ->
        Format.printf "%a@." Minuet.Db.pp_stats db;
        loop ()
    | _ ->
        print_endline "  ? (try `help`)";
        loop ()
  in
  print_endline "Minuet shell — simulated cluster, branching versions. `help` for commands.";
  loop ()

let () =
  let branching = Array.exists (fun a -> a = "-b" || a = "--branching") Sys.argv in
  let config = { Minuet.Config.default with Minuet.Config.branching } in
  Minuet.Harness.run ~config (fun db ->
      if branching then branching_loop db else linear_loop db)
