(* Fault tolerance: Sinfonia's primary-backup replication keeps Minuet
   available through a memnode crash (Sec. 2.1).

   A workload runs while one memnode crashes and later recovers; all
   data stays readable and writable throughout, served by the crashed
   node's replica on its backup. The example asserts those guarantees —
   it exits nonzero if any read goes missing during the outage or any
   item carries the wrong generation after recovery — so it doubles as
   a CI check.

   Run with:  dune exec examples/fault_tolerance.exe *)

let n = 2_000

let key i = Printf.sprintf "item:%06d" i

let failures = ref 0

let expect what expected actual =
  if expected = actual then Printf.printf "%s: %d (ok)\n%!" what actual
  else begin
    Printf.printf "%s: expected %d, got %d (FAIL)\n%!" what expected actual;
    incr failures
  end

let () =
  Minuet.Harness.run (fun db ->
      let session = Minuet.Session.attach db in
      for i = 0 to n - 1 do
        Minuet.Session.put session (key i) "generation-1"
      done;
      Printf.printf "loaded %d items across %d memnodes\n%!" n
        (Minuet.Config.default.Minuet.Config.hosts);

      (* Crash a memnode. Its address space fails over to the replica
         hosted on the next node. *)
      Minuet.Db.crash_host db 1;
      print_endline "memnode 1 crashed; continuing through its backup replica";

      let missing = ref 0 in
      for i = 0 to n - 1 do
        if Minuet.Session.get session (key i) = None then incr missing
      done;
      expect "reads missing during outage" 0 !missing;

      (* Writes keep working too. *)
      for i = 0 to n - 1 do
        if i mod 2 = 0 then Minuet.Session.put session (key i) "generation-2"
      done;
      print_endline "rewrote half the items during the outage";

      (* Bring the node back; its state is restored from the replica. *)
      Minuet.Db.recover_host db 1;
      print_endline "memnode 1 recovered from its replica";

      let gen2 = ref 0 and gen1 = ref 0 and wrong = ref 0 in
      for i = 0 to n - 1 do
        match Minuet.Session.get session (key i) with
        | Some "generation-2" -> incr gen2
        | Some "generation-1" -> incr gen1
        | _ -> incr wrong
      done;
      expect "generation-2 items after recovery" (n / 2) !gen2;
      expect "generation-1 items after recovery" (n / 2) !gen1;
      expect "missing or corrupt items" 0 !wrong;
      (* Even items were rewritten during the outage, odd ones were not:
         the failover and the recovery must both preserve exactly that. *)
      for i = 0 to n - 1 do
        let expected = if i mod 2 = 0 then "generation-2" else "generation-1" in
        match Minuet.Session.get session (key i) with
        | Some v when v = expected -> ()
        | _ -> incr failures
      done;
      if !failures > 0 then begin
        Printf.printf "FAILED: %d check(s) did not hold\n%!" !failures;
        exit 1
      end;
      print_endline "all fault-tolerance checks passed")
