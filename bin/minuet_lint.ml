(* minuet_lint: static analysis over the repo's own sources.

   Usage:
     minuet_lint [options] [paths...]        lint files/directories (default: lib bin test)
     minuet_lint --fixtures DIR              run the fixture self-test
     minuet_lint --list-rules                describe the rule set

   Exit codes: 0 clean, 1 unsuppressed findings, 2 parse/self-test
   errors. Run from the repository root so rule scoping (path
   prefixes like lib/sinfonia/) lines up. *)

let usage = "minuet_lint [options] [paths...]"

let () =
  let targets = ref [] in
  let json_path = ref "" in
  let fixtures = ref "" in
  let disabled = ref [] in
  let rel_as = ref "" in
  let quiet = ref false in
  let list_rules = ref false in
  let spec =
    [
      ("--json", Arg.Set_string json_path, "FILE write a BENCH_lint.json-style report to FILE");
      ("--fixtures", Arg.Set_string fixtures, "DIR run the self-test over the fixture tree DIR");
      ( "--disable",
        Arg.String (fun r -> disabled := r :: !disabled),
        "RULE disable a rule (repeatable; the CI falsifiability check uses this)" );
      ( "--as",
        Arg.Set_string rel_as,
        "PATH treat a single file (or directory) target as repo-relative PATH for rule scoping" );
      ("--quiet", Arg.Set quiet, " print only the summary line");
      ("--list-rules", Arg.Set list_rules, " list rule ids and the invariant each protects");
    ]
  in
  Arg.parse spec (fun t -> targets := t :: !targets) usage;
  let fail fmt = Format.kasprintf (fun m -> prerr_endline ("minuet_lint: " ^ m); exit 2) fmt in
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rules.t) ->
        Printf.printf "%-18s %-7s %s\n" r.Lint.Rules.id
          (Lint.Diag.severity_to_string r.Lint.Rules.severity)
          r.Lint.Rules.doc)
      Lint.Rules.all;
    exit 0
  end;
  List.iter
    (fun r -> if not (List.mem r Lint.Rules.ids) then fail "--disable %s: unknown rule" r)
    !disabled;
  let rules =
    List.filter (fun (r : Lint.Rules.t) -> not (List.mem r.Lint.Rules.id !disabled)) Lint.Rules.all
  in
  if !fixtures <> "" then begin
    match Lint.Engine.check_fixtures ~rules !fixtures with
    | [] ->
        if not !quiet then Printf.printf "fixtures OK (%s)\n" !fixtures;
        exit 0
    | failures ->
        List.iter prerr_endline failures;
        fail "%d fixture expectation(s) not met" (List.length failures)
  end;
  let targets = match List.rev !targets with [] -> [ "lib"; "bin"; "test" ] | ts -> ts in
  let pairs =
    if !rel_as <> "" then begin
      match targets with
      | [ file ] when Sys.file_exists file && not (Sys.is_directory file) -> [ (file, !rel_as) ]
      | [ dir ] when Sys.file_exists dir && Sys.is_directory dir ->
          (* A whole tree mapped under PATH: the CI falsifiability gate
             uses this to plant a multi-file seeded program at a scoped
             location (e.g. --as lib <tree> so <tree>/sinfonia/x.ml
             lints as lib/sinfonia/x.ml). *)
          List.map
            (fun (path, rel) -> (path, !rel_as ^ "/" ^ rel))
            (Lint.Engine.files_under dir "")
      | _ -> fail "--as requires exactly one file or directory target"
    end
    else Lint.Engine.expand_targets ~root:"." targets
  in
  if pairs = [] then fail "no .ml files found under: %s" (String.concat " " targets);
  let result = Lint.Engine.lint_files ~rules pairs in
  List.iter
    (fun (rel, message) -> Printf.eprintf "%s: parse failure\n%s\n" rel message)
    result.Lint.Engine.parse_errors;
  let live = Lint.Engine.unsuppressed result in
  if not !quiet then
    List.iter (fun d -> Format.printf "%a@." Lint.Diag.pp d) live;
  if !json_path <> "" then begin
    let oc = open_out !json_path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Obs.Json.to_string (Lint.Engine.to_json result));
        output_char oc '\n')
  end;
  Printf.printf "minuet_lint: %d file(s), %d rule(s), %d finding(s), %d suppression(s)%s\n"
    result.Lint.Engine.files_scanned (List.length rules) (List.length live)
    (Lint.Engine.suppressed_count result)
    (if result.Lint.Engine.parse_errors <> [] then
       Printf.sprintf ", %d parse error(s)" (List.length result.Lint.Engine.parse_errors)
     else "");
  if result.Lint.Engine.parse_errors <> [] then exit 2;
  if live <> [] then exit 1
