(* Command-line driver for the paper's experiments: run any figure with
   full parameter control, e.g.

     minuet-bench fig12 --hosts 5,15,25,35 --records 50000 --duration 2
     minuet-bench all --full
*)

open Cmdliner
module P = Experiments.Exp_common

let hosts_arg =
  let doc = "Comma-separated cluster sizes to sweep (e.g. 5,15,25,35)." in
  Arg.(value & opt (some (list int)) None & info [ "hosts" ] ~docv:"N,N,..." ~doc)

let records_arg =
  let doc = "Preloaded record count (the paper uses 100M; scaled default)." in
  Arg.(value & opt (some int) None & info [ "records" ] ~docv:"N" ~doc)

let duration_arg =
  let doc = "Measured seconds of simulated time per data point." in
  Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"SECONDS" ~doc)

let warmup_arg =
  let doc = "Warmup seconds excluded from measurement." in
  Arg.(value & opt (some float) None & info [ "warmup" ] ~docv:"SECONDS" ~doc)

let clients_arg =
  let doc = "Closed-loop client threads per host." in
  Arg.(value & opt (some int) None & info [ "clients-per-host" ] ~docv:"N" ~doc)

let scan_arg =
  let doc = "Keys per scan for the scan experiments (paper: 1M)." in
  Arg.(value & opt (some int) None & info [ "scan-count" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Deterministic seed; identical seeds reproduce identical runs." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let full_arg =
  let doc = "Start from the 'full' parameter preset (closer to the paper's operating point)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let params full hosts records duration warmup clients scan seed =
  let base = if full then P.full else P.fast in
  {
    P.hosts = Option.value hosts ~default:base.P.hosts;
    records = Option.value records ~default:base.P.records;
    duration = Option.value duration ~default:base.P.duration;
    warmup = Option.value warmup ~default:base.P.warmup;
    clients_per_host = Option.value clients ~default:base.P.clients_per_host;
    scan_count = Option.value scan ~default:base.P.scan_count;
    seed = Option.value seed ~default:base.P.seed;
  }

let params_term =
  Term.(
    const params $ full_arg $ hosts_arg $ records_arg $ duration_arg $ warmup_arg $ clients_arg
    $ scan_arg $ seed_arg)

let figure_cmd
    ((name, title, run) : string * string * (?params:P.params -> unit -> P.row list)) =
  let doc = title in
  let action params =
    let (_ : P.row list) = run ~params () in
    ()
  in
  Cmd.v (Cmd.info name ~doc) Term.(const action $ params_term)

let all_cmd =
  let doc = "Run every figure of the paper's evaluation in sequence." in
  let action params =
    List.iter
      (fun ((_, _, run) : string * string * (?params:P.params -> unit -> P.row list)) ->
        let (_ : P.row list) = run ~params () in
        ())
      Experiments.all
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const action $ params_term)

let smoke_cmd =
  let doc =
    "Run a short mixed workload on a small cluster and write its observability report \
     (latency quantiles, abort taxonomy) to BENCH_<name>.json."
  in
  let name_arg =
    Arg.(value & opt string "smoke" & info [ "name" ] ~docv:"NAME" ~doc:"Report name.")
  in
  let dir_arg =
    Arg.(value & opt string "." & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let action name dir =
    let path = P.run_observed ~dir ~name () in
    Printf.printf "observability report written to %s\n%!" path
  in
  Cmd.v (Cmd.info "smoke" ~doc) Term.(const action $ name_arg $ dir_arg)

(* Validate a BENCH_*.json report: parseable, current schema, and the
   per-operation quantiles and per-layer abort taxonomy present. Used
   by bin/ci.sh, which must not depend on external JSON tooling. *)
let check_report_cmd =
  let doc = "Validate the structure of a BENCH_*.json observability report." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Report to check.")
  in
  let action file =
    let fail fmt = Printf.ksprintf (fun m -> prerr_endline (file ^ ": " ^ m); exit 1) fmt in
    let contents =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let json =
      match Obs.Json.parse contents with
      | json -> json
      | exception Obs.Json.Parse_error m -> fail "invalid JSON: %s" m
    in
    let member name =
      match Obs.Json.member name json with
      | Some v -> v
      | None -> fail "missing field %S" name
    in
    (match member "schema_version" with
    | Obs.Json.Int 1 -> ()
    | _ -> fail "unsupported schema_version");
    (match member "counters" with Obs.Json.Obj _ -> () | _ -> fail "counters: not an object");
    (match member "aborts" with
    | Obs.Json.Obj layers ->
        List.iter
          (fun (layer, v) ->
            match v with
            | Obs.Json.Obj _ -> ()
            | _ -> fail "aborts.%s: not an object" layer)
          layers
    | _ -> fail "aborts: not an object");
    (match member "ops" with
    | Obs.Json.Obj ops ->
        List.iter
          (fun (label, v) ->
            List.iter
              (fun field ->
                match Obs.Json.member field v with
                | Some (Obs.Json.Int _ | Obs.Json.Float _) -> ()
                | _ -> fail "ops.%s.%s: missing or not a number" label field)
              [ "count"; "mean_ms"; "p50_ms"; "p95_ms"; "p99_ms"; "p999_ms"; "max_ms" ])
          ops
    | _ -> fail "ops: not an object");
    Printf.printf "%s: ok\n%!" file
  in
  Cmd.v (Cmd.info "check-report" ~doc) Term.(const action $ file_arg)

(* Chaos run: deterministic fault injection plus the history-based
   consistency checker. Exits nonzero (with a minimal counterexample)
   on any serializability/snapshot violation or audit failure. *)
let chaos_cmd =
  let doc =
    "Run a fault-injection storm (crashes, mid-2PC crashes, partitions, mirror-link \
     partitions, replica lag, delay spikes, coordinator stalls, snapshot-service outages) \
     under a mixed workload, then verify the recorded history for strict serializability, \
     exact snapshot semantics and 2PC atomicity. Exits 1 with a minimal counterexample on \
     any violation. Deterministic: the same seed reproduces the same run byte for byte."
  in
  let seed_arg =
    Arg.(value & opt int Chaos.Runner.default.Chaos.Runner.seed
        & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")
  in
  let duration_arg =
    Arg.(value & opt float Chaos.Runner.default.Chaos.Runner.duration
        & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated seconds of traffic.")
  in
  let hosts_arg =
    Arg.(value & opt int Chaos.Runner.default.Chaos.Runner.hosts
        & info [ "hosts" ] ~docv:"N" ~doc:"Memnode count.")
  in
  let clients_arg =
    Arg.(value & opt int Chaos.Runner.default.Chaos.Runner.clients
        & info [ "clients" ] ~docv:"N" ~doc:"Concurrent workload clients.")
  in
  let keys_arg =
    Arg.(value & opt int Chaos.Runner.default.Chaos.Runner.keys
        & info [ "keys" ] ~docv:"N" ~doc:"Key-space size.")
  in
  let phases_arg =
    Arg.(value & opt int Chaos.Runner.default.Chaos.Runner.phases
        & info [ "phases" ] ~docv:"N" ~doc:"Chaos phases (a structural audit runs after each).")
  in
  let faults_arg =
    let doc =
      "Comma-separated fault mix: any of 'crash', 'partition', 'delay', 'stall', 'scs', \
       'midcrash' (immediate crash landing mid-2PC), 'mpartition' (memnode-to-backup mirror \
       link cut), 'replag' (loss/latency on the mirror link), or 'all' (default) / 'none'."
    in
    Arg.(value & opt string "all" & info [ "faults" ] ~docv:"KINDS" ~doc)
  in
  let broken_arg =
    let doc =
      "Deliberately break leaf-read validation (unsafe_dirty_leaf_reads) to prove the \
       checker catches real violations; the run is expected to FAIL."
    in
    Arg.(value & flag & info [ "broken" ] ~doc)
  in
  let broken_recovery_arg =
    let doc =
      "Deliberately skip the redo-log replay on crash recovery and replica promotion \
       (committed-but-unmirrored writes are lost) to prove the checker catches recovery \
       bugs; the run is expected to FAIL."
    in
    Arg.(value & flag & info [ "broken-recovery" ] ~doc)
  in
  let scs_k_arg =
    let doc =
      "Snapshot staleness bound k in simulated seconds (0 = strict SCS). The checker's SCS \
       rule is relaxed by exactly k."
    in
    Arg.(value & opt float 0.0 & info [ "scs-k" ] ~docv:"SECONDS" ~doc)
  in
  let cc_arg =
    let doc =
      "Concurrency-control mode the trees run under: 'dirty' (optimistic dirty traversal, \
       the default) or 'validated' (every traversal step validated in the minitransaction)."
    in
    Arg.(value & opt string "dirty" & info [ "cc" ] ~docv:"MODE" ~doc)
  in
  let scan_heavy_arg =
    let doc =
      "Scan-dominated op mix: long range scans on tips and snapshots with enough writes to \
       split and move leaves under them; every snapshot scan is double-checked against the \
       per-leaf scan path."
    in
    Arg.(value & flag & info [ "scan-heavy" ] ~doc)
  in
  let branching_arg =
    let doc =
      "Run the database in branching mode (Sec. 5): clients drive writable clones, \
       frozen-version reads and multi-version queries; the checker verifies each version \
       against its forked model and the frozen-ancestor rule."
    in
    Arg.(value & flag & info [ "branching" ] ~doc)
  in
  let broken_branch_arg =
    let doc =
      "Deliberately break branch isolation (reads at read-only versions silently leak the \
       mainline tip's writes) to prove the frozen-ancestor rule catches real violations; \
       implies --branching and the run is expected to FAIL."
    in
    Arg.(value & flag & info [ "broken-branch" ] ~doc)
  in
  let trace_arg =
    let doc =
      "Tee every traced event to $(docv) as JSON lines (the Session.Event codec), for \
       offline re-checking and debugging."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let action seed duration hosts clients keys phases faults broken broken_recovery branching
      broken_branch scs_k cc scan_heavy trace_out =
    let kinds =
      match faults with
      | "all" -> Chaos.Nemesis.all_kinds
      | "none" -> []
      | s ->
          List.map
            (fun name ->
              match Chaos.Nemesis.kind_of_string name with
              | Some k -> k
              | None ->
                  prerr_endline ("unknown fault kind: " ^ name);
                  exit 2)
            (String.split_on_char ',' s)
    in
    let mode =
      match cc with
      | "dirty" -> Btree.Ops.Dirty_traversal
      | "validated" -> Btree.Ops.Validated_traversal
      | other ->
          prerr_endline ("unknown concurrency-control mode: " ^ other);
          exit 2
    in
    let cfg =
      {
        Chaos.Runner.default with
        Chaos.Runner.seed;
        duration;
        hosts;
        clients;
        keys;
        phases;
        kinds;
        mode;
        scan_heavy;
        broken;
        broken_recovery;
        branching;
        broken_branch;
        scs_k;
        trace_out;
      }
    in
    let report = Chaos.Runner.run cfg in
    Format.printf "%a@." Chaos.Runner.pp_report report;
    if not (Chaos.Runner.passed report) then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const action $ seed_arg $ duration_arg $ hosts_arg $ clients_arg $ keys_arg $ phases_arg
      $ faults_arg $ broken_arg $ broken_recovery_arg $ branching_arg $ broken_branch_arg
      $ scs_k_arg $ cc_arg $ scan_heavy_arg $ trace_arg)

(* Streaming-checker benchmark and falsifiability gate: push a
   synthetic chaos-shaped history (optionally with branch traffic)
   through Check.Stream, measure throughput and peak live heap, and
   verify that a seeded violation is caught. *)
let checker_cmd =
  let doc =
    "Benchmark the streaming serializability checker on a synthetic deterministic history \
     (writes, reads, snapshot creations and snapshot reads; with --branching also branch \
     creation/deletion, frozen-version reads and multi-version queries), writing \
     BENCH_checker.json (ops checked, ops/sec, peak live heap words). With --inject, one \
     event in the history lies and the run is expected to FAIL — exits 1 if the checker \
     misses it. Without --inject, exits 1 on any violation or if the checker's live heap \
     exceeds --max-live-words (the O(active keys + budgets) memory gate)."
  in
  let seed_arg =
    Arg.(value & opt int Chaos.Histgen.default.Chaos.Histgen.seed
        & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")
  in
  let ops_arg =
    Arg.(value & opt int Chaos.Histgen.default.Chaos.Histgen.ops
        & info [ "ops" ] ~docv:"N" ~doc:"History length in events.")
  in
  let keys_arg =
    Arg.(value & opt int Chaos.Histgen.default.Chaos.Histgen.keys
        & info [ "keys" ] ~docv:"N" ~doc:"Key-space size.")
  in
  let branching_arg =
    Arg.(value & flag
        & info [ "branching" ]
            ~doc:"Generate branch/version traffic instead of linear snapshots.")
  in
  let inject_arg =
    let doc =
      "Seed exactly one violation: 'stale-read' (a stamped read returns a value the model \
       never held) or 'branch-isolation' (a read pinned at a frozen version leaks a foreign \
       value; requires --branching). The checker must FAIL the history."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"KIND" ~doc)
  in
  let dir_arg =
    Arg.(value & opt string "." & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let max_live_arg =
    Arg.(value & opt int 64_000_000
        & info [ "max-live-words" ] ~docv:"WORDS"
            ~doc:"Peak live-heap budget in words (clean runs only).")
  in
  let action seed ops keys branching inject dir max_live =
    let fault =
      match inject with
      | None -> None
      | Some "stale-read" -> Some Chaos.Histgen.Stale_read
      | Some "branch-isolation" -> Some Chaos.Histgen.Branch_isolation
      | Some other ->
          prerr_endline ("unknown injection kind: " ^ other);
          exit 2
    in
    let cfg =
      { Chaos.Histgen.default with Chaos.Histgen.seed; ops; keys; branching; fault }
    in
    let stream = Check.Stream.create Check.Stream.Config.default in
    let peak = ref 0 in
    let sample () =
      Gc.full_major ();
      peak := max !peak (Gc.stat ()).Gc.live_words
    in
    let fed = ref 0 in
    let t0 = Unix.gettimeofday () (* lint: allow wallclock-rng *) in
    let gen =
      Chaos.Histgen.generate
        ~on_creation:(fun ~index ~sid ~stamp ->
          Check.Stream.add_creation stream ~index ~sid ~stamp)
        cfg
        (fun ev ->
          Check.Stream.feed stream ev;
          incr fed;
          if !fed mod 100_000 = 0 then sample ())
    in
    let verdict = Check.Stream.finish ~final:gen.Chaos.Histgen.gen_final stream in
    sample ();
    let elapsed = Unix.gettimeofday () -. t0 (* lint: allow wallclock-rng *) in
    let ops_per_sec = float_of_int !fed /. elapsed in
    Format.printf "%a@." Check.Stream.pp_verdict verdict;
    Printf.printf "checked %d events in %.2fs (%.0f ops/sec), peak live heap %d words\n%!" !fed
      elapsed ops_per_sec !peak;
    (match fault with
    | Some _ ->
        if Check.Stream.ok verdict then begin
          prerr_endline "ERROR: seeded violation went uncaught";
          exit 1
        end
        else print_endline "seeded violation caught, as required"
    | None ->
        let json =
          Obs.Json.Obj
            [
              ("schema_version", Obs.Json.Int 1);
              ("ops_checked", Obs.Json.Int verdict.Check.Stream.ops_checked);
              ("events", Obs.Json.Int !fed);
              ("ops_per_sec", Obs.Json.Float ops_per_sec);
              ("peak_live_words", Obs.Json.Int !peak);
              ("snapshot_reads_checked", Obs.Json.Int verdict.Check.Stream.snapshot_reads_checked);
              ("branch_reads_checked", Obs.Json.Int verdict.Check.Stream.branch_reads_checked);
              ("violations", Obs.Json.Int (List.length verdict.Check.Stream.violations));
            ]
        in
        let path = Filename.concat dir "BENCH_checker.json" in
        let oc = open_out path in
        output_string oc (Obs.Json.to_string json);
        output_char oc '\n';
        close_out oc;
        Printf.printf "checker report written to %s\n%!" path;
        if not (Check.Stream.ok verdict) then exit 1;
        if !peak > max_live then begin
          Printf.eprintf "ERROR: peak live heap %d words exceeds the %d-word budget\n%!" !peak
            max_live;
          exit 1
        end)
  in
  Cmd.v (Cmd.info "checker" ~doc)
    Term.(
      const action $ seed_arg $ ops_arg $ keys_arg $ branching_arg $ inject_arg $ dir_arg
      $ max_live_arg)

(* Node-path micro-benchmark: zero-copy views against eager decodes on
   the same slotted payloads (wall-clock, so exempt from the
   deterministic-time lint like the checker bench above), plus a short
   simulated workload counting decodes avoided and bytes copied per
   scan hop. Also asserts the format's falsifiability gates: a
   corrupted slot directory must fail Bnode.decode, and legacy payloads
   must still decode. Writes BENCH_node.json; exits 1 on any gate. *)
let node_cmd =
  let doc =
    "Micro-benchmark the zero-copy node view against an eager decode (ns/lookup on identical \
     slotted payloads), run a short simulated scan workload to count decodes avoided and bytes \
     copied per scan hop, assert corruption/back-compat gates, and write BENCH_node.json. Exits \
     1 when the view is less than --min-speedup times faster or any gate fails."
  in
  let seed_arg =
    Arg.(value & opt int 0x5ca9 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")
  in
  let iters_arg =
    Arg.(value & opt int 200_000
        & info [ "iters" ] ~docv:"N" ~doc:"Lookups per timed side.")
  in
  let dir_arg =
    Arg.(value & opt string "." & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let min_speedup_arg =
    Arg.(value & opt float 3.0
        & info [ "min-speedup" ] ~docv:"X"
            ~doc:"Required view-over-decode lookup speedup.")
  in
  let action seed iters dir min_speedup =
    let module Bkey = Btree.Bkey in
    let module Bnode = Btree.Bnode in
    let module Bview = Btree.Bview in
    (* A realistic leaf at the YCSB operating point: 14-byte keys with a
       shared prefix, 8-byte values, 64 entries (a full 4 KiB leaf). *)
    let key_of i = Printf.sprintf "user4839%06d" i in
    let entries = Array.init 64 (fun i -> (key_of (i * 7), Printf.sprintf "val%05d" i)) in
    let leaf = Bnode.make_leaf ~low:Bkey.Neg_inf ~high:Bkey.Pos_inf ~snap:3L entries in
    let payload = Bnode.encode leaf in
    let probes = Array.init 256 (fun i -> key_of ((i * 13) mod (64 * 7))) in
    let time f =
      let t0 = Unix.gettimeofday () (* lint: allow wallclock-rng *) in
      f ();
      Unix.gettimeofday () -. t0 (* lint: allow wallclock-rng *)
    in
    let sink = ref 0 in
    (* Warm both paths once so the first timed side pays no cold-start
       penalty (lazy CRC table, allocator warmup). *)
    ignore (Bnode.decode payload : Bnode.t);
    ignore (Bview.of_string payload : Bview.t);
    let view_s =
      time (fun () ->
          for i = 0 to iters - 1 do
            let v = Bview.of_string payload in
            match Bview.leaf_find v (Array.unsafe_get probes (i land 255)) with
            | Some s -> sink := !sink + String.length s
            | None -> ()
          done)
    in
    let decode_s =
      time (fun () ->
          for i = 0 to iters - 1 do
            let n = Bnode.decode payload in
            match Bnode.leaf_find n (Array.unsafe_get probes (i land 255)) with
            | Some s -> sink := !sink + String.length s
            | None -> ()
          done)
    in
    ignore !sink;
    let ns side = side *. 1e9 /. float_of_int iters in
    let speedup = if view_s > 0.0 then decode_s /. view_s else infinity in
    (* Falsifiability: flipping any slot-directory byte must fail the
       CRC on the decode path. *)
    let v = Bview.of_string payload in
    let dir_off, dir_len = Bview.dir_bounds v in
    let corrupt_caught = ref true in
    for i = dir_off to dir_off + dir_len - 1 do
      let mangled =
        String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 0x5a) else c) payload
      in
      match Bnode.decode mangled with
      | (_ : Bnode.t) -> corrupt_caught := false
      | exception Codec.Decode_error _ -> ()
    done;
    let legacy_ok =
      match Bnode.decode (Bnode.encode_legacy leaf) with
      | n -> Bnode.leaf_entries n = entries
      | exception Codec.Decode_error _ -> false
    in
    (* Short simulated scan workload: decodes avoided and bytes copied
       per batched scan hop come from the typed node counters. *)
    let config =
      {
        Minuet.Config.default with
        Minuet.Config.hosts = 3;
        scan_batch = 16;
        max_keys_leaf = Some 4;
        max_keys_internal = Some 64;
      }
    in
    let view_hits, materialisations, bytes_copied, hops =
      Minuet.Harness.run ~seed ~until:60.0 ~config @@ fun db ->
      let s = Minuet.Session.attach db in
      for i = 0 to 299 do
        Minuet.Session.put s (Printf.sprintf "k%05d" i) (Printf.sprintf "v%d" i)
      done;
      for i = 0 to 19 do
        let snap = Minuet.Session.snapshot s in
        ignore
          (Minuet.Session.scan_at s snap ~from:(Printf.sprintf "k%05d" (i * 10)) ~count:100
            : (string * string) list)
      done;
      let obs = Minuet.Db.obs db in
      let ns_ = Obs.node obs in
      let ss = Obs.scan obs in
      let c = Obs.Counter.value in
      (c ns_.Obs.view_hits, c ns_.Obs.materialisations, c ns_.Obs.node_bytes_copied,
       c ss.Obs.scan_batched_leaves)
    in
    let decodes_avoided = view_hits - materialisations in
    let bytes_per_hop = if hops = 0 then 0.0 else float_of_int bytes_copied /. float_of_int hops in
    let ok_speedup = speedup >= min_speedup in
    let json =
      Obs.Json.Obj
        [
          ("bench", Obs.Json.String "node");
          ("schema_version", Obs.Json.Int 1);
          ("seed", Obs.Json.Int seed);
          ("iters", Obs.Json.Int iters);
          ("payload_bytes", Obs.Json.Int (String.length payload));
          ("view_ns_per_lookup", Obs.Json.Float (ns view_s));
          ("decode_ns_per_lookup", Obs.Json.Float (ns decode_s));
          ("speedup", Obs.Json.Float speedup);
          ("min_speedup", Obs.Json.Float min_speedup);
          ("workload_view_hits", Obs.Json.Int view_hits);
          ("workload_materialisations", Obs.Json.Int materialisations);
          ("decodes_avoided", Obs.Json.Int decodes_avoided);
          ("bytes_copied_per_scan_hop", Obs.Json.Float bytes_per_hop);
          ("corrupt_dir_caught", Obs.Json.Bool !corrupt_caught);
          ("legacy_decode_ok", Obs.Json.Bool legacy_ok);
          ("pass", Obs.Json.Bool (ok_speedup && !corrupt_caught && legacy_ok));
        ]
    in
    let path = Filename.concat dir "BENCH_node.json" in
    let oc = open_out path in
    output_string oc (Obs.Json.to_string json);
    output_char oc '\n';
    close_out oc;
    Printf.printf
      "node bench: view %.0f ns/lookup vs decode %.0f ns/lookup (%.2fx, need %.2fx)\n" (ns view_s)
      (ns decode_s) speedup min_speedup;
    Printf.printf "  workload: %d view hits, %d materialisations (%d decodes avoided)\n" view_hits
      materialisations decodes_avoided;
    Printf.printf "  %.0f bytes copied per batched scan hop over %d hops\n" bytes_per_hop hops;
    Printf.printf "  report written to %s\n%!" path;
    if not !corrupt_caught then begin
      prerr_endline "ERROR: a corrupted slot directory decoded successfully";
      exit 1
    end;
    if not legacy_ok then begin
      prerr_endline "ERROR: legacy payload no longer decodes";
      exit 1
    end;
    if not ok_speedup then begin
      Printf.eprintf "ERROR: view speedup %.2fx below the %.2fx floor\n%!" speedup min_speedup;
      exit 1
    end
  in
  Cmd.v (Cmd.info "node" ~doc)
    Term.(const action $ seed_arg $ iters_arg $ dir_arg $ min_speedup_arg)

(* Scan benchmark: batched leaf scans (scan_batch=16) vs the per-leaf
   baseline (scan_batch=1) on the same seed, plus a crash storm proving
   caches recover by epoch revalidation rather than bulk flushes.
   Writes BENCH_scan.json; exits 1 if the speedup floor is missed, the
   storm exercised no epoch revalidation, or any bulk eviction ran. *)
let scan_cmd =
  let doc =
    "Benchmark batched leaf scans against the per-leaf baseline under contended 100-leaf \
     range scans, run a crash storm to exercise epoch-based cache revalidation, and write \
     BENCH_scan.json (ops/s both sides, leaves per round trip, cache hit rate, epoch \
     revalidation and bulk-eviction counts). Exits 1 when any acceptance gate fails."
  in
  let seed_arg =
    Arg.(value & opt int 0x5ca9 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")
  in
  let duration_arg =
    Arg.(value & opt float 0.5
        & info [ "duration" ] ~docv:"SECONDS" ~doc:"Measured simulated seconds per side.")
  in
  let dir_arg =
    Arg.(value & opt string "." & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let min_speedup_arg =
    Arg.(value & opt float 2.0
        & info [ "min-speedup" ] ~docv:"X"
            ~doc:"Required batched-over-per-leaf throughput ratio.")
  in
  let min_ops_arg =
    Arg.(value & opt float 0.0
        & info [ "min-batched-ops" ] ~docv:"OPS"
            ~doc:"Absolute regression floor on batched scans/s (0 disables).")
  in
  let min_leaves_arg =
    Arg.(value & opt float 0.0
        & info [ "min-leaves-per-rt" ] ~docv:"N"
            ~doc:"Regression floor on batched leaves per round trip (0 disables).")
  in
  let action seed duration dir min_speedup min_batched_ops min_leaves_per_rt =
    if
      not
        (Experiments.Scan_bench.run ~seed ~duration ~dir ~min_speedup ~min_batched_ops
           ~min_leaves_per_rt ())
    then exit 1
  in
  Cmd.v (Cmd.info "scan" ~doc)
    Term.(
      const action $ seed_arg $ duration_arg $ dir_arg $ min_speedup_arg $ min_ops_arg
      $ min_leaves_arg)

(* Open-loop production-traffic scenarios with per-tenant SLO gates.
   Every scenario runs through the streaming checker; the report is
   throughput + open-loop latency quantiles + queueing delay + SLO and
   checker verdicts per tenant. *)
let traffic_cmd =
  let doc =
    "Run canned open-loop production-traffic scenarios (steady, diurnal, flash-crowd, \
     shard-hotspot, chaos-overlapped storm, fig17/fig18 traffic variants) against the \
     simulated cluster, gate each tenant on its SLO (p99/p999 open-loop latency and error \
     budget), verify every session's history with the streaming serializability checker, \
     and write BENCH_traffic.json. Latency is measured from each operation's scheduled \
     arrival, so queueing delay counts and coordinated omission is impossible. Exits 1 on \
     any SLO breach, checker violation or audit failure. Deterministic per seed."
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")
  in
  let duration_arg =
    Arg.(value & opt float 1.5
        & info [ "duration" ] ~docv:"SECONDS"
            ~doc:"Simulated seconds of scheduled traffic per scenario.")
  in
  let scenario_arg =
    let doc =
      "Comma-separated scenario names to run, or 'all' (default) for the full suite. Known: \
       steady, diurnal, flash-crowd, shard-hotspot, storm, fig17-traffic, fig18-traffic, \
       broken-slo."
    in
    Arg.(value & opt string "all" & info [ "scenario" ] ~docv:"NAMES" ~doc)
  in
  let dir_arg =
    Arg.(value & opt string "." & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let broken_slo_arg =
    let doc =
      "Run only the deliberately under-provisioned scenario (one worker against 1500 \
       scans/s): the open-loop queue grows without bound, so the measured p99 must blow \
       through the 5 ms target and the command must exit 1. Falsifiability gate for the \
       queueing-delay accounting."
    in
    Arg.(value & flag & info [ "broken-slo" ] ~doc)
  in
  let action seed duration scenarios dir broken_slo =
    let chosen =
      if broken_slo then [ ("broken-slo", Traffic.Scenario.broken_slo) ]
      else
        match scenarios with
        | "all" -> Traffic.Scenario.all
        | s ->
            List.map
              (fun name -> (name, Traffic.Scenario.find name))
              (String.split_on_char ',' s)
    in
    let module E = Traffic.Engine in
    let module Hist = Sim.Stats.Hist in
    let ms h q = Hist.quantile h q *. 1e3 in
    let reports =
      List.map
        (fun (name, scenario) ->
          Printf.printf "== %s ==\n%!" name;
          let report = E.run (scenario ~seed ~duration) in
          Format.printf "%a@." E.pp_report report;
          report)
        chosen
    in
    let tenant_json (t : E.tenant_result) =
      Obs.Json.Obj
        [
          ("name", Obs.Json.String t.E.tenant.Traffic.Tenant.name);
          ("offered", Obs.Json.Int t.E.offered);
          ("completed", Obs.Json.Int t.E.completed);
          ("errors", Obs.Json.Int t.E.errors);
          ("branch_blocked", Obs.Json.Int t.E.branch_blocked);
          ("throughput_ops_s", Obs.Json.Float t.E.throughput);
          ("latency_p50_ms", Obs.Json.Float (ms t.E.latency 0.5));
          ("latency_p99_ms", Obs.Json.Float (ms t.E.latency 0.99));
          ("latency_p999_ms", Obs.Json.Float (Hist.p999 t.E.latency *. 1e3));
          ("queueing_p50_ms", Obs.Json.Float (ms t.E.queueing 0.5));
          ("queueing_p99_ms", Obs.Json.Float (ms t.E.queueing 0.99));
          ("queueing_p999_ms", Obs.Json.Float (Hist.p999 t.E.queueing *. 1e3));
          ("service_p99_ms", Obs.Json.Float (ms t.E.service 0.99));
          ("slo_ok", Obs.Json.Bool (Traffic.Slo.ok t.E.slo));
          ( "slo_breaches",
            Obs.Json.List
              (List.map (fun b -> Obs.Json.String b) t.E.slo.Traffic.Slo.breaches) );
        ]
    in
    let scenario_json (r : E.report) =
      Obs.Json.Obj
        [
          ("name", Obs.Json.String r.E.config.E.name);
          ("passed", Obs.Json.Bool (E.passed r));
          ("checker_ok", Obs.Json.Bool (Check.Stream.ok r.E.verdict));
          ("slo_ok", Obs.Json.Bool (E.slo_ok r));
          ("audit_failures", Obs.Json.Int (List.length r.E.audit_failures));
          ("events", Obs.Json.Int r.E.events);
          ("sim_time_s", Obs.Json.Float r.E.sim_time);
          ("tenants", Obs.Json.List (List.map tenant_json r.E.tenants));
        ]
    in
    let json =
      Obs.Json.Obj
        [
          ("schema_version", Obs.Json.Int 1);
          ("seed", Obs.Json.Int seed);
          ("duration_s", Obs.Json.Float duration);
          ("scenarios", Obs.Json.List (List.map scenario_json reports));
        ]
    in
    let path = Filename.concat dir "BENCH_traffic.json" in
    let oc = open_out path in
    output_string oc (Obs.Json.to_string json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "traffic report written to %s\n%!" path;
    let failed = List.filter (fun r -> not (E.passed r)) reports in
    List.iter
      (fun (r : E.report) ->
        Printf.eprintf "FAILED: %s (checker %s, %d audit failures, SLO %s)\n%!" r.E.config.E.name
          (if Check.Stream.ok r.E.verdict then "ok" else "VIOLATED")
          (List.length r.E.audit_failures)
          (if E.slo_ok r then "met" else "BREACHED"))
      failed;
    if failed <> [] then exit 1
  in
  Cmd.v (Cmd.info "traffic" ~doc)
    Term.(const action $ seed_arg $ duration_arg $ scenario_arg $ dir_arg $ broken_slo_arg)

let () =
  let doc = "Reproduce the evaluation of 'Minuet: A Scalable Distributed Multiversion B-Tree'" in
  let info = Cmd.info "minuet-bench" ~version:"1.0" ~doc in
  let cmds =
    all_cmd :: smoke_cmd :: check_report_cmd :: chaos_cmd :: checker_cmd :: node_cmd :: scan_cmd
    :: traffic_cmd
    :: List.map figure_cmd Experiments.all
  in
  exit (Cmd.eval (Cmd.group info cmds))
