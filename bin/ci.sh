#!/bin/sh
# Repo CI: build, run the test suite, check formatting where an
# .ocamlformat-governed formatter is available, and smoke-test the
# observability pipeline end to end (run a workload, emit
# BENCH_smoke.json, validate it with the in-repo JSON parser).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== observability smoke =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
dune exec bin/minuet_bench.exe -- smoke --dir "$smoke_dir"
dune exec bin/minuet_bench.exe -- check-report "$smoke_dir/BENCH_smoke.json"

echo "CI OK"
