#!/bin/sh
# Repo CI: build, run the test suite, check formatting where an
# .ocamlformat-governed formatter is available, and smoke-test the
# observability pipeline end to end (run a workload, emit
# BENCH_smoke.json, validate it with the in-repo JSON parser).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== observability smoke =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
dune exec bin/minuet_bench.exe -- smoke --dir "$smoke_dir"
dune exec bin/minuet_bench.exe -- check-report "$smoke_dir/BENCH_smoke.json"

echo "== scan benchmark smoke =="
# Batched leaf scans vs the per-leaf baseline plus a crash storm; fails
# the build unless batching clears its speedup floor and post-crash
# caches recover by epoch revalidation (never by a bulk flush). Emits
# BENCH_scan.json (ops/s, leaves per round trip, cache hit rate).
dune exec bin/minuet_bench.exe -- scan --dir "$smoke_dir"

echo "== chaos + serializability check =="
# Deterministic fault-injection storm with the history checker; fails
# the build on any serializability/snapshot violation or audit failure.
dune exec bin/minuet_bench.exe -- chaos --seed 42 --duration 2

echo "== scan-heavy chaos (both concurrency-control modes) =="
# Scan-dominated mix: long batched range scans over splitting/merging
# leaves, every snapshot scan double-checked against the per-leaf path.
dune exec bin/minuet_bench.exe -- chaos --seed 11 --duration 1 --scan-heavy --cc dirty
dune exec bin/minuet_bench.exe -- chaos --seed 11 --duration 1 --scan-heavy --cc validated

echo "== mid-2PC crash storm (3 seeds) =="
# Mid-transaction crashes, mirror-link partitions and replica lag: the
# redo-log/recovery path must keep every history serializable, every
# 2PC decision atomic across participants, and the in-doubt set drained.
for seed in 1 7 42; do
  dune exec bin/minuet_bench.exe -- chaos --seed "$seed" --duration 1 \
    --faults midcrash,mpartition,replag
done

echo "== chaos checker catches injected bugs =="
# With leaf-read validation deliberately broken the same pipeline must
# FAIL — a checker that never fires would let real violations through.
if dune exec bin/minuet_bench.exe -- chaos --seed 7 --duration 0.5 --broken \
    --clients 8 --keys 24 >/dev/null 2>&1; then
  echo "ERROR: --broken chaos run passed; the checker caught nothing" >&2
  exit 1
fi

echo "== chaos checker catches broken recovery =="
# With the redo-log replay disabled, committed-but-unmirrored writes are
# lost on promotion/recovery; the mid-crash storm must catch it (checker
# violation, failed structural audit, or the corruption crashing the run
# — all reported as failures).
if dune exec bin/minuet_bench.exe -- chaos --seed 7 --duration 1 \
    --faults midcrash,replag --broken-recovery >/dev/null 2>&1; then
  echo "ERROR: --broken-recovery chaos run passed; lost writes went unnoticed" >&2
  exit 1
fi

echo "== fault-tolerance example (asserting) =="
dune exec examples/fault_tolerance.exe

echo "CI OK"
