#!/bin/sh
# Repo CI: build, run the test suite, check formatting where an
# .ocamlformat-governed formatter is available, and smoke-test the
# observability pipeline end to end (run a workload, emit
# BENCH_smoke.json, validate it with the in-repo JSON parser).
set -eu

cd "$(dirname "$0")/.."

smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== static analysis (minuet_lint) =="
# Two-phase invariant linter (DESIGN.md Secs. 13 and 17): per-file
# expression rules plus the interprocedural pass (transitive nondet
# reach, crash-swallow through call chains, 2PC op ordering, blocking
# under held locks). Fails on any unsuppressed finding; emits
# BENCH_lint.json and runs the fixture self-test, which includes the
# cross-module xmod/xswallow trees.
dune build @lint
lint="_build/default/bin/minuet_lint.exe"
"$lint" --json "$smoke_dir/BENCH_lint.json" lib bin test bench examples
"$lint" --quiet --fixtures test/lint_fixtures

echo "== lint wall-time budget =="
# The whole-repo pass above self-reports its wall time; a fixpoint or
# splice pass gone quadratic shows up here long before it hurts CI.
wall_ms=$(tr ',' '\n' < "$smoke_dir/BENCH_lint.json" \
  | sed -n 's/.*"wall_ms": *\([0-9][0-9]*\).*/\1/p' | head -n 1)
if [ -z "$wall_ms" ]; then
  echo "ERROR: BENCH_lint.json has no wall_ms field" >&2
  exit 1
fi
if [ "$wall_ms" -gt 10000 ]; then
  echo "ERROR: whole-repo lint took ${wall_ms}ms (budget 10000ms)" >&2
  exit 1
fi
echo "lint wall time: ${wall_ms}ms (budget 10000ms)"

echo "== lint falsifiability (each rule can fail the build) =="
# Seed each rule's bad fixture as a protocol source: the linter must
# reject it, and must go quiet when exactly that rule is disabled — a
# rule that can never fire protects nothing. protocol-order and
# blocking-under-lock are interprocedural but single-file-triggerable,
# so they ride the same loop.
for rule in crashed-swallow nondet-iteration wallclock-rng \
            stringly-metrics partial-stdlib poly-compare \
            protocol-order blocking-under-lock; do
  seeded="$smoke_dir/seeded.ml"
  cp "test/lint_fixtures/bad_$(echo "$rule" | tr - _).ml" "$seeded"
  if "$lint" --quiet --as lib/sinfonia/seeded.ml "$seeded" >/dev/null 2>&1; then
    echo "ERROR: rule $rule did not flag its seeded violation" >&2
    exit 1
  fi
  if ! "$lint" --quiet --as lib/sinfonia/seeded.ml --disable "$rule" "$seeded" \
      >/dev/null 2>&1; then
    echo "ERROR: disabling $rule did not silence its seeded violation" >&2
    exit 1
  fi
done

# crash-swallow-transitive excludes protocol paths (the syntactic rule
# owns those), so its seed lands on a non-protocol path instead.
rule=crash-swallow-transitive
seeded="$smoke_dir/seeded.ml"
cp test/lint_fixtures/bad_crash_swallow_transitive.ml "$seeded"
if "$lint" --quiet --as lib/traffic/seeded.ml "$seeded" >/dev/null 2>&1; then
  echo "ERROR: rule $rule did not flag its seeded violation" >&2
  exit 1
fi
if ! "$lint" --quiet --as lib/traffic/seeded.ml --disable "$rule" "$seeded" \
    >/dev/null 2>&1; then
  echo "ERROR: disabling $rule did not silence its seeded violation" >&2
  exit 1
fi

# transitive-nondet only fires when the source lives outside the
# determinism scope of its caller, which no single file can express:
# seed the cross-module xmod tree as lib/ via the --as directory form.
rule=transitive-nondet
if "$lint" --quiet --as lib test/lint_fixtures/xmod/lib >/dev/null 2>&1; then
  echo "ERROR: rule $rule did not flag its seeded violation" >&2
  exit 1
fi
if ! "$lint" --quiet --as lib --disable "$rule" test/lint_fixtures/xmod/lib \
    >/dev/null 2>&1; then
  echo "ERROR: disabling $rule did not silence its seeded violation" >&2
  exit 1
fi

echo "== observability smoke =="
dune exec bin/minuet_bench.exe -- smoke --dir "$smoke_dir"
dune exec bin/minuet_bench.exe -- check-report "$smoke_dir/BENCH_smoke.json"

echo "== node-path micro-benchmark =="
# Zero-copy node views vs eager decodes on identical slotted payloads:
# the view must be at least 3x faster per lookup, a corrupted slot
# directory must fail Bnode.decode's CRC, and legacy (pre-slotted)
# payloads must still decode. Emits BENCH_node.json (ns/lookup both
# sides, decodes avoided, bytes copied per scan hop).
dune exec bin/minuet_bench.exe -- node --dir "$smoke_dir" --min-speedup 3.0

echo "== scan benchmark smoke =="
# Batched leaf scans vs the per-leaf baseline plus a crash storm; fails
# the build unless batching clears its speedup floor and post-crash
# caches recover by epoch revalidation (never by a bulk flush). Emits
# BENCH_scan.json (ops/s, leaves per round trip, cache hit rate). The
# absolute floors pin the trimmed-reply scan numbers: the pre-zero-copy
# baseline measured 1168 batched scans/s, so dropping below 1200 means
# the response-byte win regressed.
dune exec bin/minuet_bench.exe -- scan --dir "$smoke_dir" \
  --min-batched-ops 1200 --min-leaves-per-rt 15.0

echo "== streaming checker: million-op gate =="
# A million-event synthetic history through Check.Stream, linear and
# branching; fails on any violation or if the checker's peak live heap
# exceeds the 64M-word budget (the O(active keys + budgets) memory
# bound). The linear run's BENCH_checker.json is the committed report.
dune exec bin/minuet_bench.exe -- checker --dir "$smoke_dir"
dune exec bin/minuet_bench.exe -- checker --branching --dir "$smoke_dir"

echo "== streaming checker falsifiability =="
# One seeded lie must fail the run: a stale stamped read in the linear
# history, a frozen-version isolation leak in the branching one. The
# command exits nonzero itself when the checker misses the lie.
dune exec bin/minuet_bench.exe -- checker --ops 200000 --dir "$smoke_dir" \
  --inject stale-read
dune exec bin/minuet_bench.exe -- checker --ops 200000 --dir "$smoke_dir" \
  --branching --inject branch-isolation

echo "== production traffic: SLO gates through the checker =="
# Open-loop traffic scenarios (steady, diurnal, flash-crowd,
# shard-hotspot, chaos-overlapped storm, fig17/fig18 variants): every
# tenant must hold its p99/p999/error-budget SLO measured from
# scheduled arrival (queueing delay counts), every session history must
# pass the streaming serializability checker, and all structural audits
# must walk clean. Emits BENCH_traffic.json.
dune exec bin/minuet_bench.exe -- traffic --dir "$smoke_dir"

echo "== traffic SLO falsifiability =="
# A tenant provisioned at one worker against 1500 scans/s: the open-loop
# queue grows without bound, so the p99 gate must trip and the command
# must exit nonzero. If this passes, the queueing-delay accounting has
# quietly turned into a closed loop (coordinated omission).
if dune exec bin/minuet_bench.exe -- traffic --broken-slo --dir "$smoke_dir" \
    >/dev/null 2>&1; then
  echo "ERROR: --broken-slo traffic run met its SLO; queueing delay is not being counted" >&2
  exit 1
fi

echo "== chaos + serializability check =="
# Deterministic fault-injection storm with the history checker; fails
# the build on any serializability/snapshot violation or audit failure.
dune exec bin/minuet_bench.exe -- chaos --seed 42 --duration 2

echo "== branching chaos (writable clones, version tree) =="
# Real clone traffic through Mvcc.Branching under the default fault
# storm: branch-scoped operations are traced and every read pinned at a
# frozen version is checked against its frozen ancestor state. Seed 7
# pins the prepare-vote/stamp-draw crash window regression.
dune exec bin/minuet_bench.exe -- chaos --seed 7 --duration 1 --branching
dune exec bin/minuet_bench.exe -- chaos --seed 42 --duration 1 --branching

echo "== chaos checker catches broken branch isolation =="
# With copy-on-write sharing deliberately broken, writes leak into
# frozen ancestor versions; the branching chaos run must FAIL.
if dune exec bin/minuet_bench.exe -- chaos --seed 3 --duration 0.5 --branching \
    --broken-branch >/dev/null 2>&1; then
  echo "ERROR: --broken-branch chaos run passed; isolation leaks went unnoticed" >&2
  exit 1
fi

echo "== scan-heavy chaos (both concurrency-control modes) =="
# Scan-dominated mix: long batched range scans over splitting/merging
# leaves, every snapshot scan double-checked against the per-leaf path.
dune exec bin/minuet_bench.exe -- chaos --seed 11 --duration 1 --scan-heavy --cc dirty
dune exec bin/minuet_bench.exe -- chaos --seed 11 --duration 1 --scan-heavy --cc validated

echo "== mid-2PC crash storm (3 seeds) =="
# Mid-transaction crashes, mirror-link partitions and replica lag: the
# redo-log/recovery path must keep every history serializable, every
# 2PC decision atomic across participants, and the in-doubt set drained.
for seed in 1 7 42; do
  dune exec bin/minuet_bench.exe -- chaos --seed "$seed" --duration 1 \
    --faults midcrash,mpartition,replag
done

echo "== chaos checker catches injected bugs =="
# With leaf-read validation deliberately broken the same pipeline must
# FAIL — a checker that never fires would let real violations through.
if dune exec bin/minuet_bench.exe -- chaos --seed 7 --duration 0.5 --broken \
    --clients 8 --keys 24 >/dev/null 2>&1; then
  echo "ERROR: --broken chaos run passed; the checker caught nothing" >&2
  exit 1
fi

echo "== chaos checker catches broken recovery =="
# With the redo-log replay disabled, committed-but-unmirrored writes are
# lost on promotion/recovery; the mid-crash storm must catch it (checker
# violation, failed structural audit, or the corruption crashing the run
# — all reported as failures).
if dune exec bin/minuet_bench.exe -- chaos --seed 7 --duration 1 \
    --faults midcrash,replag --broken-recovery >/dev/null 2>&1; then
  echo "ERROR: --broken-recovery chaos run passed; lost writes went unnoticed" >&2
  exit 1
fi

echo "== fault-tolerance example (asserting) =="
dune exec examples/fault_tolerance.exe

echo "CI OK"
