(** Writable clones and branching versions (Sec. 5).

    A branching tree's snapshots form a tree of versions recorded in the
    {!Catalog}: internal vertices are read-only snapshots, leaves are
    writable tips. Creating a snapshot is creating the {e first} branch
    of a tip; further branches from any read-only version create
    parallel writable clones.

    Dirty traversals remain safe thanks to β-bounded descendant sets
    maintained with discretionary copy-on-write (Sec. 5.2): when a node
    accumulates more than β copies, the copies that share a child
    subtree of the version tree are collapsed under a content-identical
    discretionary copy at their common ancestor — performed atomically
    inside the same dynamic transaction as the triggering write. *)

(** Raw trace of branch-aware operations, emitted through
    {!set_tracer}. This module cannot name [Session.Event] (the core
    library depends on it), so it emits a neutral record; the session
    layer converts these into history events for the checker. *)
module Trace : sig
  type op =
    | Branch_created of { parent : int64; sid : int64 }
    | Branch_deleted of { sid : int64 }
    | Get of { at : int64; key : string; result : string option }
    | Put of { at : int64; key : string; value : string }
    | Remove of { at : int64; key : string; removed : bool }
    | Scan of { at : int64; from : string; count : int; result : (string * string) list }
    | Get_many of { key : string; results : (int64 * string option) list }
    | History of { from : int64; key : string; results : (int64 * string option) list }

  type t = {
    op : op;
    invoked_at : float;  (** Simulated time the operation started. *)
    returned_at : float;  (** Simulated time it returned. *)
    stamp : int64 option;
        (** Commit stamp of the operation's transaction; [None] for
            dirty (read-only snapshot) commits and ambiguous ops. *)
    ambiguous : bool;
        (** The operation raised {!Btree.Ops.Ambiguous}: its effect is
            unknown (emitted just before re-raising). *)
  }
end

type t

val attach : ?broken_isolation:bool -> tree:Btree.Ops.tree -> beta:int -> unit -> t
(** Per-proxy handle. [beta] >= 2 bounds both the version tree's
    branching factor and descendant-set sizes. [broken_isolation]
    (default false) deliberately routes reads at read-only versions to
    the mainline tip below them — checker falsifiability only. *)

val set_tracer : t -> (Trace.t -> unit) -> unit
(** Install a trace sink. Branch-scoped {!get}/{!put}/{!remove}/{!scan},
    {!get_many}, {!history}, {!create_branch} and {!delete_branch}
    each emit one record when they return. *)

val tree : t -> Btree.Ops.tree

val beta : t -> int

val init_tree : t -> unit
(** Create the empty tree as snapshot 0 (a writable tip) and publish
    the catalog entry and global id counter. Once per tree id. *)

exception Too_many_branches of int64
(** Creating another branch would exceed β (Sec. 5.2 restricts the
    version tree's branching factor). *)

exception No_mainline of int64
(** Following first-branch pointers from the carried version reached a
    deleted first branch with siblings remaining: there is no default
    mainline anymore, and the caller must name a tip explicitly
    (Sec. 5.1 lets users override the default). *)

val create_branch : t -> from:int64 -> int64
(** Create a new writable snapshot branching from [from] (which may be
    a writable tip — that is exactly "creating a snapshot" — or an
    existing read-only version). Returns the new snapshot id. Uses a
    blocking commit like Fig. 6. *)

val mainline_tip : t -> Dyntxn.Txn.t -> from:int64 -> int64
(** Follow first-branch pointers from [from] down to a writable tip:
    the default snapshot for retried up-to-date operations (Sec. 5.1). *)

val is_ancestor : t -> Dyntxn.Txn.t -> int64 -> int64 -> bool
(** [is_ancestor t txn a b]: [a] is [b] or one of its ancestors. *)

val tip_vctx : t -> ?from:int64 -> Dyntxn.Txn.t -> Btree.Ops.vctx
(** Up-to-date context on the mainline tip reached from [from]
    (default: snapshot 0, i.e. the original mainline). The tip's catalog
    entry is registered for commit-time validation, so a concurrent
    "make this tip read-only" aborts the operation. *)

val at_snapshot : t -> sid:int64 -> Dyntxn.Txn.t -> Btree.Ops.vctx
(** Read-only context on any version. *)

(** {1 Convenience operations} *)

val get : t -> ?at:int64 -> Btree.Bkey.t -> string option
(** [at] defaults to the mainline tip. For a read-only version pass its
    id; for a specific tip pass that tip's id. *)

val put : t -> ?at:int64 -> Btree.Bkey.t -> string -> unit
(** [at] (default mainline) must lead to a writable tip. *)

val remove : t -> ?at:int64 -> Btree.Bkey.t -> bool

val scan : ?at:int64 -> t -> from:Btree.Bkey.t -> count:int -> (Btree.Bkey.t * string) list

(** {1 Multi-version queries (Sec. 5.1)} *)

val get_many : t -> at:int64 list -> Btree.Bkey.t -> (int64 * string option) list
(** Horizontal query: read one key across several versions atomically
    (one dynamic transaction). *)

val history : t -> from:int64 -> Btree.Bkey.t -> (int64 * string option) list
(** Vertical query: the key's value at [from] and at each of its
    ancestors, root-first, read atomically. *)

type change = Added of string | Removed of string | Changed of string * string

val diff :
  ?max_keys:int -> t -> base:int64 -> other:int64 -> (Btree.Bkey.t * change) list
(** Compare two whole versions atomically: entries added, removed or
    changed going from [base] to [other], in key order. *)

(** {1 Branch deletion and reclamation (Sec. 5.2)} *)

exception Not_deletable of string

val delete_branch : t -> int64 -> unit
(** Delete a leaf version (a writable tip that never had branches).
    Its parent sheds a branch — shedding the last one makes the parent
    writable again. Storage is reclaimed by [Gc.sweep_branching].
    Raises {!Not_deletable} for the initial version, internal versions,
    or already-deleted ids. *)

val is_deleted : t -> sid:int64 -> bool

val live_roots : t -> Dyntxn.Objref.t list
(** Root locations of all non-deleted versions (the GC mark roots). *)

val root_of : t -> sid:int64 -> Dyntxn.Objref.t
(** Root location of a version (for {!Btree.Ops.audit}). *)

val snapshot_exists : t -> sid:int64 -> bool

val writable : t -> sid:int64 -> bool

val parent : t -> sid:int64 -> int64 option
(** [None] for the initial snapshot. *)
