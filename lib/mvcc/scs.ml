module Ops = Btree.Ops
module Txn = Dyntxn.Txn

type t = {
  tree : Ops.tree;
  obs : Obs.t;
  stats : Obs.scs_stats;
  borrowing : bool;
  min_interval : float;
  rpc_one_way : float;
  mutex : Sim.Mutex.t;
  (* Fig. 7 shared state. [last] is the (sid, root) pair of the most
     recently created read-only snapshot. *)
  mutable num_snapshots : int;
  mutable last : (int64 * Dyntxn.Objref.t) option;
  mutable last_created_at : float;
  mutable created : int;
  mutable borrowed : int;
  mutable stale_reused : int;
}

let create ?(borrowing = true) ?(min_interval = 0.0) ?(rpc_one_way = 25e-6) ~tree () =
  let obs = Sinfonia.Cluster.obs (Ops.cluster tree) in
  {
    tree;
    obs;
    stats = Obs.scs obs;
    borrowing;
    min_interval;
    rpc_one_way;
    mutex = Sim.Mutex.create ();
    num_snapshots = 0;
    last = None;
    last_created_at = neg_infinity;
    created = 0;
    borrowed = 0;
    stale_reused = 0;
  }

let snapshots_created t = t.created

let borrows t = t.borrowed

let stale_reuses t = t.stale_reused

(* Execute Fig. 6 to completion with a blocking commit, retrying on
   validation failures (e.g. a racing up-to-date operation bumped a
   cached tip). *)
let create_snapshot_now t =
  Obs.with_span t.obs Obs.Span.Snapshot_create @@ fun () ->
  let rec attempt tries =
    if tries > 64 then failwith "Scs: snapshot creation starved";
    let txn = Txn.begin_ (Ops.cluster t.tree) ~home:(Ops.home t.tree) in
    let sid, loc = Ops.Linear.create_snapshot t.tree txn in
    match Txn.commit ~blocking:true txn with
    | Txn.Committed -> (sid, loc)
    | Txn.Validation_failed | Txn.Retry_exhausted ->
        Txn.evict_dirty txn;
        attempt (tries + 1)
  in
  let result = attempt 0 in
  t.created <- t.created + 1;
  Obs.Counter.incr t.stats.Obs.scs_created;
  t.last <- Some result;
  t.last_created_at <- Sim.now ();
  result

let request t =
  Obs.with_span t.obs Obs.Span.Scs_request @@ fun () ->
  (* Proxy → service hop. *)
  Sim.delay t.rpc_one_way;
  let result =
    (* Staleness bound (Sec. 6.3): reuse the latest snapshot if it is
       younger than k. Checked again under the lock to serialize
       creations. *)
    let fresh_enough () =
      t.min_interval > 0.0
      && t.last <> None
      && Sim.now () -. t.last_created_at < t.min_interval
    in
    if fresh_enough () then begin
      t.stale_reused <- t.stale_reused + 1;
      Obs.Counter.incr t.stats.Obs.scs_stale_reused;
      Option.get t.last
    end
    else begin
      let tmp1 = t.num_snapshots in
      Sim.Mutex.lock t.mutex;
      let result =
        if fresh_enough () then begin
          t.stale_reused <- t.stale_reused + 1;
          Obs.Counter.incr t.stats.Obs.scs_stale_reused;
          Option.get t.last
        end
        else begin
          let tmp2 = t.num_snapshots in
          (* Fig. 7 line 4: if two or more snapshots completed while we
             were waiting, the most recent one was created entirely
             within our request window — borrow it. *)
          if t.borrowing && tmp2 >= tmp1 + 2 then begin
            t.borrowed <- t.borrowed + 1;
            Obs.Counter.incr t.stats.Obs.scs_borrowed;
            Option.get t.last
          end
          else begin
            let result = create_snapshot_now t in
            t.num_snapshots <- t.num_snapshots + 1;
            result
          end
        end
      in
      Sim.Mutex.unlock t.mutex;
      result
    end
  in
  (* Service → proxy reply. *)
  Sim.delay t.rpc_one_way;
  result
