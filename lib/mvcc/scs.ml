module Ops = Btree.Ops
module Txn = Dyntxn.Txn

type t = {
  tree : Ops.tree;
  obs : Obs.t;
  stats : Obs.scs_stats;
  borrowing : bool;
  min_interval : float;
  rpc_one_way : float;
  mutex : Sim.Mutex.t;
  (* Fig. 7 shared state. [last] is the (sid, root) pair of the most
     recently created read-only snapshot. *)
  mutable num_snapshots : int;
  mutable last : (int64 * Dyntxn.Objref.t) option;
  mutable last_created_at : float;
  mutable created : int;
  mutable borrowed : int;
  mutable stale_reused : int;
  (* Creation log for the consistency checker: (sid, commit stamp of
     the snapshot-creation transaction), newest first. The stamp is the
     serialization point at which snapshot [sid] froze. *)
  mutable creations : (int64 * int64) list;
  (* Streaming checkers subscribe here to learn creations as they
     happen instead of reading [creations] post-run. *)
  mutable on_create : (sid:int64 -> stamp:int64 -> unit) option;
  (* Chaos: the service is down until this simulated time; requests
     queue until it is back. *)
  mutable outage_until : float;
  mutable outage_stalled : int;
}

let create ?(borrowing = true) ?(min_interval = 0.0) ?(rpc_one_way = 25e-6) ~tree () =
  let obs = Sinfonia.Cluster.obs (Ops.cluster tree) in
  {
    tree;
    obs;
    stats = Obs.scs obs;
    borrowing;
    min_interval;
    rpc_one_way;
    mutex = Sim.Mutex.create ();
    num_snapshots = 0;
    last = None;
    last_created_at = neg_infinity;
    created = 0;
    borrowed = 0;
    stale_reused = 0;
    creations = [];
    on_create = None;
    outage_until = neg_infinity;
    outage_stalled = 0;
  }

let snapshots_created t = t.created

let borrows t = t.borrowed

let stale_reuses t = t.stale_reused

let creations t = t.creations

let set_on_create t f = t.on_create <- Some f

let set_outage t ~until = if until > t.outage_until then t.outage_until <- until

let outage_until t = t.outage_until

let outage_stalls t = t.outage_stalled

(* Execute Fig. 6 to completion with a blocking commit, retrying on
   validation failures (e.g. a racing up-to-date operation bumped a
   cached tip). *)
let outage_msg = function "memnode unavailable" | "memnode partitioned" -> true | _ -> false

let outage_backoff outages = Sim.delay (1e-3 *. float_of_int (min (outages + 1) 16))

let create_snapshot_now t =
  Obs.with_span t.obs Obs.Span.Snapshot_create @@ fun () ->
  (* Contention retries are bounded tightly; outage retries (a crashed
     or partitioned memnode) get a far larger budget with millisecond
     backoff so the service survives chaos storms and resumes when the
     cluster heals. *)
  let rec attempt tries outages =
    if tries > 64 then failwith "Scs: snapshot creation starved";
    if outages > 512 then failwith "Scs: snapshot creation starved by outage";
    let txn = Txn.begin_ (Ops.cluster t.tree) ~home:(Ops.home t.tree) in
    match
      let sid, loc = Ops.Linear.create_snapshot t.tree txn in
      ((sid, loc), Txn.commit ~blocking:true txn)
    with
    | result, Txn.Committed ->
        (* A snapshot creation always writes the tip objects, so its
           blocking commit always carries a stamp. *)
        (result, Option.get (Txn.commit_stamp txn))
    | _, (Txn.Validation_failed | Txn.Retry_exhausted) ->
        Txn.evict_dirty txn;
        attempt (tries + 1) outages
    | _, Txn.Unavailable _ ->
        Txn.evict_dirty txn;
        outage_backoff outages;
        attempt tries (outages + 1)
    | exception Txn.Aborted msg ->
        (* The transaction's own reads aborted: piggy-backed validation
           caught a racing tip update, or a fetch hit an outage. *)
        Txn.evict_dirty txn;
        if outage_msg msg then begin
          outage_backoff outages;
          attempt tries (outages + 1)
        end
        else attempt (tries + 1) outages
  in
  let ((sid, _) as result), stamp = attempt 0 0 in
  t.created <- t.created + 1;
  Obs.Counter.incr t.stats.Obs.scs_created;
  t.last <- Some result;
  t.last_created_at <- Sim.now ();
  t.creations <- (sid, stamp) :: t.creations;
  (match t.on_create with Some f -> f ~sid ~stamp | None -> ());
  result

let request t =
  Obs.with_span t.obs Obs.Span.Scs_request @@ fun () ->
  (* Proxy → service hop. *)
  Sim.delay t.rpc_one_way;
  (* Chaos: requests arriving during a service outage queue until the
     service is back up. *)
  if Sim.now () < t.outage_until then begin
    t.outage_stalled <- t.outage_stalled + 1;
    while Sim.now () < t.outage_until do
      Sim.delay (t.outage_until -. Sim.now ())
    done
  end;
  let result =
    (* Staleness bound (Sec. 6.3): reuse the latest snapshot if it is
       younger than k. Checked again under the lock to serialize
       creations. *)
    let fresh_enough () =
      t.min_interval > 0.0
      && t.last <> None
      && Sim.now () -. t.last_created_at < t.min_interval
    in
    if fresh_enough () then begin
      t.stale_reused <- t.stale_reused + 1;
      Obs.Counter.incr t.stats.Obs.scs_stale_reused;
      (* Invariant: fresh_enough just proved t.last <> None. *)
      Option.get t.last
    end
    else begin
      let tmp1 = t.num_snapshots in
      Sim.Mutex.lock t.mutex;
      let result =
        if fresh_enough () then begin
          t.stale_reused <- t.stale_reused + 1;
          Obs.Counter.incr t.stats.Obs.scs_stale_reused;
          (* Invariant: fresh_enough just proved t.last <> None. *)
          Option.get t.last
        end
        else begin
          let tmp2 = t.num_snapshots in
          (* Fig. 7 line 4: if two or more snapshots completed while we
             were waiting, the most recent one was created entirely
             within our request window — borrow it. *)
          if t.borrowing && tmp2 >= tmp1 + 2 then begin
            t.borrowed <- t.borrowed + 1;
            Obs.Counter.incr t.stats.Obs.scs_borrowed;
            (* Invariant: tmp2 >= tmp1 + 2 means a snapshot completed,
               so t.last was set by that completion. *)
            Option.get t.last
          end
          else begin
            let result = create_snapshot_now t in
            t.num_snapshots <- t.num_snapshots + 1;
            result
          end
        end
      in
      Sim.Mutex.unlock t.mutex;
      result
    end
  in
  (* Service → proxy reply. *)
  Sim.delay t.rpc_one_way;
  result
