open Sinfonia
module Ops = Btree.Ops
module Layout = Btree.Layout
module Bnode = Btree.Bnode
module Node_alloc = Btree.Node_alloc
module Txn = Dyntxn.Txn
module Objref = Dyntxn.Objref

let encode_sid sid =
  let e = Codec.Enc.create ~initial_size:8 () in
  Codec.Enc.i64 e sid;
  Codec.Enc.to_string e

let decode_sid s = if String.length s = 0 then 0L else Codec.Dec.i64 (Codec.Dec.of_string s)

let with_txn tree f =
  let rec attempt tries =
    if tries > 64 then failwith "Gc: transaction starved";
    let txn = Txn.begin_ (Ops.cluster tree) ~home:(Ops.home tree) in
    let v = f txn in
    match Txn.commit txn with
    | Txn.Committed -> v
    | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ -> attempt (tries + 1)
  in
  attempt 0

let lowest_off tree = Layout.lowest_sid_off (Ops.layout tree) ~tree:(Ops.tree_id tree)

let set_lowest tree sid =
  with_txn tree (fun txn ->
      Txn.write_replicated txn ~off:(lowest_off tree) ~len:Layout.slot_len_small (encode_sid sid))

let get_lowest tree =
  with_txn tree (fun txn ->
      decode_sid
        (Txn.dirty_read_replicated txn ~off:(lowest_off tree) ~len:Layout.slot_len_small))

let keep_recent tree ~n =
  let tip =
    with_txn tree (fun txn ->
        let sid, _ = Ops.Linear.read_tip tree txn in
        sid)
  in
  let watermark = Int64.sub tip (Int64.of_int n) in
  if Int64.compare watermark 0L > 0 then set_lowest tree watermark

(* Reclaim one slot transactionally: only if it still holds the node
   version we examined (compare on the sequence number) do we zero it.
   A concurrent writer reusing or updating the slot wins the race. *)
let reclaim tree (ref_ : Objref.t) ~observed_seq =
  let cluster = Ops.cluster tree in
  let seq_bytes =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 observed_seq;
    Bytes.to_string b
  in
  let zeros = String.make ref_.Objref.len '\000' in
  let mtx =
    Mtx.make
      ~compares:[ Mtx.compare_at ref_.Objref.addr seq_bytes ]
      ~writes:[ Mtx.write_at ref_.Objref.addr zeros ]
      ()
  in
  match Coordinator.exec cluster mtx with
  | Mtx.Committed _ -> true
  | Mtx.Failed_compare _ | Mtx.Busy | Mtx.Unavailable _ -> false

let sweep tree ~alloc =
  let cluster = Ops.cluster tree in
  let layout = Ops.layout tree in
  let lowest = get_lowest tree in
  let freed = ref 0 in
  if Int64.compare lowest 0L > 0 then
    for node = 0 to Cluster.n_memnodes cluster - 1 do
      let mn, store = Cluster.route cluster node in
      for index = 0 to layout.Layout.max_slots - 1 do
        (* The sweep runs at the memnode itself: read the slot locally,
           paying a small CPU cost per batch. *)
        if index mod 128 = 0 then Memnode.serve mn ~cost:2e-6;
        let off = Layout.slot_off layout ~index in
        let slot = Heap.read (Memnode.store_heap store) ~off ~len:layout.Layout.node_size in
        let seq = Objref.seq_of_slot slot in
        if Int64.compare seq 0L <> 0 then begin
          match Bnode.decode (Objref.payload_of_slot slot) with
          | exception Codec.Decode_error _ ->
              (* Not a B-tree node (or torn): skip it. Anything else —
                 in particular Memnode.Crashed — propagates. *)
              ()
          | bnode ->
              (* Collectable iff superseded at or below the watermark:
                 no snapshot above the watermark can reach it. *)
              let collectable =
                Array.exists
                  (fun d -> Int64.compare d lowest <= 0)
                  bnode.Bnode.descendants
              in
              if collectable then begin
                let ref_ = Layout.node_ref layout ~node ~index in
                if reclaim tree ref_ ~observed_seq:seq then begin
                  Node_alloc.free alloc ref_;
                  incr freed;
                  Obs.Counter.incr (Obs.gc (Cluster.obs cluster)).Obs.slots_reclaimed
                end
              end
        end
      done
    done;
  !freed

let sweep_branching trees ~alloc ~roots =
  let tree = match trees with [] -> invalid_arg "Gc.sweep_branching: no trees" | t :: _ -> t in
  let cluster = Ops.cluster tree in
  let layout = Ops.layout tree in
  (* Anything committed after this point has a sequence number >= floor
     and is spared even if the mark phase cannot see it yet. *)
  let seq_floor = Cluster.owner_watermark cluster in
  let marked : (Objref.t, unit) Hashtbl.t = Hashtbl.create 4096 in
  let read_node (ptr : Objref.t) =
    let mn, store = Cluster.route cluster (Objref.node ptr) in
    Memnode.serve mn ~cost:1e-6;
    let slot =
      Heap.read (Memnode.store_heap store) ~off:ptr.Objref.addr.Address.off ~len:ptr.Objref.len
    in
    if Int64.compare (Objref.seq_of_slot slot) 0L = 0 then None
    else
      match Bnode.decode (Objref.payload_of_slot slot) with
      | n -> Some n
      | exception Codec.Decode_error _ ->
          (* Slot holds something that is not a B-tree node; crashes
             and other exceptions propagate to the GC driver. *)
          None
  in
  let rec mark ptr =
    if not (Hashtbl.mem marked ptr) then begin
      Hashtbl.replace marked ptr ();
      match read_node ptr with
      | None -> ()
      | Some n -> (
          match n.Bnode.body with
          | Bnode.Leaf _ -> ()
          | Bnode.Internal { children; _ } -> Array.iter mark children)
    end
  in
  List.iter mark roots;
  (* Sweep: reclaim unmarked node slots older than the floor. *)
  let freed = ref 0 in
  for node = 0 to Cluster.n_memnodes cluster - 1 do
    let mn, store = Cluster.route cluster node in
    for index = 0 to layout.Layout.max_slots - 1 do
      if index mod 128 = 0 then Memnode.serve mn ~cost:2e-6;
      let off = Layout.slot_off layout ~index in
      let slot = Heap.read (Memnode.store_heap store) ~off ~len:layout.Layout.node_size in
      let seq = Objref.seq_of_slot slot in
      if Int64.compare seq 0L <> 0 && Int64.compare seq seq_floor < 0 then begin
        let ref_ = Layout.node_ref layout ~node ~index in
        if (not (Hashtbl.mem marked ref_)) && Objref.payload_of_slot slot <> "" then begin
          match Bnode.decode (Objref.payload_of_slot slot) with
          | exception Codec.Decode_error _ ->
              (* Not a B-tree node: never reclaim what we cannot prove
                 is a node slot. Crashes propagate. *)
              ()
          | (_ : Bnode.t) ->
              if reclaim tree ref_ ~observed_seq:seq then begin
                Node_alloc.free alloc ref_;
                incr freed;
                Obs.Counter.incr (Obs.gc (Cluster.obs cluster)).Obs.branch_slots_reclaimed
              end
        end
      end
    done
  done;
  !freed

let run_background tree ~alloc ~interval =
  Sim.spawn ~name:"gc" (fun () ->
      let rec loop () =
        Sim.delay interval;
        let (_ : int) = sweep tree ~alloc in
        loop ()
      in
      loop ())
