module Ops = Btree.Ops
module Bnode = Btree.Bnode
module Txn = Dyntxn.Txn
module Objref = Dyntxn.Objref

(* Raw trace of branch-aware operations. Branching cannot name
   [Session.Event] (lib/core depends on this library), so it emits a
   neutral record; [Session.attach] installs a converter that lifts
   these into session events. *)
module Trace = struct
  type op =
    | Branch_created of { parent : int64; sid : int64 }
    | Branch_deleted of { sid : int64 }
    | Get of { at : int64; key : string; result : string option }
    | Put of { at : int64; key : string; value : string }
    | Remove of { at : int64; key : string; removed : bool }
    | Scan of { at : int64; from : string; count : int; result : (string * string) list }
    | Get_many of { key : string; results : (int64 * string option) list }
    | History of { from : int64; key : string; results : (int64 * string option) list }

  type t = {
    op : op;
    invoked_at : float;
    returned_at : float;
    stamp : int64 option;
    ambiguous : bool;
  }
end

type t = {
  tree : Ops.tree;
  beta : int;
  broken_isolation : bool;
  mutable tracer : (Trace.t -> unit) option;
}

exception Too_many_branches of int64

exception No_mainline of int64

let attach ?(broken_isolation = false) ~tree ~beta () =
  if beta < 2 then invalid_arg "Branching.attach: beta must be >= 2";
  { tree; beta; broken_isolation; tracer = None }

let set_tracer t f = t.tracer <- Some f

let emit t ~invoked ?stamp ?(ambiguous = false) op =
  match t.tracer with
  | None -> ()
  | Some f ->
      f { Trace.op; invoked_at = invoked; returned_at = Sim.now (); stamp; ambiguous }

let tree t = t.tree

let beta t = t.beta

let entry_exn ?(allow_deleted = false) t txn sid =
  match Catalog.dirty_read t.tree txn ~sid with
  | Some e when allow_deleted || not e.Catalog.deleted -> e
  | Some _ -> Format.kasprintf invalid_arg "Branching: snapshot %Ld was deleted" sid
  | None -> Format.kasprintf invalid_arg "Branching: unknown snapshot %Ld" sid

(* Parent lookups use dirty (cached, unvalidated) catalog reads: a
   snapshot's parent and root never change once created. Deleted
   entries are allowed — a node's recorded descendant set can keep a
   deleted leaf's sid until GC reclaims it, and the COW planner still
   has to climb through it. *)
let parent_of t txn sid =
  let e = entry_exn ~allow_deleted:true t txn sid in
  if Int64.equal e.Catalog.parent Catalog.no_parent then None else Some e.Catalog.parent

let is_ancestor t txn a b =
  let rec climb cur =
    if Int64.equal cur a then true
    else match parent_of t txn cur with None -> false | Some p -> climb p
  in
  climb b

(* The child of [anc] on the path from [anc] to its strict descendant
   [d]. *)
let child_toward t txn ~anc d =
  let rec climb cur =
    match parent_of t txn cur with
    | None -> invalid_arg "Branching.child_toward: not a descendant"
    | Some p -> if Int64.equal p anc then cur else climb p
  in
  climb d

(* ------------------------------------------------------------------ *)
(* β-bounded descendant sets (Sec. 5.2)                                 *)
(* ------------------------------------------------------------------ *)

(* Collapse a set of pairwise non-ancestral descendants of [anchor]
   down to at most β entries, emitting discretionary-copy directives.
   Elements sharing a child subtree of [anchor] are grouped; the largest
   group is replaced by its anchoring child [c], and a discretionary
   copy at [c] takes the group over (recursively collapsed itself). *)
let rec collapse t txn anchor (s : int64 list) : int64 list * Ops.disc list =
  if List.length s <= t.beta then (s, [])
  else begin
    let groups = Hashtbl.create 8 in
    List.iter
      (fun d ->
        let c = if Int64.equal d anchor then anchor else child_toward t txn ~anc:anchor d in
        let members = Option.value (Hashtbl.find_opt groups c) ~default:[] in
        Hashtbl.replace groups c (d :: members))
      s;
    (* Sorted fold: ties between equal-sized groups must break by key,
       not hash order — the chosen anchor child shapes the emitted
       discretionary-copy directives, which are replay-checked. *)
    let c, g =
      Sim.Det.fold_sorted groups ~cmp:Int64.compare
        (fun c members ((_, best) as acc) ->
          if List.length members > List.length best then (c, members) else acc)
        (0L, [])
    in
    if List.length g < 2 then
      (* Cannot collapse further (should not happen while the version
         tree's branching factor is bounded by β). *)
      (s, [])
    else begin
      let covered, inner_discs = collapse t txn c g in
      let remaining = c :: List.filter (fun d -> not (List.mem d g)) s in
      let outer, outer_discs = collapse t txn anchor remaining in
      ( outer,
        outer_discs
        @ [ { Ops.disc_at = c; disc_covered = Array.of_list covered } ]
        @ inner_discs )
    end
  end

let plan_cow t txn ~snap ~created ~descendants =
  ignore created;
  let s = snap :: Array.to_list descendants in
  let old_descendants, discretionary = collapse t txn created s in
  { Ops.old_descendants = Array.of_list old_descendants; discretionary }

(* ------------------------------------------------------------------ *)
(* Version contexts                                                     *)
(* ------------------------------------------------------------------ *)

let root_of_dirty t txn sid = (entry_exn t txn sid).Catalog.root

let mainline_tip t txn ~from =
  let rec follow sid =
    match Catalog.dirty_read t.tree txn ~sid with
    | None -> Format.kasprintf invalid_arg "Branching: unknown snapshot %Ld" sid
    | Some e when e.Catalog.deleted ->
        (* A cached ancestor pointed us at a branch that has since been
           deleted: abort so the retry re-resolves with fresh entries. *)
        Txn.abort txn
    | Some e ->
        if Catalog.is_writable e then sid
        else if Int64.equal e.Catalog.first_branch 0L then
          (* The first branch was deleted while siblings remain: there
             is no default mainline anymore; the caller must name a tip
             explicitly (Sec. 5.1 lets users override the default). *)
          raise (No_mainline sid)
        else follow e.Catalog.first_branch
  in
  follow from

let tip_vctx t ?(from = 0L) txn =
  let sid = mainline_tip t txn ~from in
  (* Validated read: commits fail if this tip stops being writable (a
     branch is created from it) concurrently. *)
  let e =
    match Catalog.read t.tree txn ~sid with
    | Some e -> e
    | None -> invalid_arg "Branching.tip_vctx: tip entry vanished"
  in
  if not (Catalog.is_writable e) then
    (* The cached mainline was stale; abort and let the retry resolve a
       fresh mainline. *)
    Txn.abort txn;
  {
    Ops.snap = sid;
    root = e.Catalog.root;
    writable = true;
    is_ancestor = (fun a b -> is_ancestor t txn a b);
    plan_cow = (fun ~created ~descendants -> plan_cow t txn ~snap:sid ~created ~descendants);
    root_of = (fun txn sid -> root_of_dirty t txn sid);
  }

let at_snapshot t ~sid txn =
  let e = entry_exn t txn sid in
  {
    Ops.snap = sid;
    root = e.Catalog.root;
    writable = false;
    is_ancestor = (fun a b -> is_ancestor t txn a b);
    plan_cow = (fun ~created:_ ~descendants:_ -> invalid_arg "Branching: read-only snapshot");
    root_of = (fun txn sid -> root_of_dirty t txn sid);
  }

(* ------------------------------------------------------------------ *)
(* Tree and branch creation                                             *)
(* ------------------------------------------------------------------ *)

let init_tree t =
  let txn = Txn.begin_ (Ops.cluster t.tree) ~cache:(Ops.proxy_cache t.tree) ~home:(Ops.home t.tree) in
  let root_ptr = Ops.alloc_node t.tree in
  Ops.write_node_txn t.tree txn root_ptr (Bnode.empty_root ~snap:0L);
  Catalog.write t.tree txn ~sid:0L
    {
      Catalog.root = root_ptr;
      parent = Catalog.no_parent;
      first_branch = 0L;
      nbranches = 0;
      deleted = false;
    };
  Catalog.write_counter t.tree txn 0L;
  match Txn.commit txn with
  | Txn.Committed -> ()
  | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ ->
      failwith "Branching.init_tree: could not initialize tree"

let create_branch t ~from =
  let invoked = Sim.now () in
  let rec attempt tries =
    if tries > 64 then raise (Ops.Too_contended "Branching.create_branch: starved");
    let txn = Txn.begin_ (Ops.cluster t.tree) ~cache:(Ops.proxy_cache t.tree) ~home:(Ops.home t.tree) in
    match
      let counter = Catalog.read_counter t.tree txn in
      let entry =
        match Catalog.read t.tree txn ~sid:from with
        | Some e when not e.Catalog.deleted -> e
        | Some _ ->
            Format.kasprintf invalid_arg "Branching.create_branch: snapshot %Ld was deleted" from
        | None -> Format.kasprintf invalid_arg "Branching.create_branch: unknown snapshot %Ld" from
      in
      if entry.Catalog.nbranches >= t.beta then raise (Too_many_branches from);
      let new_sid = Int64.add counter 1L in
      (* Copy the source root so the new version's root address is fixed
         (as in Fig. 6). *)
      let root_node = Ops.read_node_txn t.tree txn entry.Catalog.root in
      let new_root = Ops.alloc_node t.tree in
      Ops.write_node_txn t.tree txn new_root (Bnode.with_snap root_node new_sid);
      Catalog.write t.tree txn ~sid:new_sid
        {
          Catalog.root = new_root;
          parent = from;
          first_branch = 0L;
          nbranches = 0;
          deleted = false;
        };
      Catalog.write t.tree txn ~sid:from
        {
          entry with
          Catalog.first_branch =
            (if Int64.equal entry.Catalog.first_branch 0L then new_sid
             else entry.Catalog.first_branch);
          nbranches = entry.Catalog.nbranches + 1;
        };
      Catalog.write_counter t.tree txn new_sid;
      new_sid
    with
    | new_sid -> (
        match Txn.commit ~blocking:true txn with
        | Txn.Committed ->
            Obs.Counter.incr
              (Obs.btree (Sinfonia.Cluster.obs (Ops.cluster t.tree))).Obs.branches_created;
            emit t ~invoked
              ?stamp:(Txn.commit_stamp txn)
              (Trace.Branch_created { parent = from; sid = new_sid });
            new_sid
        | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ ->
            Txn.evict_dirty txn;
            attempt (tries + 1))
    | exception Txn.Aborted _ ->
        Txn.evict_dirty txn;
        attempt (tries + 1)
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Convenience operations                                               *)
(* ------------------------------------------------------------------ *)

(* Route to the right context: a writable [at] (or the mainline from
   it) for updates; the version itself for reads of read-only
   snapshots. [report] records the version the operation claims to
   serve (traced to the checker), which the retry loop may re-resolve. *)
let vctx_for_read t at report txn =
  match at with
  | None ->
      let v = tip_vctx t txn in
      report := v.Ops.snap;
      v
  | Some sid ->
      let e = entry_exn t txn sid in
      if Catalog.is_writable e then begin
        let v = tip_vctx t ~from:sid txn in
        report := v.Ops.snap;
        v
      end
      else begin
        (* Trace the requested version even when deliberately broken:
           the checker must see a read claiming snapshot isolation. *)
        report := sid;
        if t.broken_isolation then tip_vctx t ~from:sid txn else at_snapshot t ~sid txn
      end

let vctx_for_write t at report txn =
  let v = tip_vctx t ?from:at txn in
  report := v.Ops.snap;
  v

let get t ?at k =
  let invoked = Sim.now () in
  let report = ref (Option.value at ~default:0L) in
  let result = Ops.get t.tree ~vctx_of:(vctx_for_read t at report) k in
  emit t ~invoked
    ?stamp:(Ops.last_commit_stamp t.tree)
    (Trace.Get { at = !report; key = k; result });
  result

let put t ?at k v =
  let invoked = Sim.now () in
  let report = ref (Option.value at ~default:0L) in
  try
    Ops.put t.tree ~vctx_of:(vctx_for_write t at report) k v;
    emit t ~invoked
      ?stamp:(Ops.last_commit_stamp t.tree)
      (Trace.Put { at = !report; key = k; value = v })
  with Ops.Ambiguous _ as e ->
    emit t ~invoked ~ambiguous:true (Trace.Put { at = !report; key = k; value = v });
    raise e

let remove t ?at k =
  let invoked = Sim.now () in
  let report = ref (Option.value at ~default:0L) in
  try
    let removed = Ops.remove t.tree ~vctx_of:(vctx_for_write t at report) k in
    emit t ~invoked
      ?stamp:(Ops.last_commit_stamp t.tree)
      (Trace.Remove { at = !report; key = k; removed });
    removed
  with Ops.Ambiguous _ as e ->
    emit t ~invoked ~ambiguous:true (Trace.Remove { at = !report; key = k; removed = false });
    raise e

let scan ?at t ~from ~count =
  let invoked = Sim.now () in
  let report = ref (Option.value at ~default:0L) in
  let result = Ops.scan t.tree ~vctx_of:(vctx_for_read t at report) ~from ~count in
  emit t ~invoked
    ?stamp:(Ops.last_commit_stamp t.tree)
    (Trace.Scan { at = !report; from; count; result });
  result

(* ------------------------------------------------------------------ *)
(* Multi-version queries (Sec. 5.1: "transactional queries across
   different versions of the data ... useful for integrity checks and
   to compare the results of an analysis"; vertical/horizontal queries
   after Landau et al. and the BT-tree, Sec. 7)                         *)
(* ------------------------------------------------------------------ *)

let get_many t ~at k =
  (* Horizontal query: one key across several versions, atomically. *)
  let invoked = Sim.now () in
  let results =
    Ops.run_txn t.tree (fun txn ->
        List.map (fun sid -> (sid, Ops.get_in_txn t.tree txn (at_snapshot t ~sid txn) k)) at)
  in
  emit t ~invoked ?stamp:(Ops.last_commit_stamp t.tree) (Trace.Get_many { key = k; results });
  results

let history t ~from k =
  (* Vertical query: the key's value at [from] and every ancestor, from
     the root version down to [from], read in one transaction. *)
  let invoked = Sim.now () in
  let results =
    Ops.run_txn t.tree (fun txn ->
        let rec ancestry acc sid =
          let acc = sid :: acc in
          match parent_of t txn sid with None -> acc | Some p -> ancestry acc p
        in
        List.map
          (fun sid -> (sid, Ops.get_in_txn t.tree txn (at_snapshot t ~sid txn) k))
          (ancestry [] from))
  in
  emit t ~invoked ?stamp:(Ops.last_commit_stamp t.tree) (Trace.History { from; key = k; results });
  results

type change = Added of string | Removed of string | Changed of string * string

let diff ?(max_keys = max_int) t ~base ~other =
  (* Horizontal comparison of two full versions in one transaction. *)
  Ops.run_txn t.tree (fun txn ->
      let scan sid = Ops.scan_in_txn t.tree txn (at_snapshot t ~sid txn) ~from:"" ~count:max_keys in
      let a = scan base and b = scan other in
      let rec merge acc a b =
        match (a, b) with
        | [], [] -> List.rev acc
        | (k, v) :: ta, [] -> merge ((k, Removed v) :: acc) ta []
        | [], (k, v) :: tb -> merge ((k, Added v) :: acc) [] tb
        | ((ka, va) :: ta as la), ((kb, vb) :: tb as lb) ->
            let c = Btree.Bkey.compare ka kb in
            if c < 0 then merge ((ka, Removed va) :: acc) ta lb
            else if c > 0 then merge ((kb, Added vb) :: acc) la tb
            else if String.equal va vb then merge acc ta tb
            else merge ((ka, Changed (va, vb)) :: acc) ta tb
      in
      merge [] a b)

(* ------------------------------------------------------------------ *)
(* Branch deletion (Sec. 5.2: temporary what-if branches are deleted
   and their storage reclaimed)                                         *)
(* ------------------------------------------------------------------ *)

exception Not_deletable of string

let delete_branch t sid =
  if Int64.equal sid 0L then raise (Not_deletable "the initial version cannot be deleted");
  let invoked = Sim.now () in
  let rec attempt tries =
    if tries > 64 then raise (Ops.Too_contended "Branching.delete_branch: starved");
    let txn = Txn.begin_ (Ops.cluster t.tree) ~cache:(Ops.proxy_cache t.tree) ~home:(Ops.home t.tree) in
    match
      let entry =
        match Catalog.read t.tree txn ~sid with
        | Some e when not e.Catalog.deleted -> e
        | Some _ -> raise (Not_deletable "already deleted")
        | None -> raise (Not_deletable "unknown snapshot")
      in
      if not (Catalog.is_writable entry) then
        raise (Not_deletable "only leaf versions (writable tips) can be deleted");
      Catalog.write t.tree txn ~sid { entry with Catalog.deleted = true };
      (* The parent sheds a branch; shedding the last one makes it a
         writable tip again. *)
      (match
         if Int64.equal entry.Catalog.parent Catalog.no_parent then None
         else Catalog.read t.tree txn ~sid:entry.Catalog.parent
       with
      | None -> ()
      | Some parent_entry ->
          let first_branch =
            if Int64.equal parent_entry.Catalog.first_branch sid then 0L
            else parent_entry.Catalog.first_branch
          in
          Catalog.write t.tree txn ~sid:entry.Catalog.parent
            {
              parent_entry with
              Catalog.first_branch;
              nbranches = max 0 (parent_entry.Catalog.nbranches - 1);
            })
    with
    | () -> (
        match Txn.commit ~blocking:true txn with
        | Txn.Committed ->
            Obs.Counter.incr
              (Obs.btree (Sinfonia.Cluster.obs (Ops.cluster t.tree))).Obs.branches_deleted;
            emit t ~invoked ?stamp:(Txn.commit_stamp txn) (Trace.Branch_deleted { sid })
        | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ ->
            Txn.evict_dirty txn;
            attempt (tries + 1))
    | exception Txn.Aborted _ ->
        Txn.evict_dirty txn;
        attempt (tries + 1)
  in
  attempt 0

let is_deleted t ~sid =
  let txn = Txn.begin_ (Ops.cluster t.tree) ~cache:(Ops.proxy_cache t.tree) ~home:(Ops.home t.tree) in
  let r =
    match Catalog.dirty_read t.tree txn ~sid with
    | Some e -> e.Catalog.deleted
    | None -> false
  in
  (* Read-only bookkeeping commit: the answer above is already in hand,
     so a failed commit changes nothing — but match it exhaustively so
     Memnode.Crashed / Txn.Aborted keep propagating to the caller. *)
  (match Txn.commit txn with
  | Txn.Committed -> ()
  | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ -> Txn.evict_dirty txn);
  r

let live_roots t =
  (* Roots of every non-deleted version, read outside any transaction
     (used by the mark phase of the branching GC). *)
  let txn = Txn.begin_ (Ops.cluster t.tree) ~cache:(Ops.proxy_cache t.tree) ~home:(Ops.home t.tree) in
  let counter =
    (* An aborted fetch (stale read set or outage) means no catalog is
       reachable right now: report no roots. Memnode.Crashed and every
       other exception propagate to the GC driver's retry. *)
    match Catalog.read_counter t.tree txn with c -> c | exception Txn.Aborted _ -> 0L
  in
  let roots = ref [] in
  let rec collect sid =
    if Int64.compare sid counter <= 0 then begin
      (match Catalog.dirty_read t.tree txn ~sid with
      | Some e when not e.Catalog.deleted -> roots := e.Catalog.root :: !roots
      | Some _ | None -> ());
      collect (Int64.add sid 1L)
    end
  in
  collect 0L;
  (* Read-only bookkeeping commit; exhaustive so crashes propagate. *)
  (match Txn.commit txn with
  | Txn.Committed -> ()
  | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ -> Txn.evict_dirty txn);
  !roots

(* ------------------------------------------------------------------ *)
(* Introspection                                                        *)
(* ------------------------------------------------------------------ *)

let with_ro_txn t f =
  let txn = Txn.begin_ (Ops.cluster t.tree) ~cache:(Ops.proxy_cache t.tree) ~home:(Ops.home t.tree) in
  let v = f txn in
  (* Read-only bookkeeping commit; exhaustive so crashes propagate. *)
  (match Txn.commit txn with
  | Txn.Committed -> ()
  | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ -> Txn.evict_dirty txn);
  v

let root_of t ~sid = with_ro_txn t (fun txn -> root_of_dirty t txn sid)

let snapshot_exists t ~sid =
  with_ro_txn t (fun txn -> Catalog.dirty_read t.tree txn ~sid <> None)

let writable t ~sid =
  with_ro_txn t (fun txn -> Catalog.is_writable (entry_exn t txn sid))

let parent t ~sid = with_ro_txn t (fun txn -> parent_of t txn sid)
