(** Snapshot creation service (SCS) with borrowed snapshots (Fig. 7).

    All snapshot requests are routed through one service so that the
    replicated tip objects see one writer at a time. Inside the service,
    a request that waited while another request completed can
    {e borrow} the latter's snapshot without compromising strict
    serializability: the borrowed snapshot was created inside the
    borrower's request window.

    The service also implements the staleness bound of Sec. 6.3: with
    [min_interval = k > 0], at most one snapshot is created every [k]
    seconds and other requests reuse the most recent one. That mode is
    only serializable (the snapshot may be up to [k] seconds stale);
    [k = 0] keeps strict serializability. *)

type t

val create :
  ?borrowing:bool ->
  ?min_interval:float ->
  ?rpc_one_way:float ->
  tree:Btree.Ops.tree ->
  unit ->
  t
(** [borrowing] (default true) enables Fig. 7 borrowing; disabling it
    makes every request create its own snapshot (the paper's comparison
    baseline in Fig. 15). [min_interval] is the staleness bound [k]
    (default 0). [rpc_one_way] models the proxy→service hop (default
    25 µs). The [tree] handle is the service's own proxy handle. *)

val request : t -> int64 * Dyntxn.Objref.t
(** Obtain a snapshot to run a query against: the id and root location
    of a read-only snapshot that reflects all transactions that
    completed before this call started. Must run inside a simulation. *)

val snapshots_created : t -> int
(** Number of snapshots actually created (vs. borrowed/reused). *)

val borrows : t -> int

val stale_reuses : t -> int
(** Requests served by the staleness bound (k > 0). *)

val creations : t -> (int64 * int64) list
(** Creation log for the consistency checker: [(sid, stamp)] pairs,
    newest first, where [stamp] is the commit stamp of the transaction
    that created snapshot [sid] — the serialization point at which the
    state frozen into [sid] stopped changing. *)

val set_on_create : t -> (sid:int64 -> stamp:int64 -> unit) -> unit
(** Subscribe to snapshot creations as they happen (streaming
    checkers feed them via [Check.Stream.add_creation] instead of
    reading {!creations} post-run). One subscriber; later calls
    replace earlier ones. *)

(** {1 Chaos hooks} *)

val set_outage : t -> until:float -> unit
(** Declare the service unreachable until simulated time [until]:
    requests arriving before then queue and are served once the outage
    lifts (extends, never shortens, a current outage). *)

val outage_until : t -> float

val outage_stalls : t -> int
(** Requests that had to wait out an outage. *)
