(** Key generators in the style of the Yahoo! Cloud Serving Benchmark
    (Cooper et al., SoCC'10), which the paper uses for every
    experiment.

    Keys are fixed-width strings (14 bytes, as in Sec. 6.1): a one-byte
    prefix plus a zero-padded decimal. Generators are deterministic
    functions of their {!Sim.Rng.t}. *)

val key_of_int : int -> string
(** The canonical 14-byte key for ordinal [i]. Preserves numeric order. *)

val hashed_key_of_int : int -> string
(** Key for ordinal [i] under FNV hashing, spreading inserts across the
    key space (YCSB's default insert order). *)

val fnv64 : int -> int64
(** FNV-1a of the little-endian bytes of an int (YCSB's scramble). *)

(** Distribution over item ordinals [\[0, n)]. *)
type t

val uniform : n:int -> t

val zipfian : ?theta:float -> n:int -> unit -> t
(** Scrambled zipfian with parameter [theta] (default 0.99, YCSB's
    default): item popularity follows a zipf law but popular items are
    scattered over the key space. *)

val latest : n:int -> t
(** Skewed toward the most recently inserted ordinals; combine with
    {!set_n} as inserts grow the key space. *)

val hotspot : ?op_frac:float -> ?key_frac:float -> n:int -> unit -> t
(** [op_frac] of the draws (default 0.8) land uniformly in the first
    [key_frac * n] ordinals (default 0.2); the rest are uniform over
    the whole space. The hot set is the {e front} of the ordinal space,
    unscrambled, so under an order-preserving key mapping it is a
    contiguous key range — concentrated on a few leaves and memnodes
    (the shard-hotspot workload). *)

val sequence : start:int -> t
(** 0, 1, 2, ... (load phase). [n] grows automatically. *)

val next : t -> Sim.Rng.t -> int
(** Sample an ordinal. *)

val set_n : t -> int -> unit
(** Grow (or shrink) the item count, e.g. after inserts. No-op for
    [sequence]. The zipfian zeta constants are refreshed here (against
    a process-wide memo of zeta sums), never on the {!next} draw
    path. *)

val current_n : t -> int
