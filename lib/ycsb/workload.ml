type op =
  | Read of string
  | Update of string * string
  | Insert of string * string
  | Scan of string * int

let op_kind = function
  | Read _ -> "read"
  | Update _ -> "update"
  | Insert _ -> "insert"
  | Scan _ -> "scan"

type mix = { read : float; update : float; insert : float; scan : float }

let read_only = { read = 1.0; update = 0.0; insert = 0.0; scan = 0.0 }

let update_only = { read = 0.0; update = 1.0; insert = 0.0; scan = 0.0 }

let insert_only = { read = 0.0; update = 0.0; insert = 1.0; scan = 0.0 }

let scan_only = { read = 0.0; update = 0.0; insert = 0.0; scan = 1.0 }

let read_mostly = { read = 0.95; update = 0.05; insert = 0.0; scan = 0.0 }

let update_heavy = { read = 0.5; update = 0.5; insert = 0.0; scan = 0.0 }

type t = {
  mix : mix;
  total : float;
  keygen : Keygen.t;
  value_size : int;
  scan_length : int;
  mutable record_count : int;
  mutable next_insert : int;
}

let create ?(distribution = `Uniform) ?(value_size = 8) ?(scan_length = 100)
    ?(record_count = 100_000) ~mix () =
  if value_size <= 0 then invalid_arg "Workload.create: value_size must be positive";
  if record_count <= 0 then invalid_arg "Workload.create: record_count must be positive";
  let total = mix.read +. mix.update +. mix.insert +. mix.scan in
  if total <= 0.0 then invalid_arg "Workload.create: empty mix";
  let keygen =
    match distribution with
    | `Uniform -> Keygen.uniform ~n:record_count
    | `Zipfian -> Keygen.zipfian ~n:record_count ()
    | `Latest -> Keygen.latest ~n:record_count
    | `Hotspot (op_frac, key_frac) -> Keygen.hotspot ~op_frac ~key_frac ~n:record_count ()
  in
  { mix; total; keygen; value_size; scan_length; record_count; next_insert = record_count }

let record_count t = t.record_count

let key_of _t i = Keygen.hashed_key_of_int i

let value t rng = Sim.Rng.bytes rng t.value_size

let load_ops t ~n ~rng =
  Seq.init n (fun i -> Insert (key_of t i, value t rng))

let next_op t rng =
  let pick = Sim.Rng.float rng t.total in
  let existing () = key_of t (Keygen.next t.keygen rng) in
  if pick < t.mix.read then Read (existing ())
  else if pick < t.mix.read +. t.mix.update then Update (existing (), value t rng)
  else if pick < t.mix.read +. t.mix.update +. t.mix.insert then begin
    let ordinal = t.next_insert in
    t.next_insert <- t.next_insert + 1;
    t.record_count <- t.record_count + 1;
    Keygen.set_n t.keygen t.record_count;
    Insert (key_of t ordinal, value t rng)
  end
  else Scan (existing (), t.scan_length)
