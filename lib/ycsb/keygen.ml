let key_of_int i = Printf.sprintf "u%013d" i

let fnv64 i =
  (* FNV-1a over the 8 little-endian bytes of [i]. *)
  let offset_basis = 0xCBF29CE484222325L in
  let prime = 0x100000001B3L in
  let h = ref offset_basis in
  for shift = 0 to 7 do
    let byte = Int64.of_int ((i lsr (shift * 8)) land 0xff) in
    h := Int64.mul (Int64.logxor !h byte) prime
  done;
  !h

let hashed_key_of_int i =
  (* Mask to 62 bits so Int64.to_int never wraps negative. *)
  let h = Int64.to_int (Int64.logand (fnv64 i) 0x3FFF_FFFF_FFFF_FFFFL) in
  key_of_int (h mod 10_000_000_000_000)

(* Zipfian sampler after Gray et al., as used by YCSB. State depends on
   [n]; zeta(n) is maintained incrementally when n grows. *)
type zipf_state = {
  theta : float;
  mutable zn : int;
  mutable zetan : float;
  zeta2 : float;
  mutable alpha : float;
  mutable eta : float;
}

type kind =
  | Uniform
  | Zipfian of zipf_state
  | Latest of zipf_state
  | Hotspot of { op_frac : float; key_frac : float }
  | Sequence of int ref

type t = { kind : kind; mutable n : int }

let zeta_incr ~theta ~from ~until acc =
  let z = ref acc in
  for i = from + 1 to until do
    z := !z +. (1.0 /. (float_of_int i ** theta))
  done;
  !z

(* zeta(n) = sum 1/i^theta is O(n) to compute; one generator per tenant
   or session over the same item count would redo the whole sum each
   time. Memoize per (theta, n) — exact hits are O(1) — and keep a
   per-theta frontier (largest n computed so far) to extend
   incrementally when n grows. The cache is looked up by key, never
   iterated, so it cannot perturb run determinism. *)
let zeta_exact : (float * int, float) Hashtbl.t = Hashtbl.create 64

let zeta_frontier : (float, int * float) Hashtbl.t = Hashtbl.create 8

let zeta ~theta ~n =
  match Hashtbl.find_opt zeta_exact (theta, n) with
  | Some z -> z
  | None ->
      let from, acc =
        match Hashtbl.find_opt zeta_frontier theta with
        | Some (zn, z) when zn <= n -> (zn, z)
        | _ -> (0, 0.0)
      in
      let z = zeta_incr ~theta ~from ~until:n acc in
      Hashtbl.replace zeta_exact (theta, n) z;
      (match Hashtbl.find_opt zeta_frontier theta with
      | Some (zn, _) when zn >= n -> ()
      | _ -> Hashtbl.replace zeta_frontier theta (n, z));
      z

let make_zipf ~theta ~n =
  let zetan = zeta ~theta ~n in
  let zeta2 = zeta ~theta ~n:2 in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zetan))
  in
  { theta; zn = n; zetan; zeta2; alpha; eta }

(* Called only when the item count actually changes (from [set_n] or an
   insert growing the space) — never on the draw path, which reads the
   cached constants. *)
let refresh_zipf z ~n =
  if n <> z.zn then begin
    z.zetan <- zeta ~theta:z.theta ~n;
    z.zn <- n;
    z.eta <-
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. z.theta))) /. (1.0 -. (z.zeta2 /. z.zetan))
  end

let zipf_next z rng =
  let u = Sim.Rng.unit_float rng in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** z.theta) then 1
  else
    let v = float_of_int z.zn *. (((z.eta *. u) -. z.eta +. 1.0) ** z.alpha) in
    min (z.zn - 1) (int_of_float v)

let uniform ~n =
  if n <= 0 then invalid_arg "Keygen.uniform: n must be positive";
  { kind = Uniform; n }

let zipfian ?(theta = 0.99) ~n () =
  if n <= 0 then invalid_arg "Keygen.zipfian: n must be positive";
  if theta <= 0.0 || theta >= 1.0 then invalid_arg "Keygen.zipfian: theta must be in (0,1)";
  { kind = Zipfian (make_zipf ~theta ~n); n }

let latest ~n =
  if n <= 0 then invalid_arg "Keygen.latest: n must be positive";
  { kind = Latest (make_zipf ~theta:0.99 ~n); n }

let hotspot ?(op_frac = 0.8) ?(key_frac = 0.2) ~n () =
  if n <= 0 then invalid_arg "Keygen.hotspot: n must be positive";
  if op_frac < 0.0 || op_frac > 1.0 then invalid_arg "Keygen.hotspot: op_frac must be in [0,1]";
  if key_frac <= 0.0 || key_frac > 1.0 then
    invalid_arg "Keygen.hotspot: key_frac must be in (0,1]";
  { kind = Hotspot { op_frac; key_frac }; n }

let sequence ~start = { kind = Sequence (ref start); n = max 0 start }

let next t rng =
  match t.kind with
  | Uniform -> Sim.Rng.int rng t.n
  | Zipfian z ->
      let raw = zipf_next z rng in
      (* Scramble so popular items are spread over the key space. *)
      Int64.to_int (Int64.rem (Int64.shift_right_logical (fnv64 raw) 1) (Int64.of_int t.n))
  | Latest z ->
      (* Most recent ordinal is the most popular. *)
      t.n - 1 - zipf_next z rng
  | Hotspot { op_frac; key_frac } ->
      (* The hot set is the *front* of the ordinal space, unscrambled:
         under an order-preserving key mapping it stays a contiguous key
         range, i.e. a handful of leaves on a few memnodes — the
         shard-hotspot shape. *)
      let hot = max 1 (min t.n (int_of_float (ceil (key_frac *. float_of_int t.n)))) in
      if Sim.Rng.unit_float rng < op_frac then Sim.Rng.int rng hot else Sim.Rng.int rng t.n
  | Sequence counter ->
      let v = !counter in
      incr counter;
      if v >= t.n then t.n <- v + 1;
      v

let set_n t n =
  match t.kind with
  | Sequence _ -> ()
  | Uniform | Hotspot _ ->
      if n <= 0 then invalid_arg "Keygen.set_n: n must be positive";
      t.n <- n
  | Zipfian z | Latest z ->
      if n <= 0 then invalid_arg "Keygen.set_n: n must be positive";
      t.n <- n;
      (* Recompute the zeta-derived constants here, once per growth
         step, so [next] never touches them on the draw path. *)
      refresh_zipf z ~n

let current_n t = t.n
