(** YCSB-style workload definitions: an operation mix over a keyed data
    set, yielding a deterministic operation stream per client. *)

type op =
  | Read of string
  | Update of string * string
  | Insert of string * string
  | Scan of string * int  (** start key, requested length *)

val op_kind : op -> string
(** "read" | "update" | "insert" | "scan". *)

type mix = {
  read : float;
  update : float;
  insert : float;
  scan : float;
}
(** Proportions; need not sum to 1 (normalized internally). *)

val read_only : mix

val update_only : mix

val insert_only : mix

val scan_only : mix

val read_mostly : mix
(** 95% reads / 5% updates (YCSB workload B). *)

val update_heavy : mix
(** 50/50 (YCSB workload A). *)

type t

val create :
  ?distribution:[ `Uniform | `Zipfian | `Latest | `Hotspot of float * float ] ->
  ?value_size:int ->
  ?scan_length:int ->
  ?record_count:int ->
  mix:mix ->
  unit ->
  t
(** [record_count] (default 100_000) is the initial logical key-space
    size; inserts extend it. [value_size] defaults to 8 bytes
    (Sec. 6.1); [scan_length] to 100. [`Hotspot (op_frac, key_frac)]
    sends [op_frac] of the operations to the first [key_frac] of the
    ordinal space ({!Keygen.hotspot}). *)

val record_count : t -> int

val load_ops : t -> n:int -> rng:Sim.Rng.t -> op Seq.t
(** The YCSB load phase: [n] inserts of distinct keys in hashed
    (uniformly spread) order, as used in Fig. 10. *)

val next_op : t -> Sim.Rng.t -> op
(** Draw the next operation from the mix. Inserts use fresh keys and
    grow the key space (thread-safe within one simulation because the
    simulator is cooperative). *)

val key_of : t -> int -> string
(** Key for ordinal [i] under this workload's keying scheme. *)
