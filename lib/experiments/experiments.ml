(** Umbrella module of the [experiments] library: one module per figure
    of the paper's evaluation (Sec. 6), each reproducing the workload,
    parameter sweep and reported metric. See DESIGN.md's per-experiment
    index and EXPERIMENTS.md for paper-vs-measured results. *)

module Exp_common = Exp_common
module Fig10 = Fig10
module Fig11 = Fig11
module Fig12 = Fig12
module Fig13 = Fig13
module Fig14 = Fig14
module Fig15 = Fig15
module Fig16 = Fig16
module Fig17 = Fig17
module Fig18 = Fig18
module Ablations = Ablations
module Scan_bench = Scan_bench

let all :
    (string * string * (?params:Exp_common.params -> unit -> Exp_common.row list)) list =
  [
    ("fig10", Fig10.title, Fig10.run);
    ("fig11", Fig11.title, Fig11.run);
    ("fig12", Fig12.title, Fig12.run);
    ("fig13", Fig13.title, Fig13.run);
    ("fig14", Fig14.title, Fig14.run);
    ("fig15", Fig15.title, Fig15.run);
    ("fig16", Fig16.title, Fig16.run);
    ("fig17", Fig17.title, Fig17.run);
    ("fig18", Fig18.title, Fig18.run);
    ("ablate", Ablations.title, Ablations.run);
  ]
