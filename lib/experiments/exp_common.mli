(** Shared infrastructure for reproducing the paper's experiments
    (Sec. 6): deployment builders, preloading, workload executors and
    result rows.

    Parameters are scaled down from the paper's testbed (100 M rows,
    60 s runs, 35 hosts) to laptop-size defaults; `bin/minuet_bench`
    exposes every knob. EXPERIMENTS.md records the mapping. *)

type params = {
  hosts : int list;  (** Cluster sizes to sweep. *)
  records : int;  (** Preloaded key count (paper: 100 M). *)
  duration : float;  (** Measured seconds per point (paper: 60). *)
  warmup : float;
  clients_per_host : int;  (** Closed-loop client threads per host. *)
  scan_count : int;  (** Keys per scan (paper: 1 M). *)
  seed : int;
}

val fast : params
(** Finishes the full suite in minutes. *)

val full : params
(** Closer to the paper's operating point (minutes per figure). *)

(** {1 Deployments} *)

type deployment = {
  db : Minuet.Db.t;
  sessions : Minuet.Session.t array;  (** One proxy session per host. *)
  proxies : Sim.Resource.t array;
      (** Proxy CPU (three cores per host, Fig. 9), charged per
          operation by the executors. *)
}

val experiment_sinfonia : Sinfonia.Config.t
(** Cost model used by all experiments (calibrated so per-host rates
    land in the paper's regime; see EXPERIMENTS.md). *)

val deploy :
  ?mode:Btree.Ops.mode ->
  ?n_trees:int ->
  ?k:float ->
  ?borrowing:bool ->
  ?replication:bool ->
  ?cache_capacity:int ->
  ?alloc_chunk:int ->
  ?retry_backoff:float ->
  hosts:int ->
  unit ->
  deployment
(** Start a Minuet deployment (inside a simulation) sized for the
    experiments: 1 KiB nodes, snapshot staleness bound [k] (seconds),
    SCS borrowing on/off. *)

val preload : deployment -> records:int -> unit
(** Load [records] hashed keys through all sessions in parallel. *)

val preload_cdb : Cdb.t -> records:int -> unit

(** {1 Executors} *)

val minuet_exec : deployment -> client:int -> Ycsb.Workload.op -> unit
(** Single-key ops against the session of the client's host; scans run
    against a fresh/borrowed SCS snapshot (Sec. 6.3). *)

val minuet_exec_tip_scan : deployment -> client:int -> Ycsb.Workload.op -> unit
(** Like {!minuet_exec} but scans run against the writable tip without
    a snapshot (they abort under updates — the paper's motivation for
    snapshot scans). *)

val cdb_exec : Cdb.t -> client:int -> Ycsb.Workload.op -> unit

val cdb_client_factor : int
(** The paper drives CDB with 8x more client threads than Minuet (512
    vs 64) to reach its peak throughput through its higher-latency
    synchronous client path. *)

val in_sim : ?seed:int -> (unit -> 'a) -> 'a
(** Run one experiment point in its own simulation and return its
    result. *)

val run_observed : ?dir:string -> name:string -> unit -> string
(** Run a small mixed workload (reads, writes, snapshot scans,
    cross-index transactions, contended hot keys) against a fresh
    3-host deployment and write its observability report to
    [dir/BENCH_<name>.json]. Returns the file path. *)

(** {1 Result rows} *)

type row = { label : (string * string) list; metrics : (string * float) list }

val row_value : row -> string -> float
(** Metric by name; raises [Not_found]. *)

val print_header : string -> string -> unit
(** [print_header "fig12" "Single-key scalability ..."] *)

val print_row : figure:string -> row -> unit
(** One aligned line: "fig12  hosts=5 system=minuet ... tput=12345". *)

val ms : float -> float
(** Seconds to milliseconds. *)
