module W = Ycsb.Workload

type params = {
  hosts : int list;
  records : int;
  duration : float;
  warmup : float;
  clients_per_host : int;
  scan_count : int;
  seed : int;
}

let fast =
  {
    hosts = [ 5; 15; 25; 35 ];
    records = 25_000;
    duration = 0.8;
    warmup = 0.2;
    clients_per_host = 6;
    scan_count = 1_000;
    seed = 0xF16;
  }

let full =
  {
    hosts = [ 5; 10; 15; 20; 25; 30; 35 ];
    records = 200_000;
    duration = 5.0;
    warmup = 1.0;
    clients_per_host = 8;
    scan_count = 10_000;
    seed = 0xF16;
  }

(* Cost model calibrated so per-host operation rates land in the tens of
   thousands per second (the paper's regime) and idle read latency is a
   few hundred microseconds. *)
let experiment_sinfonia =
  {
    Sinfonia.Config.default with
    Sinfonia.Config.svc_msg = 8e-6;
    svc_item = 1e-6;
    svc_per_kb = 12e-6;
    blocking_timeout = 20e-3;
  }

type deployment = {
  db : Minuet.Db.t;
  sessions : Minuet.Session.t array;
  proxies : Sim.Resource.t array;
      (* Proxy CPU, three cores per host (Fig. 9): charged per operation
         by the executors so that proxy-side work bounds throughput the
         way it does on the paper's testbed. *)
}

let experiment_layout =
  (* 4 KiB nodes as in the paper (Sec. 6.1): with 14-byte keys this
     gives a fanout near 100, which sets how rarely splits propagate to
     upper levels — the baseline mode's Achilles heel (root updates
     engage every memnode). Heaps are paged and sparse, so the large
     reserved regions (catalog, baseline seqnum table) cost memory only
     when actually written. *)
  Btree.Layout.make ~node_size:4096 ~max_slots:262144 ~max_trees:4 ~max_snapshots:16384
    ~max_memnodes:64 ()

let deploy ?(mode = Btree.Ops.Dirty_traversal) ?(n_trees = 1) ?(k = 0.0) ?(borrowing = true)
    ?(replication = true) ?cache_capacity ?alloc_chunk ?retry_backoff ~hosts () =
  let sinfonia =
    {
      experiment_sinfonia with
      Sinfonia.Config.replication;
      retry_backoff =
        Option.value retry_backoff ~default:experiment_sinfonia.Sinfonia.Config.retry_backoff;
    }
  in
  let config =
    {
      Minuet.Config.default with
      Minuet.Config.hosts;
      sinfonia;
      layout = experiment_layout;
      mode;
      n_trees;
      scs_borrowing = borrowing;
      scs_min_interval = k;
      cache_capacity =
        Option.value cache_capacity ~default:Minuet.Config.default.Minuet.Config.cache_capacity;
      alloc_chunk =
        Option.value alloc_chunk ~default:Minuet.Config.default.Minuet.Config.alloc_chunk;
    }
  in
  let db = Minuet.Db.start ~config () in
  let sessions = Array.init hosts (fun h -> Minuet.Session.attach ~home:h db) in
  let proxies =
    Array.init hosts (fun h ->
        Sim.Resource.create ~name:(Printf.sprintf "proxy-%d" h) ~servers:3 ())
  in
  { db; sessions; proxies }

let preload d ~records =
  let hosts = Array.length d.sessions in
  let finished = Sim.Ivar.create () in
  let remaining = ref hosts in
  let rng = Sim.Rng.create 0x42 in
  for h = 0 to hosts - 1 do
    let value_rng = Sim.Rng.split rng in
    Sim.spawn (fun () ->
        let i = ref h in
        while !i < records do
          Minuet.Session.put d.sessions.(h) (Ycsb.Keygen.hashed_key_of_int !i)
            (Sim.Rng.bytes value_rng 8);
          i := !i + hosts
        done;
        decr remaining;
        if !remaining = 0 then Sim.Ivar.fill finished ())
  done;
  Sim.Ivar.read finished

let preload_cdb cdb ~records =
  (* CDB loads through parallel clients too (cost charged to its
     partitions), one per host. *)
  let hosts = Cdb.hosts cdb in
  let finished = Sim.Ivar.create () in
  let remaining = ref hosts in
  let rng = Sim.Rng.create 0x43 in
  for h = 0 to hosts - 1 do
    let value_rng = Sim.Rng.split rng in
    Sim.spawn (fun () ->
        let i = ref h in
        while !i < records do
          Cdb.insert cdb (Ycsb.Keygen.hashed_key_of_int !i) (Sim.Rng.bytes value_rng 8);
          i := !i + hosts
        done;
        decr remaining;
        if !remaining = 0 then Sim.Ivar.fill finished ())
  done;
  Sim.Ivar.read finished

let session_of d ~client = d.sessions.(client mod Array.length d.sessions)

(* Proxy CPU per operation (request parsing, traversal, marshalling). *)
let proxy_cost = function
  | W.Read _ -> 35e-6
  | W.Update _ | W.Insert _ -> 45e-6
  | W.Scan (_, n) -> 60e-6 +. (0.4e-6 *. float_of_int n)

let charge_proxy d ~client op =
  let proxy = d.proxies.(client mod Array.length d.proxies) in
  Sim.Resource.use proxy ~service_time:(proxy_cost op)

let minuet_exec d ~client op =
  let s = session_of d ~client in
  charge_proxy d ~client op;
  match op with
  | W.Read k -> ignore (Minuet.Session.get s k : string option)
  | W.Update (k, v) | W.Insert (k, v) -> Minuet.Session.put s k v
  | W.Scan (k, n) ->
      (* Scans run against a snapshot from the SCS (Sec. 6.3). *)
      let snap = Minuet.Session.snapshot s in
      ignore (Minuet.Session.scan_at s snap ~from:k ~count:n : (string * string) list)

let minuet_exec_tip_scan d ~client op =
  let s = session_of d ~client in
  match op with
  | W.Scan (k, n) -> ignore (Minuet.Session.scan s ~from:k ~count:n : (string * string) list)
  | other -> minuet_exec d ~client other

let cdb_client_factor = 8

let cdb_exec cdb ~client:_ op =
  match op with
  | W.Read k -> ignore (Cdb.read cdb k : string option)
  | W.Update (k, v) -> Cdb.update cdb k v
  | W.Insert (k, v) -> Cdb.insert cdb k v
  | W.Scan (k, n) -> ignore (Cdb.scan cdb ~from:k ~count:n : (string * string) list)

(* Run one simulated experiment point and hand back its result. *)
let in_sim ?(seed = 1) f =
  let r = ref None in
  Sim.run ~seed (fun () -> r := Some (f ()));
  match !r with Some v -> v | None -> failwith "Exp_common.in_sim: did not complete"

(* Exercise every observable code path against a small deployment and
   write the observability report to BENCH_<name>.json: up-to-date and
   snapshot reads, scans, cross-index transactions, and enough
   concurrent writers on a hot key range to produce aborts. *)
let run_observed ?(dir = ".") ~name () =
  in_sim ~seed:0xB0B (fun () ->
      let d = deploy ~hosts:3 ~n_trees:2 () in
      let records = 2_000 in
      preload d ~records;
      let key i = Ycsb.Keygen.hashed_key_of_int (i mod records) in
      let workers = Array.length d.sessions * 2 in
      let remaining = ref workers in
      let finished = Sim.Ivar.create () in
      for w = 0 to workers - 1 do
        let s = d.sessions.(w mod Array.length d.sessions) in
        let idx1 = Minuet.Session.index d.db 1 in
        Sim.spawn (fun () ->
            for i = 0 to 199 do
              (* Hot range: all workers collide on the same few keys so
                 validation failures and lock retries show up in the
                 abort taxonomy. *)
              let k = key ((i mod 16) + (w land 1)) in
              match i mod 10 with
              | 0 | 1 | 2 | 3 -> ignore (Minuet.Session.get s k : string option)
              | 4 | 5 | 6 -> Minuet.Session.put s k (string_of_int i)
              | 7 ->
                  let snap = Minuet.Session.snapshot s in
                  ignore (Minuet.Session.get_at s snap k : string option);
                  ignore
                    (Minuet.Session.scan_at s snap ~from:(key 0) ~count:10
                      : (string * string) list)
              | 8 ->
                  Minuet.Session.with_txn s (fun tx ->
                      let v = Minuet.Session.t_get tx k in
                      Minuet.Session.t_put tx k (Option.value v ~default:"0" ^ "!"))
              | _ -> Minuet.Session.put ~index:idx1 s k (string_of_int i)
            done;
            decr remaining;
            if !remaining = 0 then Sim.Ivar.fill finished ())
      done;
      Sim.Ivar.read finished;
      Obs.Report.write ~name ~dir (Minuet.Db.obs d.db))

type row = { label : (string * string) list; metrics : (string * float) list }

let row_value r name = List.assoc name r.metrics

let print_header figure title =
  Printf.printf "\n=== %s: %s ===\n%!" figure title

let print_row ~figure r =
  let labels = List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) r.label in
  let metrics =
    List.map
      (fun (k, v) ->
        if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%s=%.0f" k v
        else Printf.sprintf "%s=%.3f" k v)
      r.metrics
  in
  Printf.printf "%-6s %s | %s\n%!" figure (String.concat " " labels) (String.concat " " metrics)

let ms s = s *. 1e3
