(* Figure 13: multi-index (dual-key) transaction throughput, Minuet vs
   CDB, 5-35 hosts. Each transaction atomically touches one key in each
   of two independent B-trees / tables.

   Expected shape: Minuet scales near-linearly (a dual-key transaction
   engages at most a few memnodes); CDB collapses below ~1.2k tx/s and
   degrades with scale because every transaction engages every
   partition (Sec. 6.2). *)

open Exp_common

let figure = "fig13"

let title = "Dual-key (multi-index) transaction throughput"

(* Second key for a dual operation, derived deterministically from the
   first so that it names a preloaded record of the other table. *)
let second_key ~records k =
  Ycsb.Keygen.hashed_key_of_int (Hashtbl.hash k mod records)

let minuet_dual d ~records ~client op =
  let s = d.sessions.(client mod Array.length d.sessions) in
  match op with
  | Ycsb.Workload.Read k ->
      ignore
        (Minuet.Session.multi_get s [ (0, k); (1, second_key ~records k) ]
          : string option list)
  | Ycsb.Workload.Update (k, v) ->
      Minuet.Session.multi_put s [ (0, k, v); (1, second_key ~records k, v) ]
  | Ycsb.Workload.Insert (k, v) ->
      (* Fresh keys in both trees. *)
      Minuet.Session.multi_put s [ (0, k, v); (1, "x" ^ k, v) ]
  | Ycsb.Workload.Scan _ -> invalid_arg "fig13: no scans"

let cdb_dual cdb ~records op =
  match op with
  | Ycsb.Workload.Read k ->
      ignore (Cdb.multi_read cdb [ k; second_key ~records k ] : string option list)
  | Ycsb.Workload.Update (k, v) -> Cdb.multi_write cdb [ (k, v); (second_key ~records k, v) ]
  | Ycsb.Workload.Insert (k, v) -> Cdb.multi_write cdb [ (k, v); ("x" ^ k, v) ]
  | Ycsb.Workload.Scan _ -> invalid_arg "fig13: no scans"

let mixes =
  [
    ("read2", Ycsb.Workload.read_only);
    ("update2", Ycsb.Workload.update_only);
    ("insert2", Ycsb.Workload.insert_only);
  ]

let measure ~params ~hosts ~mix_name ~mix ~system =
  (* The paper preloads each table with 10M keys — large enough that
     concurrent clients rarely collide on a leaf. Keep the keyspace
     proportionally large relative to the client count. *)
  let records = max params.records (100 * params.clients_per_host * hosts) in
  in_sim ~seed:params.seed (fun () ->
      let exec =
        match system with
        | `Minuet ->
            let d = deploy ~n_trees:2 ~hosts () in
            (* Preload both trees with the same hashed key space. *)
            preload d ~records;
            let s0 = d.sessions.(0) in
            let idx1 = Minuet.Session.index d.db 1 in
            for i = 0 to records - 1 do
              Minuet.Session.put ~index:idx1 s0 (Ycsb.Keygen.hashed_key_of_int i) "init"
            done;
            fun ~client op -> minuet_dual d ~records ~client op
        | `Cdb ->
            let cdb = Cdb.create ~hosts () in
            preload_cdb cdb ~records;
            fun ~client:_ op -> cdb_dual cdb ~records op
      in
      let shared = Ycsb.Workload.create ~record_count:records ~mix () in
      let workload_of _ = shared in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup
          ~clients:(params.clients_per_host * hosts)
          ~duration:(params.warmup +. params.duration)
          ~workload_of ~exec ()
      in
      {
        label =
          [
            ("system", match system with `Minuet -> "minuet" | `Cdb -> "cdb");
            ("op", mix_name);
            ("hosts", string_of_int hosts);
          ];
        metrics =
          [
            ("tput_tx_s", result.Ycsb.Driver.throughput);
            ("mean_ms", ms (Sim.Stats.Hist.mean (Ycsb.Driver.overall_latency result)));
          ];
      })

let compute params =
  List.concat_map
    (fun hosts ->
      List.concat_map
        (fun (mix_name, mix) ->
          [
            measure ~params ~hosts ~mix_name ~mix ~system:`Minuet;
            measure ~params ~hosts ~mix_name ~mix ~system:`Cdb;
          ])
        mixes)
    params.hosts

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
