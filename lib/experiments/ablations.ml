(* Ablations of Minuet's design choices (not a paper figure; DESIGN.md
   calls these out). Each variant runs the same mixed workload and
   reports throughput and latency against the default configuration:

   - no-replication:   synchronous primary-backup off (paper Sec. 6.1
                       runs with it on).
   - no-proxy-cache:   internal nodes are fetched from memnodes every
                       time (kills the "traverse in cache" fast path of
                       Sec. 2.3).
   - alloc-chunk-1:    proxies reserve one slot at a time, so every
                       allocation is a CAS transaction on the memnode's
                       allocation pointer.
   - zipfian-keys:     skewed request distribution (the paper notes
                       skew re-introduces contention, Sec. 6.2).
   - hotspot-keys:     80% of operations on the first 5% of the key
                       space — one contiguous key range, so a handful
                       of leaves (and the memnodes holding them) absorb
                       most of the load.
   - no-backoff:       retry immediately on busy locks. *)

open Exp_common

let figure = "ablate"

let title = "Design-choice ablations (50/50 read-update mix)"

type variant = {
  name : string;
  replication : bool;
  cache_capacity : int;
  alloc_chunk : int;
  distribution : [ `Uniform | `Zipfian | `Latest | `Hotspot of float * float ];
  retry_backoff : float;
}

let default_variant =
  {
    name = "default";
    replication = true;
    cache_capacity = 65536;
    alloc_chunk = 64;
    distribution = `Uniform;
    retry_backoff = Sinfonia.Config.default.Sinfonia.Config.retry_backoff;
  }

let variants =
  [
    default_variant;
    { default_variant with name = "no-replication"; replication = false };
    { default_variant with name = "no-proxy-cache"; cache_capacity = 1 };
    { default_variant with name = "alloc-chunk-1"; alloc_chunk = 1 };
    { default_variant with name = "zipfian-keys"; distribution = `Zipfian };
    { default_variant with name = "hotspot-keys"; distribution = `Hotspot (0.8, 0.05) };
    { default_variant with name = "no-backoff"; retry_backoff = 1e-9 };
  ]

let measure ~params ~hosts variant =
  in_sim ~seed:params.seed (fun () ->
      let d =
        deploy ~replication:variant.replication ~cache_capacity:variant.cache_capacity
          ~alloc_chunk:variant.alloc_chunk ~retry_backoff:variant.retry_backoff ~hosts ()
      in
      preload d ~records:params.records;
      let shared =
        Ycsb.Workload.create ~distribution:variant.distribution ~record_count:params.records
          ~mix:Ycsb.Workload.update_heavy ()
      in
      let result =
        Ycsb.Driver.run ~seed:params.seed ~warmup:params.warmup
          ~clients:(params.clients_per_host * hosts)
          ~duration:(params.warmup +. params.duration)
          ~workload_of:(fun _ -> shared)
          ~exec:(fun ~client op -> minuet_exec d ~client op)
          ()
      in
      let lat = Ycsb.Driver.overall_latency result in
      let metrics = Minuet.Db.metrics d.db in
      {
        label = [ ("hosts", string_of_int hosts); ("variant", variant.name) ];
        metrics =
          [
            ("tput_ops_s", result.Ycsb.Driver.throughput);
            ("mean_ms", ms (Sim.Stats.Hist.mean lat));
            ("p95_ms", ms (Sim.Stats.Hist.quantile lat 0.95));
            ( "busy_retries",
              float_of_int (Sim.Metrics.counter_value metrics "mtx.busy_retries") );
            ( "validation_failures",
              float_of_int (Sim.Metrics.counter_value metrics "txn.validation_failures") );
          ];
      })

let compute params =
  let hosts = min 15 (List.fold_left max 1 params.hosts) in
  List.map (fun v -> measure ~params ~hosts v) variants

let run ?(params = fast) () =
  print_header figure title;
  let rows = compute params in
  List.iter (print_row ~figure) rows;
  rows
