(* Scan-throughput benchmark: batched leaf scans against the per-leaf
   baseline on the same seed and workload, plus a crash storm proving
   that proxy caches survive memnode crashes through epoch revalidation
   rather than bulk flushes. Drives bin/ci.sh's BENCH_scan.json gate. *)

module Session = Minuet.Session
module Db = Minuet.Db
module Cluster = Sinfonia.Cluster

type side = {
  s_scan_batch : int;
  s_scans : int;  (** Scans completed inside the measurement window. *)
  s_elapsed : float;  (** Simulated seconds of the measurement window. *)
  s_scan_batches : int;
  s_batched_leaves : int;
  s_continuations : int;
  s_prefetches : int;
  s_batch_aborts : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_stale_hits : int;
  s_epoch_revalidations : int;
  s_epoch_survived : int;
  s_bulk_evictions : int;
  s_view_hits : int;
  s_materialisations : int;
  s_stamp_revalidations : int;
  s_node_bytes_copied : int;
}

let key_of i = Printf.sprintf "k%05d" i

(* One deployment: preload a small-leaf tree, then run contended traffic —
   writers splitting and moving leaves under 100-leaf range scans —
   and measure scan completions over a storm-free window. When [storm]
   is set, a crash/recover storm follows the measurement window with
   traffic still running, to exercise post-crash cache behaviour. *)
let run_side ~seed ~scan_batch ~storm ~duration ~keys ~scan_count =
  (* Tiny leaves under a wide internal fanout: [keys] keys spread over
     ~keys/3 leaves whose parents hold dozens of children, so one
     traversal exposes enough right-siblings to fill full batches. *)
  let config =
    {
      Minuet.Config.default with
      Minuet.Config.hosts = 4;
      scan_batch;
      max_keys_leaf = Some 4;
      max_keys_internal = Some 64;
    }
  in
  Minuet.Harness.run ~seed ~until:((duration *. 8.) +. 60.) ~config @@ fun db ->
  let cluster = Db.cluster db in
  let n = Cluster.n_memnodes cluster in
  let n_sessions = 4 in
  let sessions =
    Array.init n_sessions (fun h -> Session.attach ~home:(h mod n) ~client:(n + h) db)
  in
  for i = 0 to keys - 1 do
    Session.put sessions.(i mod n_sessions) (key_of i) (Printf.sprintf "v%d" i)
  done;
  let stop = ref false in
  let measuring = ref false in
  let scans = ref 0 in
  let rng = Sim.Rng.create (seed lxor 0x5ca9) in
  (* Writers keep the tip moving (splits, COW, removals) so scans are
     contended rather than read-only-idle. *)
  for w = 0 to 1 do
    let wrng = Sim.Rng.split rng in
    Sim.spawn ~name:(Printf.sprintf "scan-bench-writer-%d" w) (fun () ->
        let i = ref 0 in
        while not !stop do
          let k = key_of (Sim.Rng.int wrng keys) in
          (try
             if Sim.Rng.int wrng 10 = 0 then ignore (Session.remove sessions.(w) k : bool)
             else Session.put sessions.(w) k (Printf.sprintf "w%d-%d" w !i)
           with Btree.Ops.Too_contended _ | Btree.Ops.Ambiguous _ -> ());
          incr i;
          Sim.delay 2e-4
        done)
  done;
  (* Scanners: snapshot range scans spanning ~scan_count/4 leaves. *)
  for c = 0 to n_sessions - 1 do
    let srng = Sim.Rng.split rng in
    Sim.spawn ~name:(Printf.sprintf "scan-bench-scanner-%d" c) (fun () ->
        while not !stop do
          let start = Sim.Rng.int srng (max 1 (keys - scan_count)) in
          (try
             let s = sessions.(c) in
             let snap = Session.snapshot s in
             ignore
               (Session.scan_at s snap ~from:(key_of start) ~count:scan_count
                 : (string * string) list);
             if !measuring then incr scans
           with Btree.Ops.Too_contended _ | Btree.Ops.Ambiguous _ -> ());
          Sim.delay 1e-4
        done)
  done;
  (* Warmup, then a storm-free measurement window. *)
  Sim.delay (duration *. 0.25);
  measuring := true;
  let t0 = Sim.now () in
  Sim.delay duration;
  measuring := false;
  let elapsed = Sim.now () -. t0 in
  let measured = !scans in
  if storm then begin
    (* Crash storm with traffic still running: each crash promotes the
       victim's replica and bumps the space's epoch, turning that
       space's cached entries stale at every proxy. Recovery must then
       happen by lazy revalidation — never by a bulk flush. *)
    for cycle = 0 to 5 do
      let victim = 1 + (cycle mod (n - 1)) in
      Cluster.crash cluster victim;
      Sim.delay 0.05;
      (match Cluster.try_recover cluster victim with Ok () -> () | Error _ -> ());
      Sim.delay 0.05
    done;
    Sim.delay (duration *. 0.5)
  end;
  stop := true;
  Sim.delay 0.05;
  let obs = Db.obs db in
  let v = Obs.Counter.value in
  let cs = Obs.cache obs in
  let ss = Obs.scan obs in
  let ns = Obs.node obs in
  {
    s_scan_batch = scan_batch;
    s_scans = measured;
    s_elapsed = elapsed;
    s_scan_batches = v ss.Obs.scan_batches;
    s_batched_leaves = v ss.Obs.scan_batched_leaves;
    s_continuations = v ss.Obs.scan_continuations;
    s_prefetches = v ss.Obs.scan_prefetches;
    s_batch_aborts = v ss.Obs.scan_batch_aborts;
    s_cache_hits = v cs.Obs.cache_hits;
    s_cache_misses = v cs.Obs.cache_misses;
    s_stale_hits = v cs.Obs.cache_stale_hits;
    s_epoch_revalidations = v cs.Obs.cache_epoch_revalidations;
    s_epoch_survived = v cs.Obs.cache_epoch_survived;
    s_bulk_evictions = v cs.Obs.cache_bulk_evictions;
    s_view_hits = v ns.Obs.view_hits;
    s_materialisations = v ns.Obs.materialisations;
    s_stamp_revalidations = v ns.Obs.stamp_revalidations;
    s_node_bytes_copied = v ns.Obs.node_bytes_copied;
  }

let ops_per_s side = float_of_int side.s_scans /. side.s_elapsed

let side_json side =
  Obs.Json.Obj
    [
      ("scan_batch", Obs.Json.Int side.s_scan_batch);
      ("scans", Obs.Json.Int side.s_scans);
      ("window_s", Obs.Json.Float side.s_elapsed);
      ("ops_per_s", Obs.Json.Float (ops_per_s side));
      ("scan_batches", Obs.Json.Int side.s_scan_batches);
      ("scan_batched_leaves", Obs.Json.Int side.s_batched_leaves);
      ("scan_continuations", Obs.Json.Int side.s_continuations);
      ("scan_prefetches", Obs.Json.Int side.s_prefetches);
      ("scan_batch_aborts", Obs.Json.Int side.s_batch_aborts);
      ("cache_hits", Obs.Json.Int side.s_cache_hits);
      ("cache_misses", Obs.Json.Int side.s_cache_misses);
      ("cache_stale_hits", Obs.Json.Int side.s_stale_hits);
      ("cache_epoch_revalidations", Obs.Json.Int side.s_epoch_revalidations);
      ("cache_epoch_survived", Obs.Json.Int side.s_epoch_survived);
      ("cache_bulk_evictions", Obs.Json.Int side.s_bulk_evictions);
      ("node_view_hits", Obs.Json.Int side.s_view_hits);
      ("node_materialisations", Obs.Json.Int side.s_materialisations);
      ("node_stamp_revalidations", Obs.Json.Int side.s_stamp_revalidations);
      ("node_bytes_copied", Obs.Json.Int side.s_node_bytes_copied);
    ]

(* Run both sides, write [dir]/BENCH_scan.json, and return whether the
   acceptance gates hold: batched throughput at least [min_speedup] over
   per-leaf, post-crash epoch revalidation actually exercised, and no
   bulk eviction anywhere. [min_batched_ops] and [min_leaves_per_rt] are
   absolute regression floors (scans/s and leaves per round trip on the
   batched side) pinned in CI to the previous release's numbers, so a
   change that slows scans down outright fails even if the
   batched-vs-per-leaf ratio survives. *)
let run ?(seed = 0x5ca9) ?(duration = 0.5) ?(keys = 600) ?(scan_count = 400) ?(dir = ".")
    ?(min_speedup = 2.0) ?(min_batched_ops = 0.0) ?(min_leaves_per_rt = 0.0) () =
  (* 100-leaf ranges at 4 keys per leaf. *)
  let batched = run_side ~seed ~scan_batch:16 ~storm:true ~duration ~keys ~scan_count in
  let per_leaf = run_side ~seed ~scan_batch:1 ~storm:false ~duration ~keys ~scan_count in
  let speedup = ops_per_s batched /. ops_per_s per_leaf in
  let leaves_per_roundtrip =
    if batched.s_scan_batches = 0 then 0.0
    else float_of_int batched.s_batched_leaves /. float_of_int batched.s_scan_batches
  in
  let lookups =
    batched.s_cache_hits + batched.s_cache_misses + batched.s_stale_hits
  in
  let hit_rate =
    if lookups = 0 then 0.0 else float_of_int batched.s_cache_hits /. float_of_int lookups
  in
  let ok_speedup = speedup >= min_speedup in
  let ok_epochs = batched.s_epoch_revalidations > 0 in
  let ok_no_flush = batched.s_bulk_evictions = 0 && per_leaf.s_bulk_evictions = 0 in
  let ok_abs_ops = ops_per_s batched >= min_batched_ops in
  let ok_leaves = leaves_per_roundtrip >= min_leaves_per_rt in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "scan");
        ("schema_version", Obs.Json.Int 1);
        ("seed", Obs.Json.Int seed);
        ("keys", Obs.Json.Int keys);
        ("scan_count", Obs.Json.Int scan_count);
        ("batched", side_json batched);
        ("per_leaf", side_json per_leaf);
        ("speedup", Obs.Json.Float speedup);
        ("min_speedup", Obs.Json.Float min_speedup);
        ("min_batched_ops", Obs.Json.Float min_batched_ops);
        ("min_leaves_per_roundtrip", Obs.Json.Float min_leaves_per_rt);
        ("leaves_per_roundtrip", Obs.Json.Float leaves_per_roundtrip);
        ("cache_hit_rate", Obs.Json.Float hit_rate);
        ("epoch_revalidations", Obs.Json.Int batched.s_epoch_revalidations);
        ("epoch_survival_rate",
         Obs.Json.Float
           (if batched.s_epoch_revalidations = 0 then 0.0
            else
              float_of_int batched.s_epoch_survived
              /. float_of_int batched.s_epoch_revalidations));
        ("bulk_evictions", Obs.Json.Int (batched.s_bulk_evictions + per_leaf.s_bulk_evictions));
        ("pass",
         Obs.Json.Bool (ok_speedup && ok_epochs && ok_no_flush && ok_abs_ops && ok_leaves));
      ]
  in
  let path = Filename.concat dir "BENCH_scan.json" in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "scan bench: batched %.0f scans/s vs per-leaf %.0f scans/s (speedup %.2fx, need %.2fx)\n"
    (ops_per_s batched) (ops_per_s per_leaf) speedup min_speedup;
  Printf.printf "  leaves/roundtrip %.1f, cache hit rate %.3f, prefetches %d, batch aborts %d\n"
    leaves_per_roundtrip hit_rate batched.s_prefetches batched.s_batch_aborts;
  Printf.printf "  crash storm: %d epoch revalidations (%d survived), %d bulk evictions\n"
    batched.s_epoch_revalidations batched.s_epoch_survived
    (batched.s_bulk_evictions + per_leaf.s_bulk_evictions);
  Printf.printf "  node path: %d view hits, %d materialisations, %d stamp revalidations\n"
    batched.s_view_hits batched.s_materialisations batched.s_stamp_revalidations;
  if not ok_speedup then Printf.printf "  FAIL: speedup below %.2fx\n" min_speedup;
  if not ok_epochs then
    Printf.printf "  FAIL: crash storm exercised no epoch revalidation\n";
  if not ok_no_flush then Printf.printf "  FAIL: bulk cache eviction occurred\n";
  if not ok_abs_ops then
    Printf.printf "  FAIL: batched throughput below the %.0f scans/s regression floor\n"
      min_batched_ops;
  if not ok_leaves then
    Printf.printf "  FAIL: leaves/roundtrip below the %.1f regression floor\n" min_leaves_per_rt;
  Printf.printf "  report written to %s\n%!" path;
  ok_speedup && ok_epochs && ok_no_flush && ok_abs_ops && ok_leaves
