open Sinfonia

exception Aborted of string

type read_entry = {
  ref_ : Objref.t;
  seq : int64;
  payload : string;
  mutable validated : bool;
      (* Covered by the most recent piggy-backed validation. Used only to
         decide whether a read-only commit needs a validation round. *)
}

type repl_read = { rr_len : int; rr_seq : int64; rr_payload : string }

type t = {
  cluster : Cluster.t;
  obs : Obs.t;
  stats : Obs.txn_stats; (* typed counter handles, resolved once at begin_ *)
  cache : Objcache.t option;
  client : int option;
  home : int;
  reads : (Objref.t, read_entry) Hashtbl.t;
  writes : (Objref.t, string * int option) Hashtbl.t; (* payload, echo offset *)
  dirty_seen : (Objref.t, int64 * string) Hashtbl.t;
  repl_reads : (int, repl_read) Hashtbl.t; (* keyed by offset *)
  repl_writes : (int, int * string) Hashtbl.t; (* offset -> slot len, payload *)
  repl_validates : (int, int64) Hashtbl.t; (* offset -> expected seq, no fetch *)
  dirty_repl_seen : (int, int) Hashtbl.t; (* offset -> len, for cache eviction *)
  mutable aborted : bool;
  mutable fetches : int;
  (* Bumped whenever an entry joins the validated footprint (reads,
     repl_reads, repl_validates). A validating fetch captures the value
     when it builds its compare set and may only claim full coverage if
     it is unchanged when the fetch lands: entries added mid-flight by a
     concurrent fetch on the same transaction (the scan prefetch window)
     were never compared. *)
  mutable footprint_gen : int;
  (* True when the read set as a whole was atomically validated by the
     most recent fetch; lets read-only transactions commit locally. *)
  mutable fully_validated : bool;
  (* Stamp of the most recent validating fetch that committed. A free
     commit's serialization point is that fetch (the last time the whole
     read set was proven consistent at once), so this becomes its commit
     stamp. *)
  mutable last_validated_stamp : int64 option;
  (* Commit stamp of this transaction's serialization point, set by a
     successful [commit]. None for transactions with no validated
     footprint (e.g. dirty-read-only snapshot transactions — those are
     checked against their snapshot id instead). *)
  mutable commit_stamp_ : int64 option;
}

let begin_ ?cache ?client ?(home = 0) cluster =
  if home < 0 || home >= Cluster.n_memnodes cluster then
    invalid_arg "Txn.begin_: home memnode out of range";
  let obs = Cluster.obs cluster in
  {
    cluster;
    obs;
    stats = Obs.txn obs;
    cache;
    client;
    home;
    reads = Hashtbl.create 8;
    writes = Hashtbl.create 8;
    dirty_seen = Hashtbl.create 16;
    repl_reads = Hashtbl.create 4;
    repl_writes = Hashtbl.create 4;
    repl_validates = Hashtbl.create 4;
    dirty_repl_seen = Hashtbl.create 4;
    aborted = false;
    fetches = 0;
    footprint_gen = 0;
    fully_validated = true;
    last_validated_stamp = None;
    commit_stamp_ = None;
  }

let cluster t = t.cluster

let commit_stamp t = t.commit_stamp_

let is_aborted t = t.aborted

let abort t =
  t.aborted <- true;
  raise (Aborted "explicit abort")

let fail t msg =
  t.aborted <- true;
  raise (Aborted msg)

let check_live t = if t.aborted then raise (Aborted "transaction already aborted")

(* Record that the validated footprint grew; see [footprint_gen]. *)
let note_footprint t = t.footprint_gen <- t.footprint_gen + 1

let seq_bytes seq =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 seq;
  Bytes.to_string b

let seq_compare_at addr seq = Mtx.compare_at addr (seq_bytes seq)

let repl_addr t off = Address.make ~node:t.home ~off

let cache_key_of_repl t off len =
  Objref.make ~addr:(repl_addr t off) ~len

(* Keep the proxy cache's view of per-space crash epochs current from
   every reply that carries them. *)
let observe_epochs t epochs =
  match t.cache with
  | None -> ()
  | Some cache ->
      List.iter (fun (space, epoch) -> Objcache.observe_epoch cache ~space ~epoch) epochs

(* Compare items that re-validate the current read set, restricted to
   what can be checked at the memnodes in [nodes]: regular entries
   stored on one of them plus replicated entries (present on every
   memnode, attached to the first participant to avoid duplicates).
   Returns the compares, the entries they cover, and whether they cover
   the whole read set. *)
let piggyback_compares t ~nodes =
  let compares = ref [] in
  let covered = ref [] in
  let all_covered = ref true in
  (* Invariant: callers pass the txn's participant set, never empty. *)
  let repl_node = List.hd nodes in
  (* Sorted iteration: compare order shapes the minitransaction item
     layout (and which stale entry aborts first), which must replay
     identically per seed. *)
  Sim.Det.iter_sorted t.reads ~cmp:Objref.compare (fun _ entry ->
      if List.mem (Objref.node entry.ref_) nodes then begin
        compares := seq_compare_at entry.ref_.Objref.addr entry.seq :: !compares;
        covered := `Read entry :: !covered
      end
      else all_covered := false);
  Sim.Det.iter_sorted t.repl_reads ~cmp:Int.compare (fun off rr ->
      compares := seq_compare_at (Address.make ~node:repl_node ~off) rr.rr_seq :: !compares);
  Sim.Det.iter_sorted t.repl_validates ~cmp:Int.compare (fun off seq ->
      if not (Hashtbl.mem t.repl_reads off) then
        compares := seq_compare_at (Address.make ~node:repl_node ~off) seq :: !compares);
  (!compares, !covered, !all_covered)

(* Multi-object fetch minitransaction, optionally piggy-backing read-set
   validation (Sec. 2.2). Items are coalesced per memnode by the
   Mtx/Coordinator machinery: one round trip for a single participant,
   one parallel 2PC for several. Results are in the order of [refs].
   Raises [Aborted] when a piggy-backed comparison fails: the read set
   is stale and the transaction cannot commit. *)
let fetch_refs t ~validate (refs : Objref.t list) =
  check_live t;
  let nodes = List.sort_uniq Int.compare (List.map Objref.node refs) in
  let gen0 = t.footprint_gen in
  let compares, covered, all_covered =
    if validate then piggyback_compares t ~nodes else ([], [], false)
  in
  (* Replies are trimmed to the slot's used prefix (header + payload):
     response transfer cost is charged on actual bytes, not the fixed
     slot size — the bulk of a batched scan's byte budget. *)
  let reads =
    List.map (fun (r : Objref.t) -> Mtx.read_at ~trim:true r.Objref.addr r.Objref.len) refs
  in
  let mtx = Mtx.make ~compares ~reads () in
  t.fetches <- t.fetches + 1;
  match Coordinator.exec t.cluster ?client:t.client mtx with
  | Mtx.Committed { stamp; reads = results; epochs } ->
      observe_epochs t epochs;
      if validate then begin
        List.iter (fun (`Read entry) -> entry.validated <- true) covered;
        (* Entries that joined the footprint while this fetch was in
           flight (a concurrent prefetch on the same transaction) were
           not in its compare set, so full coverage cannot be claimed;
           the commit then falls back to a full validation round. *)
        t.fully_validated <- (all_covered && t.footprint_gen = gen0);
        t.last_validated_stamp <- Some stamp
      end;
      List.map (fun (_, slot) -> (Objref.seq_of_slot slot, Objref.payload_of_slot slot)) results
  | Mtx.Failed_compare _ ->
      (* Some read-set entry changed under us. Evict what we can from
         the cache and abort. *)
      (match t.cache with
      | None -> ()
      | Some cache ->
          (* Invalidation is idempotent per key; iteration order cannot
             reach the resulting cache state. *)
          (* lint: allow transitive-nondet *)
          Hashtbl.iter (fun ref_ _ -> Objcache.invalidate cache ref_) t.reads);
      Obs.abort t.obs ~layer:Obs.Abort.Txn Obs.Abort.Validation_failed;
      fail t "piggy-backed validation failed"
  | Mtx.Busy ->
      Obs.abort t.obs ~layer:Obs.Abort.Txn Obs.Abort.Lock_busy;
      fail t "retry budget exhausted during fetch"
  | Mtx.Unavailable { partitioned; _ } ->
      (* Distinguish an injected partition from a crashed, un-failed-over
         host — both at this layer and below (the Mtx layer already
         counted the same reason), so abort accounting agrees across
         layers. *)
      let reason = if partitioned then Obs.Abort.Partitioned else Obs.Abort.Crashed_host in
      Obs.abort t.obs ~layer:Obs.Abort.Txn reason;
      fail t (if partitioned then "memnode partitioned" else "memnode unavailable")

let fetch_slot t ~validate (addr : Address.t) ~len =
  match fetch_refs t ~validate [ Objref.make ~addr ~len ] with
  | [ r ] -> r
  | _ -> assert false

let in_write_set t ref_ = Hashtbl.mem t.writes ref_

let read_with_seq t (ref_ : Objref.t) =
  check_live t;
  match Hashtbl.find_opt t.writes ref_ with
  | Some (payload, _) ->
      let seq = match Hashtbl.find_opt t.reads ref_ with Some e -> e.seq | None -> 0L in
      (seq, payload)
  | None -> (
      match Hashtbl.find_opt t.reads ref_ with
      | Some entry -> (entry.seq, entry.payload)
      | None ->
          let seq, payload = fetch_slot t ~validate:true ref_.Objref.addr ~len:ref_.Objref.len in
          Hashtbl.replace t.reads ref_ { ref_; seq; payload; validated = true };
          note_footprint t;
          (seq, payload))

let read t ref_ = snd (read_with_seq t ref_)

(* Cache lookup distinguishing fresh entries from stale-epoch ones
   (their space crashed since insertion; the caller re-fetches and
   reports the revalidation) and true misses. *)
let cache_lookup t ref_ =
  match t.cache with
  | None -> `Absent
  | Some cache -> (
      match Objcache.find_status cache ref_ with
      | Objcache.Fresh { seq; payload } -> `Fresh (seq, payload)
      | Objcache.Stale entry -> `Stale entry
      | Objcache.Miss -> `Absent)

(* Store a freshly fetched copy back into the cache, closing out a
   stale-epoch revalidation when [st] says the lookup found one. Empty
   payloads (deleted/unallocated slots) are never cached: a negative
   entry served after the slot is reused would be indistinguishable
   from a live object. *)
let cache_store t ref_ ~seq ~payload st =
  match t.cache with
  | None -> ()
  | Some cache ->
      (match st with
      | `Stale old -> Objcache.note_revalidation cache ~old ~seq ~payload
      | `Absent -> ());
      if String.length payload > 0 then Objcache.insert cache ref_ { Objcache.seq; payload }
      else Objcache.invalidate cache ref_

let dirty_read_with_seq ?(use_cache = true) t (ref_ : Objref.t) =
  check_live t;
  match Hashtbl.find_opt t.writes ref_ with
  | Some (payload, _) ->
      (* Reading our own buffered write; report the sequence number the
         object was first observed at (0 for blind writes). *)
      let seq =
        match Hashtbl.find_opt t.reads ref_ with Some e -> e.seq | None -> 0L
      in
      (seq, payload)
  | None -> (
      match Hashtbl.find_opt t.reads ref_ with
      | Some entry -> (entry.seq, entry.payload)
      | None -> (
          match Hashtbl.find_opt t.dirty_seen ref_ with
          | Some (seq, payload) -> (seq, payload)
          | None -> (
              let status = if use_cache then cache_lookup t ref_ else `Absent in
              match status with
              | `Fresh (seq, payload) ->
                  Hashtbl.replace t.dirty_seen ref_ (seq, payload);
                  (seq, payload)
              | (`Stale _ | `Absent) as st ->
                  let seq, payload =
                    fetch_slot t ~validate:false ref_.Objref.addr ~len:ref_.Objref.len
                  in
                  Hashtbl.replace t.dirty_seen ref_ (seq, payload);
                  if use_cache then cache_store t ref_ ~seq ~payload st;
                  (seq, payload))))

let dirty_read ?use_cache t ref_ = snd (dirty_read_with_seq ?use_cache t ref_)

(* De-duplicate while preserving first-occurrence order. *)
let dedup_refs refs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r then false
      else begin
        Hashtbl.add seen r ();
        true
      end)
    refs

let read_many_with_seq t refs =
  check_live t;
  let missing =
    dedup_refs refs
    |> List.filter (fun r -> not (Hashtbl.mem t.writes r || Hashtbl.mem t.reads r))
  in
  (match missing with
  | [] -> ()
  | _ ->
      (* One minitransaction for every missing object (coalesced per
         memnode by the coordinator), piggy-backing read-set validation
         so the batch joins the read set atomically validated. *)
      let fetched = fetch_refs t ~validate:true missing in
      List.iter2
        (fun ref_ (seq, payload) ->
          Hashtbl.replace t.reads ref_ { ref_; seq; payload; validated = true };
          note_footprint t)
        missing fetched);
  List.map (fun r -> read_with_seq t r) refs

let dirty_read_many_with_seq ?(use_cache = true) t refs =
  check_live t;
  let resolved = Hashtbl.create 16 in
  let local r =
    match Hashtbl.find_opt t.writes r with
    | Some (payload, _) ->
        let seq = match Hashtbl.find_opt t.reads r with Some e -> e.seq | None -> 0L in
        Some (seq, payload)
    | None -> (
        match Hashtbl.find_opt t.reads r with
        | Some e -> Some (e.seq, e.payload)
        | None -> Hashtbl.find_opt t.dirty_seen r)
  in
  (* Resolve from local state / the cache first; whatever remains is
     fetched in one batched minitransaction. Stale-epoch cache entries
     are fetched too and accounted as lazy revalidations. *)
  let missing = ref [] in
  List.iter
    (fun r ->
      if not (Hashtbl.mem resolved r) then
        match local r with
        | Some v -> Hashtbl.add resolved r (`Done v)
        | None -> (
            let status = if use_cache then cache_lookup t r else `Absent in
            match status with
            | `Fresh (seq, payload) ->
                Hashtbl.replace t.dirty_seen r (seq, payload);
                Hashtbl.add resolved r (`Done (seq, payload))
            | `Stale entry ->
                Hashtbl.add resolved r (`Fetch (`Stale entry));
                missing := r :: !missing
            | `Absent ->
                Hashtbl.add resolved r (`Fetch `Absent);
                missing := r :: !missing))
    refs;
  let missing = List.rev !missing in
  (match missing with
  | [] -> ()
  | _ ->
      let fetched = fetch_refs t ~validate:false missing in
      List.iter2
        (fun r (seq, payload) ->
          Hashtbl.replace t.dirty_seen r (seq, payload);
          (match Hashtbl.find_opt resolved r with
          | Some (`Fetch st) -> if use_cache then cache_store t r ~seq ~payload st
          | _ -> ());
          Hashtbl.replace resolved r (`Done (seq, payload)))
        missing fetched);
  List.map
    (fun r ->
      match Hashtbl.find_opt resolved r with Some (`Done v) -> v | _ -> assert false)
    refs

let write_gen t (ref_ : Objref.t) payload ~echo =
  check_live t;
  if String.length payload > Objref.payload_capacity ref_ then
    invalid_arg "Txn.write: payload exceeds slot capacity";
  (* An object that was dirty-read and is now written must join the read
     set (with the sequence number it was dirty-read at) so that commit
     validates it (Sec. 3). *)
  if not (Hashtbl.mem t.reads ref_) then begin
    match Hashtbl.find_opt t.dirty_seen ref_ with
    | Some (seq, seen_payload) ->
        Hashtbl.replace t.reads ref_ { ref_; seq; payload = seen_payload; validated = false };
        note_footprint t;
        t.fully_validated <- false
    | None -> ()
  end;
  (* A plain rewrite keeps any echo offset recorded earlier. *)
  let echo =
    match echo with
    | Some _ -> echo
    | None -> (
        match Hashtbl.find_opt t.writes ref_ with Some (_, e) -> e | None -> None)
  in
  Hashtbl.replace t.writes ref_ (payload, echo)

let write t ref_ payload = write_gen t ref_ payload ~echo:None

let write_linked t ref_ payload ~repl_off = write_gen t ref_ payload ~echo:(Some repl_off)

let validate_replicated t ~off ~seq =
  check_live t;
  if not (Hashtbl.mem t.repl_validates off) then begin
    Hashtbl.replace t.repl_validates off seq;
    note_footprint t;
    t.fully_validated <- false
  end

let read_replicated t ~off ~len =
  check_live t;
  match Hashtbl.find_opt t.repl_writes off with
  | Some (_, payload) -> payload
  | None -> (
      match Hashtbl.find_opt t.repl_reads off with
      | Some rr -> rr.rr_payload
      | None -> (
          let key = cache_key_of_repl t off len in
          match cache_lookup t key with
          | `Fresh (seq, payload) ->
              Hashtbl.replace t.repl_reads off { rr_len = len; rr_seq = seq; rr_payload = payload };
              note_footprint t;
              (* Served from the (incoherent) cache: the read set is no
                 longer known-consistent until the next validating fetch
                 or commit. *)
              t.fully_validated <- false;
              payload
          | (`Stale _ | `Absent) as st ->
              let seq, payload = fetch_slot t ~validate:true (repl_addr t off) ~len in
              Hashtbl.replace t.repl_reads off { rr_len = len; rr_seq = seq; rr_payload = payload };
              note_footprint t;
              cache_store t key ~seq ~payload st;
              payload))

let dirty_read_replicated ?(use_cache = true) t ~off ~len =
  check_live t;
  Hashtbl.replace t.dirty_repl_seen off len;
  let key = cache_key_of_repl t off len in
  let status = if use_cache then cache_lookup t key else `Absent in
  match status with
  | `Fresh (_, payload) -> payload
  | (`Stale _ | `Absent) as st ->
      let seq, payload = fetch_slot t ~validate:false (repl_addr t off) ~len in
      if use_cache then cache_store t key ~seq ~payload st;
      payload

let write_replicated t ~off ~len payload =
  check_live t;
  if String.length payload > len - Objref.header_size then
    invalid_arg "Txn.write_replicated: payload exceeds slot capacity";
  Hashtbl.replace t.repl_writes off (len, payload)

(* Each iter below only invalidates cache entries — idempotent per key,
   so iteration order cannot reach the resulting cache state. *)
let evict_dirty t =
  match t.cache with
  | None -> ()
  | Some cache ->
      (* lint: allow transitive-nondet *)
      Hashtbl.iter (fun ref_ _ -> Objcache.invalidate cache ref_) t.dirty_seen;
      (* Negative entries: a read-set entry observed with an empty
         payload names a deleted or unallocated slot. Drop any cached
         copy so a post-abort retry cannot dirty-read the dead node out
         of the cache and traverse into freed space. *)
      (* lint: allow transitive-nondet *)
      Hashtbl.iter
        (fun ref_ e -> if String.length e.payload = 0 then Objcache.invalidate cache ref_)
        t.reads;
      (* Replicated reads may also have come from the cache. *)
      (* lint: allow transitive-nondet *)
      Hashtbl.iter
        (fun off rr -> Objcache.invalidate cache (cache_key_of_repl t off rr.rr_len))
        t.repl_reads;
      (* lint: allow transitive-nondet *)
      Hashtbl.iter
        (fun off len -> Objcache.invalidate cache (cache_key_of_repl t off len))
        t.dirty_repl_seen

type commit_result =
  | Committed
  | Validation_failed
  | Retry_exhausted
  | Unavailable of { maybe_applied : bool }

let read_set_size t = Hashtbl.length t.reads + Hashtbl.length t.repl_reads

let write_set_size t = Hashtbl.length t.writes + Hashtbl.length t.repl_writes

let fetches t = t.fetches

(* Post-commit: refresh the proxy cache for objects we just wrote, but
   only those the cache already knew about (internal B-tree nodes);
   leaves stay uncached, matching the paper's design. *)
let refresh_cache t written =
  match t.cache with
  | None -> ()
  | Some cache ->
      List.iter
        (fun (ref_, seq, payload, _echo) ->
          let known =
            Hashtbl.mem t.dirty_seen ref_
            || (match Objcache.find cache ref_ with Some _ -> true | None -> false)
          in
          if known then Objcache.insert cache ref_ { Objcache.seq; payload })
        written

let commit ?(blocking = false) t =
  check_live t;
  t.aborted <- true;
  (* mark consumed: a transaction commits at most once *)
  let no_writes = Hashtbl.length t.writes = 0 && Hashtbl.length t.repl_writes = 0 in
  if no_writes && t.fully_validated then begin
    (* Free commit: serialization point is the last fetch that validated
       the whole read set (None for a transaction that never validated
       anything, e.g. dirty-only snapshot reads). *)
    t.commit_stamp_ <- t.last_validated_stamp;
    Obs.Counter.incr t.stats.Obs.free_commits;
    Committed
  end
  else
    Obs.with_span t.obs Obs.Span.Commit @@ fun () ->
    let n = Cluster.n_memnodes t.cluster in
    (* Fresh sequence numbers for every written object. Uniqueness (not
       contiguity) is what validation relies on; the cluster-wide counter
       also keeps them monotonically increasing over time. *)
    (* Sorted folds below: these shape the minitransaction item layout
       and the order sequence numbers are drawn from the cluster-wide
       counter — both must replay identically per seed. *)
    let written =
      Sim.Det.fold_sorted t.writes ~cmp:Objref.compare
        (fun ref_ (payload, echo) acc -> (ref_, Cluster.fresh_owner t.cluster, payload, echo) :: acc)
        []
    in
    let write_items =
      List.concat_map
        (fun ((ref_ : Objref.t), seq, payload, echo) ->
          let obj = Mtx.write_at ref_.Objref.addr (Objref.slot_of ~seq ~payload) in
          match echo with
          | None -> [ obj ]
          | Some off ->
              (* Republish the fresh sequence number to the replicated
                 slot at [off] on every memnode (baseline seqnum table). *)
              let slot = Objref.slot_of ~seq ~payload:"" in
              obj :: List.init n (fun node -> Mtx.write_at (Address.make ~node ~off) slot))
        written
    in
    let repl_written =
      Sim.Det.fold_sorted t.repl_writes ~cmp:Int.compare
        (fun off (len, payload) acc -> (off, len, Cluster.fresh_owner t.cluster, payload) :: acc)
        []
    in
    let repl_write_items =
      List.concat_map
        (fun (off, _len, seq, payload) ->
          let slot = Objref.slot_of ~seq ~payload in
          List.init n (fun node -> Mtx.write_at (Address.make ~node ~off) slot))
        repl_written
    in
    (* Regular read-set validation: compare each object's sequence
       number where it lives. *)
    let read_entries = Sim.Det.fold_sorted t.reads ~cmp:Objref.compare (fun _ e acc -> e :: acc) [] in
    let read_compares =
      List.map (fun e -> (seq_compare_at e.ref_.Objref.addr e.seq, `Obj e.ref_)) read_entries
    in
    (* Replicated reads validate at one replica. Prefer a memnode that
       already participates so single-memnode commits stay one-phase. *)
    let preferred_node =
      match write_items with
      | w :: _ -> w.Mtx.w_addr.Address.node
      | [] -> (
          match read_entries with e :: _ -> Objref.node e.ref_ | [] -> t.home)
    in
    let repl_compares =
      Sim.Det.fold_sorted t.repl_reads ~cmp:Int.compare
        (fun off rr acc ->
          ( seq_compare_at (Address.make ~node:preferred_node ~off) rr.rr_seq,
            `Repl (off, rr.rr_len) )
          :: acc)
        []
    in
    let repl_validate_compares =
      Sim.Det.fold_sorted t.repl_validates ~cmp:Int.compare
        (fun off seq acc ->
          if Hashtbl.mem t.repl_reads off then acc
          else
            (seq_compare_at (Address.make ~node:preferred_node ~off) seq, `Repl_seq off) :: acc)
        []
    in
    let compares = read_compares @ repl_compares @ repl_validate_compares in
    let mtx =
      Mtx.make ~compares:(List.map fst compares)
        ~writes:(write_items @ repl_write_items)
        ()
    in
    let mode = if blocking then Coordinator.Blocking else Coordinator.Normal in
    match Coordinator.exec t.cluster ?client:t.client ~mode mtx with
    | Mtx.Committed { stamp; epochs; _ } ->
        t.commit_stamp_ <- Some stamp;
        observe_epochs t epochs;
        refresh_cache t written;
        (* Keep the proxy's view of replicated objects it just updated
           fresh (tip pointers, catalog entries). *)
        (match t.cache with
        | None -> ()
        | Some cache ->
            List.iter
              (fun (off, len, seq, payload) ->
                Objcache.insert cache (cache_key_of_repl t off len) { Objcache.seq; payload })
              repl_written);
        Obs.Counter.incr t.stats.Obs.commits;
        Committed
    | Mtx.Failed_compare idxs ->
        (* Evict whatever proved stale from the cache so the retry
           re-fetches fresh copies. *)
        let tagged = Array.of_list (List.map snd compares) in
        (match t.cache with
        | None -> ()
        | Some cache ->
            List.iter
              (fun i ->
                if i < Array.length tagged then
                  match tagged.(i) with
                  | `Obj ref_ -> Objcache.invalidate cache ref_
                  | `Repl (off, len) -> Objcache.invalidate cache (cache_key_of_repl t off len)
                  | `Repl_seq _ -> ())
              idxs);
        Obs.Counter.incr t.stats.Obs.validation_failures;
        Obs.abort t.obs ~layer:Obs.Abort.Txn Obs.Abort.Validation_failed;
        Validation_failed
    | Mtx.Busy ->
        Obs.Counter.incr t.stats.Obs.retry_exhausted;
        Obs.abort t.obs ~layer:Obs.Abort.Txn Obs.Abort.Lock_busy;
        Retry_exhausted
    | Mtx.Unavailable { maybe_applied; partitioned } ->
        (* Surfaced as its own result (not folded into Retry_exhausted):
           an outage is not contention, and callers back off differently.
           The abort reason matches what the Mtx layer counted for the
           same event. *)
        Obs.Counter.incr t.stats.Obs.txn_unavailable;
        let reason = if partitioned then Obs.Abort.Partitioned else Obs.Abort.Crashed_host in
        Obs.abort t.obs ~layer:Obs.Abort.Txn reason;
        Unavailable { maybe_applied }

let commit_exn ?blocking t =
  match commit ?blocking t with
  | Committed -> ()
  | Validation_failed -> raise (Aborted "validation failed")
  | Retry_exhausted -> raise (Aborted "retry budget exhausted")
  | Unavailable _ -> raise (Aborted "memnode unavailable")
