(** Per-proxy object cache.

    The cache is deliberately {e incoherent}: it is never invalidated by
    remote writes (Sec. 2.3). Stale entries are detected later by OCC
    validation or by the fence-key / copied-to safety checks of dirty
    traversals, which then evict them. LRU eviction bounds memory.

    {b Crash epochs.} Every entry is tagged with the crash epoch of its
    object's address space at insertion time ({!observe_epoch} keeps the
    per-space view current from minitransaction replies). After a
    memnode crash/promotion bumps a space's epoch, that space's older
    entries turn {!Stale}: lookups report them distinctly and callers
    lazily revalidate them (re-fetch; the piggy-backed sequence number
    tells whether the entry survived) instead of flushing the cache
    wholesale — a crash costs amortized misses, not an invalidation
    storm. *)

type t

type entry = { seq : int64; payload : string }

(** Lookup result: [Fresh] entries are usable as before; [Stale] entries
    predate a crash of their address space and must be revalidated
    before use (their [seq] is the comparison point). *)
type status = Fresh of entry | Stale of entry | Miss

val create :
  ?capacity:int ->
  ?stats:Obs.cache_stats ->
  ?node_stats:Obs.node_stats ->
  ?same_content:(string -> string -> bool) ->
  unit ->
  t
(** [capacity] is the maximum number of cached objects (default 65536).
    [stats] mirrors every counter below into typed {!Obs} metrics (and
    therefore into [Obs.Report.to_json]).

    [same_content] is an optional payload-level equality used by
    {!note_revalidation} to recognise entries that survived a crash
    under a new sequence number — in practice the B-tree's per-node
    version-stamp compare ({!Btree.Bview.same_stamp}), injected from
    above so the cache stays node-format agnostic. Stamp survivals are
    mirrored into [node_stats]. *)

val find : t -> Objref.t -> entry option
(** Refreshes LRU position on hit. Stale-epoch entries count as misses
    here; use {!find_status} to revalidate them instead. *)

val find_status : t -> Objref.t -> status
(** Like {!find} but distinguishing stale-epoch entries from true
    misses. *)

val insert : t -> Objref.t -> entry -> unit
(** Insert or overwrite (tagging with the space's current epoch); may
    evict the least-recently-used entry. *)

val invalidate : t -> Objref.t -> unit

val observe_epoch : t -> space:int -> epoch:int -> unit
(** Record that address space [space] is at crash epoch [epoch] (from a
    minitransaction reply). Monotonic: older observations are ignored. *)

val note_revalidation : t -> old:entry -> seq:int64 -> payload:string -> unit
(** Account one lazy revalidation of a stale-epoch entry [old] against
    the re-fetched [seq]/[payload]. The entry survived when the
    sequence number is unchanged, or when [same_content] says the
    payload is the same node version (a recovery replay under a fresh
    sequence number) — the latter is counted separately as a stamp
    revalidation. Purely accounting: the caller stores the fresh
    payload either way. *)

val clear : t -> unit
(** Drop everything (a bulk eviction — production code paths avoid
    this; the counter proves it). *)

val size : t -> int

val hits : t -> int

val misses : t -> int
(** {!find}/{!find_status} misses (for reporting cache effectiveness). *)

val evictions : t -> int
(** Entries dropped individually: LRU pressure plus {!invalidate}. *)

val bulk_evictions : t -> int
(** Number of {!clear} calls. *)

val stale_hits : t -> int

val epoch_revalidations : t -> int

val epoch_survived : t -> int

val stamp_revalidations : t -> int
(** Survivals established by content stamp rather than sequence
    number. *)
