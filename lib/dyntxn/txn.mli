(** Dynamic transactions: optimistic concurrency control over objects
    stored in Sinfonia, following Aguilera et al. (Sec. 2.2) extended
    with dirty reads (Sec. 3).

    A transaction tracks a read set (object, sequence number) and a
    write set (object, new payload). Commit executes one minitransaction
    that validates every read-set sequence number and applies the writes
    with fresh sequence numbers. Dirty reads bypass the read set (no
    validation) and are served from the proxy's incoherent cache when
    possible.

    {e Replicated objects} (the tip snapshot id, root location, and the
    baseline sequence-number table) are stored at the same offset on
    every memnode. Reads of replicated objects validate against any one
    replica at commit (preferably one already participating, preserving
    one-phase commits); writes update every replica atomically. *)

exception Aborted of string
(** Raised by {!abort} and by reads that detect a stale read set via
    piggy-backed validation. B-tree operations catch it and retry. *)

type t

val begin_ : ?cache:Objcache.t -> ?client:int -> ?home:int -> Sinfonia.Cluster.t -> t
(** Start a transaction. [cache] is the proxy's object cache (dirty
    reads without one always go to the network). [client] is the calling
    host's id for the network fault model (see {!Sinfonia.Coordinator.exec});
    omitted, the transaction's traffic is anonymous and never faulted.
    [home] is the memnode used to fetch replicated objects (default 0). *)

val cluster : t -> Sinfonia.Cluster.t

val is_aborted : t -> bool

(** {1 Operations} *)

val read : t -> Objref.t -> string
(** Transactional read: returns the payload and records the sequence
    number in the read set. Served from the write set or read set if
    already present; otherwise fetched with a minitransaction that also
    re-validates (piggy-backs) read-set entries living on the same
    memnode — raising {!Aborted} if any is stale. *)

val in_write_set : t -> Objref.t -> bool
(** Whether reads of this object are currently served from the
    transaction's own buffered (uncommitted) write. *)

val read_with_seq : t -> Objref.t -> int64 * string
(** Like {!read}, also exposing the sequence number the object was read
    at (0 for objects only present in the write set). *)

val dirty_read : ?use_cache:bool -> t -> Objref.t -> string
(** Read without validation: from the write set, the read set, the
    cache, or (on miss) the memnode — caching the result. The object is
    remembered so that a later {!write} adds it to the read set, and so
    that {!evict_dirty} can purge the traversal path on abort.
    [~use_cache:false] bypasses the proxy cache entirely (no lookup, no
    insert): the paper always fetches leaf nodes directly from Sinfonia
    (Sec. 4.2). *)

val dirty_read_with_seq : ?use_cache:bool -> t -> Objref.t -> int64 * string
(** Like {!dirty_read} but also returns the sequence number the payload
    was observed at (needed by the baseline concurrency-control mode to
    validate internal nodes against the replicated sequence-number
    table). *)

val read_many_with_seq : t -> Objref.t list -> (int64 * string) list
(** Batched {!read_with_seq}: objects not already served locally are
    fetched by {e one} minitransaction (items coalesced per memnode —
    one round trip for a single participant, one parallel 2PC for
    several) that piggy-backs read-set validation, so the whole batch
    joins the read set atomically validated. Results are in argument
    order; duplicates are served from the first fetch. The batched
    leaf scan ({!Btree.Ops.scan}) rides on this. *)

val dirty_read_many_with_seq : ?use_cache:bool -> t -> Objref.t list -> (int64 * string) list
(** Batched {!dirty_read_with_seq}: objects not resolvable from local
    state (or the cache, unless [~use_cache:false]) are fetched by one
    unvalidated minitransaction, coalesced per memnode. *)

val write : t -> Objref.t -> string -> unit
(** Buffer a write. If the object was previously dirty-read (and is not
    yet in the read set), its observed sequence number is added to the
    read set first, per Sec. 3. Raises [Invalid_argument] if the payload
    exceeds the slot capacity. *)

val read_replicated : t -> off:int -> len:int -> string
(** Read a replicated object (from the [home] replica) and record it
    for commit-time validation. [len] is the full slot size. *)

val dirty_read_replicated : ?use_cache:bool -> t -> off:int -> len:int -> string
(** Read a replicated object without adding it to the read set.
    [~use_cache:false] always fetches from the home memnode (and does
    not populate the cache) — for decisions that must not act on stale
    cached metadata. *)

val write_replicated : t -> off:int -> len:int -> string -> unit
(** Buffer a write to a replicated object; commit will update all
    replicas atomically (engaging every memnode). *)

val validate_replicated : t -> off:int -> seq:int64 -> unit
(** Add a commit-time comparison asserting that the replicated object at
    [off] still has sequence number [seq], without fetching it. Used by
    the baseline mode of Aguilera et al.: internal-node sequence numbers
    are replicated at every memnode ({!write_linked}), so a traversal can
    validate cached internal nodes at whatever memnode the commit runs
    on. Re-asserting the same offset keeps the earliest expectation. *)

val write_linked : t -> Objref.t -> string -> repl_off:int -> unit
(** Like {!write}, additionally republishing the object's fresh
    commit-time sequence number to the replicated slot at [repl_off] on
    every memnode (the baseline's replicated sequence-number table).
    This makes the commit engage all memnodes. *)

val abort : t -> 'a
(** Mark the transaction aborted and raise {!Aborted}. *)

val evict_dirty : t -> unit
(** Invalidate every cache entry this transaction dirty-read. Called by
    retry loops after an abort caused by stale cached data. *)

(** {1 Commit} *)

type commit_result =
  | Committed
  | Validation_failed  (** Some read-set entry was stale; stale cache entries evicted. *)
  | Retry_exhausted  (** Lock contention exceeded the retry budget. *)
  | Unavailable of { maybe_applied : bool }
      (** A participant was crashed or partitioned off; distinct from
          {!Retry_exhausted} so callers can back off for the (much
          longer) outage timescale. [maybe_applied] is false when the
          writes certainly did not take effect (always, under the
          drain-based crash model). *)

val commit : ?blocking:bool -> t -> commit_result
(** Execute the commit minitransaction. Read-only transactions whose
    read set was populated by at most one fetch commit without any
    further network round trip. [blocking] uses blocking
    minitransactions (Sec. 4.1), appropriate for updates to heavily
    contended replicated objects. *)

val commit_stamp : t -> int64 option
(** After a successful {!commit}: the transaction's commit stamp — the
    cluster-global stamp of its serialization point. For write (or
    validating read-only) commits this is the commit minitransaction's
    stamp; for free commits it is the stamp of the last fetch that
    validated the whole read set. [None] before commit, and for
    transactions with no validated footprint (dirty-read-only snapshot
    transactions, which are checked against their snapshot id
    instead). *)

val commit_exn : ?blocking:bool -> t -> unit
(** Like {!commit} but raises {!Aborted} unless committed. *)

(** {1 Introspection (tests, reporting)} *)

val read_set_size : t -> int

val write_set_size : t -> int

val fetches : t -> int
(** Number of minitransaction fetches this transaction performed. *)
