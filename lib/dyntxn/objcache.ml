type entry = { seq : int64; payload : string }

type status = Fresh of entry | Stale of entry | Miss

(* LRU: hashtable keyed by address paired with an intrusive
   doubly-linked recency list. Every node is tagged with the crash
   epoch of its object's address space at insertion time; a crash bumps
   the space's epoch (observed from minitransaction replies), turning
   all older entries Stale without touching them. *)
type lru_node = {
  key : Objref.t;
  mutable value : entry;
  mutable epoch : int;
  mutable prev : lru_node option;
  mutable next : lru_node option;
}

type t = {
  table : (Objref.t, lru_node) Hashtbl.t;
  capacity : int;
  stats : Obs.cache_stats option; (* typed Obs mirror, when attached *)
  node_stats : Obs.node_stats option;
  same_content : (string -> string -> bool) option;
      (* Payload-level content equality (in practice the B-tree's
         version-stamp compare, {!Btree.Bview.same_stamp}), injected by
         the layer above so this cache stays node-format agnostic. *)
  space_epochs : (int, int) Hashtbl.t; (* current crash epoch per space *)
  mutable head : lru_node option; (* most recently used *)
  mutable tail : lru_node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bulk_evictions : int;
  mutable stale_hits : int;
  mutable epoch_revalidations : int;
  mutable epoch_survived : int;
  mutable stamp_revalidations : int;
}

let create ?(capacity = 65536) ?stats ?node_stats ?same_content () =
  if capacity <= 0 then invalid_arg "Objcache.create: capacity must be positive";
  {
    table = Hashtbl.create 1024;
    capacity;
    stats;
    node_stats;
    same_content;
    space_epochs = Hashtbl.create 8;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    bulk_evictions = 0;
    stale_hits = 0;
    epoch_revalidations = 0;
    epoch_survived = 0;
    stamp_revalidations = 0;
  }

let mirror t f = match t.stats with None -> () | Some s -> Obs.Counter.incr (f s)

let space_epoch t space =
  match Hashtbl.find_opt t.space_epochs space with Some e -> e | None -> 0

let observe_epoch t ~space ~epoch =
  if epoch > space_epoch t space then Hashtbl.replace t.space_epochs space epoch

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find_status t key =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.misses <- t.misses + 1;
      mirror t (fun s -> s.Obs.cache_misses);
      Miss
  | Some node ->
      unlink t node;
      push_front t node;
      if node.epoch = space_epoch t (Objref.node key) then begin
        t.hits <- t.hits + 1;
        mirror t (fun s -> s.Obs.cache_hits);
        Fresh node.value
      end
      else begin
        (* The entry predates a crash of its space. Not counted as a
           hit: the caller must revalidate it before trusting it. *)
        t.stale_hits <- t.stale_hits + 1;
        mirror t (fun s -> s.Obs.cache_stale_hits);
        Stale node.value
      end

let find t key =
  match find_status t key with Fresh e -> Some e | Stale _ | Miss -> None

(* An epoch-stale entry was re-fetched. It "survived" (the flush would
   have been wasted) when the sequence number is unchanged, or — after a
   recovery that replayed the slot under a fresh sequence number — when
   the payload content stamp still matches, compared without decoding
   either copy. A stamp collision merely over-counts survival: the
   caller stores the fresh payload regardless, and this cache is
   deliberately incoherent, so no correctness rests on the compare. *)
let note_revalidation t ~old ~seq ~payload =
  t.epoch_revalidations <- t.epoch_revalidations + 1;
  mirror t (fun s -> s.Obs.cache_epoch_revalidations);
  let survived_seq = Int64.equal old.seq seq in
  let survived_stamp =
    (not survived_seq)
    && match t.same_content with Some same -> same old.payload payload | None -> false
  in
  if survived_stamp then begin
    t.stamp_revalidations <- t.stamp_revalidations + 1;
    match t.node_stats with
    | Some s -> Obs.Counter.incr s.Obs.stamp_revalidations
    | None -> ()
  end;
  if survived_seq || survived_stamp then begin
    t.epoch_survived <- t.epoch_survived + 1;
    mirror t (fun s -> s.Obs.cache_epoch_survived)
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1;
      mirror t (fun s -> s.Obs.cache_evictions)

let insert t key value =
  let epoch = space_epoch t (Objref.node key) in
  match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      node.epoch <- epoch;
      unlink t node;
      push_front t node
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { key; value; epoch; prev = None; next = None } in
      Hashtbl.add t.table key node;
      push_front t node

let invalidate t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      mirror t (fun s -> s.Obs.cache_evictions)

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.bulk_evictions <- t.bulk_evictions + 1;
  mirror t (fun s -> s.Obs.cache_bulk_evictions)

let size t = Hashtbl.length t.table

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let bulk_evictions t = t.bulk_evictions

let stale_hits t = t.stale_hits

let epoch_revalidations t = t.epoch_revalidations

let epoch_survived t = t.epoch_survived

let stamp_revalidations t = t.stamp_revalidations
