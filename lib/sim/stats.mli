(** Measurement utilities: counters, log-bucketed latency histograms,
    and fixed-width time series. *)

(** Monotonic event counter. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Log-bucketed histogram for positive samples (latencies in seconds).
    Relative bucket error is about 2%; values outside
    [\[1e-9, 1e6\]] are clamped. *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. when empty. *)

  val min : t -> float
  val max : t -> float
  val quantile : t -> float -> float
  (** [quantile t q] for q in [\[0,1\]]; 0. when empty. Returns the
      upper edge of the bucket containing the q-th sample. *)

  val percentile : t -> float -> float
  (** [percentile t 95.] = [quantile t 0.95]. *)

  val p999 : t -> float
  (** [p999 t] = [quantile t 0.999] — the tail-latency quantile SLO
      gates are written against. The geometric buckets (ratio 1.04)
      resolve it to within ~4% relative error at any magnitude. *)

  val merge_into : dst:t -> t -> unit
  val reset : t -> unit

  val pp_summary : Format.formatter -> t -> unit
  (** "n=… mean=…ms p50=… p95=… p99=… p999=… max=…" *)
end

(** Welford running mean / standard deviation. *)
module Moments : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  (** Sample standard deviation; 0. for fewer than two samples. *)
end

(** Counts bucketed by fixed-width windows of simulated time, e.g.
    per-second throughput time series. *)
module Series : sig
  type t

  val create : width:float -> t
  (** [width] is the bucket width in seconds; must be positive. *)

  val add : t -> time:float -> int -> unit
  val bucket_count : t -> int
  val buckets : t -> (float * int) array
  (** [(bucket_start_time, count)] for every bucket from time 0 to the
      last nonempty one, including empty buckets in between. *)
end
