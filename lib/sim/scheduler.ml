type time = float

exception Stopped

type scheduler = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : time;
  mutable stopped : bool;
  root_rng : Rng.t;
}

(* The scheduler for the currently-running simulation. Simulations are
   single-threaded and do not nest, so one global slot suffices; it also
   lets wakeners created inside one process resume processes from
   another without threading the scheduler everywhere. *)
let current : scheduler option ref = ref None

let inside () = Option.is_some !current

let get () =
  match !current with
  | Some s -> s
  | None -> invalid_arg "Sim: called outside of Scheduler.run"

type _ Effect.t +=
  | Now : time Effect.t
  | Delay : time -> unit Effect.t
  | Spawn : string option * (unit -> unit) -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let now () =
  if inside () then Effect.perform Now else invalid_arg "Sim.now: outside of Scheduler.run"

let delay d = Effect.perform (Delay (if d < 0.0 then 0.0 else d))

let yield () = Effect.perform (Delay 0.0)

let spawn ?name f = Effect.perform (Spawn (name, f))

let suspend register = Effect.perform (Suspend register)

let rng () = (get ()).root_rng

let stop () = (get ()).stopped <- true

(* Per-process trace context: an opaque span id owned by the tracing
   layer (0 = no active span). The slot rides along with each process
   across suspension points and is inherited by spawned children, which
   is what lets a tracer attribute work to the span that caused it
   without threading a handle through every call. *)
let ctx : int ref = ref 0

let trace_context () = !ctx

let set_trace_context v = ctx := v

let schedule s thunk = Event_queue.push s.queue ~time:s.clock thunk

let schedule_at s ~time thunk = Event_queue.push s.queue ~time thunk

(* Execute a process body under the effect handler. Each [spawn]ed
   process gets its own (deep) handler, so continuations captured inside
   it resume under the same handler. *)
let rec exec : scheduler -> string option -> (unit -> unit) -> unit =
 fun s name body ->
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Stopped -> ()
          | e ->
              let bt = Printexc.get_raw_backtrace () in
              Logs.err (fun m ->
                  m "process %s died: %s"
                    (Option.value name ~default:"<anon>")
                    (Printexc.to_string e));
              Printexc.raise_with_backtrace e bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Now ->
              Some (fun (k : (a, unit) continuation) -> continue k s.clock)
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = !ctx in
                  schedule_at s ~time:(s.clock +. d) (fun () ->
                      ctx := saved;
                      continue k ()))
          | Spawn (child_name, f) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let inherited = !ctx in
                  schedule s (fun () ->
                      ctx := inherited;
                      exec s child_name f);
                  continue k ())
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = !ctx in
                  let fired = ref false in
                  let wake v =
                    if not !fired then begin
                      fired := true;
                      schedule s (fun () ->
                          ctx := saved;
                          continue k v)
                    end
                  in
                  (* Run the registration under its own handler so that
                     it may itself perform effects (e.g. spawn a timeout
                     process). *)
                  exec s (Some "suspend-register") (fun () -> register wake))
          | _ -> None);
    }

let run ?(seed = 0x4d696e) ?until main =
  if inside () then invalid_arg "Scheduler.run: simulations do not nest";
  let s =
    { queue = Event_queue.create (); clock = 0.0; stopped = false; root_rng = Rng.create seed }
  in
  current := Some s;
  ctx := 0;
  let finish () =
    Event_queue.clear s.queue;
    current := None;
    ctx := 0
  in
  (try
     exec s (Some "main") main;
     let running = ref true in
     while !running && not s.stopped do
       match Event_queue.pop s.queue with
       | None -> running := false
       | Some (time, thunk) -> (
           match until with
           | Some u when time > u -> running := false
           | _ ->
               s.clock <- time;
               thunk ())
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     finish ();
     Printexc.raise_with_backtrace e bt);
  finish ()

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; waiters : ('a -> unit) Queue.t }

  let create () = { items = Queue.create (); waiters = Queue.create () }

  let send t v =
    match Queue.take_opt t.waiters with
    | Some wake -> wake v
    | None -> Queue.add v t.items

  let recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None -> suspend (fun wake -> Queue.add wake t.waiters)

  let try_recv t = Queue.take_opt t.items

  let length t = Queue.length t.items
end

module Ivar = struct
  type 'a state = Empty of ('a -> unit) Queue.t | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Sim.Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        Queue.iter (fun wake -> wake v) waiters

  let read t =
    match t.state with
    | Full v -> v
    | Empty waiters -> suspend (fun wake -> Queue.add wake waiters)

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
end

module Semaphore = struct
  type t = { mutable free : int; waiters : (unit -> unit) Queue.t }

  let create n =
    if n < 0 then invalid_arg "Sim.Semaphore.create: negative capacity";
    { free = n; waiters = Queue.create () }

  let acquire t =
    if t.free > 0 then t.free <- t.free - 1
    else suspend (fun wake -> Queue.add (fun () -> wake ()) t.waiters)

  let release t =
    match Queue.take_opt t.waiters with
    | Some wake -> wake ()
    | None -> t.free <- t.free + 1

  let with_acquired t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e

  let available t = t.free
end

module Mutex = struct
  type t = Semaphore.t

  let create () = Semaphore.create 1

  let lock = Semaphore.acquire

  let unlock = Semaphore.release

  let with_lock = Semaphore.with_acquired
end
