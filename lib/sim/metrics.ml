type t = {
  counters : (string, Stats.Counter.t) Hashtbl.t;
  hists : (string, Stats.Hist.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; hists = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = Stats.Counter.create () in
      Hashtbl.add t.counters name c;
      c

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Stats.Hist.create () in
      Hashtbl.add t.hists name h;
      h

let incr t name = Stats.Counter.incr (counter t name)

let add t name k = Stats.Counter.add (counter t name) k

let observe t name v = Stats.Hist.add (hist t name) v

let counter_value t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> Stats.Counter.value c
  | None -> 0

let sorted_bindings tbl = Det.sorted_bindings tbl ~cmp:String.compare

let counters t =
  sorted_bindings t.counters |> List.map (fun (k, c) -> (k, Stats.Counter.value c))

let hists t = sorted_bindings t.hists

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%-40s %d@." k v) (counters t);
  List.iter (fun (k, h) -> Format.fprintf fmt "%-40s %a@." k Stats.Hist.pp_summary h) (hists t)
