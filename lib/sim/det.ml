(* Deterministic views of hash tables.

   [Hashtbl]'s iteration order is an artifact of hashing and insertion
   history; anything it feeds into seeded-replay output (checker
   counterexamples, redo replay, recovery sweeps, JSON reports) must go
   through a key-sorted view instead so two runs of the same seed print
   bit-for-bit identical results. This module is the blessed home of
   the one [Hashtbl.fold] the nondet-iteration lint rule allows. *)

let sorted_bindings tbl ~cmp =
  (* lint: allow nondet-iteration *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let iter_sorted tbl ~cmp f = List.iter (fun (k, v) -> f k v) (sorted_bindings tbl ~cmp)

let fold_sorted tbl ~cmp f init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings tbl ~cmp)
