(** Deterministic discrete-event simulator with lightweight cooperative
    processes implemented with OCaml effect handlers.

    A simulation is started with {!run}. Inside it, code may call the
    process operations ({!delay}, {!spawn}, {!suspend}, ...) freely; they
    are implemented as effects handled by the scheduler. The entire run is
    a deterministic function of the seed and of the program itself.

    Simulated time is a [float] in seconds. *)

type time = float

exception Stopped
(** Raised inside a process when the simulation is being torn down and
    the process tries to block. Processes normally never observe it. *)

(** {1 Running} *)

val run : ?seed:int -> ?until:time -> (unit -> unit) -> unit
(** [run main] executes [main] as the initial process and then processes
    events until the queue drains or simulated time exceeds [until].
    Raises [Invalid_argument] when called from inside a running
    simulation (simulations do not nest). *)

val inside : unit -> bool
(** [inside ()] is [true] when called from code running under {!run}. *)

(** {1 Process operations}

    All of these must be called from inside a simulation. *)

val now : unit -> time
(** Current simulated time. *)

val delay : time -> unit
(** Suspend the calling process for the given amount of simulated time.
    Negative durations are treated as zero. *)

val yield : unit -> unit
(** Reschedule the calling process at the current time, letting other
    ready processes run first. *)

val spawn : ?name:string -> (unit -> unit) -> unit
(** Start a new process at the current time. An exception escaping the
    process aborts the whole simulation (it propagates out of {!run}),
    except {!Stopped} which is swallowed. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] blocks the calling process and calls
    [register wake]. Some other process (or event) may later call
    [wake v] exactly once, which reschedules the blocked process at the
    then-current time with result [v]. Extra calls to [wake] are
    ignored. *)

val rng : unit -> Rng.t
(** The simulation's root random stream. Derive independent component
    streams with {!Rng.split}. *)

val trace_context : unit -> int
(** The calling process's trace context: an opaque span id owned by the
    tracing layer ([minuet.obs]); [0] means no active span. The context
    follows each process across {!delay}/{!suspend} and is inherited by
    {!spawn}ed children, so spans parent correctly even across process
    boundaries. Application code should not touch this directly. *)

val set_trace_context : int -> unit
(** Set the calling process's trace context (tracing layer only). *)

val stop : unit -> unit
(** Stop the simulation: no further events are processed after the
    current one returns. *)

(** {1 Blocking primitives} *)

(** Unbounded FIFO mailbox. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  (** Blocks until a message is available. Waiters are served FIFO. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

(** Single-assignment result cell, for fork/join patterns. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t
  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val read : 'a t -> 'a
  (** Blocks until filled. *)

  val is_filled : 'a t -> bool
end

(** Counting semaphore with FIFO waiters. *)
module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val release : t -> unit
  val with_acquired : t -> (unit -> 'a) -> 'a
  val available : t -> int
end

(** Mutual-exclusion lock (semaphore of one). *)
module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end
