type fault = { drop : float; extra_latency : float; blocked : bool }

let benign = { drop = 0.0; extra_latency = 0.0; blocked = false }

type t = {
  one_way : float;
  per_byte : float;
  jitter : float;
  rto : float;
  rng : Rng.t;
  mutable messages : int;
  mutable bytes : int;
  mutable drops : int;
  (* Per-link fault state, keyed by directional (src, dst) host pair.
     Absence means a healthy link; lookups happen only on transfers that
     declare endpoints, so anonymous traffic pays nothing. *)
  faults : (int * int, fault) Hashtbl.t;
}

let create ?(one_way = 25e-6) ?(per_byte = 1e-9) ?(jitter = 5e-6) ?(rto = 1e-3) ~rng () =
  {
    one_way;
    per_byte;
    jitter;
    rto;
    rng;
    messages = 0;
    bytes = 0;
    drops = 0;
    faults = Hashtbl.create 16;
  }

let sample_one_way t ~bytes =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  let jitter = if t.jitter > 0.0 then Rng.exponential t.rng ~mean:t.jitter else 0.0 in
  t.one_way +. (t.per_byte *. float_of_int bytes) +. jitter

let set_fault t ~src ~dst ?(drop = 0.0) ?(extra_latency = 0.0) ?(blocked = false) () =
  if drop < 0.0 || drop > 1.0 then invalid_arg "Net.set_fault: drop must be in [0, 1]";
  if extra_latency < 0.0 then invalid_arg "Net.set_fault: negative extra latency";
  let f = { drop; extra_latency; blocked } in
  if f = benign then Hashtbl.remove t.faults (src, dst)
  else Hashtbl.replace t.faults (src, dst) f

let clear_fault t ~src ~dst = Hashtbl.remove t.faults (src, dst)

let set_fault_pair t ~a ~b ?drop ?extra_latency ?blocked () =
  set_fault t ~src:a ~dst:b ?drop ?extra_latency ?blocked ();
  set_fault t ~src:b ~dst:a ?drop ?extra_latency ?blocked ()

let clear_fault_pair t ~a ~b =
  clear_fault t ~src:a ~dst:b;
  clear_fault t ~src:b ~dst:a

let clear_all_faults t = Hashtbl.reset t.faults

let active_faults t = Hashtbl.length t.faults

let link_fault t ~src ~dst =
  match Hashtbl.find_opt t.faults (src, dst) with Some f -> f | None -> benign

let reachable t ~src ~dst = not (link_fault t ~src ~dst).blocked

(* Bound the retransmit loop so a drop probability of 1.0 (or a string of
   unlucky draws) cannot wedge the sender forever; past the cap the
   message is assumed to get through (the link is lossy, not cut — cut
   links are modelled with [blocked] and enforced by protocol-level
   [reachable] checks, never mid-exchange). *)
let max_retransmits = 16

(* The optional endpoints precede the positional [t] so that applying
   [t] erases them: existing callers that never name endpoints keep
   working unchanged. *)
let transfer ?src ?dst t ~bytes =
  match (src, dst) with
  | Some src, Some dst -> (
      match Hashtbl.find_opt t.faults (src, dst) with
      | None -> Scheduler.delay (sample_one_way t ~bytes)
      | Some f ->
          let drop = Float.min f.drop 0.95 in
          let rec attempt tries =
            if tries < max_retransmits && drop > 0.0 && Rng.float t.rng 1.0 < drop then begin
              (* Lost transmission: the bytes went out, the sender waits a
                 full retransmission timeout before trying again. *)
              t.messages <- t.messages + 1;
              t.bytes <- t.bytes + bytes;
              t.drops <- t.drops + 1;
              Scheduler.delay t.rto;
              attempt (tries + 1)
            end
            else Scheduler.delay (sample_one_way t ~bytes +. f.extra_latency)
          in
          attempt 0)
  | _ -> Scheduler.delay (sample_one_way t ~bytes)

let messages_sent t = t.messages

let bytes_sent t = t.bytes

let drops t = t.drops
