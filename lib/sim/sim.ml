(** Umbrella module of the [sim] library.

    [Sim] exposes the discrete-event scheduler operations directly
    ([Sim.run], [Sim.delay], ...) along with the supporting components as
    submodules ([Sim.Rng], [Sim.Stats], ...). *)

module Rng = Rng
module Event_queue = Event_queue
module Stats = Stats
module Metrics = Metrics
module Det = Det
module Resource = Resource
module Net = Net
include Scheduler
