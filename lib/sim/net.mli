(** Network model: message delays for a data-center LAN, plus per-link
    fault injection for chaos testing.

    A message delay is [one_way + per_byte * size + Exp(jitter)]. The
    model is deliberately simple — the experiments in the paper depend on
    round-trip counts and server-side service times far more than on
    wire-level detail.

    Faults are directional, keyed by [(src, dst)] host pairs, and only
    apply to transfers that declare their endpoints:

    - [drop]: each transmission is independently lost with this
      probability; the sender retransmits after a full RTO, so lossy
      links show up as latency spikes (bounded — see {!transfer}).
    - [extra_latency]: added verbatim to every delivery on the link.
    - [blocked]: a partition. Blocked links are reported by
      {!reachable} and enforced at protocol boundaries by the layers
      above (a coordinator refuses to start a minitransaction it cannot
      reach); an exchange already in flight still completes, which
      models Sinfonia's transaction-recovery protocol resolving
      in-doubt participants. *)

type t

val create :
  ?one_way:float ->
  ?per_byte:float ->
  ?jitter:float ->
  ?rto:float ->
  rng:Rng.t ->
  unit ->
  t
(** Defaults: [one_way] = 25 µs, [per_byte] = 1 ns (≈ 8 Gb/s effective),
    [jitter] mean = 5 µs, [rto] (retransmission timeout for dropped
    messages) = 1 ms. *)

val sample_one_way : t -> bytes:int -> float
(** Sample a one-way delay for a message of [bytes] bytes. *)

val transfer : ?src:int -> ?dst:int -> t -> bytes:int -> unit
(** Suspend the calling process for one sampled one-way delay. When both
    endpoints are given, the link's fault state applies: dropped
    transmissions each cost one RTO before the retransmit (at most 16
    retransmissions, then the message is assumed through), and
    [extra_latency] is added to the final delivery. Without endpoints
    the transfer is anonymous and never faulted. *)

(** {1 Fault injection} *)

val set_fault :
  t -> src:int -> dst:int -> ?drop:float -> ?extra_latency:float -> ?blocked:bool -> unit -> unit
(** Replace the fault state of the directional link [src -> dst].
    Omitted fields are benign; setting an all-benign fault clears the
    entry. Raises [Invalid_argument] if [drop] is outside [0, 1] or
    [extra_latency] is negative. *)

val clear_fault : t -> src:int -> dst:int -> unit

val set_fault_pair :
  t -> a:int -> b:int -> ?drop:float -> ?extra_latency:float -> ?blocked:bool -> unit -> unit
(** {!set_fault} in both directions of the [a <-> b] link — the natural
    shape for symmetric faults such as memnode-to-memnode mirror
    partitions and replica-lag injection, where a one-directional fault
    would let acks or votes leak around the failure. *)

val clear_fault_pair : t -> a:int -> b:int -> unit

val clear_all_faults : t -> unit

val reachable : t -> src:int -> dst:int -> bool
(** False iff the link [src -> dst] is currently [blocked]. *)

val active_faults : t -> int
(** Number of links with a non-benign fault installed. *)

(** {1 Accounting} *)

val messages_sent : t -> int
(** Total number of transmissions (including dropped ones), for
    reporting. *)

val bytes_sent : t -> int

val drops : t -> int
(** Total transmissions lost to injected [drop] faults. *)
