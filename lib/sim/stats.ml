module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }

  let incr t = t.n <- t.n + 1

  let add t k = t.n <- t.n + k

  let value t = t.n

  let reset t = t.n <- 0
end

module Hist = struct
  (* Buckets are geometric with ratio [gamma]; index 0 covers values up
     to [lo]. With gamma = 1.04, relative error per bucket is ~2% and
     covering 1e-9 .. 1e6 takes ~880 buckets. *)
  let lo = 1e-9

  let hi = 1e6

  let gamma = 1.04

  let log_gamma = log gamma

  let nbuckets = int_of_float (ceil (log (hi /. lo) /. log_gamma)) + 2

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () =
    { buckets = Array.make nbuckets 0; count = 0; sum = 0.0; minv = infinity; maxv = neg_infinity }

  let bucket_of value =
    if value <= lo then 0
    else if value >= hi then nbuckets - 1
    else
      let idx = 1 + int_of_float (log (value /. lo) /. log_gamma) in
      if idx >= nbuckets then nbuckets - 1 else idx

  (* Upper edge of bucket [i]: the largest value mapping into it. *)
  let value_of_bucket i = if i = 0 then lo else lo *. (gamma ** float_of_int i)

  let add t v =
    let v = if v < 0.0 then 0.0 else v in
    t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v

  let count t = t.count

  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let min t = if t.count = 0 then 0.0 else t.minv

  let max t = if t.count = 0 then 0.0 else t.maxv

  let quantile t q =
    if t.count = 0 then 0.0
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = int_of_float (ceil (q *. float_of_int t.count)) in
      let rank = if rank < 1 then 1 else rank in
      let acc = ref 0 in
      let found = ref (nbuckets - 1) in
      (try
         for i = 0 to nbuckets - 1 do
           acc := !acc + t.buckets.(i);
           if !acc >= rank then begin
             found := i;
             raise Exit
           end
         done
       with Exit -> ());
      let v = value_of_bucket !found in
      (* Clamp into the observed range so tiny histograms don't report a
         bucket edge above the true max. *)
      if v > t.maxv then t.maxv else if v < t.minv then t.minv else v
    end

  let percentile t p = quantile t (p /. 100.0)

  let p999 t = quantile t 0.999

  let merge_into ~dst src =
    for i = 0 to nbuckets - 1 do
      dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
    done;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum +. src.sum;
    if src.minv < dst.minv then dst.minv <- src.minv;
    if src.maxv > dst.maxv then dst.maxv <- src.maxv

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0;
    t.sum <- 0.0;
    t.minv <- infinity;
    t.maxv <- neg_infinity

  let pp_summary fmt t =
    if t.count = 0 then Format.fprintf fmt "n=0"
    else
      Format.fprintf fmt
        "n=%d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms p999=%.3fms max=%.3fms" t.count
        (mean t *. 1e3) (quantile t 0.5 *. 1e3) (quantile t 0.95 *. 1e3) (quantile t 0.99 *. 1e3)
        (quantile t 0.999 *. 1e3) (max t *. 1e3)
end

module Moments = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n

  let mean t = t.mean

  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end

module Series = struct
  type t = { width : float; mutable counts : int array; mutable last : int }

  let create ~width =
    if width <= 0.0 then invalid_arg "Series.create: width must be positive";
    { width; counts = Array.make 16 0; last = -1 }

  let ensure t i =
    if i >= Array.length t.counts then begin
      let capacity = Stdlib.max (i + 1) (2 * Array.length t.counts) in
      let bigger = Array.make capacity 0 in
      Array.blit t.counts 0 bigger 0 (Array.length t.counts);
      t.counts <- bigger
    end

  let add t ~time k =
    if time < 0.0 then invalid_arg "Series.add: negative time";
    let i = int_of_float (time /. t.width) in
    ensure t i;
    t.counts.(i) <- t.counts.(i) + k;
    if i > t.last then t.last <- i

  let bucket_count t = t.last + 1

  let buckets t =
    Array.init (t.last + 1) (fun i -> (float_of_int i *. t.width, t.counts.(i)))
end
