exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

(* CRC-32, IEEE 802.3 reflected polynomial 0xEDB88320. The table and the
   folding loop work in plain [int] arithmetic (the polynomial fits in 32
   bits, so the intermediate values do too); boxed [Int32] per-byte
   arithmetic was the dominant cost of framing a node. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32_fold crc get pos len =
  let table = Lazy.force crc_table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor get i) land 0xff) lxor (!crc lsr 8)
  done;
  !crc

let crc32_sub s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.crc32_sub: range out of bounds";
  0xFFFFFFFF land lnot (crc32_fold 0xFFFFFFFF (fun i -> Char.code (String.unsafe_get s i)) pos len)

let crc32 s = Int32.of_int (crc32_sub s 0 (String.length s))

(* FNV-1a 64-bit: the content stamp for slotted B-tree nodes. Cheap, has
   no alignment requirements, and — crucially for stamp-based cache
   revalidation — depends only on the hashed bytes, so two encodings of
   the same logical node always agree. *)
let fnv_offset_basis = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv1a64_fold h get pos len =
  let h = ref h in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (get i))) fnv_prime
  done;
  !h

let fnv1a64_sub s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.fnv1a64_sub: range out of bounds";
  fnv1a64_fold fnv_offset_basis (fun i -> Char.code (String.unsafe_get s i)) pos len

let fnv1a64 s = fnv1a64_sub s 0 (String.length s)

module Enc = struct
  (* A growable byte buffer like [Buffer.t], but with [reset] for reuse
     across encodings, in-place patching (version stamps are computed
     over the encoded content and written back into the header), and
     checksummed extraction in a single allocation. *)
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(initial_size = 256) () =
    { buf = Bytes.create (max 16 initial_size); len = 0 }

  let reset t = t.len <- 0

  let length t = t.len

  let to_string t = Bytes.sub_string t.buf 0 t.len

  let ensure t n =
    let needed = t.len + n in
    if needed > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while !cap < needed do
        cap := !cap * 2
      done;
      let buf = Bytes.create !cap in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end

  let u8 t v =
    if v < 0 || v > 0xff then invalid_arg "Codec.Enc.u8: out of range";
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr v);
    t.len <- t.len + 1

  let u16 t v =
    if v < 0 || v > 0xffff then invalid_arg "Codec.Enc.u16: out of range";
    ensure t 2;
    Bytes.set_uint16_le t.buf t.len v;
    t.len <- t.len + 2

  let u32 t v =
    if v < 0 || v > 0xffff_ffff then invalid_arg "Codec.Enc.u32: out of range";
    ensure t 4;
    Bytes.set_int32_le t.buf t.len (Int32.of_int v);
    t.len <- t.len + 4

  let i64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.len v;
    t.len <- t.len + 8

  let int_as_i64 t v = i64 t (Int64.of_int v)

  let rec varint t v =
    if v < 0 then invalid_arg "Codec.Enc.varint: negative"
    else if v < 0x80 then u8 t v
    else begin
      u8 t (0x80 lor (v land 0x7f));
      varint t (v lsr 7)
    end

  let bool t v = u8 t (if v then 1 else 0)

  let float t v = i64 t (Int64.bits_of_float v)

  let raw t s =
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let raw_sub t s pos len =
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Codec.Enc.raw_sub: range out of bounds";
    ensure t len;
    Bytes.blit_string s pos t.buf t.len len;
    t.len <- t.len + len

  let bytes t s =
    varint t (String.length s);
    raw t s

  let list t write items =
    varint t (List.length items);
    List.iter write items

  let array t write items =
    varint t (Array.length items);
    Array.iter write items

  let option t write = function
    | None -> bool t false
    | Some v ->
        bool t true;
        write v

  let patch_u16 t ~pos v =
    if v < 0 || v > 0xffff then invalid_arg "Codec.Enc.patch_u16: out of range";
    if pos < 0 || pos + 2 > t.len then invalid_arg "Codec.Enc.patch_u16: position out of bounds";
    Bytes.set_uint16_le t.buf pos v

  let patch_i64 t ~pos v =
    if pos < 0 || pos + 8 > t.len then invalid_arg "Codec.Enc.patch_i64: position out of bounds";
    Bytes.set_int64_le t.buf pos v

  let fnv1a64_from t ~pos =
    if pos < 0 || pos > t.len then invalid_arg "Codec.Enc.fnv1a64_from: position out of bounds";
    fnv1a64_fold fnv_offset_basis (fun i -> Char.code (Bytes.unsafe_get t.buf i)) pos (t.len - pos)

  let to_string_with_checksum t =
    (* One allocation for payload + trailer; the old idiom
       [with_checksum (to_string e)] copied the payload twice. *)
    let n = t.len in
    let out = Bytes.create (n + 4) in
    Bytes.blit t.buf 0 out 0 n;
    let crc =
      0xFFFFFFFF land lnot (crc32_fold 0xFFFFFFFF (fun i -> Char.code (Bytes.unsafe_get t.buf i)) 0 n)
    in
    Bytes.set_int32_le out n (Int32.of_int crc);
    Bytes.unsafe_to_string out
end

module Dec = struct
  type t = { src : string; mutable pos : int }

  let of_string ?(pos = 0) src = { src; pos }

  let pos t = t.pos

  let remaining t = String.length t.src - t.pos

  let at_end t = remaining t = 0

  let need t n =
    if remaining t < n then
      decode_error "Codec.Dec: need %d bytes at offset %d, only %d left" n t.pos (remaining t)

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = String.get_uint16_le t.src t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.src t.pos) land 0xffff_ffff in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    need t 8;
    let v = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let int_as_i64 t = Int64.to_int (i64 t)

  let varint t =
    let rec go shift acc =
      if shift > 62 then decode_error "Codec.Dec.varint: too long";
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | b -> decode_error "Codec.Dec.bool: invalid byte %d" b

  let float t = Int64.float_of_bits (i64 t)

  let raw t n =
    if n < 0 then decode_error "Codec.Dec.raw: negative length";
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let raw_view t n =
    if n < 0 then decode_error "Codec.Dec.raw_view: negative length";
    need t n;
    let span = (t.pos, n) in
    t.pos <- t.pos + n;
    span

  let bytes t =
    let n = varint t in
    raw t n

  let bytes_view t =
    let n = varint t in
    raw_view t n

  let list t read =
    let n = varint t in
    List.init n (fun _ -> read t)

  let array t read =
    let n = varint t in
    Array.init n (fun _ -> read t)

  let option t read = if bool t then Some (read t) else None
end

let with_checksum payload =
  let e = Enc.create ~initial_size:(String.length payload + 8) () in
  Enc.raw e payload;
  Enc.to_string_with_checksum e

let check_checksum framed =
  let n = String.length framed in
  if n < 4 then decode_error "Codec.check_checksum: too short";
  let payload = String.sub framed 0 (n - 4) in
  let d = Dec.of_string ~pos:(n - 4) framed in
  let stored = Dec.u32 d in
  let computed = crc32_sub framed 0 (n - 4) in
  if stored <> computed then
    decode_error "Codec.check_checksum: mismatch (stored %#x, computed %#x)" stored computed;
  payload

let verify_checksum_in_place s pos len =
  if len < 4 || pos < 0 || pos + len > String.length s then
    decode_error "Codec.verify_checksum_in_place: bad frame bounds";
  let d = Dec.of_string ~pos:(pos + len - 4) s in
  let stored = Dec.u32 d in
  let computed = crc32_sub s pos (len - 4) in
  if stored <> computed then
    decode_error "Codec.verify_checksum_in_place: mismatch (stored %#x, computed %#x)" stored
      computed
