(** Binary serialization used to marshal B-tree nodes and metadata into
    Sinfonia's byte-addressable storage.

    Encoders append to an internal buffer; decoders consume a string and
    fail with {!Decode_error} on malformed input. All multi-byte integers
    are little-endian. *)

exception Decode_error of string

(** Append-only encoder over a growable byte buffer. One encoder can be
    reused across encodings via {!Enc.reset}, which keeps the backing
    buffer — the node-write path allocates exactly the output string. *)
module Enc : sig
  type t

  val create : ?initial_size:int -> unit -> t

  val reset : t -> unit
  (** Empty the encoder, keeping its backing buffer for reuse. *)

  val to_string : t -> string
  val length : t -> int

  val u8 : t -> int -> unit
  (** Raises [Invalid_argument] unless in [\[0, 255\]]. *)

  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  (** Raises [Invalid_argument] unless in [\[0, 2^32)]. *)

  val i64 : t -> int64 -> unit
  val int_as_i64 : t -> int -> unit
  val varint : t -> int -> unit
  (** LEB128 for non-negative ints. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val bytes : t -> string -> unit
  (** Varint length prefix + raw bytes. *)

  val raw : t -> string -> unit
  (** Raw bytes, no length prefix. *)

  val raw_sub : t -> string -> int -> int -> unit
  (** [raw_sub t s pos len] appends [len] bytes of [s] starting at
      [pos], without materialising the substring. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Varint count prefix, then each element with the given writer. *)

  val array : t -> ('a -> unit) -> 'a array -> unit
  val option : t -> ('a -> unit) -> 'a option -> unit

  val patch_u16 : t -> pos:int -> int -> unit
  (** Overwrite 2 already-written bytes at [pos] (little-endian). *)

  val patch_i64 : t -> pos:int -> int64 -> unit
  (** Overwrite 8 already-written bytes at [pos] (little-endian). Used
      to stamp headers with values computed over the encoded body. *)

  val fnv1a64_from : t -> pos:int -> int64
  (** FNV-1a 64-bit hash of the encoded bytes from [pos] to the current
      end, without extracting them. *)

  val to_string_with_checksum : t -> string
  (** The encoded contents followed by a CRC-32 trailer over them, in a
      single allocation (no intermediate payload copy). The result
      round-trips through {!check_checksum} /
      {!verify_checksum_in_place}. *)
end

(** Sequential decoder over a string. *)
module Dec : sig
  type t

  val of_string : ?pos:int -> string -> t
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int_as_i64 : t -> int
  val varint : t -> int
  val bool : t -> bool
  val float : t -> float
  val bytes : t -> string
  val raw : t -> int -> string

  val raw_view : t -> int -> int * int
  (** [raw_view t n] consumes [n] bytes and returns their [(pos, len)]
      span in the underlying string — no substring allocation. *)

  val bytes_view : t -> int * int
  (** Varint length prefix, then the payload as a [(pos, len)] span. *)

  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val option : t -> (t -> 'a) -> 'a option
end

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 polynomial) of the whole string. *)

val crc32_sub : string -> int -> int -> int
(** [crc32_sub s pos len]: CRC-32 of a range, as a non-negative int in
    [\[0, 2^32)]. Raises [Invalid_argument] on out-of-bounds ranges. *)

val fnv1a64 : string -> int64
(** FNV-1a 64-bit hash of the whole string. *)

val fnv1a64_sub : string -> int -> int -> int64
(** FNV-1a 64-bit hash of a range. *)

val with_checksum : string -> string
(** Append a CRC-32 trailer to a payload. *)

val check_checksum : string -> string
(** Verify and strip the CRC-32 trailer; raises {!Decode_error} on
    mismatch or truncation. *)

val verify_checksum_in_place : string -> int -> int -> unit
(** [verify_checksum_in_place s pos len] treats [s.(pos .. pos+len)] as
    a checksummed frame (payload + 4-byte CRC trailer) and verifies it
    without copying; raises {!Decode_error} on mismatch. *)
