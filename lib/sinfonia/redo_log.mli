(** Per-address-space redo log (Sinfonia's participant log, Sec. 2.1 of
    the paper).

    Phase one appends [(tid, vote, write-set)] when a participant votes
    yes; phase two records the decision, applies and (once the replica
    image has the writes) truncates. The log models stable storage
    shared by a space's primary store and its replica store — it
    survives crashes of either host, so a restarted memnode comes back
    with in-doubt entries instead of a wiped lock table, and replica
    promotion replays the log forward instead of trusting the replica
    image to be current.

    Decision records double as Sinfonia's recovery "block" mark: once a
    tid is decided [Aborted] here, a late prepare for it must be
    refused ({!refused}), which is what makes the recovery
    coordinator's forced aborts race-free against a slow live
    coordinator. *)

type decision = Committed of int64  (** carries the commit stamp *) | Aborted

type entry = private {
  e_tid : int64;
  e_participants : int list;  (** every memnode space in the transaction *)
  e_writes : Mtx.write_item list;  (** this space's writes only *)
  e_logged_at : float;
  mutable e_stamp : int64;
  mutable e_state : [ `Prepared | `Committed ];
  mutable e_mirrored : bool;
  mutable e_reported : bool;
}

type t

val create : ?retention:float -> unit -> t
(** [retention] bounds how long decision records are kept (default 5
    simulated seconds; [infinity] keeps all). *)

val append : t -> tid:int64 -> participants:int list -> writes:Mtx.write_item list -> unit
(** Log a yes vote: called by phase-one prepare once locks are held and
    compares passed, before the vote is acknowledged. Idempotent per
    tid. *)

val voted : t -> tid:int64 -> bool
(** True iff a vote entry for [tid] exists (prepared or committed). *)

val entry : t -> tid:int64 -> entry option

val decision : t -> tid:int64 -> decision option

val refused : t -> tid:int64 -> bool
(** True iff [tid] was decided [Aborted] — a prepare arriving now must
    vote no. *)

val decide_commit : t -> tid:int64 -> stamp:int64 -> [ `Apply | `Skip ]
(** Record the commit decision. [`Apply]: the caller must apply the
    writes (normal path). [`Skip]: the transaction was already committed
    here (the recovery coordinator got there first) — the writes are in
    place and must not be re-applied over later commits. *)

val decide_abort : t -> tid:int64 -> unit
(** Record the abort decision and drop the vote entry. On a tid with no
    entry this is recovery's forced no-vote: the decision record makes
    {!refused} true for any prepare still in flight. A conflicting
    earlier commit decision is preserved and reported by
    {!decisions}. *)

val mark_mirrored : t -> tid:int64 -> unit
(** Note that a committed entry's writes are reflected in the replica
    image (or that there is no replica to lag), enabling truncation. *)

val apply_mirror : t -> tid:int64 -> heap:Heap.t -> unit
(** Normal mirror path: apply the committed entry's writes to the
    replica [heap], repair stamp order if a higher-stamped mirror
    landed first, mark mirrored and truncate. No-op if the entry is
    gone (already flushed by recovery). *)

val replay : ?min_age:float -> t -> heap:Heap.t -> int
(** Roll [heap] (a replica image, or a restored primary) forward to the
    log's committed tail, in stamp order; returns the number of
    un-mirrored commits recovered. With [min_age], only flush when
    every un-mirrored commit is at least that old (younger ones may
    still have a mirror in flight). *)

val in_doubt : ?min_age:float -> t -> entry list
(** Prepared entries — voted yes, decision unknown — oldest first,
    optionally at least [min_age] old. *)

val in_doubt_count : t -> int

val note_reported : entry -> bool
(** True the first time it is called on an entry (used to count each
    in-doubt transaction once in [recovery.in_doubt]). *)

val write_ranges : entry -> Lock_table.range list
(** Exclusive lock ranges covering the entry's writes, for re-locking
    in-doubt transactions after a crash or promotion. *)

val decisions : t -> (int64 * [ `Committed | `Aborted ]) list
(** Every retained decision, sorted; a tid with contradictory decisions
    contributes both records (the checker's atomicity rule flags it). *)

val appends : t -> int

val entry_count : t -> int
