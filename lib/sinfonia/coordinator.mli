(** Minitransaction execution protocol (the proxy-side Sinfonia
    library).

    Single-memnode minitransactions commit in one phase (one round
    trip); multi-memnode minitransactions use two-phase commit. A busy
    lock aborts the attempt and the coordinator retries transparently
    with randomized exponential backoff (Sec. 2.1). Blocking
    minitransactions instead wait at the memnode for locks, up to the
    configured threshold (Sec. 4.1). *)

type mode =
  | Normal  (** Abort-and-retry on busy locks. *)
  | Blocking  (** Wait at memnodes for locks, bounded by the config threshold. *)

val exec : Cluster.t -> ?client:int -> ?mode:mode -> Mtx.t -> Mtx.outcome
(** Execute a minitransaction to completion. [Busy] is only returned
    if the retry budget ([Config.max_retries]) is exhausted — callers
    treat it as an abort. Must run inside a simulation.

    [client] is the calling host's id for the network fault model: when
    given, request/response transfers are attributed to the
    (client, memnode) links, so injected per-link faults (drops, delay,
    partitions) apply. A blocked link is detected before each exchange
    and surfaces as [Unavailable { partitioned = true; _ }]; exchanges
    already in flight complete (Sinfonia's recovery protocol resolves
    in-doubt participants). Without [client], traffic is anonymous and
    never faulted.

    Committed outcomes carry a commit stamp drawn while all participant
    locks were held (after the last prepare, before the first commit),
    so stamp order is serialization order for conflicting
    minitransactions. *)

val round_trips : Mtx.t -> int
(** Round trips a successful execution takes (1 for single-memnode, 2
    for distributed), exposed for tests and cost reasoning. *)
