type store = {
  heap : Heap.t;
  mutable locks : Lock_table.t;
  mutable store_serving : int;
  space : int; (* the address space this store is an image of *)
  redo : Redo_log.t; (* stable storage, shared with the space's other image *)
}

let store_heap s = s.heap

let store_locks s = s.locks

let store_serving s = s.store_serving

let store_space s = s.space

let store_redo s = s.redo

exception Crashed

type t = {
  id : int;
  cpu : Sim.Resource.t;
  mutable primary_store : store;
  replicas : (int, store) Hashtbl.t;
  mutable crashed : bool;
  mutable crash_pending : bool;
  mutable serving : int;
  mutable epoch : int; (* bumped on every crash; in-flight ops compare *)
  mutable crash_hook : (unit -> unit) option;
  heap_capacity : int;
}

let make_store ?redo ~space capacity =
  let redo = match redo with Some r -> r | None -> Redo_log.create () in
  { heap = Heap.create ~capacity (); locks = Lock_table.create (); store_serving = 0; space; redo }

let create ?redo ~id ~cores ~heap_capacity () =
  {
    id;
    cpu = Sim.Resource.create ~name:(Printf.sprintf "memnode-%d" id) ~servers:cores ();
    primary_store = make_store ?redo ~space:id heap_capacity;
    replicas = Hashtbl.create 4;
    crashed = false;
    crash_pending = false;
    serving = 0;
    epoch = 0;
    crash_hook = None;
    heap_capacity;
  }

let id t = t.id

let cpu t = t.cpu

let primary t = t.primary_store

let crashed t = t.crashed

let crash_pending t = t.crash_pending

let available t = not (t.crashed || t.crash_pending)

let epoch t = t.epoch

let set_crash_hook t f = t.crash_hook <- Some f

let do_crash t =
  t.crashed <- true;
  t.crash_pending <- false;
  t.epoch <- t.epoch + 1;
  (* Volatile lock state dies with the node; the redo log does not. *)
  t.primary_store.locks <- Lock_table.create ();
  match t.crash_hook with None -> () | Some f -> f ()

(* Fail-stop at minitransaction boundaries: a node asked to crash while
   it is mid-exchange (locks possibly held, writes possibly half
   mirrored) first drains its in-flight requests. New requests are
   refused immediately ([available] is already false), so the drain
   window is bounded by one service time. Kept behind
   [Config.fail_stop_at_boundaries] for tests that depend on it. *)
let crash t = if t.serving = 0 then do_crash t else t.crash_pending <- true

(* True mid-request crash: lands immediately, even with requests in
   flight. In-flight participant operations observe the epoch bump at
   their next service-time boundary and raise {!Crashed}; whatever they
   had voted survives in the redo log for the recovery coordinator. *)
let crash_now t = if not t.crashed then do_crash t

let begin_serving t store =
  if t.crashed then raise Crashed;
  t.serving <- t.serving + 1;
  store.store_serving <- store.store_serving + 1

let end_serving t store =
  t.serving <- max 0 (t.serving - 1);
  store.store_serving <- max 0 (store.store_serving - 1);
  if t.serving = 0 && t.crash_pending then do_crash t

let check_alive t ~epoch = if t.crashed || t.epoch <> epoch then raise Crashed

(* Re-acquire exclusive locks over the write set of every in-doubt
   (voted, undecided) transaction in [store]'s log, under the
   transaction's own tid. Called after a crash wipes the volatile lock
   table: nothing may slip under an undecided transaction's writes
   before the recovery coordinator resolves it. *)
let relock_in_doubt store =
  List.iter
    (fun (e : Redo_log.entry) ->
      ignore (Lock_table.try_acquire store.locks ~owner:e.e_tid (Redo_log.write_ranges e)))
    (Redo_log.in_doubt store.redo)

let recover ?(broken = false) t ~from_replica =
  (* Roll the replica image forward first: committed-but-unmirrored redo
     entries are exactly the writes the replica missed. Skipping this
     ([broken] — the falsifiability hook) silently loses them. *)
  let replayed = if broken then 0 else Redo_log.replay t.primary_store.redo ~heap:from_replica.heap in
  Heap.restore t.primary_store.heap (Heap.snapshot from_replica.heap);
  t.primary_store.locks <- Lock_table.create ();
  relock_in_doubt t.primary_store;
  (* The replica store carried the in-doubt locks while it was serving;
     the restored primary holds them now. *)
  from_replica.locks <- Lock_table.create ();
  t.crashed <- false;
  t.crash_pending <- false;
  replayed

let add_replica t ~of_node ~heap_capacity ~redo =
  match Hashtbl.find_opt t.replicas of_node with
  | Some s -> s
  | None ->
      let s = make_store ~redo ~space:of_node heap_capacity in
      Hashtbl.add t.replicas of_node s;
      s

let replica t ~of_node = Hashtbl.find_opt t.replicas of_node

let recover_orphaned_locks t ~lease =
  let cutoff = Sim.now () -. lease in
  (* Sweep replicas in space order so orphan-release order (and the
     count any report prints) is deterministic per seed. *)
  let stores =
    t.primary_store :: List.map snd (Sim.Det.sorted_bindings t.replicas ~cmp:Int.compare)
  in
  List.fold_left
    (fun count store ->
      (* Owners with a logged vote are not orphans: their transaction is
         in doubt and belongs to the recovery coordinator, which will
         commit or abort it — releasing here could let a conflicting
         write slip under a transaction that later commits. *)
      let orphans =
        Lock_table.owners_older_than store.locks cutoff
        |> List.filter (fun owner -> not (Redo_log.voted store.redo ~tid:owner))
      in
      List.iter (fun owner -> Lock_table.release store.locks ~owner) orphans;
      count + List.length orphans)
    0 stores

let serve t ~cost = if cost > 0.0 then Sim.Resource.use t.cpu ~service_time:cost

(* -------------------------------------------------------------------- *)
(* Participant logic                                                     *)
(* -------------------------------------------------------------------- *)

type part = {
  p_compares : (int * Mtx.compare_item) list;
  p_reads : (int * Mtx.read_item) list;
  p_writes : Mtx.write_item list;
}

let part_of_mtx (mtx : Mtx.t) ~node =
  let on_node addr = addr.Address.node = node in
  {
    p_compares =
      List.mapi (fun i c -> (i, c)) mtx.compares
      |> List.filter (fun (_, c) -> on_node c.Mtx.c_addr);
    p_reads =
      List.mapi (fun i r -> (i, r)) mtx.reads
      |> List.filter (fun (_, r) -> on_node r.Mtx.r_addr);
    p_writes = List.filter (fun w -> on_node w.Mtx.w_addr) mtx.writes;
  }

let part_item_count p = List.length p.p_compares + List.length p.p_reads + List.length p.p_writes

let part_bytes p =
  List.fold_left (fun acc (_, c) -> acc + String.length c.Mtx.c_expected) 0 p.p_compares
  + List.fold_left (fun acc (_, r) -> acc + r.Mtx.r_len) 0 p.p_reads
  + List.fold_left (fun acc w -> acc + String.length w.Mtx.w_data) 0 p.p_writes
  + (Address.encoded_size * part_item_count p)

let part_cost (cfg : Config.t) p =
  cfg.svc_msg
  +. (cfg.svc_item *. float_of_int (part_item_count p))
  +. (cfg.svc_per_kb *. (float_of_int (part_bytes p) /. 1024.0))

let ranges_of_part p =
  let range_of_addr (addr : Address.t) len mode = { Lock_table.start = addr.off; len; mode } in
  List.map
    (fun (_, c) ->
      range_of_addr c.Mtx.c_addr (String.length c.Mtx.c_expected) Lock_table.Shared)
    p.p_compares
  @ List.map (fun (_, r) -> range_of_addr r.Mtx.r_addr r.Mtx.r_len Lock_table.Shared) p.p_reads
  @ List.map
      (fun w -> range_of_addr w.Mtx.w_addr (String.length w.Mtx.w_data) Lock_table.Exclusive)
      p.p_writes

type prepare_result =
  | Prepared of (int * string) list
  | Busy_locks
  | Compare_failed of int list

let evaluate_and_read store ~owner p =
  let failed =
    List.filter_map
      (fun (idx, c) ->
        if Heap.equal_at store.heap ~off:c.Mtx.c_addr.Address.off c.Mtx.c_expected then None
        else Some idx)
      p.p_compares
  in
  if failed <> [] then begin
    Lock_table.release store.locks ~owner;
    Compare_failed failed
  end
  else
    let reads =
      List.map
        (fun (idx, r) ->
          let slot = Heap.read store.heap ~off:r.Mtx.r_addr.Address.off ~len:r.Mtx.r_len in
          (* Trimmed reads reply with the slot's used prefix only; the
             full range was still locked and charged on the request
             side, but the response transfers just the live bytes. *)
          (idx, if r.Mtx.r_trim then Mtx.trim_slot slot else slot))
        p.p_reads
    in
    Prepared reads

let prepare store ~owner p =
  if Lock_table.try_acquire store.locks ~owner (ranges_of_part p) then
    evaluate_and_read store ~owner p
  else Busy_locks

let prepare_blocking store ~owner p ~timeout =
  if Lock_table.acquire_blocking store.locks ~owner (ranges_of_part p) ~timeout then
    evaluate_and_read store ~owner p
  else Busy_locks

let apply_writes store writes =
  List.iter (fun w -> Heap.write store.heap ~off:w.Mtx.w_addr.Address.off w.Mtx.w_data) writes

let commit store ~owner p =
  apply_writes store p.p_writes;
  Lock_table.release store.locks ~owner

let abort store ~owner = Lock_table.release store.locks ~owner

(* The commit stamp is drawn between a successful prepare and the
   commit, i.e. while this (single-participant) minitransaction holds
   every lock it will ever need — which is what makes stamp order a
   serialization order for conflicting minitransactions. *)
let finish_single store ~owner ~stamp p = function
  | Prepared _ as r ->
      let s = stamp () in
      commit store ~owner p;
      (r, Some s)
  | (Busy_locks | Compare_failed _) as r -> (r, None)

(* Coordinator-path variant: the 1PC commit goes through the redo log so
   a crash after the commit but before the write reaches the replica
   image cannot lose it (promotion replays the log). Stamp draw, log
   append, decision and apply happen with no scheduler yield between
   them, so the entry is never observable in the Prepared state. *)
let finish_single_logged store ~owner ~stamp p = function
  | Prepared _ as r ->
      let s = stamp () in
      Redo_log.append store.redo ~tid:owner ~participants:[ store.space ] ~writes:p.p_writes;
      (match Redo_log.decide_commit store.redo ~tid:owner ~stamp:s with
      | `Apply -> apply_writes store p.p_writes
      | `Skip -> ());
      Lock_table.release store.locks ~owner;
      (r, Some s)
  | (Busy_locks | Compare_failed _) as r -> (r, None)

let execute_single store ~owner p =
  fst (finish_single store ~owner ~stamp:(fun () -> 0L) p (prepare store ~owner p))

let execute_single_blocking store ~owner p ~timeout =
  fst (finish_single store ~owner ~stamp:(fun () -> 0L) p (prepare_blocking store ~owner p ~timeout))

(* Timed variants: a small reception cost decides lock acquisition; the
   bulk of the service time is spent holding the locks. Each service
   window is followed by an epoch check: a mid-request crash
   ([crash_now]) bumps the epoch and the operation raises {!Crashed} at
   its next boundary instead of completing against wiped state. *)
let reception_cost cost = Float.min cost 2e-6

(* Evaluate under held locks, then vote. The refusal re-check and the
   vote append are adjacent (no scheduler yield between them): a
   recovery force-abort either lands before — and the prepare votes no —
   or after, in which case it sees the vote and resolves normally. *)
let finish_prepare store ~owner ~participants p =
  match evaluate_and_read store ~owner p with
  | Prepared _ as r ->
      if Redo_log.refused store.redo ~tid:owner then begin
        (* Recovery force-aborted this tid while we held the CPU or
           waited for locks; voting yes now would contradict the
           recorded decision. *)
        Lock_table.release store.locks ~owner;
        Busy_locks
      end
      else begin
        (match participants with
        | Some ps -> Redo_log.append store.redo ~tid:owner ~participants:ps ~writes:p.p_writes
        | None -> ());
        r
      end
  | r -> r

let prepare_timed t store ~owner ?participants p ~cost =
  let ep = t.epoch in
  serve t ~cost:(reception_cost cost);
  check_alive t ~epoch:ep;
  if Redo_log.refused store.redo ~tid:owner then Busy_locks
  else if Lock_table.try_acquire store.locks ~owner (ranges_of_part p) then begin
    serve t ~cost:(cost -. reception_cost cost);
    check_alive t ~epoch:ep;
    finish_prepare store ~owner ~participants p
  end
  else Busy_locks

let prepare_blocking_timed t store ~owner ?participants p ~cost ~timeout =
  let ep = t.epoch in
  serve t ~cost:(reception_cost cost);
  check_alive t ~epoch:ep;
  if Redo_log.refused store.redo ~tid:owner then Busy_locks
  else if Lock_table.acquire_blocking store.locks ~owner (ranges_of_part p) ~timeout then begin
    check_alive t ~epoch:ep;
    serve t ~cost:(cost -. reception_cost cost);
    check_alive t ~epoch:ep;
    finish_prepare store ~owner ~participants p
  end
  else Busy_locks

let commit_timed t store ~owner p ~stamp ~cost =
  let ep = t.epoch in
  serve t ~cost;
  check_alive t ~epoch:ep;
  match Redo_log.decide_commit store.redo ~tid:owner ~stamp with
  | `Apply -> commit store ~owner p
  | `Skip ->
      (* The recovery coordinator resolved this transaction first; the
         writes are already in place (possibly under later commits). *)
      Lock_table.release store.locks ~owner

let abort_timed t store ~owner ~cost =
  let ep = t.epoch in
  serve t ~cost;
  check_alive t ~epoch:ep;
  Redo_log.decide_abort store.redo ~tid:owner;
  Lock_table.release store.locks ~owner

let execute_single_timed t store ~owner ~stamp p ~cost =
  finish_single_logged store ~owner ~stamp p (prepare_timed t store ~owner p ~cost)

let execute_single_blocking_timed t store ~owner ~stamp p ~cost ~timeout =
  finish_single_logged store ~owner ~stamp p (prepare_blocking_timed t store ~owner p ~cost ~timeout)
