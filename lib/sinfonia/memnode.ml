type store = { heap : Heap.t; mutable locks : Lock_table.t; mutable store_serving : int }

let store_heap s = s.heap

let store_locks s = s.locks

let store_serving s = s.store_serving

type t = {
  id : int;
  cpu : Sim.Resource.t;
  mutable primary_store : store;
  replicas : (int, store) Hashtbl.t;
  mutable crashed : bool;
  mutable crash_pending : bool;
  mutable serving : int;
  heap_capacity : int;
}

let make_store capacity =
  { heap = Heap.create ~capacity (); locks = Lock_table.create (); store_serving = 0 }

let create ~id ~cores ~heap_capacity =
  {
    id;
    cpu = Sim.Resource.create ~name:(Printf.sprintf "memnode-%d" id) ~servers:cores ();
    primary_store = make_store heap_capacity;
    replicas = Hashtbl.create 4;
    crashed = false;
    crash_pending = false;
    serving = 0;
    heap_capacity;
  }

let id t = t.id

let cpu t = t.cpu

let primary t = t.primary_store

let crashed t = t.crashed

let crash_pending t = t.crash_pending

let available t = not (t.crashed || t.crash_pending)

let do_crash t =
  t.crashed <- true;
  t.crash_pending <- false;
  (* Volatile lock state dies with the node. *)
  t.primary_store.locks <- Lock_table.create ()

(* Fail-stop at minitransaction boundaries: a node asked to crash while
   it is mid-exchange (locks possibly held, writes possibly half
   mirrored) first drains its in-flight requests. New requests are
   refused immediately ([available] is already false), so the drain
   window is bounded by one service time. This is what lets the
   consistency checker treat every committed minitransaction as either
   fully applied or not applied at all. *)
let crash t = if t.serving = 0 then do_crash t else t.crash_pending <- true

let begin_serving t store =
  if t.crashed then invalid_arg "Memnode.begin_serving: node is crashed";
  t.serving <- t.serving + 1;
  store.store_serving <- store.store_serving + 1

let end_serving t store =
  t.serving <- t.serving - 1;
  store.store_serving <- store.store_serving - 1;
  if t.serving = 0 && t.crash_pending then do_crash t

let recover t ~from_replica =
  Heap.restore t.primary_store.heap (Heap.snapshot from_replica.heap);
  t.primary_store.locks <- Lock_table.create ();
  t.crashed <- false;
  t.crash_pending <- false

let add_replica t ~of_node ~heap_capacity =
  match Hashtbl.find_opt t.replicas of_node with
  | Some s -> s
  | None ->
      let s = make_store heap_capacity in
      Hashtbl.add t.replicas of_node s;
      s

let replica t ~of_node = Hashtbl.find_opt t.replicas of_node

let recover_orphaned_locks t ~lease =
  let cutoff = Sim.now () -. lease in
  let stores = t.primary_store :: Hashtbl.fold (fun _ s acc -> s :: acc) t.replicas [] in
  List.fold_left
    (fun count store ->
      let orphans = Lock_table.owners_older_than store.locks cutoff in
      List.iter (fun owner -> Lock_table.release store.locks ~owner) orphans;
      count + List.length orphans)
    0 stores

let serve t ~cost = if cost > 0.0 then Sim.Resource.use t.cpu ~service_time:cost

(* -------------------------------------------------------------------- *)
(* Participant logic                                                     *)
(* -------------------------------------------------------------------- *)

type part = {
  p_compares : (int * Mtx.compare_item) list;
  p_reads : (int * Mtx.read_item) list;
  p_writes : Mtx.write_item list;
}

let part_of_mtx (mtx : Mtx.t) ~node =
  let on_node addr = addr.Address.node = node in
  {
    p_compares =
      List.mapi (fun i c -> (i, c)) mtx.compares
      |> List.filter (fun (_, c) -> on_node c.Mtx.c_addr);
    p_reads =
      List.mapi (fun i r -> (i, r)) mtx.reads
      |> List.filter (fun (_, r) -> on_node r.Mtx.r_addr);
    p_writes = List.filter (fun w -> on_node w.Mtx.w_addr) mtx.writes;
  }

let part_item_count p = List.length p.p_compares + List.length p.p_reads + List.length p.p_writes

let part_bytes p =
  List.fold_left (fun acc (_, c) -> acc + String.length c.Mtx.c_expected) 0 p.p_compares
  + List.fold_left (fun acc (_, r) -> acc + r.Mtx.r_len) 0 p.p_reads
  + List.fold_left (fun acc w -> acc + String.length w.Mtx.w_data) 0 p.p_writes
  + (Address.encoded_size * part_item_count p)

let part_cost (cfg : Config.t) p =
  cfg.svc_msg
  +. (cfg.svc_item *. float_of_int (part_item_count p))
  +. (cfg.svc_per_kb *. (float_of_int (part_bytes p) /. 1024.0))

let ranges_of_part p =
  let range_of_addr (addr : Address.t) len mode = { Lock_table.start = addr.off; len; mode } in
  List.map
    (fun (_, c) ->
      range_of_addr c.Mtx.c_addr (String.length c.Mtx.c_expected) Lock_table.Shared)
    p.p_compares
  @ List.map (fun (_, r) -> range_of_addr r.Mtx.r_addr r.Mtx.r_len Lock_table.Shared) p.p_reads
  @ List.map
      (fun w -> range_of_addr w.Mtx.w_addr (String.length w.Mtx.w_data) Lock_table.Exclusive)
      p.p_writes

type prepare_result =
  | Prepared of (int * string) list
  | Busy_locks
  | Compare_failed of int list

let evaluate_and_read store ~owner p =
  let failed =
    List.filter_map
      (fun (idx, c) ->
        if Heap.equal_at store.heap ~off:c.Mtx.c_addr.Address.off c.Mtx.c_expected then None
        else Some idx)
      p.p_compares
  in
  if failed <> [] then begin
    Lock_table.release store.locks ~owner;
    Compare_failed failed
  end
  else
    let reads =
      List.map
        (fun (idx, r) -> (idx, Heap.read store.heap ~off:r.Mtx.r_addr.Address.off ~len:r.Mtx.r_len))
        p.p_reads
    in
    Prepared reads

let prepare store ~owner p =
  if Lock_table.try_acquire store.locks ~owner (ranges_of_part p) then
    evaluate_and_read store ~owner p
  else Busy_locks

let prepare_blocking store ~owner p ~timeout =
  if Lock_table.acquire_blocking store.locks ~owner (ranges_of_part p) ~timeout then
    evaluate_and_read store ~owner p
  else Busy_locks

let apply_writes store writes =
  List.iter (fun w -> Heap.write store.heap ~off:w.Mtx.w_addr.Address.off w.Mtx.w_data) writes

let commit store ~owner p =
  apply_writes store p.p_writes;
  Lock_table.release store.locks ~owner

let abort store ~owner = Lock_table.release store.locks ~owner

(* The commit stamp is drawn between a successful prepare and the
   commit, i.e. while this (single-participant) minitransaction holds
   every lock it will ever need — which is what makes stamp order a
   serialization order for conflicting minitransactions. *)
let finish_single store ~owner ~stamp p = function
  | Prepared _ as r ->
      let s = stamp () in
      commit store ~owner p;
      (r, Some s)
  | (Busy_locks | Compare_failed _) as r -> (r, None)

let execute_single store ~owner p =
  fst (finish_single store ~owner ~stamp:(fun () -> 0L) p (prepare store ~owner p))

let execute_single_blocking store ~owner p ~timeout =
  fst (finish_single store ~owner ~stamp:(fun () -> 0L) p (prepare_blocking store ~owner p ~timeout))

(* Timed variants: a small reception cost decides lock acquisition; the
   bulk of the service time is spent holding the locks. *)
let reception_cost cost = Float.min cost 2e-6

let prepare_timed t store ~owner p ~cost =
  serve t ~cost:(reception_cost cost);
  if Lock_table.try_acquire store.locks ~owner (ranges_of_part p) then begin
    serve t ~cost:(cost -. reception_cost cost);
    evaluate_and_read store ~owner p
  end
  else Busy_locks

let prepare_blocking_timed t store ~owner p ~cost ~timeout =
  serve t ~cost:(reception_cost cost);
  if Lock_table.acquire_blocking store.locks ~owner (ranges_of_part p) ~timeout then begin
    serve t ~cost:(cost -. reception_cost cost);
    evaluate_and_read store ~owner p
  end
  else Busy_locks

let commit_timed t store ~owner p ~cost =
  serve t ~cost;
  commit store ~owner p

let abort_timed t store ~owner ~cost =
  serve t ~cost;
  abort store ~owner

let execute_single_timed t store ~owner ~stamp p ~cost =
  finish_single store ~owner ~stamp p (prepare_timed t store ~owner p ~cost)

let execute_single_blocking_timed t store ~owner ~stamp p ~cost ~timeout =
  finish_single store ~owner ~stamp p (prepare_blocking_timed t store ~owner p ~cost ~timeout)
