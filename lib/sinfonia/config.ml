type t = {
  memnode_cores : int;
  heap_capacity : int;
  replication : bool;
  net_one_way : float;
  net_per_byte : float;
  net_jitter : float;
  svc_msg : float;
  svc_item : float;
  svc_per_kb : float;
  backup_factor : float;
  blocking_timeout : float;
  retry_backoff : float;
  retry_backoff_max : float;
  max_retries : int;
  fail_stop_at_boundaries : bool;
  in_doubt_grace : float;
  decision_retention : float;
  broken_recovery : bool;
}

let default =
  {
    memnode_cores = 2;
    heap_capacity = 1 lsl 30;
    replication = true;
    net_one_way = 25e-6;
    net_per_byte = 1e-9;
    net_jitter = 5e-6;
    svc_msg = 4e-6;
    svc_item = 0.6e-6;
    svc_per_kb = 1.2e-6;
    backup_factor = 0.6;
    blocking_timeout = 20e-3;
    retry_backoff = 50e-6;
    retry_backoff_max = 5e-3;
    max_retries = 10_000;
    fail_stop_at_boundaries = true;
    in_doubt_grace = 0.25;
    decision_retention = 5.0;
    broken_recovery = false;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>memnode_cores=%d replication=%b net_one_way=%.1fus svc_msg=%.1fus svc_item=%.2fus \
     svc_per_kb=%.2fus blocking_timeout=%.1fms fail_stop_at_boundaries=%b in_doubt_grace=%.0fms@]"
    t.memnode_cores t.replication (t.net_one_way *. 1e6) (t.svc_msg *. 1e6) (t.svc_item *. 1e6)
    (t.svc_per_kb *. 1e6)
    (t.blocking_timeout *. 1e3)
    t.fail_stop_at_boundaries
    (t.in_doubt_grace *. 1e3)
