(* Per-address-space redo log (Sinfonia Sec. 2.1): a participant logs
   its yes vote together with the minitransaction's write set before
   acknowledging phase one, and logs the decision in phase two. The log
   models stable storage shared by a space's primary store and its
   replica store: it survives crashes of either host, which is what lets
   a restarted memnode come back with in-doubt entries instead of a
   wiped lock table, and lets replica promotion roll the replica image
   forward instead of assuming it is current. *)

type decision = Committed of int64 | Aborted

type entry = {
  e_tid : int64;
  e_participants : int list;
  e_writes : Mtx.write_item list;
  e_logged_at : float;
  mutable e_stamp : int64; (* meaningful once e_state = `Committed *)
  mutable e_state : [ `Prepared | `Committed ];
  mutable e_mirrored : bool; (* writes reflected in the replica image *)
  mutable e_reported : bool; (* counted once as in-doubt by recovery *)
}

type t = {
  mutable entries : entry list; (* append order, oldest first; small *)
  decided : (int64, decision) Hashtbl.t;
  decided_order : (float * int64) Queue.t;
  mutable conflicts : int64 list; (* tids with contradictory decisions *)
  retention : float;
  mutable watermark : int64; (* highest stamp applied to the replica image *)
  mutable appended : int;
}

let create ?(retention = 5.0) () =
  {
    entries = [];
    decided = Hashtbl.create 64;
    decided_order = Queue.create ();
    conflicts = [];
    retention;
    watermark = 0L;
    appended = 0;
  }

let now () = if Sim.inside () then Sim.now () else 0.0

let find t ~tid = List.find_opt (fun e -> Int64.equal e.e_tid tid) t.entries

let entry = find

let voted t ~tid = find t ~tid <> None

let decision t ~tid = Hashtbl.find_opt t.decided tid

let refused t ~tid = match decision t ~tid with Some Aborted -> true | _ -> false

let prune_decisions t =
  if t.retention < infinity then begin
    let cutoff = now () -. t.retention in
    let rec drain () =
      match Queue.peek_opt t.decided_order with
      | Some (at, tid) when at < cutoff ->
          ignore (Queue.pop t.decided_order);
          Hashtbl.remove t.decided tid;
          drain ()
      | _ -> ()
    in
    drain ()
  end

let record_decision t ~tid d =
  Hashtbl.replace t.decided tid d;
  Queue.push (now (), tid) t.decided_order;
  prune_decisions t

let append t ~tid ~participants ~writes =
  if not (voted t ~tid) then begin
    t.appended <- t.appended + 1;
    t.entries <-
      t.entries
      @ [
          {
            e_tid = tid;
            e_participants = participants;
            e_writes = writes;
            e_logged_at = now ();
            e_stamp = -1L;
            e_state = `Prepared;
            e_mirrored = false;
            e_reported = false;
          };
        ]
  end

let appends t = t.appended

let committed_in_order t =
  List.filter (fun e -> e.e_state = `Committed) t.entries
  |> List.sort (fun a b -> Int64.compare a.e_stamp b.e_stamp)

(* Truncate committed entries once their writes are safe in the replica
   image — but only as a contiguous stamp-prefix of the committed set.
   Keeping every committed entry above the lowest un-mirrored stamp is
   what lets {!replay} reproduce stamp order on the replica even when
   mirrors completed out of order. *)
let gc t =
  let dead = Hashtbl.create 8 in
  let rec prefix = function
    | e :: rest when e.e_mirrored ->
        Hashtbl.replace dead e.e_tid ();
        prefix rest
    | _ -> ()
  in
  prefix (committed_in_order t);
  if Hashtbl.length dead > 0 then
    t.entries <- List.filter (fun e -> not (Hashtbl.mem dead e.e_tid)) t.entries

let mark_mirrored t ~tid =
  match find t ~tid with
  | Some e when e.e_state = `Committed ->
      e.e_mirrored <- true;
      if Int64.compare e.e_stamp t.watermark > 0 then t.watermark <- e.e_stamp;
      gc t
  | _ -> ()

let decide_commit t ~tid ~stamp =
  match decision t ~tid with
  | Some (Committed _) ->
      (* Already resolved (by the recovery coordinator); the writes are
         applied, do not apply them again over later commits. *)
      `Skip
  | existing ->
      (if existing = Some Aborted then t.conflicts <- tid :: t.conflicts);
      record_decision t ~tid (Committed stamp);
      (match find t ~tid with
      | Some e ->
          e.e_state <- `Committed;
          e.e_stamp <- stamp;
          (* Nothing to mirror: the entry holds no writes. *)
          if e.e_writes = [] then mark_mirrored t ~tid
      | None -> ());
      `Apply

let decide_abort t ~tid =
  match decision t ~tid with
  | Some (Committed _) -> t.conflicts <- tid :: t.conflicts
  | _ ->
      record_decision t ~tid Aborted;
      t.entries <- List.filter (fun e -> not (Int64.equal e.e_tid tid)) t.entries

let in_doubt ?(min_age = 0.0) t =
  let cutoff = now () -. min_age in
  List.filter (fun e -> e.e_state = `Prepared && e.e_logged_at <= cutoff) t.entries

let in_doubt_count t = List.length (in_doubt t)

let note_reported e =
  if e.e_reported then false
  else begin
    e.e_reported <- true;
    true
  end

let apply_entry heap e =
  List.iter (fun w -> Heap.write heap ~off:w.Mtx.w_addr.Address.off w.Mtx.w_data) e.e_writes

(* Apply one mirrored commit to the replica image. If a higher-stamped
   commit already reached the image (out-of-order mirror completion on a
   lossy link), reapply the retained entries above it so the image ends
   in stamp order — they are guaranteed retained by {!gc}'s
   contiguous-prefix rule. *)
let apply_mirror t ~tid ~heap =
  match find t ~tid with
  | Some e when e.e_state = `Committed ->
      apply_entry heap e;
      if Int64.compare t.watermark e.e_stamp > 0 then
        List.iter
          (fun e' ->
            if e'.e_mirrored && Int64.compare e'.e_stamp e.e_stamp > 0 then apply_entry heap e')
          (committed_in_order t);
      mark_mirrored t ~tid
  | _ -> ()

(* Roll a heap image forward to the log's committed tail: apply every
   retained committed entry in stamp order (idempotent — writes are
   absolute), mark them mirrored and truncate. Returns how many
   previously un-mirrored commits were recovered. With [min_age] set,
   only flush when every un-mirrored commit is at least that old (a
   younger one may still have a mirror in flight; replaying under it
   could reorder against that mirror's eventual arrival). *)
let replay ?(min_age = 0.0) t ~heap =
  let committed = committed_in_order t in
  let unmirrored = List.filter (fun e -> not e.e_mirrored) committed in
  let cutoff = now () -. min_age in
  if unmirrored = [] then 0
  else if min_age > 0.0 && List.exists (fun e -> e.e_logged_at > cutoff) unmirrored then 0
  else begin
    List.iter
      (fun e ->
        apply_entry heap e;
        e.e_mirrored <- true;
        if Int64.compare e.e_stamp t.watermark > 0 then t.watermark <- e.e_stamp)
      committed;
    gc t;
    List.length unmirrored
  end

let write_ranges e =
  List.map
    (fun w ->
      {
        Lock_table.start = w.Mtx.w_addr.Address.off;
        len = String.length w.Mtx.w_data;
        mode = Lock_table.Exclusive;
      })
    e.e_writes

(* Every decision this log knows of, for the checker's 2PC-atomicity
   rule. A tid with contradictory decisions contributes both records. *)
let decisions t =
  let base =
    (* Key-sorted so the checker's 2PC report is identical across runs
       of the same seed. *)
    Sim.Det.sorted_bindings t.decided ~cmp:Int64.compare
    |> List.map (fun (tid, d) ->
           (tid, match d with Committed _ -> `Committed | Aborted -> `Aborted))
  in
  let conflicting =
    List.map
      (fun tid ->
        match Hashtbl.find_opt t.decided tid with
        | Some (Committed _) -> (tid, `Aborted)
        | _ -> (tid, `Committed))
      (List.sort_uniq Int64.compare t.conflicts)
  in
  List.sort compare (base @ conflicting)

let entry_count t = List.length t.entries
