(* The in-doubt resolver: Sinfonia's recovery coordinator (Sec. 2.3 of
   the paper) for transactions whose participant voted yes but whose
   coordinator went silent — typically because the participant crashed
   mid-2PC and restarted with the vote still in its redo log.

   The resolution rule is the classic presumed-abort one, made race-free
   against a live coordinator by two invariants shared with {!Memnode}
   and {!Redo_log}:

   - Recovery only aborts a transaction after recording an [Aborted]
     decision at a participant that has NOT voted ({!Redo_log.refused});
     a prepare arriving there later must vote no, so the live
     coordinator can never assemble the all-yes it needs to commit.
   - The live coordinator only commits when every participant voted
     yes, and {!Redo_log.decide_commit} deduplicates whoever gets to a
     participant second. Recovery commits either with the stamp found in
     some participant's decision record, or — when no decision exists
     anywhere — with a fresh stamp, which is safe because every write
     range involved is still locked under the transaction's tid. *)

type env = {
  n_spaces : int;
  serving : int -> (Memnode.t * Memnode.store) option;
      (** The node/store currently serving a space, [None] if the space
          is entirely down (or mid-drain). *)
  reachable : src:int -> dst:int -> bool;
  transfer : src:int -> dst:int -> bytes:int -> unit;
  take_stamp : unit -> int64;
  grace : float;  (** Minimum in-doubt age before resolution. *)
  obs : Obs.t;
}

let poll_bytes = 96

(* What one round-trip to a participant reveals about [tid] there. *)
type probe = Unreachable | Voted | Not_voted | Decided of Redo_log.decision

let probe env ~from ~tid p =
  match env.serving p with
  | None -> Unreachable
  | Some (mn, store) ->
      let host = Memnode.id mn in
      if host <> from && not (env.reachable ~src:from ~dst:host && env.reachable ~src:host ~dst:from)
      then Unreachable
      else begin
        if host <> from then begin
          env.transfer ~src:from ~dst:host ~bytes:poll_bytes;
          env.transfer ~src:host ~dst:from ~bytes:poll_bytes
        end;
        (* The serving store may have changed while the poll was in
           flight; answer from whoever serves the space now. *)
        match env.serving p with
        | None -> Unreachable
        | Some (_, store') ->
            let redo = Memnode.store_redo store' in
            ignore store;
            (match Redo_log.decision redo ~tid with
            | Some d -> Decided d
            | None -> if Redo_log.voted redo ~tid then Voted else Not_voted)
      end

(* Drive the commit of [tid] at participant [p]: record the decision,
   apply the logged writes, release the tid's locks. [`Skip] means the
   other side of the race (live coordinator or an earlier sweep) already
   applied them. *)
let commit_at env ~tid ~stamp p =
  match env.serving p with
  | None -> ()
  | Some (mn, store) -> (
      let redo = Memnode.store_redo store in
      match Redo_log.entry redo ~tid with
      | None -> () (* decided and already flushed here *)
      | Some e -> (
          match Redo_log.decide_commit redo ~tid ~stamp with
          | `Apply ->
              Memnode.apply_writes store e.Redo_log.e_writes;
              Lock_table.release (Memnode.store_locks store) ~owner:tid;
              (* Serving from the replica: the only live image now has
                 the writes, so the entry needs no further mirror. *)
              if Memnode.store_space store <> Memnode.id mn then
                Redo_log.mark_mirrored redo ~tid
          | `Skip -> Lock_table.release (Memnode.store_locks store) ~owner:tid))

let abort_at env ~tid p =
  match env.serving p with
  | None -> ()
  | Some (_, store) ->
      Redo_log.decide_abort (Memnode.store_redo store) ~tid;
      Lock_table.release (Memnode.store_locks store) ~owner:tid

(* Record the blocking [Aborted] decision at one participant that has
   not voted. The no-vote re-check and the decision record are adjacent
   (no scheduler yield), so either the refusal lands before any vote —
   and blocks it — or the vote is seen here and we defer. *)
let place_refusal env ~tid unvoted =
  let rec go = function
    | [] -> false
    | p :: rest -> (
        match env.serving p with
        | None -> go rest
        | Some (_, store) ->
            let redo = Memnode.store_redo store in
            if Redo_log.voted redo ~tid then false
            else begin
              Redo_log.decide_abort redo ~tid;
              true
            end)
  in
  go unvoted

let resolve env ~from (e : Redo_log.entry) =
  let tid = e.Redo_log.e_tid in
  let probes = List.map (fun p -> (p, probe env ~from ~tid p)) e.Redo_log.e_participants in
  let committed_stamp =
    List.find_map (function _, Decided (Redo_log.Committed s) -> Some s | _ -> None) probes
  in
  let aborted = List.exists (function _, Decided Redo_log.Aborted -> true | _ -> false) probes in
  let any_unreachable = List.exists (function _, Unreachable -> true | _ -> false) probes in
  let unvoted = List.filter_map (function p, Not_voted -> Some p | _ -> None) probes in
  match committed_stamp with
  | Some stamp ->
      (* Some participant saw the commit decision; finish it everywhere
         we can reach. *)
      List.iter (fun (p, pr) -> if pr <> Unreachable then commit_at env ~tid ~stamp p) probes;
      `Commit
  | None ->
      if aborted then begin
        List.iter (fun (p, pr) -> if pr <> Unreachable then abort_at env ~tid p) probes;
        `Abort
      end
      else if unvoted <> [] then
        (* Some reachable participant never voted: the transaction
           cannot have committed. Block its commit path first, then
           release the voters. Unreachable participants pick the
           decision up from the others when they return. *)
        if place_refusal env ~tid unvoted then begin
          List.iter
            (fun (p, pr) -> if pr = Voted || pr = Not_voted then abort_at env ~tid p)
            probes;
          `Abort
        end
        else `Defer (* a vote landed under us; re-evaluate next sweep *)
      else if any_unreachable then
        (* Every reachable participant voted yes but some participant
           cannot be polled: its vote (or a recorded decision) could go
           either way. Block — Sinfonia recovers such transactions only
           once the participant is back. *)
        `Defer
      else begin
        (* All participants voted yes and none saw a decision: commit.
           A fresh stamp is safe — the write ranges are still locked
           under [tid] everywhere, so nothing serialized between the
           coordinator's stamp draw and now conflicts with them. *)
        let stamp = env.take_stamp () in
        List.iter (fun (p, _) -> commit_at env ~tid ~stamp p) probes;
        `Commit
      end

let sweep env =
  let stats = Obs.recovery env.obs in
  Obs.with_span env.obs Obs.Span.Recovery_sweep (fun () ->
      for s = 0 to env.n_spaces - 1 do
        match env.serving s with
        | None -> ()
        | Some (mn, store) ->
            let from = Memnode.id mn in
            let redo = Memnode.store_redo store in
            List.iter
              (fun (e : Redo_log.entry) ->
                (* An earlier resolution this sweep (shared participant)
                   may have settled this entry already. *)
                if e.Redo_log.e_state = `Prepared && Redo_log.decision redo ~tid:e.Redo_log.e_tid = None
                then begin
                  if Redo_log.note_reported e then Obs.Counter.incr stats.Obs.in_doubt_found;
                  match resolve env ~from e with
                  | `Commit -> Obs.Counter.incr stats.Obs.resolved_commit
                  | `Abort -> Obs.Counter.incr stats.Obs.resolved_abort
                  | `Defer -> ()
                end)
              (Redo_log.in_doubt ~min_age:env.grace redo)
      done)
