type compare_item = { c_addr : Address.t; c_expected : string }

type read_item = { r_addr : Address.t; r_len : int; r_trim : bool }

type write_item = { w_addr : Address.t; w_data : string }

type t = {
  compares : compare_item list;
  reads : read_item list;
  writes : write_item list;
}

let empty = { compares = []; reads = []; writes = [] }

let make ?(compares = []) ?(reads = []) ?(writes = []) () = { compares; reads; writes }

let compare_at addr expected = { c_addr = addr; c_expected = expected }

let read_at ?(trim = false) addr len =
  if len <= 0 then invalid_arg "Mtx.read_at: length must be positive";
  { r_addr = addr; r_len = len; r_trim = trim }

(* Used prefix of an object slot: the 12-byte header (i64 sequence
   number, i32 payload length) plus the payload, without the zero
   padding out to the slot size. An insane length field (corruption, or
   bytes that are not an object slot) falls back to the full range. *)
let slot_header_size = 12

let trim_slot slot =
  if String.length slot <= slot_header_size then slot
  else
    let plen = Int32.to_int (String.get_int32_le slot 8) in
    if plen < 0 || plen > String.length slot - slot_header_size then slot
    else String.sub slot 0 (slot_header_size + plen)

let write_at addr data =
  if String.length data = 0 then invalid_arg "Mtx.write_at: empty write";
  { w_addr = addr; w_data = data }

let is_empty t = t.compares = [] && t.reads = [] && t.writes = []

let is_read_only t = t.writes = []

let memnodes t =
  let nodes =
    List.map (fun c -> c.c_addr.Address.node) t.compares
    @ List.map (fun r -> r.r_addr.Address.node) t.reads
    @ List.map (fun w -> w.w_addr.Address.node) t.writes
  in
  List.sort_uniq Int.compare nodes

let item_count t = List.length t.compares + List.length t.reads + List.length t.writes

let byte_count t =
  List.fold_left (fun acc c -> acc + String.length c.c_expected) 0 t.compares
  + List.fold_left (fun acc r -> acc + r.r_len) 0 t.reads
  + List.fold_left (fun acc w -> acc + String.length w.w_data) 0 t.writes

type outcome =
  | Committed of {
      stamp : int64;
      reads : (Address.t * string) list;
      epochs : (int * int) list;
          (* (address space, crash epoch) for every participating
             memnode, observed while its locks were held. Proxies use
             these to lazily age out cache entries from before a crash
             instead of flushing wholesale. *)
    }
  | Failed_compare of int list
  | Busy
  | Unavailable of { maybe_applied : bool; partitioned : bool }

let pp_outcome fmt = function
  | Committed { stamp; reads; _ } ->
      Format.fprintf fmt "Committed(stamp=%Ld, %d reads)" stamp (List.length reads)
  | Failed_compare idxs ->
      Format.fprintf fmt "Failed_compare[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ";")
           Format.pp_print_int)
        idxs
  | Busy -> Format.pp_print_string fmt "Busy"
  | Unavailable { maybe_applied; partitioned } ->
      Format.fprintf fmt "Unavailable(maybe_applied=%b, partitioned=%b)" maybe_applied partitioned
