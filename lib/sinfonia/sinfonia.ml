(** Umbrella module of the [sinfonia] library: a simulated
    implementation of the Sinfonia data-sharing service (Aguilera et
    al., SOSP 2007) that Minuet builds on.

    Storage lives at {!Memnode}s and is accessed through
    {!Mtx} minitransactions executed by the {!Coordinator}. *)

module Address = Address
module Config = Config
module Lock_table = Lock_table
module Heap = Heap
module Mtx = Mtx
module Redo_log = Redo_log
module Memnode = Memnode
module Recovery = Recovery
module Cluster = Cluster
module Coordinator = Coordinator
