(** Minitransaction specifications and results.

    A minitransaction atomically: (1) compares bytes at a set of
    locations against expected values, and if every comparison succeeds
    (2) returns the bytes at a set of read locations and (3) applies a
    set of writes. Locations are declared up front (Sec. 2.1). *)

type compare_item = { c_addr : Address.t; c_expected : string }

type read_item = { r_addr : Address.t; r_len : int; r_trim : bool }
(** [r_trim] asks the serving memnode to reply with only the used
    prefix of an object slot (header + stored payload length) instead
    of the full [r_len] range — the request still locks and costs the
    full range, but the response transfers only live bytes. *)

type write_item = { w_addr : Address.t; w_data : string }

type t = {
  compares : compare_item list;
  reads : read_item list;
  writes : write_item list;
}

val empty : t

val make :
  ?compares:compare_item list ->
  ?reads:read_item list ->
  ?writes:write_item list ->
  unit ->
  t

val compare_at : Address.t -> string -> compare_item

val read_at : ?trim:bool -> Address.t -> int -> read_item
(** [trim] (default false) requests a reply trimmed to the slot's used
    prefix; see {!read_item}. *)

val trim_slot : string -> string
(** The used prefix of raw object-slot bytes (12-byte header + stored
    payload length); returns the input unchanged when the length field
    is out of range. *)

val write_at : Address.t -> string -> write_item

val is_empty : t -> bool

val is_read_only : t -> bool

val memnodes : t -> int list
(** Sorted list of distinct memnode ids touched. *)

val item_count : t -> int

val byte_count : t -> int
(** Total payload bytes (compares + reads + writes), used for cost
    modelling. *)

type outcome =
  | Committed of {
      stamp : int64;
      reads : (Address.t * string) list;
      epochs : (int * int) list;
    }
      (** [reads] are the read results, in the order of the [reads]
          field. [stamp] is the minitransaction's commit stamp, drawn
          from a cluster-global counter {e while every participant's
          locks were held}: stamp order of two conflicting
          minitransactions is therefore their serialization order. The
          checker ([minuet.check]) replays histories in stamp order.

          [epochs] piggy-backs each participating address space's crash
          epoch ({!Cluster.space_epoch}) on the reply: a crash or
          replica promotion bumps the epoch, and proxies use the
          observed values to lazily revalidate (rather than bulk-evict)
          cache entries that predate a crash. Empty for the trivial
          no-participant commit. *)
  | Failed_compare of int list
      (** Indices (into [compares]) of the comparisons that failed. *)
  | Busy  (** A lock could not be acquired; caller should retry. *)
  | Unavailable of { maybe_applied : bool; partitioned : bool }
      (** A participant could not be reached. [partitioned] separates an
          injected network partition from a crashed, un-failed-over
          host. [maybe_applied] is false when the coordinator knows no
          write took effect (it always is under the current drain-based
          crash model, which fails memnodes only at minitransaction
          boundaries; the field exists so callers are forced to consider
          the ambiguous case). *)

val pp_outcome : Format.formatter -> outcome -> unit
