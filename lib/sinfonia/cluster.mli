(** A simulated Sinfonia deployment: a set of memnodes, the network
    between them, and shared bookkeeping (metrics, owner-id generator,
    replication wiring). *)

type t

val create : ?config:Config.t -> ?seed:int -> n:int -> unit -> t
(** [create ~n ()] builds [n] memnodes. With replication enabled and
    [n > 1], memnode [i] is backed up on memnode [(i+1) mod n]. *)

val config : t -> Config.t

val n_memnodes : t -> int

val memnode : t -> int -> Memnode.t

val net : t -> Sim.Net.t

val obs : t -> Obs.t
(** The cluster's observability registry: typed counters, abort
    taxonomy, latency histograms and trace spans. One per cluster, so
    distinct runs never share state. *)

val metrics : t -> Sim.Metrics.t
(** The string-keyed registry backing {!obs} (report layer / legacy
    inspection). [Sim.Metrics.counter_value (metrics t) "txn.commits"]
    keeps working. *)

val rng : t -> Sim.Rng.t

val fresh_owner : t -> int64
(** Unique lock-owner / transaction id. *)

val owner_watermark : t -> int64
(** The next id {!fresh_owner} would hand out. Sequence numbers are
    drawn from the same counter, so any object written from now on has a
    sequence number >= this value (used by the branching GC). *)

val take_stamp : t -> int64
(** Draw the next commit stamp from the cluster-global stamp counter.
    Only meaningful when called while the minitransaction being stamped
    holds all of its locks (the coordinator's and memnode's job); under
    that discipline, stamp order of conflicting minitransactions equals
    their serialization order, which is what [minuet.check] replays. *)

val stamp_watermark : t -> int64
(** The next stamp {!take_stamp} would hand out. *)

val backup_of : t -> int -> int option
(** The node hosting [i]'s replica, if replication is on and [n > 1]. *)

exception Unavailable of int
(** Raised when routing to a memnode whose primary and backup are both
    down (or still draining toward a crash). *)

exception Partitioned of int
(** Raised by the coordinator when an injected network partition blocks
    the link between a client and the node serving memnode [i]. *)

val route : t -> int -> Memnode.t * Memnode.store
(** [route t i] is the node and store that currently serve memnode [i]'s
    address space: the primary when alive, otherwise its replica on the
    backup node. Raises {!Unavailable} if neither is available — a node
    draining toward a requested crash ({!Memnode.crash_pending}) already
    refuses new requests, and its backup only takes over once the crash
    lands. *)

val serving_host : t -> int -> int
(** The id of the physical node {!route} would pick for memnode [i]'s
    address space — the endpoint used for per-link fault lookups.
    Raises {!Unavailable} like {!route}. *)

val mirror : t -> int -> Mtx.write_item list -> unit
(** Synchronously apply [writes] (addressed to memnode [i]) to [i]'s
    replica, paying network and backup CPU costs. No-op when replication
    is off, the write list is empty, or node [i] is being served from its
    replica already. If the backup host is {e crashed}, the writes are
    applied to the replica image for free — modelling Sinfonia's primary
    redo log being replayed when the backup returns — so the replica is
    never silently stale. *)

val start_recovery : ?lease:float -> ?interval:float -> t -> unit
(** Spawn Sinfonia's recovery daemon: every [interval] (default 1 s)
    each memnode releases locks held longer than [lease] (default
    250 ms of simulated time) — their coordinators are presumed crashed,
    and their minitransactions resolve as aborted. Healthy
    minitransactions hold locks for microseconds, far below the
    lease. *)

val crash : t -> int -> unit
(** Request a crash of memnode [i]: immediate if the node is idle,
    otherwise it lands once in-flight requests drain
    ({!Memnode.crash}). Either way the node refuses new requests from
    this call on; once {!Memnode.crashed} flips, operations are served
    by its backup replica (if any). *)

val can_recover : t -> int -> bool
(** True iff memnode [i] has actually crashed (not merely draining), has
    a replica to restore from, and that replica is not mid-request as a
    failover target — i.e. {!recover} would succeed right now. *)

val recover : t -> int -> unit
(** Bring memnode [i] back, restoring state from its replica. Raises
    [Invalid_argument] if the node is not crashed, there is no replica
    to restore from, or the replica is serving in-flight failover
    requests (see {!can_recover}; poll it first when recovering under
    load). *)
