(** A simulated Sinfonia deployment: a set of memnodes, the network
    between them, and shared bookkeeping (metrics, owner-id generator,
    replication wiring, per-space redo logs and the recovery
    daemons). *)

type t

val create : ?config:Config.t -> ?seed:int -> n:int -> unit -> t
(** [create ~n ()] builds [n] memnodes. With replication enabled and
    [n > 1], memnode [i] is backed up on memnode [(i+1) mod n]; the two
    share address space [i]'s redo log (stable storage). A crash hook on
    every node promotes its replica the instant a crash lands: the
    replica image is rolled forward through the redo log and in-doubt
    write ranges are re-locked (see {!Memnode.set_crash_hook}). *)

val config : t -> Config.t

val n_memnodes : t -> int

val memnode : t -> int -> Memnode.t

val space_epoch : t -> int -> int
(** Address space [i]'s crash epoch: bumped once per crash of its
    primary (at the instant the replica is promoted). Carried on
    minitransaction replies ({!Mtx.outcome}) so proxies can lazily
    revalidate cache entries that predate a crash. *)

val redo_log : t -> int -> Redo_log.t
(** Address space [i]'s redo log (shared by its primary and replica
    stores). *)

val net : t -> Sim.Net.t

val obs : t -> Obs.t
(** The cluster's observability registry: typed counters, abort
    taxonomy, latency histograms and trace spans. One per cluster, so
    distinct runs never share state. *)

val metrics : t -> Sim.Metrics.t
(** The string-keyed registry backing {!obs} (report layer / legacy
    inspection). [Sim.Metrics.counter_value (metrics t) "txn.commits"]
    keeps working. *)

val rng : t -> Sim.Rng.t

val fresh_owner : t -> int64
(** Unique lock-owner / transaction id. *)

val owner_watermark : t -> int64
(** The next id {!fresh_owner} would hand out. Sequence numbers are
    drawn from the same counter, so any object written from now on has a
    sequence number >= this value (used by the branching GC). *)

val take_stamp : t -> int64
(** Draw the next commit stamp from the cluster-global stamp counter.
    Only meaningful when called while the minitransaction being stamped
    holds all of its locks (the coordinator's and memnode's job); under
    that discipline, stamp order of conflicting minitransactions equals
    their serialization order, which is what [minuet.check] replays. *)

val stamp_watermark : t -> int64
(** The next stamp {!take_stamp} would hand out. *)

val backup_of : t -> int -> int option
(** The node hosting [i]'s replica, if replication is on and [n > 1]. *)

exception Unavailable of int
(** Raised when routing to a memnode whose primary and backup are both
    down (or still draining toward a crash). *)

exception Partitioned of int
(** Raised by the coordinator when an injected network partition blocks
    the link between a client and the node serving memnode [i]. *)

val route : t -> int -> Memnode.t * Memnode.store
(** [route t i] is the node and store that currently serve memnode [i]'s
    address space: the primary when alive, otherwise its replica on the
    backup node. Raises {!Unavailable} if neither is available — a node
    draining toward a requested crash ({!Memnode.crash_pending}) already
    refuses new requests, and its backup only takes over once the crash
    lands. *)

val serving_host : t -> int -> int
(** The id of the physical node {!route} would pick for memnode [i]'s
    address space — the endpoint used for per-link fault lookups.
    Raises {!Unavailable} like {!route}. *)

val mirror : t -> int -> owner:int64 -> Mtx.write_item list -> unit
(** Synchronously apply [owner]'s committed [writes] (addressed to
    memnode [i]) to [i]'s replica, paying network and backup CPU costs.
    The outcome is recorded honestly in [i]'s redo log: a mirror that
    reached the replica image marks the entry mirrored (truncating it);
    a mirror skipped because the backup is down, the link is
    partitioned, or either end crashed mid-transfer leaves the entry
    committed-but-unmirrored — {!start_recovery}'s flush daemon (or a
    promotion replay) delivers it later. No-op recorded as mirrored when
    replication is off or node [i] is already served from its
    replica. *)

val start_recovery : ?lease:float -> ?interval:float -> t -> unit
(** Spawn Sinfonia's recovery daemons. Every [interval] (default 1 s):

    - each memnode releases locks held longer than [lease] (default
      250 ms of simulated time) whose owner never logged a vote — their
      coordinators are presumed crashed before preparing, and their
      minitransactions resolve as aborted;
    - a cluster-wide resolver flushes aged committed-but-unmirrored redo
      entries to lagging replicas and runs {!Recovery.sweep} over every
      space's in-doubt transactions, committing or aborting them per
      the all-yes rule.

    Healthy minitransactions hold locks for microseconds, far below the
    lease. *)

val crash : t -> int -> unit
(** Crash memnode [i]. With {!Config.fail_stop_at_boundaries} (default)
    the node drains in-flight requests first and the crash lands at a
    minitransaction boundary ({!Memnode.crash}); otherwise this is
    {!crash_now}. Either way the node refuses new requests from this
    call on; once {!Memnode.crashed} flips, operations are served by its
    backup replica (if any). *)

val crash_now : t -> int -> unit
(** Crash memnode [i] immediately, mid-request ({!Memnode.crash_now}):
    in-flight participant operations die at their next service-time
    boundary, leaving any yes votes in doubt in the redo log for the
    recovery coordinator. Replica promotion runs synchronously via the
    crash hook. *)

val can_recover : t -> int -> bool
(** True iff memnode [i] has actually crashed (not merely draining), has
    a replica to restore from, and that replica is not mid-request as a
    failover target — i.e. {!try_recover} would succeed right now. *)

(** Why a recovery attempt was refused; see {!try_recover}. *)
type recover_error = Not_crashed | No_replica | Replica_busy

val recover_error_to_string : recover_error -> string

val try_recover : t -> int -> (unit, recover_error) result
(** Bring memnode [i] back, restoring state from its replica image —
    first rolled forward through the redo log (committed writes whose
    mirror never arrived), with in-doubt write ranges re-locked on the
    restored primary. Returns [Error] (leaving all state untouched)
    instead of raising when the node is not crashed, has no replica, or
    the replica is mid-request — the chaos nemesis races recovery
    against crashes and retries on [Error]. *)

val recover : t -> int -> unit
(** {!try_recover}, raising [Invalid_argument] on [Error] (legacy
    interface; prefer {!try_recover} under concurrency). *)

val redo_decisions : t -> (int * int64 * [ `Committed | `Aborted ]) list
(** Every retained (space, tid, decision) record across all redo logs —
    the input to the checker's 2PC-atomicity rule. Chaos runs set
    {!Config.decision_retention} to [infinity] so nothing is pruned. *)

val in_doubt_total : t -> int
(** Transactions still in doubt across all spaces (should be 0 after a
    quiesced run with recovery running). *)
