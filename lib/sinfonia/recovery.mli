(** Sinfonia's recovery coordinator for in-doubt minitransactions
    (Sec. 2.3 of the paper): transactions whose yes vote survived a
    participant crash in the redo log, with the decision unknown.

    Each {!sweep} walks every address space's redo log, polls the other
    participants of each in-doubt transaction and drives the outcome:

    - a decision recorded anywhere wins and is propagated;
    - a reachable participant without a vote forces an abort — but only
      after an [Aborted] decision is recorded {e at that participant},
      so a late prepare there votes no and a live coordinator can never
      assemble all-yes concurrently;
    - all-yes with no decision commits (with the decided stamp if one
      is found, else a fresh one — safe because the write ranges remain
      locked under the transaction's tid throughout);
    - an unreachable participant with every reachable one voting yes
      blocks the transaction until the partition heals.

    The environment is a record of closures so this module stays below
    {!Cluster} (which owns routing and the network). *)

type env = {
  n_spaces : int;
  serving : int -> (Memnode.t * Memnode.store) option;
      (** Node/store currently serving a space; [None] while the space
          is entirely down or mid-drain. *)
  reachable : src:int -> dst:int -> bool;
  transfer : src:int -> dst:int -> bytes:int -> unit;
      (** Pay the network cost of one recovery message. *)
  take_stamp : unit -> int64;
  grace : float;
      (** Minimum age (simulated seconds) before a prepared entry is
          treated as in doubt; see {!Config.in_doubt_grace}. *)
  obs : Obs.t;
}

val sweep : env -> unit
(** One resolution pass over all spaces. Emits [recovery.*] counters
    and a [recovery.sweep] trace span. *)
