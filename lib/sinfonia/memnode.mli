(** A memnode: storage node participating in minitransactions.

    A memnode owns a primary store (heap + lock table) and may host
    replica stores for other memnodes (primary-backup replication). The
    participant-side minitransaction logic lives here; message timing and
    the commit protocol live in {!Coordinator}. *)

(** One store: a heap plus its lock table. *)
type store

val store_heap : store -> Heap.t

val store_locks : store -> Lock_table.t

val store_serving : store -> int
(** Number of in-flight requests currently being served from this store
    (see {!begin_serving}). A store with in-flight requests must not be
    used as a recovery source — its heap may be mid-update. *)

type t

val create : id:int -> cores:int -> heap_capacity:int -> t

val id : t -> int

val cpu : t -> Sim.Resource.t

val primary : t -> store

val crashed : t -> bool

val crash_pending : t -> bool
(** True while a crash request drains in-flight requests (see
    {!crash}). *)

val available : t -> bool
(** True iff the node is neither crashed nor draining toward a crash;
    only available nodes accept new requests. *)

val crash : t -> unit
(** Ask the node to crash. If it is idle the crash is immediate: lock
    state is wiped (as a real crash would) and {!crashed} flips. If
    requests are in flight the node stops accepting new ones
    ({!available} becomes false) and the crash lands when the last
    in-flight request finishes — fail-stop at minitransaction
    boundaries, so a committed minitransaction is never half-applied.
    Poll {!crashed} to observe the flip. *)

val recover : t -> from_replica:store -> unit
(** Restore the primary store's contents from a replica image and mark
    the node alive. *)

val begin_serving : t -> store -> unit
(** Pin the node (and one of its stores) as serving one in-flight
    request; a pending crash will not land until the matching
    {!end_serving}. Raises [Invalid_argument] on a crashed node —
    callers must route first. *)

val end_serving : t -> store -> unit
(** Release one {!begin_serving} pin, landing any pending crash once
    the node goes idle. *)

val add_replica : t -> of_node:int -> heap_capacity:int -> store
(** Host a replica store for memnode [of_node] on this node. *)

val replica : t -> of_node:int -> store option

val recover_orphaned_locks : t -> lease:float -> int
(** Release every lock held longer than [lease] simulated seconds: the
    owning coordinator is presumed crashed mid-protocol, and its
    minitransaction is resolved as aborted (Sinfonia's recovery
    decision for unprepared transactions). Returns the number of owners
    recovered. *)

val serve : t -> cost:float -> unit
(** Occupy one CPU core of this memnode for [cost] simulated seconds
    (FCFS). *)

(** {1 Participant-side minitransaction logic}

    These functions are pure state transitions on a [store]; the caller
    is responsible for paying network and CPU costs first. *)

(** The slice of a minitransaction addressed to one memnode. Compare and
    read items carry their index in the original minitransaction. *)
type part = {
  p_compares : (int * Mtx.compare_item) list;
  p_reads : (int * Mtx.read_item) list;
  p_writes : Mtx.write_item list;
}

val part_of_mtx : Mtx.t -> node:int -> part
(** Project the items of [mtx] that live on [node]. *)

val part_cost : Config.t -> part -> float
(** CPU service time to process this part in one message. *)

val part_bytes : part -> int
(** Approximate request size in bytes, for the network model. *)

type prepare_result =
  | Prepared of (int * string) list
      (** Locks held; compares passed; read results tagged with their
          global indices. *)
  | Busy_locks
  | Compare_failed of int list  (** Locks released. *)

val prepare : store -> owner:int64 -> part -> prepare_result
(** Phase one: acquire locks all-or-nothing, evaluate compares, perform
    reads. On success, locks remain held until {!commit} or {!abort}. *)

val prepare_blocking : store -> owner:int64 -> part -> timeout:float -> prepare_result
(** Like {!prepare} but waits (bounded) for busy locks instead of
    failing. Returns [Busy_locks] only on timeout. *)

val commit : store -> owner:int64 -> part -> unit
(** Phase two: apply the part's writes and release the owner's locks. *)

val abort : store -> owner:int64 -> unit
(** Release the owner's locks without writing. *)

val execute_single : store -> owner:int64 -> part -> prepare_result
(** One-phase execution for single-memnode minitransactions: prepare,
    and on success immediately commit. No locks survive the call. *)

val execute_single_blocking :
  store -> owner:int64 -> part -> timeout:float -> prepare_result

(** {1 Timed participant operations}

    Same state transitions as above, but the memnode's CPU service time
    is spent {e while the locks are held}, which is what makes lock
    contention real: a concurrent minitransaction arriving during the
    service window sees busy locks (or waits, for blocking
    minitransactions). Used by {!Coordinator}. *)

val prepare_timed : t -> store -> owner:int64 -> part -> cost:float -> prepare_result

val prepare_blocking_timed :
  t -> store -> owner:int64 -> part -> cost:float -> timeout:float -> prepare_result

val commit_timed : t -> store -> owner:int64 -> part -> cost:float -> unit

val abort_timed : t -> store -> owner:int64 -> cost:float -> unit

val execute_single_timed :
  t -> store -> owner:int64 -> stamp:(unit -> int64) -> part -> cost:float ->
  prepare_result * int64 option
(** Like {!execute_single}, but on success draws a commit stamp from
    [stamp] {e between} prepare and commit — while the
    minitransaction's locks are held — and returns it. Stamp order of
    two conflicting minitransactions is their serialization order. *)

val execute_single_blocking_timed :
  t -> store -> owner:int64 -> stamp:(unit -> int64) -> part -> cost:float -> timeout:float ->
  prepare_result * int64 option

val apply_writes : store -> Mtx.write_item list -> unit
(** Raw write application (used by replication mirroring). *)
