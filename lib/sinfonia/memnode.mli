(** A memnode: storage node participating in minitransactions.

    A memnode owns a primary store (heap + lock table) and may host
    replica stores for other memnodes (primary-backup replication). The
    participant-side minitransaction logic lives here; message timing and
    the commit protocol live in {!Coordinator}.

    Every store carries the {!Redo_log} of the address space it images;
    a space's primary store and its replica store share one log (it
    models stable storage, surviving crashes of either host). Timed
    participant operations — the coordinator path — log yes votes and
    decisions through it; the untimed variants below are log-free state
    transitions for unit tests. *)

(** One store: a heap plus its lock table plus the space's redo log. *)
type store

val store_heap : store -> Heap.t

val store_locks : store -> Lock_table.t

val store_serving : store -> int
(** Number of in-flight requests currently being served from this store
    (see {!begin_serving}). A store with in-flight requests must not be
    used as a recovery source — its heap may be mid-update. *)

val store_space : store -> int
(** The address space (memnode id) this store is an image of. *)

val store_redo : store -> Redo_log.t

exception Crashed
(** Raised by timed participant operations (and {!begin_serving}) when
    the node crashed under them mid-request. The coordinator maps it to
    unavailability; the transaction's fate is whatever the redo log
    says. *)

type t

val create : ?redo:Redo_log.t -> id:int -> cores:int -> heap_capacity:int -> unit -> t
(** [redo] is the stable redo log for this node's address space
    (default: a fresh private log). {!Cluster} passes one it also hands
    to the backup's {!add_replica}, making the log shared storage. *)

val id : t -> int

val cpu : t -> Sim.Resource.t

val primary : t -> store

val crashed : t -> bool

val crash_pending : t -> bool
(** True while a drain-mode crash request waits for in-flight requests
    (see {!crash}). *)

val available : t -> bool
(** True iff the node is neither crashed nor draining toward a crash;
    only available nodes accept new requests. *)

val epoch : t -> int
(** Crash epoch: bumped once per crash. In-flight operations capture it
    and compare at service-time boundaries to detect a crash landing
    under them. *)

val set_crash_hook : t -> (unit -> unit) -> unit
(** Install a hook run synchronously at the instant a crash lands
    (after the epoch bump and lock wipe). {!Cluster} uses it to promote
    the replica: replay the redo log forward and re-lock in-doubt write
    ranges before any request can reach the stale image. *)

val crash : t -> unit
(** Ask the node to crash, draining in-flight requests first (fail-stop
    at minitransaction boundaries — the pre-redo-log model, selected by
    {!Config.fail_stop_at_boundaries}). If the node is idle the crash
    is immediate; otherwise it lands when the last in-flight request
    finishes. Poll {!crashed} to observe the flip. *)

val crash_now : t -> unit
(** Crash immediately, mid-request: volatile lock state is wiped, the
    epoch is bumped, and in-flight participant operations raise
    {!Crashed} at their next service boundary. Transactions they had
    voted yes on remain in the redo log, in doubt, for the recovery
    coordinator. No-op on an already-crashed node. *)

val recover : ?broken:bool -> t -> from_replica:store -> int
(** Restore the primary store's contents from a replica image and mark
    the node alive. The replica image is first rolled forward through
    the redo log (committed writes whose mirror never arrived), then
    in-doubt write ranges are re-locked under their tids so undecided
    transactions stay isolated until recovery resolves them. Returns
    the number of un-mirrored commits replayed. [broken] skips the
    replay — the falsifiability hook behind
    {!Config.broken_recovery}. *)

val relock_in_doubt : store -> unit
(** Re-acquire exclusive locks over every in-doubt transaction's write
    set, under the transaction's tid (used after a crash wipes volatile
    lock state, and by replica promotion). *)

val begin_serving : t -> store -> unit
(** Pin the node (and one of its stores) as serving one in-flight
    request; a drain-mode crash will not land until the matching
    {!end_serving}. Raises {!Crashed} on a crashed node — callers must
    route first. *)

val end_serving : t -> store -> unit
(** Release one {!begin_serving} pin, landing any pending drain-mode
    crash once the node goes idle. *)

val add_replica : t -> of_node:int -> heap_capacity:int -> redo:Redo_log.t -> store
(** Host a replica store for memnode [of_node] on this node, sharing
    [of_node]'s redo log (one log per address space). *)

val replica : t -> of_node:int -> store option

val recover_orphaned_locks : t -> lease:float -> int
(** Release every lock held longer than [lease] simulated seconds whose
    owner never logged a yes vote: the owning coordinator is presumed
    crashed before preparing, and its minitransaction is resolved as
    aborted (Sinfonia's recovery decision for unprepared transactions).
    Owners with a logged vote are left alone — they are in doubt and
    belong to the recovery coordinator. Returns the number of owners
    recovered. *)

val serve : t -> cost:float -> unit
(** Occupy one CPU core of this memnode for [cost] simulated seconds
    (FCFS). *)

(** {1 Participant-side minitransaction logic}

    These functions are pure state transitions on a [store]; the caller
    is responsible for paying network and CPU costs first. *)

(** The slice of a minitransaction addressed to one memnode. Compare and
    read items carry their index in the original minitransaction. *)
type part = {
  p_compares : (int * Mtx.compare_item) list;
  p_reads : (int * Mtx.read_item) list;
  p_writes : Mtx.write_item list;
}

val part_of_mtx : Mtx.t -> node:int -> part
(** Project the items of [mtx] that live on [node]. *)

val part_cost : Config.t -> part -> float
(** CPU service time to process this part in one message. *)

val part_bytes : part -> int
(** Approximate request size in bytes, for the network model. *)

type prepare_result =
  | Prepared of (int * string) list
      (** Locks held; compares passed; read results tagged with their
          global indices. *)
  | Busy_locks
  | Compare_failed of int list  (** Locks released. *)

val prepare : store -> owner:int64 -> part -> prepare_result
(** Phase one: acquire locks all-or-nothing, evaluate compares, perform
    reads. On success, locks remain held until {!commit} or {!abort}. *)

val prepare_blocking : store -> owner:int64 -> part -> timeout:float -> prepare_result
(** Like {!prepare} but waits (bounded) for busy locks instead of
    failing. Returns [Busy_locks] only on timeout. *)

val commit : store -> owner:int64 -> part -> unit
(** Phase two: apply the part's writes and release the owner's locks. *)

val abort : store -> owner:int64 -> unit
(** Release the owner's locks without writing. *)

val execute_single : store -> owner:int64 -> part -> prepare_result
(** One-phase execution for single-memnode minitransactions: prepare,
    and on success immediately commit. No locks survive the call. *)

val execute_single_blocking :
  store -> owner:int64 -> part -> timeout:float -> prepare_result

(** {1 Timed participant operations}

    Same state transitions as above, but the memnode's CPU service time
    is spent {e while the locks are held}, which is what makes lock
    contention real: a concurrent minitransaction arriving during the
    service window sees busy locks (or waits, for blocking
    minitransactions). Used by {!Coordinator}.

    These are also the logged operations. A prepare called with
    [?participants] appends a yes-vote entry (tid, participants, write
    set) to the store's redo log before returning [Prepared]; a prepare
    for a tid the recovery coordinator already force-aborted votes no
    ([Busy_locks]). [commit_timed]/[abort_timed] record the decision.
    Every service window ends with an epoch check, so a mid-request
    crash raises {!Crashed} instead of completing against wiped
    state. *)

val prepare_timed :
  t -> store -> owner:int64 -> ?participants:int list -> part -> cost:float -> prepare_result

val prepare_blocking_timed :
  t ->
  store ->
  owner:int64 ->
  ?participants:int list ->
  part ->
  cost:float ->
  timeout:float ->
  prepare_result

val commit_timed : t -> store -> owner:int64 -> part -> stamp:int64 -> cost:float -> unit
(** Phase two at one participant: records the commit decision (stamp
    included) in the redo log, then applies and releases — unless the
    recovery coordinator already committed this tid, in which case the
    writes are left exactly as recovery applied them. *)

val abort_timed : t -> store -> owner:int64 -> cost:float -> unit

val execute_single_timed :
  t -> store -> owner:int64 -> stamp:(unit -> int64) -> part -> cost:float ->
  prepare_result * int64 option
(** Like {!execute_single}, but on success draws a commit stamp from
    [stamp] {e between} prepare and commit — while the
    minitransaction's locks are held — and returns it. Stamp order of
    two conflicting minitransactions is their serialization order. The
    commit is routed through the redo log (append + decide, no
    scheduler yield in between) so a crash after the 1PC commit but
    before the mirror cannot lose it. *)

val execute_single_blocking_timed :
  t -> store -> owner:int64 -> stamp:(unit -> int64) -> part -> cost:float -> timeout:float ->
  prepare_result * int64 option

val apply_writes : store -> Mtx.write_item list -> unit
(** Raw write application (used by replication mirroring). *)
