(** Cost model and cluster parameters for the simulated Sinfonia
    deployment.

    Defaults approximate the paper's testbed: memnodes pinned to two
    cores of a 2.67 GHz Xeon, a 10 GigE LAN, primary-backup replication
    with logging disabled. The absolute values matter less than their
    ratios; EXPERIMENTS.md records the calibration. *)

type t = {
  memnode_cores : int;  (** CPU servers per memnode (paper: 2). *)
  heap_capacity : int;  (** Bytes of storage per memnode. *)
  replication : bool;  (** Synchronous primary-backup (paper: on). *)
  net_one_way : float;  (** Base one-way message latency, seconds. *)
  net_per_byte : float;
  net_jitter : float;  (** Mean of the exponential jitter term. *)
  svc_msg : float;  (** Memnode CPU per message, seconds. *)
  svc_item : float;  (** Memnode CPU per minitransaction item. *)
  svc_per_kb : float;  (** Memnode CPU per KiB of payload. *)
  backup_factor : float;
      (** Fraction of the primary's apply cost charged to the backup. *)
  blocking_timeout : float;
      (** Lock wait bound for blocking minitransactions, seconds. *)
  retry_backoff : float;  (** Initial retry backoff after Busy, seconds. *)
  retry_backoff_max : float;
  max_retries : int;  (** Busy retries before giving up (safety valve). *)
  fail_stop_at_boundaries : bool;
      (** When true (default), {!Cluster.crash} drains in-flight
          requests so a crash lands at a minitransaction boundary — the
          original drain model, kept for tests that depend on it. When
          false, crashes land immediately mid-request, leaving in-doubt
          redo-log entries for the recovery coordinator to resolve. *)
  in_doubt_grace : float;
      (** How long (simulated seconds) a prepared redo-log entry must be
          in doubt before the recovery coordinator resolves it. Must
          comfortably exceed a worst-case prepare-to-commit gap
          (blocking-lock waits plus lossy-link retransmits) so recovery
          rarely races a live coordinator; the force-abort handshake
          keeps the race safe regardless. *)
  decision_retention : float;
      (** How long commit/abort decision records are kept in each redo
          log for late-arriving participants (simulated seconds;
          [infinity] keeps them all — used by chaos runs, which dump
          them into the checker's 2PC-atomicity rule). *)
  broken_recovery : bool;
      (** Falsifiability hook: skip redo-log replay when promoting a
          replica or restoring a crashed primary, so committed writes
          can be silently lost. The history checker must catch this. *)
}

val default : t

val pp : Format.formatter -> t -> unit
