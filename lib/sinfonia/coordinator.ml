type mode = Normal | Blocking

let round_trips mtx = if List.length (Mtx.memnodes mtx) <= 1 then 1 else 2

let request_overhead = 64

let response_overhead = 32

let read_bytes_of_result reads =
  List.fold_left (fun acc (_, data) -> acc + String.length data) response_overhead reads

(* Before starting an exchange, a client that knows its own host id
   refuses to talk across a blocked link (in either direction) — a
   partition is detected at the protocol boundary, never mid-protocol.
   Anonymous clients ([client = None]) are not subject to partitions. *)
let check_reachable cluster ~client node_id =
  match client with
  | None -> ()
  | Some src ->
      let dst = Cluster.serving_host cluster node_id in
      let net = Cluster.net cluster in
      if not (Sim.Net.reachable net ~src ~dst && Sim.Net.reachable net ~src:dst ~dst:src) then
        raise (Cluster.Partitioned node_id)

(* One request/response exchange with the node currently serving memnode
   [node_id]'s address space: pay the request transfer, route (the node
   may have crashed while the request was in flight), run [f] (which
   spends the memnode CPU while holding any locks it takes), pay the
   response transfer. [f] runs inside a serving pin, so a crash
   requested while it runs lands only after it finishes. *)
let round_trip cluster ~client node_id ~bytes_out ~resp_bytes f =
  check_reachable cluster ~client node_id;
  let net = Cluster.net cluster in
  let dst =
    match client with None -> None | Some _ -> Some (Cluster.serving_host cluster node_id)
  in
  Sim.Net.transfer ?src:client ?dst net ~bytes:bytes_out;
  let mn, store = Cluster.route cluster node_id in
  Memnode.begin_serving mn store;
  let result =
    try f mn store
    with e ->
      Memnode.end_serving mn store;
      raise e
  in
  Memnode.end_serving mn store;
  Sim.Net.transfer ?src:dst ?dst:client net ~bytes:(resp_bytes result);
  result

(* Phase-two exchange with a participant pinned at prepare time: no
   re-routing (the prepared locks live in that exact store) and no
   partition check — an exchange already in flight completes, modelling
   Sinfonia's transaction-recovery protocol resolving in-doubt
   participants. The caller still holds the serving pin taken at
   prepare. *)
let round_trip_pinned cluster ~client mn ~bytes_out ~resp_bytes f =
  let net = Cluster.net cluster in
  let dst = match client with None -> None | Some _ -> Some (Memnode.id mn) in
  Sim.Net.transfer ?src:client ?dst net ~bytes:bytes_out;
  let result = f () in
  Sim.Net.transfer ?src:dst ?dst:client net ~bytes:(resp_bytes result);
  result

let backoff_delay cluster attempt =
  let cfg = Cluster.config cluster in
  let base = cfg.Config.retry_backoff *. (2.0 ** float_of_int (min attempt 8)) in
  let capped = Float.min base cfg.Config.retry_backoff_max in
  Sim.delay (Sim.Rng.float (Cluster.rng cluster) capped)

let merge_reads parts_results =
  List.concat parts_results |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Crash epochs of the participating address spaces, sampled for the
   reply. Sampled after execution: any crash that landed before the
   participant served us is visible, so a proxy that sees epoch [e] on a
   reply knows entries cached under [e' < e] predate a crash. *)
let reply_epochs cluster (mtx : Mtx.t) =
  List.map (fun node -> (node, Cluster.space_epoch cluster node)) (Mtx.memnodes mtx)

(* Reads are tagged with their index into [mtx.reads]; translate back to
   (address, data) pairs in declaration order. *)
let outcome_of_reads cluster (mtx : Mtx.t) ~stamp indexed =
  let arr = Array.of_list mtx.reads in
  Mtx.Committed
    {
      stamp;
      reads = List.map (fun (i, data) -> ((arr.(i)).Mtx.r_addr, data)) indexed;
      epochs = reply_epochs cluster mtx;
    }

let exec_single cluster ~client ~mode (mtx : Mtx.t) node =
  let cfg = Cluster.config cluster in
  let obs = Cluster.obs cluster in
  let stats = Obs.mtx obs in
  let part = Memnode.part_of_mtx mtx ~node in
  let cost = Memnode.part_cost cfg part in
  let bytes_out = Memnode.part_bytes part + request_overhead in
  let rec attempt n =
    if n > cfg.Config.max_retries then begin
      Obs.Counter.incr stats.Obs.retry_budget_exhausted;
      Mtx.Busy
    end
    else begin
      let owner = Cluster.fresh_owner cluster in
      let stamp () = Cluster.take_stamp cluster in
      (* Mirror before the response transfer (ack-after-replication) and
         inside the serving pin, so a crash never lands between commit
         and mirror. *)
      let run mn store =
        let result =
          match mode with
          | Normal -> Memnode.execute_single_timed mn store ~owner ~stamp part ~cost
          | Blocking ->
              Memnode.execute_single_blocking_timed mn store ~owner ~stamp part ~cost
                ~timeout:cfg.Config.blocking_timeout
        in
        (match result with
        | Memnode.Prepared _, _ when part.p_writes <> [] ->
            Cluster.mirror cluster node ~owner part.p_writes
        | _ -> ());
        result
      in
      let resp_bytes = function
        | Memnode.Prepared reads, _ -> read_bytes_of_result reads
        | (Memnode.Busy_locks | Memnode.Compare_failed _), _ -> response_overhead
      in
      match
        Obs.with_span obs Obs.Span.Mtx_exec (fun () ->
            round_trip cluster ~client node ~bytes_out ~resp_bytes run)
      with
      | exception Memnode.Crashed ->
          (* The node died mid-request. Whether the 1PC commit happened
             is decided by the redo log: a recorded commit decision means
             the write is durable (promotion replays it), so the client
             must treat the operation as possibly applied. *)
          let redo = Cluster.redo_log cluster node in
          let applied =
            match Redo_log.decision redo ~tid:owner with
            | Some (Redo_log.Committed _) -> true
            | _ -> false
          in
          Obs.Counter.incr stats.Obs.mtx_unavailable;
          Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Crashed_host;
          Mtx.Unavailable { maybe_applied = applied; partitioned = false }
      | result -> (
          match result with
          | Memnode.Prepared reads, Some stamp ->
              Obs.Counter.incr stats.Obs.committed_1pc;
              outcome_of_reads cluster mtx ~stamp (merge_reads [ reads ])
          | Memnode.Prepared _, None -> assert false
          | Memnode.Busy_locks, _ ->
              Obs.Counter.incr stats.Obs.busy_retries;
              Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Lock_busy;
              backoff_delay cluster n;
              attempt (n + 1)
          | Memnode.Compare_failed idxs, _ ->
              Obs.Counter.incr stats.Obs.compare_failed;
              Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Validation_failed;
              Mtx.Failed_compare idxs)
    end
  in
  attempt 0

(* Run [f node] for every node in parallel and wait for all results. *)
let parallel_map cluster nodes f =
  ignore cluster;
  let ivars = List.map (fun node -> (node, Sim.Ivar.create ())) nodes in
  List.iter
    (fun (node, ivar) ->
      Sim.spawn (fun () ->
          (* Transport, not a swallow: the collection loop below
             re-raises the Error arm in the caller's fiber. *)
          (* lint: allow crashed-swallow *)
          let result = try Ok (f node) with e -> Error e in
          Sim.Ivar.fill ivar result))
    ivars;
  List.map
    (fun (node, ivar) ->
      match Sim.Ivar.read ivar with Ok v -> (node, v) | Error e -> raise e)
    ivars

(* Per-participant prepare outcome. A prepared participant is pinned:
   the exact (node, store) pair holding its locks, with the serving pin
   still taken, so phase two never re-routes and the node cannot crash
   under the held locks. *)
type presult =
  | P_prepared of Memnode.t * Memnode.store * (int * string) list * int
      (* last field: the space's crash epoch captured before the request
         went out — a bump by decision time means the participant's
         volatile locks died with it *)
  | P_busy
  | P_compare of int list
  | P_unreachable of bool (* partitioned? *)

let exec_multi cluster ~client ~mode (mtx : Mtx.t) nodes =
  let cfg = Cluster.config cluster in
  let obs = Cluster.obs cluster in
  let stats = Obs.mtx obs in
  let parts = List.map (fun node -> (node, Memnode.part_of_mtx mtx ~node)) nodes in
  let rec attempt n =
    if n > cfg.Config.max_retries then begin
      Obs.Counter.incr stats.Obs.retry_budget_exhausted;
      Mtx.Busy
    end
    else begin
      let owner = Cluster.fresh_owner cluster in
      (* Phase one: prepare at every participant in parallel. Routing
         failures become values, never exceptions, so the participants
         that did prepare are always aborted. *)
      let prepare node =
        let part = List.assoc node parts in
        let cost = Memnode.part_cost cfg part in
        let bytes_out = Memnode.part_bytes part + request_overhead in
        let resp_bytes = function
          | P_prepared (_, _, reads, _) -> read_bytes_of_result reads
          | P_busy | P_compare _ | P_unreachable _ -> response_overhead
        in
        try
          check_reachable cluster ~client node;
          let ep0 = Cluster.space_epoch cluster node in
          let net = Cluster.net cluster in
          let dst =
            match client with
            | None -> None
            | Some _ -> Some (Cluster.serving_host cluster node)
          in
          Sim.Net.transfer ?src:client ?dst net ~bytes:bytes_out;
          let mn, store = Cluster.route cluster node in
          Memnode.begin_serving mn store;
          let result =
            match
              match mode with
              | Normal -> Memnode.prepare_timed mn store ~owner ~participants:nodes part ~cost
              | Blocking ->
                  (* Normal/Blocking are alternative arms of this match;
                     the linter's linearization sees the Normal arm's
                     append before this arm's compare-fail lock release,
                     but only one arm runs — and that release is the
                     refusing memnode dropping its own not-yet-voted
                     ranges, which presumed-abort permits. *)
                  (* lint: allow protocol-order *)
                  Memnode.prepare_blocking_timed mn store ~owner ~participants:nodes part ~cost
                    ~timeout:cfg.Config.blocking_timeout
            with
            | Memnode.Prepared reads -> P_prepared (mn, store, reads, ep0)
            | Memnode.Busy_locks ->
                Memnode.end_serving mn store;
                P_busy
            | Memnode.Compare_failed idxs ->
                Memnode.end_serving mn store;
                P_compare idxs
            | exception Memnode.Crashed ->
                (* Crashed mid-prepare: no vote was logged (the append is
                   the last step before a successful return), so the
                   transaction can still only abort. *)
                Memnode.end_serving mn store;
                P_unreachable false
          in
          Sim.Net.transfer ?src:dst ?dst:client net ~bytes:(resp_bytes result);
          result
        with
        | Cluster.Unavailable _ -> P_unreachable false
        | Cluster.Partitioned _ -> P_unreachable true
      in
      let results =
        Obs.with_span obs Obs.Span.Mtx_prepare (fun () -> parallel_map cluster nodes prepare)
      in
      let prepared =
        List.filter_map
          (fun (node, r) ->
            match r with
            | P_prepared (mn, store, reads, ep0) -> Some (node, mn, store, reads, ep0)
            | _ -> None)
          results
      in
      (* Abort phase for a failed attempt: release locks at every
         prepared (pinned) participant, then drop the serving pins. *)
      let abort_prepared () =
        ignore
          (parallel_map cluster prepared (fun (_, mn, store, _, _) ->
               round_trip_pinned cluster ~client mn ~bytes_out:request_overhead
                 ~resp_bytes:(fun () -> response_overhead)
                 (fun () ->
                   (* A crash under the abort leaves the vote in doubt;
                      the recovery coordinator aborts it (some other
                      participant of this failed attempt never voted). *)
                   (try Memnode.abort_timed mn store ~owner ~cost:cfg.Config.svc_msg
                    with Memnode.Crashed -> ());
                   Memnode.end_serving mn store)))
      in
      let failed_compares =
        List.concat_map (fun (_, r) -> match r with P_compare idxs -> idxs | _ -> []) results
      in
      let unreachable =
        List.filter_map (fun (_, r) -> match r with P_unreachable p -> Some p | _ -> None) results
      in
      if failed_compares <> [] then begin
        abort_prepared ();
        Obs.Counter.incr stats.Obs.compare_failed;
        Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Validation_failed;
        Mtx.Failed_compare (List.sort_uniq Int.compare failed_compares)
      end
      else if unreachable <> [] then begin
        (* A participant is down or partitioned off. Nothing committed
           (no stamp was drawn); release whatever prepared and let the
           caller decide whether to retry later. *)
        abort_prepared ();
        let node = List.hd nodes in
        if List.exists Fun.id unreachable then raise (Cluster.Partitioned node)
        else raise (Cluster.Unavailable node)
      end
      else if List.exists (fun (_, r) -> r = P_busy) results then begin
        abort_prepared ();
        Obs.Counter.incr stats.Obs.busy_retries;
        Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Lock_busy;
        backoff_delay cluster n;
        attempt (n + 1)
      end
      else if
        List.exists
          (fun (node, _, _, _, ep0) -> Cluster.space_epoch cluster node <> ep0)
          prepared
      then begin
        (* A participant crashed after voting yes: its volatile lock
           table died with it, and promotion re-locks only redo-logged
           write ranges, so the compares and reads it evaluated can no
           longer be claimed to hold at a stamp drawn now — a
           conflicting write may already have slipped onto the promoted
           image. Every participant voted yes, so recovery would
           otherwise drive this tid to commit: record the abort
           decision first, then release what can be reached and retry
           under a fresh tid. *)
        List.iter
          (fun (node, _, _, _, _) ->
            Redo_log.decide_abort (Cluster.redo_log cluster node) ~tid:owner;
            (* The promoted image may hold ranges re-locked under this
               tid (in-doubt relock at promotion); release them where a
               serving store is reachable. *)
            match Cluster.route cluster node with
            | _, store -> Lock_table.release (Memnode.store_locks store) ~owner
            | exception Cluster.Unavailable _ | exception Cluster.Partitioned _ -> ())
          prepared;
        abort_prepared ();
        Obs.Counter.incr stats.Obs.vote_epoch_aborts;
        Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Crashed_host;
        backoff_delay cluster n;
        attempt (n + 1)
      end
      else begin
        (* Every participant prepared: the decision is commit. The stamp
           is drawn here — after the last prepare, before any commit —
           while every participant's locks are held. *)
        let stamp = Cluster.take_stamp cluster in
        Obs.with_span obs Obs.Span.Mtx_commit (fun () ->
            ignore
              (parallel_map cluster prepared (fun (node, mn, store, _, _) ->
                   let part = List.assoc node parts in
                   round_trip_pinned cluster ~client mn
                     ~bytes_out:(Memnode.part_bytes part + request_overhead)
                     ~resp_bytes:(fun () -> response_overhead)
                     (fun () ->
                       (* A crash under phase two is survivable: the vote
                          is logged at every participant, so recovery
                          drives this commit to completion (all-yes
                          rule). The outcome below is still Committed. *)
                       (try
                          Memnode.commit_timed mn store ~owner part ~stamp
                            ~cost:(Memnode.part_cost cfg part);
                          if part.p_writes <> [] then
                            Cluster.mirror cluster node ~owner part.p_writes
                        with Memnode.Crashed -> ());
                       Memnode.end_serving mn store))));
        Obs.Counter.incr stats.Obs.committed_2pc;
        let reads = List.concat_map (fun (_, _, _, reads, _) -> reads) prepared in
        outcome_of_reads cluster mtx ~stamp (merge_reads [ reads ])
      end
    end
  in
  attempt 0

let exec cluster ?client ?(mode = Normal) mtx =
  if Mtx.is_empty mtx then
    Mtx.Committed { stamp = Cluster.take_stamp cluster; reads = []; epochs = [] }
  else
    let obs = Cluster.obs cluster in
    match
      match Mtx.memnodes mtx with
      | [] -> Mtx.Committed { stamp = Cluster.take_stamp cluster; reads = []; epochs = [] }
      | [ node ] -> exec_single cluster ~client ~mode mtx node
      | nodes -> exec_multi cluster ~client ~mode mtx nodes
    with
    | outcome -> outcome
    | exception Cluster.Unavailable _ ->
        (* A participant (and its backup) is down; surface it as an
           outcome instead of tearing the caller down. Under the drain
           model no write of this minitransaction can have been applied:
           single-phase failures happen before execution, multi-phase
           ones abort every prepared participant. *)
        Obs.Counter.incr (Obs.mtx obs).Obs.mtx_unavailable;
        Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Crashed_host;
        Mtx.Unavailable { maybe_applied = false; partitioned = false }
    | exception Cluster.Partitioned _ ->
        Obs.Counter.incr (Obs.mtx obs).Obs.mtx_unavailable;
        Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Partitioned;
        Mtx.Unavailable { maybe_applied = false; partitioned = true }
