type mode = Normal | Blocking

let round_trips mtx = if List.length (Mtx.memnodes mtx) <= 1 then 1 else 2

let request_overhead = 64

let response_overhead = 32

let read_bytes_of_result reads =
  List.fold_left (fun acc (_, data) -> acc + String.length data) response_overhead reads

(* One request/response exchange with the node currently serving memnode
   [node_id]'s address space: pay the request transfer, run [f] (which
   spends the memnode CPU while holding any locks it takes), pay the
   response transfer. *)
let round_trip cluster node_id ~bytes_out ~resp_bytes f =
  let net = Cluster.net cluster in
  Sim.Net.transfer net ~bytes:bytes_out;
  let mn, store = Cluster.route cluster node_id in
  let result = f mn store in
  Sim.Net.transfer net ~bytes:(resp_bytes result);
  result

let backoff_delay cluster attempt =
  let cfg = Cluster.config cluster in
  let base = cfg.Config.retry_backoff *. (2.0 ** float_of_int (min attempt 8)) in
  let capped = Float.min base cfg.Config.retry_backoff_max in
  Sim.delay (Sim.Rng.float (Cluster.rng cluster) capped)

let merge_reads parts_results =
  List.concat parts_results
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Reads are tagged with their index into [mtx.reads]; translate back to
   (address, data) pairs in declaration order. *)
let outcome_of_reads (mtx : Mtx.t) indexed =
  let arr = Array.of_list mtx.reads in
  Mtx.Committed (List.map (fun (i, data) -> ((arr.(i)).Mtx.r_addr, data)) indexed)

let exec_single cluster ~mode (mtx : Mtx.t) node =
  let cfg = Cluster.config cluster in
  let obs = Cluster.obs cluster in
  let stats = Obs.mtx obs in
  let part = Memnode.part_of_mtx mtx ~node in
  let cost = Memnode.part_cost cfg part in
  let bytes_out = Memnode.part_bytes part + request_overhead in
  let rec attempt n =
    if n > cfg.Config.max_retries then begin
      Obs.Counter.incr stats.Obs.retry_budget_exhausted;
      Mtx.Busy
    end
    else begin
      let owner = Cluster.fresh_owner cluster in
      let run mn store =
        match mode with
        | Normal -> Memnode.execute_single_timed mn store ~owner part ~cost
        | Blocking ->
            Memnode.execute_single_blocking_timed mn store ~owner part ~cost
              ~timeout:cfg.Config.blocking_timeout
      in
      let resp_bytes = function
        | Memnode.Prepared reads -> read_bytes_of_result reads
        | Memnode.Busy_locks | Memnode.Compare_failed _ -> response_overhead
      in
      let result =
        Obs.with_span obs Obs.Span.Mtx_exec (fun () ->
            round_trip cluster node ~bytes_out ~resp_bytes run)
      in
      match result with
      | Memnode.Prepared reads ->
          if part.p_writes <> [] then Cluster.mirror cluster node part.p_writes;
          Obs.Counter.incr stats.Obs.committed_1pc;
          outcome_of_reads mtx (merge_reads [ reads ])
      | Memnode.Busy_locks ->
          Obs.Counter.incr stats.Obs.busy_retries;
          Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Lock_busy;
          backoff_delay cluster n;
          attempt (n + 1)
      | Memnode.Compare_failed idxs ->
          Obs.Counter.incr stats.Obs.compare_failed;
          Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Validation_failed;
          Mtx.Failed_compare idxs
    end
  in
  attempt 0

(* Run [f node] for every node in parallel and wait for all results. *)
let parallel_map cluster nodes f =
  ignore cluster;
  let ivars = List.map (fun node -> (node, Sim.Ivar.create ())) nodes in
  List.iter
    (fun (node, ivar) ->
      Sim.spawn (fun () ->
          let result = try Ok (f node) with e -> Error e in
          Sim.Ivar.fill ivar result))
    ivars;
  List.map
    (fun (node, ivar) ->
      match Sim.Ivar.read ivar with Ok v -> (node, v) | Error e -> raise e)
    ivars

let exec_multi cluster ~mode (mtx : Mtx.t) nodes =
  let cfg = Cluster.config cluster in
  let obs = Cluster.obs cluster in
  let stats = Obs.mtx obs in
  let parts = List.map (fun node -> (node, Memnode.part_of_mtx mtx ~node)) nodes in
  let rec attempt n =
    if n > cfg.Config.max_retries then begin
      Obs.Counter.incr stats.Obs.retry_budget_exhausted;
      Mtx.Busy
    end
    else begin
      let owner = Cluster.fresh_owner cluster in
      (* Phase one: prepare at every participant in parallel. *)
      let prepare node =
        let part = List.assoc node parts in
        let cost = Memnode.part_cost cfg part in
        let bytes_out = Memnode.part_bytes part + request_overhead in
        let resp_bytes = function
          | Memnode.Prepared reads -> read_bytes_of_result reads
          | Memnode.Busy_locks | Memnode.Compare_failed _ -> response_overhead
        in
        round_trip cluster node ~bytes_out ~resp_bytes (fun mn store ->
            match mode with
            | Normal -> Memnode.prepare_timed mn store ~owner part ~cost
            | Blocking ->
                Memnode.prepare_blocking_timed mn store ~owner part ~cost
                  ~timeout:cfg.Config.blocking_timeout)
      in
      let results =
        Obs.with_span obs Obs.Span.Mtx_prepare (fun () -> parallel_map cluster nodes prepare)
      in
      let prepared_nodes =
        List.filter_map
          (fun (node, r) -> match r with Memnode.Prepared _ -> Some node | _ -> None)
          results
      in
      let abort_prepared () =
        ignore
          (parallel_map cluster prepared_nodes (fun node ->
               round_trip cluster node ~bytes_out:request_overhead
                 ~resp_bytes:(fun () -> response_overhead)
                 (fun mn store -> Memnode.abort_timed mn store ~owner ~cost:cfg.Config.svc_msg)))
      in
      let failed_compares =
        List.concat_map
          (fun (_, r) -> match r with Memnode.Compare_failed idxs -> idxs | _ -> [])
          results
      in
      if failed_compares <> [] then begin
        abort_prepared ();
        Obs.Counter.incr stats.Obs.compare_failed;
        Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Validation_failed;
        Mtx.Failed_compare (List.sort_uniq Int.compare failed_compares)
      end
      else if List.exists (fun (_, r) -> r = Memnode.Busy_locks) results then begin
        abort_prepared ();
        Obs.Counter.incr stats.Obs.busy_retries;
        Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Lock_busy;
        backoff_delay cluster n;
        attempt (n + 1)
      end
      else begin
        (* Phase two: commit everywhere in parallel, then mirror. *)
        Obs.with_span obs Obs.Span.Mtx_commit (fun () ->
            ignore
              (parallel_map cluster nodes (fun node ->
                   let part = List.assoc node parts in
                   round_trip cluster node
                     ~bytes_out:(Memnode.part_bytes part + request_overhead)
                     ~resp_bytes:(fun () -> response_overhead)
                     (fun mn store ->
                       Memnode.commit_timed mn store ~owner part
                         ~cost:(Memnode.part_cost cfg part);
                       if part.p_writes <> [] then Cluster.mirror cluster node part.p_writes))));
        Obs.Counter.incr stats.Obs.committed_2pc;
        let reads =
          List.concat_map
            (fun (_, r) -> match r with Memnode.Prepared reads -> reads | _ -> [])
            results
        in
        outcome_of_reads mtx (merge_reads [ reads ])
      end
    end
  in
  attempt 0

let exec cluster ?(mode = Normal) mtx =
  if Mtx.is_empty mtx then Mtx.Committed []
  else
    match
      match Mtx.memnodes mtx with
      | [] -> Mtx.Committed []
      | [ node ] -> exec_single cluster ~mode mtx node
      | nodes -> exec_multi cluster ~mode mtx nodes
    with
    | outcome -> outcome
    | exception Cluster.Unavailable _ ->
        (* A participant (and its backup) is down; surface it as an
           outcome instead of tearing the caller down. *)
        let obs = Cluster.obs cluster in
        Obs.Counter.incr (Obs.mtx obs).Obs.mtx_unavailable;
        Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Crashed_host;
        Mtx.Unavailable
