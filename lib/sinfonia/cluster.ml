type t = {
  config : Config.t;
  memnodes : Memnode.t array;
  redo_logs : Redo_log.t array; (* one per address space, shared primary/replica *)
  net : Sim.Net.t;
  obs : Obs.t;
  rng : Sim.Rng.t;
  mutable next_owner : int64;
  mutable next_stamp : int64;
}

exception Unavailable of int

exception Partitioned of int

let backup_index ~config ~n i =
  if config.Config.replication && n > 1 then Some ((i + 1) mod n) else None

(* Replica promotion, run synchronously from the crash hook: the instant
   a primary dies, its replica image is rolled forward through the redo
   log (mirrors that never arrived) and the write ranges of in-doubt
   transactions are re-locked under their tids — before any failover
   request can reach the stale image. [broken_recovery] skips the
   replay; the history checker must then see lost updates. *)
let promote t i =
  match backup_index ~config:t.config ~n:(Array.length t.memnodes) i with
  | None -> ()
  | Some b -> (
      match Memnode.replica t.memnodes.(b) ~of_node:i with
      | None -> ()
      | Some store ->
          let redo = Memnode.store_redo store in
          if not t.config.broken_recovery then begin
            let replayed = Redo_log.replay redo ~heap:(Memnode.store_heap store) in
            if replayed > 0 then
              Obs.Counter.add (Obs.recovery t.obs).Obs.redo_replayed replayed
          end;
          Memnode.relock_in_doubt store;
          Obs.Counter.incr (Obs.recovery t.obs).Obs.promotions)

let create ?(config = Config.default) ?(seed = 0xC1057E4) ~n () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one memnode";
  let rng = Sim.Rng.create seed in
  let net =
    Sim.Net.create ~one_way:config.net_one_way ~per_byte:config.net_per_byte
      ~jitter:config.net_jitter ~rng:(Sim.Rng.split rng) ()
  in
  let redo_logs = Array.init n (fun _ -> Redo_log.create ~retention:config.decision_retention ()) in
  let memnodes =
    Array.init n (fun id ->
        Memnode.create ~redo:redo_logs.(id) ~id ~cores:config.memnode_cores
          ~heap_capacity:config.heap_capacity ())
  in
  if config.replication && n > 1 then
    Array.iteri
      (fun i _ ->
        let backup = (i + 1) mod n in
        ignore
          (Memnode.add_replica memnodes.(backup) ~of_node:i ~heap_capacity:config.heap_capacity
             ~redo:redo_logs.(i)))
      memnodes;
  let t =
    { config; memnodes; redo_logs; net; obs = Obs.create (); rng; next_owner = 1L; next_stamp = 1L }
  in
  Array.iteri (fun i mn -> Memnode.set_crash_hook mn (fun () -> promote t i)) memnodes;
  t

let config t = t.config

let n_memnodes t = Array.length t.memnodes

let memnode t i = t.memnodes.(i)

(* Address space [i]'s crash epoch. The epoch lives on memnode [i]
   itself (bumped by Memnode.crash / crash_now, i.e. at the same instant
   its replica is promoted), so it is correct even while the space is
   being served from a backup. *)
let space_epoch t i = Memnode.epoch t.memnodes.(i)

let redo_log t i = t.redo_logs.(i)

let net t = t.net

let obs t = t.obs

let metrics t = Obs.metrics t.obs

let rng t = t.rng

let fresh_owner t =
  let owner = t.next_owner in
  t.next_owner <- Int64.add t.next_owner 1L;
  owner

let owner_watermark t = t.next_owner

(* Commit stamps share nothing with owner ids: owners identify lock
   holders, stamps order committed minitransactions. A stamp is only
   meaningful if drawn while the minitransaction's locks are held
   (coordinator / memnode duty, not ours). *)
let take_stamp t =
  let s = t.next_stamp in
  t.next_stamp <- Int64.add t.next_stamp 1L;
  s

let stamp_watermark t = t.next_stamp

let backup_of t i = backup_index ~config:t.config ~n:(Array.length t.memnodes) i

let route t i =
  let mn = t.memnodes.(i) in
  if Memnode.available mn then (mn, Memnode.primary mn)
  else if not (Memnode.crashed mn) then
    (* Draining toward a crash: refusing new requests here is what keeps
       the node's final state a transaction boundary. The failover below
       only engages once the crash has actually landed. *)
    raise (Unavailable i)
  else
    match backup_of t i with
    | None -> raise (Unavailable i)
    | Some b ->
        let bn = t.memnodes.(b) in
        if not (Memnode.available bn) then raise (Unavailable i)
        else (
          match Memnode.replica bn ~of_node:i with
          | Some store -> (bn, store)
          | None -> raise (Unavailable i))

let serving_host t i =
  let mn, _ = route t i in
  Memnode.id mn

(* Synchronous primary-backup mirror of one committed minitransaction's
   writes. Outcomes are recorded honestly in the redo log: only a mirror
   that actually reached the replica image marks the entry mirrored
   (allowing truncation); a skipped mirror — backup down, link
   partitioned, either end crashing mid-transfer — leaves the entry
   committed-but-unmirrored, and the recovery daemon's flush (or a
   promotion replay) delivers it later. *)
let mirror t i ~owner writes =
  let redo = t.redo_logs.(i) in
  if writes = [] then () (* decide_commit already auto-marked the entry *)
  else
    match backup_of t i with
    | None ->
        (* No replica to lag behind. *)
        Redo_log.mark_mirrored redo ~tid:owner
    | Some b -> (
        if Memnode.crashed t.memnodes.(i) then
          (* Serving from the replica: the writes went straight into the
             only live image. *)
          Redo_log.mark_mirrored redo ~tid:owner
        else
          let bn = t.memnodes.(b) in
          match Memnode.replica bn ~of_node:i with
          | None -> Redo_log.mark_mirrored redo ~tid:owner
          | Some store ->
              if
                Memnode.crashed bn
                || (not (Sim.Net.reachable t.net ~src:i ~dst:b))
                || not (Sim.Net.reachable t.net ~src:b ~dst:i)
              then Obs.Counter.incr (Obs.recovery t.obs).Obs.mirror_skipped
              else begin
                let ep = Memnode.epoch t.memnodes.(i) in
                let bytes =
                  List.fold_left (fun acc w -> acc + String.length w.Mtx.w_data) 64 writes
                in
                Sim.Net.transfer ~src:i ~dst:b t.net ~bytes;
                let cost =
                  t.config.backup_factor
                  *. (t.config.svc_msg +. (t.config.svc_per_kb *. (float_of_int bytes /. 1024.0)))
                in
                Memnode.serve bn ~cost;
                if Memnode.crashed bn || Memnode.epoch t.memnodes.(i) <> ep then
                  (* One end died while the mirror was in flight. If it
                     was the primary, its promotion already replayed this
                     entry; either way the log keeps it until some image
                     provably has it. *)
                  Obs.Counter.incr (Obs.recovery t.obs).Obs.mirror_skipped
                else begin
                  Redo_log.apply_mirror redo ~tid:owner ~heap:(Memnode.store_heap store);
                  Sim.Net.transfer ~src:b ~dst:i t.net ~bytes:32;
                  Obs.Counter.incr (Obs.mtx t.obs).Obs.mirrors
                end
              end)

(* Push aged committed-but-unmirrored redo entries to their replica
   image: Sinfonia's primary replaying its log to a backup that was down
   or partitioned when the mirror was first attempted. Age-gated so a
   mirror still in flight is never raced. *)
let flush_redo t ~grace =
  Array.iteri
    (fun i mn ->
      match backup_of t i with
      | None -> ()
      | Some b -> (
          match Memnode.replica t.memnodes.(b) ~of_node:i with
          | None -> ()
          | Some store ->
              if
                (not (Memnode.crashed mn))
                && (not (Memnode.crashed t.memnodes.(b)))
                && Sim.Net.reachable t.net ~src:i ~dst:b
                && Sim.Net.reachable t.net ~src:b ~dst:i
              then begin
                let n =
                  Redo_log.replay ~min_age:grace t.redo_logs.(i)
                    ~heap:(Memnode.store_heap store)
                in
                if n > 0 then begin
                  Sim.Net.transfer ~src:i ~dst:b t.net ~bytes:(256 * n);
                  Obs.Counter.add (Obs.recovery t.obs).Obs.redo_replayed n
                end
              end))
    t.memnodes

let recovery_env t =
  {
    Recovery.n_spaces = Array.length t.memnodes;
    serving = (fun i -> match route t i with s -> Some s | exception Unavailable _ -> None);
    reachable = (fun ~src ~dst -> Sim.Net.reachable t.net ~src ~dst);
    transfer = (fun ~src ~dst ~bytes -> Sim.Net.transfer ~src ~dst t.net ~bytes);
    take_stamp = (fun () -> take_stamp t);
    grace = t.config.in_doubt_grace;
    obs = t.obs;
  }

let start_recovery ?(lease = 0.25) ?(interval = 1.0) t =
  Array.iter
    (fun mn ->
      Sim.spawn ~name:"sinfonia-recovery" (fun () ->
          let rec loop () =
            Sim.delay interval;
            let recovered = Memnode.recover_orphaned_locks mn ~lease in
            if recovered > 0 then
              Obs.Counter.add (Obs.mtx t.obs).Obs.orphans_released recovered;
            loop ()
          in
          loop ()))
    t.memnodes;
  (* The in-doubt resolver: one cluster-wide daemon sweeping every
     space's redo log, plus the lagging-replica flush. *)
  let env = recovery_env t in
  Sim.spawn ~name:"sinfonia-in-doubt" (fun () ->
      let rec loop () =
        Sim.delay interval;
        flush_redo t ~grace:t.config.in_doubt_grace;
        Recovery.sweep env;
        loop ()
      in
      loop ())

let crash t i =
  (if t.config.fail_stop_at_boundaries then Memnode.crash t.memnodes.(i)
   else Memnode.crash_now t.memnodes.(i));
  Obs.Counter.incr (Obs.mtx t.obs).Obs.crashes

let crash_now t i =
  Memnode.crash_now t.memnodes.(i);
  Obs.Counter.incr (Obs.mtx t.obs).Obs.crashes

let can_recover t i =
  Memnode.crashed t.memnodes.(i)
  &&
  match backup_of t i with
  | None -> false
  | Some b -> (
      match Memnode.replica t.memnodes.(b) ~of_node:i with
      | None -> false
      | Some store ->
          (* A replica mid-minitransaction (serving as failover) must
             finish before its image is copied back, or the restored
             primary would miss the in-flight writes. *)
          Memnode.store_serving store = 0)

type recover_error = Not_crashed | No_replica | Replica_busy

let recover_error_to_string = function
  | Not_crashed -> "node is not crashed"
  | No_replica -> "no replica to restore from"
  | Replica_busy -> "replica is serving in-flight requests"

let try_recover t i =
  if not (Memnode.crashed t.memnodes.(i)) then Error Not_crashed
  else
    match backup_of t i with
    | None -> Error No_replica
    | Some b -> (
        match Memnode.replica t.memnodes.(b) ~of_node:i with
        | None -> Error No_replica
        | Some store ->
            if Memnode.store_serving store > 0 then Error Replica_busy
            else begin
              let replayed =
                Memnode.recover ~broken:t.config.broken_recovery t.memnodes.(i)
                  ~from_replica:store
              in
              if replayed > 0 then
                Obs.Counter.add (Obs.recovery t.obs).Obs.redo_replayed replayed;
              Obs.Counter.incr (Obs.mtx t.obs).Obs.recoveries;
              Ok ()
            end)

let recover t i =
  match try_recover t i with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Cluster.recover: %s" (recover_error_to_string e))

let redo_decisions t =
  Array.to_list t.redo_logs
  |> List.mapi (fun space log ->
         List.map (fun (tid, d) -> (space, tid, d)) (Redo_log.decisions log))
  |> List.concat

let in_doubt_total t =
  Array.fold_left (fun acc log -> acc + Redo_log.in_doubt_count log) 0 t.redo_logs
