type t = {
  config : Config.t;
  memnodes : Memnode.t array;
  net : Sim.Net.t;
  obs : Obs.t;
  rng : Sim.Rng.t;
  mutable next_owner : int64;
  mutable next_stamp : int64;
}

exception Unavailable of int

exception Partitioned of int

let create ?(config = Config.default) ?(seed = 0xC1057E4) ~n () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one memnode";
  let rng = Sim.Rng.create seed in
  let net =
    Sim.Net.create ~one_way:config.net_one_way ~per_byte:config.net_per_byte
      ~jitter:config.net_jitter ~rng:(Sim.Rng.split rng) ()
  in
  let memnodes =
    Array.init n (fun id ->
        Memnode.create ~id ~cores:config.memnode_cores ~heap_capacity:config.heap_capacity)
  in
  if config.replication && n > 1 then
    Array.iteri
      (fun i _ ->
        let backup = (i + 1) mod n in
        ignore
          (Memnode.add_replica memnodes.(backup) ~of_node:i ~heap_capacity:config.heap_capacity))
      memnodes;
  { config; memnodes; net; obs = Obs.create (); rng; next_owner = 1L; next_stamp = 1L }

let config t = t.config

let n_memnodes t = Array.length t.memnodes

let memnode t i = t.memnodes.(i)

let net t = t.net

let obs t = t.obs

let metrics t = Obs.metrics t.obs

let rng t = t.rng

let fresh_owner t =
  let owner = t.next_owner in
  t.next_owner <- Int64.add t.next_owner 1L;
  owner

let owner_watermark t = t.next_owner

(* Commit stamps share nothing with owner ids: owners identify lock
   holders, stamps order committed minitransactions. A stamp is only
   meaningful if drawn while the minitransaction's locks are held
   (coordinator / memnode duty, not ours). *)
let take_stamp t =
  let s = t.next_stamp in
  t.next_stamp <- Int64.add t.next_stamp 1L;
  s

let stamp_watermark t = t.next_stamp

let backup_of t i =
  if t.config.replication && Array.length t.memnodes > 1 then
    Some ((i + 1) mod Array.length t.memnodes)
  else None

let route t i =
  let mn = t.memnodes.(i) in
  if Memnode.available mn then (mn, Memnode.primary mn)
  else if not (Memnode.crashed mn) then
    (* Draining toward a crash: refusing new requests here is what keeps
       the node's final state a transaction boundary. The failover below
       only engages once the crash has actually landed. *)
    raise (Unavailable i)
  else
    match backup_of t i with
    | None -> raise (Unavailable i)
    | Some b ->
        let bn = t.memnodes.(b) in
        if not (Memnode.available bn) then raise (Unavailable i)
        else (
          match Memnode.replica bn ~of_node:i with
          | Some store -> (bn, store)
          | None -> raise (Unavailable i))

let serving_host t i =
  let mn, _ = route t i in
  Memnode.id mn

let mirror t i writes =
  if writes <> [] then
    match backup_of t i with
    | None -> ()
    | Some b ->
        if Memnode.crashed t.memnodes.(i) then
          (* Already serving from the replica; it is the only copy. *)
          ()
        else begin
          let bn = t.memnodes.(b) in
          match Memnode.replica bn ~of_node:i with
          | None -> ()
          | Some store when Memnode.crashed bn ->
              (* Backup down: Sinfonia's primary logs the update and the
                 backup replays the log when it returns. We model the
                 eventual catch-up by applying the writes to the replica
                 image directly (no network or CPU cost — nothing is
                 serving), so the replica is never silently stale if the
                 primary crashes later. *)
              Memnode.apply_writes store writes;
              Obs.Counter.incr (Obs.mtx t.obs).Obs.mirrors
          | Some store ->
              let bytes =
                List.fold_left (fun acc w -> acc + String.length w.Mtx.w_data) 64 writes
              in
              Sim.Net.transfer ~src:i ~dst:b t.net ~bytes;
              let cost =
                t.config.backup_factor
                *. (t.config.svc_msg +. (t.config.svc_per_kb *. (float_of_int bytes /. 1024.0)))
              in
              Memnode.serve bn ~cost;
              Memnode.apply_writes store writes;
              Sim.Net.transfer ~src:b ~dst:i t.net ~bytes:32;
              Obs.Counter.incr (Obs.mtx t.obs).Obs.mirrors
        end

let start_recovery ?(lease = 0.25) ?(interval = 1.0) t =
  Array.iter
    (fun mn ->
      Sim.spawn ~name:"sinfonia-recovery" (fun () ->
          let rec loop () =
            Sim.delay interval;
            let recovered = Memnode.recover_orphaned_locks mn ~lease in
            if recovered > 0 then
              Obs.Counter.add (Obs.mtx t.obs).Obs.orphans_released recovered;
            loop ()
          in
          loop ()))
    t.memnodes

let crash t i =
  Memnode.crash t.memnodes.(i);
  Obs.Counter.incr (Obs.mtx t.obs).Obs.crashes

let can_recover t i =
  Memnode.crashed t.memnodes.(i)
  &&
  match backup_of t i with
  | None -> false
  | Some b -> (
      match Memnode.replica t.memnodes.(b) ~of_node:i with
      | None -> false
      | Some store ->
          (* A replica mid-minitransaction (serving as failover) must
             finish before its image is copied back, or the restored
             primary would miss the in-flight writes. *)
          Memnode.store_serving store = 0)

let recover t i =
  if not (Memnode.crashed t.memnodes.(i)) then
    invalid_arg "Cluster.recover: node is not crashed";
  match backup_of t i with
  | None -> invalid_arg "Cluster.recover: replication disabled"
  | Some b -> (
      match Memnode.replica t.memnodes.(b) ~of_node:i with
      | None -> invalid_arg "Cluster.recover: no replica"
      | Some store ->
          if Memnode.store_serving store > 0 then
            invalid_arg "Cluster.recover: replica is serving in-flight requests";
          Memnode.recover t.memnodes.(i) ~from_replica:store;
          Obs.Counter.incr (Obs.mtx t.obs).Obs.recoveries)
