(** Zero-copy view over the slotted (v2) node wire format.

    A view wraps the raw payload bytes fetched from a memnode and
    answers [leaf_find] / [child_for] / fence checks by binary-searching
    a slotted, common-prefix-truncated key directory in place — offsets
    into the buffer, no per-key string materialisation. Structural
    bounds (slot directory, entry spans) are validated once at
    construction; the CRC trailer is verified on the materialise/write
    path ({!verify_crc}), while hot-path reads rely on the same
    fence/height/version checks and OCC validation that guard every
    other dirty read. See DESIGN.md ("Slotted node layout"). *)

type t

val magic : int
(** Leading byte of the slotted format (0xB5), distinct from the legacy
    kind bytes 0/1 so decoders can dispatch. *)

val is_slotted : string -> bool

val of_string : string -> t
(** Parse and bounds-validate the header and slot directory. Raises
    {!Codec.Decode_error} on truncation, bad magic, or any slot/entry
    span that escapes the entry region. Does not fold the CRC. *)

val verify_crc : t -> unit
(** Verify the CRC-32 trailer in place; raises {!Codec.Decode_error}. *)

val payload_length : t -> int

(** {1 Header accessors} *)

val is_leaf : t -> bool
val height : t -> int

val stamp : t -> int64
(** Content stamp: FNV-1a-64 over the encoded body, stable across
    re-encodings of the same logical node. *)

val snap_created : t -> int64
val low : t -> Bkey.fence
val high : t -> Bkey.fence
val in_range : t -> Bkey.t -> bool
val nkeys : t -> int
val n_descendants : t -> int
val exists_descendant : t -> (int64 -> bool) -> bool
val descendants : t -> int64 array

(** {1 In-place search} *)

val search : t -> Bkey.t -> (int, int) result
(** [Ok i] when the key is the [i]th key of the node, [Error i] with the
    insertion point otherwise. The query is compared against the common
    prefix once; binary-search probes compare suffix spans only. *)

val lower_bound : t -> Bkey.t -> int
(** Index of the first key [>=] the argument ([nkeys] if none). *)

val leaf_find : t -> Bkey.t -> string option

val key : t -> int -> string
(** Materialise one key (prefix ^ suffix). *)

val leaf_value : t -> int -> string
val leaf_entry : t -> int -> Bkey.t * string

(** {1 Child routing (internal nodes)} *)

val child_count : t -> int
(** [nkeys + 1] for internal nodes, 0 for leaves. *)

val child_index : t -> Bkey.t -> int
val child_at : t -> int -> Dyntxn.Objref.t
val child_for : t -> Bkey.t -> int * Dyntxn.Objref.t

(** {1 Materialisation helpers} *)

val leaf_entries : t -> (Bkey.t * string) array
val internal_keys : t -> Bkey.t array
val children : t -> Dyntxn.Objref.t array

(** {1 Stamps on raw payloads} *)

val same_stamp : string -> string -> bool
(** Whether two raw payloads are both slotted nodes carrying the same
    content stamp — the object cache's revalidation predicate; neither
    payload is decoded. *)

val stamp_of_payload : string -> int64 option

val dir_bounds : t -> int * int
(** [(offset, length)] of the slot directory within the payload — a
    testing hook for corruption falsifiability checks. *)

(** {1 Encoding} *)

type body_spec =
  | Leaf_spec of (Bkey.t * string) array
  | Internal_spec of Bkey.t array * Dyntxn.Objref.t array

val encode_into :
  Codec.Enc.t ->
  height:int ->
  low:Bkey.fence ->
  high:Bkey.fence ->
  snap:int64 ->
  descendants:int64 array ->
  body_spec ->
  bool
(** Append the slotted content (stamp patched in, no CRC trailer — the
    caller frames with {!Codec.Enc.to_string_with_checksum}). Returns
    [false], leaving the encoder untouched, when the node exceeds the
    format's u16 limits; callers fall back to the legacy encoding. *)
