open Sinfonia
module Objref = Dyntxn.Objref
module Txn = Dyntxn.Txn
module Objcache = Dyntxn.Objcache
module View = Bnode.View

type mode = Dirty_traversal | Validated_traversal

type tree = {
  cluster : Cluster.t;
  obs : Obs.t;
  stats : Obs.btree_stats; (* typed counter handles, resolved once *)
  sstats : Obs.scan_stats;
  nstats : Obs.node_stats;
  layout : Layout.t;
  tree_id : int;
  mode : mode;
  max_keys_leaf : int;
  max_keys_internal : int;
  max_op_retries : int;
  (* Leaves fetched per minitransaction round trip by batched scans;
     1 disables batching (per-leaf re-traversal, the old behaviour). *)
  scan_batch : int;
  home : int;
  client : int option;
  (* Deliberately broken mode for checker validation: leaf reads of
     up-to-date operations skip the read set (no commit-time
     validation). Gets can then serialize against a stale leaf — a
     violation the history checker must catch. Never enable outside
     checker self-tests. *)
  unsafe_dirty_leaf_reads : bool;
  alloc : Node_alloc.t;
  cache : Objcache.t;
  (* Commit stamp of the last operation that committed through this
     handle (see [Txn.commit_stamp]); [None] for dirty-only (snapshot)
     transactions. Read back by session-level tracing right after an
     operation returns — safe because the simulator is cooperative and
     operations on one handle do not interleave without a yield. *)
  mutable last_stamp : int64 option;
  (* Node-view memo keyed by (location, sequence number): node versions
     are immutable, so a (ptr, seq) pair identifies the parsed view
     forever. Purely a wall-clock optimization of the simulator — no
     simulated cost depends on it. *)
  view_memo : (Objref.t * int64, View.t) Hashtbl.t;
  (* Reusable encoder for the node-write path: reset per write, the
     framed payload is extracted in a single allocation. *)
  enc : Codec.Enc.t;
}

exception Too_contended of string

exception Ambiguous of string

let decode_memo_capacity = 16384

(* Conservative per-entry wire estimates for deriving key capacities
   from the node size (YCSB schema: 14-byte keys, 8-byte values). *)
let leaf_entry_bytes = 40

let internal_entry_bytes = 40

let make_tree ?(mode = Dirty_traversal) ?max_keys_leaf ?max_keys_internal ?(max_op_retries = 64)
    ?(scan_batch = 16) ?(home = 0) ?client ?(unsafe_dirty_leaf_reads = false) ~cluster ~layout
    ~tree_id ~alloc ~cache () =
  let budget = layout.Layout.node_size - 128 in
  let derived_leaf = max 4 (budget / leaf_entry_bytes) in
  let derived_internal = max 4 (budget / internal_entry_bytes) in
  let obs = Cluster.obs cluster in
  {
    cluster;
    obs;
    stats = Obs.btree obs;
    sstats = Obs.scan obs;
    nstats = Obs.node obs;
    layout;
    tree_id;
    mode;
    max_keys_leaf = Option.value max_keys_leaf ~default:derived_leaf;
    max_keys_internal = Option.value max_keys_internal ~default:derived_internal;
    max_op_retries;
    scan_batch = max 1 scan_batch;
    home;
    client;
    unsafe_dirty_leaf_reads;
    alloc;
    cache;
    last_stamp = None;
    view_memo = Hashtbl.create 1024;
    enc = Codec.Enc.create ~initial_size:1024 ();
  }

let cluster t = t.cluster

let tree_id t = t.tree_id

let mode t = t.mode

let home t = t.home

let layout t = t.layout

let proxy_cache t = t.cache

let last_commit_stamp t = t.last_stamp

type disc = { disc_at : int64; disc_covered : int64 array }

type cow_plan = { old_descendants : int64 array; discretionary : disc list }

type vctx = {
  snap : int64;
  root : Objref.t;
  writable : bool;
  is_ancestor : int64 -> int64 -> bool;
  plan_cow : created:int64 -> descendants:int64 array -> cow_plan;
  root_of : Txn.t -> int64 -> Objref.t;
}


(* -------------------------------------------------------------------- *)
(* Node I/O                                                              *)
(* -------------------------------------------------------------------- *)

(* Used on cold paths (snapshot creation, audit helpers) that want a
   fully materialised node straight away. *)
let decode_node txn payload =
  if String.length payload = 0 then Txn.abort txn
  else
    match Bnode.decode payload with
    | node -> node
    | exception Codec.Decode_error _ -> Txn.abort txn

(* Hot-path variant: wrap the wire bytes in a zero-copy view. Slotted
   payloads answer searches in place; legacy payloads fall back to a
   full decode inside the view. *)
let view_of_payload txn payload =
  if String.length payload = 0 then Txn.abort txn
  else
    match View.of_payload payload with
    | v -> v
    | exception Codec.Decode_error _ -> Txn.abort txn

let count_view tree v = if View.is_slotted v then Obs.Counter.incr tree.nstats.Obs.view_hits

let view_node_memo tree txn ptr seq payload =
  (* Never memoize a read served from the transaction's own buffered
     write: the payload is uncommitted and [seq] still names the old
     version. *)
  if Txn.in_write_set txn ptr then view_of_payload txn payload
  else begin
    let key = (ptr, seq) in
    match Hashtbl.find_opt tree.view_memo key with
    | Some v ->
        count_view tree v;
        v
    | None ->
        let v = view_of_payload txn payload in
        count_view tree v;
        if Hashtbl.length tree.view_memo >= decode_memo_capacity then
          Hashtbl.reset tree.view_memo;
        Hashtbl.add tree.view_memo key v;
        v
  end

(* The write path materialises a view into a [Bnode.t] it can mutate;
   this is the copy boundary, and the only place the slotted payload's
   checksum is verified (reads are guarded by the traversal safety
   checks instead, like any other unvalidated data). *)
let materialise tree txn v =
  if View.is_slotted v then begin
    Obs.Counter.incr tree.nstats.Obs.materialisations;
    Obs.Counter.add tree.nstats.Obs.node_bytes_copied (View.payload_length v)
  end;
  match View.materialise v with
  | node -> node
  | exception Codec.Decode_error _ -> Txn.abort txn

(* Read an internal node during traversal. In dirty mode this is a plain
   dirty read (cache-friendly, unvalidated). In the baseline mode it is
   also served without joining the read set, but the node's replicated
   sequence-number entry is registered for commit-time validation —
   Aguilera et al.'s full-path validation at a single memnode. *)
let read_internal tree txn (ptr : Objref.t) =
  match tree.mode with
  | Dirty_traversal ->
      let seq, payload = Txn.dirty_read_with_seq txn ptr in
      view_node_memo tree txn ptr seq payload
  | Validated_traversal ->
      let seq, payload = Txn.dirty_read_with_seq txn ptr in
      let v = view_node_memo tree txn ptr seq payload in
      (* Only internal nodes have replicated sequence-number entries; a
         one-level tree's root is a leaf and is validated directly. *)
      if not (View.is_leaf v) then
        Txn.validate_replicated txn
          ~off:(Layout.seq_entry_off tree.layout ptr.Objref.addr)
          ~seq;
      v

(* Leaves are always fetched from Sinfonia, never from the proxy cache
   (Sec. 4.2). Up-to-date operations read them transactionally;
   read-only snapshot operations use an unvalidated read guarded by the
   traversal safety checks. *)
let read_leaf tree txn vctx ~read_only (ptr : Objref.t) =
  (* The broken mode only skips validation for pure reads: write
     traversals stay safe (their leaf read is promoted into the read
     set by the write), so the damage is exactly a stale read — which
     the history checker must catch — and never structural. *)
  let unsafe = tree.unsafe_dirty_leaf_reads && read_only in
  let seq, payload =
    if vctx.writable && not unsafe then Txn.read_with_seq txn ptr
    else Txn.dirty_read_with_seq ~use_cache:false txn ptr
  in
  view_node_memo tree txn ptr seq payload

(* Writes of internal nodes in baseline mode must republish the node's
   sequence number to the replicated table at every memnode, which is
   what makes splits expensive there (Sec. 3). *)
let write_node tree txn (ptr : Objref.t) (node : Bnode.t) =
  Codec.Enc.reset tree.enc;
  Bnode.encode_into tree.enc node;
  let payload = Codec.Enc.to_string_with_checksum tree.enc in
  match tree.mode with
  | Validated_traversal when not (Bnode.is_leaf node) ->
      Txn.write_linked txn ptr payload ~repl_off:(Layout.seq_entry_off tree.layout ptr.Objref.addr)
  | Dirty_traversal | Validated_traversal -> Txn.write txn ptr payload

(* -------------------------------------------------------------------- *)
(* Traversal (Fig. 5, plus the version checks of Secs. 4.2 and 5.2)      *)
(* -------------------------------------------------------------------- *)

(* Safety checks executed at every visited node. Aborting (rather than
   failing) is correct: the retry re-traverses with fresh data. *)
let check_node tree txn vctx (v : View.t) k =
  (* Fence keys: [k] must be within the node's responsibility range. *)
  if not (View.in_range v k) then begin
    Obs.Counter.incr tree.stats.Obs.abort_fence;
    Obs.abort tree.obs ~layer:Obs.Abort.Btree Obs.Abort.Fence_violation;
    Txn.abort txn
  end;
  (* The node's version must lie on the path to [vctx.snap]... *)
  if not (vctx.is_ancestor (View.snap_created v) vctx.snap) then begin
    Obs.Counter.incr tree.stats.Obs.abort_version;
    Obs.abort tree.obs ~layer:Obs.Abort.Btree Obs.Abort.Snapshot_stale;
    Txn.abort txn
  end;
  (* ...and must not have been superseded by a copy on that path. *)
  if View.exists_descendant v (fun d -> vctx.is_ancestor d vctx.snap) then begin
    Obs.Counter.incr tree.stats.Obs.abort_copied;
    Obs.abort tree.obs ~layer:Obs.Abort.Btree Obs.Abort.Snapshot_stale;
    Txn.abort txn
  end

type step = { s_ptr : Objref.t; s_view : View.t; s_child : int }

(* Traverse from the root to the leaf responsible for [k] at
   [vctx.snap]. Returns the internal path (root first) and the leaf. *)
let traverse ?(read_only = false) tree txn vctx k =
  Obs.with_span tree.obs
    ~outcome_of_exn:(function
      | Txn.Aborted msg -> Some (Obs.Span.Failed msg) | _ -> None)
    Obs.Span.Traversal
  @@ fun () ->
  (* The root is internal in any tree with two or more levels; a
     one-level tree's root is the leaf itself. Its kind is unknown
     before reading it, so read it dirty first and, for a writable
     context, re-read a leaf root transactionally so it joins the read
     set. *)
  let root = read_internal tree txn vctx.root in
  let root =
    if View.is_leaf root && vctx.writable then read_leaf tree txn vctx ~read_only vctx.root
    else root
  in
  check_node tree txn vctx root k;
  let rec descend path ptr (v : View.t) =
    if View.is_leaf v then (List.rev path, ptr, v)
    else begin
      let idx, child_ptr = View.child_for v k in
      let child =
        if View.height v > 1 then read_internal tree txn child_ptr
        else read_leaf tree txn vctx ~read_only child_ptr
      in
      if View.height child <> View.height v - 1 then begin
        (* Fatal inconsistency (Fig. 5 line 15): stale pointers led us to
           a node at the wrong level. *)
        Obs.Counter.incr tree.stats.Obs.abort_height;
        Obs.abort tree.obs ~layer:Obs.Abort.Btree Obs.Abort.Height_mismatch;
        Txn.abort txn
      end;
      check_node tree txn vctx child k;
      descend ({ s_ptr = ptr; s_view = v; s_child = idx } :: path) child_ptr child
    end
  in
  descend [] vctx.root root

(* -------------------------------------------------------------------- *)
(* Copy-on-write and split propagation                                    *)
(* -------------------------------------------------------------------- *)

(* What a child level asks its parent to record. *)
type child_update =
  | Replace of Objref.t
  | Split_into of { left : Objref.t; sep : Bkey.t; right : Objref.t }

let max_keys tree (node : Bnode.t) =
  if Bnode.is_leaf node then tree.max_keys_leaf else tree.max_keys_internal

(* Apply [update] to the parent chain [path] (deepest parent first),
   copying and splitting as needed. [relink] performs the discretionary
   copy-on-write recursion; tied via a forward reference because the
   relink itself re-enters the update machinery at another snapshot. *)
let rec apply_up tree txn vctx path (update : child_update) =
  match path with
  | [] ->
      (* Only reachable when the root needed replacement, which cannot
         happen: the tip's root is always already at [vctx.snap] and is
         split in place. *)
      assert false
  | { s_ptr; s_view; s_child } :: rest ->
      let s_node = materialise tree txn s_view in
      let updated =
        match update with
        | Replace p -> Bnode.replace_child s_node s_child p
        | Split_into { left; sep; right } ->
            Bnode.insert_sep (Bnode.replace_child s_node s_child left) ~at:s_child ~sep ~right
      in
      place_node tree txn vctx ~path:rest ~ptr:s_ptr ~old:s_node ~updated

(* Write [updated] (the new content of the node at [ptr], whose
   previously committed content was [old]) at snapshot [vctx.snap]:
   in place when the node already belongs to the snapshot, via
   copy-on-write otherwise; splitting when over capacity; propagating
   pointer changes to the parent chain [path]. *)
and place_node tree txn vctx ~path ~ptr ~(old : Bnode.t) ~(updated : Bnode.t) =
  let is_root = path = [] in
  let at_snap = Int64.equal old.Bnode.snap_created vctx.snap in
  let overflow = Bnode.needs_split updated ~max_keys:(max_keys tree updated) in
  if at_snap then begin
    if not overflow then write_node tree txn ptr updated
    else if is_root then split_root tree txn ptr updated
    else begin
      let left, sep, right = Bnode.split updated in
      let right_ptr = Node_alloc.alloc tree.alloc in
      write_node tree txn ptr left;
      write_node tree txn right_ptr right;
      Obs.Counter.incr tree.stats.Obs.splits;
      apply_up tree txn vctx path (Split_into { left = ptr; sep; right = right_ptr })
    end
  end
  else begin
    (* The node belongs to an earlier snapshot: copy-on-write. The root
       can never take this branch (it is copied at snapshot creation),
       so [path] is nonempty. *)
    if is_root then (* stale root: snapshot changed under us *) Txn.abort txn;
    cow_mark_old tree txn vctx ~ptr ~old;
    let fresh = Bnode.with_snap updated vctx.snap in
    (* Copies stay on the original's memnode: copy-on-write then
       preserves the allocator's load balance (and the copy commits at
       the same memnode as the old version's invalidation). *)
    let home_node = Objref.node ptr in
    if not overflow then begin
      let new_ptr = Node_alloc.alloc_on tree.alloc ~node:home_node in
      write_node tree txn new_ptr fresh;
      Obs.Counter.incr tree.stats.Obs.cow;
      apply_up tree txn vctx path (Replace new_ptr)
    end
    else begin
      let left, sep, right = Bnode.split fresh in
      let left_ptr = Node_alloc.alloc_on tree.alloc ~node:home_node in
      let right_ptr = Node_alloc.alloc tree.alloc in
      write_node tree txn left_ptr left;
      write_node tree txn right_ptr right;
      Obs.Counter.incr tree.stats.Obs.cow;
      Obs.Counter.incr tree.stats.Obs.splits;
      apply_up tree txn vctx path (Split_into { left = left_ptr; sep; right = right_ptr })
    end
  end

(* Record on the old node that it has been copied to [vctx.snap]
   (Sec. 4.2), applying the β-bounding plan and any discretionary
   copy-on-write it requires (Sec. 5.2). Writing the old node promotes
   it into the read set, so a concurrent copy of the same node aborts
   one of the writers. *)
and cow_mark_old tree txn vctx ~ptr ~(old : Bnode.t) =
  let plan =
    vctx.plan_cow ~created:old.Bnode.snap_created ~descendants:old.Bnode.descendants
  in
  write_node tree txn ptr (Bnode.with_descendants old plan.old_descendants);
  List.iter
    (fun { disc_at; disc_covered } ->
      (* Make a content-identical copy of [old] owned by snapshot
         [disc_at] and take over the covered descendants; then swing the
         pointer on [disc_at]'s path onto it. Logically a no-op for
         every snapshot; physically it keeps descendant sets bounded. *)
      let copy = Bnode.with_descendants (Bnode.with_snap old disc_at) disc_covered in
      let copy_ptr = Node_alloc.alloc_on tree.alloc ~node:(Objref.node ptr) in
      write_node tree txn copy_ptr copy;
      Obs.Counter.incr tree.stats.Obs.discretionary_cow;
      relink tree txn vctx ~at:disc_at ~old_ptr:ptr ~old ~new_ptr:copy_ptr)
    plan.discretionary

(* Replace the pointer to [old_ptr] with [new_ptr] on snapshot [at]'s
   path (discretionary copy-on-write). Runs inside the same dynamic
   transaction, so the whole maneuver is atomic. *)
and relink tree txn vctx ~at ~old_ptr ~(old : Bnode.t) ~new_ptr =
  let root = vctx.root_of txn at in
  let sub_vctx = { vctx with snap = at; root } in
  (* Any key in the old node's range identifies the path to it. *)
  let probe_key =
    match old.Bnode.low with
    | Bkey.Key k -> k
    | Bkey.Neg_inf -> ""
    | Bkey.Pos_inf -> assert false
  in
  let rec descend path ptr (v : View.t) =
    if View.height v <= old.Bnode.height then (* overshot: stale state *) Txn.abort txn
    else begin
      let idx, child_ptr = View.child_for v probe_key in
      if Objref.equal child_ptr old_ptr then
        (* [path] already lists deepest parents first. *)
        apply_up tree txn sub_vctx
          ({ s_ptr = ptr; s_view = v; s_child = idx } :: path)
          (Replace new_ptr)
      else begin
        let child = read_internal tree txn child_ptr in
        if View.height child <> View.height v - 1 then Txn.abort txn;
        check_node tree txn sub_vctx child probe_key;
        descend ({ s_ptr = ptr; s_view = v; s_child = idx } :: path) child_ptr child
      end
    end
  in
  let root_node = read_internal tree txn root in
  check_node tree txn sub_vctx root_node probe_key;
  if Objref.equal root old_ptr then
    (* The old node is the snapshot's root itself; roots are never
       discretionarily copied (they are per-snapshot already). *)
    Txn.abort txn
  else descend [] root root_node

(* In-place root split: the root's address is fixed per snapshot
   (Sec. 4.1), so the overflowing content moves into two fresh children
   and the root is rewritten one level taller. *)
and split_root tree txn (root_ptr : Objref.t) (updated : Bnode.t) =
  let left, sep, right = Bnode.split updated in
  let left_ptr = Node_alloc.alloc tree.alloc in
  let right_ptr = Node_alloc.alloc tree.alloc in
  write_node tree txn left_ptr left;
  write_node tree txn right_ptr right;
  let new_root =
    Bnode.make_internal
      ~height:(updated.Bnode.height + 1)
      ~low:updated.Bnode.low ~high:updated.Bnode.high ~snap:updated.Bnode.snap_created
      ~keys:[| sep |]
      ~children:[| left_ptr; right_ptr |]
  in
  write_node tree txn root_ptr new_root;
  Obs.Counter.incr tree.stats.Obs.root_splits;
  Obs.Counter.incr tree.stats.Obs.splits

(* -------------------------------------------------------------------- *)
(* Retry wrapper                                                          *)
(* -------------------------------------------------------------------- *)

(* Aborts caused by an outage (crashed or partitioned memnode) back off
   on the outage's timescale — milliseconds, waiting out failover or a
   partition heal — instead of the microsecond contention backoff. The
   fetch path surfaces outages as [Txn.Aborted] with these messages. *)
let outage_abort_msg = function "memnode unavailable" | "memnode partitioned" -> true | _ -> false

let outage_backoff tree attempt =
  let cap = 1e-3 *. float_of_int (min (attempt + 1) 16) in
  Sim.delay (Sim.Rng.float (Cluster.rng tree.cluster) cap)

let with_retries tree op_name f =
  Obs.with_span tree.obs Obs.Span.Txn @@ fun () ->
  let rec go attempt =
    if attempt >= tree.max_op_retries then
      raise (Too_contended (Printf.sprintf "%s: %d attempts" op_name attempt));
    if attempt > 0 then begin
      Obs.Counter.incr tree.stats.Obs.op_retries;
      (* Jittered backoff decorrelates repeatedly conflicting
         operations. *)
      let cap = 20e-6 *. float_of_int (min attempt 6) in
      Sim.delay (Sim.Rng.float (Cluster.rng tree.cluster) cap)
    end;
    let span = Obs.span_begin tree.obs Obs.Span.Attempt in
    let txn = Txn.begin_ ~cache:tree.cache ?client:tree.client ~home:tree.home tree.cluster in
    match f txn with
    | result -> (
        match Txn.commit txn with
        | Txn.Committed ->
            tree.last_stamp <- Txn.commit_stamp txn;
            Obs.span_end tree.obs span;
            result
        | Txn.Validation_failed ->
            Obs.span_end tree.obs span
              ~outcome:(Obs.Span.Aborted Obs.Abort.Validation_failed);
            Txn.evict_dirty txn;
            go (attempt + 1)
        | Txn.Retry_exhausted ->
            Obs.span_end tree.obs span ~outcome:(Obs.Span.Aborted Obs.Abort.Lock_busy);
            Txn.evict_dirty txn;
            go (attempt + 1)
        | Txn.Unavailable { maybe_applied = true } ->
            (* Cannot retry: the commit may already be in. The caller
               must treat the operation's effect as unknown (the history
               checker resolves it from later reads). *)
            Obs.span_end tree.obs span ~outcome:(Obs.Span.Aborted Obs.Abort.Crashed_host);
            raise (Ambiguous (Printf.sprintf "%s: commit outcome unknown" op_name))
        | Txn.Unavailable { maybe_applied = false } ->
            (* An outage says nothing about the freshness of what was
               dirty-read: keep the cache. Entries that really are stale
               (from a promoted backup's older image) carry a pre-crash
               epoch tag and are lazily revalidated on next use instead
               of being flushed here — the old behaviour turned every
               crash into an invalidation storm. *)
            Obs.span_end tree.obs span ~outcome:(Obs.Span.Aborted Obs.Abort.Crashed_host);
            outage_backoff tree attempt;
            go (attempt + 1))
    | exception Txn.Aborted msg ->
        Obs.span_end tree.obs span ~outcome:(Obs.Span.Failed msg);
        if outage_abort_msg msg then outage_backoff tree attempt
        else Txn.evict_dirty txn;
        go (attempt + 1)
    | exception e ->
        Obs.span_end tree.obs span ~outcome:(Obs.Span.Failed (Printexc.to_string e));
        raise e
  in
  go 0

(* -------------------------------------------------------------------- *)
(* Operations                                                             *)
(* -------------------------------------------------------------------- *)

let get_in_txn tree txn vctx k =
  let _, _, leaf = traverse ~read_only:true tree txn vctx k in
  View.leaf_find leaf k

let put_in_txn tree txn vctx k v =
  if not vctx.writable then invalid_arg "Ops.put: read-only snapshot";
  let path, leaf_ptr, leaf_view = traverse tree txn vctx k in
  let leaf = materialise tree txn leaf_view in
  let updated = Bnode.leaf_insert leaf k v in
  place_node tree txn vctx ~path:(List.rev path) ~ptr:leaf_ptr ~old:leaf ~updated

let remove_in_txn tree txn vctx k =
  if not vctx.writable then invalid_arg "Ops.remove: read-only snapshot";
  let path, leaf_ptr, leaf_view = traverse tree txn vctx k in
  let leaf = materialise tree txn leaf_view in
  match Bnode.leaf_remove leaf k with
  | None -> false
  | Some updated ->
      place_node tree txn vctx ~path:(List.rev path) ~ptr:leaf_ptr ~old:leaf ~updated;
      true

let get tree ~vctx_of k = with_retries tree "get" (fun txn -> get_in_txn tree txn (vctx_of txn) k)

let put tree ~vctx_of k v =
  with_retries tree "put" (fun txn -> put_in_txn tree txn (vctx_of txn) k v)

let remove tree ~vctx_of k =
  with_retries tree "remove" (fun txn -> remove_in_txn tree txn (vctx_of txn) k)

(* Take up to [remaining] scan entries straight out of a leaf view,
   starting at slot [start] — entries are copied out of the wire bytes
   here and nowhere earlier, so this is the scan path's copy boundary.
   [stopped] reports hitting the count limit with entries left over. *)
let take_entries tree acc remaining view start =
  let n = View.nkeys view in
  let rec go acc remaining copied i =
    if i >= n || remaining = 0 then begin
      Obs.Counter.add tree.nstats.Obs.node_bytes_copied copied;
      (acc, remaining, remaining = 0 && i < n)
    end
    else begin
      let (k, v) as e = View.leaf_entry view i in
      go (e :: acc) (remaining - 1) (copied + String.length k + String.length v) (i + 1)
    end
  in
  go acc remaining 0 start

(* Per-leaf scan: re-traverse root-to-leaf for every leaf, following the
   high fence key. The pre-batching behaviour — kept as the [batch <= 1]
   path and as the oracle batched scans are checked against. *)
let scan_per_leaf tree txn vctx ~from ~count =
  let rec collect acc remaining cursor =
    let _, _, leaf = traverse ~read_only:true tree txn vctx cursor in
    let acc, remaining, stopped =
      take_entries tree acc remaining leaf (View.lower_bound leaf cursor)
    in
    if remaining = 0 || stopped then List.rev acc
    else
      match View.high leaf with
      | Bkey.Pos_inf -> List.rev acc
      | Bkey.Key next -> collect acc remaining next
      | Bkey.Neg_inf -> assert false
  in
  collect [] count from

(* Batched scan (the leaf-chaining fast path): traverse once, then chase
   fence keys sideways, fetching up to [batch] sibling leaves per
   minitransaction round trip (items coalesced per memnode by the
   Txn/Coordinator machinery) instead of re-walking the tree per leaf.
   Only the fetched leaves are validated — not the full path — so each
   batched leaf re-runs the Fig. 5 safety checks itself: it must be a
   leaf (height 0), its low fence must continue exactly where the
   previous leaf ended, and its version must pass [check_node] for the
   probe key at its low fence. Any violation aborts the attempt and the
   retry re-traverses. A one-group prefetch window overlaps the next
   group's round trip with consumption of the current one. *)
let scan_batched tree txn vctx ~from ~count ~batch =
  let s = tree.sstats in
  let fetch_group ptrs =
    Obs.with_span tree.obs
      ~outcome_of_exn:(function
        | Txn.Aborted msg -> Some (Obs.Span.Failed msg) | _ -> None)
      Obs.Span.Scan_batch
    @@ fun () ->
    (* Same safety/validation posture as [read_leaf]. *)
    let unsafe = tree.unsafe_dirty_leaf_reads in
    let results =
      if vctx.writable && not unsafe then Txn.read_many_with_seq txn ptrs
      else Txn.dirty_read_many_with_seq ~use_cache:false txn ptrs
    in
    Obs.Counter.incr s.Obs.scan_batches;
    List.iter (fun _ -> Obs.Counter.incr s.Obs.scan_batched_leaves) ptrs;
    results
  in
  let spawn_fetch ptrs =
    let iv = Sim.Ivar.create () in
    Sim.spawn (fun () ->
        (* Transport, not a swallow: [await] re-raises the Error arm in
           the consuming fiber, so Crashed/Aborted still propagate. *)
        (* lint: allow crashed-swallow *)
        let r = try Ok (fetch_group ptrs) with e -> Error e in
        Sim.Ivar.fill iv r);
    (ptrs, iv)
  in
  let await (ptrs, iv) =
    match Sim.Ivar.read iv with Ok results -> List.combine ptrs results | Error e -> raise e
  in
  let rec chunk = function
    | [] -> []
    | l ->
        let rec split i acc = function
          | tl when i = batch -> (List.rev acc, tl)
          | [] -> (List.rev acc, [])
          | x :: tl -> split (i + 1) (x :: acc) tl
        in
        let g, rest = split 0 [] l in
        g :: chunk rest
  in
  (* Validate one batched leaf against the fence chain, then run the
     standard per-node checks with the probe key at its low fence. *)
  let check_leaf (node : View.t) expected_low =
    if View.height node <> 0 then begin
      Obs.Counter.incr s.Obs.scan_batch_aborts;
      Obs.Counter.incr tree.stats.Obs.abort_height;
      Obs.abort tree.obs ~layer:Obs.Abort.Btree Obs.Abort.Height_mismatch;
      Txn.abort txn
    end;
    if not (Bkey.fence_equal (View.low node) expected_low) then begin
      (* The leaf no longer starts where its left neighbour ended: it
         split, merged or moved since the parent was read. *)
      Obs.Counter.incr s.Obs.scan_batch_aborts;
      Obs.Counter.incr tree.stats.Obs.abort_fence;
      Obs.abort tree.obs ~layer:Obs.Abort.Btree Obs.Abort.Fence_violation;
      Txn.abort txn
    end;
    let probe =
      match expected_low with
      | Bkey.Key k -> k
      | Bkey.Neg_inf -> ""
      | Bkey.Pos_inf -> assert false
    in
    (match check_node tree txn vctx node probe with
    | () -> ()
    | exception (Txn.Aborted _ as e) ->
        Obs.Counter.incr s.Obs.scan_batch_aborts;
        raise e);
    probe
  in
  let rec collect acc remaining cursor =
    let path, _, leaf = traverse ~read_only:true tree txn vctx cursor in
    let acc, remaining, stopped =
      take_entries tree acc remaining leaf (View.lower_bound leaf cursor)
    in
    if remaining = 0 || stopped then List.rev acc
    else begin
      (* Leaf pointers to the right of the leaf just consumed, under its
         (already checked) deepest parent. *)
      let siblings =
        match List.rev path with
        | [] -> [] (* the root is the leaf: nothing beside it *)
        | { s_view; s_child; _ } :: _ ->
            List.init
              (View.child_count s_view - s_child - 1)
              (fun i -> View.child_at s_view (s_child + 1 + i))
      in
      match chunk siblings with
      | [] -> continue_after acc remaining (View.high leaf)
      | g :: rest -> consume_groups acc remaining (View.high leaf) (spawn_fetch g) rest
    end
  and consume_groups acc remaining expected_low pending rest =
    (* Kick off the next group's fetch before consuming the current one
       so its round trip overlaps consumption (the prefetch window). *)
    let next =
      match rest with
      | [] -> None
      | g :: tl ->
          Obs.Counter.incr s.Obs.scan_prefetches;
          Some (spawn_fetch g, tl)
    in
    let results = await pending in
    let rec eat acc remaining expected_low = function
      | [] -> `More (acc, remaining, expected_low)
      | (ptr, (seq, payload)) :: tl ->
          let node = view_node_memo tree txn ptr seq payload in
          let probe = check_leaf node expected_low in
          let acc, remaining, stopped =
            take_entries tree acc remaining node (View.lower_bound node probe)
          in
          if remaining = 0 || stopped then `Done acc
          else eat acc remaining (View.high node) tl
    in
    match eat acc remaining expected_low results with
    | `Done acc -> List.rev acc
    | `More (acc, remaining, expected_low) -> (
        match next with
        | Some (pending, tl) -> consume_groups acc remaining expected_low pending tl
        | None -> continue_after acc remaining expected_low)
  and continue_after acc remaining expected_low =
    (* The deepest parent's children are exhausted: continue the scan at
       the last leaf's high fence with a fresh traversal. *)
    match expected_low with
    | Bkey.Pos_inf -> List.rev acc
    | Bkey.Key next ->
        Obs.Counter.incr s.Obs.scan_continuations;
        collect acc remaining next
    | Bkey.Neg_inf -> assert false
  in
  collect [] count from

let scan_in_txn ?batch tree txn vctx ~from ~count =
  let batch = match batch with Some b -> max 1 b | None -> tree.scan_batch in
  if count <= 0 then []
  else if batch <= 1 then scan_per_leaf tree txn vctx ~from ~count
  else scan_batched tree txn vctx ~from ~count ~batch

let scan ?batch tree ~vctx_of ~from ~count =
  if count <= 0 then []
  else with_retries tree "scan" (fun txn -> scan_in_txn ?batch tree txn (vctx_of txn) ~from ~count)

(* -------------------------------------------------------------------- *)
(* Multi-tree transactions                                                *)
(* -------------------------------------------------------------------- *)

let run_txn tree f = with_retries tree "txn" f

let first_tree = function
  | [] -> invalid_arg "Ops.multi: empty operation list"
  | (tree, _) :: _ -> tree

let multi_get pairs ~vctx_of =
  let tree0 = first_tree pairs in
  with_retries tree0 "multi_get" (fun txn ->
      List.map (fun (tree, k) -> get_in_txn tree txn (vctx_of tree txn) k) pairs)

let multi_put triples ~vctx_of =
  let tree0 = match triples with [] -> invalid_arg "Ops.multi_put: empty" | (t, _, _) :: _ -> t in
  with_retries tree0 "multi_put" (fun txn ->
      List.iter (fun (tree, k, v) -> put_in_txn tree txn (vctx_of tree txn) k v) triples)

(* -------------------------------------------------------------------- *)
(* Linear snapshots (Sec. 4)                                              *)
(* -------------------------------------------------------------------- *)

module Linear = struct
  let encode_sid sid =
    let e = Codec.Enc.create ~initial_size:8 () in
    Codec.Enc.i64 e sid;
    Codec.Enc.to_string e

  let decode_sid s = if String.length s = 0 then 0L else Codec.Dec.i64 (Codec.Dec.of_string s)

  let encode_ref r =
    let e = Codec.Enc.create ~initial_size:16 () in
    Objref.encode e r;
    Codec.Enc.to_string e

  let decode_ref s = Objref.decode (Codec.Dec.of_string s)

  let tip_id_off tree = Layout.tip_id_off tree.layout ~tree:tree.tree_id

  let tip_root_off tree = Layout.tip_root_off tree.layout ~tree:tree.tree_id

  let slot_len = Layout.slot_len_small

  let linear_is_ancestor a b = Int64.compare a b <= 0

  (* With linear snapshots a node is copied at most once: the copy
     always supersedes the original for every later snapshot. *)
  let linear_plan ~snap ~created:_ ~descendants =
    if Array.length descendants > 0 then
      invalid_arg "Ops.Linear: node copied twice under linear snapshots";
    { old_descendants = [| snap |]; discretionary = [] }

  let read_tip tree txn =
    let sid = decode_sid (Txn.dirty_read_replicated txn ~off:(tip_id_off tree) ~len:slot_len) in
    let root = decode_ref (Txn.dirty_read_replicated txn ~off:(tip_root_off tree) ~len:slot_len) in
    (sid, root)

  let tip tree txn =
    let sid = decode_sid (Txn.read_replicated txn ~off:(tip_id_off tree) ~len:slot_len) in
    let root = decode_ref (Txn.read_replicated txn ~off:(tip_root_off tree) ~len:slot_len) in
    {
      snap = sid;
      root;
      writable = true;
      is_ancestor = linear_is_ancestor;
      plan_cow = (fun ~created ~descendants -> linear_plan ~snap:sid ~created ~descendants);
      root_of = (fun _ _ -> invalid_arg "Ops.Linear: no discretionary copies");
    }

  let at_snapshot tree ~sid ~root =
    ignore tree;
    {
      snap = sid;
      root;
      writable = false;
      is_ancestor = linear_is_ancestor;
      plan_cow = (fun ~created:_ ~descendants:_ -> invalid_arg "Ops.Linear: read-only snapshot");
      root_of = (fun _ _ -> invalid_arg "Ops.Linear: read-only snapshot");
    }

  let init_tree tree =
    let txn = Txn.begin_ ~home:tree.home tree.cluster in
    let root_ptr = Node_alloc.alloc tree.alloc in
    write_node tree txn root_ptr (Bnode.empty_root ~snap:0L);
    Txn.write_replicated txn ~off:(tip_id_off tree) ~len:slot_len (encode_sid 0L);
    Txn.write_replicated txn ~off:(tip_root_off tree) ~len:slot_len (encode_ref root_ptr);
    match Txn.commit txn with
    | Txn.Committed -> ()
    | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ ->
        failwith "Ops.Linear.init_tree: could not initialize tree"

  (* Fig. 6. The snapshot becomes real when the caller commits the
     transaction (the SCS uses a blocking commit, Sec. 4.1). *)
  let create_snapshot tree txn =
    let sid = decode_sid (Txn.read_replicated txn ~off:(tip_id_off tree) ~len:slot_len) in
    let root_loc = decode_ref (Txn.read_replicated txn ~off:(tip_root_off tree) ~len:slot_len) in
    let new_tip = Int64.add sid 1L in
    (* Copy the root eagerly so the new tip's root address is fixed for
       the snapshot's entire lifetime. *)
    let root_node = decode_node txn (Txn.read txn root_loc) in
    let new_root_ptr = Node_alloc.alloc tree.alloc in
    write_node tree txn new_root_ptr (Bnode.with_snap root_node new_tip);
    (* Mark the old root as copied so stale traversals abort, and so the
       GC can eventually collect it. *)
    write_node tree txn root_loc (Bnode.add_descendant root_node new_tip);
    Txn.write_replicated txn ~off:(tip_id_off tree) ~len:slot_len (encode_sid new_tip);
    Txn.write_replicated txn ~off:(tip_root_off tree) ~len:slot_len (encode_ref new_root_ptr);
    Obs.Counter.incr tree.stats.Obs.snapshots_created;
    (sid, root_loc)
end

let read_node_txn tree txn ptr =
  ignore tree;
  decode_node txn (Txn.read txn ptr)

let write_node_txn = write_node

let alloc_node tree = Node_alloc.alloc tree.alloc

(* -------------------------------------------------------------------- *)
(* Audit                                                                  *)
(* -------------------------------------------------------------------- *)

let audit tree ~sid ~root =
  let read_ptr (ptr : Objref.t) =
    let _, store = Cluster.route tree.cluster (Objref.node ptr) in
    let slot =
      Heap.read (Memnode.store_heap store) ~off:ptr.Objref.addr.Address.off ~len:ptr.Objref.len
    in
    let payload = Objref.payload_of_slot slot in
    if String.length payload = 0 then failwith "audit: dangling pointer (empty slot)"
    else Bnode.decode payload
  in
  let fail fmt = Format.kasprintf failwith fmt in
  let entries = ref [] in
  let rec walk ptr ~exp_low ~exp_high ~exp_height =
    let node = read_ptr ptr in
    (match Bnode.check node with Ok () -> () | Error e -> fail "audit: %s" e);
    if not (Bkey.fence_equal node.Bnode.low exp_low) then fail "audit: low fence mismatch";
    if not (Bkey.fence_equal node.Bnode.high exp_high) then fail "audit: high fence mismatch";
    (match exp_height with
    | Some h when node.Bnode.height <> h -> fail "audit: height mismatch"
    | _ -> ());
    if Int64.compare node.Bnode.snap_created sid > 0 then
      fail "audit: node from snapshot %Ld reachable at %Ld" node.Bnode.snap_created sid;
    match node.Bnode.body with
    | Bnode.Leaf es -> Array.iter (fun e -> entries := e :: !entries) es
    | Bnode.Internal { children; _ } ->
        Array.iteri
          (fun i child ->
            let low, high = Bnode.child_fences node i in
            walk child ~exp_low:low ~exp_high:high ~exp_height:(Some (node.Bnode.height - 1)))
          children
  in
  walk root ~exp_low:Bkey.Neg_inf ~exp_high:Bkey.Pos_inf ~exp_height:None;
  let sorted = List.rev !entries in
  let rec check_sorted = function
    | a :: (b :: _ as tl) ->
        if Bkey.compare (fst a) (fst b) >= 0 then failwith "audit: entries not strictly sorted";
        check_sorted tl
    | _ -> ()
  in
  check_sorted sorted;
  sorted
