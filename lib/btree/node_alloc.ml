open Sinfonia
module Objref = Dyntxn.Objref
module Txn = Dyntxn.Txn

module Shared = struct
  type t = { free : int Queue.t array }

  let create ~n_memnodes =
    if n_memnodes <= 0 then invalid_arg "Node_alloc.Shared.create: need memnodes";
    { free = Array.init n_memnodes (fun _ -> Queue.create ()) }

  let free_count t ~node = Queue.length t.free.(node)
end

exception Out_of_slots of int

type t = {
  cluster : Cluster.t;
  layout : Layout.t;
  shared : Shared.t;
  chunk : int;
  local : int Queue.t array; (* reserved slot indices per memnode *)
  mutable next_node : int;
}

let create ?(chunk = 64) ?(first_node = 0) ~cluster ~layout ~shared () =
  if chunk <= 0 then invalid_arg "Node_alloc.create: chunk must be positive";
  let n = Cluster.n_memnodes cluster in
  {
    cluster;
    layout;
    shared;
    chunk;
    local = Array.init n (fun _ -> Queue.create ());
    next_node = first_node mod n;
  }

let encode_i64 v =
  let e = Codec.Enc.create ~initial_size:8 () in
  Codec.Enc.i64 e v;
  Codec.Enc.to_string e

let decode_i64 s = if String.length s = 0 then 0L else Codec.Dec.i64 (Codec.Dec.of_string s)

let alloc_ptr_ref t ~node =
  Objref.make
    ~addr:(Address.make ~node ~off:(Layout.alloc_ptr_off t.layout))
    ~len:Layout.slot_len_small

(* Reserve [chunk] fresh slot indices on [node] with a CAS loop on the
   memnode's allocation pointer. *)
let reserve_chunk t ~node =
  let rec attempt tries =
    if tries > 64 then raise (Out_of_slots node);
    let txn = Txn.begin_ t.cluster ~home:node in
    let next = Int64.to_int (decode_i64 (Txn.read txn (alloc_ptr_ref t ~node))) in
    if next >= t.layout.Layout.max_slots then begin
      (* Nothing left to extend; rely on the free list. The read-only
         commit's outcome cannot change that, but match it exhaustively
         so Memnode.Crashed / Txn.Aborted propagate to the retry loop
         instead of being discarded with the result. *)
      match Txn.commit txn with
      | Txn.Committed | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ ->
          raise (Out_of_slots node)
    end
    else begin
      let take = min t.chunk (t.layout.Layout.max_slots - next) in
      Txn.write txn (alloc_ptr_ref t ~node) (encode_i64 (Int64.of_int (next + take)));
      match Txn.commit txn with
      | Txn.Committed ->
          for i = next to next + take - 1 do
            Queue.add i t.local.(node)
          done;
          Obs.Counter.incr (Obs.btree (Cluster.obs t.cluster)).Obs.chunk_reservations
      | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ -> attempt (tries + 1)
    end
  in
  attempt 0

let alloc_on t ~node =
  (* Prefer locally reserved slots, then GC'd slots, then a fresh chunk. *)
  if Queue.is_empty t.local.(node) then begin
    match Queue.take_opt t.shared.Shared.free.(node) with
    | Some idx -> Queue.add idx t.local.(node)
    | None -> reserve_chunk t ~node
  end;
  match Queue.take_opt t.local.(node) with
  | Some idx -> Layout.node_ref t.layout ~node ~index:idx
  | None -> raise (Out_of_slots node)

let alloc t =
  let node = t.next_node in
  t.next_node <- (t.next_node + 1) mod Cluster.n_memnodes t.cluster;
  alloc_on t ~node

let free t (ref_ : Objref.t) =
  let node = Objref.node ref_ in
  let index = Layout.slot_index t.layout ~off:ref_.Objref.addr.Address.off in
  Queue.add index t.shared.Shared.free.(node)

let reserved t ~node = Queue.length t.local.(node)
