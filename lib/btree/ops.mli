(** Distributed multiversion B-tree operations.

    This module implements the paper's core algorithms:
    - transactional traversal with dirty reads, fence-key and height
      safety checks (Fig. 5);
    - the baseline concurrency-control mode of Aguilera et al., where
      every traversed node is validated via the replicated
      sequence-number table;
    - copy-on-write path copying with [snap_created] / descendant-set
      version checks (Sec. 4.1–4.2, 5.2);
    - node splits, including in-place root splits (the root of each
      snapshot stays at a fixed address);
    - snapshot creation (Fig. 6).

    Operations are expressed against a {!vctx} describing the snapshot
    being operated on; {!Linear} builds contexts for the
    totally-ordered snapshot scheme of Sec. 4 (replicated tip objects),
    while branching versions (Sec. 5) build richer contexts from the
    catalog (see [Mvcc.Branching]). *)

module Objref = Dyntxn.Objref
module Txn = Dyntxn.Txn

(** Concurrency-control mode. *)
type mode =
  | Dirty_traversal
      (** Sec. 3: internal nodes are dirty-read; only the leaf is
          validated. No replicated sequence-number table. *)
  | Validated_traversal
      (** Baseline (Aguilera et al.): every traversed node is validated,
          using internal-node sequence numbers replicated at every
          memnode; splits update the table everywhere. *)

(** Per-proxy handle on one distributed B-tree. *)
type tree

val make_tree :
  ?mode:mode ->
  ?max_keys_leaf:int ->
  ?max_keys_internal:int ->
  ?max_op_retries:int ->
  ?scan_batch:int ->
  ?home:int ->
  ?client:int ->
  ?unsafe_dirty_leaf_reads:bool ->
  cluster:Sinfonia.Cluster.t ->
  layout:Layout.t ->
  tree_id:int ->
  alloc:Node_alloc.t ->
  cache:Dyntxn.Objcache.t ->
  unit ->
  tree
(** Key capacities default to values derived from [layout.node_size]
    assuming short keys and values (the YCSB schema: 14-byte keys,
    8-byte values).

    [scan_batch] is the number of leaves fetched per minitransaction
    round trip by batched scans (default 16; clamped to >= 1, where 1
    disables batching and scans re-traverse per leaf).

    [client] is this proxy's host id for the network fault model: all
    transactions the tree runs carry it, so injected per-link faults
    (partitions, drops, delays) apply to this proxy's traffic.

    [unsafe_dirty_leaf_reads] deliberately breaks the tree for checker
    validation: up-to-date leaf reads skip the read set, so gets can
    serialize against a stale leaf. Only for proving the history
    checker has teeth. *)

val cluster : tree -> Sinfonia.Cluster.t

val tree_id : tree -> int

val mode : tree -> mode

val home : tree -> int

val layout : tree -> Layout.t

val proxy_cache : tree -> Dyntxn.Objcache.t

val last_commit_stamp : tree -> int64 option
(** Commit stamp of the last operation that committed through this
    handle ({!Txn.commit_stamp}); [None] when that operation was a
    dirty-only snapshot read. Safe to read immediately after an
    operation returns (the simulator is cooperative). For
    session-level history tracing. *)

exception Too_contended of string
(** An operation exhausted its retry budget. The operation certainly
    did not take effect (every attempt aborted before its commit was
    applied). *)

exception Ambiguous of string
(** An operation's commit round ended [Unavailable] with
    [maybe_applied = true]: the operation may or may not have taken
    effect, and retrying could double-apply it. Never raised under the
    drain-based crash model (which only fails nodes at minitransaction
    boundaries); the history checker resolves such operations from
    later reads. *)

(** {1 Version contexts} *)

(** Discretionary copy-on-write directive (branching versions,
    Sec. 5.2). *)
type disc = { disc_at : int64; disc_covered : int64 array }

type cow_plan = { old_descendants : int64 array; discretionary : disc list }

type vctx = {
  snap : int64;  (** Snapshot the operation acts on. *)
  root : Objref.t;  (** Root node location for [snap]. *)
  writable : bool;
      (** Up-to-date operation on a tip snapshot: leaves are read
          transactionally and tip metadata is validated at commit. *)
  is_ancestor : int64 -> int64 -> bool;
      (** [is_ancestor a b]: snapshot [a] is an ancestor of (or equal
          to) [b] in the version tree. Linear snapshots: [a <= b]. *)
  plan_cow : created:int64 -> descendants:int64 array -> cow_plan;
      (** Decide the old node's new descendant set (and any
          discretionary copy) when copying a node to [snap]. *)
  root_of : Txn.t -> int64 -> Objref.t;
      (** Root location of another snapshot (needed for discretionary
          relinking); may read the catalog through the transaction. *)
}

(** {1 Operations}

    Each operation runs in its own retrying dynamic transaction; the
    version context is rebuilt per attempt by [vctx_of] (which reads
    and registers tip/catalog validations on the transaction). All must
    be called inside a simulation. Raise {!Too_contended} after
    exhausting retries. *)

val get : tree -> vctx_of:(Txn.t -> vctx) -> Bkey.t -> string option

val put : tree -> vctx_of:(Txn.t -> vctx) -> Bkey.t -> string -> unit

val remove : tree -> vctx_of:(Txn.t -> vctx) -> Bkey.t -> bool
(** [true] if the key was present. *)

val scan :
  ?batch:int ->
  tree ->
  vctx_of:(Txn.t -> vctx) ->
  from:Bkey.t ->
  count:int ->
  (Bkey.t * string) list
(** Up to [count] consecutive entries starting at the smallest key
    >= [from], in key order. Runs as a single transaction: against a
    read-only snapshot this commits for free (leaves are fetched
    directly and guarded by safety checks only); against a writable tip
    every leaf joins the read set and the scan may abort under
    concurrent updates (Sec. 6.3 explains why tip scans are
    impractical).

    After the first root-to-leaf traversal the scan chases fence keys
    sideways, fetching up to [batch] (default: the tree's [scan_batch])
    sibling leaves per minitransaction round trip and overlapping the
    next batch's fetch with consumption of the current one. Batched
    leaves are validated individually — fence-key continuity, height,
    and the Fig. 5 version checks — rather than through a re-traversal;
    any violation aborts the attempt. [~batch:1] forces the per-leaf
    path (the oracle the chaos checker compares batched scans
    against). *)

val run_txn : tree -> (Txn.t -> 'a) -> 'a
(** Run [f] in a retrying dynamic transaction (the same wrapper the
    operations above use): on abort or validation failure the
    transaction is retried with a fresh context and an evicted dirty
    cache. Use with {!get_in_txn}/{!scan_in_txn} for multi-operation
    transactions (e.g. reading several versions atomically). *)

val get_in_txn : tree -> Txn.t -> vctx -> Bkey.t -> string option

val put_in_txn : tree -> Txn.t -> vctx -> Bkey.t -> string -> unit

val remove_in_txn : tree -> Txn.t -> vctx -> Bkey.t -> bool

val scan_in_txn :
  ?batch:int -> tree -> Txn.t -> vctx -> from:Bkey.t -> count:int -> (Bkey.t * string) list

(** {1 Multi-tree transactions} *)

val multi_get : (tree * Bkey.t) list -> vctx_of:(tree -> Txn.t -> vctx) -> string option list
(** Atomically read one key from each of several trees (the paper's
    multi-index transactions, Sec. 6.2). All trees must share a
    cluster. *)

val multi_put : (tree * Bkey.t * string) list -> vctx_of:(tree -> Txn.t -> vctx) -> unit

(** {1 Linear snapshots (Sec. 4)} *)

module Linear : sig
  val init_tree : tree -> unit
  (** Create the empty tree: allocate the initial root (snapshot 0) and
      publish the replicated tip objects. Call once per tree id. *)

  val tip : tree -> Txn.t -> vctx
  (** Up-to-date context: reads the replicated tip snapshot id and root
      location (from the proxy cache when warm) and registers them for
      commit-time validation. *)

  val at_snapshot : tree -> sid:int64 -> root:Objref.t -> vctx
  (** Read-only context on an earlier snapshot. *)

  val read_tip : tree -> Txn.t -> int64 * Objref.t
  (** Current tip snapshot id and root location (dirty; no
      validation registered). *)

  val create_snapshot : tree -> Txn.t -> int64 * Objref.t
  (** Fig. 6: make the tip read-only and create a new tip (id + 1),
      copying the root so each snapshot's root address is immutable.
      Effective when the transaction commits (callers use a blocking
      commit). Returns the read-only snapshot's id and root. *)
end

(** {1 Raw node access (for the snapshot/branching machinery)} *)

val read_node_txn : tree -> Txn.t -> Objref.t -> Bnode.t
(** Transactional (validated) read + decode of one node. *)

val write_node_txn : tree -> Txn.t -> Objref.t -> Bnode.t -> unit
(** Mode-aware node write (baseline mode republishes the sequence
    number of internal nodes). *)

val alloc_node : tree -> Objref.t
(** Allocate a fresh node slot through the tree's allocator. *)

(** {1 Audit (tests)} *)

val audit : tree -> sid:int64 -> root:Objref.t -> (Bkey.t * string) list
(** Walk the whole tree at a snapshot outside any transaction (direct
    heap reads), checking structural invariants (fences, heights,
    sortedness, reachability at the snapshot); returns all entries in
    key order. Raises [Failure] on an invariant violation. For tests and
    the consistency checker. *)
