module Objref = Dyntxn.Objref

type body =
  | Leaf of (Bkey.t * string) array
  | Internal of { keys : Bkey.t array; children : Objref.t array }

type t = {
  height : int;
  low : Bkey.fence;
  high : Bkey.fence;
  snap_created : int64;
  descendants : int64 array;
  body : body;
}

let is_leaf t = match t.body with Leaf _ -> true | Internal _ -> false

let nkeys t =
  match t.body with Leaf entries -> Array.length entries | Internal { keys; _ } -> Array.length keys

let make_leaf ~low ~high ~snap entries =
  { height = 0; low; high; snap_created = snap; descendants = [||]; body = Leaf entries }

let make_internal ~height ~low ~high ~snap ~keys ~children =
  if height < 1 then invalid_arg "Bnode.make_internal: height must be >= 1";
  if Array.length children <> Array.length keys + 1 then
    invalid_arg "Bnode.make_internal: children/keys arity mismatch";
  { height; low; high; snap_created = snap; descendants = [||]; body = Internal { keys; children } }

let empty_root ~snap = make_leaf ~low:Bkey.Neg_inf ~high:Bkey.Pos_inf ~snap [||]

(* -------------------------------------------------------------------- *)
(* Leaf operations                                                        *)
(* -------------------------------------------------------------------- *)

let as_leaf t =
  match t.body with Leaf entries -> entries | Internal _ -> invalid_arg "Bnode: expected leaf"

let as_internal t =
  match t.body with
  | Internal { keys; children } -> (keys, children)
  | Leaf _ -> invalid_arg "Bnode: expected internal node"

(* Position of [k] in sorted [entries]: Ok i if present at i, Error i
   giving the insertion point otherwise. *)
let leaf_search entries k =
  let rec go lo hi =
    if lo >= hi then Error lo
    else
      let mid = (lo + hi) / 2 in
      let c = Bkey.compare k (fst entries.(mid)) in
      if c = 0 then Ok mid else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length entries)

let leaf_find t k =
  let entries = as_leaf t in
  match leaf_search entries k with Ok i -> Some (snd entries.(i)) | Error _ -> None

let leaf_insert t k v =
  let entries = as_leaf t in
  let entries' =
    match leaf_search entries k with
    | Ok i ->
        let copy = Array.copy entries in
        copy.(i) <- (k, v);
        copy
    | Error i ->
        let n = Array.length entries in
        let bigger = Array.make (n + 1) (k, v) in
        Array.blit entries 0 bigger 0 i;
        Array.blit entries i bigger (i + 1) (n - i);
        bigger
  in
  { t with body = Leaf entries' }

let leaf_remove t k =
  let entries = as_leaf t in
  match leaf_search entries k with
  | Error _ -> None
  | Ok i ->
      let n = Array.length entries in
      let smaller = Array.make (n - 1) ("", "") in
      Array.blit entries 0 smaller 0 i;
      Array.blit entries (i + 1) smaller i (n - 1 - i);
      Some { t with body = Leaf smaller }

let leaf_entries = as_leaf

let leaf_entries_from t k =
  let entries = as_leaf t in
  match leaf_search entries k with Ok i -> i | Error i -> i

(* -------------------------------------------------------------------- *)
(* Internal-node operations                                               *)
(* -------------------------------------------------------------------- *)

(* Child index responsible for [k]: the smallest [i] with
   k < keys.(i), or |keys| when no such separator exists. *)
let child_index keys k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Bkey.compare k keys.(mid) < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length keys)

let child_for t k =
  let keys, children = as_internal t in
  let i = child_index keys k in
  (i, children.(i))

let child_at t i =
  let _, children = as_internal t in
  children.(i)

let child_fences t i =
  let keys, children = as_internal t in
  if i < 0 || i >= Array.length children then invalid_arg "Bnode.child_fences: index out of range";
  let low = if i = 0 then t.low else Bkey.Key keys.(i - 1) in
  let high = if i = Array.length keys then t.high else Bkey.Key keys.(i) in
  (low, high)

let replace_child t i ptr =
  let keys, children = as_internal t in
  let children' = Array.copy children in
  children'.(i) <- ptr;
  { t with body = Internal { keys; children = children' } }

let insert_sep t ~at ~sep ~right =
  let keys, children = as_internal t in
  let nk = Array.length keys in
  let keys' = Array.make (nk + 1) sep in
  Array.blit keys 0 keys' 0 at;
  Array.blit keys at keys' (at + 1) (nk - at);
  let children' = Array.make (nk + 2) right in
  Array.blit children 0 children' 0 (at + 1);
  Array.blit children (at + 1) children' (at + 2) (nk - at);
  { t with body = Internal { keys = keys'; children = children' } }

(* -------------------------------------------------------------------- *)
(* Copy-on-write metadata                                                 *)
(* -------------------------------------------------------------------- *)

let with_snap t snap = { t with snap_created = snap; descendants = [||] }

let add_descendant t sid = { t with descendants = Array.append t.descendants [| sid |] }

let with_descendants t descendants = { t with descendants }

(* -------------------------------------------------------------------- *)
(* Split                                                                  *)
(* -------------------------------------------------------------------- *)

let needs_split t ~max_keys = nkeys t > max_keys

let split t =
  match t.body with
  | Leaf entries ->
      let n = Array.length entries in
      if n < 2 then invalid_arg "Bnode.split: leaf too small";
      let mid = n / 2 in
      let sep = fst entries.(mid) in
      let left = { t with high = Bkey.Key sep; body = Leaf (Array.sub entries 0 mid) } in
      let right = { t with low = Bkey.Key sep; body = Leaf (Array.sub entries mid (n - mid)) } in
      (left, sep, right)
  | Internal { keys; children } ->
      let nk = Array.length keys in
      if nk < 2 then invalid_arg "Bnode.split: internal node too small";
      let mid = nk / 2 in
      let sep = keys.(mid) in
      let left =
        {
          t with
          high = Bkey.Key sep;
          body = Internal { keys = Array.sub keys 0 mid; children = Array.sub children 0 (mid + 1) };
        }
      in
      let right =
        {
          t with
          low = Bkey.Key sep;
          body =
            Internal
              {
                keys = Array.sub keys (mid + 1) (nk - mid - 1);
                children = Array.sub children (mid + 1) (nk - mid);
              };
        }
      in
      (left, sep, right)

(* -------------------------------------------------------------------- *)
(* Serialization                                                          *)
(* -------------------------------------------------------------------- *)

(* The wire format is the slotted v2 layout ({!Bview}): a zero-copy-
   searchable slot directory with common-prefix-truncated keys, a
   content stamp, and a CRC-32 trailer. Nodes that exceed the slotted
   format's u16 limits (pathologically long keys or entry regions) fall
   back to the legacy layout; the decoder dispatches on the leading byte
   (legacy kind bytes 0/1 vs the slotted magic), so pre-v2 payloads
   still decode. *)

let encode_legacy_into e t =
  Codec.Enc.u8 e (if is_leaf t then 0 else 1);
  Codec.Enc.u16 e t.height;
  Bkey.encode_fence e t.low;
  Bkey.encode_fence e t.high;
  Codec.Enc.i64 e t.snap_created;
  Codec.Enc.array e (Codec.Enc.i64 e) t.descendants;
  match t.body with
  | Leaf entries ->
      Codec.Enc.array e
        (fun (k, v) ->
          Bkey.encode e k;
          Codec.Enc.bytes e v)
        entries
  | Internal { keys; children } ->
      Codec.Enc.array e (Bkey.encode e) keys;
      Codec.Enc.array e (Objref.encode e) children

let encode_legacy t =
  let e = Codec.Enc.create ~initial_size:512 () in
  encode_legacy_into e t;
  Codec.Enc.to_string e

let encode_into e t =
  let spec =
    match t.body with
    | Leaf entries -> Bview.Leaf_spec entries
    | Internal { keys; children } -> Bview.Internal_spec (keys, children)
  in
  if
    not
      (Bview.encode_into e ~height:t.height ~low:t.low ~high:t.high ~snap:t.snap_created
         ~descendants:t.descendants spec)
  then encode_legacy_into e t

let encode t =
  let e = Codec.Enc.create ~initial_size:512 () in
  encode_into e t;
  Codec.Enc.to_string_with_checksum e

let decode_legacy s =
  let d = Codec.Dec.of_string s in
  let kind = Codec.Dec.u8 d in
  let height = Codec.Dec.u16 d in
  let low = Bkey.decode_fence d in
  let high = Bkey.decode_fence d in
  let snap_created = Codec.Dec.i64 d in
  let descendants = Codec.Dec.array d Codec.Dec.i64 in
  let body =
    match kind with
    | 0 ->
        Leaf
          (Codec.Dec.array d (fun d ->
               let k = Bkey.decode d in
               let v = Codec.Dec.bytes d in
               (k, v)))
    | 1 ->
        let keys = Codec.Dec.array d Bkey.decode in
        let children = Codec.Dec.array d Objref.decode in
        Internal { keys; children }
    | b -> raise (Codec.Decode_error (Printf.sprintf "Bnode.decode: bad kind %d" b))
  in
  { height; low; high; snap_created; descendants; body }

let of_view v =
  let body =
    if Bview.is_leaf v then Leaf (Bview.leaf_entries v)
    else Internal { keys = Bview.internal_keys v; children = Bview.children v }
  in
  {
    height = Bview.height v;
    low = Bview.low v;
    high = Bview.high v;
    snap_created = Bview.snap_created v;
    descendants = Bview.descendants v;
    body;
  }

let decode s =
  if String.length s = 0 then raise (Codec.Decode_error "Bnode.decode: empty payload");
  match Char.code s.[0] with
  | b when b = Bview.magic ->
      let v = Bview.of_string s in
      Bview.verify_crc v;
      of_view v
  | 0 | 1 -> decode_legacy s
  | b -> raise (Codec.Decode_error (Printf.sprintf "Bnode.decode: bad kind %d" b))

let encoded_size t = String.length (encode t)

(* -------------------------------------------------------------------- *)
(* Views                                                                  *)
(* -------------------------------------------------------------------- *)

module View = struct
  type node = t

  (* A node as fetched from the wire: slotted payloads are consumed in
     place, legacy payloads decode eagerly (they have no slot
     directory to search). *)
  type t = Slotted of Bview.t | Decoded of node

  let of_payload s =
    if Bview.is_slotted s then Slotted (Bview.of_string s) else Decoded (decode s)

  let is_slotted = function Slotted _ -> true | Decoded _ -> false

  (* Materialisation is the only point that trusts the bytes enough to
     rewrite them, so it is where the CRC trailer is verified. *)
  let materialise = function
    | Slotted v ->
        Bview.verify_crc v;
        of_view v
    | Decoded n -> n

  let payload_length = function Slotted v -> Bview.payload_length v | Decoded _ -> 0

  let is_leaf = function Slotted v -> Bview.is_leaf v | Decoded n -> is_leaf n

  let height = function Slotted v -> Bview.height v | Decoded n -> n.height

  let low = function Slotted v -> Bview.low v | Decoded n -> n.low

  let high = function Slotted v -> Bview.high v | Decoded n -> n.high

  let snap_created = function Slotted v -> Bview.snap_created v | Decoded n -> n.snap_created

  let in_range t k =
    match t with
    | Slotted v -> Bview.in_range v k
    | Decoded n -> Bkey.in_range k ~low:n.low ~high:n.high

  let exists_descendant t pred =
    match t with
    | Slotted v -> Bview.exists_descendant v pred
    | Decoded n -> Array.exists pred n.descendants

  let nkeys = function Slotted v -> Bview.nkeys v | Decoded n -> nkeys n

  let leaf_find t k =
    match t with Slotted v -> Bview.leaf_find v k | Decoded n -> leaf_find n k

  let lower_bound t k =
    match t with Slotted v -> Bview.lower_bound v k | Decoded n -> leaf_entries_from n k

  let leaf_entry t i =
    match t with
    | Slotted v -> Bview.leaf_entry v i
    | Decoded n -> (as_leaf n).(i)

  let child_for t k =
    match t with Slotted v -> Bview.child_for v k | Decoded n -> child_for n k

  let child_at t i =
    match t with Slotted v -> Bview.child_at v i | Decoded n -> child_at n i

  let child_count t =
    match t with
    | Slotted v -> Bview.child_count v
    | Decoded n -> (
        match n.body with Internal { children; _ } -> Array.length children | Leaf _ -> 0)
end

(* -------------------------------------------------------------------- *)
(* Validation                                                             *)
(* -------------------------------------------------------------------- *)

let check t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let sorted arr = Array.for_all2 (fun a b -> Bkey.compare a b < 0) (Array.sub arr 0 (Array.length arr - 1)) (Array.sub arr 1 (Array.length arr - 1)) in
  let sorted arr = if Array.length arr <= 1 then true else sorted arr in
  if Bkey.fence_compare t.low t.high >= 0 then err "low fence >= high fence"
  else
    match t.body with
    | Leaf entries ->
        if t.height <> 0 then err "leaf with nonzero height"
        else if not (sorted (Array.map fst entries)) then err "leaf keys not sorted"
        else if
          not
            (Array.for_all (fun (k, _) -> Bkey.in_range k ~low:t.low ~high:t.high) entries)
        then err "leaf key out of fence range"
        else Ok ()
    | Internal { keys; children } ->
        if t.height < 1 then err "internal node with height < 1"
        else if Array.length children <> Array.length keys + 1 then
          err "children/keys arity mismatch"
        else if Array.length keys = 0 then err "internal node without separators"
        else if not (sorted keys) then err "separator keys not sorted"
        else if not (Array.for_all (fun k -> Bkey.in_range k ~low:t.low ~high:t.high) keys) then
          err "separator out of fence range"
        else Ok ()

let pp fmt t =
  Format.fprintf fmt "@[<v>%s h=%d [%a, %a) snap=%Ld desc=[%s] keys=%d@]"
    (if is_leaf t then "leaf" else "internal")
    t.height Bkey.pp_fence t.low Bkey.pp_fence t.high t.snap_created
    (String.concat ";" (Array.to_list (Array.map Int64.to_string t.descendants)))
    (nkeys t)
