(** B-tree node representation and pure (in-memory) node operations.

    Every node carries:
    - its height (0 = leaf);
    - two fence keys bounding the key range it is responsible for;
    - [snap_created], the snapshot id at which this physical node version
      was created (by a split, a copy-on-write, or snapshot creation);
    - [descendants], the snapshot ids to which the node has been copied:
      at most one element with linear snapshots (Sec. 4.2), at most β
      with branching versions (Sec. 5.2).

    All operations here are pure; distributed reads/writes live in
    {!Ops}. *)

type body =
  | Leaf of (Bkey.t * string) array  (** Sorted key/value pairs. *)
  | Internal of { keys : Bkey.t array; children : Dyntxn.Objref.t array }
      (** [children] has length [Array.length keys + 1]; child [i] is
          responsible for keys in [\[keys.(i-1), keys.(i))] (with the
          node's own fences at the ends). *)

type t = {
  height : int;
  low : Bkey.fence;
  high : Bkey.fence;
  snap_created : int64;
  descendants : int64 array;
  body : body;
}

val is_leaf : t -> bool

val nkeys : t -> int

val make_leaf :
  low:Bkey.fence ->
  high:Bkey.fence ->
  snap:int64 ->
  (Bkey.t * string) array ->
  t

val make_internal :
  height:int ->
  low:Bkey.fence ->
  high:Bkey.fence ->
  snap:int64 ->
  keys:Bkey.t array ->
  children:Dyntxn.Objref.t array ->
  t

val empty_root : snap:int64 -> t
(** A leaf root spanning the whole key space. *)

(** {1 Leaf operations} *)

val leaf_find : t -> Bkey.t -> string option

val leaf_insert : t -> Bkey.t -> string -> t
(** Insert or replace. *)

val leaf_remove : t -> Bkey.t -> t option
(** [None] when the key was absent. *)

val leaf_entries : t -> (Bkey.t * string) array

val leaf_entries_from : t -> Bkey.t -> int
(** Index of the first entry with key [>=] the argument ([nkeys] when
    none). Pairs with {!leaf_entries} to iterate a suffix of the leaf
    without building an intermediate list. *)

(** {1 Internal-node operations} *)

val child_for : t -> Bkey.t -> int * Dyntxn.Objref.t
(** Index and pointer of the child responsible for the key. *)

val child_at : t -> int -> Dyntxn.Objref.t

val child_fences : t -> int -> Bkey.fence * Bkey.fence
(** Key range that child [i] is responsible for. *)

val replace_child : t -> int -> Dyntxn.Objref.t -> t

val insert_sep : t -> at:int -> sep:Bkey.t -> right:Dyntxn.Objref.t -> t
(** After child [at] split, record separator [sep] and the new right
    sibling: child [at] keeps the left half. *)

(** {1 Copy-on-write metadata} *)

val with_snap : t -> int64 -> t
(** Fresh copy created at the given snapshot, with an empty descendant
    set. *)

val add_descendant : t -> int64 -> t

val with_descendants : t -> int64 array -> t

(** {1 Split} *)

val needs_split : t -> max_keys:int -> bool

val split : t -> t * Bkey.t * t
(** [split n] = (left, separator, right). The separator equals
    [right.low]. Raises [Invalid_argument] on nodes with fewer than two
    keys (leaf) or two children (internal). *)

(** {1 Serialization}

    The wire format is the slotted v2 layout ({!Bview}) framed with a
    CRC-32 trailer; nodes exceeding its u16 limits fall back to the
    legacy layout. {!decode} dispatches on the leading byte, so pre-v2
    payloads (and the rare legacy fallback) still decode. *)

val encode : t -> string

val encode_into : Codec.Enc.t -> t -> unit
(** Append the node's content to a (reusable) encoder; frame the result
    with {!Codec.Enc.to_string_with_checksum}. *)

val encode_legacy : t -> string
(** The pre-v2 format, exactly as historical payloads were written
    (no CRC trailer). Kept for back-compat tests. *)

val decode : string -> t
(** Decode either format; slotted payloads are CRC-verified. Raises
    {!Codec.Decode_error} on corruption. *)

val of_view : Bview.t -> t

val encoded_size : t -> int

(** {1 Zero-copy views}

    A node as fetched from the wire. Slotted payloads answer lookups in
    place through {!Bview}; legacy payloads decode eagerly. Traversals
    and scans consume views; {!View.materialise} (which CRC-verifies
    slotted payloads) is reserved for the write/split path. *)

module View : sig
  type node := t

  type t = Slotted of Bview.t | Decoded of node

  val of_payload : string -> t
  (** Raises {!Codec.Decode_error} on empty/corrupt payloads. *)

  val is_slotted : t -> bool

  val materialise : t -> node

  val payload_length : t -> int
  (** Raw payload bytes backing a slotted view (0 for decoded nodes). *)

  val is_leaf : t -> bool
  val height : t -> int
  val low : t -> Bkey.fence
  val high : t -> Bkey.fence
  val snap_created : t -> int64
  val in_range : t -> Bkey.t -> bool
  val exists_descendant : t -> (int64 -> bool) -> bool
  val nkeys : t -> int
  val leaf_find : t -> Bkey.t -> string option

  val lower_bound : t -> Bkey.t -> int
  (** Index of the first entry with key [>=] the argument. *)

  val leaf_entry : t -> int -> Bkey.t * string
  val child_for : t -> Bkey.t -> int * Dyntxn.Objref.t
  val child_at : t -> int -> Dyntxn.Objref.t
  val child_count : t -> int
end

(** {1 Validation (tests)} *)

val check : t -> (unit, string) result
(** Structural invariants: sorted keys, keys within fences, child count,
    consistent height. *)

val pp : Format.formatter -> t -> unit
