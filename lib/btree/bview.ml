(* Zero-copy view over the slotted (v2) node wire format.

   A view wraps the raw payload string fetched from a memnode and
   answers point lookups, child routing and fence checks by reading
   offsets in place: binary search probes compare byte spans against the
   query key, and no per-key string is materialised. Decoding into a
   {!Bnode.t} happens only on the write/split path ({!Bnode.View.materialise}).

   Wire layout (all integers little-endian):

   {v
     off  0: u8   magic (0xB5 — distinct from the legacy kind bytes 0/1)
     off  1: u8   kind (0 = leaf, 1 = internal)
     off  2: u16  height
     off  4: i64  stamp: FNV-1a-64 over content bytes [12, crc), patched
                  in after encoding, so two encodings of the same
                  logical node always carry the same stamp
     off 12: i64  snap_created
     off 20: u16  ndesc, then ndesc * i64 descendant versions
     then  : low fence, high fence (u8 tag 0/1/2; tag 2: u16 len + bytes)
     then  : u16 prefix_len + the keys' common prefix
     then  : u16 nkeys
     then  : slot directory: nkeys * u16 entry offsets, relative to the
             entries region, in key order
     then  : (internal only) (nkeys + 1) fixed 16-byte child refs
             (u32 memnode, i64 offset, u32 slot length)
     then  : entries region —
             leaf entry:     u16 suffix_len | suffix | varint vlen | value
             internal entry: u16 suffix_len | suffix
     last 4: u32 CRC-32 over everything before it
   v}

   The slot directory and entry bounds are validated once at view
   construction (cheap, O(nkeys) u16 reads), so accessors never read out
   of bounds on corrupt input — they raise {!Codec.Decode_error} at
   construction instead. The CRC trailer is *not* folded on the hot read
   path: dirty traversals are already guarded by fence/height/version
   checks and OCC validation, exactly like every other unvalidated read
   in the system. The write path ({!materialise} via [Bnode.decode])
   verifies the CRC before trusting bytes enough to rewrite them. *)

module Objref = Dyntxn.Objref

let magic = 0xB5

let decode_error fmt = Format.kasprintf (fun s -> raise (Codec.Decode_error s)) fmt

type t = {
  buf : string;  (* whole payload, including the CRC trailer *)
  kind : int;
  height : int;
  stamp : int64;
  snap_created : int64;
  ndesc : int;
  desc_off : int;
  low : Bkey.fence;
  high : Bkey.fence;
  prefix_off : int;
  prefix_len : int;
  nkeys : int;
  dir_off : int;
  children_off : int;  (* -1 for leaves *)
  entries_off : int;
  content_end : int;  (* offset of the CRC trailer *)
}

let is_slotted s = String.length s > 0 && Char.code s.[0] = magic

(* Lexicographic compare of [a.(apos .. apos+alen)] vs
   [b.(bpos .. bpos+blen)] without materialising either span. Bounds are
   the caller's responsibility (validated at construction). *)
let compare_span a apos alen b bpos blen =
  let n = if alen < blen then alen else blen in
  let rec go i =
    if i = n then Int.compare alen blen
    else
      let ca = Char.code (String.unsafe_get a (apos + i))
      and cb = Char.code (String.unsafe_get b (bpos + i)) in
      if ca = cb then go (i + 1) else Int.compare ca cb
  in
  go 0

let read_varint buf pos limit =
  let rec go pos shift acc =
    if pos >= limit then decode_error "Bview: varint past entry region";
    if shift > 62 then decode_error "Bview: varint too long";
    let b = Char.code (String.unsafe_get buf pos) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let decode_fence d =
  match Codec.Dec.u8 d with
  | 0 -> Bkey.Neg_inf
  | 1 -> Bkey.Pos_inf
  | 2 ->
      let n = Codec.Dec.u16 d in
      Bkey.Key (Codec.Dec.raw d n)
  | b -> decode_error "Bview: invalid fence tag %d" b

let encode_fence e = function
  | Bkey.Neg_inf -> Codec.Enc.u8 e 0
  | Bkey.Pos_inf -> Codec.Enc.u8 e 1
  | Bkey.Key k ->
      Codec.Enc.u8 e 2;
      Codec.Enc.u16 e (String.length k);
      Codec.Enc.raw e k

let entry_off t i = t.entries_off + String.get_uint16_le t.buf (t.dir_off + (2 * i))

(* Validate one entry's spans so accessors can trust them. *)
let validate_entry t i =
  let eoff = entry_off t i in
  if eoff + 2 > t.content_end then decode_error "Bview: slot %d points past entry region" i;
  let slen = String.get_uint16_le t.buf eoff in
  let spos = eoff + 2 in
  if spos + slen > t.content_end then decode_error "Bview: slot %d suffix out of bounds" i;
  if t.kind = 0 then begin
    let vlen, vpos = read_varint t.buf (spos + slen) t.content_end in
    if vpos + vlen > t.content_end then decode_error "Bview: slot %d value out of bounds" i
  end

let of_string s =
  let len = String.length s in
  if len < 28 + 4 then decode_error "Bview: payload too short (%d bytes)" len;
  if Char.code s.[0] <> magic then decode_error "Bview: bad magic %#x" (Char.code s.[0]);
  let kind = Char.code s.[1] in
  if kind <> 0 && kind <> 1 then decode_error "Bview: invalid kind byte %d" kind;
  let content_end = len - 4 in
  let d = Codec.Dec.of_string ~pos:2 s in
  let height = Codec.Dec.u16 d in
  let stamp = Codec.Dec.i64 d in
  let snap_created = Codec.Dec.i64 d in
  let ndesc = Codec.Dec.u16 d in
  let desc_off, _ = Codec.Dec.raw_view d (8 * ndesc) in
  let low = decode_fence d in
  let high = decode_fence d in
  let prefix_len = Codec.Dec.u16 d in
  let prefix_off, _ = Codec.Dec.raw_view d prefix_len in
  let nkeys = Codec.Dec.u16 d in
  let dir_off, _ = Codec.Dec.raw_view d (2 * nkeys) in
  let children_off =
    if kind = 1 then begin
      let off, _ = Codec.Dec.raw_view d (16 * (nkeys + 1)) in
      off
    end
    else -1
  in
  let entries_off = Codec.Dec.pos d in
  if entries_off > content_end then decode_error "Bview: header overruns entry region";
  let t =
    {
      buf = s;
      kind;
      height;
      stamp;
      snap_created;
      ndesc;
      desc_off;
      low;
      high;
      prefix_off;
      prefix_len;
      nkeys;
      dir_off;
      children_off;
      entries_off;
      content_end;
    }
  in
  for i = 0 to nkeys - 1 do
    validate_entry t i
  done;
  t

let verify_crc t = Codec.verify_checksum_in_place t.buf 0 (String.length t.buf)

let payload_length t = String.length t.buf

let is_leaf t = t.kind = 0

let height t = t.height

let stamp t = t.stamp

let snap_created t = t.snap_created

let low t = t.low

let high t = t.high

let in_range t k = Bkey.in_range k ~low:t.low ~high:t.high

let nkeys t = t.nkeys

let n_descendants t = t.ndesc

let exists_descendant t pred =
  let rec go i =
    if i >= t.ndesc then false
    else if pred (String.get_int64_le t.buf (t.desc_off + (8 * i))) then true
    else go (i + 1)
  in
  go 0

let descendants t = Array.init t.ndesc (fun i -> String.get_int64_le t.buf (t.desc_off + (8 * i)))

(* Binary search for [k]: [Ok i] when [k] is the [i]th key, [Error i]
   with the insertion point otherwise (same contract as
   [Bnode.leaf_search]). The query is compared against the common prefix
   exactly once; every probe then compares only suffix spans. *)
let search t k =
  if t.nkeys = 0 then Error 0
  else begin
    let klen = String.length k in
    let plen = t.prefix_len in
    let m = if klen < plen then klen else plen in
    let pc = compare_span k 0 m t.buf t.prefix_off m in
    if pc < 0 then Error 0 (* below the shared prefix: below every key *)
    else if pc > 0 then Error t.nkeys (* above the shared prefix: above every key *)
    else if klen < plen then Error 0 (* proper prefix of the shared prefix *)
    else begin
      let tlen = klen - plen in
      let rec go lo hi =
        if lo >= hi then Error lo
        else begin
          let mid = (lo + hi) / 2 in
          let eoff = entry_off t mid in
          let slen = String.get_uint16_le t.buf eoff in
          let c = compare_span k plen tlen t.buf (eoff + 2) slen in
          if c = 0 then Ok mid else if c < 0 then go lo mid else go (mid + 1) hi
        end
      in
      go 0 t.nkeys
    end
  end

let lower_bound t k = match search t k with Ok i -> i | Error i -> i

let key t i =
  if i < 0 || i >= t.nkeys then invalid_arg "Bview.key: index out of bounds";
  let eoff = entry_off t i in
  let slen = String.get_uint16_le t.buf eoff in
  let b = Bytes.create (t.prefix_len + slen) in
  Bytes.blit_string t.buf t.prefix_off b 0 t.prefix_len;
  Bytes.blit_string t.buf (eoff + 2) b t.prefix_len slen;
  Bytes.unsafe_to_string b

let leaf_value t i =
  if t.kind <> 0 then invalid_arg "Bview.leaf_value: internal node";
  if i < 0 || i >= t.nkeys then invalid_arg "Bview.leaf_value: index out of bounds";
  let eoff = entry_off t i in
  let slen = String.get_uint16_le t.buf eoff in
  let vlen, vpos = read_varint t.buf (eoff + 2 + slen) t.content_end in
  String.sub t.buf vpos vlen

let leaf_entry t i = (key t i, leaf_value t i)

let leaf_find t k =
  if t.kind <> 0 then invalid_arg "Bview.leaf_find: internal node";
  match search t k with Ok i -> Some (leaf_value t i) | Error _ -> None

let leaf_entries t = Array.init t.nkeys (fun i -> leaf_entry t i)

let internal_keys t =
  if t.kind <> 1 then invalid_arg "Bview.internal_keys: leaf node";
  Array.init t.nkeys (fun i -> key t i)

let child_count t = if t.kind = 1 then t.nkeys + 1 else 0

let child_at t i =
  if t.kind <> 1 then invalid_arg "Bview.child_at: leaf node";
  if i < 0 || i > t.nkeys then invalid_arg "Bview.child_at: index out of bounds";
  let d = Codec.Dec.of_string ~pos:(t.children_off + (16 * i)) t.buf in
  Objref.decode d

let children t = Array.init (t.nkeys + 1) (fun i -> child_at t i)

(* Route [k]: index of the child whose subtree covers it (the smallest
   [i] with [k < keys.(i)], else [nkeys]) — matches [Bnode.child_index]
   on the decoded node. A key equal to a separator routes right. *)
let child_index t k = match search t k with Ok i -> i + 1 | Error i -> i

let child_for t k =
  let i = child_index t k in
  (i, child_at t i)

(* Stamp equality straight off two raw payloads — what the object cache
   uses to revalidate epoch-stale entries without decoding either copy.
   Stamps are content hashes, so a collision merely over-counts
   "survived" revalidations; the fresh payload is (re)inserted by the
   cache regardless, so correctness never rests on this. *)
let same_stamp a b =
  String.length a >= 12
  && String.length b >= 12
  && Char.code a.[0] = magic
  && Char.code b.[0] = magic
  && Int64.equal (String.get_int64_le a 4) (String.get_int64_le b 4)

let stamp_of_payload s =
  if is_slotted s && String.length s >= 12 then Some (String.get_int64_le s 4) else None

(* Testing hook: byte range of the slot directory, for corruption
   falsifiability checks. *)
let dir_bounds t = (t.dir_off, 2 * t.nkeys)

(* {1 Encoding} *)

let stamp_pos = 4

let stamped_from = 12

(* Whether the slotted format can represent this node: every u16 field
   (suffix lengths, directory offsets, counts, prefix, fences) must fit.
   Oversized nodes fall back to the legacy format — the decoder
   dispatches on the leading byte either way. *)
let rep_ok ~low ~high ~descendants ~prefix_len ~keys ~entry_extra =
  let fence_ok = function Bkey.Key k -> String.length k <= 0xffff | _ -> true in
  let nkeys = Array.length keys in
  fence_ok low && fence_ok high
  && Array.length descendants <= 0xffff
  && prefix_len <= 0xffff && nkeys <= 0xffff
  &&
  (* Directory offsets are relative to the entries region; the last
     entry's offset is the sum of all previous entry sizes. *)
  let rec go i off =
    if i >= nkeys then true
    else
      let suffix = String.length keys.(i) - prefix_len in
      if suffix > 0xffff || off > 0xffff then false
      else go (i + 1) (off + 2 + suffix + entry_extra i)
  in
  go 0 0

let varint_size v =
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

let common_prefix_len keys =
  let n = Array.length keys in
  if n = 0 then 0
  else begin
    (* Keys are sorted, so the common prefix of all of them is the
       common prefix of the first and last. *)
    let a = keys.(0) and b = keys.(n - 1) in
    let m = min (String.length a) (String.length b) in
    let rec go i = if i < m && a.[i] = b.[i] then go (i + 1) else i in
    go 0
  end

type body_spec =
  | Leaf_spec of (Bkey.t * string) array
  | Internal_spec of Bkey.t array * Objref.t array

(* Append the slotted content (no CRC trailer — the caller frames it
   with [Codec.Enc.to_string_with_checksum]). Returns [false] without
   touching the encoder when the node exceeds the format's u16 limits,
   so the caller can fall back to the legacy encoding. *)
let encode_into e ~height ~low ~high ~snap ~descendants body =
  let keys =
    match body with
    | Leaf_spec entries -> Array.map fst entries
    | Internal_spec (keys, _) -> keys
  in
  let prefix_len = common_prefix_len keys in
  let entry_extra =
    match body with
    | Leaf_spec entries -> fun i -> varint_size (String.length (snd entries.(i))) + String.length (snd entries.(i))
    | Internal_spec _ -> fun _ -> 0
  in
  if not (rep_ok ~low ~high ~descendants ~prefix_len ~keys ~entry_extra) then false
  else begin
    let open Codec.Enc in
    let start = length e in
    u8 e magic;
    u8 e (match body with Leaf_spec _ -> 0 | Internal_spec _ -> 1);
    u16 e height;
    i64 e 0L (* stamp, patched below *);
    i64 e snap;
    u16 e (Array.length descendants);
    Array.iter (i64 e) descendants;
    encode_fence e low;
    encode_fence e high;
    u16 e prefix_len;
    if prefix_len > 0 then raw_sub e keys.(0) 0 prefix_len;
    let nkeys = Array.length keys in
    u16 e nkeys;
    (* Slot directory: entry offsets are computed incrementally from the
       entry sizes, so the directory is emitted before the entries
       without patching. *)
    let off = ref 0 in
    Array.iteri
      (fun i k ->
        u16 e !off;
        let suffix = String.length k - prefix_len in
        off := !off + 2 + suffix + entry_extra i)
      keys;
    (match body with
    | Leaf_spec _ -> ()
    | Internal_spec (_, children) -> Array.iter (Objref.encode e) children);
    (match body with
    | Leaf_spec entries ->
        Array.iter
          (fun (k, v) ->
            let suffix = String.length k - prefix_len in
            u16 e suffix;
            raw_sub e k prefix_len suffix;
            varint e (String.length v);
            raw e v)
          entries
    | Internal_spec (keys, _) ->
        Array.iter
          (fun k ->
            let suffix = String.length k - prefix_len in
            u16 e suffix;
            raw_sub e k prefix_len suffix)
          keys);
    patch_i64 e ~pos:(start + stamp_pos) (fnv1a64_from e ~pos:(start + stamped_from));
    true
  end
