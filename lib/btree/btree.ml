(** Umbrella module of the [btree] library: Minuet's distributed
    multiversion B-tree (the paper's core contribution). *)

module Bkey = Bkey
module Bnode = Bnode
module Bview = Bview
module Layout = Layout
module Node_alloc = Node_alloc
module Ops = Ops
