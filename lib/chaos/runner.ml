module Session = Minuet.Session
module Db = Minuet.Db
module Harness = Minuet.Harness
module Mconfig = Minuet.Config
module Cluster = Sinfonia.Cluster
module Ops = Btree.Ops

type config = {
  seed : int;
  duration : float;  (** Total traffic time, split evenly over phases. *)
  hosts : int;
  clients : int;
  keys : int;
  hot_keys : int;
  think : float;
  kinds : Nemesis.kind list;
  phases : int;
  mode : Ops.mode;  (** Concurrency-control mode the trees run under. *)
  scan_heavy : bool;
      (** Scan-dominated op mix (long ranges, batched-scan stress);
        every snapshot scan is double-checked against the per-leaf
        path. *)
  broken : bool;  (** Enable [unsafe_dirty_leaf_reads] (checker must fail). *)
  broken_recovery : bool;
      (** Skip the redo-log replay on replica promotion and recovery
          ({!Sinfonia.Config.broken_recovery}) — committed-but-unmirrored
          writes are silently lost, and the checker must catch it. *)
  branching : bool;
      (** Run the database in branching mode (Sec. 5): clients drive
          writable clones, frozen-version reads and multi-version
          queries instead of linear snapshots. *)
  broken_branch : bool;
      (** Deliberately break branch isolation
          ({!Minuet.Config.broken_branch_isolation}): reads at read-only
          versions leak the mainline tip's writes. Implies [branching];
          the checker's frozen-ancestor rule must fail the run. *)
  scs_k : float;
      (** Snapshot staleness bound [k] in seconds; [0] keeps strict SCS.
          When positive, the checker's SCS rule is relaxed by exactly
          [k] ([?scs_staleness]) instead of switched off. *)
  trace_out : string option;
      (** Tee every traced event to this file as JSON lines
          ({!Minuet.Session.Event.to_json}), for offline re-checking and
          debugging. *)
}

let default =
  {
    seed = 42;
    duration = 2.0;
    hosts = 4;
    clients = 6;
    keys = 160;
    hot_keys = 8;
    think = 1e-3;
    kinds = Nemesis.all_kinds;
    phases = 2;
    mode = Ops.Dirty_traversal;
    scan_heavy = false;
    broken = false;
    broken_recovery = false;
    branching = false;
    broken_branch = false;
    scs_k = 0.0;
    trace_out = None;
  }

type report = {
  verdict : Check.Checker.verdict;
  totals : Workload.totals;
  events : int;
  audits : int;
  audit_failures : string list;
  fault_counts : (string * int) list;
  sim_time : float;
}

let passed r = Check.Checker.ok r.verdict && r.audit_failures = []

let pp_report fmt r =
  Format.fprintf fmt "@[<v>workload: %a@,history: %d events@,faults:" Workload.pp_totals
    r.totals r.events;
  List.iter (fun (name, v) -> Format.fprintf fmt " %s=%d" name v) r.fault_counts;
  Format.fprintf fmt "@,audits: %d passed" r.audits;
  List.iter (fun msg -> Format.fprintf fmt "@,AUDIT FAILED: %s" msg) r.audit_failures;
  Format.fprintf fmt "@,%a" Check.Checker.pp_verdict r.verdict;
  Format.fprintf fmt "@,simulated time: %.3fs@]" r.sim_time

(* Audit one index at a frozen snapshot (safe under concurrent traffic:
   snapshots are immutable and GC is off during chaos runs). *)
let audit_at_snapshot admin idx =
  let index = Session.index (Session.db admin) idx in
  let snap = Session.snapshot ~index admin in
  let tree = Session.tree_of admin index in
  ignore (Ops.audit tree ~sid:snap.Session.sid ~root:snap.Session.root : (string * string) list)

let audit_tip admin idx =
  let tree = Session.tree_of admin (Session.index (Session.db admin) idx) in
  let sid, root = Ops.run_txn tree (fun txn -> Ops.Linear.read_tip tree txn) in
  Ops.audit tree ~sid ~root

(* Branching mode: structurally audit every frozen version the workload
   discovered (read-only versions are immutable in content, and GC is
   off during chaos runs, so this is safe under concurrent traffic). *)
let audit_branch_versions admin registry idx =
  let index = Session.index (Session.db admin) idx in
  let br = Session.branching ~index admin in
  List.iter
    (fun sid ->
      ignore
        (Ops.audit (Mvcc.Branching.tree br) ~sid ~root:(Mvcc.Branching.root_of br ~sid)
          : (string * string) list))
    registry.Workload.frozen

let lease = 0.05

let run_exn cfg =
  if cfg.phases <= 0 then invalid_arg "Chaos.Runner.run: phases must be positive";
  if cfg.clients <= 0 then invalid_arg "Chaos.Runner.run: need at least one client";
  let branching = cfg.branching || cfg.broken_branch in
  let mconfig =
    Mconfig.small_tree
      {
        Mconfig.default with
        Mconfig.hosts = cfg.hosts;
        mode = cfg.mode;
        branching;
        broken_branch_isolation = cfg.broken_branch;
        unsafe_dirty_leaf_reads = cfg.broken;
        scs_min_interval = cfg.scs_k;
        sinfonia =
          {
            Sinfonia.Config.default with
            Sinfonia.Config.broken_recovery = cfg.broken_recovery;
            (* Short in-doubt grace so the resolver actually fires within
               a chaos phase; infinite decision retention so the final
               2PC-atomicity cross-check sees every decision record. *)
            in_doubt_grace = 0.06;
            decision_retention = infinity;
          };
      }
  in
  Harness.run ~seed:cfg.seed ~until:((cfg.duration *. 3.) +. 10.) ~config:mconfig @@ fun db ->
  let cluster = Db.cluster db in
  let n = Cluster.n_memnodes cluster in
  (* Orphaned-lock recovery must be running: stall faults are healed
     only by the lease daemon. *)
  Cluster.start_recovery ~lease ~interval:0.02 cluster;
  (* The history is never materialized: every traced event feeds the
     streaming checker the moment it is emitted, so a run's memory
     footprint is the checker's bounded state, not its op count. *)
  let scs_staleness = if cfg.scs_k > 0.0 then Some cfg.scs_k else None in
  let stream =
    Check.Stream.create { Check.Stream.Config.default with Check.Stream.Config.scs_staleness }
  in
  let trace_tee =
    match cfg.trace_out with
    | None -> None
    | Some path -> Some (open_out path)
  in
  let tracer ev =
    (match trace_tee with
    | Some oc ->
        output_string oc (Obs.Json.to_string (Session.Event.to_json ev));
        output_char oc '\n'
    | None -> ());
    Check.Stream.feed stream ev
  in
  let rng = Sim.Rng.create (cfg.seed lxor 0x1ee7) in
  let sessions =
    Array.init cfg.clients (fun k -> Session.attach ~home:(k mod n) ~client:(n + k) ~tracer db)
  in
  let admin = Session.attach db in
  (* Snapshot creations reach the stream as they happen, so snapshot
     reads never wait for a post-run creation log. *)
  for idx = 0 to Db.n_trees db - 1 do
    Mvcc.Scs.set_on_create (Db.scs db ~index:idx) (fun ~sid ~stamp ->
        Check.Stream.add_creation stream ~index:idx ~sid ~stamp)
  done;
  let registry = Workload.branch_registry () in
  (* Preload half the key space through a traced session so the checker
     model includes the initial state. *)
  for i = 0 to (cfg.keys / 2) - 1 do
    if i mod 2 = 0 then begin
      let k = Workload.key_of i and v = Printf.sprintf "init-%d" i in
      if branching then Mvcc.Branching.put (Session.branching sessions.(0)) k v
      else Session.put sessions.(0) k v
    end
  done;
  let totals = Workload.totals () in
  let remaining = ref cfg.clients in
  let deadline = Sim.now () +. cfg.duration in
  Array.iteri
    (fun k session ->
      let crng = Sim.Rng.split rng in
      let body =
        if branching then
          Workload.run_branch_client ~branching:(Session.branching session) ~rng:crng
            ~client_id:k ~registry ~keys:cfg.keys ~hot_keys:cfg.hot_keys ~think:cfg.think
            ~deadline ~stats:totals
            ~on_done:(fun () -> decr remaining)
        else
          Workload.run_client ~scan_heavy:cfg.scan_heavy ~session ~rng:crng ~client_id:k
            ~keys:cfg.keys ~hot_keys:cfg.hot_keys ~think:cfg.think ~deadline ~stats:totals
            ~on_done:(fun () -> decr remaining)
      in
      Sim.spawn ~name:(Printf.sprintf "client-%d" k) body)
    sessions;
  let scs = Array.init (Db.n_trees db) (fun i -> Db.scs db ~index:i) in
  let nemesis = Nemesis.create ~cluster ~scs ~n_clients:cfg.clients in
  let audits = ref 0 in
  let audit_failures = ref [] in
  let audit_all f =
    for idx = 0 to Db.n_trees db - 1 do
      match f idx with
      | () -> incr audits
      | exception Failure msg ->
          audit_failures := !audit_failures @ [ Printf.sprintf "index %d: %s" idx msg ]
    done
  in
  let phase_dur = cfg.duration /. float_of_int cfg.phases in
  for _phase = 1 to cfg.phases do
    Nemesis.start nemesis ~rng cfg.kinds;
    Sim.delay phase_dur;
    Nemesis.stop_and_drain nemesis;
    Nemesis.recover_all nemesis;
    (* Let the lease daemon reap any orphaned stall locks and the
       in-doubt resolver pass its grace period (0.06s) at least once. *)
    Sim.delay (lease +. 0.12);
    audit_all (fun idx ->
        if branching then audit_branch_versions admin registry idx
        else audit_at_snapshot admin idx)
  done;
  while !remaining > 0 do
    Sim.delay 1e-3
  done;
  Nemesis.recover_all nemesis;
  Sim.delay (lease +. 0.12);
  (* Quiesce the in-doubt set: every fault is healed, so the resolver
     must drain it. Bounded wait; a nonzero residue fails the checker. *)
  let rec drain tries =
    if tries > 0 && Cluster.in_doubt_total cluster > 0 then begin
      Sim.delay 0.05;
      drain (tries - 1)
    end
  in
  drain 40;
  let final =
    if branching then begin
      (* Per-version structural audits stand in for the tip audit: every
         surviving read-only version must still walk cleanly. *)
      audit_all (fun idx -> audit_branch_versions admin registry idx);
      []
    end
    else
      List.init (Db.n_trees db) (fun idx ->
          match audit_tip admin idx with
          | entries ->
              incr audits;
              [ (idx, entries) ]
          | exception Failure msg ->
              audit_failures := !audit_failures @ [ Printf.sprintf "index %d: %s" idx msg ];
              [])
      |> List.concat
  in
  Option.iter close_out trace_tee;
  let events_fed = Check.Stream.fed stream in
  let verdict =
    Check.Stream.finish ~final
      ~twopc:(Cluster.redo_decisions cluster)
      ~in_doubt:(Cluster.in_doubt_total cluster)
      stream
  in
  (* Batched-vs-per-leaf scan equivalence: any snapshot scan whose two
     paths disagreed is as fatal as a structural audit failure. *)
  if totals.Workload.scan_mismatches > 0 then
    audit_failures :=
      !audit_failures
      @ [
          Printf.sprintf "%d of %d dual scans: batched result differed from per-leaf scan"
            totals.Workload.scan_mismatches totals.Workload.dual_scans;
        ];
  let stats = Obs.chaos (Db.obs db) in
  let fault_counts =
    [
      ("total", Obs.Counter.value stats.Obs.faults_injected);
      ("crash", Obs.Counter.value stats.Obs.crashes_injected);
      ("partition", Obs.Counter.value stats.Obs.partitions_injected);
      ("delay", Obs.Counter.value stats.Obs.delay_faults_injected);
      ("stall", Obs.Counter.value stats.Obs.stalls_injected);
      ("scs", Obs.Counter.value stats.Obs.scs_outages_injected);
      ("midcrash", Obs.Counter.value stats.Obs.mid_crashes_injected);
      ("mpartition", Obs.Counter.value stats.Obs.mirror_partitions_injected);
      ("replag", Obs.Counter.value stats.Obs.replica_lags_injected);
    ]
  in
  {
    verdict;
    totals;
    events = events_fed;
    audits = !audits;
    audit_failures = !audit_failures;
    fault_counts;
    sim_time = Sim.now ();
  }

(* In the deliberately-broken falsifiability modes the injected bug can
   corrupt the system badly enough that the run itself crashes (a lost
   committed write can wedge a traversal or starve snapshot creation)
   before the checker ever sees the history. That is still the bug being
   caught — report it as a failure instead of escaping with a backtrace.
   Honest configurations propagate exceptions unchanged: a crash there
   is a harness bug we must not swallow. *)
let run cfg =
  if not (cfg.broken || cfg.broken_recovery || cfg.broken_branch) then run_exn cfg
  else
    match run_exn cfg with
    | report -> report
    | exception (Failure _ as e) ->
        let msg = Printexc.to_string e in
        {
          verdict =
            {
              Check.Checker.violations =
                [
                  {
                    Check.Checker.v_index = -1;
                    v_message =
                      Printf.sprintf
                        "run crashed before the checker could complete: %s" msg;
                    v_event = None;
                    v_context = [];
                  };
                ];
              inconclusive = [];
              ops_checked = 0;
              snapshot_reads_checked = 0;
              branch_reads_checked = 0;
              candidates_resolved = 0;
              twopc_checked = 0;
            };
          totals = Workload.totals ();
          events = 0;
          audits = 0;
          audit_failures = [];
          fault_counts = [];
          sim_time = 0.0;
        }
