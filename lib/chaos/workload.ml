module Session = Minuet.Session
module Ops = Btree.Ops

type totals = {
  mutable ops : int;
  mutable gets : int;
  mutable puts : int;
  mutable removes : int;
  mutable scans : int;
  mutable snapshots : int;
  mutable snapshot_reads : int;
  mutable dual_scans : int;
  mutable scan_mismatches : int;
  mutable too_contended : int;
  mutable ambiguous : int;
}

let totals () =
  {
    ops = 0;
    gets = 0;
    puts = 0;
    removes = 0;
    scans = 0;
    snapshots = 0;
    snapshot_reads = 0;
    dual_scans = 0;
    scan_mismatches = 0;
    too_contended = 0;
    ambiguous = 0;
  }

let pp_totals fmt t =
  Format.fprintf fmt
    "@[<h>%d ops (%d get, %d put, %d remove, %d scan, %d snapshot + %d snapshot reads); %d \
     dual scans (%d mismatches); %d too-contended, %d ambiguous@]"
    t.ops t.gets t.puts t.removes t.scans t.snapshots t.snapshot_reads t.dual_scans
    t.scan_mismatches t.too_contended t.ambiguous

let key_of i = Printf.sprintf "k%05d" i

(* Hot-key bias: a quarter of accesses hit a small hot set so that
   update conflicts, lock contention and stale caches actually occur. *)
let pick_key rng ~keys ~hot_keys =
  if hot_keys > 0 && Sim.Rng.int rng 4 = 0 then key_of (Sim.Rng.int rng hot_keys)
  else key_of (Sim.Rng.int rng keys)

(* Oracle comparison for the batched scan: re-run the same snapshot scan
   through the per-leaf path ([~batch:1]) and require the identical
   entry sequence. Snapshots are immutable, so the two paths see the
   same history; any difference is a batching bug and fails the run
   (the runner turns [scan_mismatches] into an audit failure). Linear
   snapshots only: the branching version context cannot be rebuilt from
   a [Session.snapshot] alone. *)
let dual_scan_check session (snap : Session.snapshot) ~from ~count batched stats =
  if not (Minuet.Db.config (Session.db session)).Minuet.Config.branching then begin
    stats.dual_scans <- stats.dual_scans + 1;
    let index = Session.index (Session.db session) snap.Session.index in
    let tree = Session.tree_of session index in
    let vctx_of _txn =
      Ops.Linear.at_snapshot tree ~sid:snap.Session.sid ~root:snap.Session.root
    in
    let per_leaf = Ops.scan ~batch:1 tree ~vctx_of ~from ~count in
    let same =
      List.equal
        (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
        batched per_leaf
    in
    if not same then stats.scan_mismatches <- stats.scan_mismatches + 1
  end

(* One client loop: mixed reads, updates, inserts/removes, scans and
   snapshot reads against [session], with unique values so the checker
   can identify every write. [scan_heavy] shifts the mix toward long
   range scans (the batched-scan stress profile). Runs until
   [deadline]; [on_done] is called exactly once afterwards. *)
let run_client ?(scan_heavy = false) ~session ~rng ~client_id ~keys ~hot_keys ~think ~deadline
    ~stats ~on_done () =
  let opid = ref 0 in
  let value () =
    incr opid;
    Printf.sprintf "c%d-%d" client_id !opid
  in
  let scan_count = if scan_heavy then 32 else 8 in
  let snapshot_reads k =
    stats.snapshots <- stats.snapshots + 1;
    let snap = Session.snapshot session in
    stats.snapshot_reads <- stats.snapshot_reads + 3;
    ignore (Session.get_at session snap k : string option);
    ignore (Session.get_at session snap (pick_key rng ~keys ~hot_keys) : string option);
    let batched = Session.scan_at session snap ~from:k ~count:scan_count in
    dual_scan_check session snap ~from:k ~count:scan_count batched stats
  in
  let one_op () =
    let k = pick_key rng ~keys ~hot_keys in
    if scan_heavy then
      (* Scan-dominated: long ranges on tip and snapshots, enough writes
         to keep splitting/moving leaves under the scans' feet. *)
      match Sim.Rng.int rng 100 with
      | r when r < 10 ->
          stats.gets <- stats.gets + 1;
          ignore (Session.get session k : string option)
      | r when r < 35 ->
          stats.puts <- stats.puts + 1;
          Session.put session k (value ())
      | r when r < 42 ->
          stats.removes <- stats.removes + 1;
          ignore (Session.remove session k : bool)
      | r when r < 75 ->
          stats.scans <- stats.scans + 1;
          ignore (Session.scan session ~from:k ~count:scan_count : (string * string) list)
      | _ -> snapshot_reads k
    else
      match Sim.Rng.int rng 100 with
      | r when r < 35 ->
          stats.gets <- stats.gets + 1;
          ignore (Session.get session k : string option)
      | r when r < 65 ->
          stats.puts <- stats.puts + 1;
          Session.put session k (value ())
      | r when r < 75 ->
          stats.removes <- stats.removes + 1;
          ignore (Session.remove session k : bool)
      | r when r < 85 ->
          stats.scans <- stats.scans + 1;
          ignore (Session.scan session ~from:k ~count:scan_count : (string * string) list)
      | _ -> snapshot_reads k
  in
  let rec loop () =
    if Sim.now () < deadline then begin
      Sim.delay (Sim.Rng.float rng think);
      if Sim.now () < deadline then begin
        (try
           one_op ();
           stats.ops <- stats.ops + 1
         with
        | Ops.Too_contended _ -> stats.too_contended <- stats.too_contended + 1
        | Ops.Ambiguous _ -> stats.ambiguous <- stats.ambiguous + 1);
        loop ()
      end
    end
  in
  loop ();
  on_done ()
