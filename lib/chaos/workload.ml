module Session = Minuet.Session
module Ops = Btree.Ops

type totals = {
  mutable ops : int;
  mutable gets : int;
  mutable puts : int;
  mutable removes : int;
  mutable scans : int;
  mutable snapshots : int;
  mutable snapshot_reads : int;
  mutable dual_scans : int;
  mutable scan_mismatches : int;
  mutable too_contended : int;
  mutable ambiguous : int;
  mutable branches_created : int;
  mutable branches_deleted : int;
  mutable branch_reads : int;  (** Reads addressed at an explicit version. *)
  mutable multi_reads : int;  (** [get_many] / [history] queries. *)
  mutable branch_blocked : int;
      (** Branch ops refused by the catalog ([Too_many_branches],
          [Not_deletable]); expected under β bounds, not failures. *)
}

let totals () =
  {
    ops = 0;
    gets = 0;
    puts = 0;
    removes = 0;
    scans = 0;
    snapshots = 0;
    snapshot_reads = 0;
    dual_scans = 0;
    scan_mismatches = 0;
    too_contended = 0;
    ambiguous = 0;
    branches_created = 0;
    branches_deleted = 0;
    branch_reads = 0;
    multi_reads = 0;
    branch_blocked = 0;
  }

let pp_totals fmt t =
  Format.fprintf fmt
    "@[<h>%d ops (%d get, %d put, %d remove, %d scan, %d snapshot + %d snapshot reads); %d \
     dual scans (%d mismatches); %d too-contended, %d ambiguous@]"
    t.ops t.gets t.puts t.removes t.scans t.snapshots t.snapshot_reads t.dual_scans
    t.scan_mismatches t.too_contended t.ambiguous;
  if t.branches_created + t.branch_reads + t.multi_reads > 0 then
    Format.fprintf fmt
      "@,@[<h>branching: %d created, %d deleted, %d versioned reads, %d multi-version \
       queries, %d refused@]"
      t.branches_created t.branches_deleted t.branch_reads t.multi_reads t.branch_blocked

let key_of i = Printf.sprintf "k%05d" i

(* Hot-key bias: a quarter of accesses hit a small hot set so that
   update conflicts, lock contention and stale caches actually occur. *)
let pick_key rng ~keys ~hot_keys =
  if hot_keys > 0 && Sim.Rng.int rng 4 = 0 then key_of (Sim.Rng.int rng hot_keys)
  else key_of (Sim.Rng.int rng keys)

(* Oracle comparison for the batched scan: re-run the same snapshot scan
   through the per-leaf path ([~batch:1]) and require the identical
   entry sequence. Snapshots are immutable, so the two paths see the
   same history; any difference is a batching bug and fails the run
   (the runner turns [scan_mismatches] into an audit failure). Linear
   snapshots only: the branching version context cannot be rebuilt from
   a [Session.snapshot] alone. *)
let dual_scan_check session (snap : Session.snapshot) ~from ~count batched stats =
  if not (Minuet.Db.config (Session.db session)).Minuet.Config.branching then begin
    stats.dual_scans <- stats.dual_scans + 1;
    let index = Session.index (Session.db session) snap.Session.index in
    let tree = Session.tree_of session index in
    let vctx_of _txn =
      Ops.Linear.at_snapshot tree ~sid:snap.Session.sid ~root:snap.Session.root
    in
    let per_leaf = Ops.scan ~batch:1 tree ~vctx_of ~from ~count in
    let same =
      List.equal
        (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
        batched per_leaf
    in
    if not same then stats.scan_mismatches <- stats.scan_mismatches + 1
  end

(* One client loop: mixed reads, updates, inserts/removes, scans and
   snapshot reads against [session], with unique values so the checker
   can identify every write. [scan_heavy] shifts the mix toward long
   range scans (the batched-scan stress profile). Runs until
   [deadline]; [on_done] is called exactly once afterwards. *)
let run_client ?(scan_heavy = false) ~session ~rng ~client_id ~keys ~hot_keys ~think ~deadline
    ~stats ~on_done () =
  let opid = ref 0 in
  let value () =
    incr opid;
    Printf.sprintf "c%d-%d" client_id !opid
  in
  let scan_count = if scan_heavy then 32 else 8 in
  let snapshot_reads k =
    stats.snapshots <- stats.snapshots + 1;
    let snap = Session.snapshot session in
    stats.snapshot_reads <- stats.snapshot_reads + 3;
    ignore (Session.get_at session snap k : string option);
    ignore (Session.get_at session snap (pick_key rng ~keys ~hot_keys) : string option);
    let batched = Session.scan_at session snap ~from:k ~count:scan_count in
    dual_scan_check session snap ~from:k ~count:scan_count batched stats
  in
  let one_op () =
    let k = pick_key rng ~keys ~hot_keys in
    if scan_heavy then
      (* Scan-dominated: long ranges on tip and snapshots, enough writes
         to keep splitting/moving leaves under the scans' feet. *)
      match Sim.Rng.int rng 100 with
      | r when r < 10 ->
          stats.gets <- stats.gets + 1;
          ignore (Session.get session k : string option)
      | r when r < 35 ->
          stats.puts <- stats.puts + 1;
          Session.put session k (value ())
      | r when r < 42 ->
          stats.removes <- stats.removes + 1;
          ignore (Session.remove session k : bool)
      | r when r < 75 ->
          stats.scans <- stats.scans + 1;
          ignore (Session.scan session ~from:k ~count:scan_count : (string * string) list)
      | _ -> snapshot_reads k
    else
      match Sim.Rng.int rng 100 with
      | r when r < 35 ->
          stats.gets <- stats.gets + 1;
          ignore (Session.get session k : string option)
      | r when r < 65 ->
          stats.puts <- stats.puts + 1;
          Session.put session k (value ())
      | r when r < 75 ->
          stats.removes <- stats.removes + 1;
          ignore (Session.remove session k : bool)
      | r when r < 85 ->
          stats.scans <- stats.scans + 1;
          ignore (Session.scan session ~from:k ~count:scan_count : (string * string) list)
      | _ -> snapshot_reads k
  in
  let rec loop () =
    if Sim.now () < deadline then begin
      Sim.delay (Sim.Rng.float rng think);
      if Sim.now () < deadline then begin
        (try
           one_op ();
           stats.ops <- stats.ops + 1
         with
        | Ops.Too_contended _ -> stats.too_contended <- stats.too_contended + 1
        | Ops.Ambiguous _ -> stats.ambiguous <- stats.ambiguous + 1);
        loop ()
      end
    end
  in
  loop ();
  on_done ()

(* ---------------------------------------------------------------------- *)
(* Branching-mode traffic (Sec. 5)                                         *)
(* ---------------------------------------------------------------------- *)

(* Read-only versions discovered by any client, shared so that readers
   exercise versions other clients froze (and so the runner can audit
   each of them). The simulation is cooperative, so plain mutation is
   safe. Bounded: old frozen versions stop receiving traffic. *)
type branch_registry = { mutable frozen : int64 list }

let branch_registry () = { frozen = [] }

let note_frozen reg sid =
  if not (List.mem sid reg.frozen) then
    reg.frozen <- sid :: (if List.length reg.frozen >= 24 then List.filteri (fun i _ -> i < 23) reg.frozen else reg.frozen)

let pick_frozen rng reg =
  match reg.frozen with
  | [] -> None
  | l -> Some (List.nth l (Sim.Rng.int rng (List.length l)))

(* One branching-mode client: mainline reads and writes, writes at
   private writable clones, reads at shared frozen versions (the ops the
   frozen-ancestor rule checks — and the ones a broken-isolation tree
   corrupts), branch creation/deletion and multi-version queries. Each
   client only writes at and deletes clones it created itself; read-only
   versions are shared freely (they are immutable). *)
let run_branch_client ~branching ~rng ~client_id ~registry ~keys ~hot_keys ~think ~deadline
    ~stats ~on_done () =
  let module Branching = Mvcc.Branching in
  let br = branching in
  let opid = ref 0 in
  let value () =
    incr opid;
    Printf.sprintf "c%d-%d" client_id !opid
  in
  (* Writable clones created by this client, newest first. The newest is
     the preferred branch source, growing an ancestor chain deep enough
     to make [history] and frozen-chain checks interesting. *)
  let my_tips = ref [] in
  let branch_source () =
    match !my_tips with
    | tip :: _ when Sim.Rng.int rng 3 > 0 -> tip
    | _ -> ( match pick_frozen rng registry with Some sid -> sid | None -> 0L)
  in
  let one_op () =
    let k = pick_key rng ~keys ~hot_keys in
    match Sim.Rng.int rng 100 with
    | r when r < 18 ->
        stats.gets <- stats.gets + 1;
        ignore (Branching.get br k : string option)
    | r when r < 40 ->
        stats.puts <- stats.puts + 1;
        Branching.put br k (value ())
    | r when r < 47 ->
        stats.removes <- stats.removes + 1;
        ignore (Branching.remove br k : bool)
    | r when r < 54 ->
        stats.scans <- stats.scans + 1;
        ignore (Branching.scan br ~from:k ~count:8 : (string * string) list)
    | r when r < 68 -> (
        (* Reads pinned at a frozen version: must observe exactly the
           state frozen when the version stopped being a tip. *)
        match pick_frozen rng registry with
        | None ->
            stats.gets <- stats.gets + 1;
            ignore (Branching.get br k : string option)
        | Some sid ->
            stats.branch_reads <- stats.branch_reads + 1;
            if Sim.Rng.int rng 2 = 0 then ignore (Branching.get br ~at:sid k : string option)
            else ignore (Branching.scan ~at:sid br ~from:k ~count:8 : (string * string) list))
    | r when r < 76 -> (
        (* Writes at a private clone diverge from the mainline; the
           checker verifies them against that clone's forked model. *)
        match !my_tips with
        | [] ->
            stats.puts <- stats.puts + 1;
            Branching.put br k (value ())
        | tips ->
            let at = List.nth tips (Sim.Rng.int rng (List.length tips)) in
            stats.puts <- stats.puts + 1;
            if Sim.Rng.int rng 4 = 0 then ignore (Branching.remove br ~at k : bool)
            else Branching.put br ~at k (value ()))
    | r when r < 84 -> (
        let from = branch_source () in
        match Branching.create_branch br ~from with
        | sid ->
            stats.branches_created <- stats.branches_created + 1;
            (* [from] is read-only now (it has a branch); the new clone
               is ours to write at. *)
            my_tips := sid :: List.filter (fun t -> not (Int64.equal t from)) !my_tips;
            note_frozen registry from
        | exception Ops.Ambiguous _ ->
            (* The branch may or may not exist, so [from] may or may not
               be frozen. Either way it is no longer safe to treat as a
               private writable clone; reads at it stay legal. *)
            stats.ambiguous <- stats.ambiguous + 1;
            my_tips := List.filter (fun t -> not (Int64.equal t from)) !my_tips)
    | r when r < 92 -> (
        stats.multi_reads <- stats.multi_reads + 1;
        let vs =
          0L
          :: (match pick_frozen rng registry with Some s -> [ s ] | None -> [])
          @ (match !my_tips with t :: _ -> [ t ] | [] -> [])
        in
        if Sim.Rng.int rng 2 = 0 then
          ignore (Branching.get_many br ~at:vs k : (int64 * string option) list)
        else
          let from = match !my_tips with t :: _ -> t | [] -> 0L in
          ignore (Branching.history br ~from k : (int64 * string option) list))
    | _ -> (
        (* Retire the oldest private clone. Deleting a leaf sheds a
           branch from its parent — shedding the last one makes the
           parent writable again, which the checker must tolerate. *)
        match List.rev !my_tips with
        | [] -> ()
        | oldest :: _ -> (
            match Branching.delete_branch br oldest with
            | () ->
                stats.branches_deleted <- stats.branches_deleted + 1;
                my_tips := List.filter (fun t -> not (Int64.equal t oldest)) !my_tips
            | exception Ops.Ambiguous _ ->
                (* The deletion may have landed; stop touching the tip
                   so a committed delete cannot strand later writes. *)
                stats.ambiguous <- stats.ambiguous + 1;
                my_tips := List.filter (fun t -> not (Int64.equal t oldest)) !my_tips))
  in
  let rec loop () =
    if Sim.now () < deadline then begin
      Sim.delay (Sim.Rng.float rng think);
      if Sim.now () < deadline then begin
        (try
           one_op ();
           stats.ops <- stats.ops + 1
         with
        | Ops.Too_contended _ -> stats.too_contended <- stats.too_contended + 1
        | Ops.Ambiguous _ -> stats.ambiguous <- stats.ambiguous + 1
        | Mvcc.Branching.Too_many_branches _ | Mvcc.Branching.Not_deletable _
        | Mvcc.Branching.No_mainline _ ->
            stats.branch_blocked <- stats.branch_blocked + 1);
        loop ()
      end
    end
  in
  loop ();
  on_done ()
