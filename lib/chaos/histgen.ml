(* Deterministic synthetic history generator.

   Produces a million-op, chaos-shaped event history — stamped reads and
   writes, snapshot creations and snapshot reads, branch
   creation/deletion, frozen-version reads and multi-version queries —
   without running the simulated database, so the streaming checker can
   be benchmarked and falsified at scales where a real run would
   dominate the wall clock. The history is valid by construction (every
   result is read off a ground-truth model) unless a [fault] is
   injected, in which case exactly one event lies and the checker must
   fail the history.

   Events are handed to the sink in an arrival order that is only
   approximately stamp order: generation runs in stamp order, but
   events are released through shuffled fixed-size chunks, giving a
   bounded reorder skew (< 2×[reorder]) that exercises the stream's
   reorder buffer without ever exceeding a sane window. *)

module Event = Minuet.Session.Event
module Smap = Map.Make (String)

type fault = Stale_read | Branch_isolation

type config = {
  seed : int;
  ops : int;
  keys : int;
  clients : int;
  branching : bool;  (** Branch/version traffic instead of linear snapshots. *)
  snapshot_every : int;  (** Linear mode: ops per snapshot creation. *)
  reorder : int;  (** Arrival-order shuffle chunk size. *)
  fault : fault option;
      (** Inject exactly one lying event at ~2/3 of the run:
          [Stale_read] fakes a serializability violation (a stamped get
          returns a value the model never held at that point);
          [Branch_isolation] fakes a branch-isolation leak (a read
          pinned at a frozen version returns a foreign value). Requires
          [branching] for [Branch_isolation]. *)
}

let default =
  {
    seed = 0xcafe;
    ops = 1_000_000;
    keys = 4096;
    clients = 8;
    branching = false;
    snapshot_every = 500;
    reorder = 256;
    fault = None;
  }

type result = {
  gen_events : int;
  gen_creations : (int * (int64 * int64) list) list;
      (** Snapshot creation log, as [Checker.check]'s [creations]. *)
  gen_final : (int * (string * string) list) list;
      (** Final ground-truth entries (linear mode only). *)
}

(* Generator-side version record (branching mode). *)
type gver = {
  g_sid : int64;
  mutable g_model : string Smap.t;
  mutable g_writable : bool;
  mutable g_nbranches : int;
  g_parent : int64; (* -1 = none *)
}

let key_of i = Printf.sprintf "k%05d" i

let model_scan model ~from ~count =
  let rec take n seq =
    if n = 0 then []
    else match seq () with Seq.Nil -> [] | Seq.Cons (kv, rest) -> kv :: take (n - 1) rest
  in
  take count (Smap.to_seq_from from model)

let generate ?on_creation cfg sink =
  if cfg.ops < 0 then invalid_arg "Histgen.generate: negative op count";
  if cfg.fault = Some Branch_isolation && not cfg.branching then
    invalid_arg "Histgen.generate: Branch_isolation requires branching mode";
  let rng = Sim.Rng.create cfg.seed in
  (* Bounded-skew release: shuffle and flush one chunk at a time. *)
  let chunk = Array.make (max 1 cfg.reorder) None in
  let filled = ref 0 in
  let flush () =
    for i = !filled - 1 downto 1 do
      let j = Sim.Rng.int rng (i + 1) in
      let tmp = chunk.(i) in
      chunk.(i) <- chunk.(j);
      chunk.(j) <- tmp
    done;
    for i = 0 to !filled - 1 do
      match chunk.(i) with
      | Some ev -> sink ev
      | None -> ()
    done;
    Array.fill chunk 0 (Array.length chunk) None;
    filled := 0
  in
  let emit ev =
    chunk.(!filled) <- Some ev;
    incr filled;
    if !filled = Array.length chunk then flush ()
  in
  let now = ref 1.0 in
  let stamp = ref 0L in
  let next_stamp () =
    stamp := Int64.succ !stamp;
    !stamp
  in
  let next_sid = ref 0L in
  let fault_at = if cfg.fault = None then max_int else cfg.ops * 2 / 3 in
  let injected = ref false in
  let opno = ref 0 in
  let event ?stamp ?sid op =
    let commit = !now in
    {
      Event.client = Some (!opno mod max 1 cfg.clients);
      index = 0;
      op;
      invoked_at = commit -. (1e-5 +. Sim.Rng.float rng 1e-4);
      returned_at = commit +. (1e-5 +. Sim.Rng.float rng 1e-4);
      stamp;
      sid;
      ambiguous = false;
    }
  in
  let pick_key () = key_of (Sim.Rng.int rng cfg.keys) in
  let value () = Printf.sprintf "g%d" !opno in
  let creations = ref [] in
  let result () =
    flush ();
    { gen_events = !opno; gen_creations = [ (0, !creations) ]; gen_final = [] }
  in
  if not cfg.branching then begin
    (* ---------------- Linear mode ---------------- *)
    let model = ref Smap.empty in
    let frozen = ref None (* (sid, frozen model) of the latest snapshot *) in
    for _ = 1 to cfg.ops do
      incr opno;
      now := !now +. 2e-5;
      if (not !injected) && !opno >= fault_at then begin
        (* The one lying event: a stamped get claiming a value the model
           never held. *)
        injected := true;
        emit
          (event ~stamp:(next_stamp ())
             (Event.Get { key = pick_key (); result = Some "stale-value" }))
      end
      else if !opno mod cfg.snapshot_every = 0 then begin
        (* Snapshot creation: freeze the current model. *)
        let s = next_stamp () in
        next_sid := Int64.succ !next_sid;
        let sid = !next_sid in
        creations := (sid, s) :: !creations;
        (match on_creation with Some f -> f ~index:0 ~sid ~stamp:s | None -> ());
        frozen := Some (sid, !model);
        emit (event ~sid Event.Snapshot_taken)
      end
      else
        match Sim.Rng.int rng 100 with
        | r when r < 40 ->
            let k = pick_key () and v = value () in
            model := Smap.add k v !model;
            emit (event ~stamp:(next_stamp ()) (Event.Put { key = k; value = v }))
        | r when r < 50 ->
            let k = pick_key () in
            let removed = Smap.mem k !model in
            model := Smap.remove k !model;
            emit (event ~stamp:(next_stamp ()) (Event.Remove { key = k; removed }))
        | r when r < 80 ->
            let k = pick_key () in
            emit
              (event ~stamp:(next_stamp ())
                 (Event.Get { key = k; result = Smap.find_opt k !model }))
        | r when r < 90 ->
            let k = pick_key () in
            let result = model_scan !model ~from:k ~count:8 in
            emit (event ~stamp:(next_stamp ()) (Event.Scan { from = k; count = 8; result }))
        | _ -> (
            (* Snapshot read at the latest frozen snapshot. *)
            match !frozen with
            | None ->
                let k = pick_key () in
                emit
                  (event ~stamp:(next_stamp ())
                     (Event.Get { key = k; result = Smap.find_opt k !model }))
            | Some (sid, fm) ->
                let k = pick_key () in
                if Sim.Rng.int rng 2 = 0 then
                  emit (event ~sid (Event.Get { key = k; result = Smap.find_opt k fm }))
                else
                  emit
                    (event ~sid
                       (Event.Scan { from = k; count = 8; result = model_scan fm ~from:k ~count:8 })))
    done;
    let r = result () in
    { r with gen_final = [ (0, Smap.bindings !model) ] }
  end
  else begin
    (* ---------------- Branching mode ---------------- *)
    let versions : (int64, gver) Hashtbl.t = Hashtbl.create 64 in
    let root = { g_sid = 0L; g_model = Smap.empty; g_writable = true; g_nbranches = 0; g_parent = -1L } in
    Hashtbl.replace versions 0L root;
    let tips = ref [ root ] and frozen = ref [] in
    let pick l = List.nth l (Sim.Rng.int rng (List.length l)) in
    for _ = 1 to cfg.ops do
      incr opno;
      now := !now +. 2e-5;
      if
        (not !injected) && !opno >= fault_at
        && (cfg.fault = Some Stale_read || !frozen <> [])
      then begin
        injected := true;
        match cfg.fault with
        | Some Branch_isolation ->
            (* The one lying event: a read pinned at a frozen version
               claiming a value its frozen ancestor state never held —
               exactly what a broken-isolation tree leaks. *)
            emit
              (event
                 (Event.Branch_get
                    {
                      at = (pick !frozen).g_sid;
                      key = pick_key ();
                      result = Some "leaked-tip-value";
                    }))
        | _ ->
            emit
              (event ~stamp:(next_stamp ())
                 (Event.Branch_get
                    { at = (pick !tips).g_sid; key = pick_key (); result = Some "stale-value" }))
      end
      else
      match Sim.Rng.int rng 100 with
      | r when r < 40 ->
          let v = pick !tips and k = pick_key () and value = value () in
          v.g_model <- Smap.add k value v.g_model;
          emit (event ~stamp:(next_stamp ()) (Event.Branch_put { at = v.g_sid; key = k; value }))
      | r when r < 48 ->
          let v = pick !tips and k = pick_key () in
          let removed = Smap.mem k v.g_model in
          v.g_model <- Smap.remove k v.g_model;
          emit
            (event ~stamp:(next_stamp ()) (Event.Branch_remove { at = v.g_sid; key = k; removed }))
      | r when r < 70 ->
          let v = pick !tips and k = pick_key () in
          emit
            (event ~stamp:(next_stamp ())
               (Event.Branch_get { at = v.g_sid; key = k; result = Smap.find_opt k v.g_model }))
      | r when r < 82 -> (
          (* Dirty read pinned at a frozen version: unstamped, exactly
             the frozen-ancestor rule's territory (and where a
             broken-isolation tree leaks). *)
          match !frozen with
          | [] ->
              let v = pick !tips and k = pick_key () in
              emit
                (event ~stamp:(next_stamp ())
                   (Event.Branch_get { at = v.g_sid; key = k; result = Smap.find_opt k v.g_model }))
          | l ->
              let v = pick l and k = pick_key () in
              let result = Smap.find_opt k v.g_model in
              if Sim.Rng.int rng 2 = 0 then
                emit (event (Event.Branch_get { at = v.g_sid; key = k; result }))
              else
                emit
                  (event
                     (Event.Branch_scan
                        {
                          at = v.g_sid;
                          from = k;
                          count = 8;
                          result = model_scan v.g_model ~from:k ~count:8;
                        })))
      | r when r < 88 ->
          if Hashtbl.length versions >= 64 then (
            let v = pick !tips and k = pick_key () and value = value () in
            v.g_model <- Smap.add k value v.g_model;
            emit (event ~stamp:(next_stamp ()) (Event.Branch_put { at = v.g_sid; key = k; value })))
          else begin
            (* Branch: fork a child off a tip (freezing it) or off an
               already-frozen version (a parallel clone). *)
            let parent =
              if !frozen <> [] && Sim.Rng.int rng 3 = 0 then pick !frozen else pick !tips
            in
            next_sid := Int64.succ !next_sid;
            let child =
              {
                g_sid = !next_sid;
                g_model = parent.g_model;
                g_writable = true;
                g_nbranches = 0;
                g_parent = parent.g_sid;
              }
            in
            Hashtbl.replace versions child.g_sid child;
            parent.g_nbranches <- parent.g_nbranches + 1;
            if parent.g_writable then begin
              parent.g_writable <- false;
              tips := List.filter (fun v -> v != parent) !tips;
              frozen := parent :: !frozen
            end;
            tips := child :: !tips;
            emit
              (event ~stamp:(next_stamp ())
                 (Event.Branch_created { parent = parent.g_sid; sid = child.g_sid }))
          end
      | r when r < 94 ->
          (* Multi-version queries against the ground truth. *)
          let k = pick_key () in
          if Sim.Rng.int rng 2 = 0 then begin
            let vs =
              List.sort_uniq compare
                (List.filteri (fun i _ -> i < 3) (List.map (fun v -> v.g_sid) !tips)
                @ match !frozen with [] -> [] | l -> [ (pick l).g_sid ])
            in
            let results =
              List.map
                (fun sid -> (sid, Smap.find_opt k (Hashtbl.find versions sid).g_model))
                vs
            in
            emit (event ~stamp:(next_stamp ()) (Event.Get_many { key = k; results }))
          end
          else begin
            let from = pick !tips in
            (* Root-first ancestor chain values. *)
            let rec chain v acc =
              let acc = (v.g_sid, Smap.find_opt k v.g_model) :: acc in
              if Int64.compare v.g_parent 0L < 0 then acc
              else chain (Hashtbl.find versions v.g_parent) acc
            in
            emit
              (event ~stamp:(next_stamp ())
                 (Event.History { from = from.g_sid; key = k; results = chain from [] }))
          end
      | _ -> (
          (* Delete a leaf tip (never the root); its parent may become
             writable again, which both sides must tolerate. *)
          match List.filter (fun v -> Int64.compare v.g_sid 0L > 0 && v.g_nbranches = 0) !tips with
          | [] -> ()
          | deletable ->
              let v = pick deletable in
              tips := List.filter (fun t -> t != v) !tips;
              Hashtbl.remove versions v.g_sid;
              (match Hashtbl.find_opt versions v.g_parent with
              | Some p ->
                  p.g_nbranches <- p.g_nbranches - 1;
                  if p.g_nbranches = 0 then begin
                    p.g_writable <- true;
                    frozen := List.filter (fun f -> f != p) !frozen;
                    tips := p :: !tips
                  end
              | None -> ());
              emit (event ~stamp:(next_stamp ()) (Event.Branch_deleted { sid = v.g_sid })))
    done;
    result ()
  end
