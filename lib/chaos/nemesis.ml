module Cluster = Sinfonia.Cluster
module Memnode = Sinfonia.Memnode
module Lock_table = Sinfonia.Lock_table

type kind =
  | Crash
  | Partition
  | Delay
  | Stall
  | Scs_outage
  | Mid_crash
  | Mirror_partition
  | Replica_lag

(* New kinds are appended, never inserted: [start] splits one RNG per
   kind in list order, so preserving the prefix keeps old seeds
   byte-reproducible for the old fault mix. *)
let all_kinds =
  [ Crash; Partition; Delay; Stall; Scs_outage; Mid_crash; Mirror_partition; Replica_lag ]

let kind_to_string = function
  | Crash -> "crash"
  | Partition -> "partition"
  | Delay -> "delay"
  | Stall -> "stall"
  | Scs_outage -> "scs"
  | Mid_crash -> "midcrash"
  | Mirror_partition -> "mpartition"
  | Replica_lag -> "replag"

let kind_of_string = function
  | "crash" -> Some Crash
  | "partition" -> Some Partition
  | "delay" -> Some Delay
  | "stall" -> Some Stall
  | "scs" -> Some Scs_outage
  | "midcrash" -> Some Mid_crash
  | "mpartition" -> Some Mirror_partition
  | "replag" -> Some Replica_lag
  | _ -> None

type t = {
  cluster : Cluster.t;
  obs : Obs.t;
  stats : Obs.chaos_stats;
  scs : Mvcc.Scs.t array;
  n_clients : int;
  (* Links currently faulted by some nemesis process. A process only
     sets faults on links it claimed here and only heals those, so
     concurrent fault kinds never heal each other's links. *)
  owned_links : (int * int, unit) Hashtbl.t;
  mutable stop : bool;
  mutable active : int;
}

let create ~cluster ~scs ~n_clients =
  let obs = Cluster.obs cluster in
  {
    cluster;
    obs;
    stats = Obs.chaos obs;
    scs;
    n_clients;
    owned_links = Hashtbl.create 64;
    stop = false;
    active = 0;
  }

let n t = Cluster.n_memnodes t.cluster

(* Client host ids live above the memnode id range, so client-facing
   faults never touch memnode-to-memnode (mirror) links. *)
let client_host t k = n t + k

let claim_link t ~src ~dst =
  if Hashtbl.mem t.owned_links (src, dst) then false
  else begin
    Hashtbl.replace t.owned_links (src, dst) ();
    true
  end

let heal_links t links =
  let net = Cluster.net t.cluster in
  List.iter
    (fun (src, dst) ->
      Sim.Net.clear_fault net ~src ~dst;
      Hashtbl.remove t.owned_links (src, dst))
    links

let injected t =
  Obs.Counter.incr t.stats.Obs.faults_injected

(* ------------------------------------------------------------------ *)
(* Fault cycles: each injects one fault, holds it, and heals it         *)
(* (or leaves healing to the lease daemon, for stalls).                 *)
(* ------------------------------------------------------------------ *)

let poll = 0.5e-3

(* Bring memnode [i] back, retrying on the typed refusals of
   {!Cluster.try_recover}: another nemesis process may crash the node's
   backup (Replica_busy / No_replica, transiently) or the drain may not
   have landed yet (Not_crashed while [crash_pending]). Loops until the
   node is alive again — possibly recovered by a concurrent process. *)
let recover_with_retry t i =
  let rec loop () =
    let mn = Cluster.memnode t.cluster i in
    if Memnode.crashed mn || Memnode.crash_pending mn then begin
      (match Cluster.try_recover t.cluster i with
      | Ok () -> ()
      | Error _ -> Sim.delay poll);
      loop ()
    end
  in
  loop ()

(* Pick one memnode that is up and has a backup to fail over to. *)
let pick_backed_node t rng =
  let candidates =
    List.filter
      (fun i ->
        Memnode.available (Cluster.memnode t.cluster i) && Cluster.backup_of t.cluster i <> None)
      (List.init (n t) Fun.id)
  in
  match candidates with
  | [] -> None
  | _ :: _ -> Some (List.nth candidates (Sim.Rng.int rng (List.length candidates)))

(* Crash one memnode, wait for the crash to land (it drains in-flight
   requests first), hold the outage, then recover from the replica. *)
let crash_cycle t rng =
  match pick_backed_node t rng with
  | None -> ()
  | Some i ->
      let span = Obs.span_begin t.obs (Obs.Span.Fault "crash") in
      injected t;
      Obs.Counter.incr t.stats.Obs.crashes_injected;
      Cluster.crash t.cluster i;
      while not (Memnode.crashed (Cluster.memnode t.cluster i)) do
        Sim.delay poll
      done;
      Sim.delay (0.02 +. Sim.Rng.float rng 0.08);
      recover_with_retry t i;
      Obs.span_end t.obs span

(* Crash one memnode immediately — no drain, so the crash lands mid-2PC
   whenever a minitransaction is in flight: yes votes already logged
   stay in doubt until the recovery coordinator resolves them. Promotion
   (redo replay + in-doubt relock on the replica) runs synchronously in
   the crash hook, so the hold window exercises failover traffic against
   the promoted replica. *)
let mid_crash_cycle t rng =
  match pick_backed_node t rng with
  | None -> ()
  | Some i ->
      let span = Obs.span_begin t.obs (Obs.Span.Fault "midcrash") in
      injected t;
      Obs.Counter.incr t.stats.Obs.mid_crashes_injected;
      Cluster.crash_now t.cluster i;
      Sim.delay (0.02 +. Sim.Rng.float rng 0.08);
      recover_with_retry t i;
      Obs.span_end t.obs span

(* Block both directions between one client host and a subset of
   memnodes. In-flight exchanges complete (the fault model only blocks
   at protocol boundaries), so no minitransaction is cut in half. *)
let partition_cycle t rng =
  if t.n_clients = 0 then ()
  else begin
    let c = client_host t (Sim.Rng.int rng t.n_clients) in
    let subset_size = 1 + Sim.Rng.int rng (max 1 (n t / 2)) in
    let nodes = Array.init (n t) Fun.id in
    Sim.Rng.shuffle rng nodes;
    let net = Cluster.net t.cluster in
    let links = ref [] in
    for s = 0 to subset_size - 1 do
      let m = nodes.(s) in
      List.iter
        (fun (src, dst) ->
          if claim_link t ~src ~dst then begin
            Sim.Net.set_fault net ~src ~dst ~blocked:true ();
            links := (src, dst) :: !links
          end)
        [ (c, m); (m, c) ]
    done;
    if !links <> [] then begin
      let span = Obs.span_begin t.obs (Obs.Span.Fault "partition") in
      injected t;
      Obs.Counter.incr t.stats.Obs.partitions_injected;
      Sim.delay (0.05 +. Sim.Rng.float rng 0.15);
      heal_links t !links;
      Obs.span_end t.obs span
    end
  end

(* Latency spike plus loss on every client link of one memnode. *)
let delay_cycle t rng =
  if t.n_clients = 0 then ()
  else begin
    let m = Sim.Rng.int rng (n t) in
    let extra = 0.2e-3 +. Sim.Rng.float rng 1.8e-3 in
    let drop = Sim.Rng.float rng 0.3 in
    let net = Cluster.net t.cluster in
    let links = ref [] in
    for k = 0 to t.n_clients - 1 do
      let c = client_host t k in
      List.iter
        (fun (src, dst) ->
          if claim_link t ~src ~dst then begin
            Sim.Net.set_fault net ~src ~dst ~extra_latency:extra ~drop ();
            links := (src, dst) :: !links
          end)
        [ (c, m); (m, c) ]
    done;
    if !links <> [] then begin
      let span = Obs.span_begin t.obs (Obs.Span.Fault "delay") in
      injected t;
      Obs.Counter.incr t.stats.Obs.delay_faults_injected;
      Sim.delay (0.05 +. Sim.Rng.float rng 0.15);
      heal_links t !links;
      Obs.span_end t.obs span
    end
  end

(* A coordinator that stalls mid-2PC leaves its locks behind. Model the
   worst case: an exclusive range over a whole memnode's address space
   under a fresh owner that never completes. Only the lease daemon
   ({!Cluster.start_recovery}) can steal these, so the runner must have
   it started. *)
let stall_cycle t rng =
  match Cluster.route t.cluster (Sim.Rng.int rng (n t)) with
  | exception Cluster.Unavailable _ -> ()
  | _, store ->
      let owner = Cluster.fresh_owner t.cluster in
      let range = { Lock_table.start = 0; len = max_int / 2; mode = Lock_table.Exclusive } in
      if Lock_table.try_acquire (Memnode.store_locks store) ~owner [ range ] then begin
        let span = Obs.span_begin t.obs (Obs.Span.Fault "stall") in
        injected t;
        Obs.Counter.incr t.stats.Obs.stalls_injected;
        (* Wait out roughly a lease period before the next stall; the
           orphaned locks are healed by the recovery daemon, not us. *)
        Sim.delay (0.05 +. Sim.Rng.float rng 0.1);
        Obs.span_end t.obs span
      end

(* Set a symmetric fault on the memnode<->backup mirror link of one
   space, hold it, heal it. [mk_fault] installs whatever fault the
   caller wants on each claimed direction. *)
let mirror_link_cycle t rng ~name ~counter ~hold mk_fault =
  let i = Sim.Rng.int rng (n t) in
  match Cluster.backup_of t.cluster i with
  | None -> ()
  | Some b ->
      let net = Cluster.net t.cluster in
      let links = ref [] in
      List.iter
        (fun (src, dst) ->
          if claim_link t ~src ~dst then begin
            mk_fault net ~src ~dst;
            links := (src, dst) :: !links
          end)
        [ (i, b); (b, i) ];
      if !links <> [] then begin
        let span = Obs.span_begin t.obs (Obs.Span.Fault name) in
        injected t;
        Obs.Counter.incr counter;
        Sim.delay (hold rng);
        heal_links t !links;
        Obs.span_end t.obs span
      end

(* Cut the mirror link during phase two: commits succeed (the all-yes
   rule binds once every participant voted) but their mirrors are
   skipped, leaving committed-but-unmirrored redo entries that the flush
   daemon — or a promotion replay, if the primary then crashes — must
   deliver. *)
let mirror_partition_cycle t rng =
  mirror_link_cycle t rng ~name:"mpartition"
    ~counter:t.stats.Obs.mirror_partitions_injected
    ~hold:(fun rng -> 0.05 +. Sim.Rng.float rng 0.15)
    (fun net ~src ~dst -> Sim.Net.set_fault net ~src ~dst ~blocked:true ())

(* Loss and latency on the mirror link: replicas lag behind their
   primary, so a crash during the window promotes a stale image that the
   redo-log replay must roll forward. *)
let replica_lag_cycle t rng =
  let extra = 0.5e-3 +. Sim.Rng.float rng 2e-3 in
  let drop = 0.2 +. Sim.Rng.float rng 0.5 in
  mirror_link_cycle t rng ~name:"replag" ~counter:t.stats.Obs.replica_lags_injected
    ~hold:(fun rng -> 0.05 +. Sim.Rng.float rng 0.15)
    (fun net ~src ~dst -> Sim.Net.set_fault net ~src ~dst ~extra_latency:extra ~drop ())

let scs_outage_cycle t rng =
  if Array.length t.scs = 0 then ()
  else begin
    let scs = t.scs.(Sim.Rng.int rng (Array.length t.scs)) in
    let dur = 0.02 +. Sim.Rng.float rng 0.08 in
    let span = Obs.span_begin t.obs (Obs.Span.Fault "scs") in
    injected t;
    Obs.Counter.incr t.stats.Obs.scs_outages_injected;
    Mvcc.Scs.set_outage scs ~until:(Sim.now () +. dur);
    Sim.delay dur;
    Obs.span_end t.obs span
  end

let cycle t kind rng =
  match kind with
  | Crash -> crash_cycle t rng
  | Partition -> partition_cycle t rng
  | Delay -> delay_cycle t rng
  | Stall -> stall_cycle t rng
  | Scs_outage -> scs_outage_cycle t rng
  | Mid_crash -> mid_crash_cycle t rng
  | Mirror_partition -> mirror_partition_cycle t rng
  | Replica_lag -> replica_lag_cycle t rng

(* ------------------------------------------------------------------ *)
(* Storm control                                                        *)
(* ------------------------------------------------------------------ *)

let start t ~rng kinds =
  t.stop <- false;
  List.iter
    (fun kind ->
      (* Per-kind streams make each nemesis process deterministic
         regardless of how the scheduler interleaves them. *)
      let krng = Sim.Rng.split rng in
      t.active <- t.active + 1;
      Sim.spawn ~name:("nemesis-" ^ kind_to_string kind) (fun () ->
          let rec loop () =
            if t.stop then ()
            else begin
              Sim.delay (0.01 +. Sim.Rng.float krng 0.05);
              if not t.stop then begin
                cycle t kind krng;
                loop ()
              end
            end
          in
          loop ();
          t.active <- t.active - 1))
    kinds

(* Stop injecting and wait until every in-flight fault cycle has healed
   what it owns (crash cycles recover their node; link cycles clear
   their links). Orphaned stall locks are left for the lease daemon. *)
let stop_and_drain t =
  t.stop <- true;
  while t.active > 0 do
    Sim.delay poll
  done;
  Sim.Net.clear_all_faults (Cluster.net t.cluster);
  Hashtbl.reset t.owned_links

(* Recover any memnode still down (e.g. crashed right as the storm was
   stopped), polling for drain/failover quiescence. *)
let recover_all t =
  for i = 0 to n t - 1 do
    recover_with_retry t i
  done
