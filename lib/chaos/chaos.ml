(** Deterministic chaos engine for Minuet.

    {!Nemesis} injects faults driven by the simulation RNG — memnode
    crash/recover storms, client-to-memnode partitions, latency/loss
    spikes, coordinator stalls that orphan locks mid-2PC, and snapshot
    service outages. {!Workload} drives a mixed
    read/update/insert/scan/snapshot workload (or, in branching mode,
    clone/version traffic) through traced sessions. {!Runner} combines
    both into phased storms with a structural audit after every phase,
    feeding every event to a streaming checker ({!Check.Stream}) as it
    happens. {!Histgen} synthesizes chaos-shaped histories at scales a
    real run can't reach, for checker benchmarks and falsification. A
    whole run is a pure function of its seed: same seed, same faults,
    same history, same verdict. *)

module Nemesis = Nemesis
module Workload = Workload
module Runner = Runner
module Histgen = Histgen
