(* The open-loop scenario runner.

   Architecture (per tenant): a dispatcher process walks the tenant's
   precomputed arrival schedule and enqueues each operation into a FIFO
   at its scheduled instant; a fixed pool of [concurrency] worker
   sessions drains the queue. Latency is measured from the *scheduled
   arrival*, not from the moment a worker picked the op up, so the
   reported quantiles include queueing delay: a tenant whose provisioned
   capacity can't keep up with its arrival curve shows the backlog as
   tail latency instead of silently slowing the generator down
   (coordinated omission, the closed-loop failure mode).

   Every session is traced into a streaming serializability checker
   ({!Check.Stream}), so a scenario doesn't just measure the system
   under production-shaped load — it verifies it. *)

module Session = Minuet.Session
module Db = Minuet.Db
module Harness = Minuet.Harness
module Mconfig = Minuet.Config
module Cluster = Sinfonia.Cluster
module Ops = Btree.Ops
module Hist = Sim.Stats.Hist

type config = {
  name : string;
  seed : int;
  duration : float;  (** Seconds of simulated time arrivals are scheduled over. *)
  hosts : int;
  tenants : Tenant.t list;
  scs_k : float;  (** Snapshot staleness bound (checker relaxed by exactly k). *)
  chaos : Chaos.Nemesis.kind list;  (** Empty = no fault injection. *)
  chaos_phases : int;
  branching : bool;  (** Run the database in branching mode (Sec. 5). *)
}

let default =
  {
    name = "traffic";
    seed = 1;
    duration = 1.0;
    hosts = 4;
    tenants = [];
    scs_k = 0.0;
    chaos = [];
    chaos_phases = 2;
    branching = false;
  }

type tenant_result = {
  tenant : Tenant.t;
  offered : int;  (** Scheduled arrivals. *)
  completed : int;
  errors : int;  (** Contention give-ups and ambiguous outcomes. *)
  branch_blocked : int;  (** Catalog refusals under the β bound (not errors). *)
  latency : Hist.t;  (** Open loop: scheduled arrival -> completion, seconds. *)
  service : Hist.t;  (** Issue -> completion. *)
  queueing : Hist.t;  (** Scheduled arrival -> issue. *)
  throughput : float;  (** Completed ops per second of traffic window. *)
  slo : Slo.verdict;
}

type report = {
  config : config;
  tenants : tenant_result list;
  verdict : Check.Stream.verdict;
  audits : int;
  audit_failures : string list;
  events : int;  (** History events fed to the checker. *)
  fault_counts : (string * int) list;
  sim_time : float;
}

let slo_ok r = List.for_all (fun t -> Slo.ok t.slo) r.tenants

let passed r = Check.Stream.ok r.verdict && r.audit_failures = [] && slo_ok r

let pp_tenant_result fmt t =
  Format.fprintf fmt
    "@[<h>%-12s offered=%-6d done=%-6d err=%-4d tput=%-7.0f lat p50=%.3fms p99=%.3fms \
     p999=%.3fms queue p99=%.3fms | %a@]"
    t.tenant.Tenant.name t.offered t.completed t.errors t.throughput
    (Hist.quantile t.latency 0.5 *. 1e3)
    (Hist.quantile t.latency 0.99 *. 1e3)
    (Hist.p999 t.latency *. 1e3)
    (Hist.quantile t.queueing 0.99 *. 1e3)
    Slo.pp_verdict t.slo

let pp_report fmt r =
  Format.fprintf fmt "@[<v>scenario %s (seed %d, %d tenants%s):@," r.config.name r.config.seed
    (List.length r.config.tenants)
    (if r.config.chaos = [] then "" else ", chaos");
  List.iter (fun t -> Format.fprintf fmt "%a@," pp_tenant_result t) r.tenants;
  Format.fprintf fmt "history: %d events@,audits: %d passed" r.events r.audits;
  List.iter (fun msg -> Format.fprintf fmt "@,AUDIT FAILED: %s" msg) r.audit_failures;
  if r.fault_counts <> [] then begin
    Format.fprintf fmt "@,faults:";
    List.iter (fun (name, v) -> if v > 0 then Format.fprintf fmt " %s=%d" name v) r.fault_counts
  end;
  Format.fprintf fmt "@,%a@,simulated time: %.3fs@]" Check.Stream.pp_verdict r.verdict
    r.sim_time

(* Per-tenant mutable measurement state shared between its workers. *)
type meter = {
  mutable m_completed : int;
  mutable m_errors : int;
  mutable m_blocked : int;
  m_latency : Hist.t;
  m_service : Hist.t;
  m_queueing : Hist.t;
}

type queue_msg = Arrive of float | Stop

(* Shared frozen-version registry for branching traffic (cooperative
   sim: plain mutation is safe). Bounded like the chaos registry; the
   survivors get a structural audit at the end of the run. *)
type branch_state = { mutable frozen : int64 list; mutable tips : int64 list }

let note_frozen bs sid =
  if not (List.mem sid bs.frozen) then
    bs.frozen <-
      sid
      :: (if List.length bs.frozen >= 16 then List.filteri (fun i _ -> i < 15) bs.frozen
          else bs.frozen)

let lease = 0.05

let key_of ~offset ordinal = Ycsb.Keygen.key_of_int (offset + ordinal)

let run_exn (cfg : config) =
  if cfg.tenants = [] then invalid_arg "Traffic.Engine.run: no tenants";
  if cfg.duration <= 0.0 then invalid_arg "Traffic.Engine.run: duration must be positive";
  if cfg.chaos <> [] && cfg.chaos_phases <= 0 then
    invalid_arg "Traffic.Engine.run: chaos_phases must be positive";
  let mconfig =
    Mconfig.small_tree
      {
        Mconfig.default with
        Mconfig.hosts = cfg.hosts;
        branching = cfg.branching;
        scs_min_interval = cfg.scs_k;
        sinfonia =
          {
            Sinfonia.Config.default with
            Sinfonia.Config.in_doubt_grace = 0.06;
            decision_retention = infinity;
          };
      }
  in
  Harness.run ~seed:cfg.seed ~until:((cfg.duration *. 6.) +. 30.) ~config:mconfig @@ fun db ->
  let cluster = Db.cluster db in
  let n = Cluster.n_memnodes cluster in
  Cluster.start_recovery ~lease ~interval:0.02 cluster;
  let scs_staleness = if cfg.scs_k > 0.0 then Some cfg.scs_k else None in
  let stream =
    Check.Stream.create { Check.Stream.Config.default with Check.Stream.Config.scs_staleness }
  in
  let tracer ev = Check.Stream.feed stream ev in
  for idx = 0 to Db.n_trees db - 1 do
    Mvcc.Scs.set_on_create (Db.scs db ~index:idx) (fun ~sid ~stamp ->
        Check.Stream.add_creation stream ~index:idx ~sid ~stamp)
  done;
  (* Slice the ordinal space: tenant i owns [offsets.(i), offsets.(i) +
     keys), mapped through the order-preserving key format. *)
  let tenants = Array.of_list cfg.tenants in
  let offsets = Array.make (Array.length tenants) 0 in
  let _ =
    Array.fold_left
      (fun (i, off) (t : Tenant.t) ->
        offsets.(i) <- off;
        (i + 1, off + t.Tenant.keys))
      (0, 0) tenants
  in
  (* Preload half of every slice through a traced session so the
     checker's model includes the initial state. *)
  let loader = Session.attach ~tracer db in
  let branch_handle session = Session.branching session in
  Array.iteri
    (fun i (t : Tenant.t) ->
      for o = 0 to t.Tenant.keys - 1 do
        if o mod 2 = 0 then begin
          let k = key_of ~offset:offsets.(i) o and v = Printf.sprintf "init-%d-%d" i o in
          if cfg.branching then Mvcc.Branching.put (branch_handle loader) k v
          else Session.put loader k v
        end
      done)
    tenants;
  (* Per-tenant schedules, meters, queues and RNG streams. *)
  let op_rng_root = Sim.Rng.create (Arrival.stream_seed ~seed:cfg.seed ~tenant_id:0x0ddba11) in
  let finished = Sim.Ivar.create () in
  let live_workers =
    ref (Array.fold_left (fun acc (t : Tenant.t) -> acc + t.Tenant.concurrency) 0 tenants)
  in
  let worker_seq = ref 0 in
  let meters = Array.map (fun _ -> {
        m_completed = 0;
        m_errors = 0;
        m_blocked = 0;
        m_latency = Hist.create ();
        m_service = Hist.create ();
        m_queueing = Hist.create ();
      }) tenants
  in
  let schedules =
    Array.mapi
      (fun i (t : Tenant.t) ->
        Arrival.schedule t.Tenant.arrival ~seed:cfg.seed ~tenant_id:i ~until:cfg.duration)
      tenants
  in
  let bstates = Array.map (fun _ -> { frozen = []; tips = [] }) tenants in
  (* Schedules are offsets from the start of traffic, not from sim time
     zero: the preload above consumed simulated time, and anchoring at
     zero would make every arrival scheduled during it instantly late. *)
  let traffic_start = Sim.now () in
  Array.iteri
    (fun ti (tenant : Tenant.t) ->
      let offset = offsets.(ti) in
      let meter = meters.(ti) in
      let queue : queue_msg Sim.Mailbox.t = Sim.Mailbox.create () in
      let keygen = Tenant.keygen tenant in
      let rng = Sim.Rng.split op_rng_root in
      let bstate = bstates.(ti) in
      let pick_key () = key_of ~offset (Ycsb.Keygen.next keygen rng) in
      let exec_linear session op_id kind =
        let k = pick_key () in
        match (kind : Tenant.op_kind) with
        | Tenant.Read -> ignore (Session.get session k : string option)
        | Tenant.Update ->
            Session.put session k (Printf.sprintf "t%d-%d" ti op_id)
        | Tenant.Scan ->
            ignore
              (Session.scan session ~from:k ~count:tenant.Tenant.scan_count
                : (string * string) list)
        | Tenant.Snapshot_read ->
            let snap = Session.snapshot session in
            ignore (Session.get_at session snap k : string option);
            ignore
              (Session.scan_at session snap ~from:k ~count:tenant.Tenant.scan_count
                : (string * string) list)
        | Tenant.Branch_op ->
            (* Linear database: downgrade to a snapshot read. *)
            let snap = Session.snapshot session in
            ignore (Session.get_at session snap k : string option)
      in
      let exec_branching session tips op_id kind =
        let module B = Mvcc.Branching in
        let br = branch_handle session in
        let k = pick_key () in
        let value () = Printf.sprintf "t%d-%d" ti op_id in
        match (kind : Tenant.op_kind) with
        | Tenant.Read -> ignore (B.get br k : string option)
        | Tenant.Update -> B.put br k (value ())
        | Tenant.Scan -> (
            (* Pin scans to a frozen version when one exists: immutable,
               so they never abort under concurrent updates (the
               branching-mode analogue of scan_at, Sec. 6.3). *)
            match bstate.frozen with
            | [] ->
                ignore (B.scan br ~from:k ~count:tenant.Tenant.scan_count : (string * string) list)
            | sid :: _ ->
                ignore
                  (B.scan br ~at:sid ~from:k ~count:tenant.Tenant.scan_count
                    : (string * string) list))
        | Tenant.Snapshot_read -> (
            (* Version-pinned read: the frozen-ancestor rule checks it. *)
            match bstate.frozen with
            | [] -> ignore (B.get br k : string option)
            | sid :: _ ->
                ignore (B.get br ~at:sid k : string option);
                ignore
                  (B.scan br ~at:sid ~from:k ~count:tenant.Tenant.scan_count
                    : (string * string) list))
        | Tenant.Branch_op -> (
            match Sim.Rng.int rng 8 with
            | 0 | 1 ->
                (* A tip we branch from freezes; on an ambiguous outcome
                   drop it from the writable set — writing to a
                   maybe-frozen version would be a real isolation bug,
                   not injected noise. *)
                let from = match !tips with tip :: _ -> tip | [] -> 0L in
                let cleanup () =
                  tips := List.filter (fun t -> not (Int64.equal t from)) !tips;
                  note_frozen bstate from
                in
                let sid =
                  try B.create_branch br ~from
                  with Ops.Ambiguous _ as e ->
                    cleanup ();
                    raise e
                in
                cleanup ();
                tips := sid :: !tips
            | 2 -> (
                match List.rev !tips with
                | [] -> ignore (B.get br k : string option)
                | oldest :: _ ->
                    tips := List.filter (fun t -> not (Int64.equal t oldest)) !tips;
                    B.delete_branch br oldest)
            | _ -> (
                match !tips with
                | [] -> B.put br k (value ())
                | tip :: _ -> B.put br ~at:tip k (value ())))
      in
      let exec session tips op_id kind =
        if cfg.branching then exec_branching session tips op_id kind
        else exec_linear session op_id kind
      in
      (* Dispatcher: offer each op at its scheduled instant. *)
      Sim.spawn ~name:(Printf.sprintf "traffic-dispatch-%s" tenant.Tenant.name) (fun () ->
          Array.iter
            (fun at ->
              let scheduled = traffic_start +. at in
              let gap = scheduled -. Sim.now () in
              if gap > 0.0 then Sim.delay gap;
              Sim.Mailbox.send queue (Arrive scheduled))
            schedules.(ti);
          for _ = 1 to tenant.Tenant.concurrency do
            Sim.Mailbox.send queue Stop
          done);
      (* Worker pool: the tenant's provisioned capacity. *)
      for _w = 0 to tenant.Tenant.concurrency - 1 do
        let wid = !worker_seq in
        incr worker_seq;
        let session = Session.attach ~home:(wid mod n) ~client:(n + wid) ~tracer db in
        let op_count = ref 0 in
        let tips = ref [] in
        Sim.spawn ~name:(Printf.sprintf "traffic-%s-w%d" tenant.Tenant.name wid) (fun () ->
            let rec loop () =
              match Sim.Mailbox.recv queue with
              | Stop ->
                  decr live_workers;
                  if !live_workers = 0 then Sim.Ivar.fill finished ()
              | Arrive scheduled ->
                  let issued = Sim.now () in
                  Hist.add meter.m_queueing (issued -. scheduled);
                  incr op_count;
                  let kind = Tenant.draw_op tenant rng in
                  (match exec session tips !op_count kind with
                  | () ->
                      let now = Sim.now () in
                      meter.m_completed <- meter.m_completed + 1;
                      Hist.add meter.m_latency (now -. scheduled);
                      Hist.add meter.m_service (now -. issued)
                  | exception Ops.Too_contended _ -> meter.m_errors <- meter.m_errors + 1
                  | exception Ops.Ambiguous _ -> meter.m_errors <- meter.m_errors + 1
                  | exception
                      ( Mvcc.Branching.Too_many_branches _ | Mvcc.Branching.Not_deletable _
                      | Mvcc.Branching.No_mainline _ ) ->
                      meter.m_blocked <- meter.m_blocked + 1);
                  loop ()
            in
            loop ())
      done)
    tenants;
  (* Optional chaos overlap: phased storms while the traffic runs, the
     same start/drain/heal cycle as the chaos runner. *)
  let scs = Array.init (Db.n_trees db) (fun i -> Db.scs db ~index:i) in
  let nemesis = Chaos.Nemesis.create ~cluster ~scs ~n_clients:!worker_seq in
  if cfg.chaos <> [] then begin
    let nrng = Sim.Rng.create (cfg.seed lxor 0xc4a05) in
    let phase_dur = cfg.duration /. float_of_int cfg.chaos_phases in
    for _phase = 1 to cfg.chaos_phases do
      Chaos.Nemesis.start nemesis ~rng:nrng cfg.chaos;
      Sim.delay phase_dur;
      Chaos.Nemesis.stop_and_drain nemesis;
      Chaos.Nemesis.recover_all nemesis;
      Sim.delay (lease +. 0.12)
    done
  end;
  Sim.Ivar.read finished;
  if cfg.chaos <> [] then begin
    Chaos.Nemesis.recover_all nemesis;
    Sim.delay (lease +. 0.12);
    (* Quiesce the in-doubt set before the final cross-checks. *)
    let rec drain tries =
      if tries > 0 && Cluster.in_doubt_total cluster > 0 then begin
        Sim.delay 0.05;
        drain (tries - 1)
      end
    in
    drain 40
  end;
  (* Final structural audits, then the checker verdict. *)
  let admin = Session.attach db in
  let audits = ref 0 in
  let audit_failures = ref [] in
  let final =
    if cfg.branching then begin
      (* No meaningful tip in branching mode; structurally audit every
         frozen version the tenants created instead (immutable, so safe
         to walk while the mainline keeps its final state). *)
      let br = branch_handle admin in
      Array.iteri
        (fun ti bstate ->
          List.iter
            (fun sid ->
              match
                (Ops.audit (Mvcc.Branching.tree br) ~sid ~root:(Mvcc.Branching.root_of br ~sid)
                  : (string * string) list)
              with
              | (_ : (string * string) list) -> incr audits
              | exception Failure msg ->
                  audit_failures :=
                    !audit_failures
                    @ [ Printf.sprintf "tenant %d version %Ld audit: %s" ti sid msg ])
            bstate.frozen)
        bstates;
      []
    end
    else
      List.init (Db.n_trees db) (fun idx ->
          let index = Session.index db idx in
          let tree = Session.tree_of admin index in
          let sid, root = Ops.run_txn tree (fun txn -> Ops.Linear.read_tip tree txn) in
          match Ops.audit tree ~sid ~root with
          | entries ->
              incr audits;
              [ (idx, entries) ]
          | exception Failure msg ->
              audit_failures := !audit_failures @ [ Printf.sprintf "index %d: %s" idx msg ];
              [])
      |> List.concat
  in
  let events = Check.Stream.fed stream in
  let verdict =
    Check.Stream.finish ~final
      ~twopc:(Cluster.redo_decisions cluster)
      ~in_doubt:(Cluster.in_doubt_total cluster)
      stream
  in
  let tenant_results =
    List.of_seq
      (Seq.mapi
         (fun ti (tenant : Tenant.t) ->
           let meter = meters.(ti) in
           let offered = Array.length schedules.(ti) in
           let slo =
             Slo.evaluate tenant.Tenant.slo ~latency:meter.m_latency ~offered
               ~errors:meter.m_errors
           in
           {
             tenant;
             offered;
             completed = meter.m_completed;
             errors = meter.m_errors;
             branch_blocked = meter.m_blocked;
             latency = meter.m_latency;
             service = meter.m_service;
             queueing = meter.m_queueing;
             throughput = float_of_int meter.m_completed /. cfg.duration;
             slo;
           })
         (Array.to_seq tenants))
  in
  let stats = Obs.chaos (Db.obs db) in
  let fault_counts =
    if cfg.chaos = [] then []
    else
      [
        ("total", Obs.Counter.value stats.Obs.faults_injected);
        ("crash", Obs.Counter.value stats.Obs.crashes_injected);
        ("partition", Obs.Counter.value stats.Obs.partitions_injected);
        ("delay", Obs.Counter.value stats.Obs.delay_faults_injected);
        ("stall", Obs.Counter.value stats.Obs.stalls_injected);
        ("scs", Obs.Counter.value stats.Obs.scs_outages_injected);
      ]
  in
  {
    config = cfg;
    tenants = tenant_results;
    verdict;
    audits = !audits;
    audit_failures = !audit_failures;
    events;
    fault_counts;
    sim_time = Sim.now ();
  }

let run = run_exn
