(** Per-tenant service-level objectives and their verdicts.

    Targets are on {e open-loop} latency — measured from the
    operation's scheduled arrival, not from the instant a worker got
    around to issuing it — so queueing delay counts against the SLO
    and a saturated tenant cannot hide behind coordinated omission. *)

type t = {
  p99_ms : float;  (** Open-loop p99 latency target, milliseconds. *)
  p999_ms : float;  (** Open-loop p999 latency target, milliseconds. *)
  max_error_rate : float;
      (** Failed ops (contention give-ups, ambiguous outcomes) as a
          fraction of offered ops; in [\[0,1\]]. *)
}

val make : ?p99_ms:float -> ?p999_ms:float -> ?max_error_rate:float -> unit -> t
(** Defaults: p99 25 ms, p999 80 ms, 2% errors. *)

type verdict = {
  slo : t;
  measured_p99_ms : float;
  measured_p999_ms : float;
  measured_error_rate : float;
  breaches : string list;  (** Human-readable, one per violated target. *)
}

val ok : verdict -> bool

val evaluate : t -> latency:Sim.Stats.Hist.t -> offered:int -> errors:int -> verdict
(** [latency] holds open-loop latencies in seconds; [offered] is the
    scheduled op count (completed + errors + still queued at cutoff). *)

val pp_verdict : Format.formatter -> verdict -> unit
