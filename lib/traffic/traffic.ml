(** Open-loop production-traffic engine with per-tenant SLO gates.

    The YCSB driver ({!Ycsb.Driver}) answers "how fast can N closed
    loops go"; this library answers the operational question "does the
    system hold its latency objectives under production-shaped load".
    {!Arrival} turns rate curves — constant, diurnal, flash-crowd
    spikes — into deterministic per-tenant arrival schedules (split RNG
    streams: same seed, same schedule, byte-identical, regardless of
    tenant count or spawn order). {!Tenant} describes a tenant: a
    contiguous keyspace slice, a key distribution, an op mix, an
    arrival curve, a provisioned concurrency and an {!Slo}. {!Engine}
    drives all tenants through the simulated cluster open-loop — every
    op's latency is measured from its {e scheduled} arrival, so
    queueing delay from under-provisioning lands in the tail quantiles
    instead of silently throttling the generator (coordinated
    omission) — while feeding every traced event to a streaming
    serializability checker and optionally overlapping a chaos nemesis.
    {!Scenario} is the canned catalogue the bench CLI and CI run. *)

module Arrival = Arrival
module Slo = Slo
module Tenant = Tenant
module Engine = Engine
module Scenario = Scenario
