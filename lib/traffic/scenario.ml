(** Canned production-traffic scenarios.

    Each scenario is a function of [~seed] and [~duration] so the bench
    CLI can rescale it; every other knob (tenant mixes, curves, SLOs)
    is part of the scenario's identity and fixed here. SLO targets are
    deliberately loose enough that an honest run passes with margin
    across seeds — the gate exists to catch regressions (a scheduler
    change that doubles queueing, a cache bug that tanks scan latency),
    not to flap on noise. [broken_slo] is the falsifiability twin: a
    tenant provisioned far below its arrival rate, whose SLO verdict
    {e must} come back violated. *)

let pi = 4.0 *. atan 1.0

(* Keep per-scenario op volume at a few thousand so the CI smoke stays
   fast; `minuet_bench traffic --duration` rescales offered load
   linearly for longer soaks. *)

let steady ~seed ~duration =
  {
    Engine.default with
    Engine.name = "steady";
    seed;
    duration;
    tenants =
      [
        Tenant.make "web" ~keys:384 ~distribution:(Tenant.Zipfian 0.99)
          ~mix:Tenant.read_mostly ~concurrency:6
          ~arrival:(Arrival.constant 800.0)
          ~slo:(Slo.make ~p99_ms:30.0 ~p999_ms:120.0 ~max_error_rate:0.02 ());
        Tenant.make "api" ~keys:256 ~mix:Tenant.update_heavy ~concurrency:6
          ~arrival:(Arrival.constant 500.0)
          ~slo:(Slo.make ~p99_ms:40.0 ~p999_ms:160.0 ~max_error_rate:0.03 ());
        Tenant.make "batch" ~keys:512 ~mix:Tenant.scan_heavy ~scan_count:16 ~concurrency:4
          ~arrival:(Arrival.constant 120.0)
          ~slo:(Slo.make ~p99_ms:80.0 ~p999_ms:300.0 ~max_error_rate:0.03 ());
      ];
  }

let diurnal ~seed ~duration =
  (* Two regions half a day out of phase over a shared tree, plus a
     constant-rate control tenant. One simulated "day" = the run. *)
  let day ~phase name =
    Tenant.make name ~keys:256 ~distribution:(Tenant.Zipfian 0.9) ~mix:Tenant.read_mostly
      ~concurrency:8
      ~arrival:(Arrival.diurnal ~base:120.0 ~peak:900.0 ~period:duration ~phase ())
      ~slo:(Slo.make ~p99_ms:35.0 ~p999_ms:140.0 ~max_error_rate:0.02 ())
  in
  {
    Engine.default with
    Engine.name = "diurnal";
    seed;
    duration;
    tenants =
      [
        day ~phase:(-.pi /. 2.0) "east";
        day ~phase:(pi /. 2.0) "west";
        Tenant.make "control" ~keys:128 ~mix:Tenant.update_heavy ~concurrency:4
          ~arrival:(Arrival.constant 250.0)
          ~slo:(Slo.make ~p99_ms:40.0 ~p999_ms:160.0 ~max_error_rate:0.03 ());
      ];
  }

let flash_crowd ~seed ~duration =
  (* A 6x spike hits [surge] mid-run; [bystander] shares the tree and
     memnodes but not the queue, so its SLO doubles as an isolation
     check on the spike's collateral damage. *)
  let spike =
    { Arrival.at = 0.4 *. duration; duration = 0.15 *. duration; factor = 6.0 }
  in
  {
    Engine.default with
    Engine.name = "flash-crowd";
    seed;
    duration;
    tenants =
      [
        Tenant.make "surge" ~keys:384 ~distribution:(Tenant.Zipfian 0.99)
          ~mix:Tenant.read_mostly ~concurrency:10
          ~arrival:(Arrival.constant ~spikes:[ spike ] 400.0)
          ~slo:(Slo.make ~p99_ms:60.0 ~p999_ms:250.0 ~max_error_rate:0.02 ());
        Tenant.make "bystander" ~keys:256 ~mix:Tenant.update_heavy ~concurrency:5
          ~arrival:(Arrival.constant 300.0)
          ~slo:(Slo.make ~p99_ms:45.0 ~p999_ms:180.0 ~max_error_rate:0.03 ());
      ];
  }

let shard_hotspot ~seed ~duration =
  (* 90% of one tenant's ops hit the leading 5% of its slice — a
     contiguous key range, i.e. a handful of leaves on one memnode run.
     Update-heavy, so the hot leaves see real write contention. *)
  {
    Engine.default with
    Engine.name = "shard-hotspot";
    seed;
    duration;
    tenants =
      [
        Tenant.make "hot" ~keys:512
          ~distribution:(Tenant.Hotspot { op_frac = 0.9; key_frac = 0.05 })
          ~mix:Tenant.update_heavy ~concurrency:8
          ~arrival:(Arrival.constant 600.0)
          ~slo:(Slo.make ~p99_ms:60.0 ~p999_ms:250.0 ~max_error_rate:0.08 ());
        Tenant.make "cold" ~keys:512 ~mix:Tenant.read_mostly ~concurrency:4
          ~arrival:(Arrival.constant 300.0)
          ~slo:(Slo.make ~p99_ms:40.0 ~p999_ms:160.0 ~max_error_rate:0.02 ());
      ];
  }

let storm ~seed ~duration =
  (* Production traffic with the nemesis overlapped: crash/partition/
     delay storms while the open-loop queues keep filling. SLOs stay on
     but with disaster-budget targets — the point is that the {e
     checker} verdict stays clean through faults, and that recovery is
     fast enough to drain the backlog before the tail budget burns. *)
  {
    Engine.default with
    Engine.name = "storm";
    seed;
    duration;
    chaos = [ Chaos.Nemesis.Crash; Chaos.Nemesis.Partition; Chaos.Nemesis.Delay ];
    chaos_phases = 2;
    tenants =
      [
        Tenant.make "web" ~keys:256 ~distribution:(Tenant.Zipfian 0.9)
          ~mix:Tenant.read_mostly ~concurrency:8
          ~arrival:(Arrival.constant 400.0)
          ~slo:(Slo.make ~p99_ms:1500.0 ~p999_ms:6000.0 ~max_error_rate:0.10 ());
        Tenant.make "api" ~keys:192 ~mix:Tenant.update_heavy ~concurrency:6
          ~arrival:(Arrival.constant 250.0)
          ~slo:(Slo.make ~p99_ms:1500.0 ~p999_ms:6000.0 ~max_error_rate:0.10 ());
      ];
  }

let fig17_traffic ~seed ~duration =
  (* Traffic-shaped variant of the Fig. 17 staleness experiment: a
     snapshot-heavy analytics tenant rides a staleness-bound SCS
     (k = 50 ms) under OLTP update pressure; the checker runs with its
     SCS rule relaxed by exactly k. *)
  {
    Engine.default with
    Engine.name = "fig17-traffic";
    seed;
    duration;
    scs_k = 0.05;
    tenants =
      [
        Tenant.make "oltp" ~keys:384 ~distribution:(Tenant.Zipfian 0.99)
          ~mix:Tenant.update_heavy ~concurrency:8
          ~arrival:(Arrival.constant 700.0)
          ~slo:(Slo.make ~p99_ms:40.0 ~p999_ms:160.0 ~max_error_rate:0.03 ());
        Tenant.make "analytics" ~keys:512 ~mix:Tenant.analytics ~scan_count:24 ~concurrency:4
          ~arrival:(Arrival.constant 150.0)
          ~slo:(Slo.make ~p99_ms:80.0 ~p999_ms:320.0 ~max_error_rate:0.02 ());
      ];
  }

let fig18_traffic ~seed ~duration =
  (* Traffic-shaped variant of the Fig. 18 branching experiment: the
     database runs in branching mode; [versioned] creates, writes and
     deletes clones and pins reads to frozen versions while [mainline]
     keeps ordinary traffic on the trunk. Every surviving frozen
     version is structurally audited at the end. *)
  {
    Engine.default with
    Engine.name = "fig18-traffic";
    seed;
    duration;
    branching = true;
    tenants =
      [
        Tenant.make "mainline" ~keys:256 ~distribution:(Tenant.Zipfian 0.9)
          ~mix:Tenant.read_mostly ~concurrency:6
          ~arrival:(Arrival.constant 400.0)
          ~slo:(Slo.make ~p99_ms:40.0 ~p999_ms:160.0 ~max_error_rate:0.03 ());
        Tenant.make "versioned" ~keys:192 ~mix:Tenant.branchy ~concurrency:4
          ~arrival:(Arrival.constant 150.0)
          ~slo:(Slo.make ~p99_ms:80.0 ~p999_ms:320.0 ~max_error_rate:0.05 ());
      ];
  }

let broken_slo ~seed ~duration =
  (* Falsifiability: one worker against 1500 scans/s cannot keep up;
     the open-loop queue grows without bound and the measured p99 —
     which includes queueing delay — blows through a 5 ms target. If
     this scenario ever reports its SLO as met, the queueing-delay
     accounting is broken (a closed-loop generator would happily pass
     by slowing itself down). *)
  {
    Engine.default with
    Engine.name = "broken-slo";
    seed;
    duration;
    tenants =
      [
        Tenant.make "underprov" ~keys:256 ~mix:Tenant.scan_heavy ~scan_count:32 ~concurrency:1
          ~arrival:(Arrival.constant ~law:`Paced 1500.0)
          ~slo:(Slo.make ~p99_ms:5.0 ~p999_ms:10.0 ~max_error_rate:0.01 ());
      ];
  }

(** The default suite, in the order the bench runs them. [broken_slo]
    is deliberately not in it — the CI gate runs it separately and
    asserts failure. *)
let all =
  [
    ("steady", steady);
    ("diurnal", diurnal);
    ("flash-crowd", flash_crowd);
    ("shard-hotspot", shard_hotspot);
    ("storm", storm);
    ("fig17-traffic", fig17_traffic);
    ("fig18-traffic", fig18_traffic);
  ]

let find name =
  match List.assoc_opt name (("broken-slo", broken_slo) :: all) with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Traffic.Scenario.find: unknown scenario %S (have: %s)" name
           (String.concat ", " ("broken-slo" :: List.map fst all)))
