type spike = { at : float; duration : float; factor : float }

type curve =
  | Constant of float
  | Diurnal of { base : float; peak : float; period : float; phase : float }

type law = [ `Paced | `Poisson ]

type t = { curve : curve; law : law; spikes : spike list }

let check_rate r = if r < 0.0 then invalid_arg "Arrival: negative rate"

let constant ?(law = `Poisson) ?(spikes = []) rate =
  check_rate rate;
  { curve = Constant rate; law; spikes }

let diurnal ?(law = `Poisson) ?(spikes = []) ~base ~peak ~period ?(phase = 0.0) () =
  check_rate base;
  check_rate peak;
  if period <= 0.0 then invalid_arg "Arrival.diurnal: period must be positive";
  if peak < base then invalid_arg "Arrival.diurnal: peak must be >= base";
  { curve = Diurnal { base; peak; period; phase }; law; spikes }

let two_pi = 8.0 *. atan 1.0

let curve_rate curve time =
  match curve with
  | Constant r -> r
  | Diurnal { base; peak; period; phase } ->
      (* Sinusoid from [base] (trough) to [peak] (crest). *)
      let s = (1.0 +. sin ((two_pi *. time /. period) +. phase)) /. 2.0 in
      base +. ((peak -. base) *. s)

let spike_factor spikes time =
  List.fold_left
    (fun acc s ->
      if time >= s.at && time < s.at +. s.duration then acc *. s.factor else acc)
    1.0 spikes

let rate_at t time = curve_rate t.curve time *. spike_factor t.spikes time

(* Splitmix64 finalizer over the (seed, tenant_id) pair: per-tenant
   streams must depend on the id itself (not on spawn order), so two
   configs sharing a seed give each tenant the same schedule no matter
   how many other tenants exist. *)
let stream_seed ~seed ~tenant_id =
  let golden = 0x9E3779B97F4A7C15L in
  let z =
    Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (tenant_id + 1)) golden)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFF_FFFF_FFFF_FFFFL)

(* Below this rate the process is considered off; skip forward instead
   of emitting an arrival every [1/epsilon] seconds. *)
let min_rate = 1e-6

let idle_step = 1e-3

let schedule t ~seed ~tenant_id ~until =
  if until < 0.0 then invalid_arg "Arrival.schedule: negative horizon";
  let rng = Sim.Rng.create (stream_seed ~seed ~tenant_id) in
  let acc = ref [] in
  let n = ref 0 in
  let time = ref 0.0 in
  while !time < until do
    let r = rate_at t !time in
    if r <= min_rate then time := !time +. (idle_step *. max 1.0 (until /. 100.0))
    else begin
      let gap =
        match t.law with
        | `Paced -> 1.0 /. r
        | `Poisson -> Sim.Rng.exponential rng ~mean:(1.0 /. r)
      in
      (* Zero-length gaps would stall the loop at very high rates. *)
      let gap = if gap < 1e-9 then 1e-9 else gap in
      time := !time +. gap;
      if !time < until then begin
        acc := !time :: !acc;
        incr n
      end
    end
  done;
  let arr = Array.make !n 0.0 in
  let rec fill i = function
    | [] -> ()
    | x :: rest ->
        arr.(i) <- x;
        fill (i - 1) rest
  in
  fill (!n - 1) !acc;
  arr
