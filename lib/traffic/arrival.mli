(** Open-loop arrival processes.

    An arrival process is a rate curve (constant or diurnal) with an
    inter-arrival law (evenly paced or Poisson) and optional
    flash-crowd spikes multiplying the rate over a window. Schedules
    are materialized up front as sorted absolute times, so a tenant's
    offered load is fixed {e before} the system runs: operations are
    due at their scheduled instant whether or not earlier ones have
    completed, which is what exposes queueing delay (closed loops
    silently absorb it — coordinated omission).

    Determinism: a schedule is a pure function of [(seed, tenant_id)].
    Each tenant's stream is derived with a splitmix64-style hash of the
    pair, so schedules replay byte-identical per seed and two tenants'
    streams are statistically independent of each other. *)

(** Multiplies the curve rate by [factor] over
    [\[at, at + duration)] — a flash crowd. *)
type spike = { at : float; duration : float; factor : float }

(** Offered rate as a function of time, in ops/second. *)
type curve =
  | Constant of float
  | Diurnal of { base : float; peak : float; period : float; phase : float }
      (** Sinusoid between [base] and [peak] with the given period
          (seconds of simulated time; one period = one "day") starting
          at phase offset [phase] in radians. *)

(** Inter-arrival law at the instantaneous rate [r]: [`Paced] emits
    exactly every [1/r] seconds (deterministic, minimal variance);
    [`Poisson] draws exponential gaps with mean [1/r] (memoryless, the
    production-traffic default). *)
type law = [ `Paced | `Poisson ]

type t = { curve : curve; law : law; spikes : spike list }

val constant : ?law:law -> ?spikes:spike list -> float -> t
(** [constant rate] with the Poisson law unless overridden. *)

val diurnal :
  ?law:law -> ?spikes:spike list -> base:float -> peak:float -> period:float ->
  ?phase:float -> unit -> t

val rate_at : t -> float -> float
(** Instantaneous offered rate at a simulated time, spikes applied. *)

val stream_seed : seed:int -> tenant_id:int -> int
(** The derived RNG seed for one tenant's arrival stream (exposed for
    tests: equal pairs collide, differing tenant ids do not). *)

val schedule : t -> seed:int -> tenant_id:int -> until:float -> float array
(** All arrival times in [\[0, until)], ascending. Time-varying rates
    use the instantaneous rate for each gap (a step-wise approximation
    of the nonhomogeneous process; exact for piecewise-constant
    curves). The result depends only on [(t, seed, tenant_id, until)]. *)
