(** One tenant of a multi-tenant traffic scenario.

    A tenant owns a contiguous slice of the ordinal key space (mapped
    through the order-preserving {!Ycsb.Keygen.key_of_int}, so slices
    are contiguous key ranges and land on distinct leaf runs), a key
    distribution over that slice, an operation mix, an open-loop
    arrival curve and an SLO. Tenants never write outside their slice,
    so per-tenant results are attributable even though all tenants
    share the same B-tree and memnodes — the interference {e between}
    tenants is exactly what the scenarios measure. *)

type distribution =
  | Uniform
  | Zipfian of float  (** theta *)
  | Latest
  | Hotspot of { op_frac : float; key_frac : float }

(** Operation mix weights (normalized internally; need not sum to 1).
    [snapshot] ops take an SCS snapshot and run a read + a range scan
    against it (the paper's analytics path); [branch] ops exercise
    branching-mode version traffic and are ignored unless the scenario
    runs a branching database. *)
type mix = {
  read : float;
  update : float;
  scan : float;
  snapshot : float;
  branch : float;
}

let read_mostly = { read = 0.9; update = 0.1; scan = 0.0; snapshot = 0.0; branch = 0.0 }

let update_heavy = { read = 0.45; update = 0.55; scan = 0.0; snapshot = 0.0; branch = 0.0 }

let scan_heavy = { read = 0.2; update = 0.2; scan = 0.35; snapshot = 0.25; branch = 0.0 }

let analytics = { read = 0.1; update = 0.0; scan = 0.1; snapshot = 0.8; branch = 0.0 }

let branchy = { read = 0.3; update = 0.3; scan = 0.1; snapshot = 0.0; branch = 0.3 }

type t = {
  name : string;
  keys : int;  (** Slice size (ordinals [\[0, keys)] within the slice). *)
  distribution : distribution;
  mix : mix;
  scan_count : int;  (** Range length for scan and snapshot-scan ops. *)
  arrival : Arrival.t;
  concurrency : int;
      (** Provisioned worker sessions draining this tenant's arrival
          queue — the tenant's capacity. Under-provisioning against the
          arrival curve is how an SLO gets broken. *)
  slo : Slo.t;
}

let make ?(keys = 256) ?(distribution = Uniform) ?(mix = read_mostly) ?(scan_count = 8)
    ?(concurrency = 4) ?slo ~arrival name =
  if keys <= 0 then invalid_arg "Tenant.make: keys must be positive";
  if concurrency <= 0 then invalid_arg "Tenant.make: concurrency must be positive";
  if scan_count <= 0 then invalid_arg "Tenant.make: scan_count must be positive";
  let total = mix.read +. mix.update +. mix.scan +. mix.snapshot +. mix.branch in
  if total <= 0.0 then invalid_arg "Tenant.make: empty mix";
  let slo = match slo with Some s -> s | None -> Slo.make () in
  { name; keys; distribution; mix; scan_count; arrival; concurrency; slo }

let keygen t =
  match t.distribution with
  | Uniform -> Ycsb.Keygen.uniform ~n:t.keys
  | Zipfian theta -> Ycsb.Keygen.zipfian ~theta ~n:t.keys ()
  | Latest -> Ycsb.Keygen.latest ~n:t.keys
  | Hotspot { op_frac; key_frac } -> Ycsb.Keygen.hotspot ~op_frac ~key_frac ~n:t.keys ()

(** The concrete op kinds a worker executes. *)
type op_kind = Read | Update | Scan | Snapshot_read | Branch_op

let draw_op t rng =
  let m = t.mix in
  let total = m.read +. m.update +. m.scan +. m.snapshot +. m.branch in
  let pick = Sim.Rng.float rng total in
  if pick < m.read then Read
  else if pick < m.read +. m.update then Update
  else if pick < m.read +. m.update +. m.scan then Scan
  else if pick < m.read +. m.update +. m.scan +. m.snapshot then Snapshot_read
  else Branch_op
