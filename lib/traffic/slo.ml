module Hist = Sim.Stats.Hist

type t = { p99_ms : float; p999_ms : float; max_error_rate : float }

let make ?(p99_ms = 25.0) ?(p999_ms = 80.0) ?(max_error_rate = 0.02) () =
  if p99_ms <= 0.0 || p999_ms <= 0.0 then invalid_arg "Slo.make: targets must be positive";
  if p999_ms < p99_ms then invalid_arg "Slo.make: p999 target below p99 target";
  if max_error_rate < 0.0 || max_error_rate > 1.0 then
    invalid_arg "Slo.make: max_error_rate must be in [0,1]";
  { p99_ms; p999_ms; max_error_rate }

type verdict = {
  slo : t;
  measured_p99_ms : float;
  measured_p999_ms : float;
  measured_error_rate : float;
  breaches : string list;
}

let ok v = v.breaches = []

let evaluate slo ~latency ~offered ~errors =
  let ms s = s *. 1e3 in
  let measured_p99_ms = ms (Hist.quantile latency 0.99) in
  let measured_p999_ms = ms (Hist.p999 latency) in
  let measured_error_rate =
    if offered <= 0 then 0.0 else float_of_int errors /. float_of_int offered
  in
  let breach cond msg = if cond then Some msg else None in
  let breaches =
    List.filter_map Fun.id
      [
        breach
          (measured_p99_ms > slo.p99_ms)
          (Printf.sprintf "p99 %.3fms > target %.3fms" measured_p99_ms slo.p99_ms);
        breach
          (measured_p999_ms > slo.p999_ms)
          (Printf.sprintf "p999 %.3fms > target %.3fms" measured_p999_ms slo.p999_ms);
        breach
          (measured_error_rate > slo.max_error_rate)
          (Printf.sprintf "error rate %.4f > budget %.4f" measured_error_rate
             slo.max_error_rate);
      ]
  in
  { slo; measured_p99_ms; measured_p999_ms; measured_error_rate; breaches }

let pp_verdict fmt v =
  if ok v then
    Format.fprintf fmt "SLO met (p99 %.3f/%.3fms p999 %.3f/%.3fms err %.4f/%.4f)"
      v.measured_p99_ms v.slo.p99_ms v.measured_p999_ms v.slo.p999_ms v.measured_error_rate
      v.slo.max_error_rate
  else begin
    Format.fprintf fmt "SLO VIOLATED:";
    List.iter (fun b -> Format.fprintf fmt " %s;" b) v.breaches
  end
