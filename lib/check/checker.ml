module Event = Minuet.Session.Event
module Config = Stream.Config

type violation = Stream.violation = {
  v_index : int;
  v_message : string;
  v_event : Event.t option;
  v_context : Event.t list;
}

type verdict = Stream.verdict = {
  violations : violation list;
  inconclusive : string list;
  ops_checked : int;
  snapshot_reads_checked : int;
  branch_reads_checked : int;
  candidates_resolved : int;
  twopc_checked : int;
}

let ok = Stream.ok

let pp_violation = Stream.pp_violation

let pp_verdict = Stream.pp_verdict

let check ?(final = []) ?(strict_scs = true) ?scs_staleness ?(twopc = []) ?(in_doubt = 0)
    ~creations ~events () =
  let config =
    { Config.default with Config.strict_scs; scs_staleness; creations; final; twopc; in_doubt }
  in
  let t = Stream.create config in
  List.iter (Stream.feed t) events;
  Stream.finish t
