module Event = Minuet.Session.Event
module Smap = Map.Make (String)

(* -------------------------------------------------------------------- *)
(* Verdicts                                                              *)
(* -------------------------------------------------------------------- *)

type violation = {
  v_index : int;
  v_message : string;
  v_event : Event.t option;
  v_context : Event.t list; (* nearby committed ops on the same key, oldest first *)
}

type verdict = {
  violations : violation list;
  inconclusive : string list;
  ops_checked : int;
  snapshot_reads_checked : int;
  candidates_resolved : int;
  twopc_checked : int;
}

let ok v = v.violations = []

let pp_violation fmt v =
  Format.fprintf fmt "@[<v2>index %d: %s" v.v_index v.v_message;
  (match v.v_event with
  | Some ev -> Format.fprintf fmt "@,at: %a" Event.pp ev
  | None -> ());
  if v.v_context <> [] then begin
    Format.fprintf fmt "@,nearby operations on the same key:";
    List.iter (fun ev -> Format.fprintf fmt "@,  %a" Event.pp ev) v.v_context
  end;
  Format.fprintf fmt "@]"

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>";
  if v.violations = [] then
    Format.fprintf fmt "serializability check PASSED: %d ops, %d snapshot reads" v.ops_checked
      v.snapshot_reads_checked
  else begin
    Format.fprintf fmt "serializability check FAILED: %d violation(s) over %d ops"
      (List.length v.violations) v.ops_checked;
    (* The first few violations are the minimal counterexample; the rest
       are usually knock-on effects of the same stale read. *)
    let shown = 8 in
    List.iteri
      (fun i viol -> if i < shown then Format.fprintf fmt "@,%a" pp_violation viol)
      v.violations;
    let n = List.length v.violations in
    if n > shown then Format.fprintf fmt "@,... and %d more violation(s)" (n - shown)
  end;
  if v.candidates_resolved > 0 then
    Format.fprintf fmt "@,%d ambiguous operation(s) resolved from later reads"
      v.candidates_resolved;
  if v.twopc_checked > 0 then
    Format.fprintf fmt "@,%d two-phase-commit decision record(s) cross-checked" v.twopc_checked;
  List.iter (fun msg -> Format.fprintf fmt "@,inconclusive: %s" msg) v.inconclusive;
  Format.fprintf fmt "@]"

(* -------------------------------------------------------------------- *)
(* Ambiguity candidates                                                  *)
(* -------------------------------------------------------------------- *)

(* An operation that raised [Ambiguous] may or may not have taken
   effect. We track one candidate per such op: [c_value = Some v] for a
   put of [v], [None] for a remove. Candidates are resolved (consumed)
   when a later committed read observes their effect, and expire when a
   committed write that started after they returned overwrites the key
   regardless of whether they applied. *)
type candidate = {
  c_value : string option;
  c_invoked : float;
  c_returned : float;
  mutable c_live : bool;
}

let max_candidates_per_key = 8

let max_candidates_total = 64

(* -------------------------------------------------------------------- *)
(* Per-index model state                                                 *)
(* -------------------------------------------------------------------- *)

let op_key ev =
  match ev.Event.op with
  | Event.Get { key; _ } | Event.Put { key; _ } | Event.Remove { key; _ } -> Some key
  | Event.Scan _ | Event.Snapshot_taken -> None

let model_scan m ~from ~count =
  let rec take acc n seq =
    if n = 0 then List.rev acc
    else
      match seq () with
      | Seq.Nil -> List.rev acc
      | Seq.Cons ((k, v), rest) -> take ((k, v) :: acc) (n - 1) rest
  in
  take [] count (Smap.to_seq_from from m)

let pp_value_opt fmt = function
  | None -> Format.pp_print_string fmt "none"
  | Some v -> Format.fprintf fmt "%S" v

type index_state = {
  idx : int;
  mutable model : string Smap.t;
  (* sid -> frozen model at the snapshot's creation stamp *)
  frozen : (int64, string Smap.t) Hashtbl.t;
  candidates : (string, candidate list) Hashtbl.t;
  (* per-key recent committed events, newest first, for counterexamples *)
  recent : (string, Event.t list) Hashtbl.t;
  mutable violations : violation list; (* newest first *)
  mutable inconclusive : string list; (* newest first *)
  mutable ops_checked : int;
  mutable snapshot_reads_checked : int;
  mutable resolved : int;
}

let note_recent st key ev =
  let prev = Option.value (Hashtbl.find_opt st.recent key) ~default:[] in
  let rec cap n = function [] -> [] | x :: tl -> if n = 0 then [] else x :: cap (n - 1) tl in
  Hashtbl.replace st.recent key (cap 4 (ev :: prev))

let violate st ?event ?key fmt =
  Format.kasprintf
    (fun msg ->
      let ctx =
        match key with
        | None -> []
        | Some k -> List.rev (Option.value (Hashtbl.find_opt st.recent k) ~default:[])
      in
      st.violations <-
        { v_index = st.idx; v_message = msg; v_event = event; v_context = ctx } :: st.violations)
    fmt

let candidates_for st key = Option.value (Hashtbl.find_opt st.candidates key) ~default:[]

(* A live candidate explaining observation [observed] by a read that
   returned at [returned_at]. *)
let find_candidate st key ~observed ~returned_at =
  List.find_opt
    (fun c -> c.c_live && c.c_invoked <= returned_at && c.c_value = observed)
    (candidates_for st key)

let resolve_candidate st key c =
  c.c_live <- false;
  st.resolved <- st.resolved + 1;
  match c.c_value with
  | Some v -> st.model <- Smap.add key v st.model
  | None -> st.model <- Smap.remove key st.model

(* A committed write that started at [invoked_at] overwrites any
   candidate whose window closed before that: whether or not the
   candidate applied, the key's value is now the committed one. *)
let expire_candidates st key ~invoked_at =
  List.iter
    (fun c -> if c.c_live && c.c_returned <= invoked_at then c.c_live <- false)
    (candidates_for st key)

let has_live_candidates st =
  (* Existence check: a boolean OR-fold is order-independent. *)
  (* lint: allow nondet-iteration *)
  Hashtbl.fold (fun _ cs acc -> acc || List.exists (fun c -> c.c_live) cs) st.candidates false

(* -------------------------------------------------------------------- *)
(* Commit-order replay of one index                                      *)
(* -------------------------------------------------------------------- *)

let apply_committed st ev =
  st.ops_checked <- st.ops_checked + 1;
  (match ev.Event.op with
  | Event.Get { key; result } ->
      let expected = Smap.find_opt key st.model in
      if result <> expected then begin
        match find_candidate st key ~observed:result ~returned_at:ev.Event.returned_at with
        | Some c -> resolve_candidate st key c
        | None ->
            violate st ~event:ev ~key "get %S observed %a but the model holds %a at stamp %Ld"
              key pp_value_opt result pp_value_opt expected
              (Option.value ev.Event.stamp ~default:(-1L))
      end
  | Event.Put { key; value } ->
      expire_candidates st key ~invoked_at:ev.Event.invoked_at;
      st.model <- Smap.add key value st.model
  | Event.Remove { key; removed } ->
      let present = Smap.mem key st.model in
      (if removed <> present then
         (* removed=true on an absent key: an ambiguous put may have
            landed first. removed=false on a present key: an ambiguous
            remove may have landed first. *)
         let explains c = if removed then c.c_value <> None else c.c_value = None in
         match
           List.find_opt
             (fun c -> c.c_live && c.c_invoked <= ev.Event.returned_at && explains c)
             (candidates_for st key)
         with
         | Some c -> resolve_candidate st key c
         | None ->
             violate st ~event:ev ~key
               "remove %S returned %b but the model %s the key at stamp %Ld" key removed
               (if present then "holds" else "does not hold")
               (Option.value ev.Event.stamp ~default:(-1L)));
      if removed then expire_candidates st key ~invoked_at:ev.Event.invoked_at;
      st.model <- Smap.remove key st.model
  | Event.Scan { from; count; result } ->
      let expected = model_scan st.model ~from ~count in
      if result <> expected then
        if has_live_candidates st then
          st.inconclusive <-
            Format.asprintf
              "index %d: scan from %S mismatches the model but ambiguous writes are pending"
              st.idx from
            :: st.inconclusive
        else
          let rec first_divergence obs exp =
            match (obs, exp) with
            | (k1, v1) :: obs', (k2, v2) :: exp' ->
                if (k1, v1) = (k2, v2) then first_divergence obs' exp'
                else Format.asprintf " (first divergence: observed %S=%S, model %S=%S)" k1 v1 k2 v2
            | (k1, v1) :: _, [] ->
                Format.asprintf " (first divergence: observed %S=%S past the model's end)" k1 v1
            | [], (k2, v2) :: _ ->
                Format.asprintf " (first divergence: model %S=%S missing from the scan)" k2 v2
            | [], [] -> ""
          in
          violate st ~event:ev "scan from %S count %d returned %d entries, model has %d%s" from
            count (List.length result) (List.length expected)
            (first_divergence result expected)
  | Event.Snapshot_taken -> ());
  match op_key ev with Some key -> note_recent st key ev | None -> ()

(* -------------------------------------------------------------------- *)
(* The checker                                                           *)
(* -------------------------------------------------------------------- *)

let check ?(final = []) ?(strict_scs = true) ?scs_staleness ?(twopc = []) ?(in_doubt = 0)
    ~creations ~events () =
  let indexes =
    List.sort_uniq compare
      (List.map (fun ev -> ev.Event.index) events
      @ List.map fst creations
      @ List.map fst final)
  in
  let all_violations = ref [] in
  let all_inconclusive = ref [] in
  let totals = ref (0, 0, 0) in
  List.iter
    (fun idx ->
      let evs = List.filter (fun ev -> ev.Event.index = idx) events in
      let st =
        {
          idx;
          model = Smap.empty;
          frozen = Hashtbl.create 64;
          candidates = Hashtbl.create 16;
          recent = Hashtbl.create 256;
          violations = [];
          inconclusive = [];
          ops_checked = 0;
          snapshot_reads_checked = 0;
          resolved = 0;
        }
      in
      (* Register ambiguity candidates (bounded). *)
      let n_candidates = ref 0 in
      let add_candidate ev key c_value =
        let prev = candidates_for st key in
        incr n_candidates;
        if List.length prev >= max_candidates_per_key || !n_candidates > max_candidates_total
        then
          st.inconclusive <-
            Format.asprintf
              "index %d: too many ambiguous operations on %S; checking is best-effort" idx key
            :: st.inconclusive
        else
          Hashtbl.replace st.candidates key
            (prev
            @ [
                {
                  c_value;
                  c_invoked = ev.Event.invoked_at;
                  c_returned = ev.Event.returned_at;
                  c_live = true;
                };
              ])
      in
      List.iter
        (fun ev ->
          if ev.Event.ambiguous then
            match ev.Event.op with
            | Event.Put { key; value } -> add_candidate ev key (Some value)
            | Event.Remove { key; _ } -> add_candidate ev key None
            | _ -> ())
        evs;
      (* Committed (stamped, up-to-date) events in commit-stamp order. *)
      let committed =
        List.filter
          (fun ev -> ev.Event.stamp <> None && ev.Event.sid = None && not ev.Event.ambiguous)
          evs
      in
      List.iter
        (fun ev ->
          if ev.Event.stamp = None && ev.Event.sid = None && not ev.Event.ambiguous then
            violate st ~event:ev "up-to-date operation carries no commit stamp")
        evs;
      let by_stamp =
        List.sort
          (fun a b ->
            Int64.compare (Option.get a.Event.stamp) (Option.get b.Event.stamp))
          committed
      in
      (* Creation log, oldest first. *)
      let clog =
        List.sort
          (fun (_, a) (_, b) -> Int64.compare a b)
          (List.concat_map (fun (i, l) -> if i = idx then l else []) creations)
      in
      (* Replay, freezing snapshot states as their creation stamps pass:
         snapshot [sid] holds exactly the effects of commits with stamps
         below its creation stamp. *)
      let rec replay clog evs =
        match (clog, evs) with
        | (sid, cstamp) :: crest, ev :: _
          when Int64.compare cstamp (Option.get ev.Event.stamp) < 0 ->
            Hashtbl.replace st.frozen sid st.model;
            replay crest evs
        | clog, ev :: erest ->
            apply_committed st ev;
            replay clog erest
        | clog, [] ->
            List.iter (fun (sid, _) -> Hashtbl.replace st.frozen sid st.model) clog
      in
      replay clog by_stamp;
      (* Snapshot reads: must see exactly the frozen prefix for their
         sid. *)
      List.iter
        (fun ev ->
          match (ev.Event.sid, ev.Event.op) with
          | Some sid, Event.Get { key; result } -> (
              st.snapshot_reads_checked <- st.snapshot_reads_checked + 1;
              match Hashtbl.find_opt st.frozen sid with
              | None ->
                  violate st ~event:ev ~key "snapshot read at sid %Ld with no creation record"
                    sid
              | Some m ->
                  let expected = Smap.find_opt key m in
                  if result <> expected then
                    if
                      List.exists
                        (fun c ->
                          c.c_invoked <= ev.Event.invoked_at && c.c_value = result)
                        (candidates_for st key)
                    then ()
                    else
                      violate st ~event:ev ~key
                        "snapshot get %S at sid %Ld observed %a but the frozen state holds %a"
                        key sid pp_value_opt result pp_value_opt expected)
          | Some sid, Event.Scan { from; count; result } -> (
              st.snapshot_reads_checked <- st.snapshot_reads_checked + 1;
              match Hashtbl.find_opt st.frozen sid with
              | None ->
                  violate st ~event:ev "snapshot scan at sid %Ld with no creation record" sid
              | Some m ->
                  let expected = model_scan m ~from ~count in
                  if result <> expected then
                    if Hashtbl.length st.candidates > 0 then
                      st.inconclusive <-
                        Format.asprintf
                          "index %d: snapshot scan at sid %Ld mismatches but ambiguous writes \
                           are pending"
                          idx sid
                        :: st.inconclusive
                    else
                      violate st ~event:ev
                        "snapshot scan from %S at sid %Ld returned %d entries, frozen state \
                         has %d"
                        from sid (List.length result) (List.length expected))
          | _ -> ())
        evs;
      (* Real-time order: if A returned before B was invoked, A's stamp
         must be below B's (commit stamps are drawn inside the
         operations' windows from a monotonic cluster counter). *)
      let by_returned =
        List.sort (fun a b -> compare a.Event.returned_at b.Event.returned_at) committed
      in
      let by_invoked =
        List.sort (fun a b -> compare a.Event.invoked_at b.Event.invoked_at) committed
      in
      let rec realtime pending max_done b_list =
        match b_list with
        | [] -> ()
        | b :: brest -> (
            let rec drain pending max_done =
              match pending with
              | a :: arest when a.Event.returned_at < b.Event.invoked_at ->
                  let max_done =
                    match max_done with
                    | Some m when Int64.compare (Option.get m.Event.stamp)
                                    (Option.get a.Event.stamp) >= 0 ->
                        Some m
                    | _ -> Some a
                  in
                  drain arest max_done
              | _ -> (pending, max_done)
            in
            let pending, max_done = drain pending max_done in
            match max_done with
            | Some m
              when Int64.compare (Option.get m.Event.stamp) (Option.get b.Event.stamp) >= 0 ->
                violate st ~event:b ?key:(op_key b)
                  "real-time order violated: an operation that returned at %.6f has stamp \
                   %Ld, not below this operation's stamp %Ld"
                  m.Event.returned_at (Option.get m.Event.stamp) (Option.get b.Event.stamp);
                realtime pending max_done brest
            | _ -> realtime pending max_done brest)
      in
      realtime by_returned None by_invoked;
      (* SCS strictness: a granted snapshot must reflect every commit
         that returned before the request started. *)
      let clog_tbl = Hashtbl.create 64 in
      List.iter (fun (sid, cstamp) -> Hashtbl.replace clog_tbl sid cstamp) clog;
      (* With a staleness bound k > 0, a granted snapshot may legally be
         a reused one, missing commits that completed up to
         [scs_staleness] seconds before the request — the rule then only
         fires for commits older than that horizon. *)
      let scs_slack = match scs_staleness with Some s -> Some s | None -> if strict_scs then Some 0.0 else None in
      (match scs_slack with
      | None -> ()
      | Some slack ->
      List.iter
        (fun ev ->
          match (ev.Event.op, ev.Event.sid) with
          | Event.Snapshot_taken, Some sid -> (
              match Hashtbl.find_opt clog_tbl sid with
              | None -> violate st ~event:ev "granted snapshot sid %Ld has no creation record" sid
              | Some cstamp ->
                  List.iter
                    (fun a ->
                      if
                        a.Event.returned_at < ev.Event.invoked_at -. slack
                        && Int64.compare (Option.get a.Event.stamp) cstamp > 0
                      then
                        violate st ~event:ev ?key:(op_key a)
                          "snapshot sid %Ld (creation stamp %Ld) misses a commit with stamp \
                           %Ld that returned at %.6f, more than %.3fs before the request at \
                           %.6f"
                          sid cstamp (Option.get a.Event.stamp) a.Event.returned_at slack
                          ev.Event.invoked_at)
                    committed)
          | Event.Snapshot_taken, None ->
              violate st ~event:ev "snapshot request event carries no sid"
          | _ -> ())
        evs);
      (* Final audit: the surviving state must match the model exactly,
         modulo unresolved ambiguous writes. *)
      List.iter
        (fun (i, entries) ->
          if i = idx then begin
            let actual =
              List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty entries
            in
            let keys =
              List.sort_uniq compare
                (List.map fst (Smap.bindings st.model) @ List.map fst (Smap.bindings actual))
            in
            List.iter
              (fun key ->
                let expected = Smap.find_opt key st.model in
                let got = Smap.find_opt key actual in
                if got <> expected then
                  if
                    List.exists
                      (fun c -> c.c_live && c.c_value = got)
                      (candidates_for st key)
                  then ()
                  else
                    violate st ~key "final audit: key %S holds %a but the model holds %a" key
                      pp_value_opt got pp_value_opt expected)
              keys
          end)
        final;
      all_violations := !all_violations @ List.rev st.violations;
      all_inconclusive := !all_inconclusive @ List.rev st.inconclusive;
      let o, s, r = !totals in
      totals := (o + st.ops_checked, s + st.snapshot_reads_checked, r + st.resolved))
    indexes;
  (* Commit stamps are drawn from one cluster-global counter: every
     stamp must be unique across the whole history. *)
  let stamps =
    List.sort Int64.compare (List.filter_map (fun ev -> ev.Event.stamp) events)
  in
  let rec dup_check = function
    | a :: (b :: _ as tl) ->
        if Int64.equal a b then
          all_violations :=
            !all_violations
            @ [
                {
                  v_index = -1;
                  v_message = Format.asprintf "duplicate commit stamp %Ld" a;
                  v_event = None;
                  v_context = [];
                };
              ];
        dup_check tl
    | _ -> ()
  in
  dup_check stamps;
  let global fmt =
    Format.kasprintf
      (fun v_message ->
        all_violations :=
          !all_violations @ [ { v_index = -1; v_message; v_event = None; v_context = [] } ])
      fmt
  in
  (* 2PC atomicity: the participants' redo logs must agree on every
     transaction's fate — a tid committed at one address space and
     aborted at another is a torn transaction. The same tid carrying
     both records at a single space (a decide_commit racing a recovery
     force-abort) is the same violation. *)
  let twopc_checked = List.length twopc in
  let by_tid = Hashtbl.create 64 in
  List.iter
    (fun (space, tid, d) ->
      let cs, abs = Option.value (Hashtbl.find_opt by_tid tid) ~default:([], []) in
      Hashtbl.replace by_tid tid
        (match d with `Committed -> (space :: cs, abs) | `Aborted -> (cs, space :: abs)))
    twopc;
  Sim.Det.sorted_bindings by_tid ~cmp:Int64.compare
  |> List.iter (fun (tid, (cs, abs)) ->
         if cs <> [] && abs <> [] then
           global
             "2PC atomicity violated: transaction %Ld committed at space(s) %s but aborted at \
              space(s) %s"
             tid
             (String.concat "," (List.map string_of_int (List.sort compare cs)))
             (String.concat "," (List.map string_of_int (List.sort compare abs))));
  (* Every in-doubt transaction must be resolved by the time the run
     quiesces: a leftover means the recovery coordinator wedged (or was
     never run) and its locks block the ranges forever. *)
  if in_doubt > 0 then
    global "%d transaction(s) still in doubt after the run quiesced (recovery never resolved them)"
      in_doubt;
  let ops_checked, snapshot_reads_checked, candidates_resolved = !totals in
  {
    violations = !all_violations;
    inconclusive = !all_inconclusive;
    ops_checked;
    snapshot_reads_checked;
    candidates_resolved;
    twopc_checked;
  }
