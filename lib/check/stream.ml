module Event = Minuet.Session.Event
module Smap = Map.Make (String)
module I64map = Map.Make (Int64)

(* -------------------------------------------------------------------- *)
(* Configuration                                                         *)
(* -------------------------------------------------------------------- *)

module Config = struct
  type t = {
    strict_scs : bool;
    scs_staleness : float option;
    creations : (int * (int64 * int64) list) list;
    final : (int * (string * string) list) list;
    twopc : (int * int64 * [ `Committed | `Aborted ]) list;
    in_doubt : int;
    reorder_window : int;
    max_frozen : int;
    max_deferred : int;
    workers : int;
  }

  let default =
    {
      strict_scs = true;
      scs_staleness = None;
      creations = [];
      final = [];
      twopc = [];
      in_doubt = 0;
      reorder_window = 4096;
      max_frozen = 1024;
      max_deferred = 65536;
      workers = 1;
    }

  let scs_slack t =
    match t.scs_staleness with
    | Some s -> Some s
    | None -> if t.strict_scs then Some 0.0 else None
end

(* -------------------------------------------------------------------- *)
(* Verdicts                                                              *)
(* -------------------------------------------------------------------- *)

type violation = {
  v_index : int;
  v_message : string;
  v_event : Event.t option;
  v_context : Event.t list; (* nearby committed ops on the same key, oldest first *)
}

type verdict = {
  violations : violation list;
  inconclusive : string list;
  ops_checked : int;
  snapshot_reads_checked : int;
  branch_reads_checked : int;
  candidates_resolved : int;
  twopc_checked : int;
}

let ok v = v.violations = []

let pp_violation fmt v =
  Format.fprintf fmt "@[<v2>index %d: %s" v.v_index v.v_message;
  (match v.v_event with
  | Some ev -> Format.fprintf fmt "@,at: %a" Event.pp ev
  | None -> ());
  if v.v_context <> [] then begin
    Format.fprintf fmt "@,nearby operations on the same key:";
    List.iter (fun ev -> Format.fprintf fmt "@,  %a" Event.pp ev) v.v_context
  end;
  Format.fprintf fmt "@]"

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>";
  if v.violations = [] then
    Format.fprintf fmt "serializability check PASSED: %d ops, %d snapshot reads" v.ops_checked
      v.snapshot_reads_checked
  else begin
    Format.fprintf fmt "serializability check FAILED: %d violation(s) over %d ops"
      (List.length v.violations) v.ops_checked;
    (* The first few violations are the minimal counterexample; the rest
       are usually knock-on effects of the same stale read. *)
    let shown = 8 in
    List.iteri
      (fun i viol -> if i < shown then Format.fprintf fmt "@,%a" pp_violation viol)
      v.violations;
    let n = List.length v.violations in
    if n > shown then Format.fprintf fmt "@,... and %d more violation(s)" (n - shown)
  end;
  if v.branch_reads_checked > 0 then
    Format.fprintf fmt "@,%d branch read(s) checked against frozen ancestor states"
      v.branch_reads_checked;
  if v.candidates_resolved > 0 then
    Format.fprintf fmt "@,%d ambiguous operation(s) resolved from later reads"
      v.candidates_resolved;
  if v.twopc_checked > 0 then
    Format.fprintf fmt "@,%d two-phase-commit decision record(s) cross-checked" v.twopc_checked;
  List.iter (fun msg -> Format.fprintf fmt "@,inconclusive: %s" msg) v.inconclusive;
  Format.fprintf fmt "@]"

(* -------------------------------------------------------------------- *)
(* Ambiguity candidates                                                  *)
(* -------------------------------------------------------------------- *)

type candidate = {
  c_value : string option;
  c_invoked : float;
  c_returned : float;
  mutable c_live : bool;
}

let max_candidates_per_key = 8

let max_candidates_total = 64

let max_pending = 256

(* A sequential map model plus its ambiguity bookkeeping: the linear
   model of an index, or one version of a branching index. *)
type realm = {
  mutable r_model : string Smap.t;
  mutable r_last_write : int64 Smap.t; (* key -> stamp of last committed write *)
  r_candidates : (string, candidate list) Hashtbl.t;
}

let realm_create () =
  { r_model = Smap.empty; r_last_write = Smap.empty; r_candidates = Hashtbl.create 8 }

let candidates_for realm key =
  Option.value (Hashtbl.find_opt realm.r_candidates key) ~default:[]

let find_candidate realm key ~observed ~returned_at =
  List.find_opt
    (fun c -> c.c_live && c.c_invoked <= returned_at && c.c_value = observed)
    (candidates_for realm key)

let expire_candidates realm key ~invoked_at =
  List.iter
    (fun c -> if c.c_live && c.c_returned <= invoked_at then c.c_live <- false)
    (candidates_for realm key)

let realm_has_live_candidates realm =
  (* Existence check: a boolean OR-fold is order-independent. *)
  (* lint: allow nondet-iteration *)
  Hashtbl.fold
    (fun _ cs acc -> acc || List.exists (fun c -> c.c_live) cs)
    realm.r_candidates false

(* -------------------------------------------------------------------- *)
(* Deferred work                                                         *)
(* -------------------------------------------------------------------- *)

(* A mismatch that a not-yet-seen ambiguous operation may still excuse:
   in a live stream, an ambiguous op's event arrives when it times out,
   possibly after reads that observed its effect were already applied. *)
type pending = { p_event : Event.t; p_realm : realm; p_stamp : int64; p_what : pend_what }

and pend_what =
  | P_get of { key : string; observed : string option; expected : string option }
  | P_remove of { key : string; removed : bool; present : bool }
  | P_scan of {
      from : string;
      count : int;
      result : (string * string) list;
      expected : (string * string) list;
    }

(* One version of a branching index's version tree. The model is forked
   from the parent when [Branch_created] is applied; freezing it (the
   version stops being a writable tip) makes it the reference state for
   every read claiming this version. *)
type version = {
  v_sid : int64;
  v_realm : realm;
  mutable v_forked : bool;
  mutable v_writable : bool;
  mutable v_deleted : bool;
  mutable v_parent : int64; (* -1 = none *)
  mutable v_nbranches : int;
  mutable v_frozen_at : float; (* return time of the freeze opening the current read-only epoch *)
  mutable v_deleted_at : float; (* return time of the deletion, [infinity] while alive *)
  mutable v_deferred : Event.t list; (* unstamped reads awaiting an epoch verdict, newest first *)
}

type scs_open = { q_sid : int64; q_cstamp : int64; q_invoked : float; q_event : Event.t }

let ring_size = 2048

type shard = {
  s_idx : int;
  s_realm : realm;
  mutable s_ncand : int;
  s_recent : (string, Event.t list) Hashtbl.t;
  mutable s_pending : pending list; (* newest first *)
  mutable s_npending : int;
  mutable s_frozen : string Smap.t I64map.t; (* linear sid -> frozen model *)
  s_creation_log : (int64, int64) Hashtbl.t; (* sid -> creation stamp *)
  mutable s_pending_creations : (int64 * int64) list; (* (cstamp, sid), ascending *)
  mutable s_deferred_snap : Event.t list I64map.t; (* sid -> reads, newest first *)
  mutable s_deferred_multi : Event.t list; (* unstamped get_many/history, newest first *)
  mutable s_ndeferred : int;
  s_versions : (int64, version) Hashtbl.t;
  mutable s_scs_open : scs_open list;
  s_ring : (int64 * float * float) array; (* recent applied: stamp, invoked, returned *)
  mutable s_ring_pos : int;
  mutable s_applied : int;
  mutable s_last_inv : float; (* invoked_at of the most recently applied commit *)
  mutable s_max_invoked : float;
  mutable s_max_invoked_ev : Event.t option;
  mutable s_violations : violation list; (* newest first *)
  mutable s_inconclusive : string list; (* newest first *)
  mutable s_ops : int;
  mutable s_snap_reads : int;
  mutable s_branch_reads : int;
  mutable s_resolved : int;
}

let shard_create idx =
  {
    s_idx = idx;
    s_realm = realm_create ();
    s_ncand = 0;
    s_recent = Hashtbl.create 256;
    s_pending = [];
    s_npending = 0;
    s_frozen = I64map.empty;
    s_creation_log = Hashtbl.create 64;
    s_pending_creations = [];
    s_deferred_snap = I64map.empty;
    s_deferred_multi = [];
    s_ndeferred = 0;
    s_versions = Hashtbl.create 16;
    s_scs_open = [];
    s_ring = Array.make ring_size (Int64.min_int, 0.0, 0.0);
    s_ring_pos = 0;
    s_applied = 0;
    s_last_inv = neg_infinity;
    s_max_invoked = neg_infinity;
    s_max_invoked_ev = None;
    s_violations = [];
    s_inconclusive = [];
    s_ops = 0;
    s_snap_reads = 0;
    s_branch_reads = 0;
    s_resolved = 0;
  }

(* -------------------------------------------------------------------- *)
(* Shard-local reporting                                                 *)
(* -------------------------------------------------------------------- *)

let op_key ev =
  match ev.Event.op with
  | Event.Get { key; _ }
  | Event.Put { key; _ }
  | Event.Remove { key; _ }
  | Event.Branch_get { key; _ }
  | Event.Branch_put { key; _ }
  | Event.Branch_remove { key; _ }
  | Event.Get_many { key; _ }
  | Event.History { key; _ } ->
      Some key
  | Event.Scan _ | Event.Branch_scan _ | Event.Snapshot_taken | Event.Branch_created _
  | Event.Branch_deleted _ ->
      None

let note_recent sh key ev =
  let prev = Option.value (Hashtbl.find_opt sh.s_recent key) ~default:[] in
  let rec cap n = function [] -> [] | x :: tl -> if n = 0 then [] else x :: cap (n - 1) tl in
  Hashtbl.replace sh.s_recent key (cap 4 (ev :: prev))

let violate sh ?event ?key fmt =
  Format.kasprintf
    (fun msg ->
      let ctx =
        match key with
        | None -> []
        | Some k -> List.rev (Option.value (Hashtbl.find_opt sh.s_recent k) ~default:[])
      in
      sh.s_violations <-
        { v_index = sh.s_idx; v_message = msg; v_event = event; v_context = ctx }
        :: sh.s_violations)
    fmt

let inconclusive sh fmt =
  Format.kasprintf (fun msg -> sh.s_inconclusive <- msg :: sh.s_inconclusive) fmt

let model_scan m ~from ~count =
  let rec take acc n seq =
    if n = 0 then List.rev acc
    else
      match seq () with
      | Seq.Nil -> List.rev acc
      | Seq.Cons ((k, v), rest) -> take ((k, v) :: acc) (n - 1) rest
  in
  take [] count (Smap.to_seq_from from m)

let pp_value_opt fmt = function
  | None -> Format.pp_print_string fmt "none"
  | Some v -> Format.fprintf fmt "%S" v

let first_divergence obs exp =
  let rec walk obs exp =
    match (obs, exp) with
    | (k1, v1) :: obs', (k2, v2) :: exp' ->
        if (k1, v1) = (k2, v2) then walk obs' exp'
        else Format.asprintf " (first divergence: observed %S=%S, model %S=%S)" k1 v1 k2 v2
    | (k1, v1) :: _, [] ->
        Format.asprintf " (first divergence: observed %S=%S past the model's end)" k1 v1
    | [], (k2, v2) :: _ ->
        Format.asprintf " (first divergence: model %S=%S missing from the scan)" k2 v2
    | [], [] -> ""
  in
  walk obs exp

(* -------------------------------------------------------------------- *)
(* Candidate resolution and pending mismatches                           *)
(* -------------------------------------------------------------------- *)

(* Resolve a candidate against a read applied at [read_stamp]. The
   model is patched to the candidate's effect only while no committed
   write with a higher stamp has overwritten the key since — at apply
   time that is always true (events apply in stamp order); for a late
   resolution (the ambiguous event arrived after the read was applied)
   the per-key last-write stamp guards the patch. *)
let resolve_candidate sh realm key c ~read_stamp =
  c.c_live <- false;
  sh.s_resolved <- sh.s_resolved + 1;
  let unchanged =
    match Smap.find_opt key realm.r_last_write with
    | Some w -> Int64.compare w read_stamp <= 0
    | None -> true
  in
  if unchanged then
    realm.r_model <-
      (match c.c_value with
      | Some v -> Smap.add key v realm.r_model
      | None -> Smap.remove key realm.r_model)

let pending_violation sh p =
  match p.p_what with
  | P_get { key; observed; expected } ->
      violate sh ~event:p.p_event ~key "get %S observed %a but the model holds %a at stamp %Ld"
        key pp_value_opt observed pp_value_opt expected p.p_stamp
  | P_remove { key; removed; present } ->
      violate sh ~event:p.p_event ~key
        "remove %S returned %b but the model %s the key at stamp %Ld" key removed
        (if present then "holds" else "does not hold")
        p.p_stamp
  | P_scan { from; count; result; expected } ->
      violate sh ~event:p.p_event "scan from %S count %d returned %d entries, model has %d%s"
        from count (List.length result) (List.length expected)
        (first_divergence result expected)

(* Try to settle one pending mismatch. [`Keep] leaves it buffered for a
   later candidate; at finish everything unsettled becomes a verdict. *)
let try_settle sh p ~at_finish =
  let realm = p.p_realm in
  match p.p_what with
  | P_get { key; observed; _ } -> (
      let unchanged =
        match Smap.find_opt key realm.r_last_write with
        | Some w -> Int64.compare w p.p_stamp <= 0
        | None -> true
      in
      (* A previously settled pending read on the same key may already
         have patched the model to the observed value. *)
      if unchanged && Smap.find_opt key realm.r_model = observed then `Settled
      else
        match find_candidate realm key ~observed ~returned_at:p.p_event.Event.returned_at with
        | Some c ->
            resolve_candidate sh realm key c ~read_stamp:p.p_stamp;
            `Settled
        | None -> if at_finish then `Violation else `Keep)
  | P_remove { key; removed; _ } -> (
      let explains c = if removed then c.c_value <> None else c.c_value = None in
      match
        List.find_opt
          (fun c -> c.c_live && c.c_invoked <= p.p_event.Event.returned_at && explains c)
          (candidates_for realm key)
      with
      | Some c ->
          (* The remove already applied its own effect to the model at
             its replay position; consuming the candidate is enough. *)
          c.c_live <- false;
          sh.s_resolved <- sh.s_resolved + 1;
          `Settled
      | None -> if at_finish then `Violation else `Keep)
  | P_scan _ ->
      if not at_finish then `Keep
      else if realm_has_live_candidates realm then `Inconclusive
      else `Violation

let push_pending sh p =
  if sh.s_npending >= max_pending then begin
    (* Overflow: flush the oldest buffered mismatch as a verdict now. *)
    match List.rev sh.s_pending with
    | [] -> pending_violation sh p
    | oldest :: rest ->
        pending_violation sh oldest;
        sh.s_pending <- List.rev rest @ [ p ]
  end
  else begin
    sh.s_pending <- p :: sh.s_pending;
    sh.s_npending <- sh.s_npending + 1
  end

(* A fresh candidate on [realm]/[key] may settle buffered mismatches
   (oldest first, so chained reads settle in order). *)
let recheck_pending sh realm key =
  let keep =
    List.fold_left
      (fun keep p ->
        let matches =
          p.p_realm == realm
          &&
          match p.p_what with
          | P_get { key = k; _ } | P_remove { key = k; _ } -> String.equal k key
          | P_scan _ -> false
        in
        if not matches then p :: keep
        else
          match try_settle sh p ~at_finish:false with
          | `Settled -> keep
          | `Keep | `Violation | `Inconclusive -> p :: keep)
      []
      (List.rev sh.s_pending)
  in
  sh.s_pending <- keep;
  sh.s_npending <- List.length keep

let add_candidate sh realm ev key c_value =
  let prev = candidates_for realm key in
  sh.s_ncand <- sh.s_ncand + 1;
  if List.length prev >= max_candidates_per_key || sh.s_ncand > max_candidates_total then
    inconclusive sh "index %d: too many ambiguous operations on %S; checking is best-effort"
      sh.s_idx key
  else begin
    Hashtbl.replace realm.r_candidates key
      (prev
      @ [
          {
            c_value;
            c_invoked = ev.Event.invoked_at;
            c_returned = ev.Event.returned_at;
            c_live = true;
          };
        ]);
    recheck_pending sh realm key
  end

(* -------------------------------------------------------------------- *)
(* Sequential-model replay of one committed operation                    *)
(* -------------------------------------------------------------------- *)

let apply_get sh realm ev key result =
  let expected = Smap.find_opt key realm.r_model in
  if result <> expected then
    match find_candidate realm key ~observed:result ~returned_at:ev.Event.returned_at with
    | Some c -> resolve_candidate sh realm key c ~read_stamp:(Option.get ev.Event.stamp)
    | None ->
        push_pending sh
          {
            p_event = ev;
            p_realm = realm;
            p_stamp = Option.get ev.Event.stamp;
            p_what = P_get { key; observed = result; expected };
          }

let apply_put sh realm ev key value =
  ignore sh;
  expire_candidates realm key ~invoked_at:ev.Event.invoked_at;
  realm.r_model <- Smap.add key value realm.r_model;
  realm.r_last_write <- Smap.add key (Option.get ev.Event.stamp) realm.r_last_write

let apply_remove sh realm ev key removed =
  let present = Smap.mem key realm.r_model in
  (if removed <> present then
     (* removed=true on an absent key: an ambiguous put may have landed
        first. removed=false on a present key: an ambiguous remove may
        have landed first. *)
     let explains c = if removed then c.c_value <> None else c.c_value = None in
     match
       List.find_opt
         (fun c -> c.c_live && c.c_invoked <= ev.Event.returned_at && explains c)
         (candidates_for realm key)
     with
     | Some c ->
         c.c_live <- false;
         sh.s_resolved <- sh.s_resolved + 1
     | None ->
         push_pending sh
           {
             p_event = ev;
             p_realm = realm;
             p_stamp = Option.get ev.Event.stamp;
             p_what = P_remove { key; removed; present };
           });
  if removed then expire_candidates realm key ~invoked_at:ev.Event.invoked_at;
  realm.r_model <- Smap.remove key realm.r_model;
  realm.r_last_write <- Smap.add key (Option.get ev.Event.stamp) realm.r_last_write

let apply_scan sh realm ev from count result =
  let expected = model_scan realm.r_model ~from ~count in
  if result <> expected then
    if realm_has_live_candidates realm then
      inconclusive sh "index %d: scan from %S mismatches the model but ambiguous writes are pending"
        sh.s_idx from
    else
      push_pending sh
        {
          p_event = ev;
          p_realm = realm;
          p_stamp = Option.get ev.Event.stamp;
          p_what = P_scan { from; count; result; expected };
        }

(* -------------------------------------------------------------------- *)
(* Linear snapshots: freezing and snapshot reads                         *)
(* -------------------------------------------------------------------- *)

let check_frozen_get sh ev m ~sid ~key ~result ~realm =
  let expected = Smap.find_opt key m in
  if result <> expected then
    if
      List.exists
        (fun c -> c.c_invoked <= ev.Event.invoked_at && c.c_value = result)
        (candidates_for realm key)
    then ()
    else
      violate sh ~event:ev ~key
        "snapshot get %S at sid %Ld observed %a but the frozen state holds %a" key sid
        pp_value_opt result pp_value_opt expected

let check_frozen_scan sh ev m ~sid ~from ~count ~result ~realm =
  let expected = model_scan m ~from ~count in
  if result <> expected then
    if Hashtbl.length realm.r_candidates > 0 then
      inconclusive sh "index %d: snapshot scan at sid %Ld mismatches but ambiguous writes are pending"
        sh.s_idx sid
    else
      violate sh ~event:ev
        "snapshot scan from %S at sid %Ld returned %d entries, frozen state has %d" from sid
        (List.length result) (List.length expected)

let check_snapshot_read sh ev m sid =
  sh.s_snap_reads <- sh.s_snap_reads + 1;
  match ev.Event.op with
  | Event.Get { key; result } -> check_frozen_get sh ev m ~sid ~key ~result ~realm:sh.s_realm
  | Event.Scan { from; count; result } ->
      check_frozen_scan sh ev m ~sid ~from ~count ~result ~realm:sh.s_realm
  | _ -> ()

(* Freeze snapshot [sid]: the model now holds exactly the commits with
   stamps below the creation stamp, and can be checked against every
   read claiming [sid]. Frozen states share structure with the live
   model (persistent maps), and the live table is bounded: the oldest
   frozen snapshot is evicted first, turning its late reads
   inconclusive rather than growing without bound. *)
let freeze_snapshot cfg sh sid =
  sh.s_frozen <- I64map.add sid sh.s_realm.r_model sh.s_frozen;
  if I64map.cardinal sh.s_frozen > cfg.Config.max_frozen then begin
    let oldest, _ = I64map.min_binding sh.s_frozen in
    sh.s_frozen <- I64map.remove oldest sh.s_frozen
  end;
  match I64map.find_opt sid sh.s_deferred_snap with
  | None -> ()
  | Some reads ->
      sh.s_deferred_snap <- I64map.remove sid sh.s_deferred_snap;
      sh.s_ndeferred <- sh.s_ndeferred - List.length reads;
      List.iter (fun ev -> check_snapshot_read sh ev sh.s_realm.r_model sid) (List.rev reads)

(* Freeze every snapshot whose creation stamp lies strictly below the
   commit stamp about to be applied. *)
let run_freezes cfg sh ~below =
  let rec go () =
    match sh.s_pending_creations with
    | (cstamp, sid) :: rest when Int64.compare cstamp below < 0 ->
        sh.s_pending_creations <- rest;
        freeze_snapshot cfg sh sid;
        go ()
    | _ -> ()
  in
  go ()

let creation_pending sh sid = List.exists (fun (_, s) -> Int64.equal s sid) sh.s_pending_creations

let snapshot_read cfg sh ev sid =
  match I64map.find_opt sid sh.s_frozen with
  | Some m -> check_snapshot_read sh ev m sid
  | None ->
      if not (Hashtbl.mem sh.s_creation_log sid) then begin
        sh.s_snap_reads <- sh.s_snap_reads + 1;
        violate sh ~event:ev ?key:(op_key ev) "snapshot read at sid %Ld with no creation record"
          sid
      end
      else if creation_pending sh sid then
        if sh.s_ndeferred >= cfg.Config.max_deferred then
          inconclusive sh "index %d: deferred-read budget exhausted; snapshot read at sid %Ld unchecked"
            sh.s_idx sid
        else begin
          sh.s_deferred_snap <-
            I64map.update sid
              (fun prev -> Some (ev :: Option.value prev ~default:[]))
              sh.s_deferred_snap;
          sh.s_ndeferred <- sh.s_ndeferred + 1
        end
      else
        inconclusive sh "index %d: frozen state for sid %Ld was evicted; snapshot read unchecked"
          sh.s_idx sid

let add_creation_shard sh ~sid ~stamp =
  if not (Hashtbl.mem sh.s_creation_log sid) then begin
    Hashtbl.replace sh.s_creation_log sid stamp;
    let rec insert = function
      | [] -> [ (stamp, sid) ]
      | (c, s) :: rest as l ->
          if Int64.compare stamp c <= 0 then (stamp, sid) :: l else (c, s) :: insert rest
    in
    sh.s_pending_creations <- insert sh.s_pending_creations
  end

(* -------------------------------------------------------------------- *)
(* SCS strictness (windowed)                                             *)
(* -------------------------------------------------------------------- *)

let scs_violate sh q ~stamp ~returned_at ~slack =
  violate sh ~event:q.q_event
    "snapshot sid %Ld (creation stamp %Ld) misses a commit with stamp %Ld that returned at \
     %.6f, more than %.3fs before the request at %.6f"
    q.q_sid q.q_cstamp stamp returned_at slack q.q_invoked

(* A granted snapshot must reflect every commit that returned more than
   [slack] seconds before the request started. Commits already applied
   are re-examined through a bounded ring; future commits are swept as
   they apply. An open check closes once an applied commit's invocation
   time passes the horizon: stamp-draw times are monotone in stamp and
   bounded below by invocation times, so every later-stamped commit
   must have returned after the horizon. *)
let scs_register sh ev sid slack =
  match Hashtbl.find_opt sh.s_creation_log sid with
  | None -> violate sh ~event:ev "granted snapshot sid %Ld has no creation record" sid
  | Some cstamp ->
      let q = { q_sid = sid; q_cstamp = cstamp; q_invoked = ev.Event.invoked_at; q_event = ev } in
      let n = min sh.s_applied ring_size in
      let covered = ref (sh.s_applied <= ring_size) in
      for i = 0 to n - 1 do
        let stamp, _, returned_at = sh.s_ring.((sh.s_ring_pos - n + i + 2 * ring_size) mod ring_size) in
        if Int64.compare stamp cstamp <= 0 then covered := true
        else if returned_at < q.q_invoked -. slack then
          scs_violate sh q ~stamp ~returned_at ~slack
      done;
      if not !covered then
        inconclusive sh
          "index %d: commit backlog exceeded the SCS check window for sid %Ld; strictness is \
           best-effort"
          sh.s_idx sid;
      if sh.s_last_inv < q.q_invoked -. slack then
        if List.length sh.s_scs_open >= 1024 then
          inconclusive sh "index %d: too many open SCS strictness checks; sid %Ld unchecked"
            sh.s_idx sid
        else sh.s_scs_open <- q :: sh.s_scs_open

let scs_sweep sh ev slack =
  match sh.s_scs_open with
  | [] -> ()
  | open_checks ->
      let stamp = Option.get ev.Event.stamp in
      sh.s_scs_open <-
        List.filter
          (fun q ->
            if
              Int64.compare stamp q.q_cstamp > 0
              && ev.Event.returned_at < q.q_invoked -. slack
            then scs_violate sh q ~stamp ~returned_at:ev.Event.returned_at ~slack;
            ev.Event.invoked_at < q.q_invoked -. slack)
          open_checks

(* -------------------------------------------------------------------- *)
(* Branching versions: per-branch forked models                          *)
(* -------------------------------------------------------------------- *)

(* Version 0 is the pre-existing root tip; every other version must be
   introduced by an applied [Branch_created] before operations at it
   can be checked. *)
let ensure_version sh sid =
  match Hashtbl.find_opt sh.s_versions sid with
  | Some v -> v
  | None ->
      let v =
        {
          v_sid = sid;
          v_realm = realm_create ();
          v_forked = Int64.equal sid 0L;
          v_writable = true;
          v_deleted = false;
          v_parent = -1L;
          v_nbranches = 0;
          v_frozen_at = neg_infinity;
          v_deleted_at = infinity;
          v_deferred = [];
        }
      in
      Hashtbl.replace sh.s_versions sid v;
      v

(* Version 0 is the pre-existing root: operations may reference it
   before (or without) any [Branch_created] applying, so materialize it
   on first use. Every other version must be introduced explicitly. *)
let find_version sh sid =
  if Int64.equal sid 0L then Some (ensure_version sh sid) else Hashtbl.find_opt sh.s_versions sid

(* The frozen-ancestor rule: a read claiming read-only version [v] must
   observe exactly the state frozen when [v] stopped being a writable
   tip — the accumulated effects of [v]'s ancestor chain plus [v]'s own
   tip-era writes, nothing newer. *)
let check_branch_read sh ev v =
  sh.s_branch_reads <- sh.s_branch_reads + 1;
  match ev.Event.op with
  | Event.Branch_get { at; key; result } ->
      let expected = Smap.find_opt key v.v_realm.r_model in
      if result <> expected then
        if
          List.exists
            (fun c -> c.c_invoked <= ev.Event.invoked_at && c.c_value = result)
            (candidates_for v.v_realm key)
        then ()
        else
          violate sh ~event:ev ~key
            "branch get %S at version %Ld observed %a but the frozen ancestor state holds %a"
            key at pp_value_opt result pp_value_opt expected
  | Event.Branch_scan { at; from; count; result } ->
      let expected = model_scan v.v_realm.r_model ~from ~count in
      if result <> expected then
        if Hashtbl.length v.v_realm.r_candidates > 0 then
          inconclusive sh
            "index %d: branch scan at version %Ld mismatches but ambiguous writes are pending"
            sh.s_idx at
        else
          violate sh ~event:ev
            "branch scan from %S at version %Ld returned %d entries, frozen ancestor state has \
             %d%s"
            from at (List.length result) (List.length expected)
            (first_divergence result expected)
  | _ -> ()

(* Resolve the dirty reads deferred against [v]. A deferred read is
   judged only against the frozen epoch it provably ran wholly inside:
   it was invoked at or after the freeze returned ([v_frozen_at]) and
   it returned at or before [ripe_before] — a bound past which no
   not-yet-applied transaction can commit, so no future unfreeze could
   have affected it. Reads invoked at or after [keep_from] belong to
   the epoch the caller is about to open and stay deferred. Everything
   else raced an epoch boundary or read a live writable tip: it saw
   some intermediate state no stamp identifies — excused, not failed.

   [ripe_before] is sound from [s_max_invoked]: events apply in stamp
   order and stamps serialize commits, so every unapplied transaction
   commits at or after the commit of the last applied one, which is at
   or after the invocation time of every applied one. *)
let resolve_deferred sh v ~ripe_before ~keep_from =
  if v.v_deferred <> [] then begin
    let keep = ref [] in
    List.iter
      (fun ev ->
        if ev.Event.invoked_at >= keep_from then keep := ev :: !keep
        else if ev.Event.returned_at <= ripe_before then begin
          sh.s_ndeferred <- sh.s_ndeferred - 1;
          if (not v.v_writable) && ev.Event.invoked_at >= v.v_frozen_at then
            check_branch_read sh ev v
        end
        else keep := ev :: !keep)
      (List.rev v.v_deferred);
    v.v_deferred <- !keep
  end

(* Opportunistic resolution as the applied-stamp horizon advances. *)
let resolve_ripe sh v = resolve_deferred sh v ~ripe_before:sh.s_max_invoked ~keep_from:infinity

let apply_branch_created sh ev ~parent ~sid =
  let p = ensure_version sh parent in
  if not p.v_forked then
    (* The parent was never introduced: either version-tree traffic from
       before tracing started, or a corrupted catalog. Adopt its current
       (empty) state so downstream checks stay meaningful. *)
    p.v_forked <- true;
  if p.v_deleted then
    violate sh ~event:ev "branch %Ld created from deleted version %Ld" sid parent;
  let c = ensure_version sh sid in
  if c.v_forked && not (Int64.equal sid 0L) then
    violate sh ~event:ev "duplicate version id %Ld in the version tree" sid
  else begin
    c.v_forked <- true;
    c.v_realm.r_model <- p.v_realm.r_model;
    c.v_realm.r_last_write <- p.v_realm.r_last_write;
    c.v_writable <- true;
    c.v_parent <- parent
  end;
  p.v_nbranches <- p.v_nbranches + 1;
  if p.v_writable then begin
    (* The parent tip becomes read-only: reads deferred while it was a
       live tip are excused, reads invoked after the freeze returned
       open the new read-only epoch and resolve as the stamp horizon
       passes them. *)
    resolve_deferred sh p ~ripe_before:infinity ~keep_from:ev.Event.returned_at;
    p.v_writable <- false;
    p.v_frozen_at <- ev.Event.returned_at
  end

let apply_branch_deleted sh ev ~sid =
  match Hashtbl.find_opt sh.s_versions sid with
  | None -> violate sh ~event:ev "deletion of unknown version %Ld" sid
  | Some v ->
      if v.v_deleted then violate sh ~event:ev "version %Ld deleted twice" sid;
      (* Close the leaf's final epoch: reads wholly inside a frozen
         epoch are checked; dirty reads of the live tip are excused. *)
      resolve_deferred sh v ~ripe_before:ev.Event.invoked_at ~keep_from:infinity;
      sh.s_ndeferred <- sh.s_ndeferred - List.length v.v_deferred;
      v.v_deferred <- [];
      v.v_deleted <- true;
      v.v_deleted_at <- ev.Event.returned_at;
      (* Any later operation naming this version is a violation, never a
         model comparison, so the forked state can be reclaimed. Only
         the catalog skeleton (parent pointer, flags) stays behind. *)
      v.v_realm.r_model <- Smap.empty;
      v.v_realm.r_last_write <- Smap.empty;
      Hashtbl.reset v.v_realm.r_candidates;
      if Int64.compare v.v_parent 0L >= 0 then (
        match Hashtbl.find_opt sh.s_versions v.v_parent with
        | None -> ()
        | Some p ->
            p.v_nbranches <- max 0 (p.v_nbranches - 1);
            (* Shedding the last branch makes the parent a writable tip
               again (Sec. 5.2): settle the closing read-only epoch
               before reopening it for writes. *)
            if p.v_nbranches = 0 && not p.v_deleted then begin
              resolve_deferred sh p ~ripe_before:ev.Event.invoked_at
                ~keep_from:ev.Event.returned_at;
              p.v_writable <- true
            end)

let branch_version_for_write sh ev at =
  match find_version sh at with
  | Some v when v.v_forked ->
      if v.v_deleted then begin
        violate sh ~event:ev ?key:(op_key ev) "write at deleted version %Ld" at;
        None
      end
      else if not v.v_writable then begin
        violate sh ~event:ev ?key:(op_key ev)
          "branch isolation violated: write at read-only version %Ld" at;
        None
      end
      else Some v
  | _ ->
      violate sh ~event:ev ?key:(op_key ev) "write at unknown version %Ld" at;
      None

(* Stamped read at a version: tips replay against the live per-version
   model (stamp order makes the comparison exact); read-only versions
   fall under the frozen-ancestor rule. *)
let apply_branch_read sh ev at =
  match find_version sh at with
  | Some v when v.v_forked ->
      if v.v_deleted then violate sh ~event:ev ?key:(op_key ev) "read at deleted version %Ld" at
      else if v.v_writable then (
        match ev.Event.op with
        | Event.Branch_get { key; result; _ } -> apply_get sh v.v_realm ev key result
        | Event.Branch_scan { from; count; result; _ } ->
            apply_scan sh v.v_realm ev from count result
        | _ -> ())
      else check_branch_read sh ev v
  | _ -> violate sh ~event:ev ?key:(op_key ev) "read at unknown version %Ld" at

(* Unstamped (dirty) read at a version: always deferred, because even a
   currently-frozen version may be mid-transition — an unfreeze or
   refreeze can still sit in the reorder buffer ahead of us. The read
   resolves as soon as the applied-stamp horizon proves which epoch it
   ran inside (usually within one reorder window). *)
let defer_branch_read cfg sh ev at =
  if sh.s_ndeferred >= cfg.Config.max_deferred then
    inconclusive sh "index %d: deferred-read budget exhausted; branch read at version %Ld unchecked"
      sh.s_idx at
  else begin
    let v = ensure_version sh at in
    v.v_deferred <- ev :: v.v_deferred;
    sh.s_ndeferred <- sh.s_ndeferred + 1;
    resolve_ripe sh v
  end

(* Multi-version queries. When stamped, the atomic transaction
   serializes at its stamp and every per-version model is exact at
   apply time; when unstamped, only frozen versions can be judged. *)
let check_versioned_results sh ev ~exact key results =
  List.iter
    (fun (sid, result) ->
      match find_version sh sid with
      | Some v when v.v_forked ->
          sh.s_branch_reads <- sh.s_branch_reads + 1;
          if v.v_deleted then begin
            (* A stamped query serializes after the deletion; a dirty one
               is only damning if it started after the deletion returned
               — earlier ones ran against the then-live version, whose
               reclaimed state we can no longer verify. *)
            if exact || ev.Event.invoked_at >= v.v_deleted_at then
              violate sh ~event:ev ~key "multi-version read at deleted version %Ld" sid
          end
          else if (not exact) && v.v_writable then ()
          else if (not exact) && ev.Event.invoked_at < v.v_frozen_at then
            (* The dirty query predates the version's current read-only
               epoch: it observed some earlier tip state. Excused. *)
            ()
          else begin
            let expected = Smap.find_opt key v.v_realm.r_model in
            if result <> expected then
              if
                List.exists
                  (fun c -> c.c_invoked <= ev.Event.invoked_at && c.c_value = result)
                  (candidates_for v.v_realm key)
              then ()
              else
                violate sh ~event:ev ~key
                  "multi-version get %S at version %Ld observed %a but the version's state \
                   holds %a"
                  key sid pp_value_opt result pp_value_opt expected
          end
      | _ -> violate sh ~event:ev ~key "multi-version read at unknown version %Ld" sid)
    results

let check_history_chain sh ev ~from results =
  (* The returned versions must be exactly [from]'s ancestor chain,
     root-first, per the checker's own recorded parent pointers. *)
  let rec climb acc sid guard =
    if guard = 0 then acc
    else
      match Hashtbl.find_opt sh.s_versions sid with
      | Some v when v.v_forked ->
          if Int64.compare v.v_parent 0L >= 0 then climb (v.v_parent :: acc) v.v_parent (guard - 1)
          else acc
      | _ -> acc
  in
  let expected = climb [ from ] from 1024 in
  let got = List.map fst results in
  if got <> expected then
    violate sh ~event:ev
      "history at version %Ld returned chain [%s] but the recorded version tree has [%s]" from
      (String.concat ";" (List.map Int64.to_string got))
      (String.concat ";" (List.map Int64.to_string expected))

(* -------------------------------------------------------------------- *)
(* Shard dispatch                                                        *)
(* -------------------------------------------------------------------- *)

(* Apply one stamped event in commit-stamp order: freeze snapshots whose
   creation stamps have passed, enforce real-time order, sweep open SCS
   checks, then replay the operation against its model. *)
let shard_apply cfg sh ev =
  let stamp = Option.get ev.Event.stamp in
  run_freezes cfg sh ~below:stamp;
  sh.s_ops <- sh.s_ops + 1;
  (* Real-time order, O(1): events apply in stamp order, so a violation
     pairs this event with an already-applied one that was invoked
     after this event returned. Track the maximum invocation time and
     its witness. *)
  if sh.s_max_invoked > ev.Event.returned_at then
    (match sh.s_max_invoked_ev with
    | Some w ->
        violate sh ~event:ev ?key:(op_key ev)
          "real-time order violated: an operation that returned at %.6f has stamp %Ld, not \
           below the stamp %Ld of an operation invoked later at %.6f"
          ev.Event.returned_at stamp
          (Option.value w.Event.stamp ~default:(-1L))
          w.Event.invoked_at
    | None -> ());
  if ev.Event.invoked_at > sh.s_max_invoked then begin
    sh.s_max_invoked <- ev.Event.invoked_at;
    sh.s_max_invoked_ev <- Some ev
  end;
  (match Config.scs_slack cfg with Some slack -> scs_sweep sh ev slack | None -> ());
  sh.s_ring.(sh.s_ring_pos) <- (stamp, ev.Event.invoked_at, ev.Event.returned_at);
  sh.s_ring_pos <- (sh.s_ring_pos + 1) mod ring_size;
  sh.s_applied <- sh.s_applied + 1;
  sh.s_last_inv <- ev.Event.invoked_at;
  (match ev.Event.op with
  | Event.Get { key; result } -> (
      match ev.Event.sid with
      | Some sid -> snapshot_read cfg sh ev sid
      | None -> apply_get sh sh.s_realm ev key result)
  | Event.Put { key; value } -> apply_put sh sh.s_realm ev key value
  | Event.Remove { key; removed } -> apply_remove sh sh.s_realm ev key removed
  | Event.Scan { from; count; result } -> (
      match ev.Event.sid with
      | Some sid -> snapshot_read cfg sh ev sid
      | None -> apply_scan sh sh.s_realm ev from count result)
  | Event.Snapshot_taken -> ()
  | Event.Branch_created { parent; sid } -> apply_branch_created sh ev ~parent ~sid
  | Event.Branch_deleted { sid } -> apply_branch_deleted sh ev ~sid
  | Event.Branch_put { at; key; value } -> (
      match branch_version_for_write sh ev at with
      | Some v -> apply_put sh v.v_realm ev key value
      | None -> ())
  | Event.Branch_remove { at; key; removed } -> (
      match branch_version_for_write sh ev at with
      | Some v -> apply_remove sh v.v_realm ev key removed
      | None -> ())
  | Event.Branch_get { at; _ } | Event.Branch_scan { at; _ } -> apply_branch_read sh ev at
  | Event.Get_many { key; results } -> check_versioned_results sh ev ~exact:true key results
  | Event.History { from; key; results } ->
      check_history_chain sh ev ~from results;
      check_versioned_results sh ev ~exact:true key results);
  match op_key ev with Some key -> note_recent sh key ev | None -> ()

(* Events without a commit stamp: ambiguity candidates, snapshot and
   branch reads serialized by their version, SCS grants — or up-to-date
   operations that should have carried one. *)
let shard_unstamped cfg sh ev =
  if ev.Event.ambiguous then (
    match ev.Event.op with
    | Event.Put { key; value } -> add_candidate sh sh.s_realm ev key (Some value)
    | Event.Remove { key; _ } -> add_candidate sh sh.s_realm ev key None
    | Event.Branch_put { at; key; value } ->
        add_candidate sh (ensure_version sh at).v_realm ev key (Some value)
    | Event.Branch_remove { at; key; _ } ->
        add_candidate sh (ensure_version sh at).v_realm ev key None
    | _ -> ())
  else
    match ev.Event.op with
    | Event.Snapshot_taken -> (
        match ev.Event.sid with
        | None -> violate sh ~event:ev "snapshot request event carries no sid"
        | Some sid -> (
            match Config.scs_slack cfg with
            | Some slack -> scs_register sh ev sid slack
            | None ->
                if not (Hashtbl.mem sh.s_creation_log sid) then
                  violate sh ~event:ev "granted snapshot sid %Ld has no creation record" sid))
    | Event.Get _ | Event.Scan _ when ev.Event.sid <> None ->
        snapshot_read cfg sh ev (Option.get ev.Event.sid)
    | Event.Get _ | Event.Put _ | Event.Remove _ | Event.Scan _ ->
        violate sh ~event:ev ?key:(op_key ev) "up-to-date operation carries no commit stamp"
    | Event.Branch_get { at; _ } | Event.Branch_scan { at; _ } -> defer_branch_read cfg sh ev at
    | Event.Branch_created _ | Event.Branch_deleted _ | Event.Branch_put _
    | Event.Branch_remove _ ->
        violate sh ~event:ev ?key:(op_key ev) "catalog/branch operation carries no commit stamp"
    | Event.Get_many _ | Event.History _ ->
        (* Dirty multi-version query: judged at finish, when every
           referenced version has reached its final state. *)
        if sh.s_ndeferred >= cfg.Config.max_deferred then
          inconclusive sh "index %d: deferred-read budget exhausted; multi-version query unchecked"
            sh.s_idx
        else begin
          sh.s_deferred_multi <- ev :: sh.s_deferred_multi;
          sh.s_ndeferred <- sh.s_ndeferred + 1
        end

(* End-of-stream resolution for one shard: freeze the remaining
   creations, drain every deferred read, settle pending mismatches and
   run the final audit. *)
let shard_finish cfg sh ~final =
  List.iter (fun (_, sid) -> freeze_snapshot cfg sh sid) sh.s_pending_creations;
  sh.s_pending_creations <- [];
  I64map.iter
    (fun sid reads ->
      List.iter
        (fun ev ->
          sh.s_snap_reads <- sh.s_snap_reads + 1;
          violate sh ~event:ev ?key:(op_key ev)
            "snapshot read at sid %Ld left unresolved at end of stream" sid)
        (List.rev reads))
    sh.s_deferred_snap;
  sh.s_deferred_snap <- I64map.empty;
  Sim.Det.iter_sorted sh.s_versions ~cmp:Int64.compare (fun _ v ->
      if v.v_deferred <> [] then
        if v.v_forked then
          (* No transaction is left that could unfreeze the version, so
             its last read-only epoch runs to the end of time: reads
             inside it are checked, dirty reads of a still-writable tip
             are excused. *)
          resolve_deferred sh v ~ripe_before:infinity ~keep_from:infinity
        else begin
          List.iter
            (fun ev -> violate sh ~event:ev ?key:(op_key ev) "read at unknown version %Ld" v.v_sid)
            (List.rev v.v_deferred);
          sh.s_ndeferred <- sh.s_ndeferred - List.length v.v_deferred;
          v.v_deferred <- []
        end);
  List.iter
    (fun ev ->
      match ev.Event.op with
      | Event.Get_many { key; results } -> check_versioned_results sh ev ~exact:false key results
      | Event.History { from; key; results } ->
          check_history_chain sh ev ~from results;
          check_versioned_results sh ev ~exact:false key results
      | _ -> ())
    (List.rev sh.s_deferred_multi);
  sh.s_deferred_multi <- [];
  List.iter
    (fun p ->
      match try_settle sh p ~at_finish:true with
      | `Settled -> ()
      | `Violation | `Keep -> pending_violation sh p
      | `Inconclusive ->
          inconclusive sh
            "index %d: scan from %S mismatches the model but ambiguous writes are pending"
            sh.s_idx
            (match p.p_what with P_scan { from; _ } -> from | _ -> ""))
    (List.rev sh.s_pending);
  sh.s_pending <- [];
  sh.s_npending <- 0;
  sh.s_scs_open <- [];
  (* Final audit: the surviving state must match the model exactly,
     modulo unresolved ambiguous writes. *)
  List.iter
    (fun (i, entries) ->
      if i = sh.s_idx then begin
        let actual = List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty entries in
        let keys =
          List.sort_uniq compare
            (List.map fst (Smap.bindings sh.s_realm.r_model)
            @ List.map fst (Smap.bindings actual))
        in
        List.iter
          (fun key ->
            let expected = Smap.find_opt key sh.s_realm.r_model in
            let got = Smap.find_opt key actual in
            if got <> expected then
              if
                List.exists
                  (fun c -> c.c_live && c.c_value = got)
                  (candidates_for sh.s_realm key)
              then ()
              else
                violate sh ~key "final audit: key %S holds %a but the model holds %a" key
                  pp_value_opt got pp_value_opt expected)
          keys
      end)
    final

(* -------------------------------------------------------------------- *)
(* The stream                                                            *)
(* -------------------------------------------------------------------- *)

(* Parallel model shards: each worker domain owns the shards of the
   indexes assigned to it (all versions of a branching index live with
   their index, so [Branch_created] forks hand off within one worker)
   and consumes a FIFO of shard operations. The per-shard operation
   sequence is identical to the single-threaded order, so verdicts are
   deterministic regardless of domain scheduling. *)
type wmsg =
  | W_apply of Event.t
  | W_unstamped of Event.t
  | W_creation of int * int64 * int64

type worker = {
  w_queue : wmsg Queue.t;
  w_mutex : Mutex.t;
  w_nonempty : Condition.t;
  w_nonfull : Condition.t;
  mutable w_closed : bool;
  mutable w_domain : (int, shard) Hashtbl.t Domain.t option;
}

let queue_cap = 8192

let worker_push w msg =
  Mutex.lock w.w_mutex;
  while Queue.length w.w_queue >= queue_cap do
    Condition.wait w.w_nonfull w.w_mutex
  done;
  Queue.push msg w.w_queue;
  Condition.signal w.w_nonempty;
  Mutex.unlock w.w_mutex

let worker_close w =
  Mutex.lock w.w_mutex;
  w.w_closed <- true;
  Condition.signal w.w_nonempty;
  Mutex.unlock w.w_mutex

let worker_loop cfg w () =
  let shards : (int, shard) Hashtbl.t = Hashtbl.create 8 in
  let ensure idx =
    match Hashtbl.find_opt shards idx with
    | Some sh -> sh
    | None ->
        let sh = shard_create idx in
        Hashtbl.replace shards idx sh;
        sh
  in
  let rec drain () =
    Mutex.lock w.w_mutex;
    while Queue.is_empty w.w_queue && not w.w_closed do
      Condition.wait w.w_nonempty w.w_mutex
    done;
    let msg = if Queue.is_empty w.w_queue then None else Some (Queue.pop w.w_queue) in
    Condition.signal w.w_nonfull;
    Mutex.unlock w.w_mutex;
    match msg with
    | None -> shards
    | Some (W_apply ev) ->
        shard_apply cfg (ensure ev.Event.index) ev;
        drain ()
    | Some (W_unstamped ev) ->
        shard_unstamped cfg (ensure ev.Event.index) ev;
        drain ()
    | Some (W_creation (idx, sid, stamp)) ->
        add_creation_shard (ensure idx) ~sid ~stamp;
        drain ()
  in
  drain ()

type t = {
  cfg : Config.t;
  mutable buffer : Event.t I64map.t; (* stamped events awaiting application *)
  mutable buffered : int;
  mutable watermark : int64; (* highest applied stamp *)
  shards : (int, shard) Hashtbl.t; (* single-threaded path *)
  workers : worker array; (* parallel path; empty when cfg.workers <= 1 *)
  mutable global_violations : violation list; (* newest first *)
  mutable global_inconclusive : string list; (* newest first *)
  mutable fed : int;
  mutable finished : bool;
}

let global_violate t fmt =
  Format.kasprintf
    (fun v_message ->
      t.global_violations <-
        { v_index = -1; v_message; v_event = None; v_context = [] } :: t.global_violations)
    fmt

let ensure_shard t idx =
  match Hashtbl.find_opt t.shards idx with
  | Some sh -> sh
  | None ->
      let sh = shard_create idx in
      Hashtbl.replace t.shards idx sh;
      sh

let dispatch t idx msg =
  if Array.length t.workers = 0 then (
    let sh = ensure_shard t idx in
    match msg with
    | W_apply ev -> shard_apply t.cfg sh ev
    | W_unstamped ev -> shard_unstamped t.cfg sh ev
    | W_creation (_, sid, stamp) -> add_creation_shard sh ~sid ~stamp)
  else worker_push t.workers.(idx mod Array.length t.workers) msg

let add_creation t ~index ~sid ~stamp = dispatch t index (W_creation (index, sid, stamp))

let create cfg =
  let nworkers = max 1 cfg.Config.workers in
  let workers =
    if nworkers <= 1 then [||]
    else
      Array.init nworkers (fun _ ->
          {
            w_queue = Queue.create ();
            w_mutex = Mutex.create ();
            w_nonempty = Condition.create ();
            w_nonfull = Condition.create ();
            w_closed = false;
            w_domain = None;
          })
  in
  Array.iter (fun w -> w.w_domain <- Some (Domain.spawn (worker_loop cfg w))) workers;
  let t =
    {
      cfg;
      buffer = I64map.empty;
      buffered = 0;
      watermark = Int64.min_int;
      shards = Hashtbl.create 8;
      workers;
      global_violations = [];
      global_inconclusive = [];
      fed = 0;
      finished = false;
    }
  in
  List.iter
    (fun (index, log) -> List.iter (fun (sid, stamp) -> add_creation t ~index ~sid ~stamp) log)
    cfg.Config.creations;
  t

let apply_min t =
  let stamp, ev = I64map.min_binding t.buffer in
  t.buffer <- I64map.remove stamp t.buffer;
  t.buffered <- t.buffered - 1;
  t.watermark <- stamp;
  dispatch t ev.Event.index (W_apply ev)

(* Feed one event, in any order consistent with its arrival: stamped
   events are re-sequenced into commit-stamp order through a bounded
   reorder buffer (commit stamps are drawn while the operations' locks
   are held, so an event can only arrive out of stamp order by the
   in-flight concurrency — far less than the window); everything else
   is routed to its index's shard immediately. *)
let feed t ev =
  if t.finished then invalid_arg "Check.Stream.feed: stream already finished";
  t.fed <- t.fed + 1;
  match ev.Event.stamp with
  | Some _ when ev.Event.ambiguous ->
      (* Ambiguous ops never carry a stamp; be safe and treat the event
         as unstamped so its candidate is still registered. *)
      dispatch t ev.Event.index (W_unstamped ev)
  | None -> dispatch t ev.Event.index (W_unstamped ev)
  | Some stamp ->
      if I64map.mem stamp t.buffer then global_violate t "duplicate commit stamp %Ld" stamp
      else if Int64.compare stamp t.watermark <= 0 then
        global_violate t
          "commit stamp %Ld at or below the applied watermark %Ld (duplicate stamp or reorder \
           window exceeded)"
          stamp t.watermark
      else begin
        t.buffer <- I64map.add stamp ev t.buffer;
        t.buffered <- t.buffered + 1;
        while t.buffered > t.cfg.Config.reorder_window do
          apply_min t
        done
      end

let fed t = t.fed

let finish ?final ?twopc ?in_doubt t =
  if t.finished then invalid_arg "Check.Stream.finish: stream already finished";
  t.finished <- true;
  let final = Option.value final ~default:t.cfg.Config.final in
  let twopc = Option.value twopc ~default:t.cfg.Config.twopc in
  let in_doubt = Option.value in_doubt ~default:t.cfg.Config.in_doubt in
  while t.buffered > 0 do
    apply_min t
  done;
  let shards =
    if Array.length t.workers = 0 then t.shards
    else begin
      Array.iter worker_close t.workers;
      let merged = Hashtbl.create 8 in
      Array.iter
        (fun w ->
          let shards = Domain.join (Option.get w.w_domain) in
          Sim.Det.iter_sorted shards ~cmp:compare (fun idx sh -> Hashtbl.replace merged idx sh))
        t.workers;
      merged
    end
  in
  let ordered = Sim.Det.sorted_bindings shards ~cmp:compare in
  List.iter (fun (_, sh) -> shard_finish t.cfg sh ~final) ordered;
  (* 2PC atomicity: the participants' redo logs must agree on every
     transaction's fate — a tid committed at one address space and
     aborted at another is a torn transaction. The same tid carrying
     both records at a single space (a decide_commit racing a recovery
     force-abort) is the same violation. *)
  let twopc_checked = List.length twopc in
  let by_tid = Hashtbl.create 64 in
  List.iter
    (fun (space, tid, d) ->
      let cs, abs = Option.value (Hashtbl.find_opt by_tid tid) ~default:([], []) in
      Hashtbl.replace by_tid tid
        (match d with `Committed -> (space :: cs, abs) | `Aborted -> (cs, space :: abs)))
    twopc;
  Sim.Det.sorted_bindings by_tid ~cmp:Int64.compare
  |> List.iter (fun (tid, (cs, abs)) ->
         if cs <> [] && abs <> [] then
           global_violate t
             "2PC atomicity violated: transaction %Ld committed at space(s) %s but aborted at \
              space(s) %s"
             tid
             (String.concat "," (List.map string_of_int (List.sort compare cs)))
             (String.concat "," (List.map string_of_int (List.sort compare abs))));
  (* Every in-doubt transaction must be resolved by the time the run
     quiesces: a leftover means the recovery coordinator wedged (or was
     never run) and its locks block the ranges forever. *)
  if in_doubt > 0 then
    global_violate t
      "%d transaction(s) still in doubt after the run quiesced (recovery never resolved them)"
      in_doubt;
  let violations =
    List.concat_map (fun (_, sh) -> List.rev sh.s_violations) ordered
    @ List.rev t.global_violations
  in
  let inconclusive =
    List.concat_map (fun (_, sh) -> List.rev sh.s_inconclusive) ordered
    @ List.rev t.global_inconclusive
  in
  let sum f = List.fold_left (fun acc (_, sh) -> acc + f sh) 0 ordered in
  {
    violations;
    inconclusive;
    ops_checked = sum (fun sh -> sh.s_ops);
    snapshot_reads_checked = sum (fun sh -> sh.s_snap_reads);
    branch_reads_checked = sum (fun sh -> sh.s_branch_reads);
    candidates_resolved = sum (fun sh -> sh.s_resolved);
    twopc_checked;
  }
