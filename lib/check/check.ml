(** History-based consistency checking for Minuet runs.

    {!History} records per-operation invocation/response events from
    sessions (via [Session.attach ~tracer]); {!Checker} verifies the
    recorded history against a sequential model: serializability in
    commit-stamp order, real-time (strictness) constraints, exact
    frozen-prefix semantics for snapshot reads, and final-state audits.
    The chaos engine ({!Chaos}) drives faulted workloads and hands the
    history to this checker. *)

module History = History
module Stream = Stream
module Checker = Checker
