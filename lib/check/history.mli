(** History recorder: collects {!Minuet.Session.Event.t}s from any
    number of sessions into one run-wide history, in completion order.

    Attach with [Session.attach ~tracer:(History.tracer h)]. The
    recorder is passive (no simulated cost) and safe to share between
    all sessions of a run — the simulator is cooperative, so events
    arrive one at a time. *)

module Event = Minuet.Session.Event

type t

val create : unit -> t

val tracer : t -> Minuet.Session.tracer

val record : t -> Event.t -> unit
(** Append one event directly (synthetic histories in tests). *)

val events : t -> Event.t list
(** All recorded events, in recording (completion) order. *)

val length : t -> int

val clear : t -> unit

val pp : Format.formatter -> t -> unit
