module Event = Minuet.Session.Event

type t = { mutable rev_events : Event.t list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let record t ev =
  t.rev_events <- ev :: t.rev_events;
  t.n <- t.n + 1

let tracer t : Minuet.Session.tracer = record t

let events t = List.rev t.rev_events

let length t = t.n

let clear t =
  t.rev_events <- [];
  t.n <- 0

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun ev -> Format.fprintf fmt "%a@," Event.pp ev) (events t);
  Format.fprintf fmt "@]"
