(** Streaming serializability checker.

    The incremental core behind {!Checker.check}: a sink that consumes
    {!Minuet.Session.Event.t}s one at a time and verifies them online
    against per-index sequential models, in O(active keys + candidate
    budget + reorder window) live memory — a million-op chaos history
    checks in a bounded heap instead of materializing the full event
    list.

    {b Replay.} Commit stamps are the operations' serialization points
    (drawn while all their locks were held), so applying stamped events
    in ascending stamp order against a per-index map model {e is} the
    equivalent serial order; any divergence between an observed result
    and the model is a serializability violation. Events may be fed in
    any arrival order: a bounded reorder buffer
    ({!Config.t.reorder_window}) re-sequences them by stamp, and a
    stamp at or below the applied watermark is itself reported (the
    run's in-flight concurrency bounds the needed window).

    {b Strictness} is checked in O(1) per event: a violation exists iff
    some operation's stamp is below that of an operation invoked after
    it returned, which the stream detects by tracking the maximum
    invocation time seen so far per index.

    {b Snapshots.} A read at snapshot [sid] must observe exactly the
    frozen prefix — the model state after the last commit stamped below
    [sid]'s creation stamp. The stream freezes a persistent-map copy of
    the model when the replay crosses a creation stamp and evicts the
    oldest frozen snapshots beyond {!Config.t.max_frozen}; reads that
    arrive before their snapshot freezes are deferred (bounded by
    {!Config.t.max_deferred}).

    {b Branches} (Sec. 5): each version id gets its own model realm,
    forked from its parent's at {!Minuet.Session.Event.Branch_created};
    creating a branch freezes the parent. The rule checked: a branch
    read at version [v] observes exactly the frozen state of [v]'s
    ancestor chain — writes reaching a read-only version, or leaking
    across sibling branches, diverge from the forked realm and are
    reported as branch-isolation violations. Multi-version queries
    ([Get_many], [History]) are checked against every version's realm,
    and [History] additionally against the recorded parent chain.

    {b Sharding.} Indexes are independent serialization domains, so
    with [workers > 1] shards are distributed over worker domains by
    index; each shard still consumes its operations in a single
    deterministic order, so the verdict does not depend on domain
    scheduling. *)

module Event = Minuet.Session.Event

module Config : sig
  type t = {
    strict_scs : bool;
        (** A granted snapshot must reflect every commit that completed
            before the request started (disable for staleness-bound
            SCS configs). Default [true]. *)
    scs_staleness : float option;
        (** Time-bound variant: the snapshot may miss commits completed
            within the last [scs_staleness] seconds, nothing older.
            Takes precedence over [strict_scs]. Default [None]. *)
    creations : (int * (int64 * int64) list) list;
        (** Per-index snapshot creation logs ([(sid, stamp)] pairs, any
            order) known up front; more can arrive incrementally via
            {!add_creation}. *)
    final : (int * (string * string) list) list;
        (** Per-index post-run audits of the surviving tip entries. *)
    twopc : (int * int64 * [ `Committed | `Aborted ]) list;
        (** Every address space's redo-log decision records
            ({!Sinfonia.Cluster.redo_decisions}). *)
    in_doubt : int;
        (** Transactions still undecided when the run quiesced; any
            nonzero value is a violation. *)
    reorder_window : int;
        (** Stamped events buffered before the lowest is applied.
            Default 4096. *)
    max_frozen : int;
        (** Frozen snapshot states retained per index; oldest evicted
            first (reads against evicted snapshots report
            inconclusive). Default 1024. *)
    max_deferred : int;
        (** Reads parked awaiting their snapshot's freeze, per index.
            Default 65536. *)
    workers : int;
        (** Worker domains to shard indexes over; [<= 1] checks
            in-process. Default 1. *)
  }

  val default : t
end

type violation = {
  v_index : int;  (** Index the violation was found in; -1 for global. *)
  v_message : string;
  v_event : Event.t option;  (** The operation that exposed it. *)
  v_context : Event.t list;
      (** Minimal counterexample context: the last few committed
          operations on the same key, oldest first. *)
}

type verdict = {
  violations : violation list;
  inconclusive : string list;
      (** Checks that could not complete (e.g. too many ambiguous
          operations, evicted frozen snapshots); not failures. *)
  ops_checked : int;
  snapshot_reads_checked : int;
  branch_reads_checked : int;
      (** Branch-scoped reads verified against frozen ancestor
          states (includes multi-version query entries). *)
  candidates_resolved : int;
  twopc_checked : int;  (** 2PC decision records cross-checked. *)
}

val ok : verdict -> bool
(** No violations (inconclusive notes allowed). *)

val pp_violation : Format.formatter -> violation -> unit

val pp_verdict : Format.formatter -> verdict -> unit
(** Deterministic rendering: same history, same output. *)

type t
(** A live checking stream. Not thread-safe: feed from one domain
    (worker parallelism is internal). *)

val create : Config.t -> t

val feed : t -> Event.t -> unit
(** Consume one event. Raises [Invalid_argument] after {!finish}. *)

val add_creation : t -> index:int -> sid:int64 -> stamp:int64 -> unit
(** Register a snapshot creation observed mid-run (e.g. from
    {!Mvcc.Scs.set_on_create}); equivalent to listing it in
    {!Config.t.creations} up front. *)

val fed : t -> int
(** Events fed so far. *)

val finish : ?final:(int * (string * string) list) list ->
             ?twopc:(int * int64 * [ `Committed | `Aborted ]) list ->
             ?in_doubt:int ->
             t ->
             verdict
(** Drain the reorder buffer, resolve end-of-stream obligations
    (deferred snapshot and branch reads, pending ambiguous reads,
    final audits) and assemble the verdict. The optional arguments
    override their {!Config.t} counterparts for data only known at the
    end of the run. The stream cannot be used afterwards. *)
