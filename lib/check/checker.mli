(** Whole-history consistency checker: the list-shaped convenience
    front end over {!Stream}.

    [check] feeds a recorded history through a fresh {!Stream.t} in
    arrival order and finishes it — the verdict is the streaming
    checker's, by construction. See {!Stream} for the checked rules:
    serializability in commit-stamp order, real-time strictness,
    exact frozen-prefix semantics for snapshot and branch reads,
    ambiguity candidates, final audits, stamp uniqueness and 2PC
    atomicity. Prefer driving {!Stream} directly for long runs; this
    wrapper holds the whole event list live. *)

module Event = Minuet.Session.Event
module Config = Stream.Config

type violation = Stream.violation = {
  v_index : int;  (** Index the violation was found in; -1 for global. *)
  v_message : string;
  v_event : Event.t option;  (** The operation that exposed it. *)
  v_context : Event.t list;
      (** Minimal counterexample context: the last few committed
          operations on the same key, oldest first. *)
}

type verdict = Stream.verdict = {
  violations : violation list;
  inconclusive : string list;
      (** Checks that could not complete (e.g. too many ambiguous
          operations); not failures. *)
  ops_checked : int;
  snapshot_reads_checked : int;
  branch_reads_checked : int;
  candidates_resolved : int;
  twopc_checked : int;  (** 2PC decision records cross-checked. *)
}

val check :
  ?final:(int * (string * string) list) list ->
  ?strict_scs:bool ->
  ?scs_staleness:float ->
  ?twopc:(int * int64 * [ `Committed | `Aborted ]) list ->
  ?in_doubt:int ->
  creations:(int * (int64 * int64) list) list ->
  events:Event.t list ->
  unit ->
  verdict
(** [check ~creations ~events ()] verifies the history. [creations]
    maps each index to its snapshot creation log ([(sid, stamp)]
    pairs, any order). [final] maps an index to the entries of a
    post-run {!Btree.Ops.audit} at the tip.

    SCS strictness: with [strict_scs] (default true) a granted snapshot
    must reflect every commit that completed before the request
    started. [scs_staleness] replaces the all-or-nothing switch with a
    time bound for staleness-bound configs ([k > 0]): the snapshot may
    miss commits that completed within the last [scs_staleness]
    seconds, but nothing older. When [scs_staleness] is given it takes
    precedence over [strict_scs].

    2PC atomicity: [twopc] is the dump of every address space's redo-log
    decision records ({!Sinfonia.Cluster.redo_decisions}); a transaction
    committed at one space and aborted at another — or carrying both
    records at one space — is reported as a global violation (index
    [-1]). [in_doubt] is the count of transactions still undecided at
    the end of the run ({!Sinfonia.Cluster.in_doubt_total}); any
    nonzero value is a violation, since a quiesced run with recovery
    active must have drained them. *)

val ok : verdict -> bool
(** No violations (inconclusive notes allowed). *)

val pp_violation : Format.formatter -> violation -> unit

val pp_verdict : Format.formatter -> verdict -> unit
(** Deterministic rendering: same history, same output. *)
