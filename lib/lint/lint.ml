(** Umbrella module of the [minuet.lint] library.

    An AST-level invariant linter over the repo's own sources: parses
    every [.ml] with compiler-libs, runs a data-driven rule set
    ([Lint.Rules.all]) protecting determinism, crash-safety and
    protocol discipline, honours [(* lint: allow <rule> *)]
    suppression comments, and renders findings as diagnostics or an
    Obs.Json report.

    Since ISSUE 10 the linter is a two-phase, whole-program analysis:
    [Summary] builds per-function effect summaries in one walk per
    file, [Callgraph] resolves module-qualified calls syntactically,
    [Interproc] propagates facts to a fixpoint, and the [Global] rules
    in [Rules] check invariants across call chains. See DESIGN.md §13
    and §17. *)

module Diag = Diag
module Src_file = Src_file
module Paths = Paths
module Summary = Summary
module Callgraph = Callgraph
module Interproc = Interproc
module Rules = Rules
module Engine = Engine
