(** Umbrella module of the [minuet.lint] library.

    An AST-level invariant linter over the repo's own sources: parses
    every [.ml] with compiler-libs, runs a data-driven rule set
    ([Lint.Rules.all]) protecting determinism, crash-safety and
    protocol discipline, honours [(* lint: allow <rule> *)]
    suppression comments, and renders findings as diagnostics or an
    Obs.Json report. See DESIGN.md §13. *)

module Diag = Diag
module Src_file = Src_file
module Rules = Rules
module Engine = Engine
