(* Phase 1 of the interprocedural analysis: one walk per source file
   producing per-function summaries — the facts the fixpoint (Interproc)
   propagates and the four interprocedural rule families consume.

   A summary is purely syntactic. Per top-level function (including
   functions in nested [module M = struct ... end] blocks) it records,
   in approximate evaluation order:

   - calls, as raw dotted paths plus the swallow context of every
     enclosing exception handler (so crash-exception propagation can
     stop at a handler that would catch it);
   - protocol ops (redo-log append/decide, lock acquire/release,
     network transfer) recognised by their dotted names;
   - nondeterminism, wall-clock and scheduler-blocking sources,
     recognised with the same matchers as the syntactic rules — a
     source under a [lint: allow] directive is vouched for and does
     not enter the summary;
   - direct raises of the crash exceptions (Memnode.Crashed,
     Txn.Aborted, Codec.Decode_error);
   - wildcard exception handlers that swallow (no reraise), with the
     calls made inside the code they guard.

   Inner [let]s and closures are inlined into the enclosing top-level
   function: combinator callbacks run within the call in practice, and
   a closure's effects belong to whoever builds it. The cost is
   flow-insensitivity (branches are concatenated in source order) and
   blindness to higher-order flow of *top-level* functions passed as
   values; DESIGN.md Sec. 17 lists the resulting soundness caveats. *)

open Parsetree

type op = Append | Decide_commit | Decide_abort | Acquire | Release | Transfer

let op_to_string = function
  | Append -> "Redo_log.append"
  | Decide_commit -> "Redo_log.decide_commit"
  | Decide_abort -> "Redo_log.decide_abort"
  | Acquire -> "Lock_table acquire"
  | Release -> "Lock_table.release"
  | Transfer -> "Net.transfer"

type source_kind = Nondet | Wallclock | Blocking

type source = {
  s_kind : source_kind;
  s_what : string;  (* e.g. "Hashtbl.iter", "Sim.Ivar.read" *)
  s_line : int;
}

type call = {
  c_segs : string list;  (* raw dotted path, e.g. ["Redo_log"; "append"] *)
  c_line : int;
  c_swallows : string list;
      (* exception constructor last-segments swallowed by enclosing
         handlers at this call site; "*" = a swallowing catch-all *)
}

(* One event in a function body, in evaluation order (approximate:
   branches concatenate, applications evaluate arguments left to
   right before the call). *)
type ev =
  | Call of call
  | Op of op * int
  | Src of source
  | Raise of string * int  (* canonical exception name, line *)

(* A swallowing wildcard handler and the calls its guarded body makes:
   the crash-swallow-transitive rule checks whether any of those calls
   may raise a crash exception. *)
type handler = { h_line : int; h_col : int; h_calls : call list }

type fn = {
  fn_id : string;  (* globally unique: "<rel>#<local dotted name>" *)
  fn_local : string;  (* name within the file, e.g. "prepare_timed" or "M.f" *)
  fn_rel : string;
  fn_line : int;
  fn_events : ev list;
  fn_handlers : handler list;
}

type file = {
  f_rel : string;
  f_module : string;  (* capitalised basename, e.g. "Memnode" *)
  f_dir : string;  (* directory part of rel, for same-dir resolution *)
  f_opens : string list;  (* last segment of each top-level [open], in order *)
  f_aliases : (string * string) list;  (* [module A = B] -> (A, last segment of B) *)
  f_fns : fn list;  (* source order *)
}

let fn_id ~rel local = rel ^ "#" ^ local

let fn_display f = Filename.remove_extension (Filename.basename f.fn_rel) ^ "." ^ f.fn_local

let module_of_rel rel = String.capitalize_ascii (Filename.remove_extension (Filename.basename rel))

(* ------------------------------------------------------------------ *)
(* Longident / pattern helpers                                          *)
(* ------------------------------------------------------------------ *)

let rec segs_of_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> segs_of_lid p @ [ s ]
  | Longident.Lapply (_, l) -> segs_of_lid l

(* (last module segment, final name), for the dotted matchers. *)
let dotted segs =
  match List.rev segs with
  | fn :: m :: _ -> Some (m, fn)
  | _ -> None

let rec is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_catch_all p
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

let bound_exn_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> Some txt
  | _ -> None

(* Does [body] re-raise the variable the handler bound? (The
   cleanup-and-reraise idiom: not a swallow.) *)
let reraises ~var body =
  let found = ref false in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
              let fn = Longident.last txt in
              if
                (fn = "raise" || fn = "raise_notrace" || fn = "raise_with_backtrace")
                && List.exists
                     (fun (_, a) ->
                       match a.pexp_desc with
                       | Pexp_ident { txt = Longident.Lident v; _ } -> v = var
                       | _ -> false)
                     args
              then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  iterator.expr iterator body;
  !found

let swallowing_case c p =
  c.pc_guard = None && is_catch_all p
  &&
  match bound_exn_var p with
  | Some var -> not (reraises ~var c.pc_rhs)
  | None -> true

(* Exception constructor names (last segments) a handler case stops
   from propagating; "*" = everything (a swallowing catch-all). A named
   pattern stops its exception whether or not the handler body
   re-raises something else; a catch-all that re-raises stops
   nothing. *)
let rec caught_names c p =
  match p.ppat_desc with
  | Ppat_or (a, b) -> caught_names c a @ caught_names c b
  | Ppat_construct ({ txt; _ }, _) -> [ Longident.last txt ]
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> caught_names c p
  | _ -> if swallowing_case c p then [ "*" ] else []

(* ------------------------------------------------------------------ *)
(* Fact matchers                                                        *)
(* ------------------------------------------------------------------ *)

(* The crash exceptions whose propagation the analysis tracks. Matched
   by last segment: [raise Crashed] inside memnode.ml and
   [raise Memnode.Crashed] elsewhere both mean Memnode.Crashed. *)
let crash_exn_of_segs segs =
  match List.rev segs with
  | "Crashed" :: _ -> Some "Memnode.Crashed"
  | "Aborted" :: _ -> Some "Txn.Aborted"
  | "Decode_error" :: _ -> Some "Codec.Decode_error"
  | _ -> None

let op_of_dotted = function
  | "Redo_log", "append" -> Some Append
  | "Redo_log", "decide_commit" -> Some Decide_commit
  | "Redo_log", "decide_abort" -> Some Decide_abort
  | "Lock_table", ("try_acquire" | "acquire_blocking") -> Some Acquire
  | "Lock_table", "release" -> Some Release
  | "Net", "transfer" -> Some Transfer
  | _ -> None

(* Mirrors the nondet-iteration / wallclock-rng matchers, plus the
   scheduler waits the blocking-under-lock rule cares about.
   [Sim.delay] and [Sim.Resource.use] are deliberately absent: service
   time is *supposed* to be spent holding locks (that is the simulated
   cost model); the dangerous waits are the ones that park a fiber
   until another fiber acts. *)
let source_of_dotted = function
  | ( "Hashtbl",
      (("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") as fn) ) ->
      Some (Nondet, "Hashtbl." ^ fn)
  | "Unix", (("gettimeofday" | "time") as fn) -> Some (Wallclock, "Unix." ^ fn)
  | "Random", fn -> Some (Wallclock, "Random." ^ fn)
  | "Ivar", "read" -> Some (Blocking, "Ivar.read")
  | "Mailbox", "recv" -> Some (Blocking, "Mailbox.recv")
  | "Semaphore", "acquire" -> Some (Blocking, "Semaphore.acquire")
  | "Mutex", "lock" -> Some (Blocking, "Mutex.lock")
  | "Sim", "suspend" -> Some (Blocking, "Sim.suspend")
  | _ -> None

(* A source under an allow directive (for its syntactic rule or for
   the interprocedural one) is vouched order-independent / justified:
   it must not seed transitive findings either. *)
let source_suppressed src kind ~line =
  let ids =
    match kind with
    | Nondet -> [ "nondet-iteration"; "transitive-nondet" ]
    | Wallclock -> [ "wallclock-rng"; "transitive-nondet" ]
    | Blocking -> [ "blocking-under-lock" ]
  in
  List.exists (fun rule -> Src_file.allowed src ~rule ~line) ids

(* ------------------------------------------------------------------ *)
(* Expression walk                                                      *)
(* ------------------------------------------------------------------ *)

type wctx = {
  src : Src_file.t;
  events : ev list ref;  (* reversed *)
  handlers : handler list ref;  (* reversed *)
  swallows : string list;  (* enclosing-handler context *)
  collectors : call list ref list;  (* active guarded-body call collectors *)
}

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let push ctx e = ctx.events := e :: !(ctx.events)

let record_source ctx ~loc segs =
  if not loc.Location.loc_ghost then
    match dotted segs with
    | Some d -> (
        match source_of_dotted d with
        | Some (kind, what) ->
            let line = line_of loc in
            if not (source_suppressed ctx.src kind ~line) then
              push ctx (Src { s_kind = kind; s_what = what; s_line = line })
        | None -> ())
    | None -> ()

let record_call ctx ~loc segs =
  let call = { c_segs = segs; c_line = line_of loc; c_swallows = ctx.swallows } in
  push ctx (Call call);
  List.iter (fun c -> c := call :: !c) ctx.collectors

let rec walk ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
      List.iter (fun (_, a) -> walk ctx a) args;
      note_apply ctx ~loc (segs_of_lid txt) args
  | Pexp_apply (head, args) ->
      List.iter (fun (_, a) -> walk ctx a) args;
      walk ctx head
  | Pexp_ident { txt; loc } -> record_source ctx ~loc (segs_of_lid txt)
  | Pexp_try (body, cases) -> walk_guarded ctx ~body ~cases ~exception_cases:false
  | Pexp_match (scrut, cases)
    when List.exists (fun c -> match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false) cases
    ->
      walk_guarded ctx ~body:scrut ~cases ~exception_cases:true
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk ctx vb.pvb_expr) vbs;
      walk ctx body
  | Pexp_sequence (a, b) ->
      walk ctx a;
      walk ctx b
  | Pexp_ifthenelse (c, t, f) ->
      walk ctx c;
      walk ctx t;
      Option.iter (walk ctx) f
  | Pexp_fun (_, default, _, body) ->
      Option.iter (walk ctx) default;
      walk ctx body
  | Pexp_function cases -> List.iter (walk_case ctx) cases
  | Pexp_match (scrut, cases) ->
      walk ctx scrut;
      List.iter (walk_case ctx) cases
  | _ ->
      (* Every other construct: iterate children in AST order. The
         nested iterator re-enters [walk], so context is preserved. *)
      let it = { Ast_iterator.default_iterator with expr = (fun _ e -> walk ctx e) } in
      Ast_iterator.default_iterator.expr it e

and walk_case ctx c =
  Option.iter (walk ctx) c.pc_guard;
  walk ctx c.pc_rhs

(* A [try body with cases] (or a match with [exception] cases): the
   body runs under the handlers' swallow context; a swallowing
   catch-all additionally records a handler entry with the calls the
   body makes. Handler right-hand sides run in the *outer* context —
   what they raise propagates normally. *)
and walk_guarded ctx ~body ~cases ~exception_cases =
  let relevant c =
    if exception_cases then
      match c.pc_lhs.ppat_desc with Ppat_exception p -> Some p | _ -> None
    else Some c.pc_lhs
  in
  let swallowed =
    List.concat_map (fun c -> match relevant c with Some p -> caught_names c p | None -> []) cases
  in
  let wildcard =
    List.find_map
      (fun c ->
        match relevant c with
        | Some p when swallowing_case c p -> Some p.ppat_loc
        | _ -> None)
      cases
  in
  let collector = ref [] in
  let ctx' =
    {
      ctx with
      swallows = swallowed @ ctx.swallows;
      collectors = (if wildcard <> None then collector :: ctx.collectors else ctx.collectors);
    }
  in
  walk ctx' body;
  (match wildcard with
  | Some loc ->
      ctx.handlers :=
        {
          h_line = line_of loc;
          h_col = loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol;
          h_calls = List.rev !collector;
        }
        :: !(ctx.handlers)
  | None -> ());
  List.iter (walk_case ctx) cases

and note_apply ctx ~loc segs args =
  let last = match List.rev segs with s :: _ -> s | [] -> "" in
  if last = "raise" || last = "raise_notrace" || last = "raise_with_backtrace" then
    List.iter
      (fun (_, a) ->
        match a.pexp_desc with
        | Pexp_construct ({ txt; _ }, _) -> (
            match crash_exn_of_segs (segs_of_lid txt) with
            | Some exn ->
                let blocked =
                  List.mem "*" ctx.swallows
                  || List.mem (Longident.last txt) ctx.swallows
                in
                if not blocked then push ctx (Raise (exn, line_of loc))
            | None -> ())
        | _ -> ())
      args
  else begin
    record_call ctx ~loc segs;
    (match dotted segs with
    | Some d -> (
        match op_of_dotted d with
        | Some op -> push ctx (Op (op, line_of loc))
        | None -> ())
    | None -> ());
    record_source ctx ~loc segs
  end

(* ------------------------------------------------------------------ *)
(* Structure walk                                                       *)
(* ------------------------------------------------------------------ *)

let pat_name p =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go p

let of_src (src : Src_file.t) =
  let rel = src.Src_file.rel in
  let f_module = module_of_rel rel in
  let opens = ref [] in
  let aliases = ref [] in
  let fns = ref [] in
  let summarize_binding ~modpath vb =
    match pat_name vb.pvb_pat with
    | None -> ()
    | Some name ->
        let local = String.concat "." (modpath @ [ name ]) in
        let events = ref [] and handlers = ref [] in
        let ctx = { src; events; handlers; swallows = []; collectors = [] } in
        walk ctx vb.pvb_expr;
        fns :=
          {
            fn_id = fn_id ~rel local;
            fn_local = local;
            fn_rel = rel;
            fn_line = line_of vb.pvb_loc;
            fn_events = List.rev !events;
            fn_handlers = List.rev !handlers;
          }
          :: !fns
  in
  let rec walk_module_expr ~modpath me =
    match me.pmod_desc with
    | Pmod_structure items -> walk_structure ~modpath items
    | Pmod_constraint (me, _) -> walk_module_expr ~modpath me
    | _ -> ()
  and walk_module_binding ~modpath mb =
    match mb.pmb_name.Location.txt with
    | None -> ()
    | Some n -> (
        match mb.pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> aliases := (n, Longident.last txt) :: !aliases
        | _ -> walk_module_expr ~modpath:(modpath @ [ n ]) mb.pmb_expr)
  and walk_structure ~modpath items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (summarize_binding ~modpath) vbs
        | Pstr_module mb -> walk_module_binding ~modpath mb
        | Pstr_recmodule mbs -> List.iter (walk_module_binding ~modpath) mbs
        | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
            opens := Longident.last txt :: !opens
        | _ -> ())
      items
  in
  walk_structure ~modpath:[] src.Src_file.ast;
  {
    f_rel = rel;
    f_module;
    f_dir = Filename.dirname rel;
    f_opens = List.rev !opens;
    f_aliases = List.rev !aliases;
    f_fns = List.rev !fns;
  }

let calls_of fn =
  List.filter_map (function Call c -> Some c | _ -> None) fn.fn_events
