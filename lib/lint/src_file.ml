(* A parsed source file: the Parsetree structure plus every comment
   with its line span. Comments drive two mechanisms: suppression
   directives ([(* lint: allow <rule> *)]) and the partial-stdlib
   rule's adjacent-invariant-comment escape hatch. *)

type comment = { c_text : string; c_start : int; c_end : int }

type t = {
  path : string;  (* filesystem path, for error messages *)
  rel : string;  (* repo-relative path used for rule scoping *)
  ast : Parsetree.structure;
  comments : comment list;
}

exception Parse_failure of { rel : string; message : string }

(* Parse with the compiler's own lexer/parser so comment extraction and
   string/nesting handling are exactly the language's. The lexer
   accumulates comments as a side effect of the parse; [Lexer.init]
   resets that state between files. Docstrings are kept as ordinary
   comments so [(** ... *)] participates in adjacency checks too. *)
let load ~rel path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Lexer.handle_docstrings := false;
      Lexer.init ();
      match Parse.implementation lexbuf with
      | ast ->
          let comments =
            List.map
              (fun (text, (loc : Location.t)) ->
                {
                  c_text = text;
                  c_start = loc.Location.loc_start.Lexing.pos_lnum;
                  c_end = loc.Location.loc_end.Lexing.pos_lnum;
                })
              (Lexer.comments ())
          in
          { path; rel; ast; comments }
      | exception exn ->
          let message =
            match Location.error_of_exn exn with
            | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
            | Some `Already_displayed | None -> Printexc.to_string exn
          in
          raise (Parse_failure { rel; message }))

(* ------------------------------------------------------------------ *)
(* Lint directives                                                      *)
(* ------------------------------------------------------------------ *)

type directive =
  | Allow of { ids : string list; from_line : int; to_line : int }
  | Allow_file of string list
  | Malformed of { line : int; reason : string }

let is_directive_comment text =
  let t = String.trim text in
  String.length t >= 5 && String.sub t 0 5 = "lint:"

(* Fixture expectation comments ([(* expect: rule *)]) are part of the
   self-test format, not the suppression grammar. *)
let is_expectation_comment text =
  let t = String.trim text in
  let has_prefix p =
    String.length t >= String.length p && String.sub t 0 (String.length p) = p
  in
  has_prefix "expect:" || has_prefix "expect-suppressed:"

let split_ids s =
  String.split_on_char ' ' (String.map (function ',' | '\t' -> ' ' | c -> c) s)
  |> List.filter (fun t -> t <> "")

(* Grammar: [lint: allow <rule> [<rule> ...]] suppresses matching
   findings on the comment's own lines and the line directly after it;
   [lint: allow-file <rule> [<rule> ...]] suppresses for the whole
   file. Anything else after [lint:] is malformed and becomes an
   unsuppressable finding — a typo must not silently disable nothing. *)
let directive_of_comment c =
  if not (is_directive_comment c.c_text) then None
  else
    let body = String.trim c.c_text in
    let body = String.trim (String.sub body 5 (String.length body - 5)) in
    let malformed reason = Some (Malformed { line = c.c_start; reason }) in
    match split_ids body with
    | "allow" :: ids when ids <> [] ->
        Some (Allow { ids; from_line = c.c_start; to_line = c.c_end + 1 })
    | "allow-file" :: ids when ids <> [] -> Some (Allow_file ids)
    | ("allow" | "allow-file") :: _ -> malformed "directive names no rule ids"
    | verb :: _ -> malformed (Printf.sprintf "unknown lint directive %S" verb)
    | [] -> malformed "empty lint directive"

let directives t = List.filter_map directive_of_comment t.comments

(* Is a finding of [rule] at [line] covered by an allow directive? *)
let allowed t ~rule ~line =
  List.exists
    (function
      | Allow { ids; from_line; to_line } ->
          line >= from_line && line <= to_line && List.mem rule ids
      | Allow_file ids -> List.mem rule ids
      | Malformed _ -> false)
    (directives t)

(* A prose comment ending on [line] or up to two lines above it.
   Directive and expectation comments don't count: an escape hatch must
   carry an actual justification. *)
let has_adjacent_comment t ~line =
  List.exists
    (fun c ->
      c.c_end >= line - 2 && c.c_start <= line
      && (not (is_directive_comment c.c_text))
      && not (is_expectation_comment c.c_text))
    t.comments
