(* One linter finding, anchored to a file:line:col span. Findings are
   value-carrying (never printed eagerly) so callers can render them as
   human diagnostics, JSON, or fixture expectations. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  rule : string;
  severity : severity;
  path : string;  (* repo-relative, '/'-separated *)
  line : int;  (* 1-based, like the compiler's own diagnostics *)
  col : int;  (* 0-based *)
  message : string;
  suppressed : bool;  (* covered by a [lint: allow] directive *)
}

let order a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp fmt d =
  Format.fprintf fmt "%s:%d:%d: %s [%s] %s%s" d.path d.line d.col
    (severity_to_string d.severity)
    d.rule d.message
    (if d.suppressed then " (suppressed)" else "")

let to_json d =
  Obs.Json.Obj
    [
      ("rule", Obs.Json.String d.rule);
      ("severity", Obs.Json.String (severity_to_string d.severity));
      ("path", Obs.Json.String d.path);
      ("line", Obs.Json.Int d.line);
      ("col", Obs.Json.Int d.col);
      ("message", Obs.Json.String d.message);
      ("suppressed", Obs.Json.Bool d.suppressed);
    ]
