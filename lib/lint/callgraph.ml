(* Call resolution over the per-file summaries: maps a raw dotted call
   path recorded by Summary to the [Summary.fn] it names, using only
   what the syntax gives us — file-as-module naming, top-level
   [module A = B] aliases, and top-level [open]s.

   Resolution strategy, in order:

   - ["f"] (unqualified): a top-level binding in the same file wins;
     otherwise the file's [open]s are tried newest-first (later opens
     shadow earlier ones).
   - ["M"; ...; "f"] (qualified): a nested module defined in the same
     file ([module M = struct let f ... end]) wins; otherwise the
     *last* module segment is alias-expanded through the caller's
     [module A = B] bindings and looked up as a file module. The
     last-segment strategy makes umbrella re-exports
     ([Sinfonia.Memnode.f]) resolve to the real memnode.ml without
     needing to model signatures.
   - When two files claim the same module name (chaos/workload.ml vs
     ycsb/workload.ml), a file in the caller's own directory wins;
     an ambiguous cross-directory reference stays unresolved rather
     than guessing.

   Unresolved calls contribute no facts — the analysis under-, never
   over-approximates through the call graph (DESIGN.md Sec. 17 lists
   the blind spots this buys). *)

type t = {
  files : Summary.file list;  (* rel-sorted *)
  fn_tbl : (string, Summary.fn) Hashtbl.t;  (* fn_id -> fn *)
  by_module : (string, Summary.file list) Hashtbl.t;
  (* per file: local dotted name -> fn_id, e.g. "prepare" / "M.f" *)
  locals : (string, (string, string) Hashtbl.t) Hashtbl.t;
}

let build (files : Summary.file list) =
  let files =
    List.sort (fun a b -> compare a.Summary.f_rel b.Summary.f_rel) files
  in
  let fn_tbl = Hashtbl.create 256 in
  let by_module = Hashtbl.create 64 in
  let locals = Hashtbl.create 64 in
  List.iter
    (fun (f : Summary.file) ->
      let local = Hashtbl.create 16 in
      List.iter
        (fun (fn : Summary.fn) ->
          Hashtbl.replace fn_tbl fn.fn_id fn;
          (* later bindings shadow earlier ones, as in the language *)
          Hashtbl.replace local fn.fn_local fn.fn_id)
        f.f_fns;
      Hashtbl.replace locals f.f_rel local;
      let prev = Option.value (Hashtbl.find_opt by_module f.f_module) ~default:[] in
      Hashtbl.replace by_module f.f_module (prev @ [ f ]))
    files;
  { files; fn_tbl; by_module; locals }

let fn t id = Hashtbl.find_opt t.fn_tbl id

(* Expand [module A = B] one step at a time; the bound keeps alias
   cycles ([module A = B] + [module B = A]) from looping. *)
let expand_alias (file : Summary.file) m =
  let rec go m depth =
    if depth = 0 then m
    else
      match List.assoc_opt m file.f_aliases with
      | Some m' -> go m' (depth - 1)
      | None -> m
  in
  go m 4

let local_fn t rel name =
  match Hashtbl.find_opt t.locals rel with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl name

(* The file that module name [m] denotes, seen from [dir]: same
   directory first, then a unique global match. *)
let file_of_module t ~dir m =
  match Hashtbl.find_opt t.by_module m with
  | None -> None
  | Some [ f ] -> Some f
  | Some fs -> List.find_opt (fun (f : Summary.file) -> f.f_dir = dir) fs

let resolve t (file : Summary.file) (call : Summary.call) =
  match List.rev call.c_segs with
  | [] -> None
  | [ name ] -> (
      match local_fn t file.f_rel name with
      | Some id -> Some id
      | None ->
          List.find_map
            (fun o ->
              let m = expand_alias file o in
              match file_of_module t ~dir:file.f_dir m with
              | Some target -> local_fn t target.f_rel name
              | None -> None)
            (List.rev file.f_opens))
  | name :: rev_mods -> (
      let nested = String.concat "." (List.rev (name :: rev_mods)) in
      match local_fn t file.f_rel nested with
      | Some id -> Some id
      | None -> (
          (* last module segment is [hd rev_mods] by construction *)
          let m = expand_alias file (List.hd rev_mods) in
          match file_of_module t ~dir:file.f_dir m with
          | Some target -> local_fn t target.f_rel name
          | None -> None))

(* Resolved edges of one function, in event order (duplicates kept:
   sequence splicing needs every call site). *)
let edges t (file : Summary.file) (fn : Summary.fn) =
  List.filter_map
    (fun c ->
      match resolve t file c with Some id -> Some (c, id) | None -> None)
    (Summary.calls_of fn)
