(* Walks source trees and runs the two-phase analysis over the loaded
   program: per-expression rules in one [Ast_iterator] pass per file,
   then the whole-program rules over the interprocedural context
   (Summary facts propagated to fixpoint by Interproc). Suppression
   directives apply to both kinds; the result renders as human
   diagnostics or an Obs.Json report. *)

type result = {
  files_scanned : int;
  parse_errors : (string * string) list;  (* rel path, message *)
  findings : Diag.t list;  (* sorted; includes suppressed ones *)
  rules_run : Rules.t list;
  interproc : Interproc.stats option;  (* None when nothing parsed *)
  wall_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Target discovery                                                     *)
(* ------------------------------------------------------------------ *)

(* Fixture trees hold deliberately-bad sources for the self-test; they
   are linted only via [check_fixtures], never on a repo walk. *)
let skip_dir name =
  name = "lint_fixtures"
  || String.length name > 0
     && (name.[0] = '.' || name.[0] = '_')

let is_ml name =
  Filename.check_suffix name ".ml"

(* Depth-first, name-sorted walk so diagnostics and reports list files
   in a stable order on every run. *)
let rec files_under path rel =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           let sub = Filename.concat path name in
           let sub_rel = if rel = "" then name else rel ^ "/" ^ name in
           if Sys.is_directory sub then if skip_dir name then [] else files_under sub sub_rel
           else if is_ml name then [ (sub, sub_rel) ]
           else [])
  else if is_ml path then [ (path, rel) ]
  else []

let strip_dot_slash p =
  if String.length p >= 2 && String.sub p 0 2 = "./" then String.sub p 2 (String.length p - 2)
  else p

(* Expand CLI targets (files or directories, relative to [root]) into
   (filesystem path, repo-relative path) pairs. *)
let expand_targets ~root targets =
  List.concat_map
    (fun target ->
      let rel = strip_dot_slash target in
      files_under (Filename.concat root target) rel)
    targets

(* ------------------------------------------------------------------ *)
(* Linting a program                                                    *)
(* ------------------------------------------------------------------ *)

let directive_rule = "lint-directive"

(* Findings about the lint comments themselves (typos, unknown rule
   ids). Never suppressable: a directive that does nothing must not be
   able to hide itself. *)
let directive_findings (src : Src_file.t) =
  List.concat_map
    (fun d ->
      let bad ~line reason =
        [
          {
            Diag.rule = directive_rule;
            severity = Diag.Error;
            path = src.Src_file.rel;
            line;
            col = 0;
            message = reason;
            suppressed = false;
          };
        ]
      in
      let unknown ~line ids =
        List.concat_map
          (fun id ->
            if List.mem id Rules.ids then []
            else bad ~line (Printf.sprintf "unknown rule id %S in lint directive" id))
          ids
      in
      match d with
      | Src_file.Malformed { line; reason } -> bad ~line reason
      | Src_file.Allow { ids; from_line; _ } -> unknown ~line:from_line ids
      | Src_file.Allow_file ids -> unknown ~line:1 ids)
    (Src_file.directives src)

(* Lint a set of already-parsed files as one program: the per-file
   expression pass for [Expr] rules, then the interprocedural pass for
   [Global] rules. With [ignore_scope] (fixture self-tests) path
   scoping is bypassed for both kinds and the Global rules drop their
   internal scope filters too. *)
let lint_program ?(ignore_scope = false) ~rules (srcs : Src_file.t list) =
  let summaries = List.map Summary.of_src srcs in
  let ip = Interproc.build ~honor_scope:(not ignore_scope) summaries in
  let srcs_by_rel = Hashtbl.create 16 in
  List.iter (fun (s : Src_file.t) -> Hashtbl.replace srcs_by_rel s.Src_file.rel s) srcs;
  let findings = ref [] in
  let add (r : Rules.t) ~rel ~line ~col msg =
    let suppressed =
      match Hashtbl.find_opt srcs_by_rel rel with
      | Some src -> Src_file.allowed src ~rule:r.Rules.id ~line
      | None -> false
    in
    findings :=
      {
        Diag.rule = r.Rules.id;
        severity = r.Rules.severity;
        path = rel;
        line;
        col;
        message = msg;
        suppressed;
      }
      :: !findings
  in
  List.iter
    (fun (src : Src_file.t) ->
      let rel = src.Src_file.rel in
      let active =
        List.filter
          (fun (r : Rules.t) ->
            match r.Rules.kind with
            | Rules.Expr _ -> ignore_scope || Rules.in_scope r rel
            | Rules.Global _ -> false)
          rules
      in
      let ctx = { Rules.rel; src } in
      let emit (r : Rules.t) ~loc msg =
        let line = loc.Location.loc_start.Lexing.pos_lnum in
        let col = loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol in
        add r ~rel ~line ~col msg
      in
      let iterator =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              List.iter
                (fun (r : Rules.t) ->
                  match r.Rules.kind with
                  | Rules.Expr check -> check ctx ~emit:(emit r) e
                  | Rules.Global _ -> ())
                active;
              Ast_iterator.default_iterator.expr it e);
        }
      in
      iterator.structure iterator src.Src_file.ast;
      findings := directive_findings src @ !findings)
    srcs;
  List.iter
    (fun (r : Rules.t) ->
      match r.Rules.kind with
      | Rules.Global check ->
          check ip ~emit:(fun ~rel ~line ~col msg ->
              if ignore_scope || Rules.in_scope r rel then add r ~rel ~line ~col msg)
      | Rules.Expr _ -> ())
    rules;
  (List.sort Diag.order !findings, Interproc.stats ip)

let lint_source ?(ignore_scope = false) ~rules (src : Src_file.t) =
  fst (lint_program ~ignore_scope ~rules [ src ])

let lint_files ?(rules = Rules.all) ?(ignore_scope = false) targets =
  (* Wall-clock here is observability about the linter itself (the CI
     budget gate and BENCH_lint.json), not simulated behaviour — the
     report would be meaningless on Sim time. *)
  (* lint: allow wallclock-rng *)
  let t0 = Unix.gettimeofday () in
  let parse_errors = ref [] in
  let srcs = ref [] in
  List.iter
    (fun (path, rel) ->
      match Src_file.load ~rel path with
      | src -> srcs := src :: !srcs
      | exception Src_file.Parse_failure { rel; message } ->
          parse_errors := (rel, message) :: !parse_errors)
    targets;
  let findings, stats = lint_program ~ignore_scope ~rules (List.rev !srcs) in
  (* lint: allow wallclock-rng *)
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  {
    files_scanned = List.length targets;
    parse_errors = List.rev !parse_errors;
    findings;
    rules_run = rules;
    interproc = Some stats;
    wall_ms;
  }

let unsuppressed t = List.filter (fun (d : Diag.t) -> not d.Diag.suppressed) t.findings

let suppressed_count t =
  List.length (List.filter (fun (d : Diag.t) -> d.Diag.suppressed) t.findings)

(* ------------------------------------------------------------------ *)
(* Report                                                               *)
(* ------------------------------------------------------------------ *)

(* BENCH_lint.json-shaped report through the repo's own JSON codec so
   the suppression count, the call-graph shape, and the fixpoint cost
   are trackable across PRs like any other observability artifact.
   Schema 2 adds the interprocedural block and wall time. *)
let to_json t =
  let per_rule (r : Rules.t) =
    let mine = List.filter (fun (d : Diag.t) -> d.Diag.rule = r.Rules.id) t.findings in
    let live = List.filter (fun (d : Diag.t) -> not d.Diag.suppressed) mine in
    Obs.Json.Obj
      [
        ("id", Obs.Json.String r.Rules.id);
        ("severity", Obs.Json.String (Diag.severity_to_string r.Rules.severity));
        ("invariant", Obs.Json.String r.Rules.doc);
        ("findings", Obs.Json.Int (List.length live));
        ("suppressed", Obs.Json.Int (List.length mine - List.length live));
      ]
  in
  let interproc =
    match t.interproc with
    | None -> Obs.Json.Null
    | Some (s : Interproc.stats) ->
        Obs.Json.Obj
          [
            ("functions", Obs.Json.Int s.Interproc.st_functions);
            ("calls", Obs.Json.Int s.Interproc.st_calls);
            ("resolved_calls", Obs.Json.Int s.Interproc.st_resolved);
            ("unresolved_calls", Obs.Json.Int s.Interproc.st_unresolved);
            ("handlers", Obs.Json.Int s.Interproc.st_handlers);
            ("reach_passes", Obs.Json.Int s.Interproc.st_reach_passes);
            ("raise_passes", Obs.Json.Int s.Interproc.st_raise_passes);
            ("seq_passes", Obs.Json.Int s.Interproc.st_seq_passes);
            ("seq_truncated", Obs.Json.Int s.Interproc.st_seq_truncated);
          ]
  in
  Obs.Json.Obj
    [
      ("name", Obs.Json.String "lint");
      ("schema_version", Obs.Json.Int 2);
      ("rules_run", Obs.Json.Int (List.length t.rules_run));
      ("files_scanned", Obs.Json.Int t.files_scanned);
      ("findings", Obs.Json.Int (List.length (unsuppressed t)));
      ("suppressions", Obs.Json.Int (suppressed_count t));
      ("parse_errors", Obs.Json.Int (List.length t.parse_errors));
      ("interproc", interproc);
      ("wall_ms", Obs.Json.Float t.wall_ms);
      ("rules", Obs.Json.List (List.map per_rule t.rules_run));
      ("diagnostics", Obs.Json.List (List.map Diag.to_json (unsuppressed t)));
    ]

(* ------------------------------------------------------------------ *)
(* Fixture self-test                                                    *)
(* ------------------------------------------------------------------ *)

(* Fixtures encode their own expected outcome: [(* expect: rule *)] on
   the line a finding must anchor to, [(* expect-suppressed: rule *)]
   where an allow directive must have downgraded one. Every fixture is
   checked for exact (rule, line) set equality, so a rule that drifts
   (fires elsewhere, or goes quiet) fails the self-test.

   Layout: [.ml] files directly under the fixture dir are linted one
   at a time with scoping ignored (they exercise matchers, not path
   prefixes). Each sub-directory is linted as one whole program with
   real scoping, the file's path inside the tree standing in for its
   repo-relative path — so a multi-file tree can exercise cross-module
   resolution and the scope behaviour of the Global rules. *)
let fixture_expectations (src : Src_file.t) =
  let parse prefix (c : Src_file.comment) =
    let t = String.trim c.Src_file.c_text in
    let lp = String.length prefix in
    if String.length t > lp && String.sub t 0 lp = prefix then
      Some (String.trim (String.sub t lp (String.length t - lp)), c.Src_file.c_start)
    else None
  in
  let expected = List.filter_map (parse "expect:") src.Src_file.comments in
  let expected_suppressed =
    List.filter_map (parse "expect-suppressed:") src.Src_file.comments
  in
  (expected, expected_suppressed)

let check_fixtures ?(rules = Rules.all) dir =
  let failures = ref [] in
  let fail rel fmt =
    Format.kasprintf (fun m -> failures := (rel ^ ": " ^ m) :: !failures) fmt
  in
  let pp_set set =
    String.concat ", "
      (List.map (fun (rule, line) -> Printf.sprintf "%s@%d" rule line) set)
  in
  let check_against ~label (src : Src_file.t) (findings : Diag.t list) =
    let mine = List.filter (fun (d : Diag.t) -> d.Diag.path = src.Src_file.rel) findings in
    let observed select =
      List.filter select mine
      |> List.map (fun (d : Diag.t) -> (d.Diag.rule, d.Diag.line))
      |> List.sort compare
    in
    let expected, expected_suppressed = fixture_expectations src in
    let check kind expected actual =
      if List.sort compare expected <> actual then
        fail label "%s findings mismatch: expected {%s} but the linter reported {%s}" kind
          (pp_set (List.sort compare expected))
          (pp_set actual)
    in
    check "unsuppressed" expected (observed (fun d -> not d.Diag.suppressed));
    check "suppressed" expected_suppressed (observed (fun d -> d.Diag.suppressed))
  in
  let entries = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
  let base = Filename.basename dir in
  let top_files = List.filter (fun n -> is_ml n) entries in
  let subdirs =
    List.filter
      (fun n -> Sys.is_directory (Filename.concat dir n) && not (skip_dir n))
      entries
  in
  if top_files = [] && subdirs = [] then
    failures := [ "no fixture files found under " ^ dir ];
  List.iter
    (fun name ->
      let rel = base ^ "/" ^ name in
      match Src_file.load ~rel (Filename.concat dir name) with
      | exception Src_file.Parse_failure { message; _ } ->
          fail rel "fixture does not parse: %s" message
      | src -> check_against ~label:rel src (lint_source ~ignore_scope:true ~rules src))
    top_files;
  List.iter
    (fun sub ->
      let tree = Filename.concat dir sub in
      let files = files_under tree "" in
      let srcs = ref [] in
      List.iter
        (fun (path, rel) ->
          match Src_file.load ~rel path with
          | src -> srcs := src :: !srcs
          | exception Src_file.Parse_failure { message; _ } ->
              fail (sub ^ "/" ^ rel) "fixture does not parse: %s" message)
        files;
      let srcs = List.rev !srcs in
      let findings, _ = lint_program ~ignore_scope:false ~rules srcs in
      List.iter
        (fun (src : Src_file.t) ->
          check_against ~label:(sub ^ "/" ^ src.Src_file.rel) src findings)
        srcs)
    subdirs;
  List.rev !failures
