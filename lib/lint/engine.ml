(* Walks source trees, runs every in-scope rule over each file in one
   Ast_iterator pass, applies suppression directives, and renders the
   result as human diagnostics or an Obs.Json report. *)

type result = {
  files_scanned : int;
  parse_errors : (string * string) list;  (* rel path, message *)
  findings : Diag.t list;  (* sorted; includes suppressed ones *)
  rules_run : Rules.t list;
}

(* ------------------------------------------------------------------ *)
(* Target discovery                                                     *)
(* ------------------------------------------------------------------ *)

(* Fixture trees hold deliberately-bad sources for the self-test; they
   are linted only via [check_fixtures], never on a repo walk. *)
let skip_dir name =
  name = "lint_fixtures"
  || String.length name > 0
     && (name.[0] = '.' || name.[0] = '_')

let is_ml name =
  Filename.check_suffix name ".ml"

(* Depth-first, name-sorted walk so diagnostics and reports list files
   in a stable order on every run. *)
let rec files_under path rel =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           let sub = Filename.concat path name in
           let sub_rel = if rel = "" then name else rel ^ "/" ^ name in
           if Sys.is_directory sub then if skip_dir name then [] else files_under sub sub_rel
           else if is_ml name then [ (sub, sub_rel) ]
           else [])
  else if is_ml path then [ (path, rel) ]
  else []

let strip_dot_slash p =
  if String.length p >= 2 && String.sub p 0 2 = "./" then String.sub p 2 (String.length p - 2)
  else p

(* Expand CLI targets (files or directories, relative to [root]) into
   (filesystem path, repo-relative path) pairs. *)
let expand_targets ~root targets =
  List.concat_map
    (fun target ->
      let rel = strip_dot_slash target in
      files_under (Filename.concat root target) rel)
    targets

(* ------------------------------------------------------------------ *)
(* Linting one file                                                     *)
(* ------------------------------------------------------------------ *)

let directive_rule = "lint-directive"

(* Findings about the lint comments themselves (typos, unknown rule
   ids). Never suppressable: a directive that does nothing must not be
   able to hide itself. *)
let directive_findings (src : Src_file.t) =
  List.concat_map
    (fun d ->
      let bad ~line reason =
        [
          {
            Diag.rule = directive_rule;
            severity = Diag.Error;
            path = src.Src_file.rel;
            line;
            col = 0;
            message = reason;
            suppressed = false;
          };
        ]
      in
      let unknown ~line ids =
        List.concat_map
          (fun id ->
            if List.mem id Rules.ids then []
            else bad ~line (Printf.sprintf "unknown rule id %S in lint directive" id))
          ids
      in
      match d with
      | Src_file.Malformed { line; reason } -> bad ~line reason
      | Src_file.Allow { ids; from_line; _ } -> unknown ~line:from_line ids
      | Src_file.Allow_file ids -> unknown ~line:1 ids)
    (Src_file.directives src)

let lint_source ?(ignore_scope = false) ~rules (src : Src_file.t) =
  let rel = src.Src_file.rel in
  let active = List.filter (fun r -> ignore_scope || Rules.in_scope r rel) rules in
  let ctx = { Rules.rel; src } in
  let findings = ref [] in
  let emit (r : Rules.t) ~loc msg =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col = loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol in
    findings :=
      {
        Diag.rule = r.Rules.id;
        severity = r.Rules.severity;
        path = rel;
        line;
        col;
        message = msg;
        suppressed = Src_file.allowed src ~rule:r.Rules.id ~line;
      }
      :: !findings
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          List.iter (fun r -> r.Rules.check ctx ~emit:(emit r) e) active;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  iterator.structure iterator src.Src_file.ast;
  List.sort Diag.order (directive_findings src @ !findings)

let lint_files ?(rules = Rules.all) ?(ignore_scope = false) targets =
  let parse_errors = ref [] in
  let findings = ref [] in
  List.iter
    (fun (path, rel) ->
      match Src_file.load ~rel path with
      | src -> findings := lint_source ~ignore_scope ~rules src @ !findings
      | exception Src_file.Parse_failure { rel; message } ->
          parse_errors := (rel, message) :: !parse_errors)
    targets;
  {
    files_scanned = List.length targets;
    parse_errors = List.rev !parse_errors;
    findings = List.sort Diag.order !findings;
    rules_run = rules;
  }

let unsuppressed t = List.filter (fun (d : Diag.t) -> not d.Diag.suppressed) t.findings

let suppressed_count t =
  List.length (List.filter (fun (d : Diag.t) -> d.Diag.suppressed) t.findings)

(* ------------------------------------------------------------------ *)
(* Report                                                               *)
(* ------------------------------------------------------------------ *)

(* BENCH_lint.json-shaped report through the repo's own JSON codec so
   the suppression count is trackable across PRs like any other
   observability artifact. *)
let to_json t =
  let per_rule (r : Rules.t) =
    let mine = List.filter (fun (d : Diag.t) -> d.Diag.rule = r.Rules.id) t.findings in
    let live = List.filter (fun (d : Diag.t) -> not d.Diag.suppressed) mine in
    Obs.Json.Obj
      [
        ("id", Obs.Json.String r.Rules.id);
        ("severity", Obs.Json.String (Diag.severity_to_string r.Rules.severity));
        ("invariant", Obs.Json.String r.Rules.doc);
        ("findings", Obs.Json.Int (List.length live));
        ("suppressed", Obs.Json.Int (List.length mine - List.length live));
      ]
  in
  Obs.Json.Obj
    [
      ("name", Obs.Json.String "lint");
      ("schema_version", Obs.Json.Int 1);
      ("rules_run", Obs.Json.Int (List.length t.rules_run));
      ("files_scanned", Obs.Json.Int t.files_scanned);
      ("findings", Obs.Json.Int (List.length (unsuppressed t)));
      ("suppressions", Obs.Json.Int (suppressed_count t));
      ("parse_errors", Obs.Json.Int (List.length t.parse_errors));
      ("rules", Obs.Json.List (List.map per_rule t.rules_run));
      ("diagnostics", Obs.Json.List (List.map Diag.to_json (unsuppressed t)));
    ]

(* ------------------------------------------------------------------ *)
(* Fixture self-test                                                    *)
(* ------------------------------------------------------------------ *)

(* Fixtures encode their own expected outcome: [(* expect: rule *)] on
   the line a finding must anchor to, [(* expect-suppressed: rule *)]
   where an allow directive must have downgraded one. Every fixture is
   checked for exact (rule, line) set equality, so a rule that drifts
   (fires elsewhere, or goes quiet) fails the self-test. Scoping is
   ignored: fixtures exercise matchers, not path prefixes. *)
let fixture_expectations (src : Src_file.t) =
  let parse prefix (c : Src_file.comment) =
    let t = String.trim c.Src_file.c_text in
    let lp = String.length prefix in
    if String.length t > lp && String.sub t 0 lp = prefix then
      Some (String.trim (String.sub t lp (String.length t - lp)), c.Src_file.c_start)
    else None
  in
  let expected = List.filter_map (parse "expect:") src.Src_file.comments in
  let expected_suppressed =
    List.filter_map (parse "expect-suppressed:") src.Src_file.comments
  in
  (expected, expected_suppressed)

let check_fixtures ?(rules = Rules.all) dir =
  let failures = ref [] in
  let fail rel fmt =
    Format.kasprintf (fun m -> failures := (rel ^ ": " ^ m) :: !failures) fmt
  in
  let pp_set set =
    String.concat ", "
      (List.map (fun (rule, line) -> Printf.sprintf "%s@%d" rule line) set)
  in
  let files = files_under dir (Filename.basename dir) in
  if files = [] then failures := [ "no fixture files found under " ^ dir ];
  List.iter
    (fun (path, rel) ->
      match Src_file.load ~rel path with
      | exception Src_file.Parse_failure { message; _ } ->
          fail rel "fixture does not parse: %s" message
      | src ->
          let findings = lint_source ~ignore_scope:true ~rules src in
          let observed select =
            List.filter select findings
            |> List.map (fun (d : Diag.t) -> (d.Diag.rule, d.Diag.line))
            |> List.sort compare
          in
          let expected, expected_suppressed = fixture_expectations src in
          let check kind expected actual =
            if List.sort compare expected <> actual then
              fail rel "%s findings mismatch: expected {%s} but the linter reported {%s}" kind
                (pp_set (List.sort compare expected))
                (pp_set actual)
          in
          check "unsuppressed" expected (observed (fun d -> not d.Diag.suppressed));
          check "suppressed" expected_suppressed (observed (fun d -> d.Diag.suppressed)))
    files;
  List.rev !failures
