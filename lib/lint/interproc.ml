(* Phase 2: propagate the per-function facts from Summary to a
   fixpoint over the Callgraph, producing the interprocedural context
   the Global rules in Rules consume:

   - [reach]: which nondet / wall-clock / scheduler-blocking sources a
     function can hit through any call chain, with a next-hop witness
     per source so diagnostics can print the chain;
   - [raises]: which crash exceptions a function may let escape —
     propagation stops at a call site whose enclosing handlers would
     swallow that exception;
   - [seq]: the function's protocol-op sequence with callee sequences
     spliced in at call sites (a bounded number of passes, so splices
     see chains [seq_passes] calls deep), each splice tagged with an
     instance id so the state-machine rules can tell an emergent
     cross-call violation from one that is internal to a single callee
     (the callee's own scan already reports those).

   Facts only ever grow (set union with monotone additions), functions
   are visited in sorted order, and per-function fact counts are
   capped, so the fixpoint terminates deterministically even on
   recursive cycles. *)

type via = Direct | Via of string  (* fn_id of the next hop *)

type reach = {
  r_kind : Summary.source_kind;
  r_what : string;
  r_rel : string;  (* file the source lives in *)
  r_line : int;
  r_via : via;
}

type raise_fact = { x_exn : string; x_rel : string; x_line : int; x_via : via }

(* One element of a spliced protocol-op sequence. *)
type sop = {
  so_kind : skind;
  so_what : string;
  so_line : int;  (* in this function's file; call-site line if spliced *)
  so_inst : int;  (* 0 = direct; spliced ops share their splice's id *)
  so_via : string option;  (* immediate callee fn_id if spliced *)
}

and skind = Proto of Summary.op | Block

type stats = {
  st_files : int;
  st_functions : int;
  st_calls : int;
  st_resolved : int;
  st_unresolved : int;
  st_handlers : int;
  st_reach_passes : int;
  st_raise_passes : int;
  st_seq_passes : int;
  st_seq_truncated : int;
}

type t = {
  graph : Callgraph.t;
  files_by_rel : (string, Summary.file) Hashtbl.t;
  fns : Summary.fn list;  (* sorted by fn_id *)
  edges : (string, (Summary.call * string) list) Hashtbl.t;
  reach_tbl : (string, reach list) Hashtbl.t;
  raise_tbl : (string, raise_fact list) Hashtbl.t;
  seq_tbl : (string, sop list) Hashtbl.t;
  honor_scope : bool;  (* false under --fixtures / single-file self-tests *)
  stats : stats;
}

let reach_cap = 32
let seq_cap = 200
let seq_passes = 4
let fix_cap = 64

let direct_reach (fn : Summary.fn) =
  List.filter_map
    (function
      | Summary.Src s ->
          Some
            {
              r_kind = s.Summary.s_kind;
              r_what = s.Summary.s_what;
              r_rel = fn.Summary.fn_rel;
              r_line = s.Summary.s_line;
              r_via = Direct;
            }
      | _ -> None)
    fn.Summary.fn_events

let direct_raises (fn : Summary.fn) =
  List.filter_map
    (function
      | Summary.Raise (exn, line) ->
          Some { x_exn = exn; x_rel = fn.Summary.fn_rel; x_line = line; x_via = Direct }
      | _ -> None)
    fn.Summary.fn_events

(* "Memnode.Crashed" -> "Crashed", the constructor name handlers match. *)
let exn_last exn =
  match String.rindex_opt exn '.' with
  | Some i -> String.sub exn (i + 1) (String.length exn - i - 1)
  | None -> exn

let call_swallows (c : Summary.call) exn =
  List.mem "*" c.Summary.c_swallows || List.mem (exn_last exn) c.Summary.c_swallows

(* Generic monotone fixpoint: [step] adds callee facts to a caller's
   set; iterate until nothing changes (or the pass cap, which only a
   pathological graph would hit — the cap is reported in stats). *)
let fixpoint ~fns ~edges ~tbl ~key ~lift =
  let passes = ref 0 and changed = ref true in
  while !changed && !passes < fix_cap do
    changed := false;
    incr passes;
    List.iter
      (fun (fn : Summary.fn) ->
        let mine = ref (Hashtbl.find tbl fn.Summary.fn_id) in
        let keys = ref (List.map key !mine) in
        List.iter
          (fun (call, callee) ->
            List.iter
              (fun fact ->
                match lift call callee fact with
                | Some fact' ->
                    let k = key fact' in
                    if (not (List.mem k !keys)) && List.length !mine < reach_cap then begin
                      mine := !mine @ [ fact' ];
                      keys := k :: !keys;
                      changed := true
                    end
                | None -> ())
              (Hashtbl.find tbl callee))
          (Option.value (Hashtbl.find_opt edges fn.Summary.fn_id) ~default:[]);
        Hashtbl.replace tbl fn.Summary.fn_id !mine)
      fns
  done;
  !passes

let build ?(honor_scope = true) (files : Summary.file list) =
  let graph = Callgraph.build files in
  let files = graph.Callgraph.files in
  let files_by_rel = Hashtbl.create 64 in
  List.iter (fun (f : Summary.file) -> Hashtbl.replace files_by_rel f.f_rel f) files;
  let fns =
    List.concat_map (fun (f : Summary.file) -> f.Summary.f_fns) files
    |> List.sort (fun a b -> compare a.Summary.fn_id b.Summary.fn_id)
  in
  let edges = Hashtbl.create 256 in
  let calls = ref 0 and resolved = ref 0 in
  List.iter
    (fun (f : Summary.file) ->
      List.iter
        (fun (fn : Summary.fn) ->
          let es = Callgraph.edges graph f fn in
          calls := !calls + List.length (Summary.calls_of fn);
          resolved := !resolved + List.length es;
          Hashtbl.replace edges fn.Summary.fn_id es)
        f.f_fns)
    files;
  (* --- reach --- *)
  let reach_tbl = Hashtbl.create 256 in
  List.iter (fun fn -> Hashtbl.replace reach_tbl fn.Summary.fn_id (direct_reach fn)) fns;
  let reach_passes =
    fixpoint ~fns ~edges ~tbl:reach_tbl
      ~key:(fun r -> (r.r_what, r.r_rel, r.r_line))
      ~lift:(fun _call callee r -> Some { r with r_via = Via callee })
  in
  (* --- raises --- *)
  let raise_tbl = Hashtbl.create 256 in
  List.iter (fun fn -> Hashtbl.replace raise_tbl fn.Summary.fn_id (direct_raises fn)) fns;
  let raise_passes =
    fixpoint ~fns ~edges ~tbl:raise_tbl
      ~key:(fun x -> (x.x_exn, x.x_rel, x.x_line))
      ~lift:(fun call callee x ->
        if call_swallows call x.x_exn then None else Some { x with x_via = Via callee })
  in
  (* --- spliced op sequences --- *)
  let seq_tbl = Hashtbl.create 256 in
  let truncated = ref 0 in
  let inst = ref 0 in
  let build_seq prev (fn : Summary.fn) =
    let out = ref [] and n = ref 0 in
    let push op = if !n < seq_cap then begin out := op :: !out; incr n end else incr truncated in
    List.iter
      (function
        | Summary.Op (op, line) ->
            push
              { so_kind = Proto op; so_what = Summary.op_to_string op; so_line = line;
                so_inst = 0; so_via = None }
        | Summary.Src s when s.Summary.s_kind = Summary.Blocking ->
            push
              { so_kind = Block; so_what = s.Summary.s_what; so_line = s.Summary.s_line;
                so_inst = 0; so_via = None }
        | Summary.Call c -> (
            match
              List.assq_opt c
                (Option.value (Hashtbl.find_opt edges fn.Summary.fn_id) ~default:[])
            with
            | Some callee ->
                let spliced = Option.value (Hashtbl.find_opt prev callee) ~default:[] in
                if spliced <> [] then begin
                  incr inst;
                  let id = !inst in
                  List.iter
                    (fun op ->
                      push { op with so_line = c.Summary.c_line; so_inst = id; so_via = Some callee })
                    spliced
                end
            | None -> ())
        | _ -> ())
      fn.Summary.fn_events;
    List.rev !out
  in
  for _pass = 1 to seq_passes do
    let prev = Hashtbl.copy seq_tbl in
    List.iter (fun fn -> Hashtbl.replace seq_tbl fn.Summary.fn_id (build_seq prev fn)) fns
  done;
  let handlers =
    List.fold_left (fun acc fn -> acc + List.length fn.Summary.fn_handlers) 0 fns
  in
  {
    graph;
    files_by_rel;
    fns;
    edges;
    reach_tbl;
    raise_tbl;
    seq_tbl;
    honor_scope;
    stats =
      {
        st_files = List.length files;
        st_functions = List.length fns;
        st_calls = !calls;
        st_resolved = !resolved;
        st_unresolved = !calls - !resolved;
        st_handlers = handlers;
        st_reach_passes = reach_passes;
        st_raise_passes = raise_passes;
        st_seq_passes = seq_passes;
        st_seq_truncated = !truncated;
      };
  }

(* ------------------------------------------------------------------ *)
(* Accessors for the rules                                              *)
(* ------------------------------------------------------------------ *)

let functions t = t.fns

let honors_scope t = t.honor_scope

let stats t = t.stats

let file_of t rel = Hashtbl.find_opt t.files_by_rel rel

let fn t id = Callgraph.fn t.graph id

let edges_of t id = Option.value (Hashtbl.find_opt t.edges id) ~default:[]

let reach_of t id = Option.value (Hashtbl.find_opt t.reach_tbl id) ~default:[]

let raises_of t id = Option.value (Hashtbl.find_opt t.raise_tbl id) ~default:[]

let seq_of t id = Option.value (Hashtbl.find_opt t.seq_tbl id) ~default:[]

let resolve_from t ~rel call =
  match file_of t rel with
  | Some file -> Callgraph.resolve t.graph file call
  | None -> None

let display t id =
  match fn t id with Some f -> Summary.fn_display f | None -> id

(* The call chain from [id] to the given reach fact, as display names
   ending at the function holding the source. *)
let reach_chain t id (target : reach) =
  let key r = (r.r_what, r.r_rel, r.r_line) in
  let rec go id seen acc =
    if List.length acc > 8 || List.mem id seen then List.rev acc
    else
      match List.find_opt (fun r -> key r = key target) (reach_of t id) with
      | None -> List.rev acc
      | Some { r_via = Direct; _ } -> List.rev (display t id :: acc)
      | Some { r_via = Via next; _ } -> go next (id :: seen) (display t id :: acc)
  in
  go id [] []

let raise_chain t id (target : raise_fact) =
  let key x = (x.x_exn, x.x_rel, x.x_line) in
  let rec go id seen acc =
    if List.length acc > 8 || List.mem id seen then List.rev acc
    else
      match List.find_opt (fun x -> key x = key target) (raises_of t id) with
      | None -> List.rev acc
      | Some { x_via = Direct; _ } -> List.rev (display t id :: acc)
      | Some { x_via = Via next; _ } -> go next (id :: seen) (display t id :: acc)
  in
  go id [] []
