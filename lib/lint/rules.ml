(* The rule set. Rules are data: an id, a one-line invariant, path
   scoping, and a matcher — adding a rule is a new entry in [all],
   typically ~30-60 lines. Matchers come in two kinds:

   - [Expr]: per-expression, driven by the engine's single
     [Ast_iterator] pass over one file (the PR 5 rules);
   - [Global]: whole-program, driven once over the interprocedural
     context (Summary facts propagated to fixpoint by Interproc) and
     emitting diagnostics anywhere in the loaded file set.

   Every rule exists because the type system cannot see the invariant
   it protects (determinism per seed, crash propagation, protocol op
   order, typed observability). *)

open Parsetree

type ctx = { rel : string; src : Src_file.t }

type emit = loc:Location.t -> string -> unit

type emit_g = rel:string -> line:int -> col:int -> string -> unit

type kind =
  | Expr of (ctx -> emit:emit -> expression -> unit)
  | Global of (Interproc.t -> emit:emit_g -> unit)

type t = {
  id : string;
  severity : Diag.severity;
  doc : string;  (* the invariant this rule protects *)
  scope : string list;  (* path prefixes; [] = everywhere *)
  exclude : string list;
  kind : kind;
}

let in_scope rule rel =
  (rule.scope = [] || List.exists (Paths.has_prefix rel) rule.scope)
  && not (List.exists (Paths.has_prefix rel) rule.exclude)

(* ------------------------------------------------------------------ *)
(* Longident / pattern helpers                                          *)
(* ------------------------------------------------------------------ *)

let rec last_module = function
  | Longident.Lident m -> m
  | Longident.Ldot (_, m) -> m
  | Longident.Lapply (_, l) -> last_module l

(* [M.f] (under any module prefix ending in [M]): the shape of every
   stdlib call the rules below care about. *)
let dotted_call txt =
  match txt with
  | Longident.Ldot (prefix, fn) -> Some (last_module prefix, fn)
  | Longident.Lident _ | Longident.Lapply _ -> None

let applied_fn e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(* ------------------------------------------------------------------ *)
(* 1. crashed-swallow                                                   *)
(* ------------------------------------------------------------------ *)

(* [Memnode.Crashed] and [Txn.Aborted] must reach the retry loop; a
   wildcard handler quietly turns a mid-transaction crash into a wrong
   answer. Also flags [match Txn.commit ... with _ -> ...]: a wildcard
   over the commit result discards [Unavailable]/[Retry_exhausted] the
   same way. The cleanup-and-reraise idiom ([with e -> ...; raise e])
   is exempt: a handler that re-raises the exception it bound does not
   swallow anything. *)
let crashed_swallow =
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            if Summary.swallowing_case c c.pc_lhs then
              emit ~loc:c.pc_lhs.ppat_loc
                "wildcard exception handler can swallow Memnode.Crashed / Txn.Aborted; match \
                 the specific exceptions and let crashes propagate")
          cases
    | Pexp_match (scrut, cases) -> (
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p when Summary.swallowing_case c p ->
                emit ~loc:c.pc_lhs.ppat_loc
                  "wildcard [exception _] case can swallow Memnode.Crashed / Txn.Aborted; \
                   name the exceptions this site really expects"
            | _ -> ())
          cases;
        match applied_fn scrut with
        | Some txt when Longident.last txt = "commit" ->
            List.iter
              (fun c ->
                match c.pc_lhs.ppat_desc with
                | Ppat_exception _ -> ()
                | _ ->
                    if c.pc_guard = None && Summary.is_catch_all c.pc_lhs then
                      emit ~loc:c.pc_lhs.ppat_loc
                        "commit result discarded by a wildcard; match \
                         Committed/Validation_failed/Retry_exhausted/Unavailable exhaustively")
              cases
        | _ -> ())
    | _ -> ()
  in
  {
    id = "crashed-swallow";
    severity = Diag.Error;
    doc = "crashes and aborts propagate to the retry loop instead of being swallowed";
    scope = Paths.protocol;
    exclude = [];
    kind = Expr check;
  }

(* ------------------------------------------------------------------ *)
(* 2. nondet-iteration                                                  *)
(* ------------------------------------------------------------------ *)

(* Hashtbl iteration order is an implementation detail; anything it
   feeds (counterexample reports, replay order, recovery sweeps) stops
   being bit-for-bit reproducible per seed. Sort the keys
   (Sim.Det.sorted_bindings) or annotate an order-independent fold. *)
let nondet_iteration =
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } when not loc.Location.loc_ghost -> (
        match dotted_call txt with
        | Some
            ( "Hashtbl",
              (("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") as fn) ) ->
            emit ~loc
              (Printf.sprintf
                 "Hashtbl.%s iterates in hash order, which is not stable across runs; use \
                  Sim.Det.sorted_bindings (or annotate an order-independent fold)"
                 fn)
        | _ -> ())
    | _ -> ()
  in
  {
    id = "nondet-iteration";
    severity = Diag.Error;
    doc = "chaos/checker output is bit-for-bit deterministic per seed";
    scope = Paths.determinism;
    exclude = [];
    kind = Expr check;
  }

(* ------------------------------------------------------------------ *)
(* 3. wallclock-rng                                                     *)
(* ------------------------------------------------------------------ *)

(* All time comes from [Sim.now] and all randomness from seeded
   [Sim.Rng] streams; ambient clocks or the global Random state break
   seeded chaos replay. Only [bin/] (driver entry points) may touch
   the host environment. [Random.State] with an explicit state is fine
   — the ban is on the implicit global generator. *)
let wallclock_rng =
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } when not loc.Location.loc_ghost -> (
        match dotted_call txt with
        | Some ("Unix", (("gettimeofday" | "time") as fn)) ->
            emit ~loc
              (Printf.sprintf
                 "Unix.%s reads the wall clock; simulated components must use Sim.now so \
                  seeded runs replay identically"
                 fn)
        | Some ("Random", fn) ->
            emit ~loc
              (Printf.sprintf
                 "Random.%s uses the ambient global generator; draw from a seeded Sim.Rng \
                  stream (or an explicit Random.State) instead"
                 fn)
        | _ -> ())
    | _ -> ()
  in
  {
    id = "wallclock-rng";
    severity = Diag.Error;
    doc = "seeded chaos runs replay identically: no wall clock, no ambient RNG";
    scope = [];
    exclude = [ "bin/" ];
    kind = Expr check;
  }

(* ------------------------------------------------------------------ *)
(* 4. stringly-metrics                                                  *)
(* ------------------------------------------------------------------ *)

(* PR 1 migrated every hot path to typed [Obs] handles; a raw
   [Metrics.incr m "name"] reintroduces stringly metrics that typos
   silently fork. Only lib/obs (the registry) and lib/sim (the
   implementation) may name counters by string. *)
let stringly_metrics =
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        match dotted_call txt with
        | Some ("Metrics", (("incr" | "add" | "observe") as fn))
          when List.exists
                 (fun (_, a) ->
                   match a.pexp_desc with
                   | Pexp_constant (Pconst_string _) -> true
                   | _ -> false)
                 args ->
            emit ~loc
              (Printf.sprintf
                 "raw Metrics.%s with a string literal bypasses the typed Obs handles; \
                  resolve a counter handle through Obs instead"
                 fn)
        | _ -> ())
    | _ -> ()
  in
  {
    id = "stringly-metrics";
    severity = Diag.Warning;
    doc = "hot paths use typed Obs handles, not string-keyed metrics";
    scope = [];
    exclude = [ "lib/obs/"; "lib/sim/" ];
    kind = Expr check;
  }

(* ------------------------------------------------------------------ *)
(* 5. partial-stdlib                                                    *)
(* ------------------------------------------------------------------ *)

(* On protocol paths a [List.hd] that raises mid-minitransaction is a
   protocol bug, not a convenience. Each use must carry an adjacent
   comment stating why the input cannot be empty/None. [a.(i)] sugar
   is exempt (its desugared Array.get ident is ghost). *)
let partial_stdlib =
  let check ctx ~emit e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } when not loc.Location.loc_ghost -> (
        match dotted_call txt with
        | Some (("List", ("hd" | "nth")) as call)
        | Some (("Option", "get") as call)
        | Some (("Array", "get") as call) ->
            let m, fn = call in
            let line = loc.Location.loc_start.Lexing.pos_lnum in
            if not (Src_file.has_adjacent_comment ctx.src ~line) then
              emit ~loc
                (Printf.sprintf
                   "%s.%s is partial; state the invariant that makes it safe in an adjacent \
                    comment (within two lines) or restructure"
                   m fn)
        | _ -> ())
    | _ -> ()
  in
  {
    id = "partial-stdlib";
    severity = Diag.Warning;
    doc = "partial stdlib calls on protocol paths carry an explicit invariant";
    scope = Paths.protocol;
    exclude = [];
    kind = Expr check;
  }

(* ------------------------------------------------------------------ *)
(* 6. poly-compare                                                      *)
(* ------------------------------------------------------------------ *)

(* Protocol records (memnodes, transactions, clusters, stores) hold
   closures and mutable caches; polymorphic =/compare on them raises
   at runtime or compares cache state. The heuristic keys on operand
   names, so it fires where a reviewer would also squint. *)
let poly_risky_names =
  [ "mtx"; "txn"; "memnode"; "bnode"; "cluster"; "session"; "store"; "objcache"; "coordinator" ]

let risky_name n =
  let n = String.lowercase_ascii n in
  List.exists
    (fun r ->
      n = r
      ||
      let suffix = "_" ^ r in
      let ln = String.length n and ls = String.length suffix in
      ln >= ls && String.sub n (ln - ls) ls = suffix)
    poly_risky_names

let rec operand_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.last txt)
  | Pexp_field (_, { txt; _ }) -> Some (Longident.last txt)
  | Pexp_constraint (e, _) -> operand_name e
  | _ -> None

let poly_compare =
  let poly_fn = function
    | Longident.Lident (("=" | "<>" | "compare") as fn) -> Some fn
    | Longident.Ldot (Longident.Lident "Stdlib", (("=" | "<>" | "compare") as fn)) -> Some fn
    | _ -> None
  in
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, [ (_, a); (_, b) ]) -> (
        match poly_fn txt with
        | Some fn ->
            let risky e =
              match operand_name e with Some n -> risky_name n | None -> false
            in
            if risky a || risky b then
              emit ~loc
                (Printf.sprintf
                   "polymorphic (%s) on a protocol record (holds closures/mutable caches); \
                    compare stable identities (ids, stamps) instead"
                   fn)
        | None -> ())
    | _ -> ()
  in
  {
    id = "poly-compare";
    severity = Diag.Warning;
    doc = "protocol records are compared by stable identity, not structure";
    scope = [ "lib/" ];
    exclude = [];
    kind = Expr check;
  }

(* ------------------------------------------------------------------ *)
(* 7. transitive-nondet                                                 *)
(* ------------------------------------------------------------------ *)

(* A determinism-scoped function must stay nondet-free through every
   call chain, not just its own body: a one-line wrapper around
   Hashtbl.iter defined outside the scope defeats nondet-iteration.
   Flags each call site whose callee can reach an unsuppressed nondet
   or wall-clock source outside the determinism scope (sources inside
   the scope are the base rules' business at their own line), printing
   the chain down to the source. *)
let transitive_nondet =
  let check ip ~emit =
    List.iter
      (fun (fn : Summary.fn) ->
        let seen = ref [] in
        List.iter
          (fun ((call : Summary.call), callee) ->
            let interesting (r : Interproc.reach) =
              r.Interproc.r_kind <> Summary.Blocking
              && ((not (Interproc.honors_scope ip))
                 || not (Paths.in_determinism r.Interproc.r_rel))
            in
            match
              List.filter interesting (Interproc.reach_of ip callee)
              |> List.sort (fun (a : Interproc.reach) (b : Interproc.reach) ->
                     compare
                       (a.Interproc.r_rel, a.Interproc.r_line, a.Interproc.r_what)
                       (b.Interproc.r_rel, b.Interproc.r_line, b.Interproc.r_what))
            with
            | [] -> ()
            | r :: _ when not (List.mem (call.Summary.c_line, callee) !seen) ->
                seen := (call.Summary.c_line, callee) :: !seen;
                let chain = Summary.fn_display fn :: Interproc.reach_chain ip callee r in
                emit ~rel:fn.Summary.fn_rel ~line:call.Summary.c_line ~col:0
                  (Printf.sprintf
                     "call chain %s reaches nondeterministic %s (%s:%d); hash order and the \
                      wall clock must not leak into a determinism-scoped path"
                     (String.concat " -> " chain)
                     r.Interproc.r_what r.Interproc.r_rel r.Interproc.r_line)
            | _ -> ())
          (Interproc.edges_of ip fn.Summary.fn_id))
      (Interproc.functions ip)
  in
  {
    id = "transitive-nondet";
    severity = Diag.Error;
    doc = "determinism-scoped functions stay nondet-free through every call chain";
    scope = Paths.determinism;
    exclude = [];
    kind = Global check;
  }

(* ------------------------------------------------------------------ *)
(* 8. crash-swallow-transitive                                          *)
(* ------------------------------------------------------------------ *)

(* The handler that looks clean: a wildcard whose guarded body calls a
   helper that raises Memnode.Crashed two calls deep. The syntactic
   rule only polices protocol paths, so those stay excluded here (one
   diagnostic per handler, not two); everywhere else, a wildcard is
   flagged exactly when some callee's may-raise set is non-empty. *)
let crash_swallow_transitive =
  let check ip ~emit =
    List.iter
      (fun (fn : Summary.fn) ->
        List.iter
          (fun (h : Summary.handler) ->
            let witness =
              List.find_map
                (fun (c : Summary.call) ->
                  match Interproc.resolve_from ip ~rel:fn.Summary.fn_rel c with
                  | None -> None
                  | Some callee -> (
                      match
                        Interproc.raises_of ip callee
                        |> List.sort
                             (fun (a : Interproc.raise_fact) (b : Interproc.raise_fact) ->
                               compare
                                 (a.Interproc.x_exn, a.Interproc.x_rel, a.Interproc.x_line)
                                 (b.Interproc.x_exn, b.Interproc.x_rel, b.Interproc.x_line))
                      with
                      | [] -> None
                      | x :: _ -> Some (callee, x)))
                h.Summary.h_calls
            in
            match witness with
            | None -> ()
            | Some (callee, x) ->
                let chain = Interproc.raise_chain ip callee x in
                emit ~rel:fn.Summary.fn_rel ~line:h.Summary.h_line ~col:h.Summary.h_col
                  (Printf.sprintf
                     "wildcard handler swallows %s, which %s may raise (raised at %s:%d via \
                      %s); name the crash exceptions or re-raise"
                     x.Interproc.x_exn (Interproc.display ip callee) x.Interproc.x_rel
                     x.Interproc.x_line
                     (String.concat " -> " chain)))
          fn.Summary.fn_handlers)
      (Interproc.functions ip)
  in
  {
    id = "crash-swallow-transitive";
    severity = Diag.Error;
    doc = "wildcard handlers do not swallow crash exceptions a callee may raise";
    scope = [];
    exclude = Paths.protocol;
    kind = Global check;
  }

(* ------------------------------------------------------------------ *)
(* 9. protocol-order                                                    *)
(* ------------------------------------------------------------------ *)

(* The 2PC discipline as a per-function state machine over the spliced
   op sequence: a yes-vote (redo-log append) must be decided
   (decide_commit/decide_abort) before its locks release, and must be
   durable before the last reply transfer — a vote the coordinator
   learned but the log lost is exactly the in-doubt window recovery
   cannot close. Violations internal to a single callee (same splice
   instance) are reported in the callee's own scan, not at every call
   site. *)
let protocol_order =
  let check ip ~emit =
    List.iter
      (fun (fn : Summary.fn) ->
        let rel = fn.Summary.fn_rel in
        let seq = Interproc.seq_of ip fn.Summary.fn_id in
        let via (op : Interproc.sop) =
          match op.Interproc.so_via with
          | Some callee -> Printf.sprintf " (via %s)" (Interproc.display ip callee)
          | None -> ""
        in
        let same_splice a b = a <> 0 && a = b in
        let voted = ref None in
        List.iter
          (fun (op : Interproc.sop) ->
            match op.Interproc.so_kind with
            | Interproc.Proto Summary.Append ->
                voted := Some (op.Interproc.so_inst, op.Interproc.so_line)
            | Interproc.Proto (Summary.Decide_commit | Summary.Decide_abort) -> voted := None
            | Interproc.Proto Summary.Release -> (
                match !voted with
                | Some (vinst, vline) when not (same_splice vinst op.Interproc.so_inst) ->
                    voted := None;
                    emit ~rel ~line:op.Interproc.so_line ~col:0
                      (Printf.sprintf
                         "lock release%s while the yes-vote appended at line %d is undecided; \
                          log decide_commit/decide_abort before releasing"
                         (via op) vline)
                | _ -> ())
            | _ -> ())
          seq;
        let _, last_append, last_transfer =
          List.fold_left
            (fun (i, la, lt) (op : Interproc.sop) ->
              match op.Interproc.so_kind with
              | Interproc.Proto Summary.Append -> (i + 1, Some (i, op), lt)
              | Interproc.Proto Summary.Transfer -> (i + 1, la, Some (i, op))
              | _ -> (i + 1, la, lt))
            (0, None, None) seq
        in
        match (last_append, last_transfer) with
        | Some (ia, a), Some (it, t)
          when ia > it && not (same_splice a.Interproc.so_inst t.Interproc.so_inst) ->
            emit ~rel ~line:a.Interproc.so_line ~col:0
              (Printf.sprintf
                 "redo-log append%s after the last reply transfer (line %d); the yes-vote \
                  must be durable before the coordinator can learn it"
                 (via a) t.Interproc.so_line)
        | _ -> ())
      (Interproc.functions ip)
  in
  {
    id = "protocol-order";
    severity = Diag.Error;
    doc = "append-before-vote and decision-before-unlock hold on coordinator/recovery paths";
    scope = Paths.coordination;
    exclude = [];
    kind = Global check;
  }

(* ------------------------------------------------------------------ *)
(* 10. blocking-under-lock                                              *)
(* ------------------------------------------------------------------ *)

(* A fiber that parks on a scheduler wait (Ivar.read, Mailbox.recv,
   Semaphore.acquire, Mutex.lock, Sim.suspend) while Lock_table ranges
   are held stalls every conflicting minitransaction until another
   fiber acts — under a crash storm that is a distributed deadlock.
   Checked over the spliced sequence, so waits buried in callees are
   seen; a wait and an acquire inside the same callee are that
   callee's own report. *)
let blocking_under_lock =
  let check ip ~emit =
    List.iter
      (fun (fn : Summary.fn) ->
        let locked = ref None in
        List.iter
          (fun (op : Interproc.sop) ->
            match op.Interproc.so_kind with
            | Interproc.Proto Summary.Acquire ->
                locked := Some (op.Interproc.so_inst, op.Interproc.so_line)
            | Interproc.Proto Summary.Release -> locked := None
            | Interproc.Block -> (
                match !locked with
                | Some (linst, lline)
                  when not (linst <> 0 && linst = op.Interproc.so_inst) ->
                    let via =
                      match op.Interproc.so_via with
                      | Some callee ->
                          Printf.sprintf " (via %s)" (Interproc.display ip callee)
                      | None -> ""
                    in
                    emit ~rel:fn.Summary.fn_rel ~line:op.Interproc.so_line ~col:0
                      (Printf.sprintf
                         "%s%s parks this fiber while locks acquired at line %d are held; a \
                          blocked fiber under held ranges stalls every conflicting \
                          minitransaction"
                         op.Interproc.so_what via lline)
                | _ -> ())
            | _ -> ())
          (Interproc.seq_of ip fn.Summary.fn_id))
      (Interproc.functions ip)
  in
  {
    id = "blocking-under-lock";
    severity = Diag.Error;
    doc = "no scheduler wait is reachable while Lock_table ranges are held";
    scope = Paths.protocol;
    exclude = [];
    kind = Global check;
  }

let all =
  [
    crashed_swallow;
    nondet_iteration;
    wallclock_rng;
    stringly_metrics;
    partial_stdlib;
    poly_compare;
    transitive_nondet;
    crash_swallow_transitive;
    protocol_order;
    blocking_under_lock;
  ]

let ids = List.map (fun r -> r.id) all

let find id = List.find_opt (fun r -> r.id = id) all
