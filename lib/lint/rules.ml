(* The rule set. Rules are data: an id, a one-line invariant, path
   scoping, and an expression-level matcher driven by the engine's
   single [Ast_iterator] pass — adding a rule is a new entry in [all],
   typically ~30 lines. Every rule exists because the type system
   cannot see the invariant it protects (determinism per seed, crash
   propagation, typed observability). *)

open Parsetree

type ctx = { rel : string; src : Src_file.t }

type emit = loc:Location.t -> string -> unit

type t = {
  id : string;
  severity : Diag.severity;
  doc : string;  (* the invariant this rule protects *)
  scope : string list;  (* path prefixes; [] = everywhere *)
  exclude : string list;
  check : ctx -> emit:emit -> expression -> unit;
}

let has_prefix rel p =
  String.length rel >= String.length p && String.sub rel 0 (String.length p) = p

let in_scope rule rel =
  (rule.scope = [] || List.exists (has_prefix rel) rule.scope)
  && not (List.exists (has_prefix rel) rule.exclude)

(* Paths implementing the paper's protocols: minitransactions, dirty
   traversals, version catalog. A swallowed exception or partial
   function here corrupts the retry/recovery story. *)
let protocol_paths = [ "lib/sinfonia/"; "lib/dyntxn/"; "lib/btree/"; "lib/mvcc/" ]

(* Paths where iteration order reaches seeded-replay output: the
   simulator, the nemesis, the history checker, recovery sweeps, the
   open-loop traffic engine (arrival schedules and SLO verdicts must
   replay byte-identically per seed), and the B-tree hot path (the
   node-view memo and write-path encoders must not leak hash order
   into traversal behaviour). *)
let determinism_paths =
  [ "lib/sim/"; "lib/chaos/"; "lib/check/"; "lib/sinfonia/"; "lib/traffic/"; "lib/btree/" ]

(* ------------------------------------------------------------------ *)
(* Longident / pattern helpers                                          *)
(* ------------------------------------------------------------------ *)

let rec last_module = function
  | Longident.Lident m -> m
  | Longident.Ldot (_, m) -> m
  | Longident.Lapply (_, l) -> last_module l

(* [M.f] (under any module prefix ending in [M]): the shape of every
   stdlib call the rules below care about. *)
let dotted_call txt =
  match txt with
  | Longident.Ldot (prefix, fn) -> Some (last_module prefix, fn)
  | Longident.Lident _ | Longident.Lapply _ -> None

let rec is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_catch_all p
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

let applied_fn e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(* ------------------------------------------------------------------ *)
(* 1. crashed-swallow                                                   *)
(* ------------------------------------------------------------------ *)

(* [Memnode.Crashed] and [Txn.Aborted] must reach the retry loop; a
   wildcard handler quietly turns a mid-transaction crash into a wrong
   answer. Also flags [match Txn.commit ... with _ -> ...]: a wildcard
   over the commit result discards [Unavailable]/[Retry_exhausted] the
   same way. The cleanup-and-reraise idiom ([with e -> ...; raise e])
   is exempt: a handler that re-raises the exception it bound does not
   swallow anything. *)
let reraises ~var body =
  let found = ref false in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args ) ->
              let fn = Longident.last txt in
              if
                (fn = "raise" || fn = "raise_notrace" || fn = "raise_with_backtrace")
                && List.exists
                     (fun (_, a) ->
                       match a.pexp_desc with
                       | Pexp_ident { txt = Longident.Lident v; _ } -> v = var
                       | _ -> false)
                     args
              then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  iterator.expr iterator body;
  !found

let bound_exn_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> Some txt
  | _ -> None

let swallowing_case c p =
  c.pc_guard = None && is_catch_all p
  &&
  match bound_exn_var p with
  | Some var -> not (reraises ~var c.pc_rhs)
  | None -> true

let crashed_swallow =
  let check _ctx ~emit e =
    (match e.pexp_desc with
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            if swallowing_case c c.pc_lhs then
              emit ~loc:c.pc_lhs.ppat_loc
                "wildcard exception handler can swallow Memnode.Crashed / Txn.Aborted; match \
                 the specific exceptions and let crashes propagate")
          cases
    | Pexp_match (scrut, cases) ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p when swallowing_case c p ->
                emit ~loc:c.pc_lhs.ppat_loc
                  "wildcard [exception _] case can swallow Memnode.Crashed / Txn.Aborted; \
                   name the exceptions this site really expects"
            | _ -> ())
          cases;
        (match applied_fn scrut with
        | Some txt when Longident.last txt = "commit" ->
            List.iter
              (fun c ->
                match c.pc_lhs.ppat_desc with
                | Ppat_exception _ -> ()
                | _ ->
                    if c.pc_guard = None && is_catch_all c.pc_lhs then
                      emit ~loc:c.pc_lhs.ppat_loc
                        "commit result discarded by a wildcard; match \
                         Committed/Validation_failed/Retry_exhausted/Unavailable exhaustively")
              cases
        | _ -> ())
    | _ -> ())
  in
  {
    id = "crashed-swallow";
    severity = Diag.Error;
    doc = "crashes and aborts propagate to the retry loop instead of being swallowed";
    scope = protocol_paths;
    exclude = [];
    check;
  }

(* ------------------------------------------------------------------ *)
(* 2. nondet-iteration                                                  *)
(* ------------------------------------------------------------------ *)

(* Hashtbl iteration order is an implementation detail; anything it
   feeds (counterexample reports, replay order, recovery sweeps) stops
   being bit-for-bit reproducible per seed. Sort the keys
   (Sim.Det.sorted_bindings) or annotate an order-independent fold. *)
let nondet_iteration =
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } when not loc.Location.loc_ghost -> (
        match dotted_call txt with
        | Some
            ( "Hashtbl",
              (("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") as fn) ) ->
            emit ~loc
              (Printf.sprintf
                 "Hashtbl.%s iterates in hash order, which is not stable across runs; use \
                  Sim.Det.sorted_bindings (or annotate an order-independent fold)"
                 fn)
        | _ -> ())
    | _ -> ()
  in
  {
    id = "nondet-iteration";
    severity = Diag.Error;
    doc = "chaos/checker output is bit-for-bit deterministic per seed";
    scope = determinism_paths;
    exclude = [];
    check;
  }

(* ------------------------------------------------------------------ *)
(* 3. wallclock-rng                                                     *)
(* ------------------------------------------------------------------ *)

(* All time comes from [Sim.now] and all randomness from seeded
   [Sim.Rng] streams; ambient clocks or the global Random state break
   seeded chaos replay. Only [bin/] (driver entry points) may touch
   the host environment. [Random.State] with an explicit state is fine
   — the ban is on the implicit global generator. *)
let wallclock_rng =
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } when not loc.Location.loc_ghost -> (
        match dotted_call txt with
        | Some ("Unix", (("gettimeofday" | "time") as fn)) ->
            emit ~loc
              (Printf.sprintf
                 "Unix.%s reads the wall clock; simulated components must use Sim.now so \
                  seeded runs replay identically"
                 fn)
        | Some ("Random", fn) ->
            emit ~loc
              (Printf.sprintf
                 "Random.%s uses the ambient global generator; draw from a seeded Sim.Rng \
                  stream (or an explicit Random.State) instead"
                 fn)
        | _ -> ())
    | _ -> ()
  in
  {
    id = "wallclock-rng";
    severity = Diag.Error;
    doc = "seeded chaos runs replay identically: no wall clock, no ambient RNG";
    scope = [];
    exclude = [ "bin/" ];
    check;
  }

(* ------------------------------------------------------------------ *)
(* 4. stringly-metrics                                                  *)
(* ------------------------------------------------------------------ *)

(* PR 1 migrated every hot path to typed [Obs] handles; a raw
   [Metrics.incr m "name"] reintroduces stringly metrics that typos
   silently fork. Only lib/obs (the registry) and lib/sim (the
   implementation) may name counters by string. *)
let stringly_metrics =
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        match dotted_call txt with
        | Some ("Metrics", (("incr" | "add" | "observe") as fn))
          when List.exists
                 (fun (_, a) ->
                   match a.pexp_desc with
                   | Pexp_constant (Pconst_string _) -> true
                   | _ -> false)
                 args ->
            emit ~loc
              (Printf.sprintf
                 "raw Metrics.%s with a string literal bypasses the typed Obs handles; \
                  resolve a counter handle through Obs instead"
                 fn)
        | _ -> ())
    | _ -> ()
  in
  {
    id = "stringly-metrics";
    severity = Diag.Warning;
    doc = "hot paths use typed Obs handles, not string-keyed metrics";
    scope = [];
    exclude = [ "lib/obs/"; "lib/sim/" ];
    check;
  }

(* ------------------------------------------------------------------ *)
(* 5. partial-stdlib                                                    *)
(* ------------------------------------------------------------------ *)

(* On protocol paths a [List.hd] that raises mid-minitransaction is a
   protocol bug, not a convenience. Each use must carry an adjacent
   comment stating why the input cannot be empty/None. [a.(i)] sugar
   is exempt (its desugared Array.get ident is ghost). *)
let partial_stdlib =
  let check ctx ~emit e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } when not loc.Location.loc_ghost -> (
        match dotted_call txt with
        | Some (("List", ("hd" | "nth")) as call)
        | Some (("Option", "get") as call)
        | Some (("Array", "get") as call) ->
            let m, fn = call in
            let line = loc.Location.loc_start.Lexing.pos_lnum in
            if not (Src_file.has_adjacent_comment ctx.src ~line) then
              emit ~loc
                (Printf.sprintf
                   "%s.%s is partial; state the invariant that makes it safe in an adjacent \
                    comment (within two lines) or restructure"
                   m fn)
        | _ -> ())
    | _ -> ()
  in
  {
    id = "partial-stdlib";
    severity = Diag.Warning;
    doc = "partial stdlib calls on protocol paths carry an explicit invariant";
    scope = protocol_paths;
    exclude = [];
    check;
  }

(* ------------------------------------------------------------------ *)
(* 6. poly-compare                                                      *)
(* ------------------------------------------------------------------ *)

(* Protocol records (memnodes, transactions, clusters, stores) hold
   closures and mutable caches; polymorphic =/compare on them raises
   at runtime or compares cache state. The heuristic keys on operand
   names, so it fires where a reviewer would also squint. *)
let poly_risky_names =
  [ "mtx"; "txn"; "memnode"; "bnode"; "cluster"; "session"; "store"; "objcache"; "coordinator" ]

let risky_name n =
  let n = String.lowercase_ascii n in
  List.exists
    (fun r ->
      n = r
      ||
      let suffix = "_" ^ r in
      let ln = String.length n and ls = String.length suffix in
      ln >= ls && String.sub n (ln - ls) ls = suffix)
    poly_risky_names

let rec operand_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.last txt)
  | Pexp_field (_, { txt; _ }) -> Some (Longident.last txt)
  | Pexp_constraint (e, _) -> operand_name e
  | _ -> None

let poly_compare =
  let poly_fn = function
    | Longident.Lident (("=" | "<>" | "compare") as fn) -> Some fn
    | Longident.Ldot (Longident.Lident "Stdlib", (("=" | "<>" | "compare") as fn)) -> Some fn
    | _ -> None
  in
  let check _ctx ~emit e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, [ (_, a); (_, b) ]) -> (
        match poly_fn txt with
        | Some fn ->
            let risky e =
              match operand_name e with Some n -> risky_name n | None -> false
            in
            if risky a || risky b then
              emit ~loc
                (Printf.sprintf
                   "polymorphic (%s) on a protocol record (holds closures/mutable caches); \
                    compare stable identities (ids, stamps) instead"
                   fn)
        | None -> ())
    | _ -> ()
  in
  {
    id = "poly-compare";
    severity = Diag.Warning;
    doc = "protocol records are compared by stable identity, not structure";
    scope = [ "lib/" ];
    exclude = [];
    check;
  }

let all =
  [
    crashed_swallow;
    nondet_iteration;
    wallclock_rng;
    stringly_metrics;
    partial_stdlib;
    poly_compare;
  ]

let ids = List.map (fun r -> r.id) all

let find id = List.find_opt (fun r -> r.id = id) all
