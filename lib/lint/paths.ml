(* Path scoping shared by the syntactic rules (Rules) and the
   interprocedural analyses (Summary/Interproc): which repo trees carry
   which invariants. Kept in one place so "determinism-scoped" means the
   same thing to the per-expression matchers and to the whole-repo
   fixpoint. *)

(* Paths implementing the paper's protocols: minitransactions, dirty
   traversals, version catalog. A swallowed exception or partial
   function here corrupts the retry/recovery story. *)
let protocol = [ "lib/sinfonia/"; "lib/dyntxn/"; "lib/btree/"; "lib/mvcc/" ]

(* Paths where iteration order reaches seeded-replay output: the
   simulator, the nemesis, the history checker (both the list and the
   streaming sink), recovery sweeps, the open-loop traffic engine
   (arrival schedules and SLO verdicts must replay byte-identically per
   seed), the B-tree hot path, and — since the interprocedural pass —
   the version catalog/branching layer, whose version-tree walks and
   GC sweeps feed checker realms and BENCH reports. *)
let determinism =
  [
    "lib/sim/";
    "lib/chaos/";
    "lib/check/";
    "lib/sinfonia/";
    "lib/traffic/";
    "lib/btree/";
    "lib/mvcc/";
  ]

(* The 2PC coordinator / participant / recovery sources whose call
   sequences the protocol-order state machine checks. *)
let coordination = [ "lib/sinfonia/" ]

let has_prefix rel p =
  String.length rel >= String.length p && String.sub rel 0 (String.length p) = p

let in_any paths rel = List.exists (has_prefix rel) paths

let in_protocol rel = in_any protocol rel

let in_determinism rel = in_any determinism rel
