(** A proxy-side session: the handle applications use to run
    transactional B-tree operations against a {!Db.t}.

    Each session models one proxy (Sec. 2): it has its own incoherent
    object cache and allocator chunks, and routes its Sinfonia traffic
    through a home memnode (typically the proxy's own host). Sessions
    are cheap; benchmarks attach one per simulated host.

    Every public operation is timed into the database's observability
    registry ({!Db.obs}): latency histograms per operation kind, split
    by up-to-date versus snapshot reads, plus a trace span per call. *)

type t

(** {1 History events}

    With a [tracer], every single-index session operation emits one
    event when it returns, carrying the simulated invocation/response
    times and the operation's serialization point — its commit stamp
    (up-to-date operations) or snapshot id (snapshot reads). On a
    branching database ({!Config.t.branching}), branch-aware operations
    run through the index's {!Mvcc.Branching.t} handle are traced too:
    version creation/deletion and branch-scoped reads and writes carry
    the version id they resolved to. The consistency checkers
    ([Check.History], [Check.Stream]) consume these.
    Multi-index operations and {!with_txn} bodies are not traced. *)

module Event : sig
  type operation =
    | Get of { key : string; result : string option }
    | Put of { key : string; value : string }
    | Remove of { key : string; removed : bool }
    | Scan of { from : string; count : int; result : (string * string) list }
    | Snapshot_taken
    | Branch_created of { parent : int64; sid : int64 }
        (** A writable clone [sid] was created from version [parent]
            (branching mode; Sec. 5.1). *)
    | Branch_deleted of { sid : int64 }
    | Branch_get of { at : int64; key : string; result : string option }
        (** Branch-scoped read; [at] is the version the operation
            resolved to (the requested read-only version, or the
            mainline tip reached from the requested version). *)
    | Branch_put of { at : int64; key : string; value : string }
    | Branch_remove of { at : int64; key : string; removed : bool }
    | Branch_scan of { at : int64; from : string; count : int; result : (string * string) list }
    | Get_many of { key : string; results : (int64 * string option) list }
        (** Horizontal multi-version query: one key across versions,
            read atomically. *)
    | History of { from : int64; key : string; results : (int64 * string option) list }
        (** Vertical multi-version query: one key at [from] and each
            ancestor, root-first, read atomically. *)

  type t = {
    client : int option;  (** The session's client host id. *)
    index : int;  (** B-tree index operated on. *)
    op : operation;
    invoked_at : float;  (** Simulated time the operation started. *)
    returned_at : float;  (** Simulated time it returned. *)
    stamp : int64 option;
        (** Cluster-global commit stamp of the operation's serialization
            point; [None] for snapshot reads (serialized by [sid]) and
            for ambiguous operations. *)
    sid : int64 option;
        (** Snapshot the operation ran against ([Snapshot_taken]: the
            snapshot granted). [None] for up-to-date operations. *)
    ambiguous : bool;
        (** The operation raised {!Btree.Ops.Ambiguous}: its effect is
            unknown (event emitted just before re-raising). *)
  }

  val pp : Format.formatter -> t -> unit

  val to_json : t -> Obs.Json.t
  (** Lossless encoding for offline re-checking: int64s as decimal
      strings (JSON numbers are doubles), [None] as [null]. *)

  val of_json : Obs.Json.t -> t
  (** Inverse of {!to_json}. Raises [Invalid_argument] on events
      {!to_json} could not have produced. *)
end

type tracer = Event.t -> unit

val attach : ?home:int -> ?client:int -> ?tracer:tracer -> Db.t -> t
(** [home] defaults to 0; benchmarks attach one session per host with
    [home = host]. [client] is this proxy's host id for the network
    fault model: injected per-link faults (partitions, drops, delays)
    apply to this session's traffic. Omitted, the session's traffic is
    anonymous and never faulted. [tracer] receives a history event per
    operation (see {!Event}). *)

val db : t -> Db.t

val home : t -> int

val client : t -> int option

(** {1 Index handles}

    Operations address one of the database's B-tree indexes through an
    abstract, validated handle instead of a raw integer. *)

type index
(** A validated reference to one B-tree index of a database. *)

val index : Db.t -> int -> index
(** [index db i] is the handle for the [i]th index. Raises
    [Invalid_argument] unless [0 <= i < Db.n_trees db]. *)

val tree_of : t -> index -> Btree.Ops.tree
(** The underlying per-session tree handle (escape hatch for benches
    and tests). *)

(** {1 Up-to-date operations (strictly serializable)} *)

val get : ?index:index -> t -> string -> string option

val put : ?index:index -> t -> string -> string -> unit

val remove : ?index:index -> t -> string -> bool

val scan : ?index:index -> t -> from:string -> count:int -> (string * string) list
(** Scan against the writable tip; aborts easily under concurrent
    updates — prefer {!scan_at} a snapshot (Sec. 6.3). *)

(** {1 General transactions}

    Arbitrary multi-operation, multi-index, strictly serializable
    transactions — the dynamic-transaction layer exposed directly.
    Reads and writes inside the function see each other; the whole
    body commits atomically (and is re-executed from scratch on
    conflicts, so it must be idempotent apart from its [txn]
    operations). *)

type txn

val with_txn : t -> (txn -> 'a) -> 'a
(** Run the body in a retrying dynamic transaction. *)

val t_get : ?index:index -> txn -> string -> string option

val t_put : ?index:index -> txn -> string -> string -> unit

val t_remove : ?index:index -> txn -> string -> bool

val t_scan : ?index:index -> txn -> from:string -> count:int -> (string * string) list

(** {1 Multi-index transactions (Sec. 6.2)} *)

val multi_get : t -> (int * string) list -> string option list
(** [(index, key)] pairs, read atomically across indexes. *)

val multi_put : t -> (int * string * string) list -> unit

(** {1 Snapshots (linear mode)} *)

type snapshot = { index : int; sid : int64; root : Dyntxn.Objref.t }

val snapshot : ?index:index -> t -> snapshot
(** Obtain a read-only snapshot from the snapshot creation service
    (created or borrowed per Fig. 7; possibly up to [k] seconds stale
    when the service has a staleness bound). *)

val get_at : t -> snapshot -> string -> string option

val scan_at : t -> snapshot -> from:string -> count:int -> (string * string) list
(** Strictly serializable when the snapshot came from an SCS with
    [k = 0]; never blocks updates and never aborts due to them. *)

(** {1 Writable clones (branching mode)} *)

val branching : ?index:index -> t -> Mvcc.Branching.t
(** Branch-aware operations for a database started with
    [config.branching = true]. Raises [Invalid_argument] otherwise.
    When the session has a tracer, operations run through this handle
    emit branch-scoped {!Event}s. *)

val branch : ?index:index -> t -> from:int64 -> int64
(** Create a writable clone branching from version [from] (traced as
    {!Event.Branch_created}). Shorthand for
    [Mvcc.Branching.create_branch (branching t) ~from]. *)
