module Ops = Btree.Ops
module Txn = Dyntxn.Txn

type index = int

type t = {
  db : Db.t;
  home : int;
  obs : Obs.t;
  trees : Ops.tree array;
  branchings : Mvcc.Branching.t array;
}

let index db i =
  if i < 0 || i >= Db.n_trees db then
    invalid_arg
      (Printf.sprintf "Session.index: %d out of range (database has %d indexes)" i
         (Db.n_trees db));
  i

let attach ?(home = 0) db =
  let config = Db.config db in
  if home < 0 || home >= config.Config.hosts then invalid_arg "Session.attach: home out of range";
  let cache = Dyntxn.Objcache.create ~capacity:config.Config.cache_capacity () in
  let trees =
    Array.init config.Config.n_trees (fun tree_id ->
        Db.make_tree_handle ~config ~cluster:(Db.cluster db) ~shared_alloc:(Db.shared_alloc db)
          ~cache ~home ~tree_id)
  in
  let branchings =
    if config.Config.branching then
      Array.map (fun tree -> Mvcc.Branching.attach ~tree ~beta:config.Config.beta) trees
    else [||]
  in
  { db; home; obs = Db.obs db; trees; branchings }

let db t = t.db

let home t = t.home

let tree t ~index = t.trees.(index)

let tree_of t index = t.trees.(index)

let check_linear t =
  if (Db.config t.db).Config.branching then
    invalid_arg "Session: linear-snapshot operation on a branching database"

let vctx_of t index txn = Ops.Linear.tip t.trees.(index) txn

let get ?(index = 0) t k =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Get ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.get t.trees.(index) ~vctx_of:(vctx_of t index) k

let put ?(index = 0) t k v =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Put ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.put t.trees.(index) ~vctx_of:(vctx_of t index) k v

let remove ?(index = 0) t k =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Remove ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.remove t.trees.(index) ~vctx_of:(vctx_of t index) k

let scan ?(index = 0) t ~from ~count =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Scan ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.scan t.trees.(index) ~vctx_of:(vctx_of t index) ~from ~count

let multi_get t pairs =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Multi_get ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.multi_get
    (List.map (fun (index, k) -> (t.trees.(index), k)) pairs)
    ~vctx_of:(fun tree txn -> Ops.Linear.tip tree txn)

let multi_put t triples =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Multi_put ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.multi_put
    (List.map (fun (index, k, v) -> (t.trees.(index), k, v)) triples)
    ~vctx_of:(fun tree txn -> Ops.Linear.tip tree txn)

type txn = { session : t; raw : Txn.t }

let with_txn t f =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.With_txn ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.run_txn t.trees.(0) (fun raw -> f { session = t; raw })

let t_vctx txn index = Ops.Linear.tip txn.session.trees.(index) txn.raw

let t_get ?(index = 0) txn k =
  Ops.get_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k

let t_put ?(index = 0) txn k v =
  Ops.put_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k v

let t_remove ?(index = 0) txn k =
  Ops.remove_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k

let t_scan ?(index = 0) txn ~from ~count =
  Ops.scan_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) ~from ~count

type snapshot = { index : int; sid : int64; root : Dyntxn.Objref.t }

let snapshot ?(index = 0) t =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Snapshot_req ~path:Obs.Op.Up_to_date @@ fun () ->
  let sid, root = Mvcc.Scs.request (Db.scs t.db ~index) in
  { index; sid; root }

let snap_vctx t snap _txn = Ops.Linear.at_snapshot t.trees.(snap.index) ~sid:snap.sid ~root:snap.root

let get_at t snap k =
  Obs.time_op t.obs ~op:Obs.Op.Get ~path:Obs.Op.At_snapshot @@ fun () ->
  Ops.get t.trees.(snap.index) ~vctx_of:(snap_vctx t snap) k

let scan_at t snap ~from ~count =
  Obs.time_op t.obs ~op:Obs.Op.Scan ~path:Obs.Op.At_snapshot @@ fun () ->
  Ops.scan t.trees.(snap.index) ~vctx_of:(snap_vctx t snap) ~from ~count

let branching ?(index = 0) t =
  if not (Db.config t.db).Config.branching then
    invalid_arg "Session.branching: database not started in branching mode";
  t.branchings.(index)
