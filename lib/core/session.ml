module Ops = Btree.Ops
module Txn = Dyntxn.Txn

type index = int

module Event = struct
  type operation =
    | Get of { key : string; result : string option }
    | Put of { key : string; value : string }
    | Remove of { key : string; removed : bool }
    | Scan of { from : string; count : int; result : (string * string) list }
    | Snapshot_taken

  type t = {
    client : int option;
    index : int;
    op : operation;
    invoked_at : float;
    returned_at : float;
    stamp : int64 option;
    sid : int64 option;
    ambiguous : bool;
  }

  let pp_operation fmt = function
    | Get { key; result } ->
        Format.fprintf fmt "get %S -> %a" key
          (Format.pp_print_option ~none:(fun f () -> Format.pp_print_string f "none")
             (fun f v -> Format.fprintf f "%S" v))
          result
    | Put { key; value } -> Format.fprintf fmt "put %S %S" key value
    | Remove { key; removed } -> Format.fprintf fmt "remove %S -> %b" key removed
    | Scan { from; count; result } ->
        Format.fprintf fmt "scan from:%S count:%d -> %d entries" from count (List.length result)
    | Snapshot_taken -> Format.fprintf fmt "snapshot"

  let pp fmt t =
    Format.fprintf fmt "@[<h>[%.6f,%.6f]%a%a%a%s idx%d %a@]" t.invoked_at t.returned_at
      (Format.pp_print_option (fun f c -> Format.fprintf f " client%d" c))
      t.client
      (Format.pp_print_option (fun f s -> Format.fprintf f " stamp:%Ld" s))
      t.stamp
      (Format.pp_print_option (fun f s -> Format.fprintf f " sid:%Ld" s))
      t.sid
      (if t.ambiguous then " AMBIGUOUS" else "")
      t.index pp_operation t.op
end

type tracer = Event.t -> unit

type t = {
  db : Db.t;
  home : int;
  client : int option;
  tracer : tracer option;
  obs : Obs.t;
  trees : Ops.tree array;
  branchings : Mvcc.Branching.t array;
}

let index db i =
  if i < 0 || i >= Db.n_trees db then
    invalid_arg
      (Printf.sprintf "Session.index: %d out of range (database has %d indexes)" i
         (Db.n_trees db));
  i

let attach ?(home = 0) ?client ?tracer db =
  let config = Db.config db in
  if home < 0 || home >= config.Config.hosts then invalid_arg "Session.attach: home out of range";
  let cache =
    Dyntxn.Objcache.create ~capacity:config.Config.cache_capacity
      ~stats:(Obs.cache (Db.obs db)) ()
  in
  let trees =
    Array.init config.Config.n_trees (fun tree_id ->
        Db.make_tree_handle ?client ~config ~cluster:(Db.cluster db)
          ~shared_alloc:(Db.shared_alloc db) ~cache ~home ~tree_id ())
  in
  let branchings =
    if config.Config.branching then
      Array.map (fun tree -> Mvcc.Branching.attach ~tree ~beta:config.Config.beta) trees
    else [||]
  in
  { db; home; client; tracer; obs = Db.obs db; trees; branchings }

let db t = t.db

let home t = t.home

let client t = t.client

let tree t ~index = t.trees.(index)

let tree_of t index = t.trees.(index)

let check_linear t =
  if (Db.config t.db).Config.branching then
    invalid_arg "Session: linear-snapshot operation on a branching database"

let vctx_of t index txn = Ops.Linear.tip t.trees.(index) txn

let emit t ~index ~invoked ?stamp ?sid ?(ambiguous = false) op =
  match t.tracer with
  | None -> ()
  | Some f ->
      f
        {
          Event.client = t.client;
          index;
          op;
          invoked_at = invoked;
          returned_at = Sim.now ();
          stamp;
          sid;
          ambiguous;
        }

(* Stamp of the operation that just returned on this index handle
   (cooperative scheduler: nothing else ran on the handle since). *)
let op_stamp t index = Ops.last_commit_stamp t.trees.(index)

let get ?(index = 0) t k =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Get ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  let result = Ops.get t.trees.(index) ~vctx_of:(vctx_of t index) k in
  emit t ~index ~invoked ?stamp:(op_stamp t index) (Event.Get { key = k; result });
  result

let put ?(index = 0) t k v =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Put ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  try
    Ops.put t.trees.(index) ~vctx_of:(vctx_of t index) k v;
    emit t ~index ~invoked ?stamp:(op_stamp t index) (Event.Put { key = k; value = v })
  with Ops.Ambiguous _ as e ->
    (* The write may or may not have taken effect; record it so the
       checker can resolve it from later reads. *)
    emit t ~index ~invoked ~ambiguous:true (Event.Put { key = k; value = v });
    raise e

let remove ?(index = 0) t k =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Remove ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  try
    let removed = Ops.remove t.trees.(index) ~vctx_of:(vctx_of t index) k in
    emit t ~index ~invoked ?stamp:(op_stamp t index) (Event.Remove { key = k; removed });
    removed
  with Ops.Ambiguous _ as e ->
    emit t ~index ~invoked ~ambiguous:true (Event.Remove { key = k; removed = false });
    raise e

let scan ?(index = 0) t ~from ~count =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Scan ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  let result = Ops.scan t.trees.(index) ~vctx_of:(vctx_of t index) ~from ~count in
  emit t ~index ~invoked ?stamp:(op_stamp t index) (Event.Scan { from; count; result });
  result

let multi_get t pairs =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Multi_get ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.multi_get
    (List.map (fun (index, k) -> (t.trees.(index), k)) pairs)
    ~vctx_of:(fun tree txn -> Ops.Linear.tip tree txn)

let multi_put t triples =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Multi_put ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.multi_put
    (List.map (fun (index, k, v) -> (t.trees.(index), k, v)) triples)
    ~vctx_of:(fun tree txn -> Ops.Linear.tip tree txn)

type txn = { session : t; raw : Txn.t }

let with_txn t f =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.With_txn ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.run_txn t.trees.(0) (fun raw -> f { session = t; raw })

let t_vctx txn index = Ops.Linear.tip txn.session.trees.(index) txn.raw

let t_get ?(index = 0) txn k =
  Ops.get_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k

let t_put ?(index = 0) txn k v =
  Ops.put_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k v

let t_remove ?(index = 0) txn k =
  Ops.remove_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k

let t_scan ?(index = 0) txn ~from ~count =
  Ops.scan_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) ~from ~count

type snapshot = { index : int; sid : int64; root : Dyntxn.Objref.t }

let snapshot ?(index = 0) t =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Snapshot_req ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  let sid, root = Mvcc.Scs.request (Db.scs t.db ~index) in
  emit t ~index ~invoked ~sid Event.Snapshot_taken;
  { index; sid; root }

let snap_vctx t snap _txn = Ops.Linear.at_snapshot t.trees.(snap.index) ~sid:snap.sid ~root:snap.root

let get_at t snap k =
  Obs.time_op t.obs ~op:Obs.Op.Get ~path:Obs.Op.At_snapshot @@ fun () ->
  let invoked = Sim.now () in
  let result = Ops.get t.trees.(snap.index) ~vctx_of:(snap_vctx t snap) k in
  emit t ~index:snap.index ~invoked ~sid:snap.sid (Event.Get { key = k; result });
  result

let scan_at t snap ~from ~count =
  Obs.time_op t.obs ~op:Obs.Op.Scan ~path:Obs.Op.At_snapshot @@ fun () ->
  let invoked = Sim.now () in
  let result = Ops.scan t.trees.(snap.index) ~vctx_of:(snap_vctx t snap) ~from ~count in
  emit t ~index:snap.index ~invoked ~sid:snap.sid (Event.Scan { from; count; result });
  result

let branching ?(index = 0) t =
  if not (Db.config t.db).Config.branching then
    invalid_arg "Session.branching: database not started in branching mode";
  t.branchings.(index)
