module Ops = Btree.Ops
module Txn = Dyntxn.Txn

type index = int

module Event = struct
  type operation =
    | Get of { key : string; result : string option }
    | Put of { key : string; value : string }
    | Remove of { key : string; removed : bool }
    | Scan of { from : string; count : int; result : (string * string) list }
    | Snapshot_taken
    | Branch_created of { parent : int64; sid : int64 }
    | Branch_deleted of { sid : int64 }
    | Branch_get of { at : int64; key : string; result : string option }
    | Branch_put of { at : int64; key : string; value : string }
    | Branch_remove of { at : int64; key : string; removed : bool }
    | Branch_scan of { at : int64; from : string; count : int; result : (string * string) list }
    | Get_many of { key : string; results : (int64 * string option) list }
    | History of { from : int64; key : string; results : (int64 * string option) list }

  type t = {
    client : int option;
    index : int;
    op : operation;
    invoked_at : float;
    returned_at : float;
    stamp : int64 option;
    sid : int64 option;
    ambiguous : bool;
  }

  let pp_result fmt r =
    Format.pp_print_option
      ~none:(fun f () -> Format.pp_print_string f "none")
      (fun f v -> Format.fprintf f "%S" v)
      fmt r

  let pp_versioned fmt results =
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.pp_print_string f " ")
      (fun f (sid, r) -> Format.fprintf f "%Ld:%a" sid pp_result r)
      fmt results

  let pp_operation fmt = function
    | Get { key; result } -> Format.fprintf fmt "get %S -> %a" key pp_result result
    | Put { key; value } -> Format.fprintf fmt "put %S %S" key value
    | Remove { key; removed } -> Format.fprintf fmt "remove %S -> %b" key removed
    | Scan { from; count; result } ->
        Format.fprintf fmt "scan from:%S count:%d -> %d entries" from count (List.length result)
    | Snapshot_taken -> Format.fprintf fmt "snapshot"
    | Branch_created { parent; sid } -> Format.fprintf fmt "branch %Ld -> %Ld" parent sid
    | Branch_deleted { sid } -> Format.fprintf fmt "delete-branch %Ld" sid
    | Branch_get { at; key; result } ->
        Format.fprintf fmt "get@%Ld %S -> %a" at key pp_result result
    | Branch_put { at; key; value } -> Format.fprintf fmt "put@%Ld %S %S" at key value
    | Branch_remove { at; key; removed } ->
        Format.fprintf fmt "remove@%Ld %S -> %b" at key removed
    | Branch_scan { at; from; count; result } ->
        Format.fprintf fmt "scan@%Ld from:%S count:%d -> %d entries" at from count
          (List.length result)
    | Get_many { key; results } ->
        Format.fprintf fmt "get-many %S -> [%a]" key pp_versioned results
    | History { from; key; results } ->
        Format.fprintf fmt "history@%Ld %S -> [%a]" from key pp_versioned results

  let pp fmt t =
    Format.fprintf fmt "@[<h>[%.6f,%.6f]%a%a%a%s idx%d %a@]" t.invoked_at t.returned_at
      (Format.pp_print_option (fun f c -> Format.fprintf f " client%d" c))
      t.client
      (Format.pp_print_option (fun f s -> Format.fprintf f " stamp:%Ld" s))
      t.stamp
      (Format.pp_print_option (fun f s -> Format.fprintf f " sid:%Ld" s))
      t.sid
      (if t.ambiguous then " AMBIGUOUS" else "")
      t.index pp_operation t.op

  (* JSON codec. Int64s travel as decimal strings (JSON numbers are
     doubles and lose precision past 2^53); [None] is [Null]; entry
     lists are lists of two-element lists. *)
  module J = Obs.Json

  let json_of_i64 s = J.String (Int64.to_string s)

  let json_of_opt f = function None -> J.Null | Some v -> f v

  let json_of_str s = J.String s

  let json_of_entries entries =
    J.List (List.map (fun (k, v) -> J.List [ J.String k; J.String v ]) entries)

  let json_of_versioned results =
    J.List
      (List.map (fun (sid, r) -> J.List [ json_of_i64 sid; json_of_opt json_of_str r ]) results)

  let op_to_json = function
    | Get { key; result } ->
        J.Obj [ ("op", J.String "get"); ("key", J.String key); ("result", json_of_opt json_of_str result) ]
    | Put { key; value } ->
        J.Obj [ ("op", J.String "put"); ("key", J.String key); ("value", J.String value) ]
    | Remove { key; removed } ->
        J.Obj [ ("op", J.String "remove"); ("key", J.String key); ("removed", J.Bool removed) ]
    | Scan { from; count; result } ->
        J.Obj
          [
            ("op", J.String "scan");
            ("from", J.String from);
            ("count", J.Int count);
            ("result", json_of_entries result);
          ]
    | Snapshot_taken -> J.Obj [ ("op", J.String "snapshot_taken") ]
    | Branch_created { parent; sid } ->
        J.Obj
          [ ("op", J.String "branch_created"); ("parent", json_of_i64 parent); ("sid", json_of_i64 sid) ]
    | Branch_deleted { sid } ->
        J.Obj [ ("op", J.String "branch_deleted"); ("sid", json_of_i64 sid) ]
    | Branch_get { at; key; result } ->
        J.Obj
          [
            ("op", J.String "branch_get");
            ("at", json_of_i64 at);
            ("key", J.String key);
            ("result", json_of_opt json_of_str result);
          ]
    | Branch_put { at; key; value } ->
        J.Obj
          [
            ("op", J.String "branch_put");
            ("at", json_of_i64 at);
            ("key", J.String key);
            ("value", J.String value);
          ]
    | Branch_remove { at; key; removed } ->
        J.Obj
          [
            ("op", J.String "branch_remove");
            ("at", json_of_i64 at);
            ("key", J.String key);
            ("removed", J.Bool removed);
          ]
    | Branch_scan { at; from; count; result } ->
        J.Obj
          [
            ("op", J.String "branch_scan");
            ("at", json_of_i64 at);
            ("from", J.String from);
            ("count", J.Int count);
            ("result", json_of_entries result);
          ]
    | Get_many { key; results } ->
        J.Obj
          [ ("op", J.String "get_many"); ("key", J.String key); ("results", json_of_versioned results) ]
    | History { from; key; results } ->
        J.Obj
          [
            ("op", J.String "history");
            ("from", json_of_i64 from);
            ("key", J.String key);
            ("results", json_of_versioned results);
          ]

  let to_json t =
    J.Obj
      [
        ("client", json_of_opt (fun c -> J.Int c) t.client);
        ("index", J.Int t.index);
        ("invoked_at", J.Float t.invoked_at);
        ("returned_at", J.Float t.returned_at);
        ("stamp", json_of_opt json_of_i64 t.stamp);
        ("sid", json_of_opt json_of_i64 t.sid);
        ("ambiguous", J.Bool t.ambiguous);
        ("operation", op_to_json t.op);
      ]

  let fail fmt = Format.kasprintf invalid_arg ("Session.Event.of_json: " ^^ fmt)

  let get_field name j = match J.member name j with Some v -> v | None -> fail "missing %s" name

  let as_string name = function J.String s -> s | _ -> fail "%s: expected string" name

  let as_i64 name j =
    match Int64.of_string_opt (as_string name j) with
    | Some v -> v
    | None -> fail "%s: expected int64 string" name

  let as_int name = function J.Int i -> i | _ -> fail "%s: expected int" name

  let as_bool name = function J.Bool b -> b | _ -> fail "%s: expected bool" name

  let as_float name j = match J.number j with Some f -> f | None -> fail "%s: expected number" name

  let as_opt f name = function J.Null -> None | j -> Some (f name j)

  let as_entries name = function
    | J.List l ->
        List.map
          (function
            | J.List [ J.String k; J.String v ] -> (k, v)
            | _ -> fail "%s: expected [key, value] pairs" name)
          l
    | _ -> fail "%s: expected list" name

  let as_versioned name = function
    | J.List l ->
        List.map
          (function
            | J.List [ sid; r ] -> (as_i64 name sid, as_opt as_string name r)
            | _ -> fail "%s: expected [sid, result] pairs" name)
          l
    | _ -> fail "%s: expected list" name

  let op_of_json j =
    let field = get_field in
    match as_string "op" (field "op" j) with
    | "get" -> Get { key = as_string "key" (field "key" j); result = as_opt as_string "result" (field "result" j) }
    | "put" -> Put { key = as_string "key" (field "key" j); value = as_string "value" (field "value" j) }
    | "remove" ->
        Remove { key = as_string "key" (field "key" j); removed = as_bool "removed" (field "removed" j) }
    | "scan" ->
        Scan
          {
            from = as_string "from" (field "from" j);
            count = as_int "count" (field "count" j);
            result = as_entries "result" (field "result" j);
          }
    | "snapshot_taken" -> Snapshot_taken
    | "branch_created" ->
        Branch_created { parent = as_i64 "parent" (field "parent" j); sid = as_i64 "sid" (field "sid" j) }
    | "branch_deleted" -> Branch_deleted { sid = as_i64 "sid" (field "sid" j) }
    | "branch_get" ->
        Branch_get
          {
            at = as_i64 "at" (field "at" j);
            key = as_string "key" (field "key" j);
            result = as_opt as_string "result" (field "result" j);
          }
    | "branch_put" ->
        Branch_put
          {
            at = as_i64 "at" (field "at" j);
            key = as_string "key" (field "key" j);
            value = as_string "value" (field "value" j);
          }
    | "branch_remove" ->
        Branch_remove
          {
            at = as_i64 "at" (field "at" j);
            key = as_string "key" (field "key" j);
            removed = as_bool "removed" (field "removed" j);
          }
    | "branch_scan" ->
        Branch_scan
          {
            at = as_i64 "at" (field "at" j);
            from = as_string "from" (field "from" j);
            count = as_int "count" (field "count" j);
            result = as_entries "result" (field "result" j);
          }
    | "get_many" ->
        Get_many
          { key = as_string "key" (field "key" j); results = as_versioned "results" (field "results" j) }
    | "history" ->
        History
          {
            from = as_i64 "from" (field "from" j);
            key = as_string "key" (field "key" j);
            results = as_versioned "results" (field "results" j);
          }
    | tag -> fail "unknown operation %S" tag

  let of_json j =
    {
      client = as_opt as_int "client" (get_field "client" j);
      index = as_int "index" (get_field "index" j);
      op = op_of_json (get_field "operation" j);
      invoked_at = as_float "invoked_at" (get_field "invoked_at" j);
      returned_at = as_float "returned_at" (get_field "returned_at" j);
      stamp = as_opt as_i64 "stamp" (get_field "stamp" j);
      sid = as_opt as_i64 "sid" (get_field "sid" j);
      ambiguous = as_bool "ambiguous" (get_field "ambiguous" j);
    }
end

type tracer = Event.t -> unit

type t = {
  db : Db.t;
  home : int;
  client : int option;
  tracer : tracer option;
  obs : Obs.t;
  trees : Ops.tree array;
  branchings : Mvcc.Branching.t array;
}

let index db i =
  if i < 0 || i >= Db.n_trees db then
    invalid_arg
      (Printf.sprintf "Session.index: %d out of range (database has %d indexes)" i
         (Db.n_trees db));
  i

let attach ?(home = 0) ?client ?tracer db =
  let config = Db.config db in
  if home < 0 || home >= config.Config.hosts then invalid_arg "Session.attach: home out of range";
  let cache =
    Dyntxn.Objcache.create ~capacity:config.Config.cache_capacity
      ~stats:(Obs.cache (Db.obs db))
      ~node_stats:(Obs.node (Db.obs db))
      ~same_content:Btree.Bview.same_stamp ()
  in
  let trees =
    Array.init config.Config.n_trees (fun tree_id ->
        Db.make_tree_handle ?client ~config ~cluster:(Db.cluster db)
          ~shared_alloc:(Db.shared_alloc db) ~cache ~home ~tree_id ())
  in
  let branchings =
    if config.Config.branching then
      Array.map
        (fun tree ->
          Mvcc.Branching.attach
            ~broken_isolation:config.Config.broken_branch_isolation
            ~tree ~beta:config.Config.beta ())
        trees
    else [||]
  in
  let t = { db; home; client; tracer; obs = Db.obs db; trees; branchings } in
  (match tracer with
  | None -> ()
  | Some f ->
      Array.iteri
        (fun index br ->
          Mvcc.Branching.set_tracer br (fun tr ->
              let op =
                match tr.Mvcc.Branching.Trace.op with
                | Mvcc.Branching.Trace.Branch_created { parent; sid } ->
                    Event.Branch_created { parent; sid }
                | Branch_deleted { sid } -> Event.Branch_deleted { sid }
                | Get { at; key; result } -> Event.Branch_get { at; key; result }
                | Put { at; key; value } -> Event.Branch_put { at; key; value }
                | Remove { at; key; removed } -> Event.Branch_remove { at; key; removed }
                | Scan { at; from; count; result } ->
                    Event.Branch_scan { at; from; count; result }
                | Get_many { key; results } -> Event.Get_many { key; results }
                | History { from; key; results } -> Event.History { from; key; results }
              in
              f
                {
                  Event.client = t.client;
                  index;
                  op;
                  invoked_at = tr.Mvcc.Branching.Trace.invoked_at;
                  returned_at = tr.Mvcc.Branching.Trace.returned_at;
                  stamp = tr.Mvcc.Branching.Trace.stamp;
                  sid = None;
                  ambiguous = tr.Mvcc.Branching.Trace.ambiguous;
                }))
        branchings);
  t

let db t = t.db

let home t = t.home

let client t = t.client

let tree_of t index = t.trees.(index)

let check_linear t =
  if (Db.config t.db).Config.branching then
    invalid_arg "Session: linear-snapshot operation on a branching database"

let vctx_of t index txn = Ops.Linear.tip t.trees.(index) txn

let emit t ~index ~invoked ?stamp ?sid ?(ambiguous = false) op =
  match t.tracer with
  | None -> ()
  | Some f ->
      f
        {
          Event.client = t.client;
          index;
          op;
          invoked_at = invoked;
          returned_at = Sim.now ();
          stamp;
          sid;
          ambiguous;
        }

(* Stamp of the operation that just returned on this index handle
   (cooperative scheduler: nothing else ran on the handle since). *)
let op_stamp t index = Ops.last_commit_stamp t.trees.(index)

let get ?(index = 0) t k =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Get ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  let result = Ops.get t.trees.(index) ~vctx_of:(vctx_of t index) k in
  emit t ~index ~invoked ?stamp:(op_stamp t index) (Event.Get { key = k; result });
  result

let put ?(index = 0) t k v =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Put ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  try
    Ops.put t.trees.(index) ~vctx_of:(vctx_of t index) k v;
    emit t ~index ~invoked ?stamp:(op_stamp t index) (Event.Put { key = k; value = v })
  with Ops.Ambiguous _ as e ->
    (* The write may or may not have taken effect; record it so the
       checker can resolve it from later reads. *)
    emit t ~index ~invoked ~ambiguous:true (Event.Put { key = k; value = v });
    raise e

let remove ?(index = 0) t k =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Remove ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  try
    let removed = Ops.remove t.trees.(index) ~vctx_of:(vctx_of t index) k in
    emit t ~index ~invoked ?stamp:(op_stamp t index) (Event.Remove { key = k; removed });
    removed
  with Ops.Ambiguous _ as e ->
    emit t ~index ~invoked ~ambiguous:true (Event.Remove { key = k; removed = false });
    raise e

let scan ?(index = 0) t ~from ~count =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Scan ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  let result = Ops.scan t.trees.(index) ~vctx_of:(vctx_of t index) ~from ~count in
  emit t ~index ~invoked ?stamp:(op_stamp t index) (Event.Scan { from; count; result });
  result

let multi_get t pairs =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Multi_get ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.multi_get
    (List.map (fun (index, k) -> (t.trees.(index), k)) pairs)
    ~vctx_of:(fun tree txn -> Ops.Linear.tip tree txn)

let multi_put t triples =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Multi_put ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.multi_put
    (List.map (fun (index, k, v) -> (t.trees.(index), k, v)) triples)
    ~vctx_of:(fun tree txn -> Ops.Linear.tip tree txn)

type txn = { session : t; raw : Txn.t }

let with_txn t f =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.With_txn ~path:Obs.Op.Up_to_date @@ fun () ->
  Ops.run_txn t.trees.(0) (fun raw -> f { session = t; raw })

let t_vctx txn index = Ops.Linear.tip txn.session.trees.(index) txn.raw

let t_get ?(index = 0) txn k =
  Ops.get_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k

let t_put ?(index = 0) txn k v =
  Ops.put_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k v

let t_remove ?(index = 0) txn k =
  Ops.remove_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) k

let t_scan ?(index = 0) txn ~from ~count =
  Ops.scan_in_txn txn.session.trees.(index) txn.raw (t_vctx txn index) ~from ~count

type snapshot = { index : int; sid : int64; root : Dyntxn.Objref.t }

let snapshot ?(index = 0) t =
  check_linear t;
  Obs.time_op t.obs ~op:Obs.Op.Snapshot_req ~path:Obs.Op.Up_to_date @@ fun () ->
  let invoked = Sim.now () in
  let sid, root = Mvcc.Scs.request (Db.scs t.db ~index) in
  emit t ~index ~invoked ~sid Event.Snapshot_taken;
  { index; sid; root }

let snap_vctx t snap _txn = Ops.Linear.at_snapshot t.trees.(snap.index) ~sid:snap.sid ~root:snap.root

let get_at t snap k =
  Obs.time_op t.obs ~op:Obs.Op.Get ~path:Obs.Op.At_snapshot @@ fun () ->
  let invoked = Sim.now () in
  let result = Ops.get t.trees.(snap.index) ~vctx_of:(snap_vctx t snap) k in
  emit t ~index:snap.index ~invoked ~sid:snap.sid (Event.Get { key = k; result });
  result

let scan_at t snap ~from ~count =
  Obs.time_op t.obs ~op:Obs.Op.Scan ~path:Obs.Op.At_snapshot @@ fun () ->
  let invoked = Sim.now () in
  let result = Ops.scan t.trees.(snap.index) ~vctx_of:(snap_vctx t snap) ~from ~count in
  emit t ~index:snap.index ~invoked ~sid:snap.sid (Event.Scan { from; count; result });
  result

let branching ?(index = 0) t =
  if not (Db.config t.db).Config.branching then
    invalid_arg "Session.branching: database not started in branching mode";
  t.branchings.(index)

let branch ?(index = 0) t ~from = Mvcc.Branching.create_branch (branching ~index t) ~from
