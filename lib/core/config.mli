(** Deployment configuration for a Minuet database. *)

type t = {
  hosts : int;  (** Memnode count (one memnode + one proxy per host, Sec. 6.1). *)
  sinfonia : Sinfonia.Config.t;  (** Substrate cost model. *)
  layout : Btree.Layout.t;  (** Address-space layout (node size, slots, ...). *)
  mode : Btree.Ops.mode;  (** Dirty traversals (default) or the baseline. *)
  n_trees : int;  (** Number of independent B-tree indexes to create. *)
  branching : bool;  (** Branching versions (Sec. 5) instead of linear snapshots. *)
  beta : int;  (** Descendant-set bound for branching versions. *)
  max_keys_leaf : int option;  (** Override derived leaf fanout. *)
  max_keys_internal : int option;
  scs_borrowing : bool;  (** Borrowed snapshots (Sec. 4.3). *)
  scs_min_interval : float;  (** Snapshot staleness bound k, seconds (Sec. 6.3). *)
  cache_capacity : int;  (** Proxy object-cache entries. *)
  alloc_chunk : int;  (** Slots reserved per allocator refill. *)
  scan_batch : int;
      (** Leaves fetched per minitransaction round trip by batched
          scans (default 16); 1 re-traverses per leaf (pre-batching
          behaviour). *)
  unsafe_dirty_leaf_reads : bool;
      (** Deliberately broken concurrency control for checker
          validation: up-to-date leaf reads skip commit-time validation,
          so gets can serialize against a stale leaf. The history
          checker must flag such runs. Never enable outside checker
          self-tests. *)
  broken_branch_isolation : bool;
      (** Deliberately broken branch isolation for checker validation:
          reads addressed at a read-only version are silently routed to
          the mainline tip below it, leaking descendant writes into
          frozen snapshots. The checker's frozen-ancestor rule must flag
          such runs. Never enable outside checker self-tests. *)
}

val default : t
(** Paper-like settings at laptop scale: 4 hosts, 4 KiB nodes, dirty
    traversals, one linear-snapshot tree, borrowing on, k = 0. *)

val with_hosts : int -> t -> t

val small_tree : t -> t
(** Shrink nodes (512 B) and fanout (4 keys) so tests exercise deep
    trees and frequent splits with little data. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent settings (e.g. heap
    capacity below what the layout needs — normally fixed up by
    {!Db.start} automatically). *)
