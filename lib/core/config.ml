type t = {
  hosts : int;
  sinfonia : Sinfonia.Config.t;
  layout : Btree.Layout.t;
  mode : Btree.Ops.mode;
  n_trees : int;
  branching : bool;
  beta : int;
  max_keys_leaf : int option;
  max_keys_internal : int option;
  scs_borrowing : bool;
  scs_min_interval : float;
  cache_capacity : int;
  alloc_chunk : int;
  scan_batch : int;
  unsafe_dirty_leaf_reads : bool;
  broken_branch_isolation : bool;
}

let default =
  {
    hosts = 4;
    sinfonia = Sinfonia.Config.default;
    layout = Btree.Layout.make ();
    mode = Btree.Ops.Dirty_traversal;
    n_trees = 1;
    branching = false;
    beta = 2;
    max_keys_leaf = None;
    max_keys_internal = None;
    scs_borrowing = true;
    scs_min_interval = 0.0;
    cache_capacity = 65536;
    alloc_chunk = 64;
    scan_batch = 16;
    unsafe_dirty_leaf_reads = false;
    broken_branch_isolation = false;
  }

let with_hosts hosts t = { t with hosts }

let small_tree t =
  {
    t with
    layout = Btree.Layout.make ~node_size:512 ~max_slots:8192 ~max_trees:4 ~max_snapshots:512 ();
    max_keys_leaf = Some 4;
    max_keys_internal = Some 4;
  }

let validate t =
  if t.hosts <= 0 then invalid_arg "Minuet.Config: hosts must be positive";
  (* The seqnum table is only used (and sized per memnode) in the
     baseline mode. *)
  if t.mode = Btree.Ops.Validated_traversal && t.hosts > t.layout.Btree.Layout.max_memnodes then
    invalid_arg "Minuet.Config: hosts exceeds layout.max_memnodes";
  if t.n_trees <= 0 || t.n_trees > t.layout.Btree.Layout.max_trees then
    invalid_arg "Minuet.Config: n_trees out of range";
  if t.branching && t.beta < 2 then invalid_arg "Minuet.Config: beta must be >= 2";
  if t.scs_min_interval < 0.0 then invalid_arg "Minuet.Config: negative staleness bound";
  if t.scan_batch < 1 then invalid_arg "Minuet.Config: scan_batch must be >= 1"
