module Cluster = Sinfonia.Cluster
module Layout = Btree.Layout
module Ops = Btree.Ops
module Node_alloc = Btree.Node_alloc

type t = {
  config : Config.t;
  cluster : Cluster.t;
  shared_alloc : Node_alloc.Shared.t;
  scs : Mvcc.Scs.t array;
  gc_trees : (Ops.tree * Node_alloc.t) array;
  mutable gc_running : bool;
}

(* Build a tree handle with its own allocator over the shared state. *)
let make_tree_handle ?client ~config ~cluster ~shared_alloc ~cache ~home ~tree_id () =
  let alloc =
    Node_alloc.create ~chunk:config.Config.alloc_chunk ~first_node:home ~cluster
      ~layout:config.Config.layout ~shared:shared_alloc ()
  in
  Ops.make_tree ~mode:config.Config.mode ?max_keys_leaf:config.Config.max_keys_leaf
    ?max_keys_internal:config.Config.max_keys_internal ~scan_batch:config.Config.scan_batch ~home
    ?client ~unsafe_dirty_leaf_reads:config.Config.unsafe_dirty_leaf_reads ~cluster
    ~layout:config.Config.layout ~tree_id ~alloc ~cache ()

let start ?(config = Config.default) () =
  Config.validate config;
  (* The memnode heap must fit the layout. *)
  let heap_needed = Layout.heap_capacity_needed config.Config.layout in
  let sinfonia =
    if config.Config.sinfonia.Sinfonia.Config.heap_capacity < heap_needed then
      { config.Config.sinfonia with Sinfonia.Config.heap_capacity = heap_needed }
    else config.Config.sinfonia
  in
  let config = { config with Config.sinfonia } in
  (* Derive the cluster's random streams from the simulation seed so a
     whole run is a pure function of Harness.run's ~seed. *)
  let seed = Sim.Rng.int (Sim.rng ()) 0x3FFFFFFF in
  let cluster = Cluster.create ~config:sinfonia ~seed ~n:config.Config.hosts () in
  let shared_alloc = Node_alloc.Shared.create ~n_memnodes:config.Config.hosts in
  (* Admin handles used for initialization and the SCS. *)
  let admin_cache =
    (* [same_content]: a crashed epoch's entry whose payload carries the
       same node stamp as the fresh bytes survives revalidation without
       a decode (see Btree.Bview). *)
    Dyntxn.Objcache.create ~capacity:config.Config.cache_capacity
      ~stats:(Obs.cache (Cluster.obs cluster))
      ~node_stats:(Obs.node (Cluster.obs cluster))
      ~same_content:Btree.Bview.same_stamp ()
  in
  let gc_trees =
    Array.init config.Config.n_trees (fun tree_id ->
        let tree =
          make_tree_handle ~config ~cluster ~shared_alloc ~cache:admin_cache ~home:0 ~tree_id ()
        in
        (* The GC handle reuses the tree's allocator so reclaimed slots
           return to the shared free lists. *)
        let alloc =
          Node_alloc.create ~chunk:config.Config.alloc_chunk ~cluster
            ~layout:config.Config.layout ~shared:shared_alloc ()
        in
        (tree, alloc))
  in
  let scs =
    Array.map
      (fun (tree, _) ->
        if config.Config.branching then begin
          let br = Mvcc.Branching.attach ~tree ~beta:config.Config.beta () in
          Mvcc.Branching.init_tree br
        end
        else Ops.Linear.init_tree tree;
        Mvcc.Scs.create ~borrowing:config.Config.scs_borrowing
          ~min_interval:config.Config.scs_min_interval ~tree ())
      gc_trees
  in
  { config; cluster; shared_alloc; scs; gc_trees; gc_running = false }

let config t = t.config

let cluster t = t.cluster

let shared_alloc t = t.shared_alloc

let scs t ~index = t.scs.(index)

let obs t = Cluster.obs t.cluster

let metrics t = Cluster.metrics t.cluster

let n_trees t = t.config.Config.n_trees

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>cluster: %d memnodes (replication %b)@," t.config.Config.hosts
    t.config.Config.sinfonia.Sinfonia.Config.replication;
  for i = 0 to Cluster.n_memnodes t.cluster - 1 do
    let mn = Cluster.memnode t.cluster i in
    let heap = Sinfonia.Memnode.store_heap (Sinfonia.Memnode.primary mn) in
    Format.fprintf fmt "  memnode %2d: util=%4.1f%% resident=%d KiB (address space %d KiB)%s@," i
      (100.0 *. Sim.Resource.utilization (Sinfonia.Memnode.cpu mn) ~since:0.0)
      (Sinfonia.Heap.resident heap / 1024)
      (Sinfonia.Heap.high_water heap / 1024)
      (if Sinfonia.Memnode.crashed mn then " (CRASHED)" else "")
  done;
  Format.fprintf fmt "metrics:@,";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "  %-40s %d@," name v)
    (Sim.Metrics.counters (Cluster.metrics t.cluster));
  Format.fprintf fmt "%a" Obs.Report.pp (Cluster.obs t.cluster);
  Format.fprintf fmt "@]"

let enable_gc ?(interval = 5.0) ~keep t =
  if t.config.Config.branching then invalid_arg "Db.enable_gc: linear-snapshot mode only";
  if keep < 0 then invalid_arg "Db.enable_gc: negative keep";
  if not t.gc_running then begin
    t.gc_running <- true;
    Array.iter
      (fun (tree, alloc) ->
        Sim.spawn ~name:"gc-policy" (fun () ->
            let rec loop () =
              Sim.delay interval;
              Mvcc.Gc.keep_recent tree ~n:keep;
              let (_ : int) = Mvcc.Gc.sweep tree ~alloc in
              loop ()
            in
            loop ()))
      t.gc_trees
  end

let crash_host t i = Cluster.crash t.cluster i

let recover_host t i = Cluster.recover t.cluster i
