(** A running Minuet deployment: a Sinfonia cluster with initialized
    B-tree indexes, a snapshot creation service per index, and shared
    allocator state. Create sessions with {!Session.attach} to operate
    on it. *)

type t

val start : ?config:Config.t -> unit -> t
(** Boot the cluster and initialize every index. Must run inside a
    simulation ({!Harness.run} does both). *)

val config : t -> Config.t

val cluster : t -> Sinfonia.Cluster.t

val shared_alloc : t -> Btree.Node_alloc.Shared.t

val scs : t -> index:int -> Mvcc.Scs.t
(** The snapshot creation service for one index (linear mode only). *)

val obs : t -> Obs.t
(** The cluster's observability registry: typed counters, abort
    taxonomy by layer, operation latency histograms and trace spans. *)

val metrics : t -> Sim.Metrics.t

val n_trees : t -> int

val pp_stats : Format.formatter -> t -> unit
(** Human-readable runtime report: per-memnode CPU utilization and
    storage high-water marks, all protocol metrics (commit/abort
    counters, retries, copies, GC work), and the observability report
    (operation latency quantiles and per-layer abort reasons). *)

val enable_gc : ?interval:float -> keep:int -> t -> unit
(** Start background garbage collection for every index (Sec. 4.4):
    every [interval] simulated seconds (default 5) the watermark is
    advanced so that the [keep] most recent snapshots stay queryable,
    and superseded node versions are swept back to the allocator.
    Linear-snapshot mode only. *)

val crash_host : t -> int -> unit
(** Crash a memnode; operations fail over to its backup replica. *)

val recover_host : t -> int -> unit

(**/**)

val make_tree_handle :
  ?client:int ->
  config:Config.t ->
  cluster:Sinfonia.Cluster.t ->
  shared_alloc:Btree.Node_alloc.Shared.t ->
  cache:Dyntxn.Objcache.t ->
  home:int ->
  tree_id:int ->
  unit ->
  Btree.Ops.tree
(** Internal (used by {!Session}). [client] is the attaching proxy's
    host id for the network fault model. *)
