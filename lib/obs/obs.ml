module Json = Json
module Counter = Sim.Stats.Counter
module Hist = Sim.Stats.Hist
module Metrics = Sim.Metrics

(* Simulated time when available; reports can also be rendered outside
   a simulation (e.g. after Sim.run returns). *)
let tnow () = if Sim.inside () then Sim.now () else 0.0

module Abort = struct
  type reason =
    | Lock_busy
    | Validation_failed
    | Fence_violation
    | Height_mismatch
    | Snapshot_stale
    | Crashed_host
    | Partitioned

  let all =
    [
      Lock_busy;
      Validation_failed;
      Fence_violation;
      Height_mismatch;
      Snapshot_stale;
      Crashed_host;
      Partitioned;
    ]

  let to_string = function
    | Lock_busy -> "lock_busy"
    | Validation_failed -> "validation_failed"
    | Fence_violation -> "fence_violation"
    | Height_mismatch -> "height_mismatch"
    | Snapshot_stale -> "snapshot_stale"
    | Crashed_host -> "crashed_host"
    | Partitioned -> "partitioned"

  let index = function
    | Lock_busy -> 0
    | Validation_failed -> 1
    | Fence_violation -> 2
    | Height_mismatch -> 3
    | Snapshot_stale -> 4
    | Crashed_host -> 5
    | Partitioned -> 6

  type layer = Mtx | Txn | Btree | Scs

  let layers = [ Mtx; Txn; Btree; Scs ]

  let layer_to_string = function Mtx -> "mtx" | Txn -> "txn" | Btree -> "btree" | Scs -> "scs"

  let layer_index = function Mtx -> 0 | Txn -> 1 | Btree -> 2 | Scs -> 3
end

module Op = struct
  type op = Get | Put | Remove | Scan | With_txn | Multi_get | Multi_put | Snapshot_req

  type path = Up_to_date | At_snapshot

  let all = [ Get; Put; Remove; Scan; With_txn; Multi_get; Multi_put; Snapshot_req ]

  let to_string = function
    | Get -> "get"
    | Put -> "put"
    | Remove -> "remove"
    | Scan -> "scan"
    | With_txn -> "with_txn"
    | Multi_get -> "multi_get"
    | Multi_put -> "multi_put"
    | Snapshot_req -> "snapshot"

  let label op path =
    match path with Up_to_date -> to_string op | At_snapshot -> to_string op ^ "@snapshot"

  let index = function
    | Get -> 0
    | Put -> 1
    | Remove -> 2
    | Scan -> 3
    | With_txn -> 4
    | Multi_get -> 5
    | Multi_put -> 6
    | Snapshot_req -> 7

  let path_index = function Up_to_date -> 0 | At_snapshot -> 1
end

(* ------------------------------------------------------------------ *)
(* Typed handle records                                                 *)
(* ------------------------------------------------------------------ *)

type mtx_stats = {
  committed_1pc : Counter.t;
  committed_2pc : Counter.t;
  busy_retries : Counter.t;
  compare_failed : Counter.t;
  retry_budget_exhausted : Counter.t;
  vote_epoch_aborts : Counter.t;
  mtx_unavailable : Counter.t;
  mirrors : Counter.t;
  orphans_released : Counter.t;
  crashes : Counter.t;
  recoveries : Counter.t;
}

type txn_stats = {
  commits : Counter.t;
  free_commits : Counter.t;
  validation_failures : Counter.t;
  retry_exhausted : Counter.t;
  txn_unavailable : Counter.t;
}

type btree_stats = {
  abort_fence : Counter.t;
  abort_version : Counter.t;
  abort_copied : Counter.t;
  abort_height : Counter.t;
  splits : Counter.t;
  root_splits : Counter.t;
  cow : Counter.t;
  discretionary_cow : Counter.t;
  op_retries : Counter.t;
  snapshots_created : Counter.t;
  branches_created : Counter.t;
  branches_deleted : Counter.t;
  chunk_reservations : Counter.t;
}

type cache_stats = {
  cache_hits : Counter.t;
  cache_misses : Counter.t;
  cache_evictions : Counter.t;
  cache_bulk_evictions : Counter.t;
  cache_stale_hits : Counter.t;
  cache_epoch_revalidations : Counter.t;
  cache_epoch_survived : Counter.t;
}

type scan_stats = {
  scan_batches : Counter.t;
  scan_batched_leaves : Counter.t;
  scan_continuations : Counter.t;
  scan_prefetches : Counter.t;
  scan_batch_aborts : Counter.t;
}

type node_stats = {
  view_hits : Counter.t;
  materialisations : Counter.t;
  stamp_revalidations : Counter.t;
  node_bytes_copied : Counter.t;
}

type gc_stats = { slots_reclaimed : Counter.t; branch_slots_reclaimed : Counter.t }

type scs_stats = {
  scs_created : Counter.t;
  scs_borrowed : Counter.t;
  scs_stale_reused : Counter.t;
}

type chaos_stats = {
  faults_injected : Counter.t;
  crashes_injected : Counter.t;
  partitions_injected : Counter.t;
  delay_faults_injected : Counter.t;
  stalls_injected : Counter.t;
  scs_outages_injected : Counter.t;
  mid_crashes_injected : Counter.t;
  mirror_partitions_injected : Counter.t;
  replica_lags_injected : Counter.t;
}

type recovery_stats = {
  in_doubt_found : Counter.t;
  resolved_commit : Counter.t;
  resolved_abort : Counter.t;
  redo_replayed : Counter.t;
  mirror_skipped : Counter.t;
  promotions : Counter.t;
}

module Span = struct
  type kind =
    | Op of Op.op * Op.path
    | Txn
    | Attempt
    | Commit
    | Traversal
    | Scan_batch
    | Mtx_exec
    | Mtx_prepare
    | Mtx_commit
    | Snapshot_create
    | Scs_request
    | Fault of string
    | Recovery_sweep

  let kind_to_string = function
    | Op (op, path) -> "op." ^ Op.label op path
    | Txn -> "txn"
    | Attempt -> "txn.attempt"
    | Commit -> "txn.commit"
    | Traversal -> "btree.traversal"
    | Scan_batch -> "btree.scan_batch"
    | Mtx_exec -> "mtx.exec"
    | Mtx_prepare -> "mtx.prepare"
    | Mtx_commit -> "mtx.commit"
    | Snapshot_create -> "scs.create_snapshot"
    | Scs_request -> "scs.request"
    | Fault kind -> "chaos.fault." ^ kind
    | Recovery_sweep -> "recovery.sweep"

  type outcome = Completed | Aborted of Abort.reason | Failed of string

  type t = { sp_id : int; sp_parent : int; sp_kind : kind; sp_start : float }

  type info = {
    id : int;
    parent : int;
    kind : kind;
    start : float;
    stop : float;
    outcome : outcome;
  }
end

type t = {
  metrics : Metrics.t;
  mtx_stats : mtx_stats;
  txn_stats : txn_stats;
  btree_stats : btree_stats;
  cache_stats : cache_stats;
  scan_stats : scan_stats;
  node_stats : node_stats;
  gc_stats : gc_stats;
  scs_stats : scs_stats;
  chaos_stats : chaos_stats;
  recovery_stats : recovery_stats;
  aborts : Counter.t array array; (* [layer][reason] *)
  op_hists : Hist.t array array; (* [op][path] *)
  span_hists : (Span.kind, Hist.t) Hashtbl.t;
  ring : Span.info option array;
  mutable ring_next : int;
  mutable ring_count : int;
  mutable next_span_id : int;
}

let metrics t = t.metrics

let counter t ~name = Metrics.counter t.metrics name

let hist t ~name = Metrics.hist t.metrics name

let create ?(span_capacity = 65536) () =
  if span_capacity <= 0 then invalid_arg "Obs.create: span_capacity must be positive";
  let m = Metrics.create () in
  let c name = Metrics.counter m name in
  let mtx_stats =
    {
      committed_1pc = c "mtx.committed_1pc";
      committed_2pc = c "mtx.committed_2pc";
      busy_retries = c "mtx.busy_retries";
      compare_failed = c "mtx.compare_failed";
      retry_budget_exhausted = c "mtx.retry_budget_exhausted";
      vote_epoch_aborts = c "mtx.vote_epoch_aborts";
      mtx_unavailable = c "mtx.unavailable";
      mirrors = c "replication.mirrors";
      orphans_released = c "recovery.orphans_released";
      crashes = c "memnode.crashes";
      recoveries = c "memnode.recoveries";
    }
  in
  let txn_stats =
    {
      commits = c "txn.commits";
      free_commits = c "txn.free_commits";
      validation_failures = c "txn.validation_failures";
      retry_exhausted = c "txn.retry_exhausted";
      txn_unavailable = c "txn.unavailable";
    }
  in
  let btree_stats =
    {
      abort_fence = c "btree.abort.fence";
      abort_version = c "btree.abort.version";
      abort_copied = c "btree.abort.copied";
      abort_height = c "btree.abort.height";
      splits = c "btree.splits";
      root_splits = c "btree.root_splits";
      cow = c "btree.cow";
      discretionary_cow = c "btree.discretionary_cow";
      op_retries = c "btree.op_retries";
      snapshots_created = c "btree.snapshots_created";
      branches_created = c "btree.branches_created";
      branches_deleted = c "btree.branches_deleted";
      chunk_reservations = c "alloc.chunk_reservations";
    }
  in
  let cache_stats =
    {
      cache_hits = c "cache.hits";
      cache_misses = c "cache.misses";
      cache_evictions = c "cache.evictions";
      cache_bulk_evictions = c "cache.bulk_evictions";
      cache_stale_hits = c "cache.stale_epoch_hits";
      cache_epoch_revalidations = c "cache.epoch_revalidations";
      cache_epoch_survived = c "cache.epoch_survived";
    }
  in
  let scan_stats =
    {
      scan_batches = c "scan.batches";
      scan_batched_leaves = c "scan.batched_leaves";
      scan_continuations = c "scan.continuations";
      scan_prefetches = c "scan.prefetches";
      scan_batch_aborts = c "scan.batch_aborts";
    }
  in
  let node_stats =
    {
      view_hits = c "node.view_hits";
      materialisations = c "node.materialisations";
      stamp_revalidations = c "node.stamp_revalidations";
      node_bytes_copied = c "node.bytes_copied";
    }
  in
  let gc_stats =
    {
      slots_reclaimed = c "gc.slots_reclaimed";
      branch_slots_reclaimed = c "gc.branch_slots_reclaimed";
    }
  in
  let scs_stats =
    {
      scs_created = c "scs.snapshots_created";
      scs_borrowed = c "scs.borrows";
      scs_stale_reused = c "scs.stale_reuses";
    }
  in
  let chaos_stats =
    {
      faults_injected = c "chaos.faults_injected";
      crashes_injected = c "chaos.crashes";
      partitions_injected = c "chaos.partitions";
      delay_faults_injected = c "chaos.delay_faults";
      stalls_injected = c "chaos.stalls";
      scs_outages_injected = c "chaos.scs_outages";
      mid_crashes_injected = c "chaos.mid_crashes";
      mirror_partitions_injected = c "chaos.mirror_partitions";
      replica_lags_injected = c "chaos.replica_lags";
    }
  in
  let recovery_stats =
    {
      in_doubt_found = c "recovery.in_doubt";
      resolved_commit = c "recovery.resolved_commit";
      resolved_abort = c "recovery.resolved_abort";
      redo_replayed = c "redo.replayed";
      mirror_skipped = c "replication.mirror_skipped";
      promotions = c "recovery.promotions";
    }
  in
  let aborts =
    Array.map
      (fun layer ->
        Array.map
          (fun reason ->
            c
              (Printf.sprintf "abort.%s.%s" (Abort.layer_to_string layer)
                 (Abort.to_string reason)))
          (Array.of_list Abort.all))
      (Array.of_list Abort.layers)
  in
  let op_hists =
    Array.map
      (fun op ->
        Array.map
          (fun path -> Metrics.hist m ("op." ^ Op.label op path))
          [| Op.Up_to_date; Op.At_snapshot |])
      (Array.of_list Op.all)
  in
  {
    metrics = m;
    mtx_stats;
    txn_stats;
    btree_stats;
    cache_stats;
    scan_stats;
    node_stats;
    gc_stats;
    scs_stats;
    chaos_stats;
    recovery_stats;
    aborts;
    op_hists;
    span_hists = Hashtbl.create 16;
    ring = Array.make span_capacity None;
    ring_next = 0;
    ring_count = 0;
    next_span_id = 1;
  }

let mtx t = t.mtx_stats

let txn t = t.txn_stats

let btree t = t.btree_stats

let cache t = t.cache_stats

let scan t = t.scan_stats

let node t = t.node_stats

let gc t = t.gc_stats

let scs t = t.scs_stats

let chaos t = t.chaos_stats

let recovery t = t.recovery_stats

(* ------------------------------------------------------------------ *)
(* Aborts                                                               *)
(* ------------------------------------------------------------------ *)

let abort t ~layer reason = Counter.incr t.aborts.(Abort.layer_index layer).(Abort.index reason)

let abort_count t ?layer reason =
  match layer with
  | Some l -> Counter.value t.aborts.(Abort.layer_index l).(Abort.index reason)
  | None ->
      Array.fold_left (fun acc row -> acc + Counter.value row.(Abort.index reason)) 0 t.aborts

let abort_counts t =
  List.concat_map
    (fun layer ->
      List.filter_map
        (fun reason ->
          let n = Counter.value t.aborts.(Abort.layer_index layer).(Abort.index reason) in
          if n > 0 then Some (layer, reason, n) else None)
        Abort.all)
    Abort.layers

(* ------------------------------------------------------------------ *)
(* Op latency                                                           *)
(* ------------------------------------------------------------------ *)

let op_hist t ~op ~path = t.op_hists.(Op.index op).(Op.path_index path)

let observe_op t ~op ~path v = Hist.add (op_hist t ~op ~path) v

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

let span_hist t kind =
  match Hashtbl.find_opt t.span_hists kind with
  | Some h -> h
  | None ->
      let h = Metrics.hist t.metrics ("span." ^ Span.kind_to_string kind) in
      Hashtbl.add t.span_hists kind h;
      h

let span_begin t kind =
  let id = t.next_span_id in
  t.next_span_id <- id + 1;
  let parent = Sim.trace_context () in
  Sim.set_trace_context id;
  { Span.sp_id = id; sp_parent = parent; sp_kind = kind; sp_start = tnow () }

let span_end ?(outcome = Span.Completed) t (span : Span.t) =
  Sim.set_trace_context span.Span.sp_parent;
  let stop = tnow () in
  Hist.add (span_hist t span.Span.sp_kind) (stop -. span.Span.sp_start);
  let info =
    {
      Span.id = span.Span.sp_id;
      parent = span.Span.sp_parent;
      kind = span.Span.sp_kind;
      start = span.Span.sp_start;
      stop;
      outcome;
    }
  in
  t.ring.(t.ring_next) <- Some info;
  t.ring_next <- (t.ring_next + 1) mod Array.length t.ring;
  t.ring_count <- t.ring_count + 1

let with_span t ?outcome_of_exn kind f =
  let span = span_begin t kind in
  match f () with
  | v ->
      span_end t span;
      v
  | exception e ->
      let outcome =
        match Option.bind outcome_of_exn (fun g -> g e) with
        | Some o -> o
        | None -> Span.Failed (Printexc.to_string e)
      in
      span_end ~outcome t span;
      raise e

let spans t =
  let cap = Array.length t.ring in
  let start = if t.ring_count <= cap then 0 else t.ring_next in
  let n = min t.ring_count cap in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some info -> info
      | None -> assert false)

let clear_spans t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ring_next <- 0;
  t.ring_count <- 0

let time_op t ~op ~path f =
  let start = tnow () in
  with_span t (Span.Op (op, path)) (fun () ->
      let v = f () in
      observe_op t ~op ~path (tnow () -. start);
      v)

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

module Report = struct
  let ms v = v *. 1e3

  let hist_json h =
    Json.Obj
      [
        ("count", Json.Int (Hist.count h));
        ("mean_ms", Json.Float (ms (Hist.mean h)));
        ("p50_ms", Json.Float (ms (Hist.quantile h 0.5)));
        ("p95_ms", Json.Float (ms (Hist.quantile h 0.95)));
        ("p99_ms", Json.Float (ms (Hist.quantile h 0.99)));
        ("p999_ms", Json.Float (ms (Hist.p999 h)));
        ("max_ms", Json.Float (ms (Hist.max h)));
      ]

  let aborts_json t =
    Json.Obj
      (List.map
         (fun layer ->
           ( Abort.layer_to_string layer,
             Json.Obj
               (List.map
                  (fun reason ->
                    (Abort.to_string reason, Json.Int (abort_count t ~layer reason)))
                  Abort.all) ))
         Abort.layers)

  let ops_json t =
    let cells =
      List.concat_map
        (fun op ->
          List.filter_map
            (fun path ->
              let h = op_hist t ~op ~path in
              if Hist.count h > 0 then Some (Op.label op path, hist_json h) else None)
            [ Op.Up_to_date; Op.At_snapshot ])
        Op.all
    in
    Json.Obj cells

  let span_prefix = "span."

  let spans_json t =
    let cells =
      List.filter_map
        (fun (name, h) ->
          if String.length name > String.length span_prefix
             && String.sub name 0 (String.length span_prefix) = span_prefix
             && Hist.count h > 0
          then
            Some
              ( String.sub name (String.length span_prefix)
                  (String.length name - String.length span_prefix),
                hist_json h )
          else None)
        (Metrics.hists t.metrics)
    in
    Json.Obj cells

  let to_json ?name t =
    Json.Obj
      [
        ("name", match name with Some n -> Json.String n | None -> Json.Null);
        ("schema_version", Json.Int 1);
        ("sim_time_s", Json.Float (tnow ()));
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Metrics.counters t.metrics)) );
        ("aborts", aborts_json t);
        ("ops", ops_json t);
        ("spans", spans_json t);
      ]

  let write ~name ?(dir = ".") t =
    let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string (to_json ~name t));
        output_char oc '\n');
    path

  let pp_hist_line fmt (label, h) =
    Format.fprintf fmt
      "  %-24s n=%-8d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms p999=%.3fms max=%.3fms@,"
      label (Hist.count h) (ms (Hist.mean h))
      (ms (Hist.quantile h 0.5))
      (ms (Hist.quantile h 0.95))
      (ms (Hist.quantile h 0.99))
      (ms (Hist.p999 h))
      (ms (Hist.max h))

  let pp fmt t =
    Format.fprintf fmt "@[<v>op latency (simulated):@,";
    List.iter
      (fun op ->
        List.iter
          (fun path ->
            let h = op_hist t ~op ~path in
            if Hist.count h > 0 then pp_hist_line fmt (Op.label op path, h))
          [ Op.Up_to_date; Op.At_snapshot ])
      Op.all;
    (match abort_counts t with
    | [] -> Format.fprintf fmt "aborts: none@,"
    | counts ->
        Format.fprintf fmt "aborts (layer.reason):@,";
        List.iter
          (fun (layer, reason, n) ->
            Format.fprintf fmt "  %-24s %d@,"
              (Abort.layer_to_string layer ^ "." ^ Abort.to_string reason)
              n)
          counts);
    Format.fprintf fmt "@]"
end
