(** Minimal JSON tree, emitter and parser.

    Just enough for the observability reports ([BENCH_*.json]): no
    streaming, no options, strings are assumed to be UTF-8 already.
    Kept dependency-free because the container pins the package set. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val pp : Format.formatter -> t -> unit
(** Indented rendering, for humans. *)

exception Parse_error of string

val parse : string -> t
(** Strict parser for the subset {!to_string} emits (standard JSON with
    [\uXXXX] escapes decoded to raw bytes for the BMP's ASCII range
    only). Raises {!Parse_error} on malformed input. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for other constructors or missing keys. *)

val number : t -> float option
(** [Int] or [Float] as a float. *)

val string_value : t -> string option

val equal : t -> t -> bool
(** Structural equality; [Int i] and [Float f] compare equal when
    [float_of_int i = f], so a parse round-trip is the identity. *)
